#!/usr/bin/env python3
"""Compare two rmd-bench-v1 documents (BENCH_*.json) side by side.

Usage:
    scripts/bench_diff.py BASELINE.json CURRENT.json [--tolerance 0.25]

Prints one row per machine and metric with the percentage delta, marking
rows that regress past the tolerance (slower reduction, lower query
throughput). Exit status is 1 when any marked regression exists, so the
script doubles as a CI gate over two saved documents. Uses only the
standard library.
"""

import argparse
import json
import sys


METRICS = (
    # (key, unit, higher_is_better)
    ("reduce_ms", "ms", False),
    ("query_mqps_discrete", "Mq/s", True),
    ("query_mqps_bitvector", "Mq/s", True),
    # Contention-query server (bench/server_throughput): request latency
    # regresses upward, aggregate throughput regresses downward.
    ("server_p50_us", "us", False),
    ("server_p99_us", "us", False),
    ("server_mqps", "Mq/s", True),
)


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "rmd-bench-v1":
        sys.exit(f"{path}: not an rmd-bench-v1 document "
                 f"(schema = {doc.get('schema')!r})")
    return {e["machine"]: e for e in doc.get("machines", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    header = (f"{'machine':<12} {'metric':<22} {'baseline':>12} "
              f"{'current':>12} {'delta':>9}")
    print(header)
    print("-" * len(header))

    regressed = False
    for machine in sorted(set(base) | set(cur)):
        if machine not in cur:
            # A machine silently dropped from the current document is a
            # gate failure, not a footnote: the regression it would have
            # shown is simply absent.
            print(f"{machine:<12} (missing from current)  <-- REGRESSED")
            regressed = True
            continue
        if machine not in base:
            # New machines have nothing to regress against; report them so
            # the baseline gets refreshed, but do not fail the gate.
            print(f"{machine:<12} (new; not in baseline)")
            continue
        for key, unit, higher_better in METRICS:
            b = base[machine].get(key)
            c = cur[machine].get(key)
            if b is None and c is None:
                # Neither document measures this metric (e.g. server
                # latency in a query-throughput document): nothing to
                # guard, skip the row entirely.
                continue
            if b is None or c is None:
                # A metric present on one side only means the bench
                # stopped (or never started) measuring what the gate is
                # supposed to guard — fail, don't traceback.
                where = "baseline" if b is None else "current"
                print(f"{machine:<12} {key:<22} (missing from {where})"
                      f"  <-- REGRESSED")
                regressed = True
                continue
            if b:
                delta = (c - b) / b
                worse = -delta if higher_better else delta
                delta_str = f"{delta:>+8.1%}"
            else:
                # Zero baseline: any nonzero current value is an infinite
                # relative change. Going from 0 to nonzero is a regression
                # for lower-is-better metrics and an improvement otherwise;
                # 0 -> 0 is flat.
                worse = float("inf") if (c and not higher_better) else 0.0
                delta_str = f"{'+inf' if c else '+0.0%':>8}"
            mark = "  <-- REGRESSED" if worse > args.tolerance else ""
            if mark:
                regressed = True
            print(f"{machine:<12} {key:<22} {b:>9.3f} {unit:<4} "
                  f"{c:>9.3f} {unit:<4} {delta_str}{mark}")

    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
