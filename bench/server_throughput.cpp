//===- bench/server_throughput.cpp - Multi-client server bench ------------===//
//
// Gate bench for the contention-query server: N concurrent clients stream
// seeded valid batches (server/Workload.h) at an in-process server and
// every request's wall-clock latency is recorded. Reports, per machine:
//
//   server_clients   concurrent clients
//   server_p50_us    median request latency (batch of events), microseconds
//   server_p99_us    99th-percentile request latency
//   server_mqps      aggregate throughput, million query events / second
//
// Output is rmd-bench-v1 JSON (same shape scripts/bench_diff.py consumes),
// to stdout or --out=<file>. Options:
//
//   server_throughput [--clients=<n>] [--batches=<n>] [--batch=<events>]
//                     [--machines=<a,b,...>] [--out=<file>]
//
// Note the numbers are environment-honest: aggregate Mq/s scales with the
// cores actually available; on a single-core host the server's value is
// isolation and latency-under-load, not speedup.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"
#include "reduce/ReductionCache.h"
#include "server/Client.h"
#include "server/Server.h"
#include "server/Workload.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace rmd;
using namespace rmd::server;
using namespace rmd::wire;

namespace {

struct BenchResult {
  std::string Machine;
  size_t Clients = 0;
  double P50Us = 0;
  double P99Us = 0;
  double Mqps = 0;
  double SingleMqps = 0; ///< one local thread on the same module, for scale
};

MachineModel modelFor(const std::string &Name) {
  if (Name == "fig1") {
    MachineModel Model;
    Model.MD = makeFig1Machine();
    Model.Latency.assign(Model.MD.numOperations(), 1);
    Model.Role.assign(Model.MD.numOperations(), OpRole::IntAlu);
    return Model;
  }
  if (Name == "cydra5")
    return makeCydra5();
  if (Name == "alpha21064")
    return makeAlpha21064();
  if (Name == "mips-r3000")
    return makeMipsR3000();
  if (Name == "toy-vliw")
    return makeToyVliw();
  if (Name == "playdoh")
    return makePlayDoh();
  if (Name == "m88100")
    return makeM88100();
  std::cerr << "server_throughput: unknown machine '" << Name << "'\n";
  std::exit(1);
}

/// One client worker: stream Batches requests of BatchLen events, record
/// each request's latency in microseconds.
void runClient(const std::string &Socket, const std::string &Machine,
               const MachineDescription &Reduced, uint64_t Seed,
               size_t Batches, size_t BatchLen,
               std::vector<double> &LatenciesUs, uint64_t &EventsDone) {
  Expected<std::unique_ptr<RmdClient>> Client =
      RmdClient::connect(Socket, /*RecvTimeoutMs=*/120000);
  if (!Client) {
    std::cerr << "client connect failed: " << Client.status().render()
              << "\n";
    return;
  }
  RmdClient &C = *Client.value();
  Expected<LoadMachineReply> M = C.loadMachine(Machine);
  if (!M)
    return;
  OpenSessionRequest OpenReq;
  OpenReq.MachineId = M.value().MachineId;
  OpenReq.Tenant = "bench-" + std::to_string(Seed);
  Expected<OpenSessionReply> Open = C.openSession(OpenReq);
  if (!Open)
    return;

  WorkloadGenerator Gen(Reduced, QueryConfig::linear(0), Seed);
  LatenciesUs.reserve(Batches);
  std::vector<BatchEvent> Events;
  std::vector<uint8_t> Want;
  for (size_t B = 0; B < Batches; ++B) {
    Events.clear();
    Want.clear();
    Gen.nextBatch(BatchLen, Events, Want);
    BatchRequest Req;
    Req.SessionId = Open.value().SessionId;
    Req.Events = std::move(Events);
    auto T0 = std::chrono::steady_clock::now();
    Expected<BatchReply> R = C.runBatch(Req);
    auto T1 = std::chrono::steady_clock::now();
    Events = std::move(Req.Events);
    if (!R) {
      std::cerr << "batch failed: " << R.status().render() << "\n";
      return;
    }
    if (R.value().Results != Want) {
      std::cerr << "bench differential mismatch on " << Machine << "\n";
      std::exit(1); // a wrong answer invalidates the whole measurement
    }
    LatenciesUs.push_back(
        std::chrono::duration<double, std::micro>(T1 - T0).count());
    EventsDone += BatchLen;
  }
  (void)C.closeSession(Open.value().SessionId);
}

/// The single-thread reference: the same seeded stream against a local
/// module, no server in the way.
double singleThreadMqps(const MachineDescription &Reduced, size_t Batches,
                        size_t BatchLen) {
  WorkloadGenerator Gen(Reduced, QueryConfig::linear(0), /*Seed=*/0xb00);
  std::vector<BatchEvent> Events;
  std::vector<uint8_t> Want;
  auto T0 = std::chrono::steady_clock::now();
  for (size_t B = 0; B < Batches; ++B) {
    Events.clear();
    Want.clear();
    Gen.nextBatch(BatchLen, Events, Want);
  }
  auto T1 = std::chrono::steady_clock::now();
  double Seconds = std::chrono::duration<double>(T1 - T0).count();
  return Seconds > 0 ? (Batches * BatchLen) / Seconds / 1e6 : 0;
}

BenchResult benchMachine(const std::string &Name, size_t Clients,
                         size_t Batches, size_t BatchLen) {
  BenchResult Out;
  Out.Machine = Name;
  Out.Clients = Clients;

  MachineModel Model = modelFor(Name);
  ExpandedMachine EM = expandAlternatives(Model.MD);
  SafeReduction Safe = reduceMachineOrFallback(EM.Flat);
  const MachineDescription &Reduced = Safe.Result.Reduced;

  Out.SingleMqps = singleThreadMqps(Reduced, Batches, BatchLen);

  ServerOptions Options;
  Options.SocketPath =
      "@rmd-bench-" + std::to_string(::getpid()) + "-" + Name;
  Options.Workers = 0; // one per core
  Options.QueueCapacity = Clients * 4;
  Expected<std::unique_ptr<RmdServer>> Server =
      RmdServer::start(std::move(Options));
  if (!Server) {
    std::cerr << "server start failed: " << Server.status().render() << "\n";
    std::exit(1);
  }
  // Load once up front so client timings measure queries, not reduction.
  {
    Expected<std::unique_ptr<RmdClient>> Warm =
        RmdClient::connect(Server.value()->socketPath(), 120000);
    if (Warm)
      (void)Warm.value()->loadMachine(Name);
  }

  std::vector<std::vector<double>> Latencies(Clients);
  std::vector<uint64_t> Events(Clients, 0);
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (size_t I = 0; I < Clients; ++I)
    Threads.emplace_back(runClient, Server.value()->socketPath(), Name,
                         std::cref(Reduced), /*Seed=*/0xb000 + I, Batches,
                         BatchLen, std::ref(Latencies[I]),
                         std::ref(Events[I]));
  for (std::thread &T : Threads)
    T.join();
  auto T1 = std::chrono::steady_clock::now();
  Server.value()->stop();

  std::vector<double> All;
  for (const std::vector<double> &L : Latencies)
    All.insert(All.end(), L.begin(), L.end());
  uint64_t TotalEvents = 0;
  for (uint64_t E : Events)
    TotalEvents += E;
  if (All.empty() || TotalEvents == 0) {
    std::cerr << "server_throughput: no successful requests on " << Name
              << "\n";
    std::exit(1);
  }
  std::sort(All.begin(), All.end());
  Out.P50Us = All[All.size() / 2];
  Out.P99Us = All[std::min(All.size() - 1, All.size() * 99 / 100)];
  double Seconds = std::chrono::duration<double>(T1 - T0).count();
  Out.Mqps = Seconds > 0 ? TotalEvents / Seconds / 1e6 : 0;
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  size_t Clients = 8;
  size_t Batches = 64;
  size_t BatchLen = 4096;
  std::string Out;
  std::vector<std::string> Machines = {"fig1", "mips-r3000", "m88100",
                                       "cydra5"};
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--clients=", 0) == 0)
      Clients = std::stoul(Arg.substr(10));
    else if (Arg.rfind("--batches=", 0) == 0)
      Batches = std::stoul(Arg.substr(10));
    else if (Arg.rfind("--batch=", 0) == 0)
      BatchLen = std::stoul(Arg.substr(8));
    else if (Arg.rfind("--out=", 0) == 0)
      Out = Arg.substr(6);
    else if (Arg.rfind("--machines=", 0) == 0) {
      Machines.clear();
      std::stringstream SS(Arg.substr(11));
      std::string Name;
      while (std::getline(SS, Name, ','))
        Machines.push_back(Name);
    } else {
      std::cerr << "usage: server_throughput [--clients=<n>] "
                   "[--batches=<n>] [--batch=<events>] "
                   "[--machines=<a,b,...>] [--out=<file>]\n";
      return Arg == "--help" ? 0 : 1;
    }
  }

  std::ostringstream Json;
  Json << "{\n  \"schema\": \"rmd-bench-v1\",\n"
       << "  \"tool\": \"server_throughput\",\n  \"machines\": [\n";
  for (size_t I = 0; I < Machines.size(); ++I) {
    BenchResult R = benchMachine(Machines[I], Clients, Batches, BatchLen);
    std::cerr << R.Machine << ": " << Clients << " clients, p50 " << R.P50Us
              << " us, p99 " << R.P99Us << " us, " << R.Mqps
              << " Mq/s aggregate (" << R.SingleMqps
              << " Mq/s single-thread local)\n";
    char Buf[512];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"machine\": \"%s\", \"server_clients\": %zu, "
                  "\"server_p50_us\": %.3f, \"server_p99_us\": %.3f, "
                  "\"server_mqps\": %.6f, "
                  "\"local_single_thread_mqps\": %.6f}%s\n",
                  R.Machine.c_str(), R.Clients, R.P50Us, R.P99Us, R.Mqps,
                  R.SingleMqps, I + 1 < Machines.size() ? "," : "");
    Json << Buf;
  }
  Json << "  ]\n}\n";

  if (Out.empty()) {
    std::cout << Json.str();
  } else {
    std::ofstream OS(Out);
    OS << Json.str();
    std::cerr << "wrote " << Out << "\n";
  }
  return 0;
}
