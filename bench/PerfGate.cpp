//===- bench/PerfGate.cpp -------------------------------------------------===//

#include "PerfGate.h"

#include "machines/MachineModel.h"
#include "query/BitvectorQuery.h"
#include "query/DiscreteQuery.h"
#include "reduce/Reduction.h"
#include "support/RNG.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

using namespace rmd;
using namespace rmd::bench;

const std::vector<std::string> &rmd::bench::perfCorpus() {
  static const std::vector<std::string> Corpus = {
      "fig1",     "cydra5",  "alpha21064", "mips-r3000",
      "toy-vliw", "playdoh", "m88100"};
  return Corpus;
}

namespace {

MachineDescription machineByName(const std::string &Name) {
  if (Name == "fig1")
    return makeFig1Machine();
  if (Name == "cydra5")
    return makeCydra5().MD;
  if (Name == "alpha21064")
    return makeAlpha21064().MD;
  if (Name == "mips-r3000")
    return makeMipsR3000().MD;
  if (Name == "toy-vliw")
    return makeToyVliw().MD;
  if (Name == "playdoh")
    return makePlayDoh().MD;
  return makeM88100().MD;
}

using Clock = std::chrono::steady_clock;

double elapsedMs(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// The pinned query mix (same shape as bench/query_throughput.cpp): 4096
/// seeded (op, cycle) events, check-then-assign, freeing the oldest half
/// whenever 64 instances are live.
std::vector<std::pair<OpId, int>>
buildTrace(const MachineDescription &Flat) {
  RNG R(1234);
  std::vector<std::pair<OpId, int>> Trace;
  for (int I = 0; I < 4096; ++I)
    Trace.push_back({static_cast<OpId>(R.nextBelow(Flat.numOperations())),
                     static_cast<int>(R.nextBelow(64))});
  return Trace;
}

template <typename ModuleT>
double measureQueryMqps(const MachineDescription &MD,
                        const std::vector<std::pair<OpId, int>> &Trace,
                        int Repeats) {
  // Inner passes amortize the timer granularity on small machines; the
  // outer min-of-N filters scheduler noise.
  constexpr int InnerPasses = 4;
  double BestMs = 0.0;
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    ModuleT Module(MD, QueryConfig::linear());
    auto Start = Clock::now();
    size_t Assigned = 0;
    for (int Pass = 0; Pass < InnerPasses; ++Pass) {
      InstanceId Next = 0;
      std::vector<std::pair<OpId, int>> Live;
      for (const auto &[Op, Cycle] : Trace) {
        if (Module.check(Op, Cycle)) {
          Module.assign(Op, Cycle, Next++);
          Live.push_back({Op, Cycle});
          ++Assigned;
        }
        if (Live.size() >= 64) {
          for (size_t I = 0; I < 32; ++I)
            Module.free(Live[I].first, Live[I].second,
                        static_cast<InstanceId>(I + Next - Live.size()));
          Live.erase(Live.begin(), Live.begin() + 32);
        }
      }
      Module.reset();
    }
    double Ms = elapsedMs(Start);
    (void)Assigned; // the module's mutations keep the loop observable
    if (Rep == 0 || Ms < BestMs)
      BestMs = Ms;
  }
  double Queries = static_cast<double>(InnerPasses) * Trace.size();
  return Queries / (BestMs * 1e3); // ms -> Mqps
}

} // namespace

std::vector<PerfEntry> rmd::bench::measurePerfCorpus(int Repeats) {
  std::vector<PerfEntry> Entries;
  for (const std::string &Name : perfCorpus()) {
    PerfEntry E;
    E.Machine = Name;
    ExpandedMachine EM = expandAlternatives(machineByName(Name));

    double BestMs = 0.0;
    ReductionResult Result;
    for (int Rep = 0; Rep < Repeats; ++Rep) {
      auto Start = Clock::now();
      Result = reduceMachine(EM.Flat);
      double Ms = elapsedMs(Start);
      if (Rep == 0 || Ms < BestMs)
        BestMs = Ms;
    }
    E.ReduceMs = BestMs;

    std::vector<std::pair<OpId, int>> Trace = buildTrace(EM.Flat);
    E.DiscreteMqps =
        measureQueryMqps<DiscreteQueryModule>(Result.Reduced, Trace, Repeats);
    E.BitvectorMqps = measureQueryMqps<BitvectorQueryModule>(Result.Reduced,
                                                             Trace, Repeats);
    Entries.push_back(std::move(E));
  }
  return Entries;
}

void rmd::bench::writeBenchJson(std::ostream &OS,
                                const std::vector<PerfEntry> &Entries,
                                const std::string &Tool) {
  auto Num = [](double V) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6f", V);
    return std::string(Buf);
  };
  OS << "{\n  \"schema\": \"rmd-bench-v1\",\n";
  OS << "  \"tool\": \"" << Tool << "\",\n";
  OS << "  \"machines\": [\n";
  for (size_t I = 0; I < Entries.size(); ++I) {
    const PerfEntry &E = Entries[I];
    OS << "    {\"machine\": \"" << E.Machine << "\", "
       << "\"reduce_ms\": " << Num(E.ReduceMs) << ", "
       << "\"query_mqps_discrete\": " << Num(E.DiscreteMqps) << ", "
       << "\"query_mqps_bitvector\": " << Num(E.BitvectorMqps) << "}"
       << (I + 1 < Entries.size() ? "," : "") << "\n";
  }
  OS << "  ]\n}\n";
}

bool rmd::bench::loadBenchJson(std::istream &IS,
                               std::vector<PerfEntry> &Entries) {
  Entries.clear();
  std::stringstream Buffer;
  Buffer << IS.rdbuf();
  std::string Text = Buffer.str();
  if (Text.find("\"schema\": \"rmd-bench-v1\"") == std::string::npos)
    return false;

  // Scans for the writer's own fixed one-object-per-line formatting; this
  // is deliberately not a general JSON parser (no dependencies), and the
  // schema field above version-gates the layout.
  auto FieldNum = [](const std::string &Line, const char *Key,
                    double &Out) -> bool {
    std::string Needle = std::string("\"") + Key + "\": ";
    size_t At = Line.find(Needle);
    if (At == std::string::npos)
      return false;
    Out = std::strtod(Line.c_str() + At + Needle.size(), nullptr);
    return true;
  };

  std::istringstream Lines(Text);
  std::string Line;
  while (std::getline(Lines, Line)) {
    size_t At = Line.find("{\"machine\": \"");
    if (At == std::string::npos)
      continue;
    size_t NameBegin = At + sizeof("{\"machine\": \"") - 1;
    size_t NameEnd = Line.find('"', NameBegin);
    if (NameEnd == std::string::npos)
      return false;
    PerfEntry E;
    E.Machine = Line.substr(NameBegin, NameEnd - NameBegin);
    if (!FieldNum(Line, "reduce_ms", E.ReduceMs) ||
        !FieldNum(Line, "query_mqps_discrete", E.DiscreteMqps) ||
        !FieldNum(Line, "query_mqps_bitvector", E.BitvectorMqps)) {
      Entries.clear();
      return false;
    }
    Entries.push_back(std::move(E));
  }
  return !Entries.empty();
}

std::vector<PerfRegression>
rmd::bench::comparePerf(const std::vector<PerfEntry> &Baseline,
                        const std::vector<PerfEntry> &Current,
                        double Tolerance) {
  std::vector<PerfRegression> Regressions;
  for (const PerfEntry &B : Baseline) {
    auto It = std::find_if(
        Current.begin(), Current.end(),
        [&](const PerfEntry &C) { return C.Machine == B.Machine; });
    if (It == Current.end())
      continue;
    const PerfEntry &C = *It;
    double Band = 1.0 + Tolerance;
    if (B.ReduceMs > 0 && C.ReduceMs > B.ReduceMs * Band)
      Regressions.push_back({B.Machine, "reduce_ms", B.ReduceMs, C.ReduceMs});
    if (B.DiscreteMqps > 0 && C.DiscreteMqps < B.DiscreteMqps / Band)
      Regressions.push_back(
          {B.Machine, "query_mqps_discrete", B.DiscreteMqps, C.DiscreteMqps});
    if (B.BitvectorMqps > 0 && C.BitvectorMqps < B.BitvectorMqps / Band)
      Regressions.push_back({B.Machine, "query_mqps_bitvector",
                             B.BitvectorMqps, C.BitvectorMqps});
  }
  return Regressions;
}
