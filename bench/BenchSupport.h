//===- bench/BenchSupport.h - Shared harness for paper tables --*- C++ -*-===//
///
/// \file
/// Shared plumbing for the table-reproduction binaries: class-machine
/// preparation (the paper reports everything per operation class) and the
/// Tables 1-4 printer (resources / res-usages / word-usages for the
/// original description and the res-uses and k-cycle-word reductions).
///
//===----------------------------------------------------------------------===//

#ifndef RMD_BENCH_BENCHSUPPORT_H
#define RMD_BENCH_BENCHSUPPORT_H

#include "flm/OperationClasses.h"
#include "machines/MachineModel.h"
#include "reduce/Reduction.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace rmd {
namespace bench {

/// A machine prepared for class-level experiments.
struct ClassMachine {
  MachineDescription Flat;    ///< expanded machine (alternative operations)
  MachineDescription Classes; ///< one representative per operation class
  OperationClasses Partition;
  size_t CanonicalLatencies = 0;
  size_t TotalLatencyEntries = 0;
  int MaxLatency = 0;
};

/// Expands \p MD and quotients it by contention classes.
ClassMachine prepareClassMachine(const MachineDescription &MD);

/// One column of a reduction table.
struct ReductionColumn {
  std::string Label;
  MachineDescription Description;
  unsigned MetricK = 1; ///< k used for the word-usage metric row
};

/// Builds the paper's column set for \p ClassMD: original, res-uses, and
/// k-cycle-word reductions for k = 1 and the maximal packings at 32 and 64
/// bits (duplicates removed).
std::vector<ReductionColumn> buildReductionColumns(
    const MachineDescription &ClassMD);

/// Prints a Tables 1-4 style block: header line with class/latency counts,
/// then rows "number of resources", "average resource usages / operation",
/// "average word usages / operation".
void printReductionTable(std::ostream &OS, const std::string &Title,
                         const ClassMachine &CM);

} // namespace bench
} // namespace rmd

#endif // RMD_BENCH_BENCHSUPPORT_H
