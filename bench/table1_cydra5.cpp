//===- bench/table1_cydra5.cpp - Table 1: Cydra 5 reductions --------------===//
//
// Reproduces Table 1 of the paper: reduction results for the full Cydra 5
// machine description, per operation class, for the discrete (res-uses)
// and bitvector (k-cycle-word) objectives.
//
// The machine description is a reconstruction (see DESIGN.md); compare
// *ratios* against the paper (resources shrink ~3.7x, res usages ~2.2x,
// word usages ~4x at the densest packing), not absolute counts.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include <iostream>
#include "support/Stats.h"

using namespace rmd;

int main(int Argc, char **Argv) {
  rmd::StatsJsonGuard StatsJson(Argc, Argv, "table1_cydra5");
  MachineModel Cydra = makeCydra5();
  bench::ClassMachine CM = bench::prepareClassMachine(Cydra.MD);

  std::cout << "=== Table 1: reduced machine descriptions, Cydra 5 ===\n\n";
  std::cout << "expanded operations (alternatives removed): "
            << CM.Flat.numOperations() << "\n";
  bench::printReductionTable(std::cout, "Cydra 5 (reconstruction)", CM);

  std::cout << "\npaper reference (original Cydra 5 model): 52 classes, "
               "10223 forbidden latencies; resources 56 -> 15 (3.7x); res "
               "usages 18.2 -> 8.3 (2.2x); word usages 13.2 -> 3.3 (4.0x) "
               "at 4 cycles/64-bit word; state storage 25% of original\n";
  return 0;
}
