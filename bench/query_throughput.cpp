//===- bench/query_throughput.cpp - Section 6 headline timings ------------===//
//
// google-benchmark microbenchmarks backing the paper's "4 to 7 times
// faster detection of resource contentions" headline: wall-clock time of
// check / assign / free sequences against original vs reduced machine
// descriptions, in the discrete and bitvector representations, plus the
// finite-state-automaton baseline for in-order issue.
//
//===----------------------------------------------------------------------===//

#include "automaton/PipelineAutomaton.h"
#include "machines/MachineModel.h"
#include "query/BitvectorQuery.h"
#include "query/DiscreteQuery.h"
#include "reduce/Reduction.h"
#include "support/RNG.h"
#include "support/Stats.h"

#include <benchmark/benchmark.h>

using namespace rmd;

namespace {

/// Lazily-built shared inputs (building reductions once per process).
struct Setup {
  MachineDescription Flat;
  MachineDescription Reduced;
  std::vector<std::vector<OpId>> Groups;
  std::vector<std::pair<OpId, int>> Trace;

  explicit Setup(const MachineModel &Model) {
    ExpandedMachine EM = expandAlternatives(Model.MD);
    Flat = EM.Flat;
    Groups = EM.Groups;
    Reduced = reduceMachine(Flat).Reduced;
    RNG R(1234);
    for (int I = 0; I < 4096; ++I)
      Trace.push_back(
          {static_cast<OpId>(R.nextBelow(Flat.numOperations())),
           static_cast<int>(R.nextBelow(64))});
  }
};

const Setup &cydraSetup() {
  static Setup S(makeCydra5());
  return S;
}
const Setup &mipsSetup() {
  static Setup S(makeMipsR3000());
  return S;
}
const Setup &alphaSetup() {
  static Setup S(makeAlpha21064());
  return S;
}

const Setup &setupFor(int Index) {
  switch (Index) {
  case 0:
    return cydraSetup();
  case 1:
    return mipsSetup();
  default:
    return alphaSetup();
  }
}

const char *machineName(int Index) {
  switch (Index) {
  case 0:
    return "cydra5";
  case 1:
    return "mips";
  default:
    return "alpha";
  }
}

template <typename ModuleT>
void runQueryMix(benchmark::State &State, const MachineDescription &MD,
                 const std::vector<std::pair<OpId, int>> &Trace) {
  ModuleT Module(MD, QueryConfig::linear());
  for (auto _ : State) {
    (void)_;
    InstanceId Next = 0;
    size_t Assigned = 0;
    std::vector<std::pair<OpId, int>> Live;
    for (const auto &[Op, Cycle] : Trace) {
      if (Module.check(Op, Cycle)) {
        Module.assign(Op, Cycle, Next++);
        Live.push_back({Op, Cycle});
        ++Assigned;
      }
      // Keep the table from saturating: periodically free the oldest half.
      if (Live.size() >= 64) {
        for (size_t I = 0; I < 32; ++I)
          Module.free(Live[I].first, Live[I].second,
                      static_cast<InstanceId>(I + Next - Live.size()));
        Live.erase(Live.begin(), Live.begin() + 32);
      }
    }
    benchmark::DoNotOptimize(Assigned);
    Module.reset();
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Trace.size()));
}

void BM_DiscreteOriginal(benchmark::State &State) {
  const Setup &S = setupFor(static_cast<int>(State.range(0)));
  State.SetLabel(machineName(static_cast<int>(State.range(0))));
  runQueryMix<DiscreteQueryModule>(State, S.Flat, S.Trace);
}

void BM_DiscreteReduced(benchmark::State &State) {
  const Setup &S = setupFor(static_cast<int>(State.range(0)));
  State.SetLabel(machineName(static_cast<int>(State.range(0))));
  runQueryMix<DiscreteQueryModule>(State, S.Reduced, S.Trace);
}

void BM_BitvectorOriginal(benchmark::State &State) {
  const Setup &S = setupFor(static_cast<int>(State.range(0)));
  State.SetLabel(machineName(static_cast<int>(State.range(0))));
  runQueryMix<BitvectorQueryModule>(State, S.Flat, S.Trace);
}

void BM_BitvectorReduced(benchmark::State &State) {
  const Setup &S = setupFor(static_cast<int>(State.range(0)));
  State.SetLabel(machineName(static_cast<int>(State.range(0))));
  runQueryMix<BitvectorQueryModule>(State, S.Reduced, S.Trace);
}

/// check-with-alternatives mix on the original description: every query
/// goes through the union-mask fast path, so this isolates the cost of the
/// per-group union-pattern cache lookup on the hot path.
void BM_BitvectorAlternatives(benchmark::State &State) {
  const Setup &S = setupFor(static_cast<int>(State.range(0)));
  State.SetLabel(machineName(static_cast<int>(State.range(0))));
  BitvectorQueryModule Module(S.Flat, QueryConfig::linear());
  RNG R(99);
  std::vector<std::pair<size_t, int>> Queries;
  for (int I = 0; I < 4096; ++I)
    Queries.push_back({R.nextBelow(S.Groups.size()),
                       static_cast<int>(R.nextBelow(64))});
  for (auto _ : State) {
    (void)_;
    InstanceId Next = 0;
    size_t Placed = 0;
    for (const auto &[Group, Cycle] : Queries) {
      int Alt = Module.checkWithAlternatives(S.Groups[Group], Cycle);
      if (Alt >= 0) {
        Module.assign(S.Groups[Group][static_cast<size_t>(Alt)], Cycle,
                      Next++);
        ++Placed;
      }
      if (Placed % 64 == 0)
        Module.reset();
    }
    benchmark::DoNotOptimize(Placed);
    Module.reset();
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Queries.size()));
}

/// Baseline: automaton-driven in-order issue (the only scheduling model
/// the plain forward automaton supports without extra machinery).
void BM_AutomatonInOrder(benchmark::State &State) {
  const Setup &S = setupFor(static_cast<int>(State.range(0)));
  State.SetLabel(machineName(static_cast<int>(State.range(0))));
  // Built from the reduced description; the raw hardware-level one
  // overflows the state cap (see table3/table4 output).
  auto A = PipelineAutomaton::build(S.Reduced, 1u << 22);
  if (!A) {
    State.SkipWithError("automaton exceeds the state cap");
    return;
  }
  for (auto _ : State) {
    (void)_;
    PipelineAutomaton::StateId St = A->initialState();
    size_t Accepted = 0;
    int LastCycle = 0;
    for (const auto &[Op, Cycle] : S.Trace) {
      int C = Cycle % 8 + LastCycle; // monotone cycles for in-order issue
      while (LastCycle < C) {
        St = A->advance(St);
        ++LastCycle;
      }
      if (auto NextState = A->issue(St, Op)) {
        St = *NextState;
        ++Accepted;
      }
    }
    benchmark::DoNotOptimize(Accepted);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(S.Trace.size()));
}

} // namespace

BENCHMARK(BM_DiscreteOriginal)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_DiscreteReduced)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_BitvectorOriginal)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_BitvectorReduced)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_BitvectorAlternatives)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_AutomatonInOrder)->Arg(1)->Arg(2);

// BENCHMARK_MAIN(), plus the shared --stats-json plumbing. The guard strips
// its flag from argv before google-benchmark parses the command line.
int main(int Argc, char **Argv) {
  rmd::StatsJsonGuard StatsJson(Argc, Argv, "query_throughput");
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
