//===- bench/PerfGate.h - Pinned-corpus perf measurements ------*- C++ -*-===//
///
/// \file
/// The perf-regression gate's measurement and comparison layer: replays a
/// pinned mini-corpus (the seven built-in machine models), measures
/// reduction time and query throughput per machine, serializes the result
/// as the versioned "rmd-bench-v1" JSON document (docs/observability.md),
/// and compares a fresh measurement against a checked-in baseline with a
/// tolerance band.
///
/// Shared between the `perf_gate` CLI (writes BENCH_*.json, refreshes the
/// baseline) and `PerfGateTest` (ctest `perf` label: fails the build when
/// throughput regresses past the tolerance).
///
//===----------------------------------------------------------------------===//

#ifndef RMD_BENCH_PERFGATE_H
#define RMD_BENCH_PERFGATE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace rmd {
namespace bench {

/// One machine's measurements. Throughputs are millions of queries per
/// second over the pinned 4096-event query mix; reduce time is the full
/// checked pipeline (verify on) at one thread.
struct PerfEntry {
  std::string Machine;
  double ReduceMs = 0.0;
  double DiscreteMqps = 0.0;
  double BitvectorMqps = 0.0;
};

/// The pinned corpus: names accepted by the built-in model factories, in
/// report order.
const std::vector<std::string> &perfCorpus();

/// Measures every corpus machine, taking the min of \p Repeats runs per
/// metric (min-of-N is the standard noise filter for wall-clock gates).
std::vector<PerfEntry> measurePerfCorpus(int Repeats);

/// Writes entries as the "rmd-bench-v1" JSON document.
void writeBenchJson(std::ostream &OS, const std::vector<PerfEntry> &Entries,
                    const std::string &Tool);

/// Parses a document written by writeBenchJson(). Returns false (and
/// leaves \p Entries empty) on malformed input; tolerant only of the
/// writer's own formatting.
bool loadBenchJson(std::istream &IS, std::vector<PerfEntry> &Entries);

/// One baseline-vs-current comparison verdict.
struct PerfRegression {
  std::string Machine;
  std::string Metric;
  double Baseline = 0.0;
  double Current = 0.0;
};

/// Compares \p Current against \p Baseline: a regression is a reduce time
/// above baseline * (1 + Tolerance) or a throughput below
/// baseline / (1 + Tolerance). Machines missing from either side are
/// ignored (the corpus may grow). Returns the offending metrics.
std::vector<PerfRegression>
comparePerf(const std::vector<PerfEntry> &Baseline,
            const std::vector<PerfEntry> &Current, double Tolerance);

} // namespace bench
} // namespace rmd

#endif // RMD_BENCH_PERFGATE_H
