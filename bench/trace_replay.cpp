//===- bench/trace_replay.cpp - Record / replay query-module traces -------===//
//
// Standalone driver for the verify/ trace machinery. Three modes:
//
//   trace_replay record <machine> [seed] [steps]        > out.trace
//     Fuzzes a discrete query module over the expanded machine (one linear
//     segment with a negative window floor, one modulo segment) and writes
//     the serialized trace to stdout.
//
//   trace_replay replay <machine> <discrete|bitvector> <original|reduced>
//                                                       < in.trace
//     Replays every trace segment against a fresh module of the chosen
//     representation/description pairing, comparing recorded answers, and
//     prints per-segment call counts, mismatches, work units, and wall
//     time. Exits nonzero on any mismatch: a mismatch means the pairing is
//     *not* equivalent to the recorded module.
//
//   trace_replay shadow <machine>                       < in.trace
//     Replays through a ShadowQueryModule pairing the discrete module over
//     the original description with the bitvector module over the reduced
//     one; any divergence aborts with a rendered occupancy diff.
//
// Traces recorded from a scheduler (the schedulers' QueryTrace hooks) use
// the same format, so a failing scheduling run can be re-examined here
// without re-running the scheduler.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"
#include "query/BitvectorQuery.h"
#include "query/DiscreteQuery.h"
#include "reduce/Reduction.h"
#include "verify/QueryTrace.h"
#include "verify/ShadowQueryModule.h"
#include "verify/TraceFuzzer.h"

#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include "support/Stats.h"

using namespace rmd;

namespace {

MachineDescription machineByName(const std::string &Name) {
  if (Name == "fig1")
    return makeFig1Machine();
  if (Name == "cydra5")
    return makeCydra5().MD;
  if (Name == "alpha21064")
    return makeAlpha21064().MD;
  if (Name == "mips-r3000")
    return makeMipsR3000().MD;
  if (Name == "toy-vliw")
    return makeToyVliw().MD;
  if (Name == "playdoh")
    return makePlayDoh().MD;
  if (Name == "m88100")
    return makeM88100().MD;
  std::cerr << "unknown machine '" << Name
            << "' (try: fig1 cydra5 alpha21064 mips-r3000 toy-vliw playdoh "
               "m88100)\n";
  std::exit(2);
}

int usage() {
  std::cerr
      << "usage:\n"
         "  trace_replay record <machine> [seed] [steps]\n"
         "  trace_replay replay <machine> <discrete|bitvector> "
         "<original|reduced>\n"
         "  trace_replay shadow <machine>\n";
  return 2;
}

int runRecord(const std::string &MachineName, uint64_t Seed, int Steps) {
  MachineDescription MD = machineByName(MachineName);
  ExpandedMachine EM = expandAlternatives(MD);

  QueryTraceLog Log;
  for (QueryConfig Config :
       {QueryConfig::linear(-6), QueryConfig::modulo(11)}) {
    DiscreteQueryModule Module(EM.Flat, Config);
    TracingQueryModule Tracer(Module,
                              Log.beginSegment(MachineName, Config));
    FuzzOptions FO;
    FO.Seed = Seed;
    FO.Steps = Steps;
    FuzzStats Stats =
        fuzzQueryModule(Tracer, EM.Flat, EM.Groups, Config, FO);
    std::cerr << MachineName << " "
              << (Config.Mode == QueryConfig::Modulo ? "modulo" : "linear")
              << ": " << Stats.totalCalls() << " calls, "
              << Stats.Evictions << " evictions, " << Stats.Resets
              << " resets\n";
  }
  Log.serialize(std::cout);
  return 0;
}

int runReplay(const std::string &MachineName, const std::string &Repr,
              const std::string &Desc) {
  MachineDescription MD = machineByName(MachineName);
  ExpandedMachine EM = expandAlternatives(MD);
  MachineDescription Reduced = reduceMachine(EM.Flat).Reduced;
  const MachineDescription &Target =
      Desc == "reduced" ? Reduced : EM.Flat;
  bool Bitvector = Repr == "bitvector";

  QueryTraceLog Log;
  std::string Error;
  if (!QueryTraceLog::deserialize(std::cin, Log, &Error)) {
    std::cerr << "bad trace on stdin: " << Error << "\n";
    return 2;
  }

  uint64_t Mismatches = 0;
  for (size_t I = 0; I < Log.Segments.size(); ++I) {
    const QueryTrace &Segment = Log.Segments[I];
    // Operation ids in a trace are only meaningful against the machine it
    // was recorded on; a mismatched replay would die on a module assert.
    if (Segment.Machine != MachineName) {
      std::cerr << "segment " << I << " was recorded on '" << Segment.Machine
                << "', not '" << MachineName << "'\n";
      return 2;
    }
    std::unique_ptr<ContentionQueryModule> Module;
    if (Bitvector)
      Module.reset(new BitvectorQueryModule(Target, Segment.Config));
    else
      Module.reset(new DiscreteQueryModule(Target, Segment.Config));

    auto Start = std::chrono::steady_clock::now();
    ReplayResult RR = replayTrace(Segment, *Module);
    auto MicroSecs = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - Start)
                         .count();

    std::cout << "segment " << I << " (" << Segment.Machine << ", "
              << (Segment.Config.Mode == QueryConfig::Modulo
                      ? "modulo II=" +
                            std::to_string(Segment.Config.ModuloII)
                      : "linear min=" +
                            std::to_string(Segment.Config.MinCycle))
              << "): " << RR.Calls << " calls, " << RR.AnswerMismatches
              << " mismatches, " << Module->counters().totalUnits()
              << " work units, " << MicroSecs << " us\n";
    Mismatches += RR.AnswerMismatches;
  }
  if (Mismatches) {
    std::cerr << "FAIL: " << Mismatches
              << " answer mismatches -- the " << Repr << "/" << Desc
              << " pairing is not equivalent to the recorded module\n";
    return 1;
  }
  std::cout << "OK: " << Log.totalRecords() << " records, " << Repr << "/"
            << Desc << " answered identically\n";
  return 0;
}

int runShadow(const std::string &MachineName) {
  MachineDescription MD = machineByName(MachineName);
  ExpandedMachine EM = expandAlternatives(MD);
  MachineDescription Reduced = reduceMachine(EM.Flat).Reduced;

  QueryTraceLog Log;
  std::string Error;
  if (!QueryTraceLog::deserialize(std::cin, Log, &Error)) {
    std::cerr << "bad trace on stdin: " << Error << "\n";
    return 2;
  }

  for (size_t I = 0; I < Log.Segments.size(); ++I) {
    const QueryTrace &Segment = Log.Segments[I];
    if (Segment.Machine != MachineName) {
      std::cerr << "segment " << I << " was recorded on '" << Segment.Machine
                << "', not '" << MachineName << "'\n";
      return 2;
    }
    ShadowOptions Options;
    Options.RefMD = &EM.Flat;
    Options.CandMD = &Reduced;
    Options.Config = Segment.Config;
    Options.RefLabel = "discrete-original";
    Options.CandLabel = "bitvector-reduced";
    ShadowQueryModule Shadow(
        std::make_unique<DiscreteQueryModule>(EM.Flat, Segment.Config),
        std::make_unique<BitvectorQueryModule>(Reduced, Segment.Config),
        Options); // default handler: divergence is fatal
    ReplayResult RR = replayTrace(Segment, Shadow);
    size_t EndState = Shadow.verifyEndState();
    std::cout << "segment " << I << ": " << RR.Calls
              << " calls in lockstep, end-state probe found " << EndState
              << " divergences\n";
  }
  std::cout << "OK: no divergences\n";
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  rmd::StatsJsonGuard StatsJson(argc, argv, "trace_replay");
  if (argc < 3)
    return usage();
  std::string Mode = argv[1];
  std::string Machine = argv[2];

  if (Mode == "record") {
    uint64_t Seed = argc > 3 ? std::stoull(argv[3]) : 1;
    int Steps = argc > 4 ? std::stoi(argv[4]) : 2000;
    return runRecord(Machine, Seed, Steps);
  }
  if (Mode == "replay") {
    if (argc < 5)
      return usage();
    std::string Repr = argv[3];
    std::string Desc = argv[4];
    if ((Repr != "discrete" && Repr != "bitvector") ||
        (Desc != "original" && Desc != "reduced"))
      return usage();
    return runReplay(Machine, Repr, Desc);
  }
  if (Mode == "shadow")
    return runShadow(Machine);
  return usage();
}
