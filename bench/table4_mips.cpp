//===- bench/table4_mips.cpp - Table 4: MIPS R3000/R3010 ------------------===//
//
// Reproduces Table 4 (MIPS R3000/R3010 reduction results) and the
// Proebsting-Fraser comparison of Section 6: the size of the (forward)
// finite-state automaton for the same machine, against which the reduced
// reservation tables are the paper's alternative.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "automaton/PipelineAutomaton.h"

#include <iostream>
#include "support/Stats.h"

using namespace rmd;

int main(int Argc, char **Argv) {
  rmd::StatsJsonGuard StatsJson(Argc, Argv, "table4_mips");
  MachineModel Mips = makeMipsR3000();
  bench::ClassMachine CM = bench::prepareClassMachine(Mips.MD);

  std::cout << "=== Table 4: reduced machine descriptions, MIPS "
               "R3000/R3010 ===\n\n";
  bench::printReductionTable(std::cout, "MIPS R3000/R3010 (reconstruction)",
                             CM);

  std::cout << "\n--- finite-state automaton baseline (Proebsting-Fraser) "
               "---\n";
  // Built from the reduced description: the recognized language depends
  // only on the forbidden latency matrix, and the raw hardware-level
  // description overflows any reasonable state cap (the explosion the
  // reservation-table approach sidesteps).
  ReductionResult ForAutomaton = reduceMachine(CM.Classes);
  if (auto A = PipelineAutomaton::build(ForAutomaton.Reduced, 1u << 22)) {
    std::cout << "forward automaton: " << A->numStates() << " states, "
              << A->numIssueTransitions() << " issue transitions, "
              << A->tableBytes() << " bytes of tables\n";
    std::cout << "cycle-advancing states: " << A->numCycleAdvancingStates()
              << "\n";
  } else {
    std::cout << "forward automaton construction exceeded the state cap\n";
  }
  std::cout << "\npaper reference: 15 classes, 428 forbidden latencies "
               "(< 34); resources 22 -> 7; res usages 17.3 -> 7.9; word "
               "usages 11.0 -> 1.6 at 7 cycles/64-bit word; PF automaton: "
               "6175 states\n";
  return 0;
}
