//===- bench/table2_fig4.cpp - Table 2 and Figure 4 -----------------------===//
//
// Reproduces Table 2: reduction results for the subset of Cydra 5
// operations actually used by the loop benchmark (the corpus standing in
// for the paper's 1327 loops), and Figure 4: side-by-side reservation
// tables of that subset under the original model, the discrete (res-uses)
// reduction, and the 64-bit-word bitvector reduction.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "mdesc/Render.h"
#include "reduce/Metrics.h"
#include "workload/Corpus.h"

#include <iostream>
#include <set>
#include "support/Stats.h"

using namespace rmd;

/// Restricts \p MD to the operations whose ids appear in \p Used.
static MachineDescription restrictTo(const MachineDescription &MD,
                                     const std::set<OpId> &Used) {
  MachineDescription Out(MD.name() + ".subset");
  for (ResourceId R = 0; R < MD.numResources(); ++R)
    Out.addResource(MD.resourceName(R));
  for (OpId Op = 0; Op < MD.numOperations(); ++Op)
    if (Used.count(Op))
      Out.addOperation(MD.operation(Op).Name, MD.operation(Op).Alternatives);
  return Out;
}

int main(int Argc, char **Argv) {
  rmd::StatsJsonGuard StatsJson(Argc, Argv, "table2_fig4");
  MachineModel Cydra = makeCydra5();

  // Which original operations does the loop benchmark actually use?
  CorpusParams Params;
  std::vector<DepGraph> Corpus = buildCorpus(Cydra, Params);
  std::set<OpId> Used;
  for (const DepGraph &G : Corpus)
    for (NodeId N = 0; N < G.numNodes(); ++N)
      Used.insert(G.opOf(N));

  MachineDescription Subset = restrictTo(Cydra.MD, Used);
  bench::ClassMachine CM = bench::prepareClassMachine(Subset);

  std::cout << "=== Table 2: Cydra 5 subset used by the loop benchmark "
               "===\n\n";
  std::cout << "benchmark uses " << Used.size() << " of "
            << Cydra.MD.numOperations() << " original operations\n";
  bench::printReductionTable(std::cout, "Cydra 5 subset (reconstruction)",
                             CM);
  std::cout << "\npaper reference: 12 classes, 166 forbidden latencies "
               "(< 21); resources 39 -> 9; res usages 9.4 -> 2.9; word "
               "usages 7.5 -> 1.5 at 7 cycles/64-bit word (5x)\n";

  // --- Figure 4: the three reservation-table renderings. -----------------
  ReductionResult Discrete = reduceMachine(CM.Classes);
  unsigned K64 = cyclesPerWord(
      std::max<size_t>(Discrete.Reduced.numResources(), 1), 64);
  ReductionOptions WordOptions;
  WordOptions.Objective = SelectionObjective::wordUses(K64);
  ReductionResult Bitvector = reduceMachine(CM.Classes, WordOptions);

  std::cout << "\n=== Figure 4a: original machine description ===\n";
  renderMachine(std::cout, CM.Classes);
  std::cout << "\n=== Figure 4b: discrete-representation reduction ===\n";
  renderMachine(std::cout, Discrete.Reduced);
  std::cout << "\n=== Figure 4c: bitvector-representation reduction ("
            << K64 << " cycles / 64-bit word) ===\n";
  renderMachine(std::cout, Bitvector.Reduced);
  return 0;
}
