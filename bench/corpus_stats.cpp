//===- bench/corpus_stats.cpp - Loop-corpus calibration report ------------===//
//
// Documents how the synthetic corpus is calibrated against the paper's
// 1327-loop benchmark population (the inputs Table 5 depends on): loop
// size distribution, operation-role mix, recurrence share, and the
// pipeline shapes (stage counts) the modulo scheduler produces.
//
//===----------------------------------------------------------------------===//

#include "query/DiscreteQuery.h"
#include "sched/ScheduleRender.h"
#include "support/TextTable.h"
#include "workload/Experiment.h"

#include <iostream>
#include <map>
#include "support/Stats.h"

using namespace rmd;

int main(int Argc, char **Argv) {
  rmd::StatsJsonGuard StatsJson(Argc, Argv, "corpus_stats");
  MachineModel Cydra = makeCydra5();
  ExpandedMachine EM = expandAlternatives(Cydra.MD);
  CorpusParams Params; // the Table 5/6 corpus
  std::vector<DepGraph> Corpus = buildCorpus(Cydra, Params);

  std::cout << "=== corpus calibration (" << Corpus.size()
            << " loops, seed 0x" << std::hex << Params.Seed << std::dec
            << ") ===\n\n";

  // Size distribution.
  OnlineStats Sizes;
  std::map<std::string, int> SizeBuckets;
  size_t WithRecurrence = 0, KernelLoops = 0;
  std::map<std::string, size_t> OpMix;
  for (const DepGraph &G : Corpus) {
    Sizes.add(static_cast<double>(G.numNodes()));
    const char *Bucket = G.numNodes() <= 4    ? "2-4"
                         : G.numNodes() <= 8  ? "5-8"
                         : G.numNodes() <= 16 ? "9-16"
                         : G.numNodes() <= 32 ? "17-32"
                         : G.numNodes() <= 64 ? "33-64"
                                              : "65+";
    ++SizeBuckets[Bucket];
    bool Carried = false;
    for (const DepEdge &E : G.edges())
      Carried |= E.Distance > 0;
    WithRecurrence += Carried;
    KernelLoops += G.name() != "rand";
    for (NodeId N = 0; N < G.numNodes(); ++N)
      ++OpMix[Cydra.MD.operation(G.opOf(N)).Name];
  }

  std::cout << "loop sizes: min " << Sizes.min() << ", avg "
            << formatFixed(Sizes.mean(), 2) << ", max " << Sizes.max()
            << "   (paper: 2.00 / 17.54 / 161.00)\n";
  std::cout << "size histogram:";
  for (const char *B : {"2-4", "5-8", "9-16", "17-32", "33-64", "65+"})
    std::cout << "  " << B << ": " << SizeBuckets[B];
  std::cout << "\nloops with loop-carried dependences: "
            << formatFixed(100.0 * WithRecurrence / Corpus.size(), 1)
            << "%;  kernel-derived: "
            << formatFixed(100.0 * KernelLoops / Corpus.size(), 1)
            << "%, generator-derived: "
            << formatFixed(100.0 * (Corpus.size() - KernelLoops) /
                               Corpus.size(),
                           1)
            << "%\n\n";

  std::cout << "operation mix (top rows):\n";
  {
    std::vector<std::pair<size_t, std::string>> Sorted;
    size_t Total = 0;
    for (const auto &[Name, Count] : OpMix) {
      Sorted.push_back({Count, Name});
      Total += Count;
    }
    std::sort(Sorted.rbegin(), Sorted.rend());
    TextTable T;
    T.row();
    T.cell("operation");
    T.cell("count");
    T.cell("share");
    for (size_t I = 0; I < Sorted.size() && I < 10; ++I) {
      T.row();
      T.cell(Sorted[I].second);
      T.cellInt(static_cast<long long>(Sorted[I].first));
      T.cell(formatFixed(100.0 * Sorted[I].first / Total, 1) + "%");
    }
    T.print(std::cout);
  }

  // Pipeline shapes over a sample of scheduled loops.
  QueryEnvironment Env;
  Env.FlatMD = &EM.Flat;
  Env.Groups = &EM.Groups;
  Env.MakeModule = [&](QueryConfig C) {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(EM.Flat, C));
  };

  OnlineStats Stages, Prologue, SlotWidth;
  size_t Sampled = 0;
  for (size_t I = 0; I < Corpus.size(); I += 7) { // every 7th loop
    ModuloScheduleResult R = moduloSchedule(Corpus[I], Cydra.MD, Env);
    if (!R.Success)
      continue;
    KernelInfo Info = analyzeKernel(R.Time, R.II);
    Stages.add(Info.Stages);
    Prologue.add(Info.PrologueCycles);
    SlotWidth.add(Info.MaxSlotWidth);
    ++Sampled;
  }
  std::cout << "\npipeline shape over " << Sampled
            << " sampled schedules: stages avg "
            << formatFixed(Stages.mean(), 2) << " (max " << Stages.max()
            << "), prologue avg " << formatFixed(Prologue.mean(), 1)
            << " cycles, widest kernel slot avg "
            << formatFixed(SlotWidth.mean(), 2) << " ops\n";
  return 0;
}
