//===- bench/table5_scheduler.cpp - Table 5: loop benchmark ---------------===//
//
// Reproduces Table 5: characteristics of the modulo schedules produced by
// the Iterative Modulo Scheduler over the loop corpus on the Cydra 5 --
// operations per loop, initiation interval, II/MII, and scheduling
// decisions per operation -- plus the budget-sensitivity experiment (6N vs
// 2N decision budgets) reported in the text.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "support/TextTable.h"
#include "workload/Experiment.h"

#include <iostream>
#include "support/Stats.h"

using namespace rmd;

static void printRow(TextTable &T, const char *Label, const OnlineStats &S,
                     int Decimals) {
  T.row();
  T.cell(Label);
  T.cell(S.min(), Decimals);
  T.cell(formatFixed(100.0 * S.fractionAtMin(), 1) + "%");
  T.cell(S.mean(), Decimals);
  T.cell(S.max(), Decimals);
}

int main(int Argc, char **Argv) {
  rmd::StatsJsonGuard StatsJson(Argc, Argv, "table5_scheduler");
  MachineModel Cydra = makeCydra5();
  ExpandedMachine EM = expandAlternatives(Cydra.MD);

  CorpusParams Params; // 1327 loops, fixed seed
  std::vector<DepGraph> Corpus = buildCorpus(Cydra, Params);

  RepresentationSpec Spec;
  Spec.Kind = RepresentationSpec::Discrete;
  Spec.FlatMD = &EM.Flat;
  Spec.Label = "original/discrete";

  std::cout << "=== Table 5: characteristics of the " << Corpus.size()
            << "-loop benchmark (Cydra 5, IMS) ===\n\n";

  for (int BudgetRatio : {6, 2}) {
    ModuloScheduleOptions Options;
    Options.BudgetRatio = BudgetRatio;
    SchedulerExperimentResult R =
        runSchedulerExperiment(Cydra, EM.Groups, Spec, Corpus, Options);

    std::cout << "budget = " << BudgetRatio << "N decisions per attempt\n";
    TextTable T;
    T.row();
    T.cell("measurement");
    T.cell("min");
    T.cell("% at min");
    T.cell("avg");
    T.cell("max");
    printRow(T, "number of operations", R.OpsPerLoop, 2);
    printRow(T, "initiation interval (II)", R.II, 2);
    printRow(T, "II / MII", R.IIOverMII, 2);
    printRow(T, "sched. decisions / operation", R.DecisionsPerOp, 2);
    T.print(std::cout);

    std::cout << "loops scheduled: " << (R.Loops - R.Failed) << "/"
              << R.Loops << "; no decision ever reversed: "
              << formatFixed(100.0 * R.LoopsWithNoReversal /
                                 static_cast<double>(R.Loops),
                             1)
              << "% of loops; attempts exceeding the budget: "
              << formatFixed(100.0 * R.AttemptsBudgetExceeded /
                                 static_cast<double>(R.TotalAttempts),
                             1)
              << "%\n\n";
  }

  std::cout << "paper reference (budget 6N): ops 2.00/17.54/161.00; II "
               "1.00/11.52/165.00; II/MII 1.00 (95.6% at min)/1.01/1.50; "
               "decisions/op 1.00 (78.7% at min)/1.52/6.00; 9.6% of "
               "attempts exceeded 6N; with 2N the ratio drops to 1.14 with "
               "11.3% exceeded\n";
  return 0;
}
