//===- bench/perf_gate.cpp - Perf-regression gate CLI ---------------------===//
//
// Replays the pinned mini-corpus (the seven built-in machine models),
// measures reduction time and query throughput, and writes the
// "rmd-bench-v1" JSON document. Modes:
//
//   perf_gate [--out=FILE] [--repeats=N]
//     Measure and write the document (default: BENCH_pr7.json at the
//     repository root when built in-tree, else in the current directory;
//     --out=- for stdout).
//
//   perf_gate --check [--baseline=FILE] [--tolerance=PCT] ...
//     Additionally compare against the checked-in baseline
//     (bench/perf_baseline.json by default when built in-tree); exits 1 on
//     any metric regressing past the tolerance (default 25%).
//
//   perf_gate --write-baseline [--baseline=FILE] ...
//     Refresh the baseline from this machine's measurements, with headroom
//     applied (times scaled up, throughputs scaled down) so the gate trips
//     on real regressions, not run-to-run noise.
//
// Also honours --stats-json=<file> / RMD_STATS_JSON like every other
// binary (the corpus replay exercises the whole instrumented pipeline).
//
//===----------------------------------------------------------------------===//

#include "PerfGate.h"

#include "support/Stats.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

using namespace rmd;
using namespace rmd::bench;

#ifndef RMD_SOURCE_DIR
#define RMD_SOURCE_DIR ""
#endif

static void usage() {
  std::cerr << "usage: perf_gate [--check] [--write-baseline] "
               "[--baseline=FILE] [--out=FILE|-] [--repeats=N] "
               "[--tolerance=PCT] [--headroom=PCT] [--stats-json=FILE]\n";
}

int main(int Argc, char **Argv) {
  StatsJsonGuard StatsJson(Argc, Argv, "perf_gate");

  bool Check = false;
  bool WriteBaseline = false;
  std::string BaselinePath;
  std::string OutPath = std::string(RMD_SOURCE_DIR).empty()
                            ? "BENCH_pr7.json"
                            : std::string(RMD_SOURCE_DIR) + "/BENCH_pr7.json";
  int Repeats = 3;
  double Tolerance = 0.25;
  double Headroom = 0.50;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--check") {
      Check = true;
    } else if (Arg == "--write-baseline") {
      WriteBaseline = true;
    } else if (Arg.rfind("--baseline=", 0) == 0) {
      BaselinePath = Arg.substr(sizeof("--baseline=") - 1);
    } else if (Arg.rfind("--out=", 0) == 0) {
      OutPath = Arg.substr(sizeof("--out=") - 1);
    } else if (Arg.rfind("--repeats=", 0) == 0) {
      Repeats = std::atoi(Arg.c_str() + sizeof("--repeats=") - 1);
      if (Repeats < 1) {
        std::cerr << "perf_gate: error: bad repeat count\n";
        return 2;
      }
    } else if (Arg.rfind("--tolerance=", 0) == 0) {
      Tolerance = std::atof(Arg.c_str() + sizeof("--tolerance=") - 1) / 100.0;
    } else if (Arg.rfind("--headroom=", 0) == 0) {
      Headroom = std::atof(Arg.c_str() + sizeof("--headroom=") - 1) / 100.0;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "perf_gate: error: unknown argument '" << Arg << "'\n";
      usage();
      return 2;
    }
  }

  if (BaselinePath.empty())
    BaselinePath = std::string(RMD_SOURCE_DIR).empty()
                       ? "perf_baseline.json"
                       : std::string(RMD_SOURCE_DIR) +
                             "/bench/perf_baseline.json";

  std::vector<PerfEntry> Entries = measurePerfCorpus(Repeats);
  for (const PerfEntry &E : Entries)
    std::cerr << "perf_gate: " << E.Machine << ": reduce " << E.ReduceMs
              << " ms, discrete " << E.DiscreteMqps << " Mq/s, bitvector "
              << E.BitvectorMqps << " Mq/s\n";

  if (OutPath == "-") {
    writeBenchJson(std::cout, Entries, "perf_gate");
  } else {
    std::ofstream Out(OutPath, std::ios::trunc);
    if (!Out) {
      std::cerr << "perf_gate: error: cannot write '" << OutPath << "'\n";
      return 2;
    }
    writeBenchJson(Out, Entries, "perf_gate");
    std::cerr << "perf_gate: wrote " << OutPath << "\n";
  }

  if (WriteBaseline) {
    // Headroom absorbs machine-to-machine variance: the checked-in numbers
    // are deliberately worse than measured, so the gate's tolerance only
    // trips on (1 + headroom) * (1 + tolerance) real slowdowns.
    std::vector<PerfEntry> Padded = Entries;
    for (PerfEntry &E : Padded) {
      E.ReduceMs *= 1.0 + Headroom;
      E.DiscreteMqps /= 1.0 + Headroom;
      E.BitvectorMqps /= 1.0 + Headroom;
    }
    std::ofstream Out(BaselinePath, std::ios::trunc);
    if (!Out) {
      std::cerr << "perf_gate: error: cannot write '" << BaselinePath
                << "'\n";
      return 2;
    }
    writeBenchJson(Out, Padded, "perf_gate --write-baseline");
    std::cerr << "perf_gate: wrote baseline " << BaselinePath << "\n";
  }

  if (Check) {
    std::ifstream In(BaselinePath);
    std::vector<PerfEntry> Baseline;
    if (!In || !loadBenchJson(In, Baseline)) {
      std::cerr << "perf_gate: error: cannot load baseline '" << BaselinePath
                << "'\n";
      return 2;
    }
    std::vector<PerfRegression> Regressions =
        comparePerf(Baseline, Entries, Tolerance);
    for (const PerfRegression &R : Regressions)
      std::cerr << "perf_gate: REGRESSION: " << R.Machine << " " << R.Metric
                << ": baseline " << R.Baseline << ", current " << R.Current
                << "\n";
    if (!Regressions.empty())
      return 1;
    std::cerr << "perf_gate: OK, no regressions past "
              << (Tolerance * 100.0) << "%\n";
  }
  return 0;
}
