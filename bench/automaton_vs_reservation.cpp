//===- bench/automaton_vs_reservation.cpp - Section 2 comparison ----------===//
//
// Quantifies the paper's Section 2 argument against automaton-based
// contention detection under *unrestricted* scheduling: random-order
// insertion and removal traffic is driven through the discrete,
// bitvector, and forward/reverse-automaton query modules (all answering
// identically), and the work units, state memory, and wall-clock per call
// are compared.
//
// Automata shine on straight-line in-order issue (one lookup per query),
// but unrestricted insertion forces per-cycle state caching and
// re-propagation on every assign/free, and eviction (assign&free) needs
// pairwise replays -- the overheads this harness measures.
//
//===----------------------------------------------------------------------===//

#include "automaton/AutomatonQuery.h"
#include "machines/MachineModel.h"
#include "query/BitvectorQuery.h"
#include "query/DiscreteQuery.h"
#include "reduce/Reduction.h"
#include "support/RNG.h"
#include "support/TextTable.h"

#include <chrono>
#include <iostream>
#include <memory>
#include "support/Stats.h"

using namespace rmd;

namespace {

struct DriveResult {
  WorkCounters Counters;
  double Nanoseconds = 0;
  size_t StateBytes = 0;
};

/// Random-order insertion/removal traffic (the unrestricted model): ops
/// are placed at arbitrary cycles, occasionally force-placed (eviction),
/// occasionally removed.
DriveResult drive(ContentionQueryModule &Q, const MachineDescription &Flat,
                  int Horizon, uint64_t Seed, int Steps) {
  RNG R(Seed);
  InstanceId Next = 0;
  std::vector<bool> Live;
  std::vector<std::pair<OpId, int>> Info;

  auto Start = std::chrono::steady_clock::now();
  for (int Step = 0; Step < Steps; ++Step) {
    OpId Op = static_cast<OpId>(R.nextBelow(Flat.numOperations()));
    int MaxStart = Horizon - Flat.operation(Op).table().length();
    if (MaxStart < 0)
      continue;
    int Cycle = static_cast<int>(R.nextBelow(MaxStart + 1));

    if (R.nextChance(1, 6)) {
      std::vector<InstanceId> Evicted;
      InstanceId Id = Next++;
      Q.assignAndFree(Op, Cycle, Id, Evicted);
      Live.push_back(true);
      Info.push_back({Op, Cycle});
      for (InstanceId V : Evicted)
        Live[static_cast<size_t>(V)] = false;
    } else if (Q.check(Op, Cycle)) {
      InstanceId Id = Next++;
      Q.assign(Op, Cycle, Id);
      Live.push_back(true);
      Info.push_back({Op, Cycle});
    } else {
      ++Next;
      Live.push_back(false);
      Info.push_back({0, 0});
    }

    if (R.nextChance(1, 4)) {
      for (size_t I = 0; I < Live.size(); ++I)
        if (Live[I]) {
          Q.free(Info[I].first, Info[I].second,
                 static_cast<InstanceId>(I));
          Live[I] = false;
          break;
        }
    }
  }
  auto End = std::chrono::steady_clock::now();

  DriveResult Result;
  Result.Counters = Q.counters();
  Result.Nanoseconds =
      std::chrono::duration<double, std::nano>(End - Start).count();
  return Result;
}

double perCall(uint64_t Units, uint64_t Calls) {
  return Calls ? static_cast<double>(Units) / Calls : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  rmd::StatsJsonGuard StatsJson(Argc, Argv, "automaton_vs_reservation");
  const int Horizon = 96;
  const int Steps = 6000;

  for (const MachineModel &M : {makeMipsR3000(), makeAlpha21064()}) {
    MachineDescription Flat = expandAlternatives(M.MD).Flat;
    MachineDescription Reduced = reduceMachine(Flat).Reduced;

    std::cout << "=== unrestricted-scheduling query traffic: "
              << M.MD.name() << " (reduced description) ===\n\n";

    DiscreteQueryModule Discrete(Reduced, QueryConfig::linear());
    BitvectorQueryModule Bitvector(Reduced, QueryConfig::linear());
    AutomatonQueryModule Automaton(Reduced, Horizon);

    struct Row {
      const char *Label;
      ContentionQueryModule *Module;
      size_t StateBytes;
    };
    Row Rows[] = {
        {"discrete", &Discrete, 0},
        {"bitvector-64", &Bitvector, 0},
        {"fwd+rev automata", &Automaton, Automaton.cachedStateBytes()},
    };

    TextTable T;
    T.row();
    T.cell("module");
    T.cell("check u/call");
    T.cell("assign u/call");
    T.cell("free u/call");
    T.cell("a&f u/call");
    T.cell("ns/call");
    for (Row &RowSpec : Rows) {
      DriveResult D =
          drive(*RowSpec.Module, Reduced, Horizon, /*Seed=*/1996, Steps);
      T.row();
      T.cell(RowSpec.Label);
      T.cell(perCall(D.Counters.CheckUnits, D.Counters.CheckCalls), 2);
      T.cell(perCall(D.Counters.AssignUnits, D.Counters.AssignCalls), 2);
      T.cell(perCall(D.Counters.FreeUnits, D.Counters.FreeCalls), 2);
      T.cell(perCall(D.Counters.AssignFreeUnits,
                     D.Counters.AssignFreeCalls),
             2);
      T.cell(D.Nanoseconds / static_cast<double>(D.Counters.totalCalls()),
             0);
    }
    T.print(std::cout);

    std::cout << "\nstate memory for a " << Horizon
              << "-cycle schedule: reservation table "
              << (Reduced.numResources() * Horizon + 7) / 8
              << " bytes vs automaton cached states "
              << Automaton.cachedStateBytes() << " bytes (+ "
              << Automaton.tableBytes() << " bytes of transition tables)\n"
              << "\n";
  }
  return 0;
}
