//===- bench/BenchSupport.cpp ---------------------------------------------===//

#include "BenchSupport.h"

#include "reduce/Metrics.h"
#include "support/TextTable.h"

#include <algorithm>
#include <ostream>

using namespace rmd;
using namespace rmd::bench;

ClassMachine rmd::bench::prepareClassMachine(const MachineDescription &MD) {
  ClassMachine CM;
  CM.Flat = expandAlternatives(MD).Flat;
  ForbiddenLatencyMatrix FlatFLM = ForbiddenLatencyMatrix::compute(CM.Flat);
  CM.Partition = partitionOperationClasses(FlatFLM);
  CM.Classes = buildClassMachine(CM.Flat, CM.Partition);

  ForbiddenLatencyMatrix ClassFLM =
      ForbiddenLatencyMatrix::compute(CM.Classes);
  CM.CanonicalLatencies = ClassFLM.canonicalCount();
  CM.TotalLatencyEntries = ClassFLM.totalEntries();
  CM.MaxLatency = ClassFLM.maxAbsoluteLatency();
  return CM;
}

std::vector<ReductionColumn>
rmd::bench::buildReductionColumns(const MachineDescription &ClassMD) {
  std::vector<ReductionColumn> Columns;

  // Column 1: the original description. Its word metric uses the densest
  // packing its resource count allows in a 64-bit word.
  unsigned OrigK = ClassMD.numResources() <= 64
                       ? cyclesPerWord(ClassMD.numResources(), 64)
                       : 1;
  Columns.push_back(ReductionColumn{"original", ClassMD, OrigK});

  // Column 2: res-uses reduction (discrete representation).
  ReductionResult ResUses = reduceMachine(ClassMD);
  size_t ReducedResources = ResUses.Reduced.numResources();
  Columns.push_back(
      ReductionColumn{"res-uses", ResUses.Reduced,
                      cyclesPerWord(std::max<size_t>(ReducedResources, 1),
                                    64)});

  // Word columns: k = 1, then the maximal packings for 32- and 64-bit
  // words given the reduced resource count.
  std::vector<unsigned> Ks = {1};
  if (ReducedResources > 0) {
    Ks.push_back(cyclesPerWord(ReducedResources, 32));
    Ks.push_back(cyclesPerWord(ReducedResources, 64));
  }
  std::sort(Ks.begin(), Ks.end());
  Ks.erase(std::unique(Ks.begin(), Ks.end()), Ks.end());

  for (unsigned K : Ks) {
    ReductionOptions Options;
    Options.Objective = SelectionObjective::wordUses(K);
    ReductionResult Word = reduceMachine(ClassMD, Options);
    Columns.push_back(ReductionColumn{
        std::to_string(K) + "-cycle-word", Word.Reduced, K});
  }
  return Columns;
}

void rmd::bench::printReductionTable(std::ostream &OS,
                                     const std::string &Title,
                                     const ClassMachine &CM) {
  OS << Title << '\n';
  OS << "  " << CM.Classes.numOperations() << " operation classes, "
     << CM.CanonicalLatencies << " forbidden latencies (canonical; "
     << CM.TotalLatencyEntries << " matrix entries, all <= "
     << CM.MaxLatency << ")\n\n";

  std::vector<ReductionColumn> Columns = buildReductionColumns(CM.Classes);

  TextTable T;
  T.row();
  T.cell("objective");
  for (const ReductionColumn &C : Columns)
    T.cell(C.Label);

  T.row();
  T.cell("number of resources");
  for (const ReductionColumn &C : Columns)
    T.cellInt(static_cast<long long>(C.Description.numResources()));

  T.row();
  T.cell("avg resource usages / operation");
  for (const ReductionColumn &C : Columns)
    T.cell(averageResUsesPerOperation(C.Description), 1);

  T.row();
  T.cell("avg word usages / operation");
  for (const ReductionColumn &C : Columns)
    T.cell(averageWordUsesPerOperation(C.Description, C.MetricK), 1);

  T.row();
  T.cell("(word metric k)");
  for (const ReductionColumn &C : Columns)
    T.cellInt(C.MetricK);

  T.print(OS);

  // The paper's memory headline: bits of reserved-table state per cycle.
  OS << "\nreserved-table state: original " << CM.Classes.numResources()
     << " bits/cycle vs reduced "
     << Columns[1].Description.numResources() << " bits/cycle ("
     << formatFixed(100.0 *
                        static_cast<double>(
                            Columns[1].Description.numResources()) /
                        static_cast<double>(
                            std::max<size_t>(CM.Classes.numResources(), 1)),
                    0)
     << "% of original)\n";
}
