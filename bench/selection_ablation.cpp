//===- bench/selection_ablation.cpp - Heuristic vs optimal cover ----------===//
//
// Ablation for the Section 5 selection heuristic. The paper: "Although
// integer programming can solve these minimum cover problems, we have
// found a fast and effective heuristic." This harness quantifies
// "effective": it runs the greedy cover and an exact branch-and-bound
// minimum-usage cover on the paper's example machine and a population of
// random machines, reporting the optimality gap, plus the greedy result
// on the three (exactly solvable or not) evaluation machines.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"
#include "reduce/ExactCover.h"
#include "reduce/GeneratingSet.h"
#include "reduce/Reduction.h"
#include "support/RNG.h"
#include "support/TextTable.h"

#include <iostream>
#include "support/Stats.h"

using namespace rmd;

namespace {

struct GapSample {
  size_t Greedy = 0;
  size_t Optimal = 0;
  bool Solved = false;
};

GapSample measure(const MachineDescription &MD, uint64_t NodeBudget) {
  ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(MD);
  std::vector<SynthesizedResource> Pruned =
      pruneGeneratingSet(buildGeneratingSet(FLM));

  GapSample Sample;
  Sample.Greedy =
      selectCover(FLM, Pruned, SelectionObjective::resUses())
          .numSelectedUsages();
  if (auto Exact = selectCoverOptimal(FLM, Pruned, NodeBudget)) {
    Sample.Optimal = Exact->Selection.numSelectedUsages();
    Sample.Solved = true;
  }
  return Sample;
}

MachineDescription randomMachine(RNG &R) {
  MachineDescription MD("random");
  unsigned Resources = 3 + static_cast<unsigned>(R.nextBelow(5));
  unsigned Ops = 2 + static_cast<unsigned>(R.nextBelow(4));
  for (unsigned I = 0; I < Resources; ++I)
    MD.addResource("r" + std::to_string(I));
  for (unsigned O = 0; O < Ops; ++O) {
    ReservationTable T;
    unsigned Usages = 1 + static_cast<unsigned>(R.nextBelow(4));
    for (unsigned U = 0; U < Usages; ++U)
      T.addUsage(static_cast<ResourceId>(R.nextBelow(Resources)),
                 static_cast<int>(R.nextBelow(6)));
    MD.addOperation("op" + std::to_string(O), std::move(T));
  }
  return MD;
}

} // namespace

int main(int Argc, char **Argv) {
  rmd::StatsJsonGuard StatsJson(Argc, Argv, "selection_ablation");
  std::cout << "=== selection heuristic vs exact minimum-usage cover ===\n\n";

  // The paper's example machine: greedy is known optimal here (5 usages,
  // Figure 1d).
  GapSample Fig1 = measure(makeFig1Machine(), 1u << 22);
  std::cout << "fig1: greedy " << Fig1.Greedy << " usages, optimal "
            << (Fig1.Solved ? std::to_string(Fig1.Optimal) : "n/a") << "\n\n";

  // Random-machine population.
  RNG R(20250708);
  int Solved = 0, Exactly = 0;
  size_t GapSum = 0, WorstGap = 0;
  const int Trials = 150;
  for (int Trial = 0; Trial < Trials; ++Trial) {
    GapSample S = measure(randomMachine(R), 400000);
    if (!S.Solved)
      continue;
    ++Solved;
    size_t Gap = S.Greedy - S.Optimal;
    Exactly += Gap == 0;
    GapSum += Gap;
    WorstGap = std::max(WorstGap, Gap);
  }
  std::cout << "random machines: " << Solved << "/" << Trials
            << " solved exactly within budget; greedy optimal in "
            << Exactly << " (" << (100 * Exactly / std::max(Solved, 1))
            << "%), average gap "
            << formatFixed(static_cast<double>(GapSum) /
                               std::max(Solved, 1),
                           2)
            << " usages, worst gap " << WorstGap << "\n\n";

  // Evaluation machines: report greedy result and whether exact search is
  // feasible at all (it usually is not -- hence the heuristic).
  TextTable T;
  T.row();
  T.cell("machine");
  T.cell("greedy usages");
  T.cell("exact usages");
  T.cell("nodes");
  for (const MachineModel &M :
       {makeToyVliw(), makeMipsR3000(), makeAlpha21064(), makeCydra5()}) {
    MachineDescription Flat = expandAlternatives(M.MD).Flat;
    ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(Flat);
    std::vector<SynthesizedResource> Pruned =
        pruneGeneratingSet(buildGeneratingSet(FLM));
    size_t Greedy = selectCover(FLM, Pruned, SelectionObjective::resUses())
                        .numSelectedUsages();
    auto Exact = selectCoverOptimal(FLM, Pruned, 3'000'000);
    T.row();
    T.cell(M.MD.name());
    T.cellInt(static_cast<long long>(Greedy));
    if (Exact) {
      T.cellInt(static_cast<long long>(Exact->Selection.numSelectedUsages()));
      T.cellInt(static_cast<long long>(Exact->NodesExpanded));
    } else {
      T.cell("budget exceeded");
      T.cell(">3M");
    }
  }
  T.print(std::cout);
  return 0;
}
