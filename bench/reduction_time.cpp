//===- bench/reduction_time.cpp - Reduction & automaton build cost --------===//
//
// google-benchmark timings for the offline costs: running the full
// reduction pipeline (forbidden latency matrix, Algorithm 1, pruning,
// selection) per machine and objective, against building the baseline
// finite-state automata. The paper reports 11 minutes on a SPARC-20 for
// the Cydra 5; the reproduction's shape statement is simply that automated
// reduction is cheap enough to run on every machine-description change.
//
// The reduce benchmarks take (machine, threads) argument pairs and are
// split cache-cold (full pipeline, ReductionCache entry evicted each
// iteration) vs cache-warm (content-addressed hit: one MDL parse, no
// reduction), so the memoization win is visible next to the raw pipeline
// cost. The big ScaledVliw configs are the speedup acceptance gate for the
// parallel pipeline; thread counts above the core count measure
// oversubscription, not speedup.
//
//===----------------------------------------------------------------------===//

#include "automaton/PipelineAutomaton.h"
#include "machines/MachineModel.h"
#include "reduce/Reduction.h"
#include "reduce/ReductionCache.h"
#include "support/Stats.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include <unistd.h>

using namespace rmd;

namespace {

MachineDescription flatFor(int Index) {
  switch (Index) {
  case 0:
    return expandAlternatives(makeCydra5().MD).Flat;
  case 1:
    return expandAlternatives(makeMipsR3000().MD).Flat;
  case 2:
    return expandAlternatives(makeAlpha21064().MD).Flat;
  case 3:
    return expandAlternatives(makeScaledVliw(16, 48).MD).Flat;
  case 4:
    return expandAlternatives(makeScaledVliw(20, 48).MD).Flat;
  default:
    return expandAlternatives(makeScaledVliw(24, 48).MD).Flat;
  }
}

const char *machineName(int Index) {
  switch (Index) {
  case 0:
    return "cydra5";
  case 1:
    return "mips";
  case 2:
    return "alpha";
  case 3:
    return "vliw16u48d";
  case 4:
    return "vliw20u48d";
  default:
    return "vliw24u48d";
  }
}

std::string labelFor(const benchmark::State &State) {
  return std::string(machineName(static_cast<int>(State.range(0)))) +
         "/threads:" + std::to_string(State.range(1));
}

/// A throwaway cache directory, removed when the benchmark ends.
struct ScratchCache {
  ScratchCache()
      : Dir("/tmp/rmd-bench-cache-" + std::to_string(::getpid())),
        Cache(Dir) {}
  ~ScratchCache() {
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
  }
  std::string Dir;
  ReductionCache Cache;
};

void BM_ReduceResUses(benchmark::State &State) {
  MachineDescription Flat = flatFor(static_cast<int>(State.range(0)));
  State.SetLabel(labelFor(State));
  ReductionOptions Options;
  Options.Threads = static_cast<unsigned>(State.range(1));
  for (auto _ : State) {
    (void)_;
    ReductionResult R = reduceMachine(Flat, Options);
    benchmark::DoNotOptimize(R.Reduced.numResources());
  }
}

void BM_ReduceWord64(benchmark::State &State) {
  MachineDescription Flat = flatFor(static_cast<int>(State.range(0)));
  State.SetLabel(labelFor(State));
  ReductionOptions Options;
  Options.Objective = SelectionObjective::wordUses(4);
  Options.Threads = static_cast<unsigned>(State.range(1));
  for (auto _ : State) {
    (void)_;
    ReductionResult R = reduceMachine(Flat, Options);
    benchmark::DoNotOptimize(R.Reduced.numResources());
  }
}

/// Cache-cold: every iteration starts from an evicted entry, so the timed
/// region is the full pipeline plus one store. The eviction itself is
/// outside the timed region.
void BM_ReduceCacheCold(benchmark::State &State) {
  MachineDescription Flat = flatFor(static_cast<int>(State.range(0)));
  State.SetLabel(labelFor(State));
  ReductionOptions Options;
  Options.Threads = static_cast<unsigned>(State.range(1));
  ScratchCache Scratch;
  std::string Key = ReductionCache::key(Flat, Options.Objective);
  for (auto _ : State) {
    (void)_;
    State.PauseTiming();
    Scratch.Cache.evict(Key);
    State.ResumeTiming();
    bool Hit = true;
    ReductionResult R = Scratch.Cache.reduce(Flat, Options, &Hit);
    if (Hit)
      State.SkipWithError("expected a cache miss");
    benchmark::DoNotOptimize(R.Reduced.numResources());
  }
}

/// Cache-warm: the entry exists, so the timed region is a content-hash of
/// the input plus one MDL parse of the stored result.
void BM_ReduceCacheWarm(benchmark::State &State) {
  MachineDescription Flat = flatFor(static_cast<int>(State.range(0)));
  State.SetLabel(labelFor(State));
  ReductionOptions Options;
  Options.Threads = static_cast<unsigned>(State.range(1));
  ScratchCache Scratch;
  (void)Scratch.Cache.reduce(Flat, Options); // populate
  for (auto _ : State) {
    (void)_;
    bool Hit = false;
    ReductionResult R = Scratch.Cache.reduce(Flat, Options, &Hit);
    if (!Hit)
      State.SkipWithError("expected a cache hit");
    benchmark::DoNotOptimize(R.Reduced.numResources());
  }
}

void BM_ForbiddenLatencyMatrix(benchmark::State &State) {
  MachineDescription Flat = flatFor(static_cast<int>(State.range(0)));
  State.SetLabel(machineName(static_cast<int>(State.range(0))));
  for (auto _ : State) {
    (void)_;
    ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(Flat);
    benchmark::DoNotOptimize(FLM.totalEntries());
  }
}

void BM_AutomatonBuild(benchmark::State &State) {
  MachineDescription Flat = flatFor(static_cast<int>(State.range(0)));
  State.SetLabel(machineName(static_cast<int>(State.range(0))));
  for (auto _ : State) {
    (void)_;
    auto A = PipelineAutomaton::build(Flat, 1u << 22);
    benchmark::DoNotOptimize(A.has_value() ? A->numStates() : 0);
  }
}

} // namespace

BENCHMARK(BM_ForbiddenLatencyMatrix)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_ReduceResUses)
    ->Args({0, 1})->Args({1, 1})->Args({2, 1})
    ->Args({3, 1})->Args({3, 8})
    ->Args({4, 1})->Args({4, 8})
    ->Args({5, 1})->Args({5, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReduceWord64)
    ->Args({0, 1})->Args({1, 1})->Args({2, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReduceCacheCold)
    ->Args({0, 1})->Args({3, 1})->Args({5, 1})->Args({5, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReduceCacheWarm)
    ->Args({0, 1})->Args({3, 1})->Args({5, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AutomatonBuild)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

// BENCHMARK_MAIN(), plus the shared --stats-json plumbing. The guard strips
// its flag from argv before google-benchmark parses the command line.
int main(int Argc, char **Argv) {
  rmd::StatsJsonGuard StatsJson(Argc, Argv, "reduction_time");
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
