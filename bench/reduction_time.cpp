//===- bench/reduction_time.cpp - Reduction & automaton build cost --------===//
//
// google-benchmark timings for the offline costs: running the full
// reduction pipeline (forbidden latency matrix, Algorithm 1, pruning,
// selection) per machine and objective, against building the baseline
// finite-state automata. The paper reports 11 minutes on a SPARC-20 for
// the Cydra 5; the reproduction's shape statement is simply that automated
// reduction is cheap enough to run on every machine-description change.
//
//===----------------------------------------------------------------------===//

#include "automaton/PipelineAutomaton.h"
#include "machines/MachineModel.h"
#include "reduce/Reduction.h"

#include <benchmark/benchmark.h>

using namespace rmd;

namespace {

MachineDescription flatFor(int Index) {
  switch (Index) {
  case 0:
    return expandAlternatives(makeCydra5().MD).Flat;
  case 1:
    return expandAlternatives(makeMipsR3000().MD).Flat;
  default:
    return expandAlternatives(makeAlpha21064().MD).Flat;
  }
}

const char *machineName(int Index) {
  switch (Index) {
  case 0:
    return "cydra5";
  case 1:
    return "mips";
  default:
    return "alpha";
  }
}

void BM_ReduceResUses(benchmark::State &State) {
  MachineDescription Flat = flatFor(static_cast<int>(State.range(0)));
  State.SetLabel(machineName(static_cast<int>(State.range(0))));
  for (auto _ : State) {
    (void)_;
    ReductionResult R = reduceMachine(Flat);
    benchmark::DoNotOptimize(R.Reduced.numResources());
  }
}

void BM_ReduceWord64(benchmark::State &State) {
  MachineDescription Flat = flatFor(static_cast<int>(State.range(0)));
  State.SetLabel(machineName(static_cast<int>(State.range(0))));
  ReductionOptions Options;
  Options.Objective = SelectionObjective::wordUses(4);
  for (auto _ : State) {
    (void)_;
    ReductionResult R = reduceMachine(Flat, Options);
    benchmark::DoNotOptimize(R.Reduced.numResources());
  }
}

void BM_ForbiddenLatencyMatrix(benchmark::State &State) {
  MachineDescription Flat = flatFor(static_cast<int>(State.range(0)));
  State.SetLabel(machineName(static_cast<int>(State.range(0))));
  for (auto _ : State) {
    (void)_;
    ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(Flat);
    benchmark::DoNotOptimize(FLM.totalEntries());
  }
}

void BM_AutomatonBuild(benchmark::State &State) {
  MachineDescription Flat = flatFor(static_cast<int>(State.range(0)));
  State.SetLabel(machineName(static_cast<int>(State.range(0))));
  for (auto _ : State) {
    (void)_;
    auto A = PipelineAutomaton::build(Flat, 1u << 22);
    benchmark::DoNotOptimize(A.has_value() ? A->numStates() : 0);
  }
}

} // namespace

BENCHMARK(BM_ForbiddenLatencyMatrix)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_ReduceResUses)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReduceWord64)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AutomatonBuild)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
