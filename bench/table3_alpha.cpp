//===- bench/table3_alpha.cpp - Table 3: DEC Alpha 21064 ------------------===//
//
// Reproduces Table 3 (DEC Alpha 21064 reduction results) plus the Bala &
// Rubin comparison of Section 6: forward/reverse automaton state counts
// and the per-cycle scheduler-state memory comparison (the paper: 64 bits
// per schedule cycle to cache factored forward+reverse automaton states vs
// 7 bits per cycle for the bitvector reduced description).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "automaton/PipelineAutomaton.h"
#include "reduce/Metrics.h"

#include <iostream>
#include "support/Stats.h"

using namespace rmd;

int main(int Argc, char **Argv) {
  rmd::StatsJsonGuard StatsJson(Argc, Argv, "table3_alpha");
  MachineModel Alpha = makeAlpha21064();
  bench::ClassMachine CM = bench::prepareClassMachine(Alpha.MD);

  std::cout << "=== Table 3: reduced machine descriptions, DEC Alpha "
               "21064 ===\n\n";
  bench::printReductionTable(std::cout, "DEC Alpha 21064 (reconstruction)",
                             CM);

  std::cout << "\n--- forward/reverse automata baseline (Bala-Rubin) ---\n";
  // Built from the reduced description (same recognized language, far
  // fewer pending-usage states than the raw hardware-level description).
  MachineDescription ForAutomaton = reduceMachine(CM.Classes).Reduced;
  size_t Cap = 1u << 22;
  auto Fwd = PipelineAutomaton::build(ForAutomaton, Cap);
  auto Rev = PipelineAutomaton::buildReverse(ForAutomaton, Cap);
  if (Fwd && Rev) {
    std::cout << "forward automaton:  " << Fwd->numStates() << " states, "
              << Fwd->tableBytes() << " bytes\n";
    std::cout << "reverse automaton:  " << Rev->numStates() << " states, "
              << Rev->tableBytes() << " bytes\n";
    // Unrestricted scheduling with automata caches one forward and one
    // reverse state per schedule cycle; with S total states that is
    // 2*ceil(log2 S) bits per cycle, vs numResources bits for the reduced
    // bitvector reserved table.
    size_t MaxStates = std::max(Fwd->numStates(), Rev->numStates());
    unsigned Bits = 1;
    while ((1ull << Bits) < MaxStates)
      ++Bits;
    ReductionResult Res = reduceMachine(CM.Classes);
    std::cout << "scheduler state: automata ~" << 2 * Bits
              << " bits/cycle vs reduced bitvector "
              << Res.Reduced.numResources() << " bits/cycle\n";
  } else {
    std::cout << "automaton construction exceeded the state cap ("
              << Cap << " states) -- the state-explosion problem the "
              << "reservation-table approach avoids\n";
  }
  std::cout << "\npaper reference: 12 classes, 293 forbidden latencies "
               "(< 58); resources 87 -> 9 (word objectives), res usages "
               "12.8 -> ~5-12, word usages ~2.0 at 9 cycles/64-bit word; "
               "Bala-Rubin factored automata: (237+232) forward + "
               "(237+231) reverse states, ~64 bits/cycle cached state vs 7 "
               "bits/cycle for the bitvector reduction\n";
  return 0;
}
