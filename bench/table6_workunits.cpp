//===- bench/table6_workunits.cpp - Table 6: query module work ------------===//
//
// Reproduces Table 6: average work units per call of the contention query
// module's basic functions (check, assign&free, free) while the Iterative
// Modulo Scheduler processes the loop corpus on the Cydra 5, across five
// machine representations:
//
//   1. original description, discrete representation;
//   2. res-uses reduction, discrete representation;
//   3-5. k-cycle-word reductions, bitvector representation with k packed
//        cycle-bitvectors per word.
//
// One work unit handles one resource usage (discrete) or one nonempty word
// (bitvector); the optimistic-to-update transition of assign&free is
// charged to assign&free, exactly as in Section 8. The bottom row is the
// call-frequency-weighted sum -- the paper's 2.9x headline.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "reduce/Metrics.h"
#include "support/TextTable.h"
#include "workload/Experiment.h"

#include <iostream>
#include "support/Stats.h"

using namespace rmd;

int main(int Argc, char **Argv) {
  rmd::StatsJsonGuard StatsJson(Argc, Argv, "table6_workunits");
  MachineModel Cydra = makeCydra5();
  ExpandedMachine EM = expandAlternatives(Cydra.MD);

  // Representations under test. Reductions run on the full expanded
  // machine so operation ids line up with the scheduler's.
  ReductionResult ResUses = reduceMachine(EM.Flat);
  unsigned MaxK = cyclesPerWord(
      std::max<size_t>(ResUses.Reduced.numResources(), 1), 64);

  std::vector<unsigned> Ks;
  for (unsigned K : {1u, 2u, 4u})
    if (K <= MaxK)
      Ks.push_back(K);
  if (Ks.empty() || Ks.back() != MaxK)
    Ks.push_back(MaxK);

  std::vector<MachineDescription> WordReductions;
  for (unsigned K : Ks) {
    ReductionOptions Options;
    Options.Objective = SelectionObjective::wordUses(K);
    WordReductions.push_back(reduceMachine(EM.Flat, Options).Reduced);
  }

  std::vector<RepresentationSpec> Specs;
  {
    RepresentationSpec S;
    S.Kind = RepresentationSpec::Discrete;
    S.FlatMD = &EM.Flat;
    S.Label = "original";
    Specs.push_back(S);
    S.FlatMD = &ResUses.Reduced;
    S.Label = "res-uses";
    Specs.push_back(S);
    for (size_t I = 0; I < Ks.size(); ++I) {
      RepresentationSpec W;
      W.Kind = RepresentationSpec::Bitvector;
      W.WordBits = 64;
      W.CyclesPerWord = Ks[I];
      W.FlatMD = &WordReductions[I];
      W.Label = std::to_string(Ks[I]) + "-cycle-word";
      Specs.push_back(W);
    }
  }

  CorpusParams Params; // 1327 loops
  std::vector<DepGraph> Corpus = buildCorpus(Cydra, Params);

  std::cout << "=== Table 6: work units per call, " << Corpus.size()
            << "-loop benchmark on the Cydra 5 ===\n\n";

  std::vector<SchedulerExperimentResult> Results;
  for (const RepresentationSpec &Spec : Specs)
    Results.push_back(
        runSchedulerExperiment(Cydra, EM.Groups, Spec, Corpus));

  // All representations answer queries identically, so call counts match;
  // verify before printing.
  for (const SchedulerExperimentResult &R : Results) {
    if (R.Counters.totalCalls() != Results[0].Counters.totalCalls()) {
      std::cerr << "representation " << R.Label
                << " diverged from the reference scheduling trace\n";
      return 1;
    }
  }

  const WorkCounters &Ref = Results[0].Counters;
  uint64_t TotalCalls = Ref.totalCalls();
  double FreqCheck = static_cast<double>(Ref.CheckCalls) / TotalCalls;
  double FreqAssignFree =
      static_cast<double>(Ref.AssignFreeCalls) / TotalCalls;
  double FreqFree = static_cast<double>(Ref.FreeCalls) / TotalCalls;

  TextTable T;
  T.row();
  T.cell("function");
  for (const SchedulerExperimentResult &R : Results)
    T.cell(R.Label);
  T.cell("frequency");

  auto perCall = [](uint64_t Units, uint64_t Calls) {
    return Calls ? static_cast<double>(Units) / Calls : 0.0;
  };

  T.row();
  T.cell("check");
  for (const SchedulerExperimentResult &R : Results)
    T.cell(perCall(R.Counters.CheckUnits, R.Counters.CheckCalls), 2);
  T.cell(formatFixed(100 * FreqCheck, 1) + "%");

  T.row();
  T.cell("assign&free");
  for (const SchedulerExperimentResult &R : Results)
    T.cell(perCall(R.Counters.AssignFreeUnits, R.Counters.AssignFreeCalls),
           2);
  T.cell(formatFixed(100 * FreqAssignFree, 1) + "%");

  T.row();
  T.cell("free");
  for (const SchedulerExperimentResult &R : Results)
    T.cell(perCall(R.Counters.FreeUnits, R.Counters.FreeCalls), 2);
  T.cell(formatFixed(100 * FreqFree, 1) + "%");

  T.row();
  T.cell("weighted sum");
  std::vector<double> Weighted;
  for (const SchedulerExperimentResult &R : Results) {
    double W = FreqCheck * perCall(R.Counters.CheckUnits,
                                   R.Counters.CheckCalls) +
               FreqAssignFree * perCall(R.Counters.AssignFreeUnits,
                                        R.Counters.AssignFreeCalls) +
               FreqFree * perCall(R.Counters.FreeUnits,
                                  R.Counters.FreeCalls);
    Weighted.push_back(W);
    T.cell(W, 2);
  }
  T.cell("100.0%");
  T.print(std::cout);

  std::cout << "\nspeedup of weighted work vs original: ";
  for (size_t I = 1; I < Weighted.size(); ++I)
    std::cout << Results[I].Label << " "
              << formatFixed(Weighted[0] / Weighted[I], 2) << "x  ";
  std::cout << "\n";

  // The check-query distribution reported in Section 8.
  const SchedulerExperimentResult &R0 = Results[0];
  std::cout << "\nchecks per scheduling decision: avg "
            << formatFixed(R0.checksPerDecision(), 2) << "; distribution:";
  uint64_t Decisions = 0;
  for (uint64_t C : R0.CheckHistogram)
    Decisions += C;
  for (size_t I = 0; I <= 4 && I < R0.CheckHistogram.size(); ++I)
    std::cout << " " << I << ":"
              << formatFixed(100.0 * R0.CheckHistogram[I] / Decisions, 1)
              << "%";
  std::cout << " ...\n";
  std::cout << "assign&free calls that evicted operations: "
            << formatFixed(100.0 * R0.AssignFreeCallsWithEviction /
                               static_cast<double>(
                                   R0.Counters.AssignFreeCalls),
                           1)
            << "%; reversals by resource conflict: "
            << R0.ReversalsByResource
            << ", by dependence violation: " << R0.ReversalsByDependence
            << "\n";

  // Extension ablation: the union-mask check-with-alternatives fast path
  // ("other more efficient techniques could be implemented", Section 7).
  // Call counts change (one union check replaces per-alternative checks),
  // so only total work is compared.
  {
    RepresentationSpec Fast = Specs.back();
    Fast.UnionAlternativeCheck = true;
    Fast.Label = Fast.Label + "+union";
    SchedulerExperimentResult R =
        runSchedulerExperiment(Cydra, EM.Groups, Fast, Corpus);
    const SchedulerExperimentResult &Base = Results.back();
    std::cout << "\nextension, union check-with-alt on " << Base.Label
              << ": total units "
              << Base.Counters.totalUnits() << " -> "
              << R.Counters.totalUnits() << " ("
              << formatFixed(
                     static_cast<double>(Base.Counters.totalUnits()) /
                         static_cast<double>(R.Counters.totalUnits()),
                     2)
              << "x), check units "
              << Base.Counters.CheckUnits << " -> "
              << R.Counters.CheckUnits << "\n";
  }

  std::cout << "\npaper reference: check 2.62 -> 1.11, assign&free 5.68 -> "
               "1.63, free 6.48 -> 1.29; weighted sum 3.46 -> 1.21 (2.9x); "
               "frequencies 75.6/16.0/8.4%; 4.74 checks per decision; "
               "13.0%% of assign&free calls evicted; 14.6%% of reversals "
               "from resource conflicts\n";
  return 0;
}
