//===- bench/priority_ablation.cpp - IMS priority functions ---------------===//
//
// Ablation over the Iterative Modulo Scheduler's priority function. Rau
// argues for height-based priority (operations along critical paths
// first); this harness compares it against a top-down (depth) order and a
// naive source order over the loop corpus, measuring schedule quality
// (II/MII) and scheduling effort (decisions per operation, budget
// blowouts).
//
//===----------------------------------------------------------------------===//

#include "support/TextTable.h"
#include "workload/Experiment.h"

#include <iostream>
#include "support/Stats.h"

using namespace rmd;

int main(int Argc, char **Argv) {
  rmd::StatsJsonGuard StatsJson(Argc, Argv, "priority_ablation");
  MachineModel Cydra = makeCydra5();
  ExpandedMachine EM = expandAlternatives(Cydra.MD);

  CorpusParams Params;
  Params.LoopCount = 600; // enough for stable averages, fast to run
  std::vector<DepGraph> Corpus = buildCorpus(Cydra, Params);

  RepresentationSpec Spec;
  Spec.Kind = RepresentationSpec::Discrete;
  Spec.FlatMD = &EM.Flat;
  Spec.Label = "original/discrete";

  struct Variant {
    const char *Label;
    SchedulePriority Priority;
  };
  Variant Variants[] = {
      {"height (Rau)", SchedulePriority::Height},
      {"depth (top-down)", SchedulePriority::Depth},
      {"source order", SchedulePriority::SourceOrder},
  };

  std::cout << "=== IMS priority-function ablation (" << Corpus.size()
            << " loops, Cydra 5) ===\n\n";
  TextTable T;
  T.row();
  T.cell("priority");
  T.cell("II/MII avg");
  T.cell("% at MII");
  T.cell("decisions/op");
  T.cell("budget blowouts");
  T.cell("failed loops");

  for (const Variant &V : Variants) {
    ModuloScheduleOptions Options;
    Options.Priority = V.Priority;
    SchedulerExperimentResult R =
        runSchedulerExperiment(Cydra, EM.Groups, Spec, Corpus, Options);
    T.row();
    T.cell(V.Label);
    T.cell(R.IIOverMII.mean(), 3);
    T.cell(formatFixed(100.0 * R.IIOverMII.fractionAtMin(), 1) + "%");
    T.cell(R.DecisionsPerOp.mean(), 2);
    T.cell(formatFixed(100.0 * R.AttemptsBudgetExceeded /
                           static_cast<double>(R.TotalAttempts),
                       1) +
           "%");
    T.cellInt(static_cast<long long>(R.Failed));
  }
  T.print(std::cout);
  std::cout
      << "\nnotes: height (Rau) achieves the best quality/effort balance "
         "and never fails. Source order looks competitive here only "
         "because the generator emits bodies in near-topological order, "
         "approximating height. Top-down depth priority thrashes: it "
         "places consumers before the recurrences that constrain them, "
         "multiplying reversals and failing loops outright.\n";
  return 0;
}
