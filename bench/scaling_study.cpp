//===- bench/scaling_study.cpp - Growth with machine complexity -----------===//
//
// Section 6's qualitative claim, measured: as machine complexity grows
// (clusters, alternatives, divider depth), the reduced reservation tables
// grow gently -- the per-cycle reserved-table state stays a handful of
// bits -- while the finite-state-automaton baseline's state space grows
// combinatorially until it overruns any practical cap.
//
// Two sweeps over the scaled VLIW family: cluster count at fixed divider
// depth, and divider depth at fixed cluster count.
//
//===----------------------------------------------------------------------===//

#include "automaton/PipelineAutomaton.h"
#include "machines/MachineModel.h"
#include "reduce/Metrics.h"
#include "reduce/Reduction.h"
#include "reduce/ReductionCache.h"
#include "support/TextTable.h"

#include <chrono>
#include <filesystem>
#include <iostream>

#include <unistd.h>
#include "support/Stats.h"

using namespace rmd;

/// One scratch ReductionCache for the whole study. Each row evicts its own
/// entry before the cold measurement (the two sweeps share the (4, 8)
/// config), then re-reduces through the populated cache for the warm one.
static ReductionCache &studyCache() {
  static std::string Dir =
      "/tmp/rmd-scaling-cache-" + std::to_string(::getpid());
  static ReductionCache Cache(Dir);
  return Cache;
}

static void sweepRow(TextTable &T, const MachineModel &M, size_t Cap) {
  MachineDescription Flat = expandAlternatives(M.MD).Flat;
  ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(Flat);

  // Cache-cold: full pipeline plus the store that fills the entry.
  studyCache().evict(ReductionCache::key(Flat, {}));
  auto Start = std::chrono::steady_clock::now();
  bool Hit = false;
  ReductionResult R = studyCache().reduce(Flat, {}, &Hit);
  auto End = std::chrono::steady_clock::now();
  double ColdMs =
      std::chrono::duration<double, std::milli>(End - Start).count();
  if (Hit)
    ColdMs = -1; // impossible after the eviction; flag if it happens

  // Cache-warm: content hash of the input plus one MDL parse of the entry.
  Start = std::chrono::steady_clock::now();
  ReductionResult RW = studyCache().reduce(Flat, {}, &Hit);
  End = std::chrono::steady_clock::now();
  double WarmMs =
      std::chrono::duration<double, std::milli>(End - Start).count();
  if (!Hit)
    WarmMs = -1;

  if (!(RW.Reduced == R.Reduced))
    WarmMs = -1; // a wrong cache round-trip would be a bug; flag it

  auto A = PipelineAutomaton::build(R.Reduced, Cap);

  T.row();
  T.cell(M.MD.name());
  T.cellInt(static_cast<long long>(Flat.numOperations()));
  T.cellInt(static_cast<long long>(FLM.canonicalCount()));
  T.cellInt(static_cast<long long>(Flat.numResources()));
  T.cellInt(static_cast<long long>(R.Reduced.numResources()));
  T.cell(averageResUsesPerOperation(R.Reduced), 1);
  T.cell(ColdMs, 1);
  T.cell(WarmMs, 2);
  if (A) {
    T.cellInt(static_cast<long long>(A->numStates()));
    T.cellInt(static_cast<long long>(A->tableBytes() / 1024));
  } else {
    T.cell("> cap");
    T.cell("-");
  }
}

int main(int Argc, char **Argv) {
  rmd::StatsJsonGuard StatsJson(Argc, Argv, "scaling_study");
  const size_t Cap = 1u << 21;

  std::cout << "=== scaling with cluster count (divider busy 8) ===\n\n";
  {
    TextTable T;
    T.row();
    T.cell("machine");
    T.cell("flat ops");
    T.cell("latencies");
    T.cell("res orig");
    T.cell("res red");
    T.cell("uses/op");
    T.cell("cold ms");
    T.cell("warm ms");
    T.cell("FSA states");
    T.cell("FSA KiB");
    for (unsigned Units : {1u, 2u, 3u, 4u, 5u, 6u})
      sweepRow(T, makeScaledVliw(Units, 8), Cap);
    T.print(std::cout);
  }

  std::cout << "\n=== scaling with divider depth (4 clusters) ===\n\n";
  {
    TextTable T;
    T.row();
    T.cell("machine");
    T.cell("flat ops");
    T.cell("latencies");
    T.cell("res orig");
    T.cell("res red");
    T.cell("uses/op");
    T.cell("cold ms");
    T.cell("warm ms");
    T.cell("FSA states");
    T.cell("FSA KiB");
    for (unsigned DivBusy : {4u, 8u, 16u, 32u, 48u})
      sweepRow(T, makeScaledVliw(4, DivBusy), Cap);
    T.print(std::cout);
  }

  {
    std::error_code EC;
    std::filesystem::remove_all(studyCache().directory(), EC);
  }

  std::cout << "\nreduced reservation tables grow with machine structure "
               "(rows ~ clusters); automaton tables grow with the product "
               "of in-flight possibilities and overrun the cap\n";
  return 0;
}
