//===- bench/scaling_study.cpp - Growth with machine complexity -----------===//
//
// Section 6's qualitative claim, measured: as machine complexity grows
// (clusters, alternatives, divider depth), the reduced reservation tables
// grow gently -- the per-cycle reserved-table state stays a handful of
// bits -- while the finite-state-automaton baseline's state space grows
// combinatorially until it overruns any practical cap.
//
// Two sweeps over the scaled VLIW family: cluster count at fixed divider
// depth, and divider depth at fixed cluster count.
//
//===----------------------------------------------------------------------===//

#include "automaton/PipelineAutomaton.h"
#include "machines/MachineModel.h"
#include "reduce/Metrics.h"
#include "reduce/Reduction.h"
#include "support/TextTable.h"

#include <chrono>
#include <iostream>

using namespace rmd;

static void sweepRow(TextTable &T, const MachineModel &M, size_t Cap) {
  MachineDescription Flat = expandAlternatives(M.MD).Flat;
  ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(Flat);

  auto Start = std::chrono::steady_clock::now();
  ReductionResult R = reduceMachine(Flat);
  auto End = std::chrono::steady_clock::now();
  double ReduceMs =
      std::chrono::duration<double, std::milli>(End - Start).count();

  auto A = PipelineAutomaton::build(R.Reduced, Cap);

  T.row();
  T.cell(M.MD.name());
  T.cellInt(static_cast<long long>(Flat.numOperations()));
  T.cellInt(static_cast<long long>(FLM.canonicalCount()));
  T.cellInt(static_cast<long long>(Flat.numResources()));
  T.cellInt(static_cast<long long>(R.Reduced.numResources()));
  T.cell(averageResUsesPerOperation(R.Reduced), 1);
  T.cell(ReduceMs, 1);
  if (A) {
    T.cellInt(static_cast<long long>(A->numStates()));
    T.cellInt(static_cast<long long>(A->tableBytes() / 1024));
  } else {
    T.cell("> cap");
    T.cell("-");
  }
}

int main() {
  const size_t Cap = 1u << 21;

  std::cout << "=== scaling with cluster count (divider busy 8) ===\n\n";
  {
    TextTable T;
    T.row();
    T.cell("machine");
    T.cell("flat ops");
    T.cell("latencies");
    T.cell("res orig");
    T.cell("res red");
    T.cell("uses/op");
    T.cell("reduce ms");
    T.cell("FSA states");
    T.cell("FSA KiB");
    for (unsigned Units : {1u, 2u, 3u, 4u, 5u, 6u})
      sweepRow(T, makeScaledVliw(Units, 8), Cap);
    T.print(std::cout);
  }

  std::cout << "\n=== scaling with divider depth (4 clusters) ===\n\n";
  {
    TextTable T;
    T.row();
    T.cell("machine");
    T.cell("flat ops");
    T.cell("latencies");
    T.cell("res orig");
    T.cell("res red");
    T.cell("uses/op");
    T.cell("reduce ms");
    T.cell("FSA states");
    T.cell("FSA KiB");
    for (unsigned DivBusy : {4u, 8u, 16u, 32u, 48u})
      sweepRow(T, makeScaledVliw(4, DivBusy), Cap);
    T.print(std::cout);
  }

  std::cout << "\nreduced reservation tables grow with machine structure "
               "(rows ~ clusters); automaton tables grow with the product "
               "of in-flight possibilities and overrun the cap\n";
  return 0;
}
