//===- examples/mdlreduce.cpp - Machine description reducer tool ----------===//
//
// The command-line face of the library: reads a machine description in the
// MDL text format, reduces it for the requested representation, verifies
// exact forbidden-latency equivalence, and writes the reduced description
// back as MDL. This is the paper's intended workflow: keep the description
// close to the hardware, generate the compiler's internal description
// automatically and error-free.
//
// Usage:
//   mdlreduce [--objective=res-uses | --objective=word:<k>]
//             [--classes] [--stats] [--threads=<n>] [--cache=<dir>]
//             [--emit=mdl | --emit=c++] [--namespace=<ident>]
//             [--faults=<spec>]
//             <input.mdl | ->
//
// With no file (or "-"), reads the paper's Figure 1 machine from a
// built-in sample so the tool is runnable out of the box. --emit=c++
// writes the reduced description as a header of constexpr tables, the
// form a production scheduler would compile in. --cache memoizes
// reductions on disk keyed by machine content + objective (the
// RMD_REDUCTION_CACHE environment variable enables the same cache when
// the flag is absent); --threads=0 uses all hardware threads.
//
// Failures degrade instead of aborting: when reduction (or its
// re-verification) fails, the tool warns on stderr and emits the
// *original* description, which by Theorem 1 imposes identical scheduling
// constraints. --faults arms the deterministic fault-injection registry
// (same spec grammar as RMD_FAULTS; see support/FaultInjection.h) so the
// degradation paths can be exercised on demand; --stats reports any
// degradations taken.
//
//===----------------------------------------------------------------------===//

#include "flm/OperationClasses.h"
#include "mdesc/Lint.h"
#include "mdl/CppGen.h"
#include "reduce/Explain.h"
#include "mdl/Parser.h"
#include "mdl/Writer.h"
#include "reduce/Metrics.h"
#include "reduce/Reduction.h"
#include "reduce/ReductionCache.h"
#include "support/Degradation.h"
#include "support/FaultInjection.h"
#include "support/Stats.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace rmd;

static const char *SampleMdl = R"(# the paper's Figure 1 machine
machine fig1 {
  resources r0, r1, r2, r3, r4;
  operation A { r0 at 0; r1 at 1; r2 at 2; }
  operation B { r1 at 0; r2 at 1; r3 at 2 .. 5; r4 at 6 .. 7; }
}
)";

static void usage() {
  std::cerr << "usage: mdlreduce [--objective=res-uses|word:<k>] "
               "[--classes] [--stats] [--explain] [--lint] "
               "[--threads=<n>] [--cache=<dir>] "
               "[--emit=mdl|c++] "
               "[--namespace=<ident>] [--faults=<spec>] "
               "[--stats-json=<file>] [input.mdl]\n";
}

int main(int Argc, char **Argv) {
  // Consumes --stats-json=<path> (or RMD_STATS_JSON) and writes the
  // observability snapshot on exit; see docs/observability.md.
  StatsJsonGuard StatsJson(Argc, Argv, "mdlreduce");
  SelectionObjective Objective = SelectionObjective::resUses();
  bool UseClasses = false;
  bool PrintStats = false;
  bool Explain = false;
  bool Lint = false;
  bool EmitCpp = false;
  std::string CppNamespace = "machine_tables";
  std::string InputPath;
  std::string CacheDir;
  unsigned Threads = 1;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--objective=res-uses") {
      Objective = SelectionObjective::resUses();
    } else if (Arg.rfind("--objective=word:", 0) == 0) {
      int K = std::atoi(Arg.c_str() + sizeof("--objective=word:") - 1);
      if (K < 1) {
        std::cerr << "mdlreduce: error: bad word size in '" << Arg << "'\n";
        return 1;
      }
      Objective = SelectionObjective::wordUses(static_cast<unsigned>(K));
    } else if (Arg == "--emit=mdl") {
      EmitCpp = false;
    } else if (Arg == "--emit=c++") {
      EmitCpp = true;
    } else if (Arg.rfind("--namespace=", 0) == 0) {
      CppNamespace = Arg.substr(sizeof("--namespace=") - 1);
      if (CppNamespace.empty()) {
        std::cerr << "mdlreduce: error: empty namespace\n";
        return 1;
      }
    } else if (Arg.rfind("--cache=", 0) == 0) {
      CacheDir = Arg.substr(sizeof("--cache=") - 1);
      if (CacheDir.empty()) {
        std::cerr << "mdlreduce: error: empty cache directory\n";
        return 1;
      }
    } else if (Arg.rfind("--threads=", 0) == 0) {
      Threads = static_cast<unsigned>(
          std::atoi(Arg.c_str() + sizeof("--threads=") - 1));
    } else if (Arg.rfind("--faults=", 0) == 0) {
      Status S = FaultInjection::instance().configure(
          Arg.substr(sizeof("--faults=") - 1));
      if (!S) {
        std::cerr << "mdlreduce: error: " << S.render() << "\n";
        return 1;
      }
    } else if (Arg == "--classes") {
      UseClasses = true;
    } else if (Arg == "--stats") {
      PrintStats = true;
    } else if (Arg == "--explain") {
      Explain = true;
    } else if (Arg == "--lint") {
      Lint = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::cerr << "mdlreduce: error: unknown option '" << Arg << "'\n";
      usage();
      return 1;
    } else {
      InputPath = Arg;
    }
  }

  // Read the input.
  std::string Text;
  std::string InputName = "<builtin fig1>";
  if (InputPath.empty() || InputPath == "-") {
    Text = SampleMdl;
  } else {
    std::ifstream In(InputPath);
    if (!In) {
      std::cerr << "mdlreduce: error: cannot open '" << InputPath << "'\n";
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Text = SS.str();
    InputName = InputPath;
  }

  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Text, Diags);
  if (!MD) {
    Diags.print(std::cerr, InputName);
    return 1;
  }

  if (Lint) {
    DiagnosticEngine LintDiags;
    unsigned Warnings = lintMachine(*MD, LintDiags);
    LintDiags.print(std::cerr, InputName);
    std::cerr << "lint: " << Warnings << " warning(s)\n";
  }

  // Remove alternatives, optionally quotient by operation classes.
  MachineDescription Flat = expandAlternatives(*MD).Flat;
  if (UseClasses) {
    ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(Flat);
    Flat = buildClassMachine(Flat, partitionOperationClasses(FLM));
  }

  ReductionOptions Options;
  Options.Objective = Objective;
  Options.Threads = Threads;

  std::optional<ReductionCache> Cache =
      CacheDir.empty() ? ReductionCache::fromEnvironment()
                       : std::make_optional(ReductionCache(CacheDir));
  bool CacheHit = false;
  SafeReduction Safe = reduceMachineOrFallback(
      Flat, Options, Cache ? &*Cache : nullptr, &CacheHit);
  if (Safe.Degraded)
    std::cerr << "mdlreduce: warning: " << Safe.Why.render()
              << "; emitting the original description (identical "
                 "constraints, more per-query work)\n";
  ReductionResult &Result = Safe.Result;

  if (PrintStats) {
    if (Cache)
      std::cerr << "cache:  " << (CacheHit ? "hit" : "miss") << " ("
                << Cache->directory() << ")\n";
    std::cerr << "input:  " << Flat.numResources() << " resources, "
              << Flat.numOperations() << " operations, "
              << Flat.totalUsages() << " usages\n";
    std::cerr << "output: " << Result.Reduced.numResources()
              << " resources, " << Result.Reduced.totalUsages()
              << " usages (generating set " << Result.GeneratingSetSize
              << ", pruned " << Result.PrunedSetSize << ", "
              << Result.CoveredLatencies << " forbidden latencies)\n";
    std::cerr << "avg res usages/op: "
              << averageResUsesPerOperation(Flat) << " -> "
              << averageResUsesPerOperation(Result.Reduced) << "\n";
    std::cerr << "degradations: " << globalDegradation().snapshot() << "\n";
  }

  if (Explain)
    printReductionReport(std::cerr,
                         explainReduction(Flat, Result.Reduced),
                         Result.Reduced);

  if (EmitCpp)
    std::cout << writeCppTables(Result.Reduced, CppNamespace);
  else
    std::cout << writeMdl(Result.Reduced);
  return 0;
}
