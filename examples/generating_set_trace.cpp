//===- examples/generating_set_trace.cpp - Figure 3, step by step ---------===//
//
// Reproduces Figure 3 of the paper: Algorithm 1 processing the four
// elementary pairs of the Figure 1 machine (1 in F(B,A); 1, 2, 3 in
// F(B,B)), printing the rule fired and the generating set after each pair.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"
#include "reduce/GeneratingSet.h"

#include <iostream>

using namespace rmd;

static const char *ruleName(GeneratingRule Rule) {
  switch (Rule) {
  case GeneratingRule::Rule1:
    return "Rule 1 (fully compatible -> merge pair into resource)";
  case GeneratingRule::Rule2:
    return "Rule 2 (partially compatible -> spawn restricted copy)";
  case GeneratingRule::Rule2Discard:
    return "Rule 2 (incompatible with every usage -> nothing spawned)";
  case GeneratingRule::Rule3:
    return "Rule 3 (pair not co-resident anywhere -> new resource)";
  case GeneratingRule::Rule4:
    return "Rule 4 (0 self-latency only -> single-usage resource)";
  }
  return "?";
}

int main() {
  MachineDescription MD = makeFig1Machine();
  ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(MD);

  std::cout << "=== Figure 3: building the generating set for the Figure 1 "
               "machine ===\n\n";
  std::cout << "elementary pairs (nonnegative forbidden latencies, 0 "
               "self-latencies excluded):\n";
  for (const ElementaryPair &P : enumerateElementaryPairs(FLM)) {
    ForbiddenLatency L = P.latency();
    std::cout << "  " << L.Latency << " in F(" << MD.operation(L.After).Name
              << "," << MD.operation(L.Before).Name << ")  -> pair {"
              << MD.operation(P.First.Op).Name << "@" << P.First.Cycle
              << ", " << MD.operation(P.Second.Op).Name << "@"
              << P.Second.Cycle << "}\n";
  }
  std::cout << "\n";

  // Re-run with a trace, rendering the set after each pair.
  std::vector<SynthesizedResource> Snapshot;
  GeneratingSetTrace Trace;
  int PairNo = 0;
  Trace.OnPair = [&](const ElementaryPair &P) {
    ForbiddenLatency L = P.latency();
    std::cout << "--- pair " << ++PairNo << ": " << L.Latency << " in F("
              << MD.operation(L.After).Name << ","
              << MD.operation(L.Before).Name << ") ---\n";
  };
  Trace.OnRule = [&](GeneratingRule Rule, size_t Index) {
    std::cout << "  " << ruleName(Rule) << " [resource " << Index << "]\n";
  };

  std::vector<SynthesizedResource> Set = buildGeneratingSet(FLM, &Trace);
  std::cout << "\n=== final generating set ===\n";
  for (size_t I = 0; I < Set.size(); ++I)
    std::cout << "  resource " << I << ": " << Set[I].str(MD) << "\n";

  std::vector<SynthesizedResource> Pruned = pruneGeneratingSet(Set);
  std::cout << "\nafter pruning covered resources (" << Set.size() << " -> "
            << Pruned.size() << "):\n";
  for (size_t I = 0; I < Pruned.size(); ++I)
    std::cout << "  maximal resource " << I << ": " << Pruned[I].str(MD)
              << "\n";
  std::cout << "\ncompare with Figure 1c: {B@0, A@1} and {B@0, B@1, B@2, "
               "B@3}\n";
  return 0;
}
