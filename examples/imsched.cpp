//===- examples/imsched.cpp - Command-line modulo scheduler ---------------===//
//
// Software-pipelines a loop written in the loop-graph text format (see
// docs/mdl.md and sched/GraphIO.h) on any built-in machine or on an
// annotated MDL description, using the reduced machine description and
// the Iterative Modulo Scheduler. Prints MII analysis, the schedule, and
// the kernel view.
//
// Usage:
//   imsched [--machine=cydra5|alpha21064|mips|playdoh|toyvliw]
//           [--mdl=<machine.mdl>] [--budget=<ratio>]
//           [--deadline-ms=<n>] [--faults=<spec>] [loop.graph | -]
//
// With no loop file, schedules a built-in sample (the tri-diagonal
// elimination kernel) so the tool runs out of the box.
//
// Failures degrade instead of aborting: a failed reduction schedules
// against the original description (identical constraints by Theorem 1,
// with a warning); an infeasible recurrence prints the offending cycle; an
// expired --deadline-ms reports the partial schedule state. --faults arms
// the deterministic fault-injection registry (same grammar as RMD_FAULTS;
// see support/FaultInjection.h).
//
//===----------------------------------------------------------------------===//

#include "machines/MdlModel.h"
#include "query/DiscreteQuery.h"
#include "reduce/Reduction.h"
#include "reduce/ReductionCache.h"
#include "sched/GraphIO.h"
#include "sched/IterativeModuloScheduler.h"
#include "sched/ScheduleRender.h"
#include "support/Degradation.h"
#include "support/FaultInjection.h"
#include "support/Stats.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace rmd;

static const char *SampleLoop = R"(# x[i] = z[i] * (y[i] - x[i-1])
loop tridiag {
  ld_z: load;
  ld_y: load;
  sub:  fadd.s;
  mul:  fmul.s;
  st:   store;
  br:   brtop;
  edge ld_y -> sub;
  edge mul  -> sub distance 1;
  edge ld_z -> mul;
  edge sub  -> mul;
  edge mul  -> st;
  edge st   -> br delay 0;
}
)";

static void usage() {
  std::cerr << "usage: imsched [--machine=<name>] [--mdl=<machine.mdl>] "
               "[--budget=<ratio>] [--deadline-ms=<n>] [--faults=<spec>] "
               "[--stats-json=<file>] [loop.graph | -]\n";
}

int main(int Argc, char **Argv) {
  // Consumes --stats-json=<path> (or RMD_STATS_JSON) and writes the
  // observability snapshot on exit; see docs/observability.md.
  StatsJsonGuard StatsJson(Argc, Argv, "imsched");
  std::string MachineName = "cydra5";
  std::string MdlPath;
  std::string LoopPath;
  ModuloScheduleOptions Options;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--machine=", 0) == 0) {
      MachineName = Arg.substr(sizeof("--machine=") - 1);
    } else if (Arg.rfind("--mdl=", 0) == 0) {
      MdlPath = Arg.substr(sizeof("--mdl=") - 1);
    } else if (Arg.rfind("--budget=", 0) == 0) {
      Options.BudgetRatio = std::atoi(Arg.c_str() + sizeof("--budget=") - 1);
      if (Options.BudgetRatio < 1) {
        std::cerr << "imsched: error: bad budget ratio\n";
        return 1;
      }
    } else if (Arg.rfind("--deadline-ms=", 0) == 0) {
      long Millis = std::atol(Arg.c_str() + sizeof("--deadline-ms=") - 1);
      if (Millis < 1) {
        std::cerr << "imsched: error: bad deadline\n";
        return 1;
      }
      Options.TheDeadline = Deadline::afterMillis(Millis);
    } else if (Arg.rfind("--faults=", 0) == 0) {
      Status S = FaultInjection::instance().configure(
          Arg.substr(sizeof("--faults=") - 1));
      if (!S) {
        std::cerr << "imsched: error: " << S.render() << "\n";
        return 1;
      }
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::cerr << "imsched: error: unknown option '" << Arg << "'\n";
      usage();
      return 1;
    } else {
      LoopPath = Arg;
    }
  }

  // Resolve the machine.
  MachineModel Model;
  if (!MdlPath.empty()) {
    std::ifstream In(MdlPath);
    if (!In) {
      std::cerr << "imsched: error: cannot open '" << MdlPath << "'\n";
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    DiagnosticEngine Diags;
    std::optional<MachineModel> Parsed = parseMdlModel(SS.str(), Diags);
    Diags.print(std::cerr, MdlPath);
    if (!Parsed)
      return 1;
    Model = std::move(*Parsed);
  } else if (MachineName == "cydra5") {
    Model = makeCydra5();
  } else if (MachineName == "alpha21064") {
    Model = makeAlpha21064();
  } else if (MachineName == "mips") {
    Model = makeMipsR3000();
  } else if (MachineName == "playdoh") {
    Model = makePlayDoh();
  } else if (MachineName == "toyvliw") {
    Model = makeToyVliw();
  } else {
    std::cerr << "imsched: error: unknown machine '" << MachineName
              << "'\n";
    return 1;
  }

  // Read the loop.
  std::string LoopText;
  std::string LoopName = "<builtin tridiag>";
  if (LoopPath.empty() || LoopPath == "-") {
    LoopText = SampleLoop;
  } else {
    std::ifstream In(LoopPath);
    if (!In) {
      std::cerr << "imsched: error: cannot open '" << LoopPath << "'\n";
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    LoopText = SS.str();
    LoopName = LoopPath;
  }

  DiagnosticEngine Diags;
  std::optional<DepGraph> G = parseLoopGraph(LoopText, Model, Diags);
  if (!G) {
    Diags.print(std::cerr, LoopName);
    return 1;
  }

  // Reduce the description and schedule against it; a failed reduction
  // falls back to the original description (identical constraints by
  // Theorem 1, so the schedule below is unaffected).
  ExpandedMachine EM = expandAlternatives(Model.MD);
  SafeReduction Safe = reduceMachineOrFallback(EM.Flat);
  if (Safe.Degraded)
    std::cerr << "imsched: warning: " << Safe.Why.render()
              << "; scheduling against the original description\n";
  MachineDescription Reduced = std::move(Safe.Result.Reduced);

  QueryEnvironment Env;
  Env.FlatMD = &Reduced;
  Env.Groups = &EM.Groups;
  Env.MakeModule = [&Reduced](QueryConfig Config) {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(Reduced, Config));
  };

  ModuloScheduleResult R = moduloSchedule(*G, Model.MD, Env, Options);
  std::cout << "machine " << Model.MD.name() << ", loop '" << G->name()
            << "' (" << G->numNodes() << " ops, " << G->numEdges()
            << " deps)\n";
  if (R.Outcome == ScheduleOutcome::InfeasibleRecurrence) {
    std::cerr << "imsched: error: loop '" << G->name() << "': "
              << R.Error.message() << "\n";
    return 1;
  }
  std::cout << "ResMII " << R.Stats.ResMII << ", RecMII " << R.Stats.RecMII
            << " -> MII " << R.Stats.MII << "\n";
  if (R.Stats.Degradation.total() || Safe.Degraded)
    std::cerr << "imsched: degradations: "
              << globalDegradation().snapshot() << "\n";
  if (R.Outcome == ScheduleOutcome::TimedOut ||
      R.Outcome == ScheduleOutcome::Cancelled) {
    size_t Placed = 0;
    for (int A : R.Alternative)
      Placed += A >= 0;
    std::cerr << "imsched: " << R.Error.message() << " (best-so-far: "
              << Placed << "/" << R.Alternative.size()
              << " ops placed at II=" << R.II << ")\n";
    return 1;
  }
  if (!R.Success) {
    std::cerr << "imsched: no schedule found up to the II ceiling\n";
    return 1;
  }

  std::cout << "II = " << R.II << " ("
            << R.Stats.DecisionsPerAttempt.size() << " attempt(s), "
            << R.Stats.totalDecisions() << " decisions)\n\nschedule:\n";
  std::vector<OpId> Chosen = chosenFlatOps(*G, EM.Groups, R.Alternative);
  renderIssueOrder(std::cout, *G, Reduced, Chosen, R.Time);
  std::cout << "\nkernel:\n";
  renderKernel(std::cout, *G, Reduced, Chosen, R.Time, R.II);
  return 0;
}
