//===- examples/quickstart.cpp - The paper's Figure 1 end to end ----------===//
//
// Walks the complete pipeline on the paper's example machine (Figure 1):
//
//   1. a machine description as reservation tables close to the hardware;
//   2. its forbidden latency matrix (Equation 1);
//   3. the generating set of maximal resources (Algorithm 1);
//   4. the reduced machine description (selection, res-uses objective);
//   5. contention queries answered identically by both descriptions.
//
// Run it and compare with Figure 1 of the paper -- the sets printed here
// are exactly the paper's.
//
//===----------------------------------------------------------------------===//

#include "flm/ForbiddenLatencyMatrix.h"
#include "machines/MachineModel.h"
#include "mdesc/Render.h"
#include "query/DiscreteQuery.h"
#include "reduce/Reduction.h"

#include <iostream>

using namespace rmd;

int main() {
  // (a) The machine description: operation A is fully pipelined, B is
  // partially pipelined (a multiply stage held 4 cycles, a rounding stage
  // held 2).
  MachineDescription MD = makeFig1Machine();
  std::cout << "=== (a) machine description ===\n";
  renderMachine(std::cout, MD);

  // (b) The forbidden latency matrix.
  ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(MD);
  std::cout << "\n=== (b) forbidden latency matrix ===\n";
  FLM.print(std::cout, MD);

  // (c) The generating set of maximal resources.
  std::vector<SynthesizedResource> Pruned =
      pruneGeneratingSet(buildGeneratingSet(FLM));
  std::cout << "\n=== (c) generating set of maximal resources ===\n";
  for (const SynthesizedResource &R : Pruned)
    std::cout << "  " << R.str(MD) << "\n";

  // (d) The reduced machine description.
  ReductionResult Result = reduceMachine(MD);
  std::cout << "\n=== (d) reduced machine description ===\n";
  renderMachine(std::cout, Result.Reduced);
  std::cout << "\nforbidden-latency-equivalent to the original: "
            << (verifyEquivalence(MD, Result.Reduced) ? "yes" : "NO")
            << "\n";

  // (e) Both descriptions answer contention queries identically.
  std::cout << "\n=== (e) contention queries ===\n";
  DiscreteQueryModule Original(MD, QueryConfig::linear());
  DiscreteQueryModule Reduced(Result.Reduced, QueryConfig::linear());
  OpId A = MD.findOperation("A");
  OpId B = MD.findOperation("B");

  Original.assign(A, 0, /*Instance=*/0);
  Reduced.assign(A, 0, /*Instance=*/0);
  std::cout << "after scheduling A at cycle 0:\n";
  for (int Cycle = 0; Cycle <= 3; ++Cycle) {
    bool O = Original.check(B, Cycle);
    bool R = Reduced.check(B, Cycle);
    std::cout << "  can B issue at cycle " << Cycle << "? original: "
              << (O ? "yes" : "no") << ", reduced: " << (R ? "yes" : "no")
              << "\n";
  }
  std::cout << "\nwork units per check: original up to "
            << MD.operation(B).table().usageCount() << ", reduced up to "
            << Result.Reduced.operation(B).table().usageCount() << "\n";
  return 0;
}
