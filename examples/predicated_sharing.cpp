//===- examples/predicated_sharing.cpp - EMS predicate fields -------------===//
//
// Demonstrates the predicate field of Section 5's discrete representation
// (Enhanced Modulo Scheduling, Warter et al.): after IF-conversion, the
// then-side and else-side of a diamond are guarded by complementary
// predicates and can never execute in the same iteration, so they may
// share resources cycle-for-cycle. The same placements are impossible for
// a predicate-blind reserved table.
//
// The loop:   if (a[i] > 0) s += a[i]*b[i]; else s -= a[i]*c[i];
// IF-converted: one load feeds a compare defining p; both arms' loads,
// multiplies and adds are guarded by p / !p.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"
#include "query/DiscreteQuery.h"
#include "query/PredicatedQuery.h"

#include <iostream>

using namespace rmd;

int main() {
  MachineModel Cydra = makeCydra5();
  MachineDescription Flat = expandAlternatives(Cydra.MD).Flat;

  OpId Load0 = Flat.findOperation("load@0");
  OpId Fmul0 = Flat.findOperation("fmul.s@0");
  OpId Fadd0 = Flat.findOperation("fadd.s@0");

  const int II = 4;
  std::cout << "=== predicate-aware resource sharing (Cydra 5, II=" << II
            << ") ===\n\n";

  // The two arms, placed at identical cycles under p (+1) and !p (-1).
  struct Placement {
    const char *Name;
    OpId Op;
    int Cycle;
    PredicateId Pred;
  };
  Placement Arms[] = {
      {"then: load b[i]", Load0, 0, +1}, {"else: load c[i]", Load0, 0, -1},
      {"then: a*b", Fmul0, 5, +1},       {"else: a*c", Fmul0, 5, -1},
      {"then: s += t", Fadd0, 11, +1},   {"else: s -= t", Fadd0, 11, -1},
  };

  PredicatedQueryModule Predicated(Flat, QueryConfig::modulo(II));
  DiscreteQueryModule Plain(Flat, QueryConfig::modulo(II));

  int PlacedPredicated = 0, PlacedPlain = 0;
  InstanceId Id = 0;
  for (const Placement &P : Arms) {
    bool OkPred = Predicated.check(P.Op, P.Cycle, P.Pred);
    if (OkPred) {
      Predicated.assign(P.Op, P.Cycle, P.Pred, Id);
      ++PlacedPredicated;
    }
    bool OkPlain = Plain.check(P.Op, P.Cycle);
    if (OkPlain) {
      Plain.assign(P.Op, P.Cycle, Id);
      ++PlacedPlain;
    }
    ++Id;
    std::cout << "  " << P.Name << " @ cycle " << P.Cycle << " pred "
              << (P.Pred > 0 ? "p" : "!p") << ": predicate-aware "
              << (OkPred ? "yes" : "NO") << ", predicate-blind "
              << (OkPlain ? "yes" : "NO") << "\n";
  }

  std::cout << "\npredicate-aware table placed " << PlacedPredicated << "/6"
            << " operations at the shared cycles; the predicate-blind "
               "table placed "
            << PlacedPlain << "/6 and would force a larger II\n";
  std::cout << "(both arms occupy the FP adder/multiplier pipelines in the "
               "same MRT slots -- legal only because p and !p are "
               "disjoint)\n";
  return PlacedPredicated == 6 && PlacedPlain < 6 ? 0 : 1;
}
