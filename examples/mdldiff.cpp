//===- examples/mdldiff.cpp - Semantic machine description diff -----------===//
//
// Compares two MDL machine descriptions by their scheduling constraints
// (forbidden latency matrices), not their resource layout -- the question
// that matters when a micro-architecture revision lands or when checking
// that a hand-edited description is still equivalent to its reduction.
//
// Usage: mdldiff <a.mdl> <b.mdl>
// Exit status: 0 identical constraints, 1 differences, 2 errors.
//
//===----------------------------------------------------------------------===//

#include "flm/MatrixDiff.h"
#include "mdl/Parser.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace rmd;

static std::optional<MachineDescription> load(const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "mdldiff: error: cannot open '" << Path << "'\n";
    return std::nullopt;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(SS.str(), Diags);
  if (!MD) {
    Diags.print(std::cerr, Path);
    return std::nullopt;
  }
  return expandAlternatives(*MD).Flat;
}

int main(int Argc, char **Argv) {
  if (Argc != 3) {
    std::cerr << "usage: mdldiff <a.mdl> <b.mdl>\n";
    return 2;
  }
  std::optional<MachineDescription> A = load(Argv[1]);
  std::optional<MachineDescription> B = load(Argv[2]);
  if (!A || !B)
    return 2;

  MatrixDiff Diff = diffMatrices(*A, *B);
  printMatrixDiff(std::cout, Diff);
  return Diff.identical() ? 0 : 1;
}
