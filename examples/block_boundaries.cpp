//===- examples/block_boundaries.cpp - Dangling resource requirements -----===//
//
// Demonstrates the boundary-condition support the paper highlights against
// automaton approaches: resource requirements *dangling* from predecessor
// basic blocks constrain the first cycles of the current block. The
// reserved table is seeded with operations issued at negative cycles (as
// if scheduled near the end of a predecessor), and a basic block is then
// list-scheduled around them -- against both the original and the reduced
// Alpha 21064 description, with identical results.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"
#include "query/DiscreteQuery.h"
#include "reduce/Reduction.h"
#include "sched/ListScheduler.h"

#include <iostream>

using namespace rmd;

int main() {
  MachineModel Alpha = makeAlpha21064();
  ExpandedMachine EM = expandAlternatives(Alpha.MD);
  MachineDescription Reduced = reduceMachine(EM.Flat).Reduced;

  OpId Fdivd = Alpha.MD.findOperation("fdivd");
  OpId Fadd = Alpha.MD.findOperation("fadd");
  OpId Load = Alpha.MD.findOperation("load");
  OpId Ialu = Alpha.MD.findOperation("ialu");

  // The predecessor block issued a double divide 40 cycles before the
  // branch: its divider reservation dangles deep into this block.
  std::vector<DanglingOp> Dangling = {{EM.Groups[Fdivd][0], -40}};

  // This block: two loads feeding an FP add, an integer op, and another
  // divide that must wait for the dangling one to leave the divider.
  DepGraph G("succ-block");
  NodeId L1 = G.addNode(Load);
  NodeId L2 = G.addNode(Load);
  NodeId A = G.addNode(Fadd);
  G.addNode(Ialu); // independent filler op
  NodeId D = G.addNode(Fdivd);
  G.addEdge(L1, A, Alpha.Latency[Load]);
  G.addEdge(L2, A, Alpha.Latency[Load]);
  G.addEdge(A, D, Alpha.Latency[Fadd]);

  auto runWith = [&](const MachineDescription &Flat) {
    DiscreteQueryModule Q(Flat, QueryConfig::linear(-64));
    return listSchedule(G, EM.Groups, Q, Dangling);
  };

  ListScheduleResult RO = runWith(EM.Flat);
  ListScheduleResult RR = runWith(Reduced);
  if (!RO.Success || !RR.Success) {
    std::cerr << "scheduling failed\n";
    return 1;
  }

  std::cout << "=== scheduling a block below a dangling fdivd@-40 "
               "(Alpha 21064) ===\n\n";
  std::cout << "the divider is busy through cycle "
            << (-40 + 58) << " of this block\n\n";
  const char *Names[] = {"load#1", "load#2", "fadd", "ialu", "fdivd"};
  for (NodeId N = 0; N < G.numNodes(); ++N)
    std::cout << "  " << Names[N] << " -> cycle " << RO.Time[N] << "\n";

  std::cout << "\nwithout the dangling divide, the same block schedules "
               "as:\n";
  DiscreteQueryModule Clean(EM.Flat, QueryConfig::linear(-64));
  ListScheduleResult RC = listSchedule(G, EM.Groups, Clean);
  for (NodeId N = 0; N < G.numNodes(); ++N)
    std::cout << "  " << Names[N] << " -> cycle " << RC.Time[N] << "\n";

  bool Identical = RO.Time == RR.Time && RO.Alternative == RR.Alternative;
  std::cout << "\nreduced description produces "
            << (Identical ? "the identical schedule" : "A DIFFERENT "
                                                       "schedule: bug!")
            << " under the same boundary conditions\n";
  std::cout << "note: the new fdivd waits for the dangling one ("
            << RO.Time[D] << " > " << RC.Time[D] << ")\n";
  return Identical ? 0 : 1;
}
