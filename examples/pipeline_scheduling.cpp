//===- examples/pipeline_scheduling.cpp - Software pipelining demo --------===//
//
// Modulo-schedules a Livermore-style kernel (tri-diagonal elimination) on
// the Cydra 5 with the Iterative Modulo Scheduler, once against the
// original machine description and once against its reduction, and prints
// the kernel schedule, the modulo reservation table, and the query-module
// work both descriptions spent -- the paper's end-to-end story in one
// screen.
//
//===----------------------------------------------------------------------===//

#include "query/DiscreteQuery.h"
#include "reduce/Reduction.h"
#include "reduce/ReductionCache.h"
#include "sched/IterativeModuloScheduler.h"
#include "sched/ScheduleRender.h"
#include "workload/Kernels.h"

#include <iomanip>
#include <iostream>

using namespace rmd;

static QueryEnvironment environmentFor(const MachineDescription &Flat,
                                       const ExpandedMachine &EM) {
  QueryEnvironment Env;
  Env.FlatMD = &Flat;
  Env.Groups = &EM.Groups;
  Env.MakeModule = [&Flat](QueryConfig Config) {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(Flat, Config));
  };
  return Env;
}

int main() {
  MachineModel Cydra = makeCydra5();
  ExpandedMachine EM = expandAlternatives(Cydra.MD);

  // The kernel: x[i] = z[i] * (y[i] - x[i-1]) -- a first-order recurrence.
  RoleGraph Kernel = livermoreKernels()[2];
  DepGraph G = bind(Kernel, Cydra);

  std::cout << "=== modulo scheduling '" << G.name() << "' on the Cydra 5 "
               "===\n\n";
  std::cout << "loop body (" << G.numNodes() << " operations):\n";
  for (NodeId N = 0; N < G.numNodes(); ++N)
    std::cout << "  [" << N << "] " << Cydra.MD.operation(G.opOf(N)).Name
              << "\n";
  std::cout << "dependences (delay, distance):\n";
  for (const DepEdge &E : G.edges())
    std::cout << "  [" << E.From << "] -> [" << E.To << "]  (" << E.Delay
              << ", " << E.Distance << ")\n";

  ModuloScheduleResult R =
      moduloSchedule(G, Cydra.MD, environmentFor(EM.Flat, EM));
  if (!R.Success) {
    std::cerr << "scheduling failed\n";
    return 1;
  }

  std::cout << "\nResMII = " << R.Stats.ResMII
            << ", RecMII = " << R.Stats.RecMII << ", MII = " << R.Stats.MII
            << "  ->  II = " << R.II << "\n\n";

  std::vector<OpId> Chosen = chosenFlatOps(G, EM.Groups, R.Alternative);
  std::cout << "schedule (issue order):\n";
  renderIssueOrder(std::cout, G, EM.Flat, Chosen, R.Time);
  std::cout << "\nsoftware-pipeline kernel (one iteration every " << R.II
            << " cycles):\n";
  renderKernel(std::cout, G, EM.Flat, Chosen, R.Time, R.II);

  // Replay against the reduced description: identical schedule, less work.
  MachineDescription Reduced = reduceMachineCached(EM.Flat).Reduced;
  ModuloScheduleResult R2 =
      moduloSchedule(G, Cydra.MD, environmentFor(Reduced, EM));

  std::cout << "\n=== original vs reduced description ===\n";
  std::cout << "II: " << R.II << " vs " << R2.II
            << (R.Time == R2.Time ? "  (identical schedules)"
                                  : "  (SCHEDULES DIFFER: bug!)")
            << "\n";
  std::cout << "query-module work units: " << R.Counters.totalUnits()
            << " vs " << R2.Counters.totalUnits() << "  ("
            << std::fixed << std::setprecision(2)
            << static_cast<double>(R.Counters.totalUnits()) /
                   static_cast<double>(R2.Counters.totalUnits())
            << "x less work with the reduced description)\n";
  std::cout << "check queries issued: " << R.Counters.CheckCalls
            << ", scheduling decisions: " << R.Stats.totalDecisions()
            << "\n";
  return R.Time == R2.Time ? 0 : 1;
}
