//===- verify/QueryTrace.cpp ----------------------------------------------===//

#include "verify/QueryTrace.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

using namespace rmd;

//===----------------------------------------------------------------------===//
// Serialization
//
// Line-oriented text, one call per line. Compact single-letter opcodes keep
// multi-megabyte scheduler traces greppable and diffable:
//
//   segment <machine> linear <MinCycle> | modulo <II>
//   c <op> <cycle> <answer>                      check
//   a <op> <cycle> <instance>                    assign
//   f <op> <cycle> <instance>                    free
//   x <op> <cycle> <instance> <n> <evicted...>   assign&free
//   w <cycle> <answer> <n> <alternatives...>     check-with-alternatives
//   r                                            reset
//   end
//===----------------------------------------------------------------------===//

void QueryTrace::serialize(std::ostream &OS) const {
  OS << "segment " << (Machine.empty() ? "-" : Machine) << ' ';
  if (Config.Mode == QueryConfig::Modulo)
    OS << "modulo " << Config.ModuloII << '\n';
  else
    OS << "linear " << Config.MinCycle << '\n';

  for (const QueryTraceRecord &R : Records) {
    switch (R.Call) {
    case QueryTraceRecord::Check:
      OS << "c " << R.Op << ' ' << R.Cycle << ' ' << R.Answer << '\n';
      break;
    case QueryTraceRecord::Assign:
      OS << "a " << R.Op << ' ' << R.Cycle << ' ' << R.Instance << '\n';
      break;
    case QueryTraceRecord::Free:
      OS << "f " << R.Op << ' ' << R.Cycle << ' ' << R.Instance << '\n';
      break;
    case QueryTraceRecord::AssignFree:
      OS << "x " << R.Op << ' ' << R.Cycle << ' ' << R.Instance << ' '
         << R.Evicted.size();
      for (InstanceId E : R.Evicted)
        OS << ' ' << E;
      OS << '\n';
      break;
    case QueryTraceRecord::CheckAlternatives:
      OS << "w " << R.Cycle << ' ' << R.Answer << ' '
         << R.Alternatives.size();
      for (OpId A : R.Alternatives)
        OS << ' ' << A;
      OS << '\n';
      break;
    case QueryTraceRecord::Reset:
      OS << "r\n";
      break;
    }
  }
  OS << "end\n";
}

QueryTrace &QueryTraceLog::beginSegment(std::string Machine,
                                        QueryConfig Config) {
  Segments.emplace_back();
  Segments.back().Machine = std::move(Machine);
  Segments.back().Config = Config;
  return Segments.back();
}

void QueryTraceLog::serialize(std::ostream &OS) const {
  for (const QueryTrace &T : Segments)
    T.serialize(OS);
}

bool QueryTraceLog::deserialize(std::istream &IS, QueryTraceLog &Out,
                                std::string *Error) {
  auto Fail = [&](const std::string &Message, size_t LineNo) {
    if (Error)
      *Error = "line " + std::to_string(LineNo) + ": " + Message;
    return false;
  };

  Out.Segments.clear();
  QueryTrace *Current = nullptr;
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(IS, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    std::string Tag;
    LS >> Tag;

    if (Tag == "segment") {
      std::string Machine, Mode;
      int Value;
      if (!(LS >> Machine >> Mode >> Value))
        return Fail("malformed segment header", LineNo);
      QueryConfig Config;
      if (Mode == "modulo") {
        if (Value <= 0)
          return Fail("modulo segment requires a positive II", LineNo);
        Config = QueryConfig::modulo(Value);
      } else if (Mode == "linear") {
        Config = QueryConfig::linear(Value);
      } else {
        return Fail("unknown addressing mode '" + Mode + "'", LineNo);
      }
      Current = &Out.beginSegment(Machine, Config);
      continue;
    }
    if (!Current)
      return Fail("record before any segment header", LineNo);
    if (Tag == "end") {
      Current = nullptr;
      continue;
    }

    QueryTraceRecord R;
    bool Ok = true;
    if (Tag == "c") {
      R.Call = QueryTraceRecord::Check;
      Ok = static_cast<bool>(LS >> R.Op >> R.Cycle >> R.Answer);
    } else if (Tag == "a") {
      R.Call = QueryTraceRecord::Assign;
      Ok = static_cast<bool>(LS >> R.Op >> R.Cycle >> R.Instance);
    } else if (Tag == "f") {
      R.Call = QueryTraceRecord::Free;
      Ok = static_cast<bool>(LS >> R.Op >> R.Cycle >> R.Instance);
    } else if (Tag == "x") {
      R.Call = QueryTraceRecord::AssignFree;
      size_t N = 0;
      Ok = static_cast<bool>(LS >> R.Op >> R.Cycle >> R.Instance >> N);
      for (size_t I = 0; Ok && I < N; ++I) {
        InstanceId E;
        Ok = static_cast<bool>(LS >> E);
        R.Evicted.push_back(E);
      }
    } else if (Tag == "w") {
      R.Call = QueryTraceRecord::CheckAlternatives;
      size_t N = 0;
      Ok = static_cast<bool>(LS >> R.Cycle >> R.Answer >> N);
      for (size_t I = 0; Ok && I < N; ++I) {
        OpId A;
        Ok = static_cast<bool>(LS >> A);
        R.Alternatives.push_back(A);
      }
    } else if (Tag == "r") {
      R.Call = QueryTraceRecord::Reset;
    } else {
      return Fail("unknown record tag '" + Tag + "'", LineNo);
    }
    if (!Ok)
      return Fail("malformed '" + Tag + "' record", LineNo);
    Current->Records.push_back(std::move(R));
  }
  if (Current)
    return Fail("unterminated segment (missing 'end')", LineNo);
  return true;
}

//===----------------------------------------------------------------------===//
// Replay
//===----------------------------------------------------------------------===//

ReplayResult rmd::replayTrace(const QueryTrace &Trace,
                              ContentionQueryModule &Module,
                              bool CompareAnswers) {
  ReplayResult Result;
  for (const QueryTraceRecord &R : Trace.Records) {
    ++Result.Calls;
    switch (R.Call) {
    case QueryTraceRecord::Check: {
      bool Got = Module.check(R.Op, R.Cycle);
      if (CompareAnswers && Got != (R.Answer != 0))
        ++Result.AnswerMismatches;
      break;
    }
    case QueryTraceRecord::Assign:
      Module.assign(R.Op, R.Cycle, R.Instance);
      break;
    case QueryTraceRecord::Free:
      Module.free(R.Op, R.Cycle, R.Instance);
      break;
    case QueryTraceRecord::AssignFree: {
      std::vector<InstanceId> Evicted;
      Module.assignAndFree(R.Op, R.Cycle, R.Instance, Evicted);
      if (CompareAnswers) {
        std::sort(Evicted.begin(), Evicted.end());
        if (Evicted != R.Evicted)
          ++Result.AnswerMismatches;
      }
      break;
    }
    case QueryTraceRecord::CheckAlternatives: {
      int Got = Module.checkWithAlternatives(R.Alternatives, R.Cycle);
      if (CompareAnswers && Got != R.Answer)
        ++Result.AnswerMismatches;
      break;
    }
    case QueryTraceRecord::Reset:
      Module.reset();
      break;
    }
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// TracingQueryModule
//===----------------------------------------------------------------------===//

bool TracingQueryModule::check(OpId Op, int Cycle) {
  bool Answer = Inner.check(Op, Cycle);
  QueryTraceRecord R;
  R.Call = QueryTraceRecord::Check;
  R.Op = Op;
  R.Cycle = Cycle;
  R.Answer = Answer ? 1 : 0;
  Out.Records.push_back(std::move(R));
  sync();
  return Answer;
}

void TracingQueryModule::assign(OpId Op, int Cycle, InstanceId Instance) {
  Inner.assign(Op, Cycle, Instance);
  QueryTraceRecord R;
  R.Call = QueryTraceRecord::Assign;
  R.Op = Op;
  R.Cycle = Cycle;
  R.Instance = Instance;
  Out.Records.push_back(std::move(R));
  sync();
}

void TracingQueryModule::free(OpId Op, int Cycle, InstanceId Instance) {
  Inner.free(Op, Cycle, Instance);
  QueryTraceRecord R;
  R.Call = QueryTraceRecord::Free;
  R.Op = Op;
  R.Cycle = Cycle;
  R.Instance = Instance;
  Out.Records.push_back(std::move(R));
  sync();
}

void TracingQueryModule::assignAndFree(OpId Op, int Cycle,
                                       InstanceId Instance,
                                       std::vector<InstanceId> &Evicted) {
  size_t Before = Evicted.size();
  Inner.assignAndFree(Op, Cycle, Instance, Evicted);
  QueryTraceRecord R;
  R.Call = QueryTraceRecord::AssignFree;
  R.Op = Op;
  R.Cycle = Cycle;
  R.Instance = Instance;
  R.Evicted.assign(Evicted.begin() + static_cast<ptrdiff_t>(Before),
                   Evicted.end());
  std::sort(R.Evicted.begin(), R.Evicted.end());
  Out.Records.push_back(std::move(R));
  sync();
}

void TracingQueryModule::reset() {
  Inner.reset();
  QueryTraceRecord R;
  R.Call = QueryTraceRecord::Reset;
  Out.Records.push_back(std::move(R));
  sync();
}

int TracingQueryModule::checkWithAlternatives(
    const std::vector<OpId> &Alternatives, int Cycle) {
  int Answer = Inner.checkWithAlternatives(Alternatives, Cycle);
  QueryTraceRecord R;
  R.Call = QueryTraceRecord::CheckAlternatives;
  R.Cycle = Cycle;
  R.Alternatives = Alternatives;
  R.Answer = Answer;
  Out.Records.push_back(std::move(R));
  sync();
  return Answer;
}
