//===- verify/QueryTrace.h - Query-module call recording -------*- C++ -*-===//
///
/// \file
/// A compact serialized log of contention-query-module calls, with a
/// recorder (TracingQueryModule) and a standalone replayer. Traces are the
/// currency of the differential-verification harness: a scheduler records
/// its exact query stream once, and the stream is replayed against any
/// other module/description pairing — for bug repros (replay the failing
/// stream against a shadowed pair), for benchmarking (replay a real
/// scheduler workload against a candidate representation without paying
/// for the scheduler), and for regression tests.
///
/// The paper's central claim makes this sound: every FLM-preserving
/// description answers every query stream identically, so any recorded
/// trace is valid against any equivalent description.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_VERIFY_QUERYTRACE_H
#define RMD_VERIFY_QUERYTRACE_H

#include "query/QueryModule.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace rmd {

/// One recorded query-module call, with its recorded answer.
struct QueryTraceRecord {
  enum Kind : uint8_t {
    Check,             ///< check(Op, Cycle) -> Answer (0/1)
    Assign,            ///< assign(Op, Cycle, Instance)
    Free,              ///< free(Op, Cycle, Instance)
    AssignFree,        ///< assignAndFree(...) -> Evicted
    CheckAlternatives, ///< checkWithAlternatives(Alternatives, Cycle) -> Answer
    Reset,             ///< reset()
  };

  Kind Call = Check;
  OpId Op = 0;
  int Cycle = 0;
  InstanceId Instance = 0;
  /// CheckAlternatives only: the flat alternative ids queried.
  std::vector<OpId> Alternatives;
  /// Recorded answer: Check -> 0/1; CheckAlternatives -> index or -1.
  int Answer = 0;
  /// AssignFree only: evicted instance ids, sorted ascending.
  std::vector<InstanceId> Evicted;
};

/// The query-call log of one module configuration (one addressing mode and
/// window). Schedulers emit one QueryTrace per module they construct.
struct QueryTrace {
  /// Informational label (machine name); must not contain whitespace.
  std::string Machine = "-";
  /// Addressing of the module that was driven; a replayer constructs its
  /// module from this.
  QueryConfig Config;
  std::vector<QueryTraceRecord> Records;

  void serialize(std::ostream &OS) const;
};

/// A multi-segment trace log: one segment per module the traced run
/// constructed (e.g. one per II attempt of the Iterative Modulo Scheduler).
struct QueryTraceLog {
  std::vector<QueryTrace> Segments;

  /// Starts a new segment and returns it (stable until the next call).
  QueryTrace &beginSegment(std::string Machine, QueryConfig Config);

  void serialize(std::ostream &OS) const;

  /// Parses a log produced by serialize(). Returns false and fills
  /// \p Error (when non-null) on malformed input.
  static bool deserialize(std::istream &IS, QueryTraceLog &Out,
                          std::string *Error = nullptr);

  size_t totalRecords() const {
    size_t N = 0;
    for (const QueryTrace &T : Segments)
      N += T.Records.size();
    return N;
  }
};

/// Outcome of replaying one trace segment.
struct ReplayResult {
  uint64_t Calls = 0;
  /// Calls whose live answer differed from the recorded one (only counted
  /// when answer comparison is enabled). Any nonzero value means the module
  /// under replay is *not* equivalent to the recorded one.
  uint64_t AnswerMismatches = 0;
};

/// Replays \p Trace against \p Module, which must be configured compatibly
/// with Trace.Config (same mode/II/window). When \p CompareAnswers is set,
/// check and check-with-alternatives answers and evicted sets are compared
/// against the recorded ones. Replaying against a non-equivalent
/// description may abort inside the module (e.g. assign over a reserved
/// entry) — by design: the recorded stream is only meaningful against an
/// equivalent description.
ReplayResult replayTrace(const QueryTrace &Trace,
                         ContentionQueryModule &Module,
                         bool CompareAnswers = true);

/// A pass-through ContentionQueryModule that appends every call (with its
/// answer) to a QueryTrace. Counters mirror the inner module's, so traced
/// schedulers account work exactly as untraced ones.
class TracingQueryModule : public ContentionQueryModule {
public:
  /// Both \p Inner and \p Out must outlive this module.
  TracingQueryModule(ContentionQueryModule &Inner, QueryTrace &Out)
      : Inner(Inner), Out(Out) {
    // Counters mirror the inner module's (sync()); the inner module
    // publishes them itself.
    PublishWorkToStats = false;
  }

  bool check(OpId Op, int Cycle) override;
  void assign(OpId Op, int Cycle, InstanceId Instance) override;
  void free(OpId Op, int Cycle, InstanceId Instance) override;
  void assignAndFree(OpId Op, int Cycle, InstanceId Instance,
                     std::vector<InstanceId> &Evicted) override;
  void reset() override;
  int checkWithAlternatives(const std::vector<OpId> &Alternatives,
                            int Cycle) override;

private:
  void sync() { Counters = Inner.counters(); }

  ContentionQueryModule &Inner;
  QueryTrace &Out;
};

} // namespace rmd

#endif // RMD_VERIFY_QUERYTRACE_H
