//===- verify/TraceFuzzer.h - Randomized query-trace fuzzing ---*- C++ -*-===//
///
/// \file
/// A seeded random driver for contention query modules: generates a
/// well-formed stream of check / check-with-alternatives / assign / free /
/// assign&free / reset calls against any ContentionQueryModule, keeping a
/// model of the live instances so every call is legal (assigns only into
/// checked-free slots, frees only live instances, no modulo self-conflict
/// placements).
///
/// Compose with the rest of the verify subsystem:
///   - drive a ShadowQueryModule to differentially test two modules under
///     far denser and more adversarial traffic (eviction storms, negative
///     cycles, resets mid-storm) than any scheduler produces;
///   - drive a TracingQueryModule to mint reproducible trace corpora for
///     bench/trace_replay.
///
/// Determinism: identical (machine, config, options) inputs produce the
/// identical call stream on every host — failures reduce to one seed.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_VERIFY_TRACEFUZZER_H
#define RMD_VERIFY_TRACEFUZZER_H

#include "query/QueryModule.h"

#include <cstdint>

namespace rmd {

/// Knobs of one fuzzing run.
struct FuzzOptions {
  uint64_t Seed = 1;

  /// Number of fuzzing steps (a storm counts as one step).
  int Steps = 2000;

  /// Issue cycles are drawn from [MinCycle, MinCycle + CycleSpan) in
  /// linear mode and from [-CycleSpan, CycleSpan) in modulo mode (negative
  /// cycles exercise the wrap-around paths).
  int CycleSpan = 48;

  /// Per-mille of steps that run an eviction storm: StormLength forced
  /// assign&free placements at clustered cycles, which is what drives
  /// optimistic bitvector modules through their update-mode transition.
  unsigned StormPerMille = 80;
  unsigned StormLength = 6;

  /// Per-mille of steps that reset() the module (restarting the
  /// optimistic/update lifecycle).
  unsigned ResetPerMille = 4;
};

/// Tallies of one fuzzing run.
struct FuzzStats {
  uint64_t Checks = 0;
  uint64_t CheckAlternatives = 0;
  uint64_t Assigns = 0;
  uint64_t Frees = 0;
  uint64_t AssignFrees = 0;
  uint64_t Evictions = 0;
  uint64_t Storms = 0;
  uint64_t Resets = 0;
  /// Instances still live when the run ended.
  uint64_t LiveAtEnd = 0;

  uint64_t totalCalls() const {
    return Checks + CheckAlternatives + Assigns + Frees + AssignFrees +
           Resets;
  }
};

/// Fuzzes \p Module, which must be built over \p Flat (or an FLM-equivalent
/// description with the same operation ids) with addressing \p Config.
/// \p Groups lists the alternative groups used for check-with-alternatives
/// (ExpandedMachine::Groups; pass {} to skip alternative queries).
FuzzStats fuzzQueryModule(ContentionQueryModule &Module,
                          const MachineDescription &Flat,
                          const std::vector<std::vector<OpId>> &Groups,
                          const QueryConfig &Config,
                          const FuzzOptions &Options = {});

} // namespace rmd

#endif // RMD_VERIFY_TRACEFUZZER_H
