//===- verify/ShadowQueryModule.cpp ---------------------------------------===//

#include "verify/ShadowQueryModule.h"

#include "query/DiscreteQuery.h"
#include "support/FatalError.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace rmd;

ShadowQueryModule::ShadowQueryModule(
    std::unique_ptr<ContentionQueryModule> Reference,
    std::unique_ptr<ContentionQueryModule> Candidate, ShadowOptions TheOptions)
    : Ref(std::move(Reference)), Cand(std::move(Candidate)),
      Options(std::move(TheOptions)) {
  assert(Ref && Cand && "shadow module requires two inner modules");
  // Work is mirrored from the reference module, which publishes it.
  PublishWorkToStats = false;
  if (!Options.OnDivergence)
    Options.OnDivergence = [](const std::string &Report) {
      fatalError(Report.c_str());
    };
}

ShadowQueryModule::~ShadowQueryModule() = default;

//===----------------------------------------------------------------------===//
// Divergence reporting
//===----------------------------------------------------------------------===//

namespace {

/// Renders the expected occupancy of \p MD rebuilt from \p Live over
/// [\p Lo, \p Hi]. Instances that no longer fit (the tell-tale of a corrupt
/// live set) are reported instead of asserting mid-report.
void renderExpectedOccupancy(
    std::ostream &OS, const MachineDescription &MD, const QueryConfig &Config,
    const std::map<InstanceId, std::pair<OpId, int>> &Live, int Lo, int Hi) {
  DiscreteQueryModule View(MD, Config);
  for (const auto &[Instance, Placement] : Live) {
    if (!View.check(Placement.first, Placement.second)) {
      OS << "  !! instance #" << Instance << " ("
         << MD.operation(Placement.first).Name << "@" << Placement.second
         << ") no longer fits this description's table\n";
      continue;
    }
    View.assign(Placement.first, Placement.second, Instance);
  }
  View.renderOccupancy(OS, Lo, Hi);
}

} // namespace

std::string ShadowQueryModule::renderStateDiff(int AroundCycle) const {
  std::ostringstream OS;

  OS << "live instances (" << Live.size() << "):";
  for (const auto &[Instance, Placement] : Live) {
    OS << " #" << Instance << "=";
    if (Options.RefMD)
      OS << Options.RefMD->operation(Placement.first).Name;
    else
      OS << "op" << Placement.first;
    OS << "@" << Placement.second;
  }
  OS << "\n";

  // Rendering window: the whole MRT in modulo mode, a radius around the
  // divergent cycle in linear mode (clipped to the addressable window).
  int Lo, Hi;
  if (Options.Config.Mode == QueryConfig::Modulo) {
    Lo = 0;
    Hi = Options.Config.ModuloII - 1;
  } else {
    Lo = std::max(Options.Config.MinCycle, AroundCycle - Options.DiffRadius);
    Hi = AroundCycle + Options.DiffRadius;
  }
  if (Hi < Lo)
    Hi = Lo;

  // The observed diff: cells where the two modules answer differently,
  // probed per (operation, cycle) through check().
  size_t NumOps = Options.RefMD ? Options.RefMD->numOperations() : 0;
  if (NumOps > 0) {
    OS << "check() disagreements over cycles [" << Lo << ", " << Hi
       << "]:\n";
    size_t Reported = 0;
    for (OpId Op = 0; Op < NumOps; ++Op)
      for (int C = Lo; C <= Hi; ++C) {
        bool A = Ref->check(Op, C);
        bool B = Cand->check(Op, C);
        if (A != B && Reported < 32) {
          ++Reported;
          OS << "  " << Options.RefMD->operation(Op).Name << "@" << C
             << ": " << Options.RefLabel << "=" << (A ? "free" : "busy")
             << " " << Options.CandLabel << "=" << (B ? "free" : "busy")
             << "\n";
        }
      }
    if (Reported == 0)
      OS << "  (none in this window)\n";
  }

  if (Options.RefMD) {
    OS << "expected occupancy, " << Options.RefLabel << " description ("
       << Options.RefMD->name() << "):\n";
    renderExpectedOccupancy(OS, *Options.RefMD, Options.Config, Live, Lo,
                            Hi);
  }
  if (Options.CandMD) {
    OS << "expected occupancy, " << Options.CandLabel << " description ("
       << Options.CandMD->name() << "):\n";
    renderExpectedOccupancy(OS, *Options.CandMD, Options.Config, Live, Lo,
                            Hi);
  }
  return OS.str();
}

void ShadowQueryModule::diverge(const std::string &CallDesc,
                                const std::string &Detail, int AroundCycle) {
  ++Divergences;
  std::ostringstream OS;
  OS << "query-module divergence between " << Options.RefLabel << " and "
     << Options.CandLabel << "\n  call: " << CallDesc
     << "\n  " << Detail << "\n"
     << renderStateDiff(AroundCycle);
  Options.OnDivergence(OS.str());
}

//===----------------------------------------------------------------------===//
// Lockstep forwarding
//===----------------------------------------------------------------------===//

bool ShadowQueryModule::check(OpId Op, int Cycle) {
  bool A = Ref->check(Op, Cycle);
  bool B = Cand->check(Op, Cycle);
  if (A != B) {
    std::ostringstream Desc;
    Desc << "check(op=" << Op << ", cycle=" << Cycle << ")";
    diverge(Desc.str(),
            Options.RefLabel + "=" + (A ? "free" : "busy") + ", " +
                Options.CandLabel + "=" + (B ? "free" : "busy"),
            Cycle);
  }
  Counters = Ref->counters();
  return A;
}

int ShadowQueryModule::checkWithAlternatives(
    const std::vector<OpId> &Alternatives, int Cycle) {
  int A = Ref->checkWithAlternatives(Alternatives, Cycle);
  int B = Cand->checkWithAlternatives(Alternatives, Cycle);
  if (A != B) {
    std::ostringstream Desc;
    Desc << "checkWithAlternatives(" << Alternatives.size()
         << " alternatives, cycle=" << Cycle << ")";
    diverge(Desc.str(),
            Options.RefLabel + " chose " + std::to_string(A) + ", " +
                Options.CandLabel + " chose " + std::to_string(B),
            Cycle);
  }
  Counters = Ref->counters();
  return A;
}

void ShadowQueryModule::assign(OpId Op, int Cycle, InstanceId Instance) {
  Ref->assign(Op, Cycle, Instance);
  Cand->assign(Op, Cycle, Instance);
  Live[Instance] = {Op, Cycle};
  Counters = Ref->counters();
}

void ShadowQueryModule::free(OpId Op, int Cycle, InstanceId Instance) {
  Ref->free(Op, Cycle, Instance);
  Cand->free(Op, Cycle, Instance);
  Live.erase(Instance);
  Counters = Ref->counters();
}

void ShadowQueryModule::assignAndFree(OpId Op, int Cycle, InstanceId Instance,
                                      std::vector<InstanceId> &Evicted) {
  std::vector<InstanceId> FromRef, FromCand;
  Ref->assignAndFree(Op, Cycle, Instance, FromRef);
  Cand->assignAndFree(Op, Cycle, Instance, FromCand);

  std::vector<InstanceId> SortedRef = FromRef, SortedCand = FromCand;
  std::sort(SortedRef.begin(), SortedRef.end());
  std::sort(SortedCand.begin(), SortedCand.end());
  if (SortedRef != SortedCand) {
    auto Render = [](const std::vector<InstanceId> &Ids) {
      std::string S = "{";
      for (size_t I = 0; I < Ids.size(); ++I)
        S += (I ? " #" : "#") + std::to_string(Ids[I]);
      return S + "}";
    };
    std::ostringstream Desc;
    Desc << "assignAndFree(op=" << Op << ", cycle=" << Cycle
         << ", instance=" << Instance << ")";
    diverge(Desc.str(),
            Options.RefLabel + " evicted " + Render(SortedRef) + ", " +
                Options.CandLabel + " evicted " + Render(SortedCand),
            Cycle);
  }

  // The reference is the source of truth for the caller and the live set.
  for (InstanceId Victim : FromRef)
    Live.erase(Victim);
  Live[Instance] = {Op, Cycle};
  Evicted.insert(Evicted.end(), FromRef.begin(), FromRef.end());
  Counters = Ref->counters();
}

void ShadowQueryModule::reset() {
  Ref->reset();
  Cand->reset();
  Live.clear();
  Counters = Ref->counters();
}

size_t ShadowQueryModule::verifyEndState() {
  if (!Options.RefMD)
    return 0; // no operation universe to probe

  int Lo, Hi;
  if (Options.Config.Mode == QueryConfig::Modulo) {
    Lo = 0;
    Hi = Options.Config.ModuloII - 1;
  } else {
    Lo = Options.Config.MinCycle;
    int LastIssue = Options.Config.MinCycle;
    for (const auto &[Instance, Placement] : Live)
      LastIssue = std::max(LastIssue, Placement.second);
    Hi = LastIssue + std::max(Options.RefMD->maxTableLength(), 1);
  }

  size_t Found = 0;
  for (OpId Op = 0; Op < Options.RefMD->numOperations(); ++Op)
    for (int C = Lo; C <= Hi; ++C) {
      bool A = Ref->check(Op, C);
      bool B = Cand->check(Op, C);
      if (A != B) {
        ++Found;
        std::ostringstream Desc;
        Desc << "verifyEndState probe check(op=" << Op << ", cycle=" << C
             << ")";
        diverge(Desc.str(),
                Options.RefLabel + "=" + (A ? "free" : "busy") + ", " +
                    Options.CandLabel + "=" + (B ? "free" : "busy"),
                C);
      }
    }
  Counters = Ref->counters();
  return Found;
}
