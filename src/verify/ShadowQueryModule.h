//===- verify/ShadowQueryModule.h - Lockstep differential check -*- C++ -*-===//
///
/// \file
/// A ContentionQueryModule that drives two inner modules in lockstep and
/// reports the first divergence with a rendered occupancy diff. The inner
/// modules may differ in representation (discrete vs bitvector), in machine
/// description (original vs reduced), or both — the paper guarantees every
/// pairing answers identically, and this module is the runtime enforcement
/// of that guarantee.
///
/// Checked on every call: check answers, check-with-alternatives indices,
/// evicted-instance sets of assign&free. verifyEndState() additionally
/// cross-probes the end-state reservations cell-by-cell through check().
///
/// The divergence handler defaults to fatalError(); tests install their own
/// handler to assert that a deliberately broken module is caught.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_VERIFY_SHADOWQUERYMODULE_H
#define RMD_VERIFY_SHADOWQUERYMODULE_H

#include "query/QueryModule.h"

#include <functional>
#include <map>
#include <memory>
#include <string>

namespace rmd {

/// Configuration of a ShadowQueryModule.
struct ShadowOptions {
  /// Machine descriptions the two inner modules are built over. Optional;
  /// when set (together with Config), divergence reports include the
  /// expected occupancy of both descriptions rebuilt from the live
  /// instance set. Both must outlive the shadow module.
  const MachineDescription *RefMD = nullptr;
  const MachineDescription *CandMD = nullptr;

  /// Addressing of the inner modules (used to rebuild render views and to
  /// bound end-state probing). Must match the inner modules' configs.
  QueryConfig Config;

  std::string RefLabel = "reference";
  std::string CandLabel = "candidate";

  /// Invoked with a full report on each divergence. Defaults to
  /// fatalError() — a divergence means schedules can silently rot, so
  /// production runs must die. Handlers may return (tests do) and the
  /// shadow keeps forwarding to the *reference* module's answers.
  std::function<void(const std::string &)> OnDivergence;

  /// Cycles rendered on each side of a divergent cycle.
  int DiffRadius = 6;
};

/// Drives \p Reference and \p Candidate in lockstep; see file comment.
/// Forwarded answers (and work counters) are always the reference module's,
/// so a shadowed scheduler behaves exactly as if it ran on the reference.
class ShadowQueryModule : public ContentionQueryModule {
public:
  ShadowQueryModule(std::unique_ptr<ContentionQueryModule> Reference,
                    std::unique_ptr<ContentionQueryModule> Candidate,
                    ShadowOptions Options = {});
  ~ShadowQueryModule() override;

  bool check(OpId Op, int Cycle) override;
  void assign(OpId Op, int Cycle, InstanceId Instance) override;
  void free(OpId Op, int Cycle, InstanceId Instance) override;
  void assignAndFree(OpId Op, int Cycle, InstanceId Instance,
                     std::vector<InstanceId> &Evicted) override;
  void reset() override;
  int checkWithAlternatives(const std::vector<OpId> &Alternatives,
                            int Cycle) override;

  /// Cross-probes the current reservations: every operation is checked at
  /// every cycle of the live window on both modules; any disagreement is a
  /// divergence. Probing goes through check(), so counters are perturbed —
  /// call at verification points, not in measured runs. Returns the number
  /// of divergences found by this probe.
  size_t verifyEndState();

  /// Total divergences reported so far (nonzero only if the handler
  /// returned instead of aborting).
  size_t divergenceCount() const { return Divergences; }

  ContentionQueryModule &reference() { return *Ref; }
  ContentionQueryModule &candidate() { return *Cand; }

private:
  /// Builds the report for a divergent call and invokes the handler.
  void diverge(const std::string &CallDesc, const std::string &Detail,
               int AroundCycle);

  /// Renders the live instance set plus, when descriptions are available,
  /// both expected occupancy tables around \p AroundCycle.
  std::string renderStateDiff(int AroundCycle) const;

  std::unique_ptr<ContentionQueryModule> Ref;
  std::unique_ptr<ContentionQueryModule> Cand;
  ShadowOptions Options;

  /// Live instances (id -> op, issue cycle); ordered so reports and
  /// rebuilt render views are deterministic.
  std::map<InstanceId, std::pair<OpId, int>> Live;

  size_t Divergences = 0;
};

} // namespace rmd

#endif // RMD_VERIFY_SHADOWQUERYMODULE_H
