//===- verify/TraceFuzzer.cpp ---------------------------------------------===//

#include "verify/TraceFuzzer.h"

#include "query/DiscreteQuery.h" // hasModuloSelfConflict
#include "support/RNG.h"

#include <cassert>
#include <unordered_map>

using namespace rmd;

FuzzStats rmd::fuzzQueryModule(ContentionQueryModule &Module,
                               const MachineDescription &Flat,
                               const std::vector<std::vector<OpId>> &Groups,
                               const QueryConfig &Config,
                               const FuzzOptions &Options) {
  assert(Flat.isExpanded() && "fuzzer requires an expanded machine");
  assert(Options.CycleSpan > 0 && "cycle span must be positive");
  assert(Flat.numOperations() > 0 && "cannot fuzz an empty machine");

  RNG R(Options.Seed);
  FuzzStats Stats;
  const bool Modulo = Config.Mode == QueryConfig::Modulo;

  // Operations that may legally be placed: in modulo mode an operation
  // whose table collides with its own II-copies can never be assigned
  // (check() answers false; assignAndFree() aborts by contract).
  std::vector<OpId> Placeable;
  for (OpId Op = 0; Op < Flat.numOperations(); ++Op)
    if (!Modulo ||
        !hasModuloSelfConflict(Flat.operation(Op).table(), Config.ModuloII))
      Placeable.push_back(Op);

  auto randomCycle = [&]() {
    if (Modulo)
      return -Options.CycleSpan +
             static_cast<int>(R.nextBelow(2u * Options.CycleSpan));
    return Config.MinCycle +
           static_cast<int>(R.nextBelow(Options.CycleSpan));
  };

  // Model of the module's live instances; keeps every generated call legal.
  std::vector<InstanceId> LiveIds;
  std::unordered_map<InstanceId, std::pair<OpId, int>> LiveInfo;
  InstanceId NextId = 0;

  auto addLive = [&](InstanceId Id, OpId Op, int Cycle) {
    LiveIds.push_back(Id);
    LiveInfo.emplace(Id, std::make_pair(Op, Cycle));
  };
  auto removeLive = [&](InstanceId Id) {
    LiveInfo.erase(Id);
    for (size_t I = 0; I < LiveIds.size(); ++I)
      if (LiveIds[I] == Id) {
        LiveIds[I] = LiveIds.back();
        LiveIds.pop_back();
        break;
      }
  };

  auto forcedPlacement = [&](int Cycle) {
    OpId Op = Placeable[R.nextBelow(Placeable.size())];
    std::vector<InstanceId> Evicted;
    InstanceId Id = NextId++;
    Module.assignAndFree(Op, Cycle, Id, Evicted);
    ++Stats.AssignFrees;
    Stats.Evictions += Evicted.size();
    for (InstanceId Victim : Evicted)
      removeLive(Victim);
    addLive(Id, Op, Cycle);
  };

  auto checkMaybeAssign = [&]() {
    OpId Op = static_cast<OpId>(R.nextBelow(Flat.numOperations()));
    int Cycle = randomCycle();
    bool Free = Module.check(Op, Cycle);
    ++Stats.Checks;
    // check() returning true implies the placement is legal (modulo
    // self-conflicting operations always answer false).
    if (Free && R.nextChance(2, 3)) {
      InstanceId Id = NextId++;
      Module.assign(Op, Cycle, Id);
      ++Stats.Assigns;
      addLive(Id, Op, Cycle);
    }
  };

  for (int Step = 0; Step < Options.Steps; ++Step) {
    if (R.nextChance(Options.ResetPerMille, 1000)) {
      Module.reset();
      LiveIds.clear();
      LiveInfo.clear();
      ++Stats.Resets;
      continue;
    }

    // Eviction storm: a burst of forced placements at clustered cycles —
    // the traffic pattern that drives optimistic bitvector modules through
    // the update-mode transition and produces deep eviction cascades.
    if (!Placeable.empty() && R.nextChance(Options.StormPerMille, 1000)) {
      ++Stats.Storms;
      int Base = randomCycle();
      for (unsigned I = 0; I < Options.StormLength; ++I)
        forcedPlacement(Base + static_cast<int>(R.nextBelow(4)));
      continue;
    }

    switch (R.nextBelow(4)) {
    case 0:
      checkMaybeAssign();
      break;
    case 1: {
      if (Groups.empty()) {
        checkMaybeAssign();
        break;
      }
      const std::vector<OpId> &Group = Groups[R.nextBelow(Groups.size())];
      int Cycle = randomCycle();
      int Found = Module.checkWithAlternatives(Group, Cycle);
      ++Stats.CheckAlternatives;
      if (Found >= 0 && R.nextChance(1, 2)) {
        InstanceId Id = NextId++;
        Module.assign(Group[static_cast<size_t>(Found)], Cycle, Id);
        ++Stats.Assigns;
        addLive(Id, Group[static_cast<size_t>(Found)], Cycle);
      }
      break;
    }
    case 2: {
      if (LiveIds.empty()) {
        checkMaybeAssign();
        break;
      }
      InstanceId Id = LiveIds[R.nextBelow(LiveIds.size())];
      auto [Op, Cycle] = LiveInfo.at(Id);
      Module.free(Op, Cycle, Id);
      ++Stats.Frees;
      removeLive(Id);
      break;
    }
    case 3:
      if (Placeable.empty()) {
        checkMaybeAssign();
        break;
      }
      forcedPlacement(randomCycle());
      break;
    }
  }

  Stats.LiveAtEnd = LiveIds.size();
  return Stats;
}
