//===- support/Diagnostics.h - Source-located diagnostics ------*- C++ -*-===//
//
// Part of the rmd project: a reproduction of Eichenberger & Davidson,
// "A Reduced Multipipeline Machine Description that Preserves Scheduling
// Constraints", PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source-located diagnostics for the machine description language parser
/// and other user-input-facing components. The library itself never throws;
/// recoverable errors are reported through a DiagnosticEngine and signalled
/// by std::optional returns.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SUPPORT_DIAGNOSTICS_H
#define RMD_SUPPORT_DIAGNOSTICS_H

#include <iosfwd>
#include <string>
#include <vector>

namespace rmd {

/// A 1-based line/column position inside an input buffer. Line 0 denotes an
/// unknown location (e.g. diagnostics about the description as a whole).
struct SourceLocation {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }

  friend bool operator==(const SourceLocation &A, const SourceLocation &B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
};

/// Severity of a diagnostic. Errors make the producing operation fail;
/// warnings and notes are informational.
enum class DiagSeverity { Note, Warning, Error };

/// A single diagnostic message attached to a source location.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLocation Loc;
  std::string Message;
};

/// Collects diagnostics produced while processing one input. A
/// DiagnosticEngine is cheap to construct; callers inspect hasErrors() after
/// a fallible operation and may render the collected messages with print().
class DiagnosticEngine {
public:
  /// Appends a diagnostic with severity \p Severity at \p Loc.
  void report(DiagSeverity Severity, SourceLocation Loc, std::string Message);

  /// Appends an error diagnostic at \p Loc.
  void error(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }

  /// Appends a warning diagnostic at \p Loc.
  void warning(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }

  /// Appends a note diagnostic at \p Loc.
  void note(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every collected diagnostic to \p OS, one per line, in the
  /// conventional "<name>:<line>:<col>: <severity>: <message>" format.
  void print(std::ostream &OS, const std::string &InputName = "<input>") const;

  /// Drops all collected diagnostics and resets the error count.
  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace rmd

#endif // RMD_SUPPORT_DIAGNOSTICS_H
