//===- support/Stats.cpp --------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

using namespace rmd;

namespace {

/// Slots per stat kind. Histogram layout: [count, sum, ~min, max,
/// bucket0..bucket64]. The ~min encoding (store the bitwise complement,
/// merge with max) makes zero-initialized slots a valid empty state, so
/// shard growth and reset() never need kind-specific initialization.
constexpr size_t CounterSlots = 1;
constexpr size_t TimerSlots = 2;
constexpr size_t HistogramSlots = 4 + 65;

size_t slotsFor(StatKind Kind) {
  switch (Kind) {
  case StatKind::Counter:
    return CounterSlots;
  case StatKind::Timer:
    return TimerSlots;
  case StatKind::Histogram:
    return HistogramSlots;
  }
  return CounterSlots;
}

/// One thread's slot array. Only the owning thread writes; snapshot()
/// reads concurrently under the registry mutex (which also serializes
/// growth), so plain relaxed atomics suffice and adds never contend.
struct Shard {
  std::deque<std::atomic<uint64_t>> Slots;
};

constexpr std::memory_order Relaxed = std::memory_order_relaxed;

/// Single-writer add/min/max; relaxed is enough because each slot has
/// exactly one writing thread.
void slotAdd(std::atomic<uint64_t> &S, uint64_t Delta) {
  S.store(S.load(Relaxed) + Delta, Relaxed);
}
void slotMax(std::atomic<uint64_t> &S, uint64_t Value) {
  if (Value > S.load(Relaxed))
    S.store(Value, Relaxed);
}

} // namespace

struct StatsRegistry::Impl {
  mutable std::mutex Mutex;
  std::unordered_map<std::string, size_t> NameToSlot;
  /// Registration order, parallel arrays indexed by stat ordinal.
  std::vector<std::string> Names;
  std::vector<StatKind> Kinds;
  std::vector<size_t> BaseSlots;
  size_t TotalSlots = 0;

  std::vector<Shard *> LiveShards;
  std::vector<uint64_t> Retired; ///< merged totals of exited threads

  /// The calling thread's shard, registered on first use and merged into
  /// Retired when the thread exits.
  Shard &localShard() {
    struct Handle {
      Impl *Owner = nullptr;
      Shard TheShard;
      ~Handle() {
        if (!Owner)
          return;
        std::lock_guard<std::mutex> Lock(Owner->Mutex);
        if (Owner->Retired.size() < TheShard.Slots.size())
          Owner->Retired.resize(TheShard.Slots.size(), 0);
        Owner->mergeSlots(Owner->Retired, TheShard);
        Owner->LiveShards.erase(std::find(Owner->LiveShards.begin(),
                                          Owner->LiveShards.end(),
                                          &TheShard));
      }
    };
    thread_local Handle H;
    if (!H.Owner) {
      H.Owner = this;
      std::lock_guard<std::mutex> Lock(Mutex);
      LiveShards.push_back(&H.TheShard);
    }
    return H.TheShard;
  }

  /// Grows \p S to cover \p Slot (under the mutex: snapshot() may be
  /// iterating this shard from another thread).
  void ensureSlot(Shard &S, size_t Slot) {
    if (Slot < S.Slots.size())
      return;
    std::lock_guard<std::mutex> Lock(Mutex);
    // deque growth constructs new elements in place without moving the
    // existing ones, so concurrent readers of old slots stay valid.
    while (S.Slots.size() <= Slot)
      S.Slots.emplace_back(0);
  }

  /// Kind-aware merge of one shard into a totals vector. Counters, timer
  /// fields, histogram count/sum/buckets add; ~min and max merge by max
  /// (hence the complement encoding for min).
  void mergeSlots(std::vector<uint64_t> &Into, const Shard &From) const {
    for (size_t Ordinal = 0; Ordinal < Names.size(); ++Ordinal) {
      size_t Base = BaseSlots[Ordinal];
      size_t N = slotsFor(Kinds[Ordinal]);
      for (size_t I = 0; I < N && Base + I < From.Slots.size(); ++I) {
        uint64_t V = From.Slots[Base + I].load(Relaxed);
        bool IsMinMax =
            Kinds[Ordinal] == StatKind::Histogram && (I == 2 || I == 3);
        if (IsMinMax)
          Into[Base + I] = std::max(Into[Base + I], V);
        else
          Into[Base + I] += V;
      }
    }
  }
};

StatsRegistry::Impl &StatsRegistry::impl() const {
  static Impl *I = new Impl; // never destroyed: handles outlive main()
  return *I;
}

StatsRegistry &StatsRegistry::instance() {
  static StatsRegistry R;
  return R;
}

size_t StatsRegistry::registerStat(std::string_view Name, StatKind Kind) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  auto It = I.NameToSlot.find(std::string(Name));
  if (It != I.NameToSlot.end()) {
    assert(I.Kinds[It->second] == Kind && "stat re-registered as a "
                                          "different kind");
    return I.BaseSlots[It->second];
  }
  size_t Ordinal = I.Names.size();
  I.Names.emplace_back(Name);
  I.Kinds.push_back(Kind);
  I.BaseSlots.push_back(I.TotalSlots);
  I.NameToSlot.emplace(std::string(Name), Ordinal);
  size_t Base = I.TotalSlots;
  I.TotalSlots += slotsFor(Kind);
  return Base;
}

void StatsRegistry::add(size_t Slot, uint64_t Delta) {
  Impl &I = impl();
  Shard &S = I.localShard();
  I.ensureSlot(S, Slot);
  slotAdd(S.Slots[Slot], Delta);
}

void StatsRegistry::recordTimer(size_t Slot, uint64_t Nanos) {
  Impl &I = impl();
  Shard &S = I.localShard();
  I.ensureSlot(S, Slot + 1);
  slotAdd(S.Slots[Slot], 1);
  slotAdd(S.Slots[Slot + 1], Nanos);
}

void StatsRegistry::recordHistogram(size_t Slot, uint64_t Value) {
  Impl &I = impl();
  Shard &S = I.localShard();
  size_t Bucket = static_cast<size_t>(std::bit_width(Value));
  I.ensureSlot(S, Slot + 4 + 64);
  slotAdd(S.Slots[Slot], 1);          // count
  slotAdd(S.Slots[Slot + 1], Value);  // sum
  slotMax(S.Slots[Slot + 2], ~Value); // ~min
  slotMax(S.Slots[Slot + 3], Value);  // max
  slotAdd(S.Slots[Slot + 4 + Bucket], 1);
}

StatsSnapshot StatsRegistry::snapshot() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);

  std::vector<uint64_t> Totals(I.TotalSlots, 0);
  size_t N = std::min(Totals.size(), I.Retired.size());
  for (size_t S = 0; S < N; ++S)
    Totals[S] = I.Retired[S];
  for (const Shard *S : I.LiveShards)
    I.mergeSlots(Totals, *S);

  StatsSnapshot Snap;
  for (size_t Ordinal = 0; Ordinal < I.Names.size(); ++Ordinal) {
    const std::string &Name = I.Names[Ordinal];
    size_t Base = I.BaseSlots[Ordinal];
    switch (I.Kinds[Ordinal]) {
    case StatKind::Counter:
      Snap.Counters[Name] = Totals[Base];
      break;
    case StatKind::Timer: {
      StatsSnapshot::TimerValue T;
      T.Count = Totals[Base];
      T.TotalNs = Totals[Base + 1];
      Snap.Timers[Name] = T;
      break;
    }
    case StatKind::Histogram: {
      StatsSnapshot::HistogramValue H;
      H.Count = Totals[Base];
      H.Sum = Totals[Base + 1];
      H.Min = H.Count ? ~Totals[Base + 2] : 0;
      H.Max = Totals[Base + 3];
      for (size_t B = 0; B < H.Buckets.size(); ++B)
        H.Buckets[B] = Totals[Base + 4 + B];
      Snap.Histograms[Name] = H;
      break;
    }
    }
  }
  return Snap;
}

void StatsRegistry::reset() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  std::fill(I.Retired.begin(), I.Retired.end(), 0);
  for (Shard *S : I.LiveShards)
    for (std::atomic<uint64_t> &Slot : S->Slots)
      Slot.store(0, Relaxed);
}

//===----------------------------------------------------------------------===//
// JSON export
//===----------------------------------------------------------------------===//

namespace {

/// Stats names are ASCII identifiers with dots/slashes, but escape
/// defensively so the document is always valid JSON.
void writeJsonString(std::ostream &OS, std::string_view S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        OS << "\\u00" << Hex[(C >> 4) & 0xf] << Hex[C & 0xf];
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

} // namespace

void StatsSnapshot::writeJson(std::ostream &OS,
                              const JsonOptions &Options) const {
  OS << "{\n  \"schema\": \"rmd-stats-v1\"";
  if (!Options.Tool.empty()) {
    OS << ",\n  \"tool\": ";
    writeJsonString(OS, Options.Tool);
  }

  OS << ",\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    OS << (First ? "\n    " : ",\n    ");
    writeJsonString(OS, Name);
    OS << ": " << Value;
    First = false;
  }
  OS << (First ? "}" : "\n  }");

  OS << ",\n  \"timers\": {";
  First = true;
  for (const auto &[Name, T] : Timers) {
    OS << (First ? "\n    " : ",\n    ");
    writeJsonString(OS, Name);
    OS << ": {\"count\": " << T.Count;
    if (Options.IncludeTimings)
      OS << ", \"total_ns\": " << T.TotalNs;
    OS << "}";
    First = false;
  }
  OS << (First ? "}" : "\n  }");

  OS << ",\n  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    OS << (First ? "\n    " : ",\n    ");
    writeJsonString(OS, Name);
    OS << ": {\"count\": " << H.Count << ", \"sum\": " << H.Sum
       << ", \"min\": " << H.Min << ", \"max\": " << H.Max
       << ", \"buckets\": {";
    bool FirstBucket = true;
    for (size_t B = 0; B < H.Buckets.size(); ++B) {
      if (!H.Buckets[B])
        continue;
      OS << (FirstBucket ? "" : ", ") << '"' << B << "\": " << H.Buckets[B];
      FirstBucket = false;
    }
    OS << "}}";
    First = false;
  }
  OS << (First ? "}" : "\n  }");

  OS << "\n}\n";
}

bool rmd::exportProcessStats(const std::string &Path,
                             const std::string &Tool) {
  StatsSnapshot Snap = StatsRegistry::instance().snapshot();
  StatsSnapshot::JsonOptions Options;
  Options.Tool = Tool;
  if (Path == "-") {
    Snap.writeJson(std::cout, Options);
    return true;
  }
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    std::cerr << Tool << ": warning: cannot write stats JSON to '" << Path
              << "'\n";
    return false;
  }
  Snap.writeJson(Out, Options);
  return true;
}

StatsJsonGuard::StatsJsonGuard(int &Argc, char **Argv, std::string TheTool)
    : Tool(std::move(TheTool)) {
  static constexpr std::string_view Flag = "--stats-json=";
  int Out = 1;
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I] ? std::string_view(Argv[I])
                                   : std::string_view();
    if (Arg.rfind(Flag, 0) == 0)
      Path = std::string(Arg.substr(Flag.size()));
    else
      Argv[Out++] = Argv[I];
  }
  if (Out < Argc) {
    Argv[Out] = nullptr;
    Argc = Out;
  }
  if (Path.empty())
    if (const char *Env = std::getenv("RMD_STATS_JSON"))
      Path = Env;
}

StatsJsonGuard::~StatsJsonGuard() {
  if (!Path.empty())
    exportProcessStats(Path, Tool);
}
