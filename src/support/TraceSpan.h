//===- support/TraceSpan.h - RAII phase spans with nesting -----*- C++ -*-===//
///
/// \file
/// Scoped phase timing: a TraceSpan marks one phase of a pipeline, spans
/// nest per thread, and each span records its wall-clock duration into the
/// stats registry under its full nesting path ("reduce", "reduce/flm",
/// "reduce/fold", ...). Snapshot timers therefore show both how often each
/// phase ran (deterministic) and how long it took (wall clock).
///
///   {
///     TraceSpan Span("reduce");
///     { TraceSpan Inner("flm"); ... }   // recorded as "reduce/flm"
///   }
///
/// Setting the RMD_TRACE_SPANS environment variable additionally streams
/// enter/exit lines with indentation to stderr, for watching a live run:
///
///   > reduce
///   . > flm
///   . < flm 1.24ms
///   < reduce 5.81ms
///
/// Span names must be string literals (or otherwise outlive the span);
/// paths are joined with '/'. Spans are thread-local: nesting tracks the
/// constructing thread only, so worker-pool tasks may use spans without
/// synchronizing, though the hot paths deliberately do not (per-item spans
/// would cost more than the work they time).
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SUPPORT_TRACESPAN_H
#define RMD_SUPPORT_TRACESPAN_H

#include "support/Stats.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace rmd {

class TraceSpan {
public:
  explicit TraceSpan(const char *Name) : Start(Clock::now()) {
    std::vector<const char *> &Stack = stack();
    Stack.push_back(Name);
    Path = join(Stack);
    Slot = StatsRegistry::instance().registerStat(Path, StatKind::Timer);
    if (streaming())
      std::fprintf(stderr, "%s> %s\n", indent(Stack.size() - 1).c_str(),
                   Name);
  }

  ~TraceSpan() {
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - Start)
                  .count();
    StatsRegistry::instance().recordTimer(Slot,
                                          static_cast<uint64_t>(Ns));
    std::vector<const char *> &Stack = stack();
    if (streaming())
      std::fprintf(stderr, "%s< %s %.2fms\n",
                   indent(Stack.size() - 1).c_str(), Stack.back(),
                   static_cast<double>(Ns) / 1e6);
    Stack.pop_back();
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// The full nesting path this span records under.
  const std::string &path() const { return Path; }

private:
  using Clock = std::chrono::steady_clock;

  static std::vector<const char *> &stack() {
    thread_local std::vector<const char *> Stack;
    return Stack;
  }

  static bool streaming() {
    static bool On = [] {
      const char *Env = std::getenv("RMD_TRACE_SPANS");
      return Env && *Env;
    }();
    return On;
  }

  static std::string join(const std::vector<const char *> &Stack) {
    std::string Path;
    for (const char *Part : Stack) {
      if (!Path.empty())
        Path += '/';
      Path += Part;
    }
    return Path;
  }

  static std::string indent(size_t Depth) {
    std::string Pad;
    for (size_t I = 0; I < Depth; ++I)
      Pad += ". ";
    return Pad;
  }

  Clock::time_point Start;
  std::string Path;
  size_t Slot;
};

} // namespace rmd

#endif // RMD_SUPPORT_TRACESPAN_H
