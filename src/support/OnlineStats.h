//===- support/OnlineStats.h - Streaming summary statistics ----*- C++ -*-===//
///
/// \file
/// Streaming min/avg/max accumulators used to report paper-style table rows
/// (e.g. Table 5's "min | % at min | avg | max" columns).
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SUPPORT_ONLINESTATS_H
#define RMD_SUPPORT_ONLINESTATS_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>

namespace rmd {

/// Accumulates count/sum/min/max of a stream of doubles, plus the fraction of
/// samples equal to the stream's minimum (Table 5 reports "% at min").
class OnlineStats {
public:
  void add(double Value) {
    ++Count;
    Sum += Value;
    if (Value < Min) {
      Min = Value;
      AtMin = 1;
    } else if (Value == Min) {
      ++AtMin;
    }
    Max = std::max(Max, Value);
  }

  uint64_t count() const { return Count; }
  double sum() const { return Sum; }

  double mean() const {
    assert(Count > 0 && "mean of empty stream");
    return Sum / static_cast<double>(Count);
  }

  double min() const {
    assert(Count > 0 && "min of empty stream");
    return Min;
  }

  double max() const {
    assert(Count > 0 && "max of empty stream");
    return Max;
  }

  /// Fraction of samples equal to the minimum, in [0, 1].
  double fractionAtMin() const {
    assert(Count > 0 && "fractionAtMin of empty stream");
    return static_cast<double>(AtMin) / static_cast<double>(Count);
  }

private:
  uint64_t Count = 0;
  uint64_t AtMin = 0;
  double Sum = 0;
  double Min = std::numeric_limits<double>::infinity();
  double Max = -std::numeric_limits<double>::infinity();
};

} // namespace rmd

#endif // RMD_SUPPORT_ONLINESTATS_H
