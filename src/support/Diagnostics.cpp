//===- support/Diagnostics.cpp --------------------------------------------===//

#include "support/Diagnostics.h"

#include <ostream>

using namespace rmd;

void DiagnosticEngine::report(DiagSeverity Severity, SourceLocation Loc,
                              std::string Message) {
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back(Diagnostic{Severity, Loc, std::move(Message)});
}

static const char *severityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

void DiagnosticEngine::print(std::ostream &OS,
                             const std::string &InputName) const {
  for (const Diagnostic &D : Diags) {
    OS << InputName;
    if (D.Loc.isValid())
      OS << ':' << D.Loc.Line << ':' << D.Loc.Column;
    OS << ": " << severityName(D.Severity) << ": " << D.Message << '\n';
  }
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}
