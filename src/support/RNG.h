//===- support/RNG.h - Deterministic pseudo-random numbers -----*- C++ -*-===//
///
/// \file
/// A small deterministic random number generator (SplitMix64) used by the
/// workload generator and the property-based tests. Determinism matters:
/// every randomized experiment in the benchmark harness is reproducible from
/// its seed, so paper-style tables are stable across runs and machines.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SUPPORT_RNG_H
#define RMD_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rmd {

/// SplitMix64: a tiny, fast, high-quality 64-bit PRNG with a one-word state.
/// Not cryptographic; perfectly adequate for workload synthesis.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // small bounds used here.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability \p Num / \p Den.
  bool nextChance(uint64_t Num, uint64_t Den) {
    assert(Den > 0 && "zero denominator");
    return nextBelow(Den) < Num;
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Picks an index according to the (unnormalized, nonnegative) \p Weights.
  /// At least one weight must be positive.
  size_t nextWeighted(const std::vector<double> &Weights) {
    double Total = 0;
    for (double W : Weights)
      Total += W;
    assert(Total > 0 && "all weights are zero");
    double R = nextDouble() * Total;
    for (size_t I = 0; I + 1 < Weights.size(); ++I) {
      R -= Weights[I];
      if (R < 0)
        return I;
    }
    return Weights.size() - 1;
  }

private:
  uint64_t State;
};

} // namespace rmd

#endif // RMD_SUPPORT_RNG_H
