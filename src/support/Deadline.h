//===- support/Deadline.h - Wall-clock deadlines and cancellation -*- C++ -*-===//
///
/// \file
/// Wall-clock deadlines and cooperative cancellation for the schedulers.
/// Both are polled, never preemptive: the schedulers check between
/// scheduling decisions and between II attempts and return best-so-far
/// with a TimedOut / Cancelled outcome instead of grinding II escalation
/// under a latency budget.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SUPPORT_DEADLINE_H
#define RMD_SUPPORT_DEADLINE_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rmd {

/// A point in time after which polled work should stop. The default
/// (never()) is free to poll: expired() is one branch, no clock read.
class Deadline {
public:
  /// No deadline; expired() is always false.
  static Deadline never() { return Deadline(); }

  /// Expires \p Millis milliseconds from now.
  static Deadline afterMillis(int64_t Millis) {
    Deadline D;
    D.Enabled = true;
    D.At = std::chrono::steady_clock::now() +
           std::chrono::milliseconds(Millis);
    return D;
  }

  bool enabled() const { return Enabled; }

  bool expired() const {
    return Enabled && std::chrono::steady_clock::now() >= At;
  }

private:
  bool Enabled = false;
  std::chrono::steady_clock::time_point At;
};

/// A cooperative cancellation flag, settable from another thread. The
/// schedulers poll it alongside their deadline.
class CancellationToken {
public:
  void cancel() { Flag.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return Flag.load(std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

} // namespace rmd

#endif // RMD_SUPPORT_DEADLINE_H
