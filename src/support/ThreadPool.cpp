//===- support/ThreadPool.cpp ---------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Degradation.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

using namespace rmd;

unsigned ThreadPool::resolveThreadCount(unsigned Threads) {
  if (Threads != 0)
    return Threads;
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

ThreadPool::ThreadPool(unsigned Threads)
    : NumThreads(resolveThreadCount(Threads)) {
  Workers.reserve(NumThreads - 1);
  for (unsigned W = 0; W + 1 < NumThreads; ++W)
    Workers.emplace_back([this, W] { workerLoop(W); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::workerLoop(unsigned WorkerIndex) {
  uint64_t SeenGeneration = 0;
  for (;;) {
    const std::function<void(size_t, size_t)> *MyBody = nullptr;
    size_t BlockBegin = 0, BlockEnd = 0;
    bool HasBlock = false;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorkers.wait(Lock, [&] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
      // The caller owns block 0; worker W owns block W + 1 (if any).
      unsigned Block = WorkerIndex + 1;
      if (Block < NumBlocks) {
        HasBlock = true;
        MyBody = Body;
        BlockBegin = JobBegin + static_cast<size_t>(Block) * BlockSize;
        BlockEnd = std::min(JobEnd, BlockBegin + BlockSize);
      }
    }
    if (HasBlock) {
      runBlock(*MyBody, BlockBegin, BlockEnd);
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--BlocksRemaining == 0)
        JobDone.notify_all();
    }
  }
}

void ThreadPool::runBlock(const std::function<void(size_t, size_t)> &Body,
                          size_t BlockBegin, size_t BlockEnd) {
  try {
    if (FaultInjection::fire(faultpoints::ThreadPoolTask))
      throw std::runtime_error("injected fault: threadpool.task");
    Body(BlockBegin, BlockEnd);
  } catch (...) {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!TaskError)
      TaskError = std::current_exception();
  }
}

void ThreadPool::parallelFor(size_t Begin, size_t End,
                             const std::function<void(size_t, size_t)> &TheBody,
                             size_t MinPerBlock) {
  size_t N = End > Begin ? End - Begin : 0;
  if (N == 0)
    return;
  MinPerBlock = std::max<size_t>(MinPerBlock, 1);
  unsigned Blocks = static_cast<unsigned>(
      std::min<size_t>(NumThreads, (N + MinPerBlock - 1) / MinPerBlock));
  if (Blocks <= 1) {
    // The inline path throws straight to the caller (same observable
    // behavior as the parallel path's capture-and-rethrow, minus a copy of
    // the counter bump).
    if (FaultInjection::fire(faultpoints::ThreadPoolTask))
      throw std::runtime_error("injected fault: threadpool.task");
    TheBody(Begin, End);
    return;
  }
  size_t Size = (N + Blocks - 1) / Blocks;
  // Recompute so every block is nonempty (e.g. N=5 over 4 blocks packs
  // into 3 blocks of <= 2).
  Blocks = static_cast<unsigned>((N + Size - 1) / Size);

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Body = &TheBody;
    JobBegin = Begin;
    JobEnd = End;
    BlockSize = Size;
    NumBlocks = Blocks;
    BlocksRemaining = Blocks;
    ++Generation;
  }
  WakeWorkers.notify_all();

  // The caller is block 0.
  runBlock(TheBody, Begin, std::min(End, Begin + Size));

  std::unique_lock<std::mutex> Lock(Mutex);
  if (--BlocksRemaining != 0)
    JobDone.wait(Lock, [&] { return BlocksRemaining == 0; });
  Body = nullptr;

  // Every block has finished; surface the first captured exception on the
  // calling thread. The pool stays usable for the next parallelFor.
  if (TaskError) {
    std::exception_ptr E = std::exchange(TaskError, nullptr);
    Lock.unlock();
    globalDegradation().noteWorkerRethrow();
    std::rethrow_exception(E);
  }
}
