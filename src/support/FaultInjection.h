//===- support/FaultInjection.h - Deterministic fault points ---*- C++ -*-===//
///
/// \file
/// A seed-driven deterministic fault-point registry for exercising the
/// recoverable-error paths. Library code marks each recoverable failure
/// site with a *named point* and asks `FaultInjection::fire(Point)` whether
/// to inject a failure there; in normal operation every call is a single
/// relaxed atomic load and answers false.
///
/// Arming is explicit and process-wide, via the `RMD_FAULTS` environment
/// variable or the CLIs' `--faults=` flag. The spec is a comma-separated
/// list of triggers:
///
///   point          fire on every hit of `point`
///   point:N        fire on the Nth hit only (1-based)
///   point:N+       fire on the Nth and every later hit
///   point%P        fire on ~P percent of hits, chosen deterministically
///                  from the seed (same seed + same hit sequence => same
///                  injections, on every platform)
///   seed=S         the seed for %P triggers (default 0)
///   *              every registered point, every hit
///
/// e.g. RMD_FAULTS="cache.read,reduce.verify:2" or
///      RMD_FAULTS="seed=7,threadpool.task%25".
///
/// Points are registered statically below so tests can sweep every one of
/// them; configure() rejects unknown names, so a stale spec fails loudly
/// instead of silently testing nothing.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SUPPORT_FAULTINJECTION_H
#define RMD_SUPPORT_FAULTINJECTION_H

#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rmd {

/// The registered fault points. Each constant is the canonical spelling
/// used in specs and in library call sites.
namespace faultpoints {
/// ReductionCache::load treats the entry as corrupt.
inline constexpr const char *CacheRead = "cache.read";
/// ReductionCache::store fails (entry dropped, best-effort contract).
inline constexpr const char *CacheWrite = "cache.write";
/// parseMdl reports an injected parse error.
inline constexpr const char *MdlParse = "mdl.parse";
/// A ThreadPool::parallelFor block throws; the pool must capture the
/// exception and rethrow it at the join point.
inline constexpr const char *ThreadPoolTask = "threadpool.task";
/// PipelineAutomaton::build behaves as if the state cap was exceeded.
inline constexpr const char *AutomatonCap = "automaton.cap";
/// reduceMachineChecked behaves as if re-verification found a mismatch.
inline constexpr const char *ReduceVerify = "reduce.verify";
/// The schedulers' deadline check behaves as if the deadline expired.
inline constexpr const char *SchedDeadline = "sched.deadline";
/// RmdServer's accept loop behaves as if accept() failed; the connection
/// attempt is dropped and the loop keeps serving.
inline constexpr const char *ServerAccept = "server.accept";
/// RmdServer's request enqueue behaves as if the bounded queue was full;
/// the client receives a structured Overloaded error.
inline constexpr const char *ServerEnqueue = "server.enqueue";
/// RmdServer's open-session path behaves as if session allocation failed;
/// the client receives a structured error and no session is registered.
inline constexpr const char *ServerSessionAlloc = "server.session_alloc";
} // namespace faultpoints

/// Process-wide fault-point registry; see the file comment for the spec
/// grammar. Thread-safe: fire() may be called concurrently with other
/// fire() calls (configure()/reset() must not race with fire()).
class FaultInjection {
public:
  /// The singleton registry.
  static FaultInjection &instance();

  /// Every registered point name, for sweeps and spec validation.
  static const std::vector<const char *> &registeredPoints();

  /// Parses and arms \p Spec (replacing any previous configuration).
  /// Returns ParseError naming the offending entry on a malformed spec or
  /// an unknown point.
  Status configure(std::string_view Spec);

  /// Disarms every point and zeroes all hit counters.
  void reset();

  /// True when the registry has any armed trigger.
  bool armed() const { return Armed.load(std::memory_order_relaxed); }

  /// Called by library code at fault point \p Point: counts the hit and
  /// returns true when a failure should be injected there. While disarmed
  /// this is one relaxed load (and hits are not counted). On the first
  /// call of the process, arms from the RMD_FAULTS environment variable
  /// (a malformed RMD_FAULTS aborts: a fault spec that silently tests
  /// nothing is worse than no spec).
  static bool fire(const char *Point);

  /// Total hits (injected or not) of \p Point since the last reset();
  /// hits are counted only while the registry is armed.
  uint64_t hits(const char *Point) const;

  /// Hits of \p Point that injected a failure since the last reset().
  uint64_t fired(const char *Point) const;

private:
  FaultInjection() = default;

  bool shouldFire(const char *Point);

  struct Trigger {
    enum Kind { Always, NthHit, FromNthHit, Percent } TheKind = Always;
    uint64_t N = 0;   ///< hit ordinal for NthHit / FromNthHit
    uint64_t Pct = 0; ///< 0..100 for Percent
  };

  struct PointState {
    bool HasTrigger = false;
    Trigger TheTrigger;
    uint64_t Hits = 0;
    uint64_t Fired = 0;
  };

  int pointIndex(std::string_view Name) const;

  std::atomic<bool> Armed{false};
  mutable std::mutex Mutex;
  uint64_t Seed = 0;
  std::vector<PointState> Points; ///< parallel to registeredPoints()
  std::once_flag EnvOnce;
};

} // namespace rmd

#endif // RMD_SUPPORT_FAULTINJECTION_H
