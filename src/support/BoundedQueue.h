//===- support/BoundedQueue.h - Bounded blocking MPMC queue ----*- C++ -*-===//
///
/// \file
/// A fixed-capacity multi-producer multi-consumer queue with *non-blocking*
/// producers and *blocking* consumers — the shape a backpressured request
/// path wants. Producers call tryPush() and get an immediate false when the
/// queue is full, so the caller can answer Overloaded instead of stalling
/// the connection; consumers block in pop() until an item or close()
/// arrives. close() wakes every waiter and drains: pops continue to return
/// queued items until the queue is empty, then return nullopt forever.
///
/// Plain mutex + condition variable on purpose: the server's unit of work
/// is a batch of queries costing microseconds to milliseconds, so queue
/// transfer cost is noise, and the simple form is trivially correct under
/// ThreadSanitizer (the tsan preset runs the server suite over exactly this
/// code).
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SUPPORT_BOUNDEDQUEUE_H
#define RMD_SUPPORT_BOUNDEDQUEUE_H

#include <cassert>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace rmd {

template <typename T> class BoundedQueue {
public:
  explicit BoundedQueue(size_t TheCapacity) : Capacity(TheCapacity) {
    assert(Capacity > 0 && "a zero-capacity queue accepts nothing");
  }

  /// Enqueues \p Item unless the queue is full or closed; returns whether
  /// it was accepted. Never blocks.
  bool tryPush(T Item) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Closed || Items.size() >= Capacity)
        return false;
      Items.push_back(std::move(Item));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Blocks until an item is available (returns it) or the queue is closed
  /// and drained (returns nullopt).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> Lock(Mutex);
    NotEmpty.wait(Lock, [this] { return Closed || !Items.empty(); });
    if (Items.empty())
      return std::nullopt;
    std::optional<T> Item(std::move(Items.front()));
    Items.pop_front();
    return Item;
  }

  /// Rejects all future pushes and wakes every blocked pop(); already
  /// queued items still drain. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Closed = true;
    }
    NotEmpty.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Closed;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Items.size();
  }

  size_t capacity() const { return Capacity; }

private:
  const size_t Capacity;
  mutable std::mutex Mutex;
  std::condition_variable NotEmpty;
  std::deque<T> Items;
  bool Closed = false;
};

} // namespace rmd

#endif // RMD_SUPPORT_BOUNDEDQUEUE_H
