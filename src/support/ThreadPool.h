//===- support/ThreadPool.h - Deterministic block-parallel pool -*- C++ -*-===//
///
/// \file
/// A small reusable worker pool for the reduction pipeline. The only
/// primitive is parallelFor(): a half-open index range is split into one
/// contiguous block per participating thread and each block is processed by
/// exactly one thread. Blocks are assigned by block index, never by work
/// stealing, so the (block -> thread) mapping is deterministic — callers
/// that write only to per-index slots get bit-identical results at every
/// thread count by construction.
///
/// Design notes:
///   - Workers are started once and parked on a condition variable between
///     calls; a parallelFor() costs two lock/notify handshakes, cheap
///     enough to run once per elementary pair in Algorithm 1.
///   - A pool with concurrency() == 1 has no worker threads at all and runs
///     every block inline on the caller, so sequential execution is the
///     literal same code path as parallel execution with one block.
///   - parallelFor() is not reentrant (no nested parallelism) and the pool
///     must not be shared between concurrent parallelFor() callers; the
///     reduction pipeline drives it from a single thread.
///   - A block body that throws does NOT take the process down: the first
///     exception thrown by any block is captured and rethrown from
///     parallelFor() on the calling thread after every block has finished
///     (instead of std::terminate on a worker). Later exceptions of the
///     same call are discarded. The pool remains usable afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SUPPORT_THREADPOOL_H
#define RMD_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rmd {

/// A fixed-size worker pool running contiguous index blocks; see file
/// comment for the determinism contract.
class ThreadPool {
public:
  /// Creates a pool that runs up to \p Threads blocks concurrently
  /// (including the calling thread); \p Threads == 0 asks for one thread
  /// per hardware core. The pool spawns Threads - 1 workers.
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of threads that participate in a parallelFor (workers + the
  /// caller). Always >= 1.
  unsigned concurrency() const { return NumThreads; }

  /// Invokes \p Body(BlockBegin, BlockEnd) over a partition of
  /// [\p Begin, \p End) into at most concurrency() contiguous blocks; every
  /// index is covered exactly once. Blocks run concurrently; the call
  /// returns after every block has finished. \p Body must be safe to invoke
  /// concurrently from different threads on disjoint blocks.
  ///
  /// \p MinPerBlock caps the split: fewer blocks are used when the range is
  /// small, and a range of at most MinPerBlock indices runs inline on the
  /// caller with no synchronization at all.
  ///
  /// If any block throws, the first captured exception is rethrown here
  /// after all blocks have finished (see the file comment).
  void parallelFor(size_t Begin, size_t End,
                   const std::function<void(size_t, size_t)> &Body,
                   size_t MinPerBlock = 1);

  /// Resolves the \p Threads convention of ReductionOptions: 0 means one
  /// per hardware core, anything else is taken literally.
  static unsigned resolveThreadCount(unsigned Threads);

private:
  void workerLoop(unsigned WorkerIndex);

  /// Runs \p Body over [BlockBegin, BlockEnd), capturing the first
  /// exception of the current parallelFor into TaskError.
  void runBlock(const std::function<void(size_t, size_t)> &Body,
                size_t BlockBegin, size_t BlockEnd);

  unsigned NumThreads = 1;
  std::vector<std::thread> Workers;

  // State of the in-flight parallelFor, guarded by Mutex. Generation is
  // bumped per call so parked workers can tell a new job from a stale
  // wakeup.
  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable JobDone;
  uint64_t Generation = 0;
  bool ShuttingDown = false;
  const std::function<void(size_t, size_t)> *Body = nullptr;
  size_t JobBegin = 0, JobEnd = 0, BlockSize = 0;
  unsigned NumBlocks = 0;
  unsigned BlocksRemaining = 0; // blocks not yet finished (incl. caller's)
  std::exception_ptr TaskError; // first exception of the in-flight call
};

} // namespace rmd

#endif // RMD_SUPPORT_THREADPOOL_H
