//===- support/TextTable.h - Aligned ASCII table rendering -----*- C++ -*-===//
///
/// \file
/// A small aligned-column ASCII table renderer. The benchmark harness prints
/// every reproduced paper table through this class so all experiment output
/// has one consistent format.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SUPPORT_TEXTTABLE_H
#define RMD_SUPPORT_TEXTTABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace rmd {

/// Collects rows of string cells and renders them with columns padded to the
/// widest cell. The first row added is treated as the header and separated
/// from the body by a rule.
class TextTable {
public:
  /// Starts a new row; subsequent cell() calls append to it.
  void row();

  /// Appends a cell to the current row.
  void cell(std::string Text);

  /// Appends a numeric cell formatted with \p Decimals fraction digits.
  void cell(double Value, int Decimals);

  /// Appends an integral cell.
  void cellInt(long long Value);

  /// Renders the table to \p OS. Columns are right-aligned except the first.
  void print(std::ostream &OS) const;

private:
  std::vector<std::vector<std::string>> Rows;
};

/// Formats \p Value with \p Decimals fraction digits ("%.*f").
std::string formatFixed(double Value, int Decimals);

} // namespace rmd

#endif // RMD_SUPPORT_TEXTTABLE_H
