//===- support/TextTable.cpp ----------------------------------------------===//

#include "support/TextTable.h"

#include <cassert>
#include <cstdio>
#include <ostream>

using namespace rmd;

std::string rmd::formatFixed(double Value, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}

void TextTable::row() { Rows.emplace_back(); }

void TextTable::cell(std::string Text) {
  assert(!Rows.empty() && "cell() before row()");
  Rows.back().push_back(std::move(Text));
}

void TextTable::cell(double Value, int Decimals) {
  cell(formatFixed(Value, Decimals));
}

void TextTable::cellInt(long long Value) { cell(std::to_string(Value)); }

void TextTable::print(std::ostream &OS) const {
  std::vector<size_t> Widths;
  for (const auto &Row : Rows) {
    if (Row.size() > Widths.size())
      Widths.resize(Row.size(), 0);
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();
  }

  auto printRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I != 0)
        OS << "  ";
      // Left-align the first column (row labels), right-align the rest.
      size_t Pad = Widths[I] - Row[I].size();
      if (I == 0) {
        OS << Row[I] << std::string(Pad, ' ');
      } else {
        OS << std::string(Pad, ' ') << Row[I];
      }
    }
    OS << '\n';
  };

  for (size_t R = 0; R < Rows.size(); ++R) {
    printRow(Rows[R]);
    if (R == 0) {
      size_t Total = 0;
      for (size_t W : Widths)
        Total += W;
      if (!Widths.empty())
        Total += 2 * (Widths.size() - 1);
      OS << std::string(Total, '-') << '\n';
    }
  }
}
