//===- support/FaultInjection.cpp -----------------------------------------===//

#include "support/FaultInjection.h"

#include "support/FatalError.h"

#include <cstdlib>
#include <cstring>

using namespace rmd;

FaultInjection &FaultInjection::instance() {
  static FaultInjection Registry;
  return Registry;
}

const std::vector<const char *> &FaultInjection::registeredPoints() {
  static const std::vector<const char *> Names = {
      faultpoints::CacheRead,      faultpoints::CacheWrite,
      faultpoints::MdlParse,       faultpoints::ThreadPoolTask,
      faultpoints::AutomatonCap,   faultpoints::ReduceVerify,
      faultpoints::SchedDeadline,  faultpoints::ServerAccept,
      faultpoints::ServerEnqueue,  faultpoints::ServerSessionAlloc,
  };
  return Names;
}

int FaultInjection::pointIndex(std::string_view Name) const {
  const auto &Names = registeredPoints();
  for (size_t I = 0; I < Names.size(); ++I)
    if (Name == Names[I])
      return static_cast<int>(I);
  return -1;
}

void FaultInjection::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Points.assign(registeredPoints().size(), PointState());
  Seed = 0;
  Armed.store(false, std::memory_order_relaxed);
}

Status FaultInjection::configure(std::string_view Spec) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<PointState> NewPoints(registeredPoints().size());
  uint64_t NewSeed = 0;
  bool AnyTrigger = false;

  // Split on commas; whitespace around entries is ignored.
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string_view::npos)
      Comma = Spec.size();
    std::string_view Entry = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    while (!Entry.empty() && (Entry.front() == ' ' || Entry.front() == '\t'))
      Entry.remove_prefix(1);
    while (!Entry.empty() && (Entry.back() == ' ' || Entry.back() == '\t'))
      Entry.remove_suffix(1);
    if (Entry.empty())
      continue;

    auto ParseNumber = [](std::string_view Text, uint64_t &Out) {
      if (Text.empty())
        return false;
      Out = 0;
      for (char C : Text) {
        if (C < '0' || C > '9')
          return false;
        Out = Out * 10 + static_cast<uint64_t>(C - '0');
      }
      return true;
    };

    if (Entry.rfind("seed=", 0) == 0) {
      if (!ParseNumber(Entry.substr(5), NewSeed))
        return Status(ErrorCode::ParseError,
                      "bad seed in fault spec entry '" + std::string(Entry) +
                          "'");
      continue;
    }

    if (Entry == "*") {
      for (PointState &P : NewPoints) {
        P.HasTrigger = true;
        P.TheTrigger = Trigger{Trigger::Always, 0, 0};
      }
      AnyTrigger = true;
      continue;
    }

    Trigger T;
    std::string_view Name = Entry;
    if (size_t Colon = Entry.find(':'); Colon != std::string_view::npos) {
      Name = Entry.substr(0, Colon);
      std::string_view Ordinal = Entry.substr(Colon + 1);
      T.TheKind = Trigger::NthHit;
      if (!Ordinal.empty() && Ordinal.back() == '+') {
        T.TheKind = Trigger::FromNthHit;
        Ordinal.remove_suffix(1);
      }
      if (!ParseNumber(Ordinal, T.N) || T.N == 0)
        return Status(ErrorCode::ParseError,
                      "bad hit ordinal in fault spec entry '" +
                          std::string(Entry) + "'");
    } else if (size_t Pct = Entry.find('%'); Pct != std::string_view::npos) {
      Name = Entry.substr(0, Pct);
      T.TheKind = Trigger::Percent;
      if (!ParseNumber(Entry.substr(Pct + 1), T.Pct) || T.Pct > 100)
        return Status(ErrorCode::ParseError,
                      "bad percentage in fault spec entry '" +
                          std::string(Entry) + "'");
    }

    int Index = pointIndex(Name);
    if (Index < 0)
      return Status(ErrorCode::ParseError,
                    "unknown fault point '" + std::string(Name) + "'");
    NewPoints[static_cast<size_t>(Index)].HasTrigger = true;
    NewPoints[static_cast<size_t>(Index)].TheTrigger = T;
    AnyTrigger = true;
  }

  Points = std::move(NewPoints);
  Seed = NewSeed;
  Armed.store(AnyTrigger, std::memory_order_relaxed);
  return Status::ok();
}

/// SplitMix64: a well-mixed 64-bit hash, stable across platforms.
static uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

bool FaultInjection::shouldFire(const char *Point) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Points.empty())
    Points.assign(registeredPoints().size(), PointState());
  int Index = pointIndex(Point);
  if (Index < 0)
    fatalError("fire() on an unregistered fault point; add it to "
               "FaultInjection::registeredPoints()");
  PointState &P = Points[static_cast<size_t>(Index)];
  uint64_t Hit = ++P.Hits;
  if (!P.HasTrigger)
    return false;
  bool Fire = false;
  switch (P.TheTrigger.TheKind) {
  case Trigger::Always:
    Fire = true;
    break;
  case Trigger::NthHit:
    Fire = Hit == P.TheTrigger.N;
    break;
  case Trigger::FromNthHit:
    Fire = Hit >= P.TheTrigger.N;
    break;
  case Trigger::Percent: {
    // Deterministic in (seed, point, hit ordinal): replaying the same hit
    // sequence with the same seed injects at exactly the same hits.
    uint64_t H = Seed;
    for (const char *C = Point; *C; ++C)
      H = mix64(H ^ static_cast<uint64_t>(static_cast<unsigned char>(*C)));
    Fire = mix64(H ^ Hit) % 100 < P.TheTrigger.Pct;
    break;
  }
  }
  P.Fired += Fire;
  return Fire;
}

bool FaultInjection::fire(const char *Point) {
  FaultInjection &Registry = instance();
  std::call_once(Registry.EnvOnce, [&Registry] {
    const char *Env = std::getenv("RMD_FAULTS");
    if (!Env || !*Env)
      return;
    Status S = Registry.configure(Env);
    if (!S.isOk())
      // A spec that silently arms nothing is worse than no spec.
      fatalError(("RMD_FAULTS: " + S.render()).c_str());
  });
  if (!Registry.armed())
    return false;
  return Registry.shouldFire(Point);
}

uint64_t FaultInjection::hits(const char *Point) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  int Index = pointIndex(Point);
  if (Index < 0 || Points.empty())
    return 0;
  return Points[static_cast<size_t>(Index)].Hits;
}

uint64_t FaultInjection::fired(const char *Point) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  int Index = pointIndex(Point);
  if (Index < 0 || Points.empty())
    return 0;
  return Points[static_cast<size_t>(Index)].Fired;
}
