//===- support/FatalError.h - Unconditional invariant failures -*- C++ -*-===//
///
/// \file
/// fatalError() reports a broken internal invariant and aborts, in release
/// builds as well as debug builds. Used where silently continuing would
/// produce wrong schedules (e.g. a reduction that failed verification).
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SUPPORT_FATALERROR_H
#define RMD_SUPPORT_FATALERROR_H

#include <cstdio>
#include <cstdlib>

namespace rmd {

/// Prints \p Message to stderr and aborts.
[[noreturn]] inline void fatalError(const char *Message) {
  std::fprintf(stderr, "rmd fatal error: %s\n", Message);
  std::abort();
}

} // namespace rmd

#endif // RMD_SUPPORT_FATALERROR_H
