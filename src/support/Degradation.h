//===- support/Degradation.h - Observable degradation counters -*- C++ -*-===//
///
/// \file
/// Counters for the graceful-degradation ladder. Every rung that silently
/// keeps the system working — scheduling against the original description
/// because a reduction failed verification, swapping a bitvector module in
/// for an overflowing automaton, healing a corrupt cache entry, returning
/// best-so-far on a deadline — increments a counter here, so degradation
/// is observable (CLI --stats, scheduler stats) rather than silent.
///
/// DegradationCounters is a plain value (embedded in scheduler stats);
/// globalDegradation() is the process-wide atomic tally that library
/// fallback sites bump.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SUPPORT_DEGRADATION_H
#define RMD_SUPPORT_DEGRADATION_H

#include "support/Stats.h"

#include <atomic>
#include <cstdint>
#include <ostream>

namespace rmd {

/// A snapshot of degradation events; all counters are "times this rung of
/// the ladder was taken".
struct DegradationCounters {
  /// Scheduled/emitted the *original* description because reduction (or
  /// its re-verification) failed. Safe by Theorem 1: the constraints are
  /// identical.
  uint64_t ReduceFallbacks = 0;

  /// Corrupt / unreadable reduction-cache entries treated as misses and
  /// evicted so the slot heals on the next store.
  uint64_t CacheRecoveries = 0;

  /// Automaton query modules replaced by a reservation-table module after
  /// a state-cap overflow.
  uint64_t AutomatonFallbacks = 0;

  /// Worker exceptions captured by the thread pool and rethrown at join.
  uint64_t WorkerRethrows = 0;

  /// Scheduler runs that returned best-so-far on an expired deadline or a
  /// triggered cancellation token.
  uint64_t SchedulerTimeouts = 0;

  /// Scheduling requests rejected with a named infeasible recurrence
  /// cycle instead of an abort.
  uint64_t InfeasibleRecurrences = 0;

  uint64_t total() const {
    return ReduceFallbacks + CacheRecoveries + AutomatonFallbacks +
           WorkerRethrows + SchedulerTimeouts + InfeasibleRecurrences;
  }

  void accumulate(const DegradationCounters &O) {
    ReduceFallbacks += O.ReduceFallbacks;
    CacheRecoveries += O.CacheRecoveries;
    AutomatonFallbacks += O.AutomatonFallbacks;
    WorkerRethrows += O.WorkerRethrows;
    SchedulerTimeouts += O.SchedulerTimeouts;
    InfeasibleRecurrences += O.InfeasibleRecurrences;
  }
};

/// Renders the nonzero counters as "name=N name=N ..." (or "none").
inline std::ostream &operator<<(std::ostream &OS,
                                const DegradationCounters &C) {
  bool Any = false;
  auto Field = [&](const char *Name, uint64_t Value) {
    if (!Value)
      return;
    OS << (Any ? " " : "") << Name << "=" << Value;
    Any = true;
  };
  Field("reduce-fallbacks", C.ReduceFallbacks);
  Field("cache-recoveries", C.CacheRecoveries);
  Field("automaton-fallbacks", C.AutomatonFallbacks);
  Field("worker-rethrows", C.WorkerRethrows);
  Field("scheduler-timeouts", C.SchedulerTimeouts);
  Field("infeasible-recurrences", C.InfeasibleRecurrences);
  if (!Any)
    OS << "none";
  return OS;
}

/// The process-wide tally, bumped by library fallback sites and read by
/// the CLIs' --stats output. Thread-safe. Every rung is mirrored into the
/// stats registry under a `degrade.*` counter so degradations appear in
/// `--stats-json` snapshots alongside everything else.
class GlobalDegradation {
public:
  void noteReduceFallback() {
    ReduceFallbacks.fetch_add(1, Relaxed);
    static StatCounter C("degrade.reduce_fallbacks");
    C.add();
  }
  void noteCacheRecovery() {
    CacheRecoveries.fetch_add(1, Relaxed);
    static StatCounter C("degrade.cache_recoveries");
    C.add();
  }
  void noteAutomatonFallback() {
    AutomatonFallbacks.fetch_add(1, Relaxed);
    static StatCounter C("degrade.automaton_fallbacks");
    C.add();
  }
  void noteWorkerRethrow() {
    WorkerRethrows.fetch_add(1, Relaxed);
    static StatCounter C("degrade.worker_rethrows");
    C.add();
  }
  void noteSchedulerTimeout() {
    SchedulerTimeouts.fetch_add(1, Relaxed);
    static StatCounter C("degrade.scheduler_timeouts");
    C.add();
  }
  void noteInfeasibleRecurrence() {
    InfeasibleRecurrences.fetch_add(1, Relaxed);
    static StatCounter C("degrade.infeasible_recurrences");
    C.add();
  }

  DegradationCounters snapshot() const {
    DegradationCounters C;
    C.ReduceFallbacks = ReduceFallbacks.load(Relaxed);
    C.CacheRecoveries = CacheRecoveries.load(Relaxed);
    C.AutomatonFallbacks = AutomatonFallbacks.load(Relaxed);
    C.WorkerRethrows = WorkerRethrows.load(Relaxed);
    C.SchedulerTimeouts = SchedulerTimeouts.load(Relaxed);
    C.InfeasibleRecurrences = InfeasibleRecurrences.load(Relaxed);
    return C;
  }

private:
  static constexpr std::memory_order Relaxed = std::memory_order_relaxed;
  std::atomic<uint64_t> ReduceFallbacks{0};
  std::atomic<uint64_t> CacheRecoveries{0};
  std::atomic<uint64_t> AutomatonFallbacks{0};
  std::atomic<uint64_t> WorkerRethrows{0};
  std::atomic<uint64_t> SchedulerTimeouts{0};
  std::atomic<uint64_t> InfeasibleRecurrences{0};
};

inline GlobalDegradation &globalDegradation() {
  static GlobalDegradation G;
  return G;
}

} // namespace rmd

#endif // RMD_SUPPORT_DEGRADATION_H
