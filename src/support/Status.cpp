//===- support/Status.cpp -------------------------------------------------===//

#include "support/Status.h"

using namespace rmd;

const char *rmd::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::ParseError:
    return "parse-error";
  case ErrorCode::InfeasibleRecurrence:
    return "infeasible-recurrence";
  case ErrorCode::StateCapExceeded:
    return "state-cap-exceeded";
  case ErrorCode::VerificationFailed:
    return "verification-failed";
  case ErrorCode::CacheIO:
    return "cache-io";
  case ErrorCode::TimedOut:
    return "timed-out";
  case ErrorCode::Cancelled:
    return "cancelled";
  case ErrorCode::WorkerFailed:
    return "worker-failed";
  case ErrorCode::RoleUnresolved:
    return "role-unresolved";
  case ErrorCode::FaultInjected:
    return "fault-injected";
  case ErrorCode::Overloaded:
    return "overloaded";
  case ErrorCode::ProtocolError:
    return "protocol-error";
  }
  return "unknown";
}

std::string Status::render() const {
  if (isOk())
    return "ok";
  std::string Out = errorCodeName(Code);
  if (!Message.empty()) {
    Out += ": ";
    Out += Message;
  }
  return Out;
}
