//===- support/Status.h - Recoverable-error result types -------*- C++ -*-===//
///
/// \file
/// The library's recoverable-error layer. Input-triggered failures — a bad
/// MDL feed, an infeasible recurrence, an automaton that blows its state
/// cap, a corrupt cache entry, a reduction that fails re-verification, a
/// deadline that expires — are reported as a Status (or an Expected<T>
/// carrying one) and threaded to the caller, never aborted on. fatalError()
/// remains only for true internal invariants (see the allowlist in
/// tests/fatal-allowlist.txt and docs/architecture.md's failure model).
///
/// The paper's Theorem 1 makes this layer unusually cheap to exploit:
/// because a *verified* reduced description preserves the forbidden latency
/// matrix exactly, every failure in the reduce/cache path has a provably
/// safe fallback — the original description — so most errors here feed a
/// degradation ladder (support/Degradation.h) rather than a hard stop.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SUPPORT_STATUS_H
#define RMD_SUPPORT_STATUS_H

#include <cassert>
#include <string>
#include <utility>

namespace rmd {

/// Machine-readable classification of a recoverable failure.
enum class ErrorCode {
  Ok = 0,
  /// Malformed textual input (MDL, loop graph, fault spec, ...).
  ParseError,
  /// A zero-distance positive-delay dependence cycle: no II is feasible.
  InfeasibleRecurrence,
  /// Automaton construction exceeded its state cap (state explosion).
  StateCapExceeded,
  /// A reduced description failed forbidden-latency re-verification.
  VerificationFailed,
  /// Cache I/O failed or an entry was corrupt.
  CacheIO,
  /// A deadline expired before the operation completed.
  TimedOut,
  /// A cancellation token was triggered.
  Cancelled,
  /// A worker task failed; its exception was captured and rethrown at the
  /// join point (support/ThreadPool.h) and converted here.
  WorkerFailed,
  /// A workload role has no operation in the machine model.
  RoleUnresolved,
  /// A deterministically injected fault (support/FaultInjection.h).
  FaultInjected,
  /// A server rejected work because its bounded request queue was full.
  /// Explicit backpressure: the client should retry later or shed load.
  Overloaded,
  /// A malformed, truncated, or version-mismatched wire frame, or a
  /// request referencing an unknown machine/session handle.
  ProtocolError,
};

/// Stable lowercase name of \p Code ("verification-failed", ...), for
/// diagnostics and logs.
const char *errorCodeName(ErrorCode Code);

/// An error code plus a human-readable message. Default-constructed and
/// Status::ok() mean success.
class Status {
public:
  Status() = default;
  Status(ErrorCode TheCode, std::string TheMessage)
      : Code(TheCode), Message(std::move(TheMessage)) {}

  static Status ok() { return Status(); }

  bool isOk() const { return Code == ErrorCode::Ok; }
  explicit operator bool() const { return isOk(); }

  ErrorCode code() const { return Code; }
  const std::string &message() const { return Message; }

  /// "<code-name>: <message>" (or "ok").
  std::string render() const;

private:
  ErrorCode Code = ErrorCode::Ok;
  std::string Message;
};

/// A value of type \p T or the Status explaining why there is none.
/// Minimal by design: the library's fallible entry points return
/// Expected<T>, callers test and either consume the value or thread /
/// degrade on the status.
template <typename T> class Expected {
public:
  Expected(T Value) : Val(std::move(Value)), Ok(true) {}
  Expected(Status TheStatus) : Err(std::move(TheStatus)), Ok(false) {
    assert(!Err.isOk() && "Expected built from a success Status");
  }

  bool hasValue() const { return Ok; }
  explicit operator bool() const { return Ok; }

  T &value() {
    assert(Ok && "value() on an errored Expected");
    return Val;
  }
  const T &value() const {
    assert(Ok && "value() on an errored Expected");
    return Val;
  }
  T take() {
    assert(Ok && "take() on an errored Expected");
    return std::move(Val);
  }

  /// The failure status; Status::ok() when a value is present.
  const Status &status() const { return Err; }

private:
  T Val{};
  Status Err;
  bool Ok;
};

} // namespace rmd

#endif // RMD_SUPPORT_STATUS_H
