//===- support/Stats.h - Process-wide observability registry ---*- C++ -*-===//
///
/// \file
/// A process-wide registry of named counters, timers, and histograms — the
/// observability backbone behind `--stats-json` / `RMD_STATS_JSON` in every
/// CLI and bench binary (schema in docs/observability.md).
///
/// Design constraints, in priority order:
///
///   1. *Cheap on the hot path.* Each thread owns a shard of plain
///      uint64 slots; an increment is one relaxed atomic add on memory no
///      other thread writes. No locks, no contention, no false sharing
///      between stats that different threads touch.
///   2. *Deterministic merged snapshots.* snapshot() sums shards (live
///      and retired) under the registry mutex. Counter values, timer
///      counts, and whole histograms are integer sums/mins/maxes, so the
///      merged result is identical regardless of how work was sharded
///      across threads — the reduction pipeline is bit-exact at every
///      thread count, and so is its stats snapshot (StatsSnapshotTest
///      pins this byte-for-byte). Only timer *durations* are wall-clock
///      and therefore nondeterministic; the JSON writer can exclude them.
///   3. *Zero configuration.* Stats self-register on first use; a binary
///      that never snapshots pays only the per-event add.
///
/// Use the handle types, not the registry directly:
///
///   static StatCounter CacheHits("cache.hits");
///   CacheHits.add();
///
///   static StatHistogram Checks("sched.ims.checks_per_decision");
///   Checks.record(NumChecks);
///
/// Phase timing uses support/TraceSpan.h, which records into timers here.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SUPPORT_STATS_H
#define RMD_SUPPORT_STATS_H

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

namespace rmd {

/// What a registered name measures; determines its slot layout and its
/// section in the snapshot.
enum class StatKind {
  Counter,   ///< 1 slot: running sum
  Timer,     ///< 2 slots: count, total nanoseconds
  Histogram, ///< 4 + 65 slots: count, sum, ~min, max, log2 buckets
};

/// A deterministic merged view of every registered stat. Plain data;
/// obtained from StatsRegistry::snapshot().
struct StatsSnapshot {
  struct TimerValue {
    uint64_t Count = 0;
    uint64_t TotalNs = 0; ///< wall-clock; nondeterministic across runs
  };
  struct HistogramValue {
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Min = 0; ///< meaningful only when Count > 0
    uint64_t Max = 0;
    /// Bucket B counts values with bit_width(value) == B (bucket 0 holds
    /// the zeros); exponential buckets keep the layout value-range-free.
    std::array<uint64_t, 65> Buckets{};
  };

  std::map<std::string, uint64_t> Counters;
  std::map<std::string, TimerValue> Timers;
  std::map<std::string, HistogramValue> Histograms;

  /// Options for writeJson().
  struct JsonOptions {
    /// Written as the "tool" field when nonempty (the emitting binary).
    std::string Tool;
    /// Include wall-clock fields (timer total_ns). Off for golden-file
    /// tests: everything that remains is deterministic for a fixed
    /// workload, at any thread count.
    bool IncludeTimings = true;
  };

  /// Renders the snapshot as the versioned JSON document described in
  /// docs/observability.md ("schema": "rmd-stats-v1"). Keys are sorted,
  /// output is fully deterministic given the snapshot contents (and, with
  /// IncludeTimings off, given the workload).
  void writeJson(std::ostream &OS, const JsonOptions &Options) const;
  void writeJson(std::ostream &OS) const { writeJson(OS, JsonOptions()); }
};

/// The process-wide registry. Stats register lazily through the handle
/// types below; snapshot() and reset() may be called at any time from any
/// thread.
class StatsRegistry {
public:
  static StatsRegistry &instance();

  /// Registers \p Name with \p Kind (idempotent; the kind must match on
  /// re-registration) and returns its base slot index.
  size_t registerStat(std::string_view Name, StatKind Kind);

  /// Hot-path update entry points; \p Slot comes from registerStat().
  void add(size_t Slot, uint64_t Delta);
  void recordTimer(size_t Slot, uint64_t Nanos);
  void recordHistogram(size_t Slot, uint64_t Value);

  /// Deterministic merged view of all registered stats (live shards,
  /// retired threads' totals, sorted names).
  StatsSnapshot snapshot() const;

  /// Zeroes every slot in every shard (names stay registered). Tests use
  /// this to isolate one pipeline run's counts.
  void reset();

private:
  StatsRegistry() = default;
  struct Impl;
  Impl &impl() const;
};

/// A named counter handle. Cheap to construct; conventionally a
/// function-local or file-scope `static` so registration happens once.
class StatCounter {
public:
  explicit StatCounter(std::string_view Name)
      : Slot(StatsRegistry::instance().registerStat(Name,
                                                    StatKind::Counter)) {}
  void add(uint64_t Delta = 1) const {
    StatsRegistry::instance().add(Slot, Delta);
  }

private:
  size_t Slot;
};

/// A named timer handle; record() takes nanoseconds. TraceSpan is the
/// usual front end.
class StatTimer {
public:
  explicit StatTimer(std::string_view Name)
      : Slot(StatsRegistry::instance().registerStat(Name, StatKind::Timer)) {
  }
  void record(uint64_t Nanos) const {
    StatsRegistry::instance().recordTimer(Slot, Nanos);
  }

private:
  size_t Slot;
};

/// A named histogram handle over nonnegative integer samples.
class StatHistogram {
public:
  explicit StatHistogram(std::string_view Name)
      : Slot(StatsRegistry::instance().registerStat(Name,
                                                    StatKind::Histogram)) {}
  void record(uint64_t Value) const {
    StatsRegistry::instance().recordHistogram(Slot, Value);
  }

private:
  size_t Slot;
};

/// Snapshots the registry and writes the JSON document to \p Path ("-"
/// writes to stdout). Returns false (after a stderr warning) when the file
/// cannot be written; observability failures never fail the tool.
bool exportProcessStats(const std::string &Path, const std::string &Tool);

/// RAII export plumbing shared by every CLI and bench binary: the
/// constructor strips `--stats-json=<path>` out of argv (so downstream
/// argument parsing — including google-benchmark's — never sees it) and
/// falls back to the RMD_STATS_JSON environment variable; the destructor,
/// running after the tool's work (and its query modules' destructors,
/// which publish their WorkCounters), writes the snapshot.
class StatsJsonGuard {
public:
  StatsJsonGuard(int &Argc, char **Argv, std::string Tool);
  ~StatsJsonGuard();

  StatsJsonGuard(const StatsJsonGuard &) = delete;
  StatsJsonGuard &operator=(const StatsJsonGuard &) = delete;

  const std::string &path() const { return Path; }

private:
  std::string Tool;
  std::string Path;
};

} // namespace rmd

#endif // RMD_SUPPORT_STATS_H
