//===- flm/ForbiddenLatencyMatrix.cpp -------------------------------------===//

#include "flm/ForbiddenLatencyMatrix.h"

#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <ostream>

using namespace rmd;

ForbiddenLatencyMatrix::ForbiddenLatencyMatrix(size_t NumOperations)
    : NumOps(NumOperations), Sets(NumOperations * NumOperations) {}

ForbiddenLatencyMatrix
ForbiddenLatencyMatrix::compute(const MachineDescription &MD,
                                ThreadPool *Pool) {
  assert(MD.isExpanded() &&
         "forbidden latencies require an expanded (single-alternative) "
         "machine; call expandAlternatives() first");
  size_t NumOps = MD.numOperations();
  ForbiddenLatencyMatrix FLM(NumOps);

  // Counted once per build (not per parallel block) so the totals are
  // identical at every thread count.
  static StatCounter Builds("flm.builds");
  static StatCounter Rows("flm.rows");
  Builds.add();
  Rows.add(NumOps);

  // Per-resource usage lists: Resource -> [(op, cycle)].
  std::vector<std::vector<std::pair<OpId, int>>> ByResource(
      MD.numResources());
  for (OpId Op = 0; Op < NumOps; ++Op)
    for (const ResourceUsage &U : MD.operation(Op).table().usages())
      ByResource[U.Resource].push_back({Op, U.Cycle});

  // Equation (1): for usages (X, x) and (Y, y) of one resource, X cannot
  // be scheduled (y - x) cycles after Y. Iterated row-major — for each X,
  // over X's own usages — so a block of rows touches only its own cells
  // and row blocks parallelize without synchronization. The per-cell sets
  // are order-insensitive, so the result is identical to the sequential
  // per-resource scan.
  auto ComputeRows = [&](size_t RowBegin, size_t RowEnd) {
    for (OpId X = static_cast<OpId>(RowBegin); X < RowEnd; ++X)
      for (const ResourceUsage &U : MD.operation(X).table().usages())
        for (const auto &[Y, Cy] : ByResource[U.Resource])
          FLM.getMutable(X, Y).insert(Cy - U.Cycle);
  };
  if (Pool)
    Pool->parallelFor(0, NumOps, ComputeRows, /*MinPerBlock=*/8);
  else
    ComputeRows(0, NumOps);
  return FLM;
}

void ForbiddenLatencyMatrix::insert(OpId X, OpId Y, int Latency) {
  getMutable(X, Y).insert(Latency);
  getMutable(Y, X).insert(-Latency);
}

size_t ForbiddenLatencyMatrix::totalEntries() const {
  size_t Total = 0;
  for (const LatencySet &S : Sets)
    Total += S.size();
  return Total;
}

size_t ForbiddenLatencyMatrix::canonicalCount() const {
  size_t Count = 0;
  for (OpId X = 0; X < NumOps; ++X)
    for (OpId Y = 0; Y < NumOps; ++Y)
      for (int F : get(X, Y)) {
        if (F > 0 || (F == 0 && X <= Y))
          ++Count;
      }
  return Count;
}

std::vector<ForbiddenLatency>
ForbiddenLatencyMatrix::canonicalLatencies() const {
  std::vector<ForbiddenLatency> Result;
  for (OpId X = 0; X < NumOps; ++X)
    for (OpId Y = 0; Y < NumOps; ++Y)
      for (int F : get(X, Y)) {
        if (F > 0 || (F == 0 && X <= Y))
          Result.push_back(ForbiddenLatency{X, Y, F});
      }
  std::sort(Result.begin(), Result.end());
  return Result;
}

int ForbiddenLatencyMatrix::maxAbsoluteLatency() const {
  int MaxAbs = 0;
  for (const LatencySet &S : Sets)
    for (int F : S)
      MaxAbs = std::max(MaxAbs, F < 0 ? -F : F);
  return MaxAbs;
}

bool ForbiddenLatencyMatrix::isAntisymmetric() const {
  for (OpId X = 0; X < NumOps; ++X)
    for (OpId Y = 0; Y < NumOps; ++Y)
      if (!(get(X, Y).negated() == get(Y, X)))
        return false;
  return true;
}

void ForbiddenLatencyMatrix::print(std::ostream &OS,
                                   const MachineDescription &MD) const {
  assert(MD.numOperations() == NumOps && "machine does not match matrix");
  for (OpId X = 0; X < NumOps; ++X)
    for (OpId Y = 0; Y < NumOps; ++Y) {
      const LatencySet &S = get(X, Y);
      if (S.empty())
        continue;
      OS << "F(" << MD.operation(X).Name << ", " << MD.operation(Y).Name
         << ") = {";
      bool First = true;
      for (int F : S) {
        if (!First)
          OS << ", ";
        OS << F;
        First = false;
      }
      OS << "}\n";
    }
}
