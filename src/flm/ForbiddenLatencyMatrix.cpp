//===- flm/ForbiddenLatencyMatrix.cpp -------------------------------------===//

#include "flm/ForbiddenLatencyMatrix.h"

#include <algorithm>
#include <map>
#include <ostream>

using namespace rmd;

ForbiddenLatencyMatrix::ForbiddenLatencyMatrix(size_t NumOperations)
    : NumOps(NumOperations), Sets(NumOperations * NumOperations) {}

ForbiddenLatencyMatrix
ForbiddenLatencyMatrix::compute(const MachineDescription &MD) {
  assert(MD.isExpanded() &&
         "forbidden latencies require an expanded (single-alternative) "
         "machine; call expandAlternatives() first");
  size_t NumOps = MD.numOperations();
  ForbiddenLatencyMatrix FLM(NumOps);

  // Per-resource usage lists: Resource -> [(op, cycle)].
  std::map<ResourceId, std::vector<std::pair<OpId, int>>> ByResource;
  for (OpId Op = 0; Op < NumOps; ++Op)
    for (const ResourceUsage &U : MD.operation(Op).table().usages())
      ByResource[U.Resource].push_back({Op, U.Cycle});

  // Equation (1): for usages (X, x) and (Y, y) of one resource, X cannot be
  // scheduled (y - x) cycles after Y.
  for (const auto &[Resource, Usages] : ByResource) {
    (void)Resource;
    for (const auto &[X, Cx] : Usages)
      for (const auto &[Y, Cy] : Usages)
        FLM.getMutable(X, Y).insert(Cy - Cx);
  }
  return FLM;
}

void ForbiddenLatencyMatrix::insert(OpId X, OpId Y, int Latency) {
  getMutable(X, Y).insert(Latency);
  getMutable(Y, X).insert(-Latency);
}

size_t ForbiddenLatencyMatrix::totalEntries() const {
  size_t Total = 0;
  for (const LatencySet &S : Sets)
    Total += S.size();
  return Total;
}

size_t ForbiddenLatencyMatrix::canonicalCount() const {
  size_t Count = 0;
  for (OpId X = 0; X < NumOps; ++X)
    for (OpId Y = 0; Y < NumOps; ++Y)
      for (int F : get(X, Y)) {
        if (F > 0 || (F == 0 && X <= Y))
          ++Count;
      }
  return Count;
}

std::vector<ForbiddenLatency>
ForbiddenLatencyMatrix::canonicalLatencies() const {
  std::vector<ForbiddenLatency> Result;
  for (OpId X = 0; X < NumOps; ++X)
    for (OpId Y = 0; Y < NumOps; ++Y)
      for (int F : get(X, Y)) {
        if (F > 0 || (F == 0 && X <= Y))
          Result.push_back(ForbiddenLatency{X, Y, F});
      }
  std::sort(Result.begin(), Result.end());
  return Result;
}

int ForbiddenLatencyMatrix::maxAbsoluteLatency() const {
  int MaxAbs = 0;
  for (const LatencySet &S : Sets)
    for (int F : S)
      MaxAbs = std::max(MaxAbs, F < 0 ? -F : F);
  return MaxAbs;
}

bool ForbiddenLatencyMatrix::isAntisymmetric() const {
  for (OpId X = 0; X < NumOps; ++X)
    for (OpId Y = 0; Y < NumOps; ++Y)
      if (!(get(X, Y).negated() == get(Y, X)))
        return false;
  return true;
}

void ForbiddenLatencyMatrix::print(std::ostream &OS,
                                   const MachineDescription &MD) const {
  assert(MD.numOperations() == NumOps && "machine does not match matrix");
  for (OpId X = 0; X < NumOps; ++X)
    for (OpId Y = 0; Y < NumOps; ++Y) {
      const LatencySet &S = get(X, Y);
      if (S.empty())
        continue;
      OS << "F(" << MD.operation(X).Name << ", " << MD.operation(Y).Name
         << ") = {";
      bool First = true;
      for (int F : S) {
        if (!First)
          OS << ", ";
        OS << F;
        First = false;
      }
      OS << "}\n";
    }
}
