//===- flm/OperationClasses.h - Proebsting-Fraser op classes ---*- C++ -*-===//
///
/// \file
/// Operation classes (Proebsting & Fraser, POPL'94, as used in Section 3):
/// operations X and Y belong to the same class iff F(X,Z) == F(Y,Z) and
/// F(Z,X) == F(Z,Y) for every operation Z. Classes let the reduction and
/// the query module work on a quotient machine: one representative per
/// class, with member counts retained for frequency-weighted metrics.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_FLM_OPERATIONCLASSES_H
#define RMD_FLM_OPERATIONCLASSES_H

#include "flm/ForbiddenLatencyMatrix.h"
#include "mdesc/MachineDescription.h"

#include <vector>

namespace rmd {

/// The partition of an expanded machine's operations into contention
/// equivalence classes.
struct OperationClasses {
  /// ClassOf[op] is the class index of operation op.
  std::vector<uint32_t> ClassOf;

  /// Members[c] lists the operations of class c (ascending).
  std::vector<std::vector<OpId>> Members;

  /// Representative[c] is the least member of class c.
  std::vector<OpId> Representative;

  size_t numClasses() const { return Members.size(); }
};

/// Partitions the operations of \p FLM into contention classes.
OperationClasses partitionOperationClasses(const ForbiddenLatencyMatrix &FLM);

/// Builds the quotient machine of \p MD under \p Classes: one operation per
/// class (the representative's name and reservation table), same resources.
/// The quotient machine's OpId c corresponds to class c.
MachineDescription buildClassMachine(const MachineDescription &MD,
                                     const OperationClasses &Classes);

} // namespace rmd

#endif // RMD_FLM_OPERATIONCLASSES_H
