//===- flm/OperationClasses.cpp -------------------------------------------===//

#include "flm/OperationClasses.h"

using namespace rmd;

static bool sameClass(const ForbiddenLatencyMatrix &FLM, OpId X, OpId Y) {
  // X and Y are interchangeable for contention purposes iff X's row and
  // column of the forbidden latency matrix equal Y's. Taking Z over all
  // operations (including X and Y themselves) also forces F(X,X) == F(Y,X)
  // == F(X,Y) == F(Y,Y), which is exactly what interchangeability needs.
  size_t NumOps = FLM.numOperations();
  for (OpId Z = 0; Z < NumOps; ++Z) {
    if (!(FLM.get(X, Z) == FLM.get(Y, Z)))
      return false;
    if (!(FLM.get(Z, X) == FLM.get(Z, Y)))
      return false;
  }
  return true;
}

OperationClasses
rmd::partitionOperationClasses(const ForbiddenLatencyMatrix &FLM) {
  size_t NumOps = FLM.numOperations();
  OperationClasses Result;
  Result.ClassOf.assign(NumOps, 0);

  for (OpId Op = 0; Op < NumOps; ++Op) {
    bool Placed = false;
    for (size_t C = 0; C < Result.Members.size() && !Placed; ++C) {
      if (sameClass(FLM, Result.Representative[C], Op)) {
        Result.ClassOf[Op] = static_cast<uint32_t>(C);
        Result.Members[C].push_back(Op);
        Placed = true;
      }
    }
    if (!Placed) {
      Result.ClassOf[Op] = static_cast<uint32_t>(Result.Members.size());
      Result.Members.push_back({Op});
      Result.Representative.push_back(Op);
    }
  }
  return Result;
}

MachineDescription rmd::buildClassMachine(const MachineDescription &MD,
                                          const OperationClasses &Classes) {
  assert(MD.isExpanded() && "class machine requires an expanded machine");
  MachineDescription Quotient(MD.name() + ".classes");
  for (ResourceId R = 0; R < MD.numResources(); ++R)
    Quotient.addResource(MD.resourceName(R));
  for (size_t C = 0; C < Classes.numClasses(); ++C) {
    const Operation &Rep = MD.operation(Classes.Representative[C]);
    Quotient.addOperation(Rep.Name, Rep.table());
  }
  return Quotient;
}
