//===- flm/MatrixDiff.cpp -------------------------------------------------===//

#include "flm/MatrixDiff.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>

using namespace rmd;

MatrixDiff rmd::diffMatrices(const MachineDescription &A,
                             const MachineDescription &B) {
  MatrixDiff Diff;

  // Match operations by name.
  std::map<std::string, OpId> InB;
  for (OpId Op = 0; Op < B.numOperations(); ++Op)
    InB[B.operation(Op).Name] = Op;

  std::vector<std::pair<OpId, OpId>> Common; // (idA, idB)
  std::set<std::string> CommonNames;
  for (OpId Op = 0; Op < A.numOperations(); ++Op) {
    auto It = InB.find(A.operation(Op).Name);
    if (It == InB.end()) {
      Diff.OnlyInA.push_back(A.operation(Op).Name);
      continue;
    }
    Common.push_back({Op, It->second});
    CommonNames.insert(A.operation(Op).Name);
  }
  for (OpId Op = 0; Op < B.numOperations(); ++Op)
    if (!CommonNames.count(B.operation(Op).Name))
      Diff.OnlyInB.push_back(B.operation(Op).Name);

  ForbiddenLatencyMatrix FA = ForbiddenLatencyMatrix::compute(A);
  ForbiddenLatencyMatrix FB = ForbiddenLatencyMatrix::compute(B);

  // Compare canonical (nonnegative) constraints over common operations.
  for (const auto &[XA, XB] : Common)
    for (const auto &[YA, YB] : Common) {
      const std::string &XName = A.operation(XA).Name;
      const std::string &YName = A.operation(YA).Name;
      // Canonical triple filter, mirroring ForbiddenLatencyMatrix: f > 0
      // always; f == 0 only when X <= Y by id in A (a stable, arbitrary
      // orientation).
      auto Keep = [&](int F) { return F > 0 || (F == 0 && XA <= YA); };
      for (int F : FA.get(XA, YA))
        if (Keep(F) && !FB.isForbidden(XB, YB, F))
          Diff.Removed.push_back(LatencyChange{XName, YName, F});
      for (int F : FB.get(XB, YB))
        if (Keep(F) && !FA.isForbidden(XA, YA, F))
          Diff.Added.push_back(LatencyChange{XName, YName, F});
    }
  return Diff;
}

static void printChanges(std::ostream &OS, const char *Sign,
                         const std::vector<LatencyChange> &Changes) {
  for (const LatencyChange &C : Changes)
    OS << Sign << ' ' << C.After << " forbidden " << C.Latency
       << " cycles after " << C.Before << "\n";
}

void rmd::printMatrixDiff(std::ostream &OS, const MatrixDiff &Diff) {
  if (Diff.identical()) {
    OS << "descriptions are scheduling-equivalent\n";
    return;
  }
  for (const std::string &Name : Diff.OnlyInA)
    OS << "- operation " << Name << " (only in first)\n";
  for (const std::string &Name : Diff.OnlyInB)
    OS << "+ operation " << Name << " (only in second)\n";
  printChanges(OS, "-", Diff.Removed);
  printChanges(OS, "+", Diff.Added);
  OS << "summary: " << Diff.Added.size() << " constraint(s) added, "
     << Diff.Removed.size() << " removed\n";
}
