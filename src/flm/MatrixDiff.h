//===- flm/MatrixDiff.h - Semantic diffs of machine descriptions -*- C++ -*-===//
///
/// \file
/// Semantic comparison of two machine descriptions by their forbidden
/// latency matrices. The paper's motivation: compilers are developed in
/// parallel with the micro-architecture, whose resource requirements keep
/// changing; what matters across revisions is not which rows moved but
/// which *scheduling constraints* appeared or disappeared. diffMatrices()
/// reports exactly that, operation-pair by operation-pair.
///
/// Operations are matched by name, so the two descriptions may use
/// entirely different resources (e.g. an original vs its reduction, or two
/// hardware revisions).
///
//===----------------------------------------------------------------------===//

#ifndef RMD_FLM_MATRIXDIFF_H
#define RMD_FLM_MATRIXDIFF_H

#include "flm/ForbiddenLatencyMatrix.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace rmd {

/// One changed constraint: operation \p After cannot issue \p Latency
/// cycles after \p Before in one description but can in the other.
struct LatencyChange {
  std::string After;
  std::string Before;
  int Latency = 0;

  friend bool operator==(const LatencyChange &A, const LatencyChange &B) {
    return A.After == B.After && A.Before == B.Before &&
           A.Latency == B.Latency;
  }
};

/// The semantic difference between two descriptions.
struct MatrixDiff {
  /// Canonical constraints present in B but not in A (new restrictions).
  std::vector<LatencyChange> Added;
  /// Canonical constraints present in A but not in B (lifted restrictions).
  std::vector<LatencyChange> Removed;
  /// Operations present in only one description (diffed constraints only
  /// cover the common operations).
  std::vector<std::string> OnlyInA;
  std::vector<std::string> OnlyInB;

  bool identical() const {
    return Added.empty() && Removed.empty() && OnlyInA.empty() &&
           OnlyInB.empty();
  }
};

/// Diffs the forbidden latency matrices of \p A and \p B (both expanded),
/// matching operations by name.
MatrixDiff diffMatrices(const MachineDescription &A,
                        const MachineDescription &B);

/// Renders \p Diff in a unified-diff flavour ("+" = constraint added in B,
/// "-" = removed).
void printMatrixDiff(std::ostream &OS, const MatrixDiff &Diff);

} // namespace rmd

#endif // RMD_FLM_MATRIXDIFF_H
