//===- flm/LatencySet.h - Sets of forbidden latencies ----------*- C++ -*-===//
///
/// \file
/// A set of (possibly negative) forbidden latencies, stored word-parallel:
/// a base latency (always a multiple of 64) plus a span of 64-bit words,
/// one bit per latency. Latency sets are dense inside a narrow band
/// (bounded by twice the longest reservation table), which makes the
/// bitset both smaller and faster than the historical sorted vector —
/// insert and contains are O(1), union / subset / equality run one word
/// instruction per 64 latencies.
///
/// The representation is canonical (64-aligned base, no zero words at
/// either end, base 0 when empty), so equality is a plain word compare.
/// The sorted-vector API survives for rendering and tests: values()
/// materializes the members in ascending order, and begin()/end() iterate
/// set bits ascending without materializing anything.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_FLM_LATENCYSET_H
#define RMD_FLM_LATENCYSET_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rmd {

/// A set of integer latencies over 64-bit words; see file comment.
class LatencySet {
public:
  LatencySet() = default;
  explicit LatencySet(std::vector<int> Values);

  /// Inserts \p Latency; duplicates are ignored.
  void insert(int Latency);

  /// True if \p Latency is a member.
  bool contains(int Latency) const;

  /// Inserts every member of \p Other (word-parallel OR).
  void unionWith(const LatencySet &Other);

  bool empty() const { return Count == 0; }
  size_t size() const { return Count; }

  /// The members in ascending order, materialized. Rendering/test API; the
  /// hot paths iterate begin()/end() or use contains() instead.
  std::vector<int> values() const;

  /// Number of members >= 0.
  size_t nonnegativeCount() const;

  /// Returns the set { -v | v in this }.
  LatencySet negated() const;

  /// True if every member of this set is also in \p Other (word-parallel
  /// A & ~B test over the overlap).
  bool isSubsetOf(const LatencySet &Other) const;

  /// Canonical representation makes equality a word compare.
  friend bool operator==(const LatencySet &A, const LatencySet &B) {
    return A.Count == B.Count && A.Base == B.Base && A.Words == B.Words;
  }

  /// Forward iterator over members in ascending order.
  class const_iterator {
  public:
    using value_type = int;

    const_iterator() = default;
    const_iterator(const LatencySet *Set, size_t WordIndex)
        : Set(Set), WordIndex(WordIndex) {
      advancePastZeroWords();
    }

    int operator*() const {
      return Set->Base + static_cast<int>(WordIndex * 64) +
             std::countr_zero(Current);
    }

    const_iterator &operator++() {
      Current &= Current - 1; // clear lowest set bit
      if (Current == 0) {
        ++WordIndex;
        advancePastZeroWords();
      }
      return *this;
    }

    friend bool operator==(const const_iterator &A, const const_iterator &B) {
      return A.WordIndex == B.WordIndex && A.Current == B.Current;
    }
    friend bool operator!=(const const_iterator &A, const const_iterator &B) {
      return !(A == B);
    }

  private:
    void advancePastZeroWords() {
      while (WordIndex < Set->Words.size() &&
             (Current = Set->Words[WordIndex]) == 0)
        ++WordIndex;
      if (WordIndex >= Set->Words.size())
        Current = 0;
    }

    const LatencySet *Set = nullptr;
    size_t WordIndex = 0;
    uint64_t Current = 0;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, Words.size()); }

private:
  /// Grows the word span to cover \p Latency; returns the bit position.
  size_t coverBit(int Latency);

  /// First latency representable (bit 0 of Words[0]); always a multiple
  /// of 64, and 0 for the empty set.
  int Base = 0;
  std::vector<uint64_t> Words;
  size_t Count = 0;
};

} // namespace rmd

#endif // RMD_FLM_LATENCYSET_H
