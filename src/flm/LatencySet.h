//===- flm/LatencySet.h - Sets of forbidden latencies ----------*- C++ -*-===//
///
/// \file
/// A set of (possibly negative) forbidden latencies, stored as a sorted
/// duplicate-free vector of ints. Latency sets are small (bounded by twice
/// the longest reservation table), so a sorted vector beats hash sets both
/// in memory and in iteration order determinism.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_FLM_LATENCYSET_H
#define RMD_FLM_LATENCYSET_H

#include <cstddef>
#include <vector>

namespace rmd {

/// A sorted set of integer latencies.
class LatencySet {
public:
  LatencySet() = default;
  explicit LatencySet(std::vector<int> Values);

  /// Inserts \p Latency; duplicates are ignored.
  void insert(int Latency);

  /// True if \p Latency is a member.
  bool contains(int Latency) const;

  /// Inserts every member of \p Other.
  void unionWith(const LatencySet &Other);

  bool empty() const { return Values.empty(); }
  size_t size() const { return Values.size(); }
  const std::vector<int> &values() const { return Values; }

  /// Number of members >= 0.
  size_t nonnegativeCount() const;

  /// Returns the set { -v | v in this }.
  LatencySet negated() const;

  /// True if every member of this set is also in \p Other.
  bool isSubsetOf(const LatencySet &Other) const;

  friend bool operator==(const LatencySet &A, const LatencySet &B) {
    return A.Values == B.Values;
  }

  auto begin() const { return Values.begin(); }
  auto end() const { return Values.end(); }

private:
  std::vector<int> Values;
};

} // namespace rmd

#endif // RMD_FLM_LATENCYSET_H
