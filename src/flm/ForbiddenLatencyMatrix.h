//===- flm/ForbiddenLatencyMatrix.h - Equation (1) of the paper -*- C++ -*-===//
///
/// \file
/// The forbidden latency matrix of a machine description (Section 3, Step 1
/// of Eichenberger & Davidson). For operations X and Y,
///
///   F(X,Y) = { j | X cannot be scheduled j cycles after Y }
///          = { y - x | resource i, x in X_i, y in Y_i }        (Eq. 1)
///
/// where X_i is the usage set of X on resource i. Two invariants hold by
/// construction and are exposed for testing:
///   - 0 in F(X,X) whenever X uses any resource;
///   - f in F(X,Y) iff -f in F(Y,X) (matrix antisymmetry).
///
/// The matrix is the *semantic identity* of a machine for scheduling
/// purposes: two descriptions with equal matrices admit exactly the same
/// contention-free schedules (the paper's reduction target).
///
//===----------------------------------------------------------------------===//

#ifndef RMD_FLM_FORBIDDENLATENCYMATRIX_H
#define RMD_FLM_FORBIDDENLATENCYMATRIX_H

#include "flm/LatencySet.h"
#include "mdesc/MachineDescription.h"

#include <iosfwd>
#include <vector>

namespace rmd {

class ThreadPool;

/// A canonical (nonnegative) forbidden latency: operation \p After cannot be
/// scheduled \p Latency cycles after operation \p Before. Canonical form:
/// Latency > 0, or Latency == 0 with After <= Before.
struct ForbiddenLatency {
  OpId After = 0;
  OpId Before = 0;
  int Latency = 0;

  friend bool operator==(const ForbiddenLatency &A,
                         const ForbiddenLatency &B) {
    return A.After == B.After && A.Before == B.Before &&
           A.Latency == B.Latency;
  }
  friend bool operator<(const ForbiddenLatency &A, const ForbiddenLatency &B) {
    if (A.After != B.After)
      return A.After < B.After;
    if (A.Before != B.Before)
      return A.Before < B.Before;
    return A.Latency < B.Latency;
  }
};

/// The full matrix of forbidden latency sets for an expanded machine
/// description (every operation has a single reservation table).
class ForbiddenLatencyMatrix {
public:
  /// Computes the matrix of \p MD per Equation (1). \p MD must be expanded.
  /// With \p Pool, operation rows are computed in parallel blocks; each
  /// cell F(X, Y) is owned by the thread holding row X, so the result is
  /// bit-identical at every thread count (enforced by the thread-sweep
  /// tests).
  static ForbiddenLatencyMatrix compute(const MachineDescription &MD,
                                        ThreadPool *Pool = nullptr);

  size_t numOperations() const { return NumOps; }

  /// F(X,Y): the latencies j such that X cannot issue j cycles after Y.
  const LatencySet &get(OpId X, OpId Y) const {
    assert(X < NumOps && Y < NumOps && "operation id out of range");
    return Sets[X * NumOps + Y];
  }

  /// True if X cannot be scheduled \p Latency cycles after Y.
  bool isForbidden(OpId X, OpId Y, int Latency) const {
    return get(X, Y).contains(Latency);
  }

  /// Inserts \p Latency into F(X,Y) and -\p Latency into F(Y,X).
  void insert(OpId X, OpId Y, int Latency);

  /// Total number of set members over the whole matrix (each latency in
  /// each F(X,Y) counts once; a constraint thus counts twice unless it is
  /// its own mirror). This matches the counting style of the paper's
  /// "10223 forbidden latencies" headline for the Cydra 5.
  size_t totalEntries() const;

  /// Number of canonical constraints (see ForbiddenLatency).
  size_t canonicalCount() const;

  /// Lists every canonical constraint in sorted order.
  std::vector<ForbiddenLatency> canonicalLatencies() const;

  /// Largest |latency| present anywhere in the matrix (0 if empty).
  int maxAbsoluteLatency() const;

  /// Checks the antisymmetry invariant; for use in tests.
  bool isAntisymmetric() const;

  friend bool operator==(const ForbiddenLatencyMatrix &A,
                         const ForbiddenLatencyMatrix &B) {
    return A.NumOps == B.NumOps && A.Sets == B.Sets;
  }

  /// Renders the matrix (Figure 1b style) using operation names of \p MD.
  void print(std::ostream &OS, const MachineDescription &MD) const;

  /// Constructs an empty matrix over \p NumOperations operations.
  explicit ForbiddenLatencyMatrix(size_t NumOperations);

private:
  LatencySet &getMutable(OpId X, OpId Y) { return Sets[X * NumOps + Y]; }

  size_t NumOps = 0;
  std::vector<LatencySet> Sets;
};

/// Returns the canonical form of the constraint "X cannot issue f cycles
/// after Y" (see ForbiddenLatency).
inline ForbiddenLatency canonicalize(OpId X, OpId Y, int F) {
  if (F > 0 || (F == 0 && X <= Y))
    return ForbiddenLatency{X, Y, F};
  return ForbiddenLatency{Y, X, -F};
}

} // namespace rmd

#endif // RMD_FLM_FORBIDDENLATENCYMATRIX_H
