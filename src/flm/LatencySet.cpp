//===- flm/LatencySet.cpp -------------------------------------------------===//

#include "flm/LatencySet.h"

#include <algorithm>
#include <cassert>

using namespace rmd;

/// Largest multiple of 64 that is <= L (floor division for negatives).
static int floor64(int L) {
  int Q = L / 64;
  if (L % 64 < 0)
    --Q;
  return Q * 64;
}

LatencySet::LatencySet(std::vector<int> TheValues) {
  for (int V : TheValues)
    insert(V);
}

size_t LatencySet::coverBit(int Latency) {
  int WordBase = floor64(Latency);
  if (Words.empty()) {
    Base = WordBase;
    Words.push_back(0);
  } else if (WordBase < Base) {
    size_t Grow = static_cast<size_t>(Base - WordBase) / 64;
    Words.insert(Words.begin(), Grow, 0);
    Base = WordBase;
  } else {
    size_t Word = static_cast<size_t>(WordBase - Base) / 64;
    if (Word >= Words.size())
      Words.resize(Word + 1, 0);
  }
  return static_cast<size_t>(Latency - Base);
}

void LatencySet::insert(int Latency) {
  size_t Bit = coverBit(Latency);
  uint64_t Mask = uint64_t(1) << (Bit % 64);
  uint64_t &W = Words[Bit / 64];
  if (W & Mask)
    return;
  W |= Mask;
  ++Count;
}

bool LatencySet::contains(int Latency) const {
  if (Words.empty() || Latency < Base)
    return false;
  size_t Bit = static_cast<size_t>(Latency - Base);
  size_t Word = Bit / 64;
  if (Word >= Words.size())
    return false;
  return (Words[Word] >> (Bit % 64)) & 1;
}

void LatencySet::unionWith(const LatencySet &Other) {
  if (Other.Words.empty())
    return;
  if (Words.empty()) {
    *this = Other;
    return;
  }
  // Align this set's span over the union of both spans, then OR. Both
  // bases are multiples of 64, so words line up without shifting.
  int NewBase = std::min(Base, Other.Base);
  int ThisEnd = Base + static_cast<int>(Words.size() * 64);
  int OtherEnd = Other.Base + static_cast<int>(Other.Words.size() * 64);
  int NewEnd = std::max(ThisEnd, OtherEnd);
  if (NewBase < Base)
    Words.insert(Words.begin(),
                 static_cast<size_t>(Base - NewBase) / 64, 0);
  Words.resize(static_cast<size_t>(NewEnd - NewBase) / 64, 0);
  Base = NewBase;

  size_t Offset = static_cast<size_t>(Other.Base - Base) / 64;
  size_t NewCount = 0;
  for (size_t I = 0; I < Other.Words.size(); ++I)
    Words[Offset + I] |= Other.Words[I];
  for (uint64_t W : Words)
    NewCount += static_cast<size_t>(std::popcount(W));
  Count = NewCount;
}

std::vector<int> LatencySet::values() const {
  std::vector<int> Result;
  Result.reserve(Count);
  for (int V : *this)
    Result.push_back(V);
  return Result;
}

size_t LatencySet::nonnegativeCount() const {
  if (Words.empty())
    return 0;
  if (Base >= 0)
    return Count;
  size_t Negative = 0;
  size_t ZeroBit = static_cast<size_t>(-Base); // bit index of latency 0
  size_t FullWords = std::min(ZeroBit / 64, Words.size());
  for (size_t I = 0; I < FullWords; ++I)
    Negative += static_cast<size_t>(std::popcount(Words[I]));
  if (ZeroBit / 64 < Words.size() && ZeroBit % 64 != 0) {
    uint64_t BelowMask = (uint64_t(1) << (ZeroBit % 64)) - 1;
    Negative +=
        static_cast<size_t>(std::popcount(Words[ZeroBit / 64] & BelowMask));
  }
  return Count - Negative;
}

LatencySet LatencySet::negated() const {
  LatencySet Result;
  for (int V : *this)
    Result.insert(-V);
  return Result;
}

bool LatencySet::isSubsetOf(const LatencySet &Other) const {
  if (Count > Other.Count)
    return false;
  if (Words.empty())
    return true;
  if (Base < Other.Base ||
      Base + static_cast<int>(Words.size() * 64) >
          Other.Base + static_cast<int>(Other.Words.size() * 64)) {
    // Our canonical span pokes out of Other's: our min or max is missing.
    return false;
  }
  size_t Offset = static_cast<size_t>(Base - Other.Base) / 64;
  for (size_t I = 0; I < Words.size(); ++I)
    if (Words[I] & ~Other.Words[Offset + I])
      return false;
  return true;
}
