//===- flm/LatencySet.cpp -------------------------------------------------===//

#include "flm/LatencySet.h"

#include <algorithm>

using namespace rmd;

LatencySet::LatencySet(std::vector<int> TheValues)
    : Values(std::move(TheValues)) {
  std::sort(Values.begin(), Values.end());
  Values.erase(std::unique(Values.begin(), Values.end()), Values.end());
}

void LatencySet::insert(int Latency) {
  auto It = std::lower_bound(Values.begin(), Values.end(), Latency);
  if (It != Values.end() && *It == Latency)
    return;
  Values.insert(It, Latency);
}

bool LatencySet::contains(int Latency) const {
  return std::binary_search(Values.begin(), Values.end(), Latency);
}

void LatencySet::unionWith(const LatencySet &Other) {
  std::vector<int> Merged;
  Merged.reserve(Values.size() + Other.Values.size());
  std::set_union(Values.begin(), Values.end(), Other.Values.begin(),
                 Other.Values.end(), std::back_inserter(Merged));
  Values = std::move(Merged);
}

size_t LatencySet::nonnegativeCount() const {
  auto It = std::lower_bound(Values.begin(), Values.end(), 0);
  return static_cast<size_t>(Values.end() - It);
}

LatencySet LatencySet::negated() const {
  std::vector<int> Negated;
  Negated.reserve(Values.size());
  for (auto It = Values.rbegin(); It != Values.rend(); ++It)
    Negated.push_back(-*It);
  LatencySet Result;
  Result.Values = std::move(Negated);
  return Result;
}

bool LatencySet::isSubsetOf(const LatencySet &Other) const {
  return std::includes(Other.Values.begin(), Other.Values.end(),
                       Values.begin(), Values.end());
}
