//===- automaton/PipelineAutomaton.h - FSA baseline ------------*- C++ -*-===//
///
/// \file
/// The finite-state-automaton approach to contention detection (Davidson et
/// al. '75; Proebsting & Fraser POPL'94; Müller MICRO-26; Bala & Rubin
/// MICRO-28), implemented as the paper's comparison baseline (Section 2,
/// and the state-count/memory comparisons of Section 6).
///
/// A state is the set of *pending* resource commitments of the in-flight
/// operations, relative to the current cycle: a bitset over (resource,
/// future cycle). Issuing an operation is legal iff its reservation table
/// does not intersect the pending set; advancing a cycle shifts every
/// pending row down by one. States are interned, so the reachable state
/// space is enumerated exactly (the minimal forward automaton of
/// Proebsting-Fraser recognizes the same language).
///
/// The *reverse* automaton (Bala & Rubin) is the forward automaton of the
/// time-mirrored machine description; buildReverse() constructs it.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_AUTOMATON_PIPELINEAUTOMATON_H
#define RMD_AUTOMATON_PIPELINEAUTOMATON_H

#include "mdesc/MachineDescription.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace rmd {

/// A contention-recognizing finite-state automaton over an expanded
/// machine description.
class PipelineAutomaton {
public:
  /// State handle; state 0 is the empty (idle) state.
  using StateId = uint32_t;

  /// Builds the forward automaton of \p MD by BFS over reachable states.
  /// Returns std::nullopt if more than \p StateCap states are reached (the
  /// automata state-explosion problem the paper discusses). Requires every
  /// reservation table to fit a 64-cycle horizon.
  static std::optional<PipelineAutomaton>
  build(const MachineDescription &MD, size_t StateCap = (1u << 20));

  /// Builds the reverse automaton: the forward automaton of \p MD with
  /// every reservation table mirrored about its own span (cycle u maps to
  /// len-1-u). A descending scan issues each operation at its *last*
  /// occupied cycle; AutomatonQueryModule builds its per-cycle reverse
  /// state cache on this convention.
  static std::optional<PipelineAutomaton>
  buildReverse(const MachineDescription &MD, size_t StateCap = (1u << 20));

  StateId initialState() const { return 0; }

  /// Attempts to issue \p Op in the current cycle of \p State; returns the
  /// successor state, or std::nullopt on a structural hazard.
  std::optional<StateId> issue(StateId State, OpId Op) const {
    int32_t Next = IssueTable[State * NumOps + Op];
    if (Next < 0)
      return std::nullopt;
    return static_cast<StateId>(Next);
  }

  /// Advances \p State by one cycle.
  StateId advance(StateId State) const { return AdvanceTable[State]; }

  size_t numStates() const { return AdvanceTable.size(); }
  size_t numOperations() const { return NumOps; }

  /// Number of defined issue transitions (excludes hazard entries).
  size_t numIssueTransitions() const;

  /// Number of distinct cycle-advance target states (Bala & Rubin's
  /// "cycle-advancing states").
  size_t numCycleAdvancingStates() const;

  /// Transition-table footprint in bytes: (NumOps + 1) entries of 4 bytes
  /// per state. This is the quantity that explodes for complex machines.
  size_t tableBytes() const {
    return numStates() * (NumOps + 1) * sizeof(int32_t);
  }

private:
  PipelineAutomaton() = default;

  static std::optional<PipelineAutomaton>
  buildImpl(const MachineDescription &MD, size_t StateCap,
            bool ReverseTables);

  size_t NumOps = 0;
  /// IssueTable[state * NumOps + op] = next state or -1 (hazard).
  std::vector<int32_t> IssueTable;
  /// AdvanceTable[state] = state after one cycle.
  std::vector<StateId> AdvanceTable;
};

} // namespace rmd

#endif // RMD_AUTOMATON_PIPELINEAUTOMATON_H
