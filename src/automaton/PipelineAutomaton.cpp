//===- automaton/PipelineAutomaton.cpp ------------------------------------===//

#include "automaton/PipelineAutomaton.h"

#include "support/FaultInjection.h"

#include <cassert>
#include <deque>
#include <set>
#include <unordered_map>

using namespace rmd;

namespace {

/// A pending-usage matrix: one 64-bit row of future cycles per resource.
using PendingState = std::vector<uint64_t>;

struct PendingStateHash {
  size_t operator()(const PendingState &S) const {
    uint64_t H = 0xcbf29ce484222325ull;
    for (uint64_t W : S) {
      H ^= W;
      H *= 0x100000001b3ull;
    }
    return static_cast<size_t>(H);
  }
};

} // namespace

std::optional<PipelineAutomaton>
PipelineAutomaton::buildImpl(const MachineDescription &MD, size_t StateCap,
                             bool ReverseTables) {
  assert(MD.isExpanded() && "automaton requires an expanded machine");
  if (MD.maxTableLength() > 64)
    return std::nullopt; // beyond the 64-cycle horizon of this encoding
  if (FaultInjection::fire(faultpoints::AutomatonCap))
    return std::nullopt; // injected state-cap overflow

  size_t NumOps = MD.numOperations();
  size_t NumRes = MD.numResources();

  // Per-op pending masks. Reverse tables are mirrored about each
  // operation's own span (cycle u -> len-1-u), so a reverse scan issues an
  // operation at its *last* occupied cycle.
  std::vector<PendingState> OpMask(NumOps, PendingState(NumRes, 0));
  for (OpId Op = 0; Op < NumOps; ++Op) {
    ReservationTable RT = MD.operation(Op).table();
    if (ReverseTables)
      RT = RT.reversed();
    for (const ResourceUsage &U : RT.usages())
      OpMask[Op][U.Resource] |= 1ull << U.Cycle;
  }

  std::unordered_map<PendingState, uint32_t, PendingStateHash> Interned;
  std::vector<PendingState> States;
  auto intern = [&](const PendingState &S) -> int64_t {
    auto [It, Inserted] = Interned.emplace(S, Interned.size());
    if (Inserted) {
      States.push_back(S);
      if (States.size() > StateCap)
        return -1;
    }
    return It->second;
  };

  [[maybe_unused]] int64_t Initial = intern(PendingState(NumRes, 0));
  assert(Initial == 0 && "initial state must be state 0");

  std::vector<int32_t> IssueTable;
  std::vector<uint32_t> AdvanceTable;

  // BFS; States grows as transitions intern new targets.
  for (size_t Current = 0; Current < States.size(); ++Current) {
    // Copy: States may reallocate while interning successors.
    PendingState S = States[Current];

    for (OpId Op = 0; Op < NumOps; ++Op) {
      bool Hazard = false;
      for (size_t R = 0; R < NumRes && !Hazard; ++R)
        Hazard = (S[R] & OpMask[Op][R]) != 0;
      if (Hazard) {
        IssueTable.push_back(-1);
        continue;
      }
      PendingState Next = S;
      for (size_t R = 0; R < NumRes; ++R)
        Next[R] |= OpMask[Op][R];
      int64_t Target = intern(Next);
      if (Target < 0)
        return std::nullopt;
      IssueTable.push_back(static_cast<int32_t>(Target));
    }

    PendingState Advanced = S;
    for (size_t R = 0; R < NumRes; ++R)
      Advanced[R] >>= 1;
    int64_t Target = intern(Advanced);
    if (Target < 0)
      return std::nullopt;
    AdvanceTable.push_back(static_cast<uint32_t>(Target));
  }

  PipelineAutomaton A;
  A.NumOps = NumOps;
  A.IssueTable = std::move(IssueTable);
  A.AdvanceTable = std::move(AdvanceTable);
  return A;
}

std::optional<PipelineAutomaton>
PipelineAutomaton::build(const MachineDescription &MD, size_t StateCap) {
  return buildImpl(MD, StateCap, /*ReverseTables=*/false);
}

std::optional<PipelineAutomaton>
PipelineAutomaton::buildReverse(const MachineDescription &MD,
                                size_t StateCap) {
  return buildImpl(MD, StateCap, /*ReverseTables=*/true);
}

size_t PipelineAutomaton::numIssueTransitions() const {
  size_t Count = 0;
  for (int32_t T : IssueTable)
    if (T >= 0)
      ++Count;
  return Count;
}

size_t PipelineAutomaton::numCycleAdvancingStates() const {
  std::set<StateId> Targets(AdvanceTable.begin(), AdvanceTable.end());
  return Targets.size();
}
