//===- automaton/AutomatonQuery.h - FSA-based query module -----*- C++ -*-===//
///
/// \file
/// A contention query module built on a forward/reverse pair of finite
/// state automata, implementing the unrestricted-scheduling protocol of
/// Bala & Rubin (MICRO-28 '95) that the paper compares against (Section
/// 2):
///
///   - one forward-automaton state and one reverse-automaton state are
///     cached per schedule cycle;
///   - the forward state at cycle c accepts an operation iff it is free of
///     conflicts with operations issued at cycles <= c; the reverse state
///     (anchored at the operation's *last* occupied cycle e, where the
///     descending scan issues each op) covers operations ending at cycles
///     >= e; operations *nested* strictly inside the new op's span are
///     covered by neither automaton and require explicit pairwise replays
///     -- part of the bookkeeping overhead the paper attributes to
///     automaton approaches under unrestricted scheduling;
///   - an insertion or removal changes the resource requirements seen by
///     adjacent cycles, so the cached states must be re-propagated in both
///     directions (stopping once states re-converge);
///   - assign&free -- evicting whichever operations conflict -- has no
///     direct automaton analogue ("appears to be more difficult", Section
///     2): it is emulated by pairwise-replaying nearby scheduled
///     operations to identify the conflict set.
///
/// One *work unit* is one automaton table lookup (an issue or advance
/// transition), the automaton counterpart of the paper's per-usage /
/// per-word unit. The module answers every query exactly like the
/// reservation-table modules (asserted by property tests); the point of
/// the comparison is the work and state it takes to do so.
///
/// Linear addressing over a fixed horizon only: modulo wraparound has no
/// finite-automaton formulation, which is one of the paper's arguments.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_AUTOMATON_AUTOMATONQUERY_H
#define RMD_AUTOMATON_AUTOMATONQUERY_H

#include "automaton/PipelineAutomaton.h"
#include "query/QueryModule.h"
#include "support/Status.h"

#include <memory>
#include <unordered_map>

namespace rmd {

/// Forward+reverse automaton contention query module.
class AutomatonQueryModule : public ContentionQueryModule {
public:
  /// Builds both automata for \p MD (expanded; tables within 64 cycles)
  /// over schedule cycles [0, Horizon). Construction cost is *not*
  /// counted as query work. Aborts if either automaton exceeds
  /// \p StateCap states; recoverable callers use tryCreate() or
  /// makeAutomatonOrFallback() instead.
  AutomatonQueryModule(const MachineDescription &MD, int Horizon,
                       size_t StateCap = (1u << 22));

  /// The recoverable face of the constructor: StateCapExceeded instead of
  /// an abort when either automaton blows \p StateCap (or the
  /// automaton.cap fault point fires).
  static Expected<std::unique_ptr<AutomatonQueryModule>>
  tryCreate(const MachineDescription &MD, int Horizon,
            size_t StateCap = (1u << 22));

  bool check(OpId Op, int Cycle) override;
  void assign(OpId Op, int Cycle, InstanceId Instance) override;
  void free(OpId Op, int Cycle, InstanceId Instance) override;
  void assignAndFree(OpId Op, int Cycle, InstanceId Instance,
                     std::vector<InstanceId> &Evicted) override;
  void reset() override;

  /// Bytes of per-cycle cached automaton state (the paper's memory
  /// comparison: two states per schedule cycle).
  size_t cachedStateBytes() const {
    return 2 * static_cast<size_t>(Horizon) *
           sizeof(PipelineAutomaton::StateId);
  }

  /// Bytes of the two transition tables.
  size_t tableBytes() const {
    return Forward.tableBytes() + Reverse.tableBytes();
  }

private:
  AutomatonQueryModule(const MachineDescription &MD, int Horizon,
                       PipelineAutomaton Forward, PipelineAutomaton Reverse);

  using StateId = PipelineAutomaton::StateId;

  struct Issue {
    OpId Op;
    InstanceId Instance;
  };

  /// Last cycle occupied by \p Op issued at \p Cycle (== Cycle - 1 for an
  /// empty table).
  int endCycle(OpId Op, int Cycle) const {
    return Cycle + MD.operation(Op).table().length() - 1;
  }

  /// Issues, in the forward automaton, every op issued at \p Cycle.
  StateId issueForwardOps(StateId State, int Cycle, uint64_t &Units) const;

  /// Issues, in the reverse automaton, every op *ending* at \p Cycle.
  StateId issueReverseOps(StateId State, int Cycle, uint64_t &Units) const;

  /// Pairwise conflict test by replaying \p A-at-CA then \p B-at-CB
  /// through the forward automaton from the initial state.
  bool pairwiseConflict(OpId A, int CA, OpId B, int CB,
                        uint64_t &Units) const;

  /// Recomputes the forward cache above \p IssueCycle and the reverse
  /// cache below \p EndCycle, stopping early on re-convergence. Returns
  /// lookups performed.
  uint64_t propagate(int IssueCycle, int EndCycle);

  /// The uncounted core of check(); \p Units accumulates lookups.
  bool checkImpl(OpId Op, int Cycle, uint64_t &Units) const;

  /// Removes \p Instance from the issue/end indexes (no propagation).
  void detach(InstanceId Instance);

  const MachineDescription &MD;
  int Horizon;
  PipelineAutomaton Forward;
  PipelineAutomaton Reverse;

  /// Operations indexed by issue cycle and by last-occupied cycle.
  std::vector<std::vector<Issue>> IssuedAt;
  std::vector<std::vector<Issue>> EndsAt;

  /// ForwardBefore[c]: forward state before issuing cycle c's operations
  /// (size Horizon + 1).
  std::vector<StateId> ForwardBefore;

  /// ReverseBefore[e]: reverse state of the descending scan before issuing
  /// the operations that end at cycle e (size Horizon).
  std::vector<StateId> ReverseBefore;

  struct InstanceInfo {
    OpId Op;
    int Cycle;
  };
  std::unordered_map<InstanceId, InstanceInfo> Instances;
};

/// The automaton rung of the graceful-degradation ladder: an automaton
/// query module over cycles [0, \p Horizon), or — when construction
/// overflows \p StateCap (state explosion, the failure mode Section 6
/// measures) — a reservation-table module answering every query
/// identically (bitvector when the machine fits a word, discrete
/// otherwise). Each fallback bumps
/// globalDegradation().AutomatonFallbacks; \p Why, when non-null,
/// receives why the fallback was taken (ok() on the automaton path).
///
/// The fallback's window is [0, +inf) rather than [0, Horizon): strictly
/// more permissive, so any schedule the automaton module admits is
/// admitted unchanged.
std::unique_ptr<ContentionQueryModule>
makeAutomatonOrFallback(const MachineDescription &MD, int Horizon,
                        size_t StateCap = (1u << 22),
                        Status *Why = nullptr);

} // namespace rmd

#endif // RMD_AUTOMATON_AUTOMATONQUERY_H
