//===- automaton/AutomatonQuery.cpp ---------------------------------------===//

#include "automaton/AutomatonQuery.h"

#include "query/BitvectorQuery.h"
#include "query/DiscreteQuery.h"
#include "support/Degradation.h"
#include "support/FatalError.h"

#include <algorithm>
#include <cassert>

using namespace rmd;

/// Unwraps an automaton build for the aborting constructor (the caller
/// opted into the automaton representation with no recovery path;
/// tryCreate() / makeAutomatonOrFallback() are the recoverable faces).
static PipelineAutomaton takeOrDie(std::optional<PipelineAutomaton> A) {
  if (!A)
    fatalError("automaton construction exceeded the state cap; use "
               "AutomatonQueryModule::tryCreate() or a reservation-table "
               "query module for this machine");
  return std::move(*A);
}

AutomatonQueryModule::AutomatonQueryModule(const MachineDescription &TheMD,
                                           int TheHorizon, size_t StateCap)
    : AutomatonQueryModule(
          TheMD, TheHorizon,
          takeOrDie(PipelineAutomaton::build(TheMD, StateCap)),
          takeOrDie(PipelineAutomaton::buildReverse(TheMD, StateCap))) {}

AutomatonQueryModule::AutomatonQueryModule(const MachineDescription &TheMD,
                                           int TheHorizon,
                                           PipelineAutomaton TheForward,
                                           PipelineAutomaton TheReverse)
    : MD(TheMD), Horizon(TheHorizon), Forward(std::move(TheForward)),
      Reverse(std::move(TheReverse)) {
  assert(MD.isExpanded() && "query module requires an expanded machine");
  assert(Horizon > 0 && "horizon must be positive");
  IssuedAt.resize(Horizon);
  EndsAt.resize(Horizon);
  ForwardBefore.assign(static_cast<size_t>(Horizon) + 1,
                       Forward.initialState());
  ReverseBefore.assign(static_cast<size_t>(Horizon),
                       Reverse.initialState());
}

Expected<std::unique_ptr<AutomatonQueryModule>>
AutomatonQueryModule::tryCreate(const MachineDescription &MD, int Horizon,
                                size_t StateCap) {
  std::optional<PipelineAutomaton> Forward =
      PipelineAutomaton::build(MD, StateCap);
  std::optional<PipelineAutomaton> Reverse =
      Forward ? PipelineAutomaton::buildReverse(MD, StateCap) : std::nullopt;
  if (!Forward || !Reverse)
    return Status(ErrorCode::StateCapExceeded,
                  "automaton construction for '" + MD.name() +
                      "' exceeded the state cap");
  return std::unique_ptr<AutomatonQueryModule>(new AutomatonQueryModule(
      MD, Horizon, std::move(*Forward), std::move(*Reverse)));
}

std::unique_ptr<ContentionQueryModule>
rmd::makeAutomatonOrFallback(const MachineDescription &MD, int Horizon,
                             size_t StateCap, Status *Why) {
  if (Why)
    *Why = Status::ok();
  Expected<std::unique_ptr<AutomatonQueryModule>> Automaton =
      AutomatonQueryModule::tryCreate(MD, Horizon, StateCap);
  if (Automaton)
    return Automaton.take();
  if (Why)
    *Why = Automaton.status();
  globalDegradation().noteAutomatonFallback();
  // Reservation-table fallback: identical answers (the property tests
  // assert module agreement), window [0, +inf) instead of [0, Horizon).
  QueryConfig Config = QueryConfig::linear(0);
  if (MD.numResources() <= Config.WordBits)
    return std::make_unique<BitvectorQueryModule>(MD, Config);
  return std::make_unique<DiscreteQueryModule>(MD, Config);
}

AutomatonQueryModule::StateId
AutomatonQueryModule::issueForwardOps(StateId State, int Cycle,
                                      uint64_t &Units) const {
  for (const Issue &I : IssuedAt[Cycle]) {
    ++Units;
    std::optional<StateId> Next = Forward.issue(State, I.Op);
    if (!Next)
      fatalError("scheduled operations conflict in the forward automaton; "
                 "the cached states are corrupt");
    State = *Next;
  }
  return State;
}

AutomatonQueryModule::StateId
AutomatonQueryModule::issueReverseOps(StateId State, int Cycle,
                                      uint64_t &Units) const {
  for (const Issue &I : EndsAt[Cycle]) {
    ++Units;
    std::optional<StateId> Next = Reverse.issue(State, I.Op);
    if (!Next)
      fatalError("scheduled operations conflict in the reverse automaton; "
                 "the cached states are corrupt");
    State = *Next;
  }
  return State;
}

bool AutomatonQueryModule::pairwiseConflict(OpId A, int CA, OpId B, int CB,
                                            uint64_t &Units) const {
  // Replay the earlier-issued op, advance to the later issue cycle, then
  // try to issue the later op.
  if (CA > CB) {
    std::swap(A, B);
    std::swap(CA, CB);
  }
  ++Units;
  std::optional<StateId> S = Forward.issue(Forward.initialState(), A);
  assert(S.has_value() && "single issue from the initial state must work");
  StateId State = *S;
  for (int C = CA; C < CB; ++C) {
    ++Units;
    State = Forward.advance(State);
  }
  ++Units;
  return !Forward.issue(State, B).has_value();
}

bool AutomatonQueryModule::checkImpl(OpId Op, int Cycle,
                                     uint64_t &Units) const {
  int Len = MD.operation(Op).table().length();
  if (Cycle < 0 || Cycle + Len > Horizon)
    return false;
  if (Len == 0)
    return true; // no resources, no conflicts

  // Forward side: operations issued at cycles <= Cycle.
  StateId F = issueForwardOps(ForwardBefore[Cycle], Cycle, Units);
  ++Units;
  if (!Forward.issue(F, Op))
    return false;

  // Reverse side: operations ending at cycles >= this op's end.
  int End = Cycle + Len - 1;
  StateId R = issueReverseOps(ReverseBefore[End], End, Units);
  ++Units;
  if (!Reverse.issue(R, Op))
    return false;

  // Nested operations -- issued after Cycle but ending before End -- are
  // visible to neither automaton; test them pairwise. This bookkeeping is
  // intrinsic to supporting arbitrary-order insertion with automata.
  for (int C = Cycle + 1; C <= End; ++C)
    for (const Issue &I : IssuedAt[C]) {
      if (endCycle(I.Op, C) >= End)
        continue; // covered by the reverse automaton
      if (pairwiseConflict(Op, Cycle, I.Op, C, Units))
        return false;
    }
  return true;
}

bool AutomatonQueryModule::check(OpId Op, int Cycle) {
  ++Counters.CheckCalls;
  return checkImpl(Op, Cycle, Counters.CheckUnits);
}

uint64_t AutomatonQueryModule::propagate(int IssueCycle, int EndCycle) {
  uint64_t Units = 0;

  // Forward: recompute states above IssueCycle until they re-converge.
  for (int C = IssueCycle + 1; C <= Horizon; ++C) {
    StateId S = issueForwardOps(ForwardBefore[C - 1], C - 1, Units);
    ++Units;
    S = Forward.advance(S);
    if (S == ForwardBefore[C])
      break;
    ForwardBefore[C] = S;
  }

  // Reverse: recompute states below EndCycle until they re-converge.
  for (int E = std::min(EndCycle, Horizon - 1) - 1; E >= 0; --E) {
    StateId S = issueReverseOps(ReverseBefore[E + 1], E + 1, Units);
    ++Units;
    S = Reverse.advance(S);
    if (S == ReverseBefore[E])
      break;
    ReverseBefore[E] = S;
  }
  return Units;
}

void AutomatonQueryModule::assign(OpId Op, int Cycle, InstanceId Instance) {
  ++Counters.AssignCalls;
  [[maybe_unused]] uint64_t ProbeUnits = 0;
  assert(checkImpl(Op, Cycle, ProbeUnits) &&
         "assign over a conflicting placement; use assignAndFree");
  int Len = MD.operation(Op).table().length();
  if (Len > 0) {
    IssuedAt[Cycle].push_back(Issue{Op, Instance});
    EndsAt[Cycle + Len - 1].push_back(Issue{Op, Instance});
  }
  [[maybe_unused]] bool Inserted =
      Instances.emplace(Instance, InstanceInfo{Op, Cycle}).second;
  assert(Inserted && "instance id already scheduled");
  if (Len > 0)
    Counters.AssignUnits += propagate(Cycle, Cycle + Len - 1);
}

void AutomatonQueryModule::detach(InstanceId Instance) {
  auto It = Instances.find(Instance);
  assert(It != Instances.end() && "detaching an unscheduled instance");
  OpId Op = It->second.Op;
  int Cycle = It->second.Cycle;
  int Len = MD.operation(Op).table().length();

  auto Remove = [&](std::vector<Issue> &List) {
    auto Pos = std::find_if(List.begin(), List.end(), [&](const Issue &I) {
      return I.Instance == Instance;
    });
    assert(Pos != List.end() && "instance missing from its index");
    List.erase(Pos);
  };
  if (Len > 0) {
    Remove(IssuedAt[Cycle]);
    Remove(EndsAt[Cycle + Len - 1]);
  }
  Instances.erase(It);
}

void AutomatonQueryModule::free(OpId Op, int Cycle, InstanceId Instance) {
  ++Counters.FreeCalls;
  int Len = MD.operation(Op).table().length();
  detach(Instance);
  if (Len > 0)
    Counters.FreeUnits += propagate(Cycle, Cycle + Len - 1);
}

void AutomatonQueryModule::assignAndFree(OpId Op, int Cycle,
                                         InstanceId Instance,
                                         std::vector<InstanceId> &Evicted) {
  ++Counters.AssignFreeCalls;
  int Len = MD.operation(Op).table().length();
  if (Cycle < 0 || Cycle + Len > Horizon)
    fatalError("assignAndFree outside the automaton module's horizon");

  if (!checkImpl(Op, Cycle, Counters.AssignFreeUnits)) {
    // Identify the conflict set by pairwise replay of every scheduled
    // operation whose span can overlap the new one (no owner fields exist
    // in this representation).
    int Window = MD.maxTableLength();
    int Lo = std::max(0, Cycle - Window + 1);
    int Hi = std::min(Horizon - 1, Cycle + Len - 1);
    std::vector<InstanceId> Victims;
    for (int C = Lo; C <= Hi; ++C)
      for (const Issue &I : IssuedAt[C])
        if (pairwiseConflict(Op, Cycle, I.Op, C,
                             Counters.AssignFreeUnits))
          Victims.push_back(I.Instance);
    assert(!Victims.empty() && "check failed but no pairwise conflict");
    for (InstanceId Victim : Victims) {
      InstanceInfo Info = Instances.at(Victim);
      int VLen = MD.operation(Info.Op).table().length();
      detach(Victim);
      Counters.AssignFreeUnits +=
          propagate(Info.Cycle, Info.Cycle + VLen - 1);
      Evicted.push_back(Victim);
    }
  }

  if (Len > 0) {
    IssuedAt[Cycle].push_back(Issue{Op, Instance});
    EndsAt[Cycle + Len - 1].push_back(Issue{Op, Instance});
  }
  [[maybe_unused]] bool Inserted =
      Instances.emplace(Instance, InstanceInfo{Op, Cycle}).second;
  assert(Inserted && "instance id already scheduled");
  if (Len > 0)
    Counters.AssignFreeUnits += propagate(Cycle, Cycle + Len - 1);
}

void AutomatonQueryModule::reset() {
  for (auto &List : IssuedAt)
    List.clear();
  for (auto &List : EndsAt)
    List.clear();
  std::fill(ForwardBefore.begin(), ForwardBefore.end(),
            Forward.initialState());
  std::fill(ReverseBefore.begin(), ReverseBefore.end(),
            Reverse.initialState());
  Instances.clear();
  retireCounters();
}
