//===- mdl/Parser.cpp -----------------------------------------------------===//

#include "mdl/Parser.h"

#include "mdl/Lexer.h"
#include "support/FaultInjection.h"

#include <map>

using namespace rmd;

namespace {

class Parser {
public:
  Parser(std::string_view Input, DiagnosticEngine &Diags,
         MdlAnnotations *Annotations)
      : Lex(Input, Diags), Diags(Diags), Annotations(Annotations) {}

  std::optional<MachineDescription> parseFile() {
    if (!expectKeyword("machine"))
      return std::nullopt;
    Token Name = Lex.take();
    if (!Name.is(TokenKind::Identifier)) {
      Diags.error(Name.Loc, "expected machine name");
      return std::nullopt;
    }
    MD.setName(Name.Text);

    if (!expect(TokenKind::LBrace, "'{'"))
      return std::nullopt;
    while (!Lex.peek().is(TokenKind::RBrace)) {
      if (Lex.peek().is(TokenKind::EndOfFile)) {
        Diags.error(Lex.location(), "unexpected end of file in machine body");
        return std::nullopt;
      }
      if (Lex.peek().isKeyword("resources")) {
        if (!parseResources())
          return std::nullopt;
      } else if (Lex.peek().isKeyword("operation")) {
        if (!parseOperation())
          return std::nullopt;
      } else {
        Diags.error(Lex.location(),
                    "expected 'resources' or 'operation', got '" +
                        Lex.peek().Text + "'");
        return std::nullopt;
      }
    }
    Lex.take(); // '}'
    if (!Lex.peek().is(TokenKind::EndOfFile)) {
      Diags.error(Lex.location(), "trailing input after machine body");
      return std::nullopt;
    }
    if (!MD.validate(Diags))
      return std::nullopt;
    return std::move(MD);
  }

private:
  bool expect(TokenKind Kind, const char *What) {
    Token T = Lex.take();
    if (T.is(Kind))
      return true;
    Diags.error(T.Loc, std::string("expected ") + What);
    return false;
  }

  bool expectKeyword(const char *KW) {
    Token T = Lex.take();
    if (T.isKeyword(KW))
      return true;
    Diags.error(T.Loc, std::string("expected '") + KW + "'");
    return false;
  }

  bool parseResources() {
    Lex.take(); // 'resources'
    for (;;) {
      Token Name = Lex.take();
      if (!Name.is(TokenKind::Identifier)) {
        Diags.error(Name.Loc, "expected resource name");
        return false;
      }
      if (Resources.count(Name.Text)) {
        Diags.error(Name.Loc, "duplicate resource '" + Name.Text + "'");
        return false;
      }
      Resources[Name.Text] = MD.addResource(Name.Text);
      if (Lex.peek().is(TokenKind::Comma)) {
        Lex.take();
        continue;
      }
      return expect(TokenKind::Semicolon, "';'");
    }
  }

  /// Parses usages until the closing brace of the current block.
  bool parseUsages(ReservationTable &RT) {
    while (!Lex.peek().is(TokenKind::RBrace)) {
      Token Name = Lex.take();
      if (!Name.is(TokenKind::Identifier)) {
        Diags.error(Name.Loc, "expected resource name in usage");
        return false;
      }
      auto It = Resources.find(Name.Text);
      if (It == Resources.end()) {
        Diags.error(Name.Loc, "unknown resource '" + Name.Text + "'");
        return false;
      }
      if (!expectKeyword("at"))
        return false;
      Token First = Lex.take();
      if (!First.is(TokenKind::Integer)) {
        Diags.error(First.Loc, "expected cycle number");
        return false;
      }
      long Last = First.Value;
      if (Lex.peek().is(TokenKind::DotDot)) {
        Lex.take();
        Token LastTok = Lex.take();
        if (!LastTok.is(TokenKind::Integer)) {
          Diags.error(LastTok.Loc, "expected cycle number after '..'");
          return false;
        }
        Last = LastTok.Value;
        if (Last < First.Value) {
          Diags.error(LastTok.Loc, "empty cycle range");
          return false;
        }
      }
      RT.addUsageRange(It->second, static_cast<int>(First.Value),
                       static_cast<int>(Last));
      if (!expect(TokenKind::Semicolon, "';'"))
        return false;
    }
    return true;
  }

  bool parseOperation() {
    Lex.take(); // 'operation'
    Token Name = Lex.take();
    if (!Name.is(TokenKind::Identifier)) {
      Diags.error(Name.Loc, "expected operation name");
      return false;
    }

    // Optional scheduling annotations.
    int Latency = -1;
    std::string Role;
    for (;;) {
      if (Lex.peek().isKeyword("latency")) {
        Lex.take();
        Token Value = Lex.take();
        if (!Value.is(TokenKind::Integer)) {
          Diags.error(Value.Loc, "expected latency value");
          return false;
        }
        Latency = static_cast<int>(Value.Value);
        continue;
      }
      if (Lex.peek().isKeyword("role")) {
        Lex.take();
        Token Value = Lex.take();
        if (!Value.is(TokenKind::Identifier)) {
          Diags.error(Value.Loc, "expected role name");
          return false;
        }
        Role = Value.Text;
        continue;
      }
      break;
    }

    if (!expect(TokenKind::LBrace, "'{'"))
      return false;

    std::vector<ReservationTable> Alternatives;
    if (Lex.peek().isKeyword("alternative")) {
      while (Lex.peek().isKeyword("alternative")) {
        Lex.take();
        if (!expect(TokenKind::LBrace, "'{'"))
          return false;
        ReservationTable RT;
        if (!parseUsages(RT))
          return false;
        Lex.take(); // '}'
        Alternatives.push_back(std::move(RT));
      }
    } else {
      // Shorthand: bare usages form a single alternative (possibly empty).
      ReservationTable RT;
      if (!parseUsages(RT))
        return false;
      Alternatives.push_back(std::move(RT));
    }
    if (!expect(TokenKind::RBrace, "'}'"))
      return false;
    MD.addOperation(Name.Text, std::move(Alternatives));
    if (Annotations) {
      Annotations->Latency.push_back(Latency);
      Annotations->Role.push_back(Role);
    }
    return true;
  }

  Lexer Lex;
  DiagnosticEngine &Diags;
  MdlAnnotations *Annotations;
  MachineDescription MD;
  std::map<std::string, ResourceId> Resources;
};

} // namespace

std::optional<MachineDescription>
rmd::parseMdl(std::string_view Input, DiagnosticEngine &Diags,
              MdlAnnotations *Annotations) {
  if (FaultInjection::fire(faultpoints::MdlParse)) {
    Diags.error({}, "injected fault: mdl.parse");
    return std::nullopt;
  }
  Parser P(Input, Diags, Annotations);
  std::optional<MachineDescription> Result = P.parseFile();
  if (Diags.hasErrors())
    return std::nullopt;
  return Result;
}
