//===- mdl/Lexer.cpp ------------------------------------------------------===//

#include "mdl/Lexer.h"

#include <cctype>

using namespace rmd;

Lexer::Lexer(std::string_view TheInput, DiagnosticEngine &TheDiags)
    : Input(TheInput), Diags(TheDiags) {
  advance();
}

Token Lexer::take() {
  Token T = Current;
  advance();
  return T;
}

void Lexer::bump() {
  if (cur() == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  ++Pos;
}

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

static bool isIdentBody(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
         C == '.' || C == '-' || C == '@' || C == '$';
}

void Lexer::advance() {
  // Skip whitespace and comments ('#' or '//' to end of line).
  for (;;) {
    while (std::isspace(static_cast<unsigned char>(cur())))
      bump();
    if (cur() == '#' ||
        (cur() == '/' && Pos + 1 < Input.size() && Input[Pos + 1] == '/')) {
      while (cur() != '\n' && cur() != '\0')
        bump();
      continue;
    }
    break;
  }

  Current = Token();
  Current.Loc = SourceLocation{Line, Column};

  char C = cur();
  if (C == '\0') {
    Current.Kind = TokenKind::EndOfFile;
    return;
  }

  switch (C) {
  case '{':
    Current.Kind = TokenKind::LBrace;
    bump();
    return;
  case '}':
    Current.Kind = TokenKind::RBrace;
    bump();
    return;
  case ',':
    Current.Kind = TokenKind::Comma;
    bump();
    return;
  case ';':
    Current.Kind = TokenKind::Semicolon;
    bump();
    return;
  case ':':
    Current.Kind = TokenKind::Colon;
    bump();
    return;
  default:
    break;
  }

  if (C == '-') {
    // Either "->" or the start of a (negative-looking) identifier; only
    // the arrow is valid at token start.
    bump();
    if (cur() == '>') {
      bump();
      Current.Kind = TokenKind::Arrow;
      return;
    }
    Diags.error(Current.Loc, "expected '->'");
    Current.Kind = TokenKind::Error;
    return;
  }

  if (C == '.') {
    bump();
    if (cur() == '.') {
      bump();
      Current.Kind = TokenKind::DotDot;
      return;
    }
    Diags.error(Current.Loc, "expected '..'");
    Current.Kind = TokenKind::Error;
    return;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    long Value = 0;
    std::string Text;
    while (std::isdigit(static_cast<unsigned char>(cur()))) {
      Value = Value * 10 + (cur() - '0');
      Text += cur();
      bump();
    }
    Current.Kind = TokenKind::Integer;
    Current.Value = Value;
    Current.Text = std::move(Text);
    return;
  }

  if (isIdentStart(C)) {
    std::string Text;
    while (isIdentBody(cur())) {
      Text += cur();
      bump();
    }
    Current.Kind = TokenKind::Identifier;
    Current.Text = std::move(Text);
    return;
  }

  Diags.error(Current.Loc,
              std::string("unexpected character '") + C + "'");
  Current.Kind = TokenKind::Error;
  bump();
}
