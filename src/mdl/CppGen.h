//===- mdl/CppGen.h - Emit machine descriptions as C++ tables --*- C++ -*-===//
///
/// \file
/// Emits a machine description as a self-contained C++ header of constexpr
/// tables -- the form production compilers embed their (reduced) machine
/// descriptions in. Together with mdlreduce this completes the paper's
/// intended toolchain: hardware-level MDL in, verified reduced description
/// out, compiled into the scheduler as static data.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_MDL_CPPGEN_H
#define RMD_MDL_CPPGEN_H

#include "mdesc/MachineDescription.h"

#include <string>
#include <string_view>

namespace rmd {

/// Renders \p MD (expanded) as a C++17 header in namespace \p Namespace.
/// The header defines:
///   - kNumResources, kNumOperations, kMaxTableLength;
///   - kResourceNames[];
///   - Usage {Resource, Cycle} and one constexpr usage array per operation;
///   - Operation {Name, Usages, NumUsages} and kOperations[].
std::string writeCppTables(const MachineDescription &MD,
                           std::string_view Namespace);

} // namespace rmd

#endif // RMD_MDL_CPPGEN_H
