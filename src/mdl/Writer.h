//===- mdl/Writer.h - Machine description serialization --------*- C++ -*-===//
///
/// \file
/// Serializes a MachineDescription back to MDL text. writeMdl() and
/// parseMdl() round-trip: parse(write(MD)) == MD (asserted by tests for
/// every builtin machine and for reduced descriptions).
///
//===----------------------------------------------------------------------===//

#ifndef RMD_MDL_WRITER_H
#define RMD_MDL_WRITER_H

#include "mdesc/MachineDescription.h"

#include <string>

namespace rmd {

/// Renders \p MD as MDL text.
std::string writeMdl(const MachineDescription &MD);

} // namespace rmd

#endif // RMD_MDL_WRITER_H
