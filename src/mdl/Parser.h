//===- mdl/Parser.h - Machine description language parser ------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser for the MDL (see Lexer.h for the grammar by
/// example). Grammar:
///
///   file        := machine EOF
///   machine     := 'machine' name '{' (resources | operation)* '}'
///   resources   := 'resources' name (',' name)* ';'
///   operation   := 'operation' name annotation* '{' body '}'
///   annotation  := 'latency' INT | 'role' name
///   body        := alternative+ | usage*        (usages = one alternative)
///   alternative := 'alternative' '{' usage* '}'
///   usage       := name 'at' INT ('..' INT)? ';'
///
/// Annotations carry the scheduling metadata of a MachineModel (producer
/// latency and workload role); plain parseMdl() ignores them, and
/// machines/MdlModel.h resolves them into a MachineModel.
///
/// Errors are reported with source locations through the DiagnosticEngine;
/// the parser returns std::nullopt if any error occurred.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_MDL_PARSER_H
#define RMD_MDL_PARSER_H

#include "mdesc/MachineDescription.h"

#include <optional>
#include <string_view>

namespace rmd {

/// Per-operation annotations collected while parsing (parallel to the
/// returned description's operation ids). Latency -1 / empty role mean
/// "not annotated".
struct MdlAnnotations {
  std::vector<int> Latency;
  std::vector<std::string> Role;
};

/// Parses an MDL buffer into a machine description. When \p Annotations is
/// non-null, per-operation latency/role annotations are stored there.
std::optional<MachineDescription>
parseMdl(std::string_view Input, DiagnosticEngine &Diags,
         MdlAnnotations *Annotations = nullptr);

} // namespace rmd

#endif // RMD_MDL_PARSER_H
