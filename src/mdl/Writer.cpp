//===- mdl/Writer.cpp -----------------------------------------------------===//

#include "mdl/Writer.h"

using namespace rmd;

/// Appends the usages of \p RT, one per line with \p Indent, merging
/// consecutive cycles of one resource into ranges.
static void writeUsages(std::string &Out, const MachineDescription &MD,
                        const ReservationTable &RT, const char *Indent) {
  const auto &Usages = RT.usages();
  for (size_t I = 0; I < Usages.size();) {
    ResourceId R = Usages[I].Resource;
    int First = Usages[I].Cycle;
    int Last = First;
    size_t J = I + 1;
    while (J < Usages.size() && Usages[J].Resource == R &&
           Usages[J].Cycle == Last + 1) {
      ++Last;
      ++J;
    }
    Out += Indent;
    Out += MD.resourceName(R);
    Out += " at ";
    Out += std::to_string(First);
    if (Last != First) {
      Out += " .. ";
      Out += std::to_string(Last);
    }
    Out += ";\n";
    I = J;
  }
}

std::string rmd::writeMdl(const MachineDescription &MD) {
  std::string Out;
  Out += "machine " + MD.name() + " {\n";

  if (MD.numResources() > 0) {
    Out += "  resources ";
    for (ResourceId R = 0; R < MD.numResources(); ++R) {
      if (R != 0)
        Out += ", ";
      Out += MD.resourceName(R);
    }
    Out += ";\n";
  }

  for (const Operation &Op : MD.operations()) {
    Out += "\n  operation " + Op.Name + " {\n";
    if (Op.Alternatives.size() == 1) {
      writeUsages(Out, MD, Op.Alternatives.front(), "    ");
    } else {
      for (const ReservationTable &RT : Op.Alternatives) {
        Out += "    alternative {\n";
        writeUsages(Out, MD, RT, "      ");
        Out += "    }\n";
      }
    }
    Out += "  }\n";
  }
  Out += "}\n";
  return Out;
}
