//===- mdl/Lexer.h - Machine description language tokens -------*- C++ -*-===//
///
/// \file
/// Tokenizer for the textual machine description language (MDL). The
/// format lets machine descriptions live outside the compiler binary in a
/// form close to the hardware structure, which the reducer then compiles
/// into an efficient internal description (the paper's intended workflow).
///
/// Example:
/// \code
///   # the paper's Figure 1 machine
///   machine fig1 {
///     resources r0, r1, r2, r3, r4;
///     operation A { r0 at 0; r1 at 1; r2 at 2; }
///     operation B {
///       r1 at 0; r2 at 1; r3 at 2 .. 5; r4 at 6 .. 7;
///     }
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef RMD_MDL_LEXER_H
#define RMD_MDL_LEXER_H

#include "support/Diagnostics.h"

#include <string>
#include <string_view>

namespace rmd {

/// Token kinds of the MDL.
enum class TokenKind {
  Identifier, ///< names; also carries keywords (resolved by the parser)
  Integer,
  LBrace,
  RBrace,
  Comma,
  Semicolon,
  Colon,
  Arrow, ///< "->", used by the loop-graph format
  DotDot,
  EndOfFile,
  Error,
};

/// One token with its source range start.
struct Token {
  TokenKind Kind = TokenKind::Error;
  std::string Text;
  long Value = 0; ///< Integer tokens only.
  SourceLocation Loc;

  bool is(TokenKind K) const { return Kind == K; }
  bool isKeyword(std::string_view KW) const {
    return Kind == TokenKind::Identifier && Text == KW;
  }
};

/// A one-token-lookahead lexer over an in-memory buffer. Reports malformed
/// input through the DiagnosticEngine and produces an Error token.
class Lexer {
public:
  Lexer(std::string_view Input, DiagnosticEngine &Diags);

  /// Returns the current token without consuming it.
  const Token &peek() const { return Current; }

  /// Consumes and returns the current token.
  Token take();

  SourceLocation location() const { return Current.Loc; }

private:
  void advance();
  char cur() const { return Pos < Input.size() ? Input[Pos] : '\0'; }
  void bump();

  std::string_view Input;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
  Token Current;
};

} // namespace rmd

#endif // RMD_MDL_LEXER_H
