//===- machines/Alpha21064.cpp - Reconstructed DEC Alpha 21064 ------------===//
//
// A reconstruction of the DEC Alpha 21064 machine description used by Bala
// & Rubin (MICRO-28 '95) and by the paper (Table 3: 12 operation classes,
// 293 forbidden latencies, all < 58). The 21064 is a dual-issue machine:
// one instruction to the integer/memory/branch side (EBox/ABox/BBox) and
// one to the floating-point side (FBox) per cycle.
//
// The long forbidden latencies come from the two non-pipelined units:
//   - the integer multiplier (IMUL busy 19/23 cycles for 32/64-bit);
//   - the FP divider (busy ~30 cycles single, ~58 cycles double -- the
//     paper's "largest forbidden latency is 58 cycles").
//
// As with the other reconstructions, the description carries the
// *redundant* hardware rows a straight transcription would (per-side
// decode latches, secondary execute stages, cache tag port, FP writeback,
// divider control), which the reduction strips.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"

using namespace rmd;

MachineModel rmd::makeAlpha21064() {
  MachineModel M;
  M.MD.setName("alpha21064");
  auto Res = [&](const char *Name) { return M.MD.addResource(Name); };
  auto Op = [&](const char *Name, int Latency, OpRole Role,
                ReservationTable T) {
    M.MD.addOperation(Name, std::move(T));
    M.Latency.push_back(Latency);
    M.Role.push_back(Role);
  };

  // Issue slots and decode latches: one integer-side and one float-side
  // instruction per cycle.
  ResourceId IssueI = Res("IssueI");
  ResourceId DecodeI = Res("DecodeI");
  ResourceId IssueF = Res("IssueF");
  ResourceId DecodeF = Res("DecodeF");

  // EBox (integer execute) with its second stage, the shifter, and the
  // non-pipelined integer multiplier.
  ResourceId EAlu = Res("EAlu");
  ResourceId EAlu2 = Res("EAlu2");
  ResourceId EShift = Res("EShift");
  ResourceId IMul = Res("IMul");

  // ABox (load/store): address adder, data cache data and tag ports,
  // write buffer.
  ResourceId AAdd = Res("AAdd");
  ResourceId DCache = Res("DCache");
  ResourceId DTag = Res("DTag");
  ResourceId WBuf = Res("WBuf");

  // BBox (branch).
  ResourceId BCond = Res("BCond");

  // FBox: one shared add/multiply pipeline plus the non-pipelined divider
  // with its control row, and the FP register writeback port.
  ResourceId F1 = Res("F1");
  ResourceId F2 = Res("F2");
  ResourceId F3 = Res("F3");
  ResourceId FRound = Res("FRound");
  ResourceId FWrite = Res("FWrite");
  ResourceId FDiv = Res("FDiv");
  ResourceId FDivCtl = Res("FDivCtl");

  /// Integer-side issue stages.
  auto BaseI = [&]() {
    ReservationTable T;
    T.addUsage(IssueI, 0);
    T.addUsage(DecodeI, 0);
    return T;
  };
  /// Float-side issue stages.
  auto BaseF = [&]() {
    ReservationTable T;
    T.addUsage(IssueF, 0);
    T.addUsage(DecodeF, 0);
    return T;
  };

  {
    ReservationTable T = BaseI();
    T.addUsage(EAlu, 1);
    T.addUsage(EAlu2, 2);
    Op("ialu", 1, OpRole::IntAlu, std::move(T));
  }
  {
    ReservationTable T = BaseI();
    T.addUsage(EShift, 1);
    Op("shift", 2, OpRole::IntAlu, std::move(T));
  }
  {
    // 32-bit integer multiply: issues down EBox, then busies the
    // multiplier 19 cycles.
    ReservationTable T = BaseI();
    T.addUsage(EAlu, 1);
    T.addUsage(EAlu2, 2);
    T.addUsageRange(IMul, 1, 19);
    Op("imull", 21, OpRole::IntAlu, std::move(T));
  }
  {
    // 64-bit integer multiply: busies the multiplier 23 cycles.
    ReservationTable T = BaseI();
    T.addUsage(EAlu, 1);
    T.addUsage(EAlu2, 2);
    T.addUsageRange(IMul, 1, 23);
    Op("imulq", 23, OpRole::IntAlu, std::move(T));
  }
  {
    ReservationTable T = BaseI();
    T.addUsage(AAdd, 1);
    T.addUsage(DCache, 2);
    T.addUsage(DTag, 2);
    Op("load", 3, OpRole::Load, std::move(T));
  }
  {
    ReservationTable T = BaseI();
    T.addUsage(AAdd, 1);
    T.addUsage(DCache, 2);
    T.addUsage(DTag, 2);
    T.addUsage(WBuf, 3);
    Op("store", 1, OpRole::Store, std::move(T));
  }
  {
    ReservationTable T = BaseI();
    T.addUsage(BCond, 1);
    Op("br", 1, OpRole::Branch, std::move(T));
  }
  {
    // FP conditional branch: integer-side issue, tests FBox condition.
    ReservationTable T = BaseI();
    T.addUsage(BCond, 1);
    T.addUsage(F1, 1);
    Op("fbr", 1, OpRole::Branch, std::move(T));
  }
  {
    ReservationTable T = BaseF();
    T.addUsage(F1, 1);
    T.addUsage(F2, 2);
    T.addUsage(F3, 3);
    T.addUsage(FRound, 4);
    T.addUsage(FWrite, 5);
    Op("fadd", 6, OpRole::FloatAdd, std::move(T));
  }
  {
    // Multiply holds the second pipeline stage two cycles (partially
    // pipelined at the F2 stage).
    ReservationTable T = BaseF();
    T.addUsage(F1, 1);
    T.addUsageRange(F2, 2, 3);
    T.addUsage(F3, 4);
    T.addUsage(FRound, 5);
    T.addUsage(FWrite, 6);
    Op("fmul", 6, OpRole::FloatMul, std::move(T));
  }
  {
    ReservationTable T = BaseF();
    T.addUsage(F1, 1);
    T.addUsageRange(FDiv, 2, 31);
    T.addUsageRange(FDivCtl, 2, 31);
    T.addUsage(FRound, 32);
    T.addUsage(FWrite, 33);
    Op("fdivs", 34, OpRole::FloatDiv, std::move(T));
  }
  {
    // Double-precision divide: busies the divider through cycle 58, the
    // source of the machine's largest forbidden latencies.
    ReservationTable T = BaseF();
    T.addUsage(F1, 1);
    T.addUsageRange(FDiv, 2, 58);
    T.addUsageRange(FDivCtl, 2, 58);
    T.addUsage(FRound, 59);
    T.addUsage(FWrite, 60);
    Op("fdivd", 61, OpRole::FloatDiv, std::move(T));
  }
  {
    ReservationTable T = BaseF();
    T.addUsage(F1, 1);
    T.addUsage(FRound, 2);
    T.addUsage(FWrite, 3);
    Op("cvt", 3, OpRole::Convert, std::move(T));
  }

  return M;
}
