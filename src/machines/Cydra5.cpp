//===- machines/Cydra5.cpp - Reconstructed Cydra 5 description ------------===//
//
// A reconstruction of the Cydra 5 numeric processor machine description
// (Beck, Yen & Anderson, "The Cydra 5 minisupercomputer", 1993; Dehnert &
// Towle, "Compiling for the Cydra 5", 1993). The configuration matches the
// paper's: 7 functional units -- 2 memory ports, 2 address/integer units,
// 1 FP adder, 1 FP multiplier, 1 branch unit.
//
// The original compiler description (56 resources, 152 usage patterns, 52
// operation classes) is unpublished; this model reproduces its structural
// idioms instead:
//   - descriptions written close to the hardware, with *redundant*
//     resources (input latches, transfer stages, iteration control) whose
//     conflicts are implied by other rows -- exactly what the automated
//     reduction is meant to strip;
//   - deep, fully pipelined paths (memory, FP adder);
//   - partially pipelined stages (double-precision ops hold a stage for 2
//     consecutive cycles);
//   - long non-pipelined iterative stages (divide and square root execute
//     on the multiplier's iteration stage);
//   - shared buses creating cross-unit conflicts (2 FP result buses, a
//     predicate-file write port);
//   - alternative resource usages (either memory port, either address
//     unit, either result bus).
//
// The pseudo-randomly banked main memory sustains one access per port per
// cycle, so the bank stage is held for a single cycle per access.
//
// Latencies are representative of the machine's published ranges and are
// what the modulo scheduler uses for dependence delays.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"

using namespace rmd;

namespace {

/// Builder utilities shared by the machine model constructors.
struct ModelBuilder {
  MachineModel Model;

  ResourceId res(const std::string &Name) {
    return Model.MD.addResource(Name);
  }

  void op(const std::string &Name, int Latency, OpRole Role,
          std::vector<ReservationTable> Alternatives) {
    Model.MD.addOperation(Name, std::move(Alternatives));
    Model.Latency.push_back(Latency);
    Model.Role.push_back(Role);
  }
};

} // namespace

MachineModel rmd::makeCydra5() {
  ModelBuilder B;
  B.Model.MD.setName("cydra5");

  // Functional unit issue slots: one operation per unit per MultiOp. Each
  // unit also latches its instruction (a redundant hardware resource).
  ResourceId SlotMem[2] = {B.res("SlotMem0"), B.res("SlotMem1")};
  ResourceId SlotAdr[2] = {B.res("SlotAdr0"), B.res("SlotAdr1")};
  ResourceId SlotFAdd = B.res("SlotFAdd");
  ResourceId SlotFMul = B.res("SlotFMul");
  ResourceId SlotBr = B.res("SlotBr");
  ResourceId MemIn[2] = {B.res("MemIn0"), B.res("MemIn1")};
  ResourceId AdrIn[2] = {B.res("AdrIn0"), B.res("AdrIn1")};
  ResourceId FAddIn = B.res("FAddIn");
  ResourceId FMulIn = B.res("FMulIn");
  ResourceId BrIn = B.res("BrIn");

  // Memory port pipelines: address latch, banked memory (1 cycle per
  // access), transfer stage, data return, store data path.
  ResourceId MemAddr[2] = {B.res("MemAddr0"), B.res("MemAddr1")};
  ResourceId MemBank[2] = {B.res("MemBank0"), B.res("MemBank1")};
  ResourceId MemXfer[2] = {B.res("MemXfer0"), B.res("MemXfer1")};
  ResourceId MemData[2] = {B.res("MemData0"), B.res("MemData1")};
  ResourceId StData[2] = {B.res("StData0"), B.res("StData1")};

  // Address/integer ALUs with their register write ports.
  ResourceId AdrAlu[2] = {B.res("AdrAlu0"), B.res("AdrAlu1")};
  ResourceId AdrWB[2] = {B.res("AdrWB0"), B.res("AdrWB1")};

  // FP adder pipeline: align, two add stages, round (also used by
  // conversions), output latch.
  ResourceId FAddAlign = B.res("FAddAlign");
  ResourceId FAdd1 = B.res("FAdd1");
  ResourceId FAdd2 = B.res("FAdd2");
  ResourceId FAddRound = B.res("FAddRound");
  ResourceId FAddOut = B.res("FAddOut");

  // FP multiplier pipeline: Booth recode, two product stages, iteration
  // stage + iteration control (divide/sqrt loop here, non-pipelined),
  // round, output latch.
  ResourceId FMulBooth = B.res("FMulBooth");
  ResourceId FMul1 = B.res("FMul1");
  ResourceId FMul2 = B.res("FMul2");
  ResourceId FMulIter = B.res("FMulIter");
  ResourceId FMulIterCtl = B.res("FMulIterCtl");
  ResourceId FMulRound = B.res("FMulRound");
  ResourceId FMulOut = B.res("FMulOut");

  // Two result buses shared by the FP units; one predicate-file write
  // port shared by the compare operations of the FP adder and the address
  // units.
  ResourceId ResultBus[2] = {B.res("ResultBus0"), B.res("ResultBus1")};
  ResourceId PredWrite = B.res("PredWrite");

  // Branch unit: condition evaluation, instruction fetch stream, loop
  // control update (brtop).
  ResourceId BrCond = B.res("BrCond");
  ResourceId IFetch = B.res("IFetch");
  ResourceId LoopCtl = B.res("LoopCtl");

  // --- Memory operations: either port. -----------------------------------
  auto LoadAlt = [&](int Port) {
    ReservationTable T;
    T.addUsage(SlotMem[Port], 0);
    T.addUsage(MemIn[Port], 0);
    T.addUsage(MemAddr[Port], 1);
    T.addUsage(MemBank[Port], 2);
    T.addUsage(MemXfer[Port], 3);
    T.addUsage(MemData[Port], 4);
    return T;
  };
  B.op("load", 5, OpRole::Load, {LoadAlt(0), LoadAlt(1)});

  auto StoreAlt = [&](int Port) {
    ReservationTable T;
    T.addUsage(SlotMem[Port], 0);
    T.addUsage(MemIn[Port], 0);
    T.addUsage(MemAddr[Port], 1);
    T.addUsage(StData[Port], 1);
    T.addUsage(MemBank[Port], 2);
    return T;
  };
  B.op("store", 1, OpRole::Store, {StoreAlt(0), StoreAlt(1)});

  // --- Address/integer operations: either address unit. ------------------
  auto AdrAlt = [&](int Unit, bool Predicate) {
    ReservationTable T;
    T.addUsage(SlotAdr[Unit], 0);
    T.addUsage(AdrIn[Unit], 0);
    T.addUsage(AdrAlu[Unit], 1);
    if (Predicate)
      T.addUsage(PredWrite, 2);
    else
      T.addUsage(AdrWB[Unit], 2);
    return T;
  };
  B.op("addr.add", 1, OpRole::AddrCalc,
       {AdrAlt(0, false), AdrAlt(1, false)});
  B.op("iadd", 1, OpRole::IntAlu, {AdrAlt(0, false), AdrAlt(1, false)});
  B.op("icmp", 1, OpRole::Compare, {AdrAlt(0, true), AdrAlt(1, true)});
  B.op("move", 1, OpRole::Move, {AdrAlt(0, false), AdrAlt(1, false)});

  // --- FP adder operations: either result bus. ---------------------------
  auto FAddAlt = [&](int Bus, bool Double) {
    ReservationTable T;
    T.addUsage(SlotFAdd, 0);
    T.addUsage(FAddIn, 0);
    T.addUsage(FAddAlign, 1);
    T.addUsage(FAdd1, 2);
    int Out;
    if (Double) {
      // Double precision holds the second add stage 2 consecutive cycles.
      T.addUsageRange(FAdd2, 3, 4);
      T.addUsage(FAddRound, 5);
      Out = 6;
    } else {
      T.addUsage(FAdd2, 3);
      T.addUsage(FAddRound, 4);
      Out = 5;
    }
    T.addUsage(FAddOut, Out);
    T.addUsage(ResultBus[Bus], Out);
    return T;
  };
  B.op("fadd.s", 6, OpRole::FloatAdd, {FAddAlt(0, false), FAddAlt(1, false)});
  B.op("fadd.d", 7, OpRole::FloatAdd, {FAddAlt(0, true), FAddAlt(1, true)});

  auto CvtAlt = [&](int Bus) {
    ReservationTable T;
    T.addUsage(SlotFAdd, 0);
    T.addUsage(FAddIn, 0);
    T.addUsage(FAddAlign, 1);
    T.addUsage(FAddRound, 2);
    T.addUsage(FAddOut, 3);
    T.addUsage(ResultBus[Bus], 3);
    return T;
  };
  B.op("cvt", 4, OpRole::Convert, {CvtAlt(0), CvtAlt(1)});

  {
    // FP compare: writes the shared predicate file, not a result bus.
    ReservationTable T;
    T.addUsage(SlotFAdd, 0);
    T.addUsage(FAddIn, 0);
    T.addUsage(FAddAlign, 1);
    T.addUsage(FAdd1, 2);
    T.addUsage(PredWrite, 3);
    B.op("fcmp", 3, OpRole::Compare, {T});
  }

  // --- FP multiplier operations: either result bus. ----------------------
  auto FMulAlt = [&](int Bus, bool Double) {
    ReservationTable T;
    T.addUsage(SlotFMul, 0);
    T.addUsage(FMulIn, 0);
    T.addUsage(FMulBooth, 1);
    T.addUsage(FMul1, 2);
    int Out;
    if (Double) {
      T.addUsageRange(FMul2, 3, 4);
      T.addUsage(FMulRound, 5);
      Out = 6;
    } else {
      T.addUsage(FMul2, 3);
      T.addUsage(FMulRound, 4);
      Out = 5;
    }
    T.addUsage(FMulOut, Out);
    T.addUsage(ResultBus[Bus], Out);
    return T;
  };
  B.op("fmul.s", 6, OpRole::FloatMul, {FMulAlt(0, false), FMulAlt(1, false)});
  B.op("fmul.d", 7, OpRole::FloatMul, {FMulAlt(0, true), FMulAlt(1, true)});

  // Integer multiply executes on the FP multiplier front stages.
  {
    ReservationTable T;
    T.addUsage(SlotFMul, 0);
    T.addUsage(FMulIn, 0);
    T.addUsage(FMulBooth, 1);
    T.addUsage(FMul1, 2);
    T.addUsage(FMul2, 3);
    B.op("imul", 4, OpRole::IntAlu, {T});
  }

  // Divide and square root iterate on the multiplier (non-pipelined); the
  // iteration control row shadows the datapath row cycle for cycle.
  auto IterAlt = [&](int Bus, int IterLast) {
    ReservationTable T;
    T.addUsage(SlotFMul, 0);
    T.addUsage(FMulIn, 0);
    T.addUsage(FMulBooth, 1);
    T.addUsageRange(FMulIter, 2, IterLast);
    T.addUsageRange(FMulIterCtl, 2, IterLast);
    T.addUsage(FMulRound, IterLast + 1);
    T.addUsage(FMulOut, IterLast + 2);
    T.addUsage(ResultBus[Bus], IterLast + 2);
    return T;
  };
  B.op("fdiv.s", 12, OpRole::FloatDiv, {IterAlt(0, 9), IterAlt(1, 9)});
  B.op("fdiv.d", 20, OpRole::FloatDiv, {IterAlt(0, 17), IterAlt(1, 17)});
  B.op("fsqrt.d", 24, OpRole::FloatDiv, {IterAlt(0, 21), IterAlt(1, 21)});

  // --- Branch unit. -------------------------------------------------------
  {
    ReservationTable T;
    T.addUsage(SlotBr, 0);
    T.addUsage(BrIn, 0);
    T.addUsage(BrCond, 1);
    T.addUsage(IFetch, 2);
    B.op("branch", 1, OpRole::Branch, {T});
  }
  {
    // brtop: the software-pipelining loop-control branch.
    ReservationTable T;
    T.addUsage(SlotBr, 0);
    T.addUsage(BrIn, 0);
    T.addUsage(BrCond, 1);
    T.addUsage(LoopCtl, 1);
    T.addUsage(IFetch, 2);
    B.op("brtop", 1, OpRole::Branch, {T});
  }

  return B.Model;
}
