//===- machines/Fig1Machine.cpp - The paper's example machine -------------===//
//
// Figure 1a of the paper: a hypothetical machine with 2 operations and 5
// resources. Operation A is a fully pipelined functional unit; operation B
// is partially pipelined (resource 3 is a multiply stage held 4 consecutive
// cycles; resource 4 a rounding stage held 2 cycles).
//
// Usage sets (Figure 1a):
//   A: A0={0}, A1={1}, A2={2}
//   B: B1={0}, B2={1}, B3={2,3,4,5}, B4={6,7}
//
// Expected forbidden latencies (Figure 1b):
//   F(A,A)={0}, F(A,B)={-1}, F(B,A)={1}, F(B,B)={-3..3}
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"

using namespace rmd;

MachineDescription rmd::makeFig1Machine() {
  MachineDescription MD("fig1");
  ResourceId R0 = MD.addResource("r0");
  ResourceId R1 = MD.addResource("r1");
  ResourceId R2 = MD.addResource("r2");
  ResourceId R3 = MD.addResource("r3");
  ResourceId R4 = MD.addResource("r4");

  ReservationTable A;
  A.addUsage(R0, 0);
  A.addUsage(R1, 1);
  A.addUsage(R2, 2);
  MD.addOperation("A", std::move(A));

  ReservationTable B;
  B.addUsage(R1, 0);
  B.addUsage(R2, 1);
  B.addUsageRange(R3, 2, 5);
  B.addUsageRange(R4, 6, 7);
  MD.addOperation("B", std::move(B));
  return MD;
}
