//===- machines/ToyVliw.cpp - Small VLIW used by tests --------------------===//
//
// A hand-analyzable 2-issue VLIW: two issue slots, ALUs behind each slot
// (alternative usages), a memory pipeline on slot 0 only, a non-pipelined
// multiplier on slot 1 only, and one writeback bus shared by everything.
// Small enough to verify reductions by hand, rich enough to exercise
// alternatives, shared buses and multi-cycle stages.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"

using namespace rmd;

MachineModel rmd::makeToyVliw() {
  MachineModel M;
  M.MD.setName("toyvliw");
  auto Res = [&](const char *Name) { return M.MD.addResource(Name); };

  ResourceId Slot0 = Res("Slot0");
  ResourceId Slot1 = Res("Slot1");
  ResourceId Alu0 = Res("Alu0");
  ResourceId Alu1 = Res("Alu1");
  ResourceId Mem = Res("Mem");
  ResourceId Mul = Res("Mul");
  ResourceId WbBus = Res("WbBus");

  {
    // ALU op: either slot/ALU pair, shared writeback at cycle 1.
    ReservationTable T0;
    T0.addUsage(Slot0, 0);
    T0.addUsage(Alu0, 0);
    T0.addUsage(WbBus, 1);
    ReservationTable T1;
    T1.addUsage(Slot1, 0);
    T1.addUsage(Alu1, 0);
    T1.addUsage(WbBus, 1);
    M.MD.addOperation("alu", {T0, T1});
    M.Latency.push_back(1);
    M.Role.push_back(OpRole::IntAlu);
  }
  {
    // Load: slot 0 only, 2-cycle memory, writeback at cycle 3.
    ReservationTable T;
    T.addUsage(Slot0, 0);
    T.addUsageRange(Mem, 1, 2);
    T.addUsage(WbBus, 3);
    M.MD.addOperation("load", T);
    M.Latency.push_back(3);
    M.Role.push_back(OpRole::Load);
  }
  {
    // Store: slot 0 only, 2-cycle memory, no writeback.
    ReservationTable T;
    T.addUsage(Slot0, 0);
    T.addUsageRange(Mem, 1, 2);
    M.MD.addOperation("store", T);
    M.Latency.push_back(1);
    M.Role.push_back(OpRole::Store);
  }
  {
    // Multiply: slot 1 only, non-pipelined 3-cycle multiplier.
    ReservationTable T;
    T.addUsage(Slot1, 0);
    T.addUsageRange(Mul, 1, 3);
    T.addUsage(WbBus, 4);
    M.MD.addOperation("mul", T);
    M.Latency.push_back(4);
    M.Role.push_back(OpRole::FloatMul);
  }
  {
    // Branch: either slot, no writeback.
    ReservationTable T0;
    T0.addUsage(Slot0, 0);
    ReservationTable T1;
    T1.addUsage(Slot1, 0);
    M.MD.addOperation("br", {T0, T1});
    M.Latency.push_back(1);
    M.Role.push_back(OpRole::Branch);
  }

  return M;
}
