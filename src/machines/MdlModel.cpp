//===- machines/MdlModel.cpp ----------------------------------------------===//

#include "machines/MdlModel.h"

#include "mdl/Parser.h"
#include "mdl/Writer.h"

#include <cstring>

using namespace rmd;

namespace {

struct RoleSpelling {
  OpRole Role;
  const char *Name;
};

constexpr RoleSpelling Spellings[] = {
    {OpRole::IntAlu, "int-alu"},     {OpRole::AddrCalc, "addr-calc"},
    {OpRole::Load, "load"},          {OpRole::Store, "store"},
    {OpRole::FloatAdd, "float-add"}, {OpRole::FloatMul, "float-mul"},
    {OpRole::FloatDiv, "float-div"}, {OpRole::Convert, "convert"},
    {OpRole::Compare, "compare"},    {OpRole::Move, "move"},
    {OpRole::Branch, "branch"},
};

} // namespace

const char *rmd::roleName(OpRole Role) {
  for (const RoleSpelling &S : Spellings)
    if (S.Role == Role)
      return S.Name;
  return "int-alu";
}

std::optional<OpRole> rmd::roleFromName(std::string_view Name) {
  for (const RoleSpelling &S : Spellings)
    if (Name == S.Name)
      return S.Role;
  return std::nullopt;
}

std::optional<MachineModel> rmd::parseMdlModel(std::string_view Input,
                                               DiagnosticEngine &Diags) {
  MdlAnnotations Annotations;
  std::optional<MachineDescription> MD =
      parseMdl(Input, Diags, &Annotations);
  if (!MD)
    return std::nullopt;

  MachineModel Model;
  Model.MD = std::move(*MD);
  for (OpId Op = 0; Op < Model.MD.numOperations(); ++Op) {
    const Operation &O = Model.MD.operation(Op);
    int Latency = Annotations.Latency[Op];
    if (Latency < 0) {
      Latency = std::max(1, O.Alternatives.front().length());
      Diags.warning({}, "operation '" + O.Name +
                            "' has no latency annotation; defaulting to " +
                            std::to_string(Latency));
    }
    OpRole Role = OpRole::IntAlu;
    if (Annotations.Role[Op].empty()) {
      Diags.warning({}, "operation '" + O.Name +
                            "' has no role annotation; defaulting to "
                            "int-alu");
    } else if (std::optional<OpRole> Parsed =
                   roleFromName(Annotations.Role[Op])) {
      Role = *Parsed;
    } else {
      Diags.error({}, "operation '" + O.Name + "' has unknown role '" +
                          Annotations.Role[Op] + "'");
      return std::nullopt;
    }
    Model.Latency.push_back(Latency);
    Model.Role.push_back(Role);
  }
  return Model;
}

std::string rmd::writeMdlModel(const MachineModel &Model) {
  // Render the plain description, then splice the annotations into each
  // operation header line (keeps one writer implementation).
  std::string Plain = writeMdl(Model.MD);
  std::string Out;
  Out.reserve(Plain.size() + Model.MD.numOperations() * 24);

  size_t NextOp = 0;
  size_t Pos = 0;
  while (Pos < Plain.size()) {
    size_t LineEnd = Plain.find('\n', Pos);
    if (LineEnd == std::string::npos)
      LineEnd = Plain.size();
    std::string_view Line(&Plain[Pos], LineEnd - Pos);

    constexpr std::string_view Prefix = "  operation ";
    if (Line.rfind(Prefix, 0) == 0 && NextOp < Model.MD.numOperations()) {
      // "  operation <name> {" -> "  operation <name> latency L role R {"
      size_t BracePos = Line.rfind(" {");
      Out.append(Line.substr(0, BracePos));
      Out += " latency " + std::to_string(Model.Latency[NextOp]);
      Out += " role ";
      Out += roleName(Model.Role[NextOp]);
      Out.append(Line.substr(BracePos));
      ++NextOp;
    } else {
      Out.append(Line);
    }
    Out += '\n';
    Pos = LineEnd + 1;
  }
  return Out;
}
