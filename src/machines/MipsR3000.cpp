//===- machines/MipsR3000.cpp - Reconstructed MIPS R3000/R3010 ------------===//
//
// A reconstruction of the MIPS R3000 + R3010 FPA description used by
// Proebsting & Fraser (POPL'94) and by the paper (Table 4: 15 operation
// classes, 428 forbidden latencies, all < 34). The R3000 is single-issue;
// structural hazards come from two partially/non-pipelined partners:
//   - the integer multiply/divide unit (multiply busy 12 cycles, divide
//     busy 34 -- the machine's largest forbidden latency);
//   - the R3010 floating-point accelerator, whose add/multiply/divide
//     paths share unpack and pack stages.
//
// Following the paper's workflow, the description is written close to the
// hardware, including the *redundant* rows a real description carries: the
// five R3000 pipeline stages every instruction marches through, the
// instruction bus, the FPA input latch and result FIFO. Their conflicts
// are implied by the issue stage; the reducer strips them automatically.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"

using namespace rmd;

MachineModel rmd::makeMipsR3000() {
  MachineModel M;
  M.MD.setName("mips-r3000-r3010");
  auto Res = [&](const char *Name) { return M.MD.addResource(Name); };

  // Single issue: every operation holds the issue (RD) stage at cycle 0
  // and marches through the 5-stage pipeline; the pipeline-stage rows are
  // redundant with the issue row, as in a straight hardware transcription.
  ResourceId Issue = Res("Issue");
  ResourceId IBus = Res("IBus");
  ResourceId StageIF = Res("StageIF");
  ResourceId StageEX = Res("StageEX");
  ResourceId StageMEM = Res("StageMEM");
  ResourceId StageWB = Res("StageWB");

  // Integer pipeline data-memory stage and the multiply/divide unit.
  ResourceId Mem = Res("Mem");
  ResourceId DBus = Res("DBus");
  ResourceId MDU = Res("MDU");
  ResourceId MDUIn = Res("MDUIn");

  // R3010 FPA: shared unpack/pack stages around dedicated add, multiply
  // (2-stage, partially pipelined) and divide (non-pipelined) paths, with
  // an input latch and a result FIFO slot.
  ResourceId FpIn = Res("FpIn");
  ResourceId FpUnpack = Res("FpUnpack");
  ResourceId FpAdd = Res("FpAdd");
  ResourceId FpMul1 = Res("FpMul1");
  ResourceId FpMul2 = Res("FpMul2");
  ResourceId FpDiv = Res("FpDiv");
  ResourceId FpPack = Res("FpPack");
  ResourceId FpResult = Res("FpResult");

  /// Starts a table with the stages every instruction occupies.
  auto Base = [&]() {
    ReservationTable T;
    T.addUsage(Issue, 0);
    T.addUsage(IBus, 0);
    T.addUsage(StageIF, 0);
    T.addUsage(StageEX, 1);
    T.addUsage(StageMEM, 2);
    T.addUsage(StageWB, 3);
    return T;
  };

  auto Op = [&](const char *Name, int Latency, OpRole Role,
                ReservationTable T) {
    M.MD.addOperation(Name, std::move(T));
    M.Latency.push_back(Latency);
    M.Role.push_back(Role);
  };

  Op("ialu", 1, OpRole::IntAlu, Base());
  Op("branch", 1, OpRole::Branch, Base());

  {
    ReservationTable T = Base();
    T.addUsage(Mem, 1);
    T.addUsage(DBus, 2);
    Op("load", 2, OpRole::Load, std::move(T));
  }
  {
    ReservationTable T = Base();
    T.addUsage(Mem, 1);
    T.addUsage(DBus, 2);
    Op("store", 1, OpRole::Store, std::move(T));
  }
  {
    // Integer multiply: MDU busy 12 cycles.
    ReservationTable T = Base();
    T.addUsage(MDUIn, 0);
    T.addUsageRange(MDU, 1, 12);
    Op("mult", 12, OpRole::IntAlu, std::move(T));
  }
  {
    // Integer divide: MDU busy through cycle 34 (largest latency).
    ReservationTable T = Base();
    T.addUsage(MDUIn, 0);
    T.addUsageRange(MDU, 1, 34);
    Op("div", 35, OpRole::IntAlu, std::move(T));
  }
  {
    // Reading HI/LO interlocks one MDU cycle.
    ReservationTable T = Base();
    T.addUsage(MDUIn, 0);
    T.addUsage(MDU, 1);
    Op("mflo", 2, OpRole::Move, std::move(T));
  }
  {
    // CPU <-> FPA register moves pass the unpack stage.
    ReservationTable T = Base();
    T.addUsage(FpIn, 0);
    T.addUsage(FpUnpack, 1);
    Op("mtc1", 2, OpRole::Move, std::move(T));
  }

  /// Starts an FPA table: base stages plus input latch and unpacker.
  auto FpBase = [&]() {
    ReservationTable T = Base();
    T.addUsage(FpIn, 0);
    T.addUsage(FpUnpack, 1);
    return T;
  };
  /// Finishes an FPA table: pack at \p PackCycle, result FIFO next cycle.
  auto FpFinish = [&](ReservationTable &T, int PackCycle) {
    T.addUsage(FpPack, PackCycle);
    T.addUsage(FpResult, PackCycle + 1);
  };

  {
    ReservationTable T = FpBase();
    T.addUsage(FpAdd, 2);
    FpFinish(T, 3);
    Op("add.s", 3, OpRole::FloatAdd, std::move(T));
  }
  {
    ReservationTable T = FpBase();
    T.addUsageRange(FpAdd, 2, 3);
    FpFinish(T, 4);
    Op("add.d", 4, OpRole::FloatAdd, std::move(T));
  }
  {
    ReservationTable T = FpBase();
    T.addUsage(FpMul1, 2);
    T.addUsage(FpMul2, 3);
    FpFinish(T, 4);
    Op("mul.s", 4, OpRole::FloatMul, std::move(T));
  }
  {
    // Double multiply makes a second pass through the multiplier array.
    ReservationTable T = FpBase();
    T.addUsageRange(FpMul1, 2, 3);
    T.addUsageRange(FpMul2, 3, 4);
    FpFinish(T, 5);
    Op("mul.d", 5, OpRole::FloatMul, std::move(T));
  }
  {
    ReservationTable T = FpBase();
    T.addUsageRange(FpDiv, 2, 11);
    FpFinish(T, 12);
    Op("div.s", 12, OpRole::FloatDiv, std::move(T));
  }
  {
    ReservationTable T = FpBase();
    T.addUsageRange(FpDiv, 2, 18);
    FpFinish(T, 19);
    Op("div.d", 19, OpRole::FloatDiv, std::move(T));
  }
  {
    ReservationTable T = FpBase();
    T.addUsage(FpAdd, 2);
    FpFinish(T, 3);
    Op("cvt", 3, OpRole::Convert, std::move(T));
  }
  {
    // FP compare: unpack then compare in the add path, no pack.
    ReservationTable T = FpBase();
    T.addUsage(FpAdd, 2);
    Op("c.cond", 2, OpRole::Compare, std::move(T));
  }

  return M;
}
