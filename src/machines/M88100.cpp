//===- machines/M88100.cpp - Reconstructed Motorola 88100 -----------------===//
//
// A reconstruction of the Motorola 88100, the machine Mueller's automaton
// paper ("Employing finite automata for resource scheduling", MICRO-26)
// targets -- included to cover the third related-work system the paper
// discusses. Single-issue RISC with three concurrent function units:
//   - the integer unit (single cycle);
//   - the data unit (pipelined 3-stage loads/stores);
//   - the floating-point unit: shared decode stage, pipelined add
//     pipeline, partially pipelined multiplier (double precision makes a
//     second pass), and a non-pipelined iterative divider.
//
// As with the other reconstructions, the description is written close to
// the hardware with redundant rows (decode latches, writeback arbitration)
// for the reducer to strip.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"

using namespace rmd;

MachineModel rmd::makeM88100() {
  MachineModel M;
  M.MD.setName("m88100");
  auto Res = [&](const char *Name) { return M.MD.addResource(Name); };
  auto Op = [&](const char *Name, int Latency, OpRole Role,
                ReservationTable T) {
    M.MD.addOperation(Name, std::move(T));
    M.Latency.push_back(Latency);
    M.Role.push_back(Role);
  };

  // Single issue + instruction bus (redundant pair).
  ResourceId Issue = Res("Issue");
  ResourceId IBus = Res("IBus");

  // Data unit pipeline and the shared register writeback arbitration.
  ResourceId DAddr = Res("DAddr");
  ResourceId DMem = Res("DMem");
  ResourceId DLoad = Res("DLoad");
  ResourceId WbArb = Res("WbArb");

  // FP unit: shared decode, add pipeline, 2-stage multiplier, iterative
  // divider with its control row.
  ResourceId FpDecode = Res("FpDecode");
  ResourceId FpAdd1 = Res("FpAdd1");
  ResourceId FpAdd2 = Res("FpAdd2");
  ResourceId FpMul1 = Res("FpMul1");
  ResourceId FpMul2 = Res("FpMul2");
  ResourceId FpDiv = Res("FpDiv");
  ResourceId FpDivCtl = Res("FpDivCtl");
  ResourceId FpWb = Res("FpWb");

  auto Base = [&]() {
    ReservationTable T;
    T.addUsage(Issue, 0);
    T.addUsage(IBus, 0);
    return T;
  };

  {
    ReservationTable T = Base();
    T.addUsage(WbArb, 1);
    Op("int", 1, OpRole::IntAlu, std::move(T));
  }
  {
    ReservationTable T = Base();
    T.addUsage(DAddr, 1);
    T.addUsage(DMem, 2);
    T.addUsage(DLoad, 3);
    T.addUsage(WbArb, 3);
    Op("ld", 3, OpRole::Load, std::move(T));
  }
  {
    ReservationTable T = Base();
    T.addUsage(DAddr, 1);
    T.addUsage(DMem, 2);
    Op("st", 1, OpRole::Store, std::move(T));
  }
  Op("br", 1, OpRole::Branch, Base());

  auto FpBase = [&]() {
    ReservationTable T = Base();
    T.addUsage(FpDecode, 1);
    return T;
  };
  {
    ReservationTable T = FpBase();
    T.addUsage(FpAdd1, 2);
    T.addUsage(FpAdd2, 3);
    T.addUsage(FpWb, 4);
    T.addUsage(WbArb, 4);
    Op("fadd", 4, OpRole::FloatAdd, std::move(T));
  }
  {
    ReservationTable T = FpBase();
    T.addUsage(FpMul1, 2);
    T.addUsage(FpMul2, 3);
    T.addUsage(FpWb, 4);
    T.addUsage(WbArb, 4);
    Op("fmul.s", 4, OpRole::FloatMul, std::move(T));
  }
  {
    // Double precision makes a second pass through the multiplier array.
    ReservationTable T = FpBase();
    T.addUsageRange(FpMul1, 2, 3);
    T.addUsageRange(FpMul2, 3, 4);
    T.addUsage(FpWb, 5);
    T.addUsage(WbArb, 5);
    Op("fmul.d", 5, OpRole::FloatMul, std::move(T));
  }
  {
    ReservationTable T = FpBase();
    T.addUsageRange(FpDiv, 2, 27);
    T.addUsageRange(FpDivCtl, 2, 27);
    T.addUsage(FpWb, 28);
    T.addUsage(WbArb, 28);
    Op("fdiv", 30, OpRole::FloatDiv, std::move(T));
  }
  {
    ReservationTable T = FpBase();
    T.addUsage(FpAdd1, 2);
    T.addUsage(FpWb, 3);
    T.addUsage(WbArb, 3);
    Op("cvt", 3, OpRole::Convert, std::move(T));
  }
  {
    ReservationTable T = FpBase();
    T.addUsage(FpAdd1, 2);
    Op("fcmp", 2, OpRole::Compare, std::move(T));
  }

  return M;
}
