//===- machines/ScaledVliw.cpp - Parameterizable machine family -----------===//
//
// A machine family for scaling studies (Section 6's qualitative claim:
// automata state spaces explode with machine complexity while reduced
// reservation tables grow gently). makeScaledVliw(U, D) builds a U-cluster
// VLIW: each cluster has an issue slot + ALU (every ALU op may run on any
// cluster -- U-way alternatives), one memory pipeline per two clusters, a
// shared non-pipelined divider busy D cycles, and ceil(U/2) shared result
// buses that couple the clusters.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"

using namespace rmd;

MachineModel rmd::makeScaledVliw(unsigned Units, unsigned DivBusy) {
  assert(Units >= 1 && "need at least one cluster");
  assert(DivBusy >= 1 && DivBusy <= 50 && "divider busy range");

  MachineModel M;
  M.MD.setName("scaled-vliw-" + std::to_string(Units) + "u" +
               std::to_string(DivBusy) + "d");
  auto Res = [&](const std::string &Name) { return M.MD.addResource(Name); };

  std::vector<ResourceId> Slot, Alu;
  for (unsigned U = 0; U < Units; ++U) {
    Slot.push_back(Res("Slot" + std::to_string(U)));
    Alu.push_back(Res("Alu" + std::to_string(U)));
  }
  unsigned MemPipes = (Units + 1) / 2;
  std::vector<ResourceId> MemAddr, MemData;
  for (unsigned P = 0; P < MemPipes; ++P) {
    MemAddr.push_back(Res("MemAddr" + std::to_string(P)));
    MemData.push_back(Res("MemData" + std::to_string(P)));
  }
  unsigned Buses = (Units + 1) / 2;
  std::vector<ResourceId> Bus;
  for (unsigned B = 0; B < Buses; ++B)
    Bus.push_back(Res("Bus" + std::to_string(B)));
  ResourceId Div = Res("Div");

  auto Op = [&](const std::string &Name, int Latency, OpRole Role,
                std::vector<ReservationTable> Alternatives) {
    M.MD.addOperation(Name, std::move(Alternatives));
    M.Latency.push_back(Latency);
    M.Role.push_back(Role);
  };

  // ALU op: any cluster, writing any bus.
  {
    std::vector<ReservationTable> Alts;
    for (unsigned U = 0; U < Units; ++U)
      for (unsigned B = 0; B < Buses; ++B) {
        ReservationTable T;
        T.addUsage(Slot[U], 0);
        T.addUsage(Alu[U], 0);
        T.addUsage(Bus[B], 1);
        Alts.push_back(std::move(T));
      }
    Op("alu", 1, OpRole::IntAlu, std::move(Alts));
  }

  // Load/store: issue on a cluster adjacent to the memory pipe.
  {
    std::vector<ReservationTable> Loads, Stores;
    for (unsigned P = 0; P < MemPipes; ++P) {
      unsigned U = std::min(2 * P, Units - 1);
      ReservationTable L;
      L.addUsage(Slot[U], 0);
      L.addUsage(MemAddr[P], 1);
      L.addUsage(MemData[P], 2);
      L.addUsage(Bus[P % Buses], 3);
      Loads.push_back(std::move(L));
      ReservationTable S;
      S.addUsage(Slot[U], 0);
      S.addUsage(MemAddr[P], 1);
      S.addUsage(MemData[P], 2);
      Stores.push_back(std::move(S));
    }
    Op("load", 3, OpRole::Load, std::move(Loads));
    Op("store", 1, OpRole::Store, std::move(Stores));
  }

  // Divide: cluster 0 issue, non-pipelined shared divider.
  {
    ReservationTable T;
    T.addUsage(Slot[0], 0);
    T.addUsageRange(Div, 1, static_cast<int>(DivBusy));
    T.addUsage(Bus[0], static_cast<int>(DivBusy) + 1);
    Op("div", static_cast<int>(DivBusy) + 2, OpRole::FloatDiv, {T});
  }

  // Branch: any cluster slot.
  {
    std::vector<ReservationTable> Alts;
    for (unsigned U = 0; U < Units; ++U) {
      ReservationTable T;
      T.addUsage(Slot[U], 0);
      Alts.push_back(std::move(T));
    }
    Op("br", 1, OpRole::Branch, std::move(Alts));
  }

  return M;
}
