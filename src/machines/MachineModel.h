//===- machines/MachineModel.h - Machines + scheduling metadata -*- C++ -*-===//
///
/// \file
/// A MachineModel bundles a machine description with the scheduling
/// metadata the paper's experiments need beyond structural hazards: per
/// operation, the producer latency (cycles until a dependent consumer may
/// issue) and a coarse role used to bind machine-agnostic workload kernels
/// to concrete operations.
///
/// The three evaluation machines (Cydra 5, DEC Alpha 21064, MIPS
/// R3000/R3010) are reconstructions: the original descriptions are
/// unpublished, so each model reproduces the published machine structure
/// and the resource-usage idioms the paper highlights (deep pipelines,
/// partially pipelined stages, non-pipelined dividers, shared buses,
/// alternative ports). See DESIGN.md for the substitution rationale.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_MACHINES_MACHINEMODEL_H
#define RMD_MACHINES_MACHINEMODEL_H

#include "mdesc/MachineDescription.h"

#include <vector>

namespace rmd {

/// Coarse operation roles used by the workload generator.
enum class OpRole {
  IntAlu,
  AddrCalc,
  Load,
  Store,
  FloatAdd,
  FloatMul,
  FloatDiv,
  Convert,
  Compare,
  Move,
  Branch,
};

/// A machine description plus scheduling metadata, indexed by the
/// *original* (pre-expansion) operation ids of MD.
struct MachineModel {
  MachineDescription MD;

  /// Latency[op]: cycles from issue of op until a data-dependent consumer
  /// may issue.
  std::vector<int> Latency;

  /// Role[op]: coarse role for workload binding.
  std::vector<OpRole> Role;

  /// Operations that play \p R, in id order (empty if the machine has no
  /// such operation).
  std::vector<OpId> operationsWithRole(OpRole R) const {
    std::vector<OpId> Ops;
    for (OpId Op = 0; Op < Role.size(); ++Op)
      if (Role[Op] == R)
        Ops.push_back(Op);
    return Ops;
  }
};

/// The paper's Figure 1 example machine: operations A (fully pipelined) and
/// B (partially pipelined) over 5 resources.
MachineDescription makeFig1Machine();

/// Reconstruction of the Cydra 5 (Beck/Yen/Anderson '93): 7 functional
/// units (2 memory ports, 2 address/integer units, FP adder, FP multiplier,
/// branch), shared result buses and register write ports, iterative
/// divide/sqrt on the multiplier. Rich in alternatives.
MachineModel makeCydra5();

/// Reconstruction of the DEC Alpha 21064: dual issue (one integer/memory/
/// branch pipe + one floating pipe), non-pipelined integer multiplier,
/// non-pipelined FP divider (the source of ~58-cycle forbidden latencies).
MachineModel makeAlpha21064();

/// Reconstruction of the MIPS R3000 with R3010 FPA: single issue, FP
/// add/mul/div sharing unpack/pack stages, partially pipelined multiplier,
/// long non-pipelined divider (source of ~34-cycle forbidden latencies).
MachineModel makeMipsR3000();

/// A small 3-issue VLIW used by tests: enough structure to exercise
/// alternatives, shared buses, and multi-cycle stages while staying easy to
/// reason about by hand.
MachineModel makeToyVliw();

/// An HPL PlayDoh-style EPIC research machine (Kathail/Schlansker/Rau,
/// HPL-93-80): 2 integer + 2 memory + 2 FP units + branch, shared
/// register-file write ports, four-way alternatives on most operations.
/// Stresses the alternative-operation machinery.
MachineModel makePlayDoh();

/// Reconstruction of the Motorola 88100 (the target of Mueller's
/// automaton scheduling paper, MICRO-26): single issue, concurrent
/// integer/data/FP units, partially pipelined FP multiply, non-pipelined
/// iterative divide, shared writeback arbitration.
MachineModel makeM88100();

/// A parameterizable VLIW family for scaling studies: \p Units clusters
/// (U-way ALU alternatives), one memory pipeline per two clusters, one
/// shared non-pipelined divider busy \p DivBusy cycles. See
/// bench/scaling_study.cpp.
MachineModel makeScaledVliw(unsigned Units, unsigned DivBusy);

} // namespace rmd

#endif // RMD_MACHINES_MACHINEMODEL_H
