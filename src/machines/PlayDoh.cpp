//===- machines/PlayDoh.cpp - HPL PlayDoh-style EPIC machine --------------===//
//
// An HPL PlayDoh-flavoured EPIC research machine (Kathail, Schlansker &
// Rau, HPL-93-80), the kind of target the IMPACT machine-description
// module was built to serve (Section 1). Configuration: 2 integer units,
// 2 memory units, 2 FP units, 1 branch unit, all fully pipelined except
// the FP divide, with heavy use of alternatives (any same-kind unit) and
// a shared pair of register-file write ports that couples the clusters.
//
// This model exists to stress the alternative-operation machinery: every
// non-branch operation has 2 (units) x 2 (write ports) = 4 alternatives.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"

using namespace rmd;

MachineModel rmd::makePlayDoh() {
  MachineModel M;
  M.MD.setName("playdoh");
  auto Res = [&](const std::string &Name) { return M.MD.addResource(Name); };

  ResourceId IUnit[2] = {Res("IUnit0"), Res("IUnit1")};
  ResourceId MUnit[2] = {Res("MUnit0"), Res("MUnit1")};
  ResourceId FUnit[2] = {Res("FUnit0"), Res("FUnit1")};
  ResourceId BUnit = Res("BUnit");

  // Per-unit pipelines.
  ResourceId IAlu[2] = {Res("IAlu0"), Res("IAlu1")};
  ResourceId MAddr[2] = {Res("MAddr0"), Res("MAddr1")};
  ResourceId MCache[2] = {Res("MCache0"), Res("MCache1")};
  ResourceId F1[2] = {Res("F1a"), Res("F1b")};
  ResourceId F2[2] = {Res("F2a"), Res("F2b")};
  ResourceId FDiv[2] = {Res("FDiva"), Res("FDivb")};

  // Two shared register-file write ports couple everything.
  ResourceId WPort[2] = {Res("WPort0"), Res("WPort1")};

  auto Op = [&](const std::string &Name, int Latency, OpRole Role,
                std::vector<ReservationTable> Alternatives) {
    M.MD.addOperation(Name, std::move(Alternatives));
    M.Latency.push_back(Latency);
    M.Role.push_back(Role);
  };

  /// Integer op on unit u writing through port w at cycle 1.
  auto IntAlt = [&](int U, int W) {
    ReservationTable T;
    T.addUsage(IUnit[U], 0);
    T.addUsage(IAlu[U], 0);
    T.addUsage(WPort[W], 1);
    return T;
  };
  auto IntAlts = [&]() {
    return std::vector<ReservationTable>{IntAlt(0, 0), IntAlt(0, 1),
                                         IntAlt(1, 0), IntAlt(1, 1)};
  };
  Op("iadd", 1, OpRole::IntAlu, IntAlts());
  Op("icmp", 1, OpRole::Compare, IntAlts());
  Op("move", 1, OpRole::Move, IntAlts());
  Op("addr", 1, OpRole::AddrCalc, IntAlts());

  /// Memory op on unit u; loads write through port w at cycle 2.
  auto LoadAlt = [&](int U, int W) {
    ReservationTable T;
    T.addUsage(MUnit[U], 0);
    T.addUsage(MAddr[U], 0);
    T.addUsage(MCache[U], 1);
    T.addUsage(WPort[W], 2);
    return T;
  };
  Op("load", 3, OpRole::Load,
     {LoadAlt(0, 0), LoadAlt(0, 1), LoadAlt(1, 0), LoadAlt(1, 1)});

  auto StoreAlt = [&](int U) {
    ReservationTable T;
    T.addUsage(MUnit[U], 0);
    T.addUsage(MAddr[U], 0);
    T.addUsage(MCache[U], 1);
    return T;
  };
  Op("store", 1, OpRole::Store, {StoreAlt(0), StoreAlt(1)});

  /// FP op on unit u writing through port w.
  auto FAlt = [&](int U, int W, bool Mul) {
    ReservationTable T;
    T.addUsage(FUnit[U], 0);
    T.addUsage(F1[U], 0);
    if (Mul)
      T.addUsageRange(F2[U], 1, 2); // multiply holds stage 2 twice
    else
      T.addUsage(F2[U], 1);
    T.addUsage(WPort[W], Mul ? 3 : 2);
    return T;
  };
  Op("fadd", 3, OpRole::FloatAdd,
     {FAlt(0, 0, false), FAlt(0, 1, false), FAlt(1, 0, false),
      FAlt(1, 1, false)});
  Op("fmul", 4, OpRole::FloatMul,
     {FAlt(0, 0, true), FAlt(0, 1, true), FAlt(1, 0, true),
      FAlt(1, 1, true)});

  auto DivAlt = [&](int U, int W) {
    ReservationTable T;
    T.addUsage(FUnit[U], 0);
    T.addUsage(F1[U], 0);
    T.addUsageRange(FDiv[U], 1, 14); // non-pipelined iterative divide
    T.addUsage(WPort[W], 15);
    return T;
  };
  Op("fdiv", 16, OpRole::FloatDiv,
     {DivAlt(0, 0), DivAlt(0, 1), DivAlt(1, 0), DivAlt(1, 1)});
  {
    // Convert runs down the FP pipe like an add.
    Op("cvt", 3, OpRole::Convert,
       {FAlt(0, 0, false), FAlt(0, 1, false), FAlt(1, 0, false),
        FAlt(1, 1, false)});
  }
  {
    ReservationTable T;
    T.addUsage(BUnit, 0);
    Op("br", 1, OpRole::Branch, {T});
  }

  return M;
}
