//===- machines/MdlModel.h - MachineModel <-> MDL text ---------*- C++ -*-===//
///
/// \file
/// Serializes complete MachineModels (description + latencies + roles) to
/// and from the MDL text format, using the `latency` and `role` operation
/// annotations. This is the file format the repository's `machines/*.mdl`
/// samples use; round-tripping every builtin model is asserted by tests.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_MACHINES_MDLMODEL_H
#define RMD_MACHINES_MDLMODEL_H

#include "machines/MachineModel.h"

#include <optional>
#include <string>
#include <string_view>

namespace rmd {

/// Stable spelling of \p Role for MDL files ("int-alu", "load", ...).
const char *roleName(OpRole Role);

/// Parses \p Name back to a role; std::nullopt for unknown spellings.
std::optional<OpRole> roleFromName(std::string_view Name);

/// Parses an annotated MDL buffer into a full machine model. Operations
/// without a `latency` annotation default to their first alternative's
/// table length; without a `role` annotation, to int-alu (a warning is
/// emitted for each defaulted operation).
std::optional<MachineModel> parseMdlModel(std::string_view Input,
                                          DiagnosticEngine &Diags);

/// Renders \p Model as annotated MDL text; parseMdlModel() inverts it.
std::string writeMdlModel(const MachineModel &Model);

} // namespace rmd

#endif // RMD_MACHINES_MDLMODEL_H
