//===- server/MachineRegistry.h - Load-once machine registry ---*- C++ -*-===//
///
/// \file
/// The server's immutable machine store. Each named machine is loaded at
/// most once: the model is expanded, reduced through the existing pipeline
/// (reduceMachineOrFallback — a failed reduction degrades to the original
/// description, Theorem 1 guarantees identical constraints), and frozen.
/// Everything a session needs afterwards is read-only: the reduced
/// description, the alternative grouping, and per-configuration bitvector
/// pattern arenas built on first use and shared by every session over the
/// same (machine, addressing config) — the arena-sharing refactor in
/// query/PatternArena.h exists for exactly this.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SERVER_MACHINEREGISTRY_H
#define RMD_SERVER_MACHINEREGISTRY_H

#include "machines/MachineModel.h"
#include "mdesc/MachineDescription.h"
#include "query/PatternArena.h"
#include "query/QueryModule.h"
#include "support/Status.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rmd {
namespace server {

/// One loaded machine; immutable after load (the arena cache behind
/// arenaFor() is internally synchronized and append-only).
class LoadedMachine {
public:
  LoadedMachine(std::string Name, MachineModel Model);

  uint32_t id() const { return Id; }
  const std::string &name() const { return Name; }
  const MachineModel &model() const { return Model; }
  const MachineDescription &reduced() const { return Reduced; }
  const std::vector<std::vector<OpId>> &groups() const { return EM.Groups; }

  /// True when the reduction fell back to the original description.
  bool degraded() const { return Degraded; }
  const Status &degradedWhy() const { return Why; }

  /// True when sessions use the bitvector representation (the reduced
  /// description fits a 64-bit word); otherwise they run discrete.
  bool usesBitvector() const { return UseBitvector; }

  /// The shared pattern arena for \p Config (bitvector machines only);
  /// built on first request, then reused by every later session with the
  /// same addressing parameters.
  std::shared_ptr<const BitvectorPatternArena>
  arenaFor(const QueryConfig &Config) const;

  /// A fresh query module over the reduced description — bitvector with
  /// the shared arena when the machine fits a word, discrete otherwise.
  std::unique_ptr<ContentionQueryModule>
  makeModule(const QueryConfig &Config) const;

private:
  friend class MachineRegistry; // assigns Id at registration
  uint32_t Id = 0;
  std::string Name;
  MachineModel Model;
  ExpandedMachine EM;
  MachineDescription Reduced;
  bool Degraded = false;
  Status Why;
  bool UseBitvector = false;

  struct ArenaKey {
    int Mode;
    int ModuloII;
    unsigned CyclesPerWordOverride;
    bool operator<(const ArenaKey &O) const {
      if (Mode != O.Mode)
        return Mode < O.Mode;
      if (ModuloII != O.ModuloII)
        return ModuloII < O.ModuloII;
      return CyclesPerWordOverride < O.CyclesPerWordOverride;
    }
  };
  mutable std::mutex ArenaMutex;
  mutable std::map<ArenaKey, std::shared_ptr<const BitvectorPatternArena>>
      Arenas;
};

/// Name-keyed store of LoadedMachines. load() is idempotent per name and
/// thread-safe; lookups return pointers that stay valid for the registry's
/// lifetime (machines are never evicted — the corpus is small and a server
/// restart is the reload path).
class MachineRegistry {
public:
  /// The machine names load() accepts (the perf-corpus spelling:
  /// "fig1", "cydra5", "alpha21064", "mips-r3000", "toy-vliw", "playdoh",
  /// "m88100").
  static const std::vector<std::string> &knownMachines();

  /// Loads \p Name (or returns the already-loaded instance). Fails with
  /// ProtocolError on an unknown name; reduction failures never surface
  /// here — they degrade to the original description with degraded() set.
  Expected<const LoadedMachine *> load(const std::string &Name);

  /// The machine with \p Id, or null.
  const LoadedMachine *byId(uint32_t Id) const;

  size_t size() const;

private:
  mutable std::mutex Mutex;
  std::map<std::string, uint32_t> IdByName;
  std::vector<std::unique_ptr<LoadedMachine>> Machines; // index = id - 1
};

} // namespace server
} // namespace rmd

#endif // RMD_SERVER_MACHINEREGISTRY_H
