//===- server/Workload.cpp ------------------------------------------------===//

#include "server/Workload.h"

#include "query/BitvectorQuery.h"
#include "query/DiscreteQuery.h"

#include <cassert>

using namespace rmd;
using namespace rmd::server;
using namespace rmd::wire;

WorkloadGenerator::WorkloadGenerator(const MachineDescription &Reduced,
                                     const QueryConfig &TheConfig,
                                     uint64_t Seed, int TheSpan)
    : Config(TheConfig), Span(TheSpan), RngState(Seed ? Seed : 1) {
  // Mirror the server's representation choice so counters line up.
  if (Reduced.numResources() <= Config.WordBits)
    Module = std::make_unique<BitvectorQueryModule>(Reduced, Config);
  else
    Module = std::make_unique<DiscreteQueryModule>(Reduced, Config);
  for (OpId Op = 0; Op < Reduced.numOperations(); ++Op) {
    if (Config.Mode == QueryConfig::Modulo &&
        hasModuloSelfConflict(Reduced.operation(Op).table(), Config.ModuloII))
      continue;
    Candidates.push_back(Op);
  }
  assert(!Candidates.empty() && "every operation self-conflicts at this II");
}

WorkloadGenerator::~WorkloadGenerator() = default;

uint64_t WorkloadGenerator::next() {
  // splitmix64: tiny, seedable, identical on every platform.
  uint64_t Z = (RngState += 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

void WorkloadGenerator::nextBatch(size_t N,
                                  std::vector<wire::BatchEvent> &Events,
                                  std::vector<uint8_t> &Expected) {
  const bool Modulo = Config.Mode == QueryConfig::Modulo;
  const int CycleBase = Modulo ? 0 : Config.MinCycle;
  const int CycleSpan = Modulo ? Config.ModuloII : Span;
  for (size_t I = 0; I < N; ++I) {
    BatchEvent E;
    uint64_t Roll = next() % 100;
    if (Roll < 30 && !Live.empty()) {
      // Free a uniformly chosen live placement (swap-pop keeps it O(1)).
      size_t Idx = next() % Live.size();
      LivePlacement P = Live[Idx];
      Live[Idx] = Live.back();
      Live.pop_back();
      E.TheVerb = Verb::Free;
      E.Op = P.Op;
      E.Cycle = P.Cycle;
      E.Instance = P.Instance;
      Module->free(P.Op, P.Cycle, P.Instance);
      Events.push_back(E);
      Expected.push_back(kResultDone);
      continue;
    }
    E.Op = static_cast<uint32_t>(Candidates[next() % Candidates.size()]);
    E.Cycle = CycleBase + static_cast<int>(next() % CycleSpan);
    if (Roll < 60) {
      E.TheVerb = Verb::Check;
      E.Instance = 0;
      Expected.push_back(Module->check(E.Op, E.Cycle) ? 1 : 0);
    } else {
      E.TheVerb = Verb::CheckAssign;
      E.Instance = NextInstance++;
      if (Module->check(E.Op, E.Cycle)) {
        Module->assign(E.Op, E.Cycle, E.Instance);
        Live.push_back({static_cast<OpId>(E.Op), E.Cycle, E.Instance});
        Expected.push_back(1);
      } else {
        Expected.push_back(0);
      }
    }
    Events.push_back(E);
  }
}
