//===- server/Client.cpp --------------------------------------------------===//

#include "server/Client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace rmd;
using namespace rmd::server;
using namespace rmd::wire;

static bool fillSockAddr(const std::string &Path, sockaddr_un &Addr,
                         socklen_t &Len) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return false;
  if (Path[0] == '@') {
    Addr.sun_path[0] = '\0';
    std::memcpy(Addr.sun_path + 1, Path.data() + 1, Path.size() - 1);
    Len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                 Path.size());
  } else {
    std::memcpy(Addr.sun_path, Path.data(), Path.size());
    Len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                 Path.size() + 1);
  }
  return true;
}

Expected<std::unique_ptr<RmdClient>>
RmdClient::connect(const std::string &SocketPath, int RecvTimeoutMs) {
  sockaddr_un Addr;
  socklen_t Len;
  if (!fillSockAddr(SocketPath, Addr, Len))
    return Status(ErrorCode::ProtocolError,
                  "bad socket path '" + SocketPath + "'");
  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return Status(ErrorCode::CacheIO,
                  std::string("socket(): ") + std::strerror(errno));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), Len) < 0) {
    Status S(ErrorCode::CacheIO,
             "connect('" + SocketPath + "'): " + std::strerror(errno));
    ::close(Fd);
    return S;
  }
  if (RecvTimeoutMs > 0) {
    timeval Tv;
    Tv.tv_sec = RecvTimeoutMs / 1000;
    Tv.tv_usec = (RecvTimeoutMs % 1000) * 1000;
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  }
  return std::unique_ptr<RmdClient>(new RmdClient(Fd));
}

RmdClient::~RmdClient() {
  if (Fd >= 0)
    ::close(Fd);
}

static Status sendAll(int Fd, const void *Buf, size_t Size) {
  const uint8_t *In = static_cast<const uint8_t *>(Buf);
  while (Size) {
    ssize_t N = ::send(Fd, In, Size, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status(ErrorCode::CacheIO,
                    std::string("send(): ") + std::strerror(errno));
    }
    In += N;
    Size -= static_cast<size_t>(N);
  }
  return Status::ok();
}

static Status recvAll(int Fd, void *Buf, size_t Size) {
  uint8_t *Out = static_cast<uint8_t *>(Buf);
  while (Size) {
    ssize_t N = ::recv(Fd, Out, Size, 0);
    if (N == 0)
      return Status(ErrorCode::ProtocolError,
                    "server closed the connection mid-response");
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return Status(ErrorCode::TimedOut,
                      "receive timeout waiting for the server");
      return Status(ErrorCode::CacheIO,
                    std::string("recv(): ") + std::strerror(errno));
    }
    Out += N;
    Size -= static_cast<size_t>(N);
  }
  return Status::ok();
}

Status RmdClient::roundTrip(const std::vector<uint8_t> &Payload,
                            std::vector<uint8_t> &Response) {
  uint8_t LenBytes[4];
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I < 4; ++I)
    LenBytes[I] = static_cast<uint8_t>(Len >> (8 * I));
  if (Status S = sendAll(Fd, LenBytes, 4); !S)
    return S;
  if (Status S = sendAll(Fd, Payload.data(), Payload.size()); !S)
    return S;
  if (Status S = recvAll(Fd, LenBytes, 4); !S)
    return S;
  uint32_t RespLen = 0;
  for (int I = 0; I < 4; ++I)
    RespLen |= static_cast<uint32_t>(LenBytes[I]) << (8 * I);
  if (RespLen == 0 || RespLen > kMaxFrameBytes)
    return Status(ErrorCode::ProtocolError,
                  "response frame length " + std::to_string(RespLen) +
                      " outside (0, " + std::to_string(kMaxFrameBytes) + "]");
  Response.resize(RespLen);
  return recvAll(Fd, Response.data(), RespLen);
}

Status RmdClient::transact(MessageType Type,
                           const std::vector<uint8_t> &Payload,
                           std::vector<uint8_t> &Response,
                           size_t &BodyOffset) {
  uint32_t Id = NextRequestId++;
  if (Status S = roundTrip(Payload, Response); !S)
    return S;
  WireReader In(Response);
  Expected<FrameHeader> Header = decodeHeader(In, /*ExpectResponse=*/true);
  if (!Header)
    return Header.status();
  if ((Header.value().Type & ~kResponseBit) != static_cast<uint8_t>(Type))
    return Status(ErrorCode::ProtocolError,
                  "response type " +
                      std::to_string(Header.value().Type & ~kResponseBit) +
                      " does not match request type " +
                      std::to_string(static_cast<int>(Type)));
  if (Header.value().RequestId != Id)
    return Status(ErrorCode::ProtocolError,
                  "response id " + std::to_string(Header.value().RequestId) +
                      " does not echo request id " + std::to_string(Id));
  Status ServerStatus = Status::ok();
  if (Status S = decodeReplyStatus(In, ServerStatus); !S)
    return S;
  if (!ServerStatus.isOk())
    return ServerStatus;
  BodyOffset = Response.size() - In.remaining();
  return Status::ok();
}

// Each method pairs an encodeRequest with the matching reply decoder; the
// RequestId passed to encodeRequest must be the one transact() will check,
// so encode *before* transact bumps NextRequestId.
template <typename ReplyT, typename DecodeFn>
static Expected<ReplyT> finishReply(const std::vector<uint8_t> &Response,
                                    size_t BodyOffset, DecodeFn Decode) {
  WireReader In(Response.data() + BodyOffset, Response.size() - BodyOffset);
  return Decode(In);
}

Status RmdClient::ping() {
  std::vector<uint8_t> Response;
  size_t Off;
  return transact(MessageType::Ping,
                  encodeRequest(NextRequestId, PingRequest{}), Response, Off);
}

Expected<LoadMachineReply> RmdClient::loadMachine(const std::string &Name) {
  std::vector<uint8_t> Response;
  size_t Off;
  Status S = transact(MessageType::LoadMachine,
                      encodeRequest(NextRequestId, LoadMachineRequest{Name}),
                      Response, Off);
  if (!S)
    return S;
  return finishReply<LoadMachineReply>(Response, Off, decodeLoadMachineReply);
}

Expected<OpenSessionReply>
RmdClient::openSession(const OpenSessionRequest &R) {
  std::vector<uint8_t> Response;
  size_t Off;
  Status S = transact(MessageType::OpenSession,
                      encodeRequest(NextRequestId, R), Response, Off);
  if (!S)
    return S;
  return finishReply<OpenSessionReply>(Response, Off, decodeOpenSessionReply);
}

Expected<BatchReply> RmdClient::runBatch(const BatchRequest &R) {
  std::vector<uint8_t> Response;
  size_t Off;
  Status S = transact(MessageType::Batch, encodeRequest(NextRequestId, R),
                      Response, Off);
  if (!S)
    return S;
  return finishReply<BatchReply>(Response, Off, decodeBatchReply);
}

Expected<ScheduleLoopReply>
RmdClient::scheduleLoop(const ScheduleLoopRequest &R) {
  std::vector<uint8_t> Response;
  size_t Off;
  Status S = transact(MessageType::ScheduleLoop,
                      encodeRequest(NextRequestId, R), Response, Off);
  if (!S)
    return S;
  return finishReply<ScheduleLoopReply>(Response, Off,
                                        decodeScheduleLoopReply);
}

Expected<StatsReply> RmdClient::sessionStats(uint32_t SessionId) {
  std::vector<uint8_t> Response;
  size_t Off;
  Status S = transact(MessageType::Stats,
                      encodeRequest(NextRequestId, StatsRequest{SessionId}),
                      Response, Off);
  if (!S)
    return S;
  return finishReply<StatsReply>(Response, Off, decodeStatsReply);
}

Expected<StatsReply> RmdClient::serverStats() { return sessionStats(0); }

Status RmdClient::closeSession(uint32_t SessionId) {
  std::vector<uint8_t> Response;
  size_t Off;
  return transact(
      MessageType::CloseSession,
      encodeRequest(NextRequestId, CloseSessionRequest{SessionId}), Response,
      Off);
}

Status RmdClient::shutdownServer() {
  std::vector<uint8_t> Response;
  size_t Off;
  return transact(MessageType::Shutdown,
                  encodeRequest(NextRequestId, ShutdownRequest{}), Response,
                  Off);
}
