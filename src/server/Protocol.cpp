//===- server/Protocol.cpp ------------------------------------------------===//

#include "server/Protocol.h"

using namespace rmd;
using namespace rmd::wire;

//===----------------------------------------------------------------------===//
// Writer / reader primitives
//===----------------------------------------------------------------------===//

void WireWriter::u16(uint16_t V) {
  Bytes.push_back(static_cast<uint8_t>(V));
  Bytes.push_back(static_cast<uint8_t>(V >> 8));
}

void WireWriter::u32(uint32_t V) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Bytes.push_back(static_cast<uint8_t>(V >> Shift));
}

void WireWriter::u64(uint64_t V) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Bytes.push_back(static_cast<uint8_t>(V >> Shift));
}

void WireWriter::str(const std::string &S) {
  u32(static_cast<uint32_t>(S.size()));
  Bytes.insert(Bytes.end(), S.begin(), S.end());
}

bool WireReader::u8(uint8_t &V) {
  if (Size - Pos < 1)
    return false;
  V = Data[Pos++];
  return true;
}

bool WireReader::u16(uint16_t &V) {
  if (Size - Pos < 2)
    return false;
  V = static_cast<uint16_t>(Data[Pos] | (Data[Pos + 1] << 8));
  Pos += 2;
  return true;
}

bool WireReader::u32(uint32_t &V) {
  if (Size - Pos < 4)
    return false;
  V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(Data[Pos + I]) << (8 * I);
  Pos += 4;
  return true;
}

bool WireReader::u64(uint64_t &V) {
  if (Size - Pos < 8)
    return false;
  V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
  Pos += 8;
  return true;
}

bool WireReader::i32(int32_t &V) {
  uint32_t U;
  if (!u32(U))
    return false;
  V = static_cast<int32_t>(U);
  return true;
}

bool WireReader::str(std::string &S) {
  uint32_t Len;
  if (!u32(Len) || Len > remaining())
    return false;
  S.assign(reinterpret_cast<const char *>(Data + Pos), Len);
  Pos += Len;
  return true;
}

//===----------------------------------------------------------------------===//
// Header
//===----------------------------------------------------------------------===//

static void putHeader(WireWriter &Out, MessageType Type, bool Response,
                      uint32_t RequestId) {
  Out.u8(kWireVersion);
  Out.u8(static_cast<uint8_t>(Type) | (Response ? kResponseBit : 0));
  Out.u16(0); // reserved
  Out.u32(RequestId);
}

Expected<FrameHeader> wire::decodeHeader(WireReader &In, bool ExpectResponse) {
  FrameHeader H;
  uint16_t Reserved;
  if (!In.u8(H.Version) || !In.u8(H.Type) || !In.u16(Reserved) ||
      !In.u32(H.RequestId))
    return Status(ErrorCode::ProtocolError, "truncated frame header");
  if (H.Version != kWireVersion)
    return Status(ErrorCode::ProtocolError,
                  "wire version mismatch: got " + std::to_string(H.Version) +
                      ", expected " + std::to_string(kWireVersion));
  if (Reserved != 0)
    return Status(ErrorCode::ProtocolError, "nonzero reserved header field");
  bool IsResponse = (H.Type & kResponseBit) != 0;
  if (IsResponse != ExpectResponse)
    return Status(ErrorCode::ProtocolError,
                  ExpectResponse ? "expected a response frame, got a request"
                                 : "expected a request frame, got a response");
  uint8_t Bare = H.Type & ~kResponseBit;
  if (Bare < static_cast<uint8_t>(MessageType::Ping) ||
      Bare > static_cast<uint8_t>(MessageType::Shutdown))
    return Status(ErrorCode::ProtocolError,
                  "unknown message type " + std::to_string(Bare));
  return H;
}

/// Every body decoder funnels its exit through these two, so "decoded value
/// accounts for every payload byte" holds for each message type uniformly.
static Status truncated() {
  return Status(ErrorCode::ProtocolError, "truncated message body");
}

template <typename T> static Expected<T> finish(WireReader &In, T Value) {
  if (!In.atEnd())
    return Expected<T>(Status(ErrorCode::ProtocolError,
                              "trailing bytes after message body"));
  return Expected<T>(std::move(Value));
}

//===----------------------------------------------------------------------===//
// Requests
//===----------------------------------------------------------------------===//

std::vector<uint8_t> wire::encodeRequest(uint32_t RequestId,
                                         const PingRequest &) {
  WireWriter Out;
  putHeader(Out, MessageType::Ping, false, RequestId);
  return Out.take();
}

Expected<PingRequest> wire::decodePingRequest(WireReader &In) {
  return finish(In, PingRequest{});
}

std::vector<uint8_t> wire::encodeRequest(uint32_t RequestId,
                                         const LoadMachineRequest &R) {
  WireWriter Out;
  putHeader(Out, MessageType::LoadMachine, false, RequestId);
  Out.str(R.Name);
  return Out.take();
}

Expected<LoadMachineRequest> wire::decodeLoadMachineRequest(WireReader &In) {
  LoadMachineRequest R;
  if (!In.str(R.Name))
    return truncated();
  return finish(In, std::move(R));
}

std::vector<uint8_t> wire::encodeRequest(uint32_t RequestId,
                                         const OpenSessionRequest &R) {
  WireWriter Out;
  putHeader(Out, MessageType::OpenSession, false, RequestId);
  Out.u32(R.MachineId);
  Out.u8(R.Modulo);
  Out.u8(R.UnionAlt);
  Out.i32(R.ModuloII);
  Out.i32(R.MinCycle);
  Out.str(R.Tenant);
  return Out.take();
}

Expected<OpenSessionRequest> wire::decodeOpenSessionRequest(WireReader &In) {
  OpenSessionRequest R;
  if (!In.u32(R.MachineId) || !In.u8(R.Modulo) || !In.u8(R.UnionAlt) ||
      !In.i32(R.ModuloII) || !In.i32(R.MinCycle) || !In.str(R.Tenant))
    return truncated();
  if (R.Modulo > 1 || R.UnionAlt > 1)
    return Expected<OpenSessionRequest>(
        Status(ErrorCode::ProtocolError, "non-boolean flag byte"));
  return finish(In, std::move(R));
}

std::vector<uint8_t> wire::encodeRequest(uint32_t RequestId,
                                         const BatchRequest &R) {
  WireWriter Out;
  putHeader(Out, MessageType::Batch, false, RequestId);
  Out.u32(R.SessionId);
  Out.u32(static_cast<uint32_t>(R.Events.size()));
  for (const BatchEvent &E : R.Events) {
    Out.u8(static_cast<uint8_t>(E.TheVerb));
    Out.u32(E.Op);
    Out.i32(E.Cycle);
    Out.i32(E.Instance);
  }
  return Out.take();
}

Expected<BatchRequest> wire::decodeBatchRequest(WireReader &In) {
  BatchRequest R;
  uint32_t Count;
  if (!In.u32(R.SessionId) || !In.u32(Count))
    return truncated();
  // 13 wire bytes per event; a count the remaining bytes cannot hold is
  // rejected before the reserve, so a forged count cannot balloon memory.
  if (static_cast<uint64_t>(Count) * 13 != In.remaining())
    return Expected<BatchRequest>(Status(
        ErrorCode::ProtocolError, "event count does not match body size"));
  R.Events.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    BatchEvent E;
    uint8_t V;
    if (!In.u8(V) || !In.u32(E.Op) || !In.i32(E.Cycle) || !In.i32(E.Instance))
      return truncated();
    if (V > static_cast<uint8_t>(Verb::Reset))
      return Expected<BatchRequest>(
          Status(ErrorCode::ProtocolError,
                 "unknown verb " + std::to_string(V) + " in event " +
                     std::to_string(I)));
    E.TheVerb = static_cast<Verb>(V);
    R.Events.push_back(E);
  }
  return finish(In, std::move(R));
}

std::vector<uint8_t> wire::encodeRequest(uint32_t RequestId,
                                         const ScheduleLoopRequest &R) {
  WireWriter Out;
  putHeader(Out, MessageType::ScheduleLoop, false, RequestId);
  Out.u32(R.MachineId);
  Out.i32(R.BudgetRatio);
  Out.i32(R.MaxII);
  Out.i32(R.DeadlineMs);
  Out.str(R.GraphText);
  return Out.take();
}

Expected<ScheduleLoopRequest> wire::decodeScheduleLoopRequest(WireReader &In) {
  ScheduleLoopRequest R;
  if (!In.u32(R.MachineId) || !In.i32(R.BudgetRatio) || !In.i32(R.MaxII) ||
      !In.i32(R.DeadlineMs) || !In.str(R.GraphText))
    return truncated();
  return finish(In, std::move(R));
}

std::vector<uint8_t> wire::encodeRequest(uint32_t RequestId,
                                         const StatsRequest &R) {
  WireWriter Out;
  putHeader(Out, MessageType::Stats, false, RequestId);
  Out.u32(R.SessionId);
  return Out.take();
}

Expected<StatsRequest> wire::decodeStatsRequest(WireReader &In) {
  StatsRequest R;
  if (!In.u32(R.SessionId))
    return truncated();
  return finish(In, R);
}

std::vector<uint8_t> wire::encodeRequest(uint32_t RequestId,
                                         const CloseSessionRequest &R) {
  WireWriter Out;
  putHeader(Out, MessageType::CloseSession, false, RequestId);
  Out.u32(R.SessionId);
  return Out.take();
}

Expected<CloseSessionRequest>
wire::decodeCloseSessionRequest(WireReader &In) {
  CloseSessionRequest R;
  if (!In.u32(R.SessionId))
    return truncated();
  return finish(In, R);
}

std::vector<uint8_t> wire::encodeRequest(uint32_t RequestId,
                                         const ShutdownRequest &) {
  WireWriter Out;
  putHeader(Out, MessageType::Shutdown, false, RequestId);
  return Out.take();
}

Expected<ShutdownRequest> wire::decodeShutdownRequest(WireReader &In) {
  return finish(In, ShutdownRequest{});
}

//===----------------------------------------------------------------------===//
// Responses
//===----------------------------------------------------------------------===//

static void putOkPrefix(WireWriter &Out, MessageType Type,
                        uint32_t RequestId) {
  putHeader(Out, Type, true, RequestId);
  Out.u16(0); // ErrorCode::Ok
}

std::vector<uint8_t> wire::encodeErrorReply(uint32_t RequestId,
                                            MessageType Type,
                                            const Status &Error) {
  WireWriter Out;
  putHeader(Out, Type, true, RequestId);
  Out.u16(static_cast<uint16_t>(Error.code()));
  Out.str(Error.message());
  return Out.take();
}

Status wire::decodeReplyStatus(WireReader &In, Status &ServerStatus) {
  uint16_t Code;
  if (!In.u16(Code))
    return Status(ErrorCode::ProtocolError, "truncated response status");
  if (Code == 0) {
    ServerStatus = Status::ok();
    return Status::ok();
  }
  if (Code > static_cast<uint16_t>(ErrorCode::ProtocolError))
    return Status(ErrorCode::ProtocolError,
                  "unknown error code " + std::to_string(Code));
  std::string Message;
  if (!In.str(Message) || !In.atEnd())
    return Status(ErrorCode::ProtocolError, "malformed error response body");
  ServerStatus = Status(static_cast<ErrorCode>(Code), std::move(Message));
  return Status::ok();
}

std::vector<uint8_t> wire::encodeReply(uint32_t RequestId, const PingReply &) {
  WireWriter Out;
  putOkPrefix(Out, MessageType::Ping, RequestId);
  return Out.take();
}

Expected<PingReply> wire::decodePingReply(WireReader &In) {
  return finish(In, PingReply{});
}

std::vector<uint8_t> wire::encodeReply(uint32_t RequestId,
                                       const LoadMachineReply &R) {
  WireWriter Out;
  putOkPrefix(Out, MessageType::LoadMachine, RequestId);
  Out.u32(R.MachineId);
  Out.u8(R.Degraded);
  Out.u8(R.Bitvector);
  Out.u32(R.NumOperations);
  Out.u32(R.OriginalResources);
  Out.u32(R.ReducedResources);
  return Out.take();
}

Expected<LoadMachineReply> wire::decodeLoadMachineReply(WireReader &In) {
  LoadMachineReply R;
  if (!In.u32(R.MachineId) || !In.u8(R.Degraded) || !In.u8(R.Bitvector) ||
      !In.u32(R.NumOperations) || !In.u32(R.OriginalResources) ||
      !In.u32(R.ReducedResources))
    return truncated();
  return finish(In, R);
}

std::vector<uint8_t> wire::encodeReply(uint32_t RequestId,
                                       const OpenSessionReply &R) {
  WireWriter Out;
  putOkPrefix(Out, MessageType::OpenSession, RequestId);
  Out.u32(R.SessionId);
  return Out.take();
}

Expected<OpenSessionReply> wire::decodeOpenSessionReply(WireReader &In) {
  OpenSessionReply R;
  if (!In.u32(R.SessionId))
    return truncated();
  return finish(In, R);
}

std::vector<uint8_t> wire::encodeReply(uint32_t RequestId,
                                       const BatchReply &R) {
  WireWriter Out;
  putOkPrefix(Out, MessageType::Batch, RequestId);
  Out.u32(static_cast<uint32_t>(R.Results.size()));
  for (uint8_t B : R.Results)
    Out.u8(B);
  return Out.take();
}

Expected<BatchReply> wire::decodeBatchReply(WireReader &In) {
  BatchReply R;
  uint32_t Count;
  if (!In.u32(Count))
    return truncated();
  if (Count != In.remaining())
    return Expected<BatchReply>(Status(
        ErrorCode::ProtocolError, "result count does not match body size"));
  R.Results.resize(Count);
  for (uint32_t I = 0; I < Count; ++I)
    In.u8(R.Results[I]);
  return finish(In, std::move(R));
}

std::vector<uint8_t> wire::encodeReply(uint32_t RequestId,
                                       const ScheduleLoopReply &R) {
  WireWriter Out;
  putOkPrefix(Out, MessageType::ScheduleLoop, RequestId);
  Out.u8(R.Success);
  Out.u8(R.Outcome);
  Out.i32(R.II);
  Out.u32(static_cast<uint32_t>(R.Time.size()));
  for (int32_t T : R.Time)
    Out.i32(T);
  Out.u32(static_cast<uint32_t>(R.Alternative.size()));
  for (int32_t A : R.Alternative)
    Out.i32(A);
  Out.str(R.Message);
  return Out.take();
}

Expected<ScheduleLoopReply> wire::decodeScheduleLoopReply(WireReader &In) {
  ScheduleLoopReply R;
  uint32_t N;
  if (!In.u8(R.Success) || !In.u8(R.Outcome) || !In.i32(R.II) || !In.u32(N))
    return truncated();
  if (static_cast<uint64_t>(N) * 4 > In.remaining())
    return Expected<ScheduleLoopReply>(
        Status(ErrorCode::ProtocolError, "node count exceeds body size"));
  R.Time.resize(N);
  for (uint32_t I = 0; I < N; ++I)
    if (!In.i32(R.Time[I]))
      return truncated();
  if (!In.u32(N))
    return truncated();
  if (static_cast<uint64_t>(N) * 4 > In.remaining())
    return Expected<ScheduleLoopReply>(
        Status(ErrorCode::ProtocolError, "node count exceeds body size"));
  R.Alternative.resize(N);
  for (uint32_t I = 0; I < N; ++I)
    if (!In.i32(R.Alternative[I]))
      return truncated();
  if (!In.str(R.Message))
    return truncated();
  return finish(In, std::move(R));
}

std::vector<uint8_t> wire::encodeReply(uint32_t RequestId,
                                       const StatsReply &R) {
  WireWriter Out;
  putOkPrefix(Out, MessageType::Stats, RequestId);
  Out.u8(R.ServerWide);
  if (R.ServerWide) {
    Out.u64(R.Server.ActiveSessions);
    Out.u64(R.Server.MachinesLoaded);
    Out.u64(R.Server.RequestsServed);
    Out.u64(R.Server.OverloadRejections);
    Out.u64(R.Server.ProtocolErrors);
  } else {
    const WorkCounters &C = R.Session.Counters;
    Out.u64(C.CheckCalls);
    Out.u64(C.CheckUnits);
    Out.u64(C.AssignCalls);
    Out.u64(C.AssignUnits);
    Out.u64(C.FreeCalls);
    Out.u64(C.FreeUnits);
    Out.u64(C.AssignFreeCalls);
    Out.u64(C.AssignFreeUnits);
    Out.u64(C.TransitionUnits);
    Out.u64(R.Session.LiveInstances);
  }
  return Out.take();
}

Expected<StatsReply> wire::decodeStatsReply(WireReader &In) {
  StatsReply R;
  if (!In.u8(R.ServerWide))
    return truncated();
  if (R.ServerWide > 1)
    return Expected<StatsReply>(
        Status(ErrorCode::ProtocolError, "non-boolean flag byte"));
  if (R.ServerWide) {
    if (!In.u64(R.Server.ActiveSessions) || !In.u64(R.Server.MachinesLoaded) ||
        !In.u64(R.Server.RequestsServed) ||
        !In.u64(R.Server.OverloadRejections) ||
        !In.u64(R.Server.ProtocolErrors))
      return truncated();
  } else {
    WorkCounters &C = R.Session.Counters;
    if (!In.u64(C.CheckCalls) || !In.u64(C.CheckUnits) ||
        !In.u64(C.AssignCalls) || !In.u64(C.AssignUnits) ||
        !In.u64(C.FreeCalls) || !In.u64(C.FreeUnits) ||
        !In.u64(C.AssignFreeCalls) || !In.u64(C.AssignFreeUnits) ||
        !In.u64(C.TransitionUnits) || !In.u64(R.Session.LiveInstances))
      return truncated();
  }
  return finish(In, R);
}

std::vector<uint8_t> wire::encodeReply(uint32_t RequestId,
                                       const CloseSessionReply &) {
  WireWriter Out;
  putOkPrefix(Out, MessageType::CloseSession, RequestId);
  return Out.take();
}

Expected<CloseSessionReply> wire::decodeCloseSessionReply(WireReader &In) {
  return finish(In, CloseSessionReply{});
}

std::vector<uint8_t> wire::encodeReply(uint32_t RequestId,
                                       const ShutdownReply &) {
  WireWriter Out;
  putOkPrefix(Out, MessageType::Shutdown, RequestId);
  return Out.take();
}

Expected<ShutdownReply> wire::decodeShutdownReply(WireReader &In) {
  return finish(In, ShutdownReply{});
}
