//===- server/Protocol.h - rmd-wire-v1 message framing ---------*- C++ -*-===//
///
/// \file
/// The length-prefixed binary protocol the contention-query server speaks
/// over local stream sockets ("rmd-wire-v1"; docs/server.md is the prose
/// spec). A *frame* is a little-endian u32 payload length followed by the
/// payload; every payload begins with a fixed header:
///
///   u8  Version   (kWireVersion; mismatches are rejected, never guessed)
///   u8  Type      (MessageType; responses set kResponseBit)
///   u16 Reserved  (must be zero)
///   u32 RequestId (echoed verbatim in the response)
///
/// Response payloads continue with a u16 ErrorCode (support/Status.h's
/// enum value; 0 = ok) and, when nonzero, a string message — so every
/// failure a client sees is *structured*: a code it can branch on plus
/// text it can log, never a closed socket with no explanation. Success
/// responses continue with the per-type body.
///
/// All integers are little-endian and packed (no padding is read from or
/// written to the wire); strings are a u32 length plus raw bytes. Decoders
/// are total: any truncated, oversized, garbage, or wrong-version input
/// yields an Expected error, and a decoded value re-encodes to the
/// identical bytes (tests/ServerProtocolTest round-trips every type).
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SERVER_PROTOCOL_H
#define RMD_SERVER_PROTOCOL_H

#include "query/QueryModule.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rmd {
namespace wire {

inline constexpr uint8_t kWireVersion = 1;
inline constexpr uint8_t kResponseBit = 0x80;

/// Frames larger than this are rejected before any allocation: a garbage
/// length prefix must not make the server (or a client) try to buffer 4 GiB.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

enum class MessageType : uint8_t {
  Ping = 1,
  LoadMachine = 2,
  OpenSession = 3,
  Batch = 4,
  ScheduleLoop = 5,
  Stats = 6,
  CloseSession = 7,
  Shutdown = 8,
};

/// Batch event verbs. CheckAssign only assigns when the check succeeds, so
/// it is always safe to issue; plain Assign/Free follow the query-module
/// contract (the caller must know the placement is legal / live).
enum class Verb : uint8_t {
  Check = 0,
  Assign = 1,
  Free = 2,
  CheckAssign = 3,
  AssignFree = 4,
  Reset = 5,
};

/// Per-event result bytes in a Batch response.
inline constexpr uint8_t kResultDone = 0xFF; ///< Assign/Free/Reset applied
// Check/CheckAssign answer 0 (contention) or 1 (free / assigned);
// AssignFree answers the evicted count, clamped to 0xFE.

/// The fixed payload header of every message.
struct FrameHeader {
  uint8_t Version = kWireVersion;
  uint8_t Type = 0;
  uint32_t RequestId = 0;
};

//===----------------------------------------------------------------------===//
// Request bodies
//===----------------------------------------------------------------------===//

struct PingRequest {};

struct LoadMachineRequest {
  std::string Name; ///< a built-in corpus machine ("cydra5", ...)
};

struct OpenSessionRequest {
  uint32_t MachineId = 0;
  uint8_t Modulo = 0;       ///< 0 = linear window, 1 = modulo (MRT)
  uint8_t UnionAlt = 0;     ///< QueryConfig::UnionAlternativeCheck
  int32_t ModuloII = 0;     ///< required when Modulo
  int32_t MinCycle = 0;     ///< linear mode window floor
  std::string Tenant;       ///< per-tenant accounting key (may be empty)
};

struct BatchEvent {
  Verb TheVerb = Verb::Check;
  uint32_t Op = 0;
  int32_t Cycle = 0;
  int32_t Instance = 0;
};

struct BatchRequest {
  uint32_t SessionId = 0;
  std::vector<BatchEvent> Events;
};

struct ScheduleLoopRequest {
  uint32_t MachineId = 0;
  int32_t BudgetRatio = 6;
  int32_t MaxII = 0;      ///< 0 = MII + 128
  int32_t DeadlineMs = 0; ///< 0 = no deadline
  std::string GraphText;  ///< loop-graph text (sched/GraphIO.h)
};

struct StatsRequest {
  uint32_t SessionId = 0; ///< 0 = server-wide stats
};

struct CloseSessionRequest {
  uint32_t SessionId = 0;
};

struct ShutdownRequest {};

//===----------------------------------------------------------------------===//
// Response bodies (the ok-path payload after the error-code prefix)
//===----------------------------------------------------------------------===//

struct PingReply {};

struct LoadMachineReply {
  uint32_t MachineId = 0;
  uint8_t Degraded = 0;  ///< reduction fell back to the original machine
  uint8_t Bitvector = 0; ///< sessions use the bitvector representation
  uint32_t NumOperations = 0;
  uint32_t OriginalResources = 0;
  uint32_t ReducedResources = 0;
};

struct OpenSessionReply {
  uint32_t SessionId = 0;
};

struct BatchReply {
  std::vector<uint8_t> Results; ///< one byte per event, in order
};

struct ScheduleLoopReply {
  uint8_t Success = 0;
  uint8_t Outcome = 0; ///< ScheduleOutcome enum value
  int32_t II = 0;
  std::vector<int32_t> Time;        ///< per node; empty when unscheduled
  std::vector<int32_t> Alternative; ///< per node; -1 = unplaced
  std::string Message;              ///< human-readable outcome detail
};

struct SessionStats {
  WorkCounters Counters; ///< live counters of the session's module
  uint64_t LiveInstances = 0;
};

struct ServerStats {
  uint64_t ActiveSessions = 0;
  uint64_t MachinesLoaded = 0;
  uint64_t RequestsServed = 0;
  uint64_t OverloadRejections = 0;
  uint64_t ProtocolErrors = 0;
};

struct StatsReply {
  uint8_t ServerWide = 0;
  SessionStats Session; ///< valid when !ServerWide
  ServerStats Server;   ///< valid when ServerWide
};

struct CloseSessionReply {};
struct ShutdownReply {};

//===----------------------------------------------------------------------===//
// Encoding / decoding
//===----------------------------------------------------------------------===//

/// Append-only little-endian payload writer.
class WireWriter {
public:
  void u8(uint8_t V) { Bytes.push_back(V); }
  void u16(uint16_t V);
  void u32(uint32_t V);
  void u64(uint64_t V);
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void str(const std::string &S);

  std::vector<uint8_t> take() { return std::move(Bytes); }
  const std::vector<uint8_t> &bytes() const { return Bytes; }

private:
  std::vector<uint8_t> Bytes;
};

/// Bounds-checked little-endian payload reader. Every accessor returns
/// false (leaving the output untouched) instead of reading past the end.
class WireReader {
public:
  WireReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit WireReader(const std::vector<uint8_t> &Payload)
      : Data(Payload.data()), Size(Payload.size()) {}

  bool u8(uint8_t &V);
  bool u16(uint16_t &V);
  bool u32(uint32_t &V);
  bool u64(uint64_t &V);
  bool i32(int32_t &V);
  bool str(std::string &S);

  size_t remaining() const { return Size - Pos; }
  bool atEnd() const { return Pos == Size; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
};

/// Encodes the payload of a request message: header + body.
std::vector<uint8_t> encodeRequest(uint32_t RequestId, const PingRequest &R);
std::vector<uint8_t> encodeRequest(uint32_t RequestId,
                                   const LoadMachineRequest &R);
std::vector<uint8_t> encodeRequest(uint32_t RequestId,
                                   const OpenSessionRequest &R);
std::vector<uint8_t> encodeRequest(uint32_t RequestId, const BatchRequest &R);
std::vector<uint8_t> encodeRequest(uint32_t RequestId,
                                   const ScheduleLoopRequest &R);
std::vector<uint8_t> encodeRequest(uint32_t RequestId, const StatsRequest &R);
std::vector<uint8_t> encodeRequest(uint32_t RequestId,
                                   const CloseSessionRequest &R);
std::vector<uint8_t> encodeRequest(uint32_t RequestId,
                                   const ShutdownRequest &R);

/// Encodes an ok response payload: header + ErrorCode::Ok + body.
std::vector<uint8_t> encodeReply(uint32_t RequestId, const PingReply &R);
std::vector<uint8_t> encodeReply(uint32_t RequestId,
                                 const LoadMachineReply &R);
std::vector<uint8_t> encodeReply(uint32_t RequestId, const OpenSessionReply &R);
std::vector<uint8_t> encodeReply(uint32_t RequestId, const BatchReply &R);
std::vector<uint8_t> encodeReply(uint32_t RequestId,
                                 const ScheduleLoopReply &R);
std::vector<uint8_t> encodeReply(uint32_t RequestId, const StatsReply &R);
std::vector<uint8_t> encodeReply(uint32_t RequestId,
                                 const CloseSessionReply &R);
std::vector<uint8_t> encodeReply(uint32_t RequestId, const ShutdownReply &R);

/// Encodes an error response payload for message type \p Type (the request
/// bit; the response bit is added here): header + code + message.
std::vector<uint8_t> encodeErrorReply(uint32_t RequestId, MessageType Type,
                                      const Status &Error);

/// Decodes and validates the payload header (version, reserved word).
/// \p ExpectResponse selects which direction's type namespace is legal.
Expected<FrameHeader> decodeHeader(WireReader &In, bool ExpectResponse);

/// Per-type body decoders; the header must already be consumed. Each
/// rejects trailing bytes, so a decoded message accounts for every byte of
/// its payload.
Expected<PingRequest> decodePingRequest(WireReader &In);
Expected<LoadMachineRequest> decodeLoadMachineRequest(WireReader &In);
Expected<OpenSessionRequest> decodeOpenSessionRequest(WireReader &In);
Expected<BatchRequest> decodeBatchRequest(WireReader &In);
Expected<ScheduleLoopRequest> decodeScheduleLoopRequest(WireReader &In);
Expected<StatsRequest> decodeStatsRequest(WireReader &In);
Expected<CloseSessionRequest> decodeCloseSessionRequest(WireReader &In);
Expected<ShutdownRequest> decodeShutdownRequest(WireReader &In);

/// Decodes a response payload's error-code prefix after the header into
/// \p ServerStatus (ok when the wire code is 0, the reconstructed failure
/// otherwise — including the rest of the payload, which an error response
/// owns entirely). Returns ProtocolError when the prefix itself is
/// malformed, leaving \p ServerStatus untouched.
Status decodeReplyStatus(WireReader &In, Status &ServerStatus);

/// Ok-path reply body decoders (after header + ok status).
Expected<PingReply> decodePingReply(WireReader &In);
Expected<LoadMachineReply> decodeLoadMachineReply(WireReader &In);
Expected<OpenSessionReply> decodeOpenSessionReply(WireReader &In);
Expected<BatchReply> decodeBatchReply(WireReader &In);
Expected<ScheduleLoopReply> decodeScheduleLoopReply(WireReader &In);
Expected<StatsReply> decodeStatsReply(WireReader &In);
Expected<CloseSessionReply> decodeCloseSessionReply(WireReader &In);
Expected<ShutdownReply> decodeShutdownReply(WireReader &In);

} // namespace wire
} // namespace rmd

#endif // RMD_SERVER_PROTOCOL_H
