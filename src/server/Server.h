//===- server/Server.h - Multi-tenant contention-query server --*- C++ -*-===//
///
/// \file
/// Scheduling as a service: a long-running daemon that loads machine
/// descriptions once — reduced through the existing pipeline, bitvector
/// pattern arenas shared read-only across sessions — and answers
/// contention queries and schedule-loop requests for many concurrent
/// clients over a local stream socket (rmd-wire-v1, server/Protocol.h).
///
/// Threading model: one accept thread; one reader thread per connection
/// that frames requests into a bounded queue (support/BoundedQueue.h); a
/// support/ThreadPool worker pool draining the queue. Backpressure is
/// explicit — a full queue answers ErrorCode::Overloaded immediately
/// instead of stalling the socket, so a client always knows whether its
/// request was accepted. Mutable state is per-session (each session owns
/// one query module behind its own mutex); everything sessions share —
/// reduced descriptions, pattern arenas — is immutable by construction.
///
/// Degradation ladder: machine loading rides reduceMachineOrFallback (a
/// failed reduction serves the original description and reports Degraded);
/// schedule-loop requests run under the scheduler's Deadline and the
/// server's CancellationToken, so stop() abandons in-flight scheduling
/// instead of waiting out II escalation. Fault points server.accept,
/// server.enqueue, and server.session_alloc (support/FaultInjection.h)
/// exercise the drop/overload/failed-alloc paths deterministically.
///
/// docs/server.md covers the protocol, session lifecycle, and operational
/// notes; rmdserved.cpp / rmdctl.cpp are the CLI front ends.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SERVER_SERVER_H
#define RMD_SERVER_SERVER_H

#include "server/MachineRegistry.h"
#include "server/Protocol.h"
#include "support/BoundedQueue.h"
#include "support/Deadline.h"
#include "support/Status.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace rmd {
namespace server {

struct ServerOptions {
  /// Local socket address. A leading '@' selects the Linux abstract
  /// namespace (no filesystem entry, auto-reclaimed on close) — the
  /// default for tests and benches so nothing is written outside the
  /// repo. Any other spelling is a filesystem socket path.
  std::string SocketPath;

  /// Worker threads draining the request queue; 0 = one per hardware core.
  unsigned Workers = 0;

  /// Bounded request-queue capacity; a full queue answers Overloaded.
  size_t QueueCapacity = 256;
};

/// The server; see the file comment. start() binds and spawns the serving
/// threads; the destructor (or stop()) tears everything down, closing any
/// sessions that are still open.
class RmdServer {
public:
  static Expected<std::unique_ptr<RmdServer>> start(ServerOptions Options);
  ~RmdServer();

  RmdServer(const RmdServer &) = delete;
  RmdServer &operator=(const RmdServer &) = delete;

  /// Stops accepting, cancels in-flight scheduling, drains and joins every
  /// thread, and closes all sessions. Idempotent; must not be called from
  /// a serving thread (a Shutdown request signals instead, see
  /// waitForShutdown()).
  void stop();

  /// Blocks until a client sends Shutdown or stop() is called.
  void waitForShutdown();

  /// Unblocks waitForShutdown() without tearing anything down. Only
  /// touches an atomic flag, so it is safe from a signal handler (the
  /// waiter polls); the caller then runs stop() from a normal thread.
  void requestShutdownAsync() { ShutdownRequested.store(true); }

  const std::string &socketPath() const { return Options.SocketPath; }
  unsigned workerCount() const { return Options.Workers; }
  size_t queueCapacity() const { return Options.QueueCapacity; }

  /// Open sessions right now (0 after stop(): teardown closes them all).
  size_t sessionCount() const;

  uint64_t requestsServed() const { return RequestsServed.load(); }
  uint64_t overloadRejections() const { return Overloads.load(); }
  uint64_t protocolErrors() const { return ProtocolErrors.load(); }

private:
  explicit RmdServer(ServerOptions Options);

  struct Connection {
    int Fd = -1;
    uint64_t Id = 0;
    std::mutex WriteMutex;
  };

  struct Session {
    uint32_t Id = 0;
    uint64_t ConnId = 0;
    const LoadedMachine *Machine = nullptr;
    QueryConfig Config;
    std::string Tenant;
    /// Guards Module and LiveInstances: batches of one session serialize,
    /// batches of different sessions run on different modules in parallel.
    std::mutex Mutex;
    std::unique_ptr<ContentionQueryModule> Module;
    /// Ops that self-conflict at this II (modulo sessions; empty
    /// otherwise). Assign/AssignFree on them is rejected up front — the
    /// module treats that as a caller contract violation.
    std::vector<uint8_t> SelfConflict;
    uint64_t LiveInstances = 0;
  };

  struct WorkItem {
    std::shared_ptr<Connection> Conn;
    std::vector<uint8_t> Payload;
  };

  struct ConnEntry {
    std::shared_ptr<Connection> Conn;
    std::thread Reader;
    std::atomic<bool> Done{false};
  };

  Status bindAndListen();
  void acceptLoop();
  void readerLoop(ConnEntry *Entry);
  void dispatcherLoop();
  void drainQueue();
  void reapFinishedReaders(bool JoinAll);
  void closeConnectionSessions(uint64_t ConnId);

  /// Writes one length-prefixed frame (best-effort: a vanished peer is not
  /// an error worth acting on beyond teardown).
  void sendFrame(Connection &Conn, const std::vector<uint8_t> &Payload);

  /// Best-effort (type, request id) extraction from a raw payload, for
  /// error replies to frames that cannot be decoded normally.
  static void peekFrame(const std::vector<uint8_t> &Payload,
                        wire::MessageType &Type, uint32_t &RequestId);

  void handleRequest(Connection &Conn, const std::vector<uint8_t> &Payload);
  void sendError(Connection &Conn, wire::MessageType Type, uint32_t RequestId,
                 Status Error);

  std::vector<uint8_t> handleLoadMachine(const wire::LoadMachineRequest &R,
                                         uint32_t RequestId, Status &Error);
  std::vector<uint8_t> handleOpenSession(const wire::OpenSessionRequest &R,
                                         uint64_t ConnId, uint32_t RequestId,
                                         Status &Error);
  std::vector<uint8_t> handleBatch(const wire::BatchRequest &R,
                                   uint64_t ConnId, uint32_t RequestId,
                                   Status &Error);
  std::vector<uint8_t> handleScheduleLoop(const wire::ScheduleLoopRequest &R,
                                          uint32_t RequestId, Status &Error);
  std::vector<uint8_t> handleStats(const wire::StatsRequest &R,
                                   uint64_t ConnId, uint32_t RequestId,
                                   Status &Error);
  std::vector<uint8_t> handleCloseSession(const wire::CloseSessionRequest &R,
                                          uint64_t ConnId, uint32_t RequestId,
                                          Status &Error);

  /// Looks up a session, enforcing connection ownership (a session is
  /// usable only over the connection that opened it).
  std::shared_ptr<Session> findSession(uint32_t Id, uint64_t ConnId,
                                       Status &Error);

  ServerOptions Options;
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  std::atomic<bool> Stopped{false};
  CancellationToken StopToken; ///< cancels in-flight schedule-loops

  MachineRegistry Registry;

  BoundedQueue<WorkItem> Queue;
  std::unique_ptr<ThreadPool> Workers;
  std::thread AcceptThread;
  std::thread DispatcherThread;

  std::mutex ConnMutex;
  std::list<ConnEntry> Connections;
  uint64_t NextConnId = 1;

  mutable std::mutex SessionsMutex;
  std::map<uint32_t, std::shared_ptr<Session>> Sessions;
  uint32_t NextSessionId = 1;

  std::mutex ShutdownMutex;
  std::condition_variable ShutdownCv;
  std::atomic<bool> ShutdownRequested{false};

  std::atomic<uint64_t> RequestsServed{0};
  std::atomic<uint64_t> Overloads{0};
  std::atomic<uint64_t> ProtocolErrors{0};
};

} // namespace server
} // namespace rmd

#endif // RMD_SERVER_SERVER_H
