//===- server/Server.cpp --------------------------------------------------===//

#include "server/Server.h"

#include "query/DiscreteQuery.h" // hasModuloSelfConflict
#include "sched/GraphIO.h"
#include "sched/IterativeModuloScheduler.h"
#include "support/Degradation.h"
#include "support/Diagnostics.h"
#include "support/FaultInjection.h"
#include "support/Stats.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace rmd;
using namespace rmd::server;
using namespace rmd::wire;

// Process-wide server counters (docs/observability.md, "server.*").
static StatCounter StatRequests("server.requests");
static StatCounter StatOverloads("server.overloaded");
static StatCounter StatProtocolErrors("server.protocol_errors");
static StatCounter StatSessionsOpened("server.sessions.opened");
static StatCounter StatSessionsClosed("server.sessions.closed");
static StatCounter StatBatchQueries("server.batch.queries");
static StatCounter StatScheduleLoops("server.schedule_loops");
static StatCounter StatAcceptDrops("server.accept.dropped");

/// Builds a sockaddr_un for \p Path. A leading '@' selects the Linux
/// abstract namespace: sun_path[0] is NUL and the name is not on the
/// filesystem, so tests and benches never create socket files.
static bool fillSockAddr(const std::string &Path, sockaddr_un &Addr,
                         socklen_t &Len) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return false;
  if (Path[0] == '@') {
    Addr.sun_path[0] = '\0';
    std::memcpy(Addr.sun_path + 1, Path.data() + 1, Path.size() - 1);
    Len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                 Path.size());
  } else {
    std::memcpy(Addr.sun_path, Path.data(), Path.size());
    Len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                 Path.size() + 1);
  }
  return true;
}

/// Reads exactly \p Size bytes; false on EOF/error.
static bool readFully(int Fd, void *Buf, size_t Size) {
  uint8_t *Out = static_cast<uint8_t *>(Buf);
  while (Size) {
    ssize_t N = ::recv(Fd, Out, Size, 0);
    if (N == 0)
      return false;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Out += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

/// Writes exactly \p Size bytes; false on a vanished peer.
static bool writeFully(int Fd, const void *Buf, size_t Size) {
  const uint8_t *In = static_cast<const uint8_t *>(Buf);
  while (Size) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE, not a process-wide SIGPIPE.
    ssize_t N = ::send(Fd, In, Size, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    In += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

RmdServer::RmdServer(ServerOptions TheOptions)
    : Options(std::move(TheOptions)), Queue(Options.QueueCapacity) {}

Expected<std::unique_ptr<RmdServer>> RmdServer::start(ServerOptions Options) {
  if (Options.SocketPath.empty())
    Options.SocketPath = "@rmd-serve-" + std::to_string(::getpid());
  if (Options.QueueCapacity == 0)
    Options.QueueCapacity = 1;
  std::unique_ptr<RmdServer> Server(new RmdServer(std::move(Options)));
  Status S = Server->bindAndListen();
  if (!S)
    return S;
  unsigned W = ThreadPool::resolveThreadCount(Server->Options.Workers);
  Server->Options.Workers = W;
  Server->Workers = std::make_unique<ThreadPool>(W);
  Server->DispatcherThread = std::thread([S = Server.get()] {
    S->dispatcherLoop();
  });
  Server->AcceptThread = std::thread([S = Server.get()] { S->acceptLoop(); });
  return Server;
}

RmdServer::~RmdServer() { stop(); }

Status RmdServer::bindAndListen() {
  sockaddr_un Addr;
  socklen_t Len;
  if (!fillSockAddr(Options.SocketPath, Addr, Len))
    return Status(ErrorCode::ProtocolError,
                  "bad socket path '" + Options.SocketPath + "'");
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (ListenFd < 0)
    return Status(ErrorCode::CacheIO,
                  std::string("socket(): ") + std::strerror(errno));
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), Len) < 0) {
    Status S(ErrorCode::CacheIO, "bind('" + Options.SocketPath +
                                     "'): " + std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return S;
  }
  if (::listen(ListenFd, 64) < 0) {
    Status S(ErrorCode::CacheIO,
             std::string("listen(): ") + std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return S;
  }
  return Status::ok();
}

void RmdServer::acceptLoop() {
  while (true) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr, SOCK_CLOEXEC);
    if (Fd < 0) {
      if (Stopping.load())
        break;
      if (errno == EINTR)
        continue;
      // EBADF/EINVAL mean the listen socket was torn down under us.
      if (errno == EBADF || errno == EINVAL)
        break;
      continue;
    }
    if (Stopping.load()) {
      ::close(Fd);
      break;
    }
    if (FaultInjection::fire(faultpoints::ServerAccept)) {
      // Injected accept failure: the connection attempt is dropped; the
      // loop keeps serving everyone else.
      StatAcceptDrops.add();
      ::close(Fd);
      continue;
    }
    reapFinishedReaders(false);
    auto Conn = std::make_shared<Connection>();
    Conn->Fd = Fd;
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Conn->Id = NextConnId++;
    Connections.emplace_back();
    ConnEntry &Entry = Connections.back();
    Entry.Conn = Conn;
    Entry.Reader = std::thread([this, E = &Entry] { readerLoop(E); });
  }
}

void RmdServer::readerLoop(ConnEntry *Entry) {
  Connection &Conn = *Entry->Conn;
  while (true) {
    uint8_t LenBytes[4];
    if (!readFully(Conn.Fd, LenBytes, 4))
      break;
    uint32_t Len = 0;
    for (int I = 0; I < 4; ++I)
      Len |= static_cast<uint32_t>(LenBytes[I]) << (8 * I);
    if (Len == 0 || Len > kMaxFrameBytes) {
      // A garbage length prefix poisons the stream position; answer once
      // (best effort) and drop the connection rather than resync blindly.
      ProtocolErrors.fetch_add(1);
      StatProtocolErrors.add();
      sendFrame(Conn, encodeErrorReply(
                          0, MessageType::Ping,
                          Status(ErrorCode::ProtocolError,
                                 "frame length " + std::to_string(Len) +
                                     " outside (0, " +
                                     std::to_string(kMaxFrameBytes) + "]")));
      break;
    }
    WorkItem Item;
    Item.Conn = Entry->Conn;
    Item.Payload.resize(Len);
    if (!readFully(Conn.Fd, Item.Payload.data(), Len))
      break;
    // Peek before the push: tryPush takes the item by value, so a failed
    // push has still consumed the payload.
    MessageType Type;
    uint32_t RequestId;
    peekFrame(Item.Payload, Type, RequestId);
    bool InjectFull = FaultInjection::fire(faultpoints::ServerEnqueue);
    if (InjectFull || !Queue.tryPush(std::move(Item))) {
      // Backpressure: the queue is full (or behaves as if, under the
      // server.enqueue fault). The client gets a structured Overloaded
      // answer for *this* request and may retry; nothing is dropped
      // silently.
      Overloads.fetch_add(1);
      StatOverloads.add();
      sendFrame(Conn, encodeErrorReply(
                          RequestId, Type,
                          Status(ErrorCode::Overloaded,
                                 "server request queue is full")));
    }
  }
  closeConnectionSessions(Conn.Id);
  ::close(Conn.Fd);
  Entry->Done.store(true);
}

void RmdServer::dispatcherLoop() {
  // The worker pool's blocks each run drainQueue() until the queue closes.
  // parallelFor rethrows the first block exception at the join (including
  // an armed threadpool.task fault); restarting keeps the server degraded
  // but live instead of dead, mirroring the reduction pipeline's ladder.
  while (true) {
    try {
      Workers->parallelFor(0, Workers->concurrency(),
                           [this](size_t, size_t) { drainQueue(); });
      break; // clean return: queue closed and drained
    } catch (...) {
      globalDegradation().noteWorkerRethrow();
      if (Stopping.load() && Queue.closed())
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void RmdServer::drainQueue() {
  while (std::optional<WorkItem> Item = Queue.pop()) {
    RequestsServed.fetch_add(1);
    StatRequests.add();
    handleRequest(*Item->Conn, Item->Payload);
  }
}

void RmdServer::reapFinishedReaders(bool JoinAll) {
  std::lock_guard<std::mutex> Lock(ConnMutex);
  for (auto It = Connections.begin(); It != Connections.end();) {
    if (JoinAll || It->Done.load()) {
      if (It->Reader.joinable())
        It->Reader.join();
      It = Connections.erase(It);
    } else {
      ++It;
    }
  }
}

void RmdServer::closeConnectionSessions(uint64_t ConnId) {
  std::lock_guard<std::mutex> Lock(SessionsMutex);
  for (auto It = Sessions.begin(); It != Sessions.end();) {
    if (It->second->ConnId == ConnId) {
      StatSessionsClosed.add();
      It = Sessions.erase(It);
    } else {
      ++It;
    }
  }
}

void RmdServer::stop() {
  if (Stopped.exchange(true))
    return;
  Stopping.store(true);
  StopToken.cancel(); // abandon in-flight schedule-loops promptly
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  {
    // Wake blocked readers so they observe EOF and tear down.
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (ConnEntry &E : Connections)
      ::shutdown(E.Conn->Fd, SHUT_RDWR);
  }
  if (AcceptThread.joinable())
    AcceptThread.join();
  reapFinishedReaders(true);
  Queue.close();
  if (DispatcherThread.joinable())
    DispatcherThread.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (!Options.SocketPath.empty() && Options.SocketPath[0] != '@')
    ::unlink(Options.SocketPath.c_str());
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    for ([[maybe_unused]] auto &Entry : Sessions)
      StatSessionsClosed.add();
    Sessions.clear();
  }
  ShutdownCv.notify_all();
}

void RmdServer::waitForShutdown() {
  // Polls so requestShutdownAsync() can stay signal-handler-safe (a bare
  // atomic store; no cv notify needed from the handler).
  std::unique_lock<std::mutex> Lock(ShutdownMutex);
  while (!ShutdownRequested.load() && !Stopping.load())
    ShutdownCv.wait_for(Lock, std::chrono::milliseconds(50));
}

size_t RmdServer::sessionCount() const {
  std::lock_guard<std::mutex> Lock(SessionsMutex);
  return Sessions.size();
}

void RmdServer::sendFrame(Connection &Conn,
                          const std::vector<uint8_t> &Payload) {
  uint8_t LenBytes[4];
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I < 4; ++I)
    LenBytes[I] = static_cast<uint8_t>(Len >> (8 * I));
  std::lock_guard<std::mutex> Lock(Conn.WriteMutex);
  if (writeFully(Conn.Fd, LenBytes, 4))
    writeFully(Conn.Fd, Payload.data(), Payload.size());
}

void RmdServer::peekFrame(const std::vector<uint8_t> &Payload,
                          MessageType &Type, uint32_t &RequestId) {
  Type = MessageType::Ping;
  RequestId = 0;
  if (Payload.size() >= 2) {
    uint8_t Bare = Payload[1] & ~kResponseBit;
    if (Bare >= static_cast<uint8_t>(MessageType::Ping) &&
        Bare <= static_cast<uint8_t>(MessageType::Shutdown))
      Type = static_cast<MessageType>(Bare);
  }
  if (Payload.size() >= 8)
    for (int I = 0; I < 4; ++I)
      RequestId |= static_cast<uint32_t>(Payload[4 + I]) << (8 * I);
}

void RmdServer::sendError(Connection &Conn, MessageType Type,
                          uint32_t RequestId, Status Error) {
  if (Error.code() == ErrorCode::ProtocolError) {
    ProtocolErrors.fetch_add(1);
    StatProtocolErrors.add();
  }
  sendFrame(Conn, encodeErrorReply(RequestId, Type, Error));
}

void RmdServer::handleRequest(Connection &Conn,
                              const std::vector<uint8_t> &Payload) {
  WireReader In(Payload);
  Expected<FrameHeader> Header = decodeHeader(In, /*ExpectResponse=*/false);
  if (!Header) {
    MessageType Type;
    uint32_t RequestId;
    peekFrame(Payload, Type, RequestId);
    sendError(Conn, Type, RequestId, Header.status());
    return;
  }
  MessageType Type = static_cast<MessageType>(Header.value().Type);
  uint32_t RequestId = Header.value().RequestId;

  Status Error = Status::ok();
  std::vector<uint8_t> Reply;
  switch (Type) {
  case MessageType::Ping: {
    Expected<PingRequest> R = decodePingRequest(In);
    if (!R)
      Error = R.status();
    else
      Reply = encodeReply(RequestId, PingReply{});
    break;
  }
  case MessageType::LoadMachine: {
    Expected<LoadMachineRequest> R = decodeLoadMachineRequest(In);
    if (!R)
      Error = R.status();
    else
      Reply = handleLoadMachine(R.value(), RequestId, Error);
    break;
  }
  case MessageType::OpenSession: {
    Expected<OpenSessionRequest> R = decodeOpenSessionRequest(In);
    if (!R)
      Error = R.status();
    else
      Reply = handleOpenSession(R.value(), Conn.Id, RequestId, Error);
    break;
  }
  case MessageType::Batch: {
    Expected<BatchRequest> R = decodeBatchRequest(In);
    if (!R)
      Error = R.status();
    else
      Reply = handleBatch(R.value(), Conn.Id, RequestId, Error);
    break;
  }
  case MessageType::ScheduleLoop: {
    Expected<ScheduleLoopRequest> R = decodeScheduleLoopRequest(In);
    if (!R)
      Error = R.status();
    else
      Reply = handleScheduleLoop(R.value(), RequestId, Error);
    break;
  }
  case MessageType::Stats: {
    Expected<StatsRequest> R = decodeStatsRequest(In);
    if (!R)
      Error = R.status();
    else
      Reply = handleStats(R.value(), Conn.Id, RequestId, Error);
    break;
  }
  case MessageType::CloseSession: {
    Expected<CloseSessionRequest> R = decodeCloseSessionRequest(In);
    if (!R)
      Error = R.status();
    else
      Reply = handleCloseSession(R.value(), Conn.Id, RequestId, Error);
    break;
  }
  case MessageType::Shutdown: {
    Expected<ShutdownRequest> R = decodeShutdownRequest(In);
    if (!R) {
      Error = R.status();
      break;
    }
    Reply = encodeReply(RequestId, ShutdownReply{});
    sendFrame(Conn, Reply);
    ShutdownRequested.store(true);
    ShutdownCv.notify_all();
    return; // reply already sent
  }
  }

  if (!Error.isOk())
    sendError(Conn, Type, RequestId, std::move(Error));
  else
    sendFrame(Conn, Reply);
}

std::vector<uint8_t>
RmdServer::handleLoadMachine(const LoadMachineRequest &R, uint32_t RequestId,
                             Status &Error) {
  Expected<const LoadedMachine *> M = Registry.load(R.Name);
  if (!M) {
    Error = M.status();
    return {};
  }
  LoadMachineReply Reply;
  Reply.MachineId = M.value()->id();
  Reply.Degraded = M.value()->degraded();
  Reply.Bitvector = M.value()->usesBitvector();
  Reply.NumOperations =
      static_cast<uint32_t>(M.value()->reduced().numOperations());
  Reply.OriginalResources =
      static_cast<uint32_t>(M.value()->model().MD.numResources());
  Reply.ReducedResources =
      static_cast<uint32_t>(M.value()->reduced().numResources());
  return encodeReply(RequestId, Reply);
}

std::vector<uint8_t>
RmdServer::handleOpenSession(const OpenSessionRequest &R, uint64_t ConnId,
                             uint32_t RequestId, Status &Error) {
  if (FaultInjection::fire(faultpoints::ServerSessionAlloc)) {
    // Injected allocation failure: a structured error, no session
    // registered (FaultInjectionTest asserts the count returns to zero).
    Error = Status(ErrorCode::FaultInjected,
                   "injected session-allocation failure");
    return {};
  }
  const LoadedMachine *M = Registry.byId(R.MachineId);
  if (!M) {
    Error = Status(ErrorCode::ProtocolError,
                   "unknown machine id " + std::to_string(R.MachineId));
    return {};
  }
  QueryConfig Config;
  if (R.Modulo) {
    if (R.ModuloII <= 0 || R.ModuloII > (1 << 16)) {
      Error = Status(ErrorCode::ProtocolError,
                     "modulo session needs an II in [1, 65536], got " +
                         std::to_string(R.ModuloII));
      return {};
    }
    Config = QueryConfig::modulo(R.ModuloII);
  } else {
    Config = QueryConfig::linear(R.MinCycle);
  }
  Config.UnionAlternativeCheck = R.UnionAlt != 0;

  auto S = std::make_shared<Session>();
  S->ConnId = ConnId;
  S->Machine = M;
  S->Config = Config;
  S->Tenant = R.Tenant;
  S->Module = M->makeModule(Config);
  if (R.Modulo) {
    const MachineDescription &MD = M->reduced();
    S->SelfConflict.assign(MD.numOperations(), 0);
    for (OpId Op = 0; Op < MD.numOperations(); ++Op)
      S->SelfConflict[Op] =
          hasModuloSelfConflict(MD.operation(Op).table(), R.ModuloII);
  }
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    S->Id = NextSessionId++;
    Sessions.emplace(S->Id, S);
  }
  StatSessionsOpened.add();
  OpenSessionReply Reply;
  Reply.SessionId = S->Id;
  return encodeReply(RequestId, Reply);
}

std::shared_ptr<RmdServer::Session>
RmdServer::findSession(uint32_t Id, uint64_t ConnId, Status &Error) {
  std::lock_guard<std::mutex> Lock(SessionsMutex);
  auto It = Sessions.find(Id);
  if (It == Sessions.end()) {
    Error = Status(ErrorCode::ProtocolError,
                   "unknown session id " + std::to_string(Id));
    return nullptr;
  }
  if (It->second->ConnId != ConnId) {
    // Tenant isolation: a session is visible only to the connection that
    // opened it; a stray or malicious handle gets the same error as a
    // nonexistent one (no probing which ids are live elsewhere).
    Error = Status(ErrorCode::ProtocolError,
                   "unknown session id " + std::to_string(Id));
    return nullptr;
  }
  return It->second;
}

std::vector<uint8_t> RmdServer::handleBatch(const BatchRequest &R,
                                            uint64_t ConnId,
                                            uint32_t RequestId,
                                            Status &Error) {
  std::shared_ptr<Session> S = findSession(R.SessionId, ConnId, Error);
  if (!S)
    return {};

  // Validate the whole batch before touching the module: the query API
  // treats out-of-range ops/cycles and self-conflicting placements as
  // caller contract violations (asserts), so the trust boundary is here.
  const size_t NumOps = S->Machine->reduced().numOperations();
  const bool Modulo = S->Config.Mode == QueryConfig::Modulo;
  for (size_t I = 0; I < R.Events.size(); ++I) {
    const BatchEvent &E = R.Events[I];
    std::string What;
    if (E.TheVerb != Verb::Reset && E.Op >= NumOps)
      What = "operation " + std::to_string(E.Op) + " out of range";
    else if (!Modulo && E.TheVerb != Verb::Reset &&
             E.Cycle < S->Config.MinCycle)
      What = "cycle " + std::to_string(E.Cycle) +
             " below the session's linear window";
    else if (Modulo && !S->SelfConflict.empty() && S->SelfConflict[E.Op] &&
             (E.TheVerb == Verb::Assign || E.TheVerb == Verb::AssignFree ||
              E.TheVerb == Verb::CheckAssign))
      What = "operation " + std::to_string(E.Op) +
             " self-conflicts at this II and can never be placed";
    if (!What.empty()) {
      Error = Status(ErrorCode::ProtocolError,
                     "event " + std::to_string(I) + ": " + What);
      return {};
    }
  }

  BatchReply Reply;
  Reply.Results.resize(R.Events.size());
  std::vector<InstanceId> Evicted;
  {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    ContentionQueryModule &Q = *S->Module;
    for (size_t I = 0; I < R.Events.size(); ++I) {
      const BatchEvent &E = R.Events[I];
      switch (E.TheVerb) {
      case Verb::Check:
        Reply.Results[I] = Q.check(E.Op, E.Cycle) ? 1 : 0;
        break;
      case Verb::Assign:
        Q.assign(E.Op, E.Cycle, E.Instance);
        ++S->LiveInstances;
        Reply.Results[I] = kResultDone;
        break;
      case Verb::Free:
        Q.free(E.Op, E.Cycle, E.Instance);
        --S->LiveInstances;
        Reply.Results[I] = kResultDone;
        break;
      case Verb::CheckAssign:
        if (Q.check(E.Op, E.Cycle)) {
          Q.assign(E.Op, E.Cycle, E.Instance);
          ++S->LiveInstances;
          Reply.Results[I] = 1;
        } else {
          Reply.Results[I] = 0;
        }
        break;
      case Verb::AssignFree: {
        Evicted.clear();
        Q.assignAndFree(E.Op, E.Cycle, E.Instance, Evicted);
        S->LiveInstances += 1;
        S->LiveInstances -= Evicted.size();
        Reply.Results[I] = static_cast<uint8_t>(
            std::min<size_t>(Evicted.size(), 0xFE));
        break;
      }
      case Verb::Reset:
        Q.reset();
        S->LiveInstances = 0;
        Reply.Results[I] = kResultDone;
        break;
      }
    }
  }
  StatBatchQueries.add(R.Events.size());
  if (!S->Tenant.empty()) {
    // Per-tenant accounting: a counter per tenant name, registered lazily
    // (the registry is idempotent per name) and summed across sessions.
    StatCounter("server.tenant." + S->Tenant + ".queries")
        .add(R.Events.size());
  }
  return encodeReply(RequestId, Reply);
}

std::vector<uint8_t>
RmdServer::handleScheduleLoop(const ScheduleLoopRequest &R,
                              uint32_t RequestId, Status &Error) {
  const LoadedMachine *M = Registry.byId(R.MachineId);
  if (!M) {
    Error = Status(ErrorCode::ProtocolError,
                   "unknown machine id " + std::to_string(R.MachineId));
    return {};
  }
  DiagnosticEngine Diags;
  std::optional<DepGraph> G = parseLoopGraph(R.GraphText, M->model(), Diags);
  if (!G) {
    std::ostringstream SS;
    Diags.print(SS, "<loop-graph>");
    Error = Status(ErrorCode::ParseError, SS.str());
    return {};
  }

  QueryEnvironment Env;
  Env.FlatMD = &M->reduced();
  Env.Groups = &M->groups();
  Env.MakeModule = [M](QueryConfig Config) { return M->makeModule(Config); };

  ModuloScheduleOptions Opts;
  Opts.BudgetRatio = std::max(1, static_cast<int>(R.BudgetRatio));
  Opts.MaxII = std::max(0, static_cast<int>(R.MaxII));
  if (R.DeadlineMs > 0)
    Opts.TheDeadline = Deadline::afterMillis(R.DeadlineMs);
  Opts.Cancel = &StopToken; // server stop abandons the run

  ModuloScheduleResult Result = moduloSchedule(*G, M->model().MD, Env, Opts);
  StatScheduleLoops.add();

  ScheduleLoopReply Reply;
  Reply.Success = Result.Success;
  Reply.Outcome = static_cast<uint8_t>(Result.Outcome);
  Reply.II = Result.II;
  Reply.Time.assign(Result.Time.begin(), Result.Time.end());
  Reply.Alternative.assign(Result.Alternative.begin(),
                           Result.Alternative.end());
  Reply.Message = Result.Success ? "" : Result.Error.render();
  return encodeReply(RequestId, Reply);
}

std::vector<uint8_t> RmdServer::handleStats(const StatsRequest &R,
                                            uint64_t ConnId,
                                            uint32_t RequestId,
                                            Status &Error) {
  StatsReply Reply;
  if (R.SessionId == 0) {
    Reply.ServerWide = 1;
    Reply.Server.ActiveSessions = sessionCount();
    Reply.Server.MachinesLoaded = Registry.size();
    Reply.Server.RequestsServed = RequestsServed.load();
    Reply.Server.OverloadRejections = Overloads.load();
    Reply.Server.ProtocolErrors = ProtocolErrors.load();
    return encodeReply(RequestId, Reply);
  }
  std::shared_ptr<Session> S = findSession(R.SessionId, ConnId, Error);
  if (!S)
    return {};
  {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Reply.Session.Counters = S->Module->counters();
    Reply.Session.LiveInstances = S->LiveInstances;
  }
  return encodeReply(RequestId, Reply);
}

std::vector<uint8_t>
RmdServer::handleCloseSession(const CloseSessionRequest &R, uint64_t ConnId,
                              uint32_t RequestId, Status &Error) {
  std::shared_ptr<Session> S = findSession(R.SessionId, ConnId, Error);
  if (!S)
    return {};
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    Sessions.erase(R.SessionId);
  }
  StatSessionsClosed.add();
  return encodeReply(RequestId, CloseSessionReply{});
}
