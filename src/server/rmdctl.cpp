//===- server/rmdctl.cpp - Control CLI for rmdserved ----------------------===//
//
// Small operator front end for the contention-query server:
//
//   rmdctl --socket=<path|@name> ping
//   rmdctl --socket=<path|@name> load <machine>
//   rmdctl --socket=<path|@name> stats
//   rmdctl --socket=<path|@name> schedule <machine> [loop.graph | -]
//   rmdctl --socket=<path|@name> shutdown
//
// Exit status 0 on success; structured server errors print as
// "code: message" and exit 1.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace rmd;
using namespace rmd::server;
using namespace rmd::wire;

static void usage() {
  std::cerr
      << "usage: rmdctl --socket=<path|@name> "
         "(ping | load <machine> | stats | schedule <machine> [loop.graph | -]"
         " | shutdown)\n";
}

static int fail(const Status &S) {
  std::cerr << "rmdctl: " << S.render() << "\n";
  return 1;
}

int main(int Argc, char **Argv) {
  std::string Socket;
  std::vector<std::string> Args;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--socket=", 0) == 0)
      Socket = Arg.substr(sizeof("--socket=") - 1);
    else if (Arg == "--help") {
      usage();
      return 0;
    } else
      Args.push_back(Arg);
  }
  if (Socket.empty() || Args.empty()) {
    usage();
    return 1;
  }

  Expected<std::unique_ptr<RmdClient>> Client =
      RmdClient::connect(Socket, /*RecvTimeoutMs=*/30000);
  if (!Client)
    return fail(Client.status());
  RmdClient &C = *Client.value();

  const std::string &Cmd = Args[0];
  if (Cmd == "ping") {
    if (Status S = C.ping(); !S)
      return fail(S);
    std::cout << "ok\n";
    return 0;
  }
  if (Cmd == "load") {
    if (Args.size() != 2) {
      usage();
      return 1;
    }
    Expected<LoadMachineReply> R = C.loadMachine(Args[1]);
    if (!R)
      return fail(R.status());
    std::cout << "machine " << Args[1] << ": id " << R.value().MachineId
              << ", " << R.value().NumOperations << " ops, "
              << R.value().OriginalResources << " -> "
              << R.value().ReducedResources << " resources ("
              << (R.value().Bitvector ? "bitvector" : "discrete")
              << (R.value().Degraded ? ", degraded" : "") << ")\n";
    return 0;
  }
  if (Cmd == "stats") {
    Expected<StatsReply> R = C.serverStats();
    if (!R)
      return fail(R.status());
    const ServerStats &S = R.value().Server;
    std::cout << "sessions:         " << S.ActiveSessions << "\n"
              << "machines:         " << S.MachinesLoaded << "\n"
              << "requests:         " << S.RequestsServed << "\n"
              << "overloaded:       " << S.OverloadRejections << "\n"
              << "protocol errors:  " << S.ProtocolErrors << "\n";
    return 0;
  }
  if (Cmd == "schedule") {
    if (Args.size() < 2 || Args.size() > 3) {
      usage();
      return 1;
    }
    Expected<LoadMachineReply> M = C.loadMachine(Args[1]);
    if (!M)
      return fail(M.status());
    std::ostringstream Text;
    if (Args.size() == 3 && Args[2] != "-") {
      std::ifstream In(Args[2]);
      if (!In)
        return fail(Status(ErrorCode::CacheIO,
                           "cannot open loop graph '" + Args[2] + "'"));
      Text << In.rdbuf();
    } else {
      Text << std::cin.rdbuf();
    }
    ScheduleLoopRequest Req;
    Req.MachineId = M.value().MachineId;
    Req.GraphText = Text.str();
    Expected<ScheduleLoopReply> R = C.scheduleLoop(Req);
    if (!R)
      return fail(R.status());
    const ScheduleLoopReply &Reply = R.value();
    if (!Reply.Success) {
      std::cerr << "rmdctl: scheduling failed (outcome "
                << int(Reply.Outcome) << "): " << Reply.Message << "\n";
      return 1;
    }
    std::cout << "II " << Reply.II << "\n";
    for (size_t I = 0; I < Reply.Time.size(); ++I) {
      std::cout << "node " << I << ": cycle " << Reply.Time[I];
      if (I < Reply.Alternative.size() && Reply.Alternative[I] >= 0)
        std::cout << " alt " << Reply.Alternative[I];
      std::cout << "\n";
    }
    return 0;
  }
  if (Cmd == "shutdown") {
    if (Status S = C.shutdownServer(); !S)
      return fail(S);
    std::cout << "ok\n";
    return 0;
  }
  usage();
  return 1;
}
