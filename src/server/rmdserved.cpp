//===- server/rmdserved.cpp - Contention-query server daemon --------------===//
//
// Scheduling as a service: serves contention queries and schedule-loop
// requests for many concurrent clients over a local stream socket
// (rmd-wire-v1; docs/server.md).
//
// Usage:
//   rmdserved [--socket=<path|@name>] [--workers=<n>] [--queue=<n>]
//             [--faults=<spec>] [--stats-json=<file>]
//
// The default socket is an abstract-namespace name derived from the pid
// (printed on startup), so tests and benches never leave socket files
// behind. The daemon runs until a client sends Shutdown or it receives
// SIGINT/SIGTERM.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"
#include "support/FaultInjection.h"
#include "support/Stats.h"

#include <csignal>
#include <cstdlib>
#include <iostream>

using namespace rmd;
using namespace rmd::server;

static RmdServer *ActiveServer = nullptr;

static void onSignal(int) {
  // Just flip the stop flag via the public API's signal-safe subset:
  // stop() joins threads and must not run in a handler, so request
  // shutdown and let main() do the teardown.
  if (ActiveServer)
    ActiveServer->requestShutdownAsync();
}

static void usage() {
  std::cerr << "usage: rmdserved [--socket=<path|@name>] [--workers=<n>] "
               "[--queue=<n>] [--faults=<spec>] [--stats-json=<file>]\n";
}

int main(int Argc, char **Argv) {
  StatsJsonGuard StatsJson(Argc, Argv, "rmdserved");
  ServerOptions Options;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--socket=", 0) == 0) {
      Options.SocketPath = Arg.substr(sizeof("--socket=") - 1);
    } else if (Arg.rfind("--workers=", 0) == 0) {
      Options.Workers =
          static_cast<unsigned>(std::atoi(Arg.c_str() + sizeof("--workers=") - 1));
    } else if (Arg.rfind("--queue=", 0) == 0) {
      Options.QueueCapacity =
          static_cast<size_t>(std::atol(Arg.c_str() + sizeof("--queue=") - 1));
    } else if (Arg.rfind("--faults=", 0) == 0) {
      Status S = FaultInjection::instance().configure(
          Arg.substr(sizeof("--faults=") - 1));
      if (!S) {
        std::cerr << "rmdserved: " << S.render() << "\n";
        return 1;
      }
    } else {
      usage();
      return Arg == "--help" ? 0 : 1;
    }
  }

  Expected<std::unique_ptr<RmdServer>> Server =
      RmdServer::start(std::move(Options));
  if (!Server) {
    std::cerr << "rmdserved: " << Server.status().render() << "\n";
    return 1;
  }
  ActiveServer = Server.value().get();
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::cout << "rmdserved: listening on " << Server.value()->socketPath()
            << " (" << Server.value()->workerCount() << " workers, queue "
            << Server.value()->queueCapacity() << ")" << std::endl;

  Server.value()->waitForShutdown();
  Server.value()->stop();
  std::cout << "rmdserved: served " << Server.value()->requestsServed()
            << " requests (" << Server.value()->overloadRejections()
            << " overloaded, " << Server.value()->protocolErrors()
            << " protocol errors)" << std::endl;
  ActiveServer = nullptr;
  return 0;
}
