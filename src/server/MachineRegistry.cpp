//===- server/MachineRegistry.cpp -----------------------------------------===//

#include "server/MachineRegistry.h"

#include "query/BitvectorQuery.h"
#include "query/DiscreteQuery.h"
#include "reduce/ReductionCache.h"
#include "support/Stats.h"

using namespace rmd;
using namespace rmd::server;

LoadedMachine::LoadedMachine(std::string TheName, MachineModel TheModel)
    : Name(std::move(TheName)), Model(std::move(TheModel)) {
  EM = expandAlternatives(Model.MD);
  // First rung of the degradation ladder: any reduction failure schedules
  // against the original description (identical constraints, Theorem 1).
  // Goes through the RMD_REDUCTION_CACHE environment cache when set.
  SafeReduction Safe = reduceMachineOrFallback(EM.Flat);
  Degraded = Safe.Degraded;
  Why = Safe.Why;
  Reduced = std::move(Safe.Result.Reduced);
  UseBitvector = Reduced.numResources() <= QueryConfig().WordBits;
}

std::shared_ptr<const BitvectorPatternArena>
LoadedMachine::arenaFor(const QueryConfig &Config) const {
  ArenaKey Key{static_cast<int>(Config.Mode),
               Config.Mode == QueryConfig::Modulo ? Config.ModuloII : 0,
               Config.CyclesPerWordOverride};
  std::lock_guard<std::mutex> Lock(ArenaMutex);
  auto It = Arenas.find(Key);
  if (It != Arenas.end()) {
    static StatCounter ArenaHits("server.arena.hits");
    ArenaHits.add();
    return It->second;
  }
  static StatCounter ArenaBuilds("server.arena.builds");
  ArenaBuilds.add();
  auto Arena = buildBitvectorPatternArena(Reduced, Config);
  Arenas.emplace(Key, Arena);
  return Arena;
}

std::unique_ptr<ContentionQueryModule>
LoadedMachine::makeModule(const QueryConfig &Config) const {
  if (UseBitvector)
    return std::make_unique<BitvectorQueryModule>(Reduced, Config,
                                                  arenaFor(Config));
  return std::make_unique<DiscreteQueryModule>(Reduced, Config);
}

const std::vector<std::string> &MachineRegistry::knownMachines() {
  static const std::vector<std::string> Names = {
      "fig1",     "cydra5",  "alpha21064", "mips-r3000",
      "toy-vliw", "playdoh", "m88100"};
  return Names;
}

static Expected<MachineModel> modelByName(const std::string &Name) {
  if (Name == "fig1") {
    // Fig. 1 ships as a bare description; give it unit latencies and
    // generic roles so schedule-loop requests can still name its ops.
    MachineModel Model;
    Model.MD = makeFig1Machine();
    Model.Latency.assign(Model.MD.numOperations(), 1);
    Model.Role.assign(Model.MD.numOperations(), OpRole::IntAlu);
    return Model;
  }
  if (Name == "cydra5")
    return makeCydra5();
  if (Name == "alpha21064")
    return makeAlpha21064();
  if (Name == "mips-r3000")
    return makeMipsR3000();
  if (Name == "toy-vliw")
    return makeToyVliw();
  if (Name == "playdoh")
    return makePlayDoh();
  if (Name == "m88100")
    return makeM88100();
  std::string Known;
  for (const std::string &N : MachineRegistry::knownMachines()) {
    if (!Known.empty())
      Known += ", ";
    Known += N;
  }
  return Status(ErrorCode::ProtocolError,
                "unknown machine '" + Name + "' (known: " + Known + ")");
}

Expected<const LoadedMachine *> MachineRegistry::load(const std::string &Name) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = IdByName.find(Name);
    if (It != IdByName.end())
      return const_cast<const LoadedMachine *>(
          Machines[It->second - 1].get());
  }
  // Build outside the lock: reduction is seconds-scale on big machines and
  // must not stall unrelated lookups. A racing load of the same name is
  // resolved below (first registration wins; the loser's work is dropped).
  Expected<MachineModel> Model = modelByName(Name);
  if (!Model)
    return Model.status();
  auto Built = std::make_unique<LoadedMachine>(Name, std::move(Model.value()));
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = IdByName.find(Name);
  if (It != IdByName.end())
    return const_cast<const LoadedMachine *>(Machines[It->second - 1].get());
  Built->Id = static_cast<uint32_t>(Machines.size()) + 1;
  IdByName.emplace(Name, Built->Id);
  Machines.push_back(std::move(Built));
  return const_cast<const LoadedMachine *>(Machines.back().get());
}

const LoadedMachine *MachineRegistry::byId(uint32_t Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Id == 0 || Id > Machines.size())
    return nullptr;
  return Machines[Id - 1].get();
}

size_t MachineRegistry::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Machines.size();
}

