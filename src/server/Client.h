//===- server/Client.h - rmd-wire-v1 client library ------------*- C++ -*-===//
///
/// \file
/// Synchronous client for the contention-query server. One RmdClient is
/// one connection: requests are framed, sent, and their responses matched
/// by echoed request id, with the response type and version validated, so
/// a confused or malicious server surfaces as ErrorCode::ProtocolError
/// rather than silently-wrong data. Not thread-safe — a client per thread
/// is the intended shape (sessions are pinned to their connection anyway).
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SERVER_CLIENT_H
#define RMD_SERVER_CLIENT_H

#include "server/Protocol.h"
#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rmd {
namespace server {

class RmdClient {
public:
  /// Connects to \p SocketPath ('@' = Linux abstract namespace, matching
  /// ServerOptions). \p RecvTimeoutMs > 0 arms SO_RCVTIMEO so a wedged
  /// server yields TimedOut instead of hanging the caller forever.
  static Expected<std::unique_ptr<RmdClient>>
  connect(const std::string &SocketPath, int RecvTimeoutMs = 0);

  ~RmdClient();

  RmdClient(const RmdClient &) = delete;
  RmdClient &operator=(const RmdClient &) = delete;

  Status ping();
  Expected<wire::LoadMachineReply> loadMachine(const std::string &Name);
  Expected<wire::OpenSessionReply>
  openSession(const wire::OpenSessionRequest &R);
  Expected<wire::BatchReply> runBatch(const wire::BatchRequest &R);
  Expected<wire::ScheduleLoopReply>
  scheduleLoop(const wire::ScheduleLoopRequest &R);
  Expected<wire::StatsReply> sessionStats(uint32_t SessionId);
  Expected<wire::StatsReply> serverStats();
  Status closeSession(uint32_t SessionId);
  Status shutdownServer();

private:
  explicit RmdClient(int Fd) : Fd(Fd) {}

  /// Sends \p Payload as one frame and reads the response frame into
  /// \p Response.
  Status roundTrip(const std::vector<uint8_t> &Payload,
                   std::vector<uint8_t> &Response);

  /// Full request/response cycle: send, receive, validate header (version,
  /// response type matching \p Type, request-id echo) and the status
  /// prefix, leaving \p In positioned at the reply body.
  Status transact(wire::MessageType Type,
                  const std::vector<uint8_t> &Payload,
                  std::vector<uint8_t> &Response, size_t &BodyOffset);

  int Fd = -1;
  uint32_t NextRequestId = 1;
};

} // namespace server
} // namespace rmd

#endif // RMD_SERVER_CLIENT_H
