//===- server/Workload.h - Seeded valid query workloads --------*- C++ -*-===//
///
/// \file
/// Deterministic batch-event generator for the differential concurrency
/// test and the throughput bench. The generator owns a *local* query
/// module (a private mirror of what the server builds for the same
/// machine and config) and simulates every event against it before
/// emitting it, so the stream is valid by construction: frees name live
/// instances, assigns only follow successful checks, and modulo
/// self-conflicting operations are never placed. Because simulation and
/// emission use the same module API the server calls, the local module's
/// WorkCounters and occupancy are the bit-identical reference for the
/// server session fed the same seed.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SERVER_WORKLOAD_H
#define RMD_SERVER_WORKLOAD_H

#include "mdesc/MachineDescription.h"
#include "query/QueryModule.h"
#include "server/Protocol.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace rmd {
namespace server {

class WorkloadGenerator {
public:
  /// \p Reduced is the (already reduced) description the server schedules
  /// against — clients obtain the same one deterministically because
  /// reduction is deterministic per machine. \p Span bounds the cycle
  /// range: linear events land in [MinCycle, MinCycle + Span), modulo
  /// events in [0, II).
  WorkloadGenerator(const MachineDescription &Reduced,
                    const QueryConfig &Config, uint64_t Seed, int Span = 64);
  ~WorkloadGenerator();

  /// Appends \p N events to \p Events and the result byte the server must
  /// produce for each to \p Expected (same indexing).
  void nextBatch(size_t N, std::vector<wire::BatchEvent> &Events,
                 std::vector<uint8_t> &Expected);

  /// The local mirror module — the ground truth a server session fed the
  /// same stream must match exactly.
  const ContentionQueryModule &module() const { return *Module; }

  /// Mutable access for callers extending the stream by hand (e.g. the
  /// differential test's occupancy probe, which must run the same checks
  /// locally that it sends to the server).
  ContentionQueryModule &mutableModule() { return *Module; }

  uint64_t liveInstances() const { return Live.size(); }

private:
  uint64_t next();

  QueryConfig Config;
  int Span;
  std::unique_ptr<ContentionQueryModule> Module;
  std::vector<OpId> Candidates; ///< ops legal to assign (no self-conflict)
  struct LivePlacement {
    OpId Op;
    int Cycle;
    int Instance;
  };
  std::vector<LivePlacement> Live;
  uint64_t RngState;
  int NextInstance = 1;
};

} // namespace server
} // namespace rmd

#endif // RMD_SERVER_WORKLOAD_H
