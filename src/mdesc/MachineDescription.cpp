//===- mdesc/MachineDescription.cpp ---------------------------------------===//

#include "mdesc/MachineDescription.h"

#include <algorithm>
#include <set>

using namespace rmd;

ReservationTable::ReservationTable(std::vector<ResourceUsage> TheUsages)
    : Usages(std::move(TheUsages)) {
  std::sort(Usages.begin(), Usages.end());
  Usages.erase(std::unique(Usages.begin(), Usages.end()), Usages.end());
  // Negative usage cycles are representable here (so validate() and
  // lintMachine() can diagnose descriptions built from untrusted data)
  // but invalid: addUsage() asserts, validate() errors, lintMachine()
  // warns, and the bitvector query module rejects them at construction.
}

void ReservationTable::addUsage(ResourceId Resource, int Cycle) {
  assert(Cycle >= 0 && "reservation table cycles must be nonnegative");
  ResourceUsage U{Resource, Cycle};
  auto It = std::lower_bound(Usages.begin(), Usages.end(), U);
  if (It != Usages.end() && *It == U)
    return;
  Usages.insert(It, U);
}

void ReservationTable::addUsageRange(ResourceId Resource, int First,
                                     int Last) {
  assert(First <= Last && "empty usage range");
  for (int C = First; C <= Last; ++C)
    addUsage(Resource, C);
}

int ReservationTable::length() const {
  int MaxCycle = -1;
  for (const ResourceUsage &U : Usages)
    MaxCycle = std::max(MaxCycle, U.Cycle);
  return MaxCycle + 1;
}

bool ReservationTable::uses(ResourceId Resource, int Cycle) const {
  ResourceUsage U{Resource, Cycle};
  return std::binary_search(Usages.begin(), Usages.end(), U);
}

std::vector<int> ReservationTable::usageSet(ResourceId Resource) const {
  std::vector<int> Cycles;
  for (const ResourceUsage &U : Usages)
    if (U.Resource == Resource)
      Cycles.push_back(U.Cycle);
  return Cycles;
}

ResourceId ReservationTable::resourceBound() const {
  ResourceId Bound = 0;
  for (const ResourceUsage &U : Usages)
    Bound = std::max(Bound, U.Resource + 1);
  return Bound;
}

ReservationTable ReservationTable::shifted(int Delta) const {
  std::vector<ResourceUsage> Shifted;
  Shifted.reserve(Usages.size());
  for (const ResourceUsage &U : Usages) {
    assert(U.Cycle + Delta >= 0 && "shift would produce a negative cycle");
    Shifted.push_back(ResourceUsage{U.Resource, U.Cycle + Delta});
  }
  return ReservationTable(std::move(Shifted));
}

ReservationTable ReservationTable::reversed() const {
  int Len = length();
  std::vector<ResourceUsage> Mirrored;
  Mirrored.reserve(Usages.size());
  for (const ResourceUsage &U : Usages)
    Mirrored.push_back(ResourceUsage{U.Resource, Len - 1 - U.Cycle});
  return ReservationTable(std::move(Mirrored));
}

ResourceId MachineDescription::addResource(std::string ResourceName) {
  ResourceNames.push_back(std::move(ResourceName));
  return static_cast<ResourceId>(ResourceNames.size() - 1);
}

OpId MachineDescription::addOperation(
    std::string OpName, std::vector<ReservationTable> Alternatives) {
  assert(!Alternatives.empty() && "operation requires >= 1 alternative");
  Operations.push_back(Operation{std::move(OpName), std::move(Alternatives)});
  return static_cast<OpId>(Operations.size() - 1);
}

OpId MachineDescription::addOperation(std::string OpName,
                                      ReservationTable Table) {
  std::vector<ReservationTable> Alts;
  Alts.push_back(std::move(Table));
  return addOperation(std::move(OpName), std::move(Alts));
}

OpId MachineDescription::findOperation(const std::string &OpName) const {
  for (size_t I = 0; I < Operations.size(); ++I)
    if (Operations[I].Name == OpName)
      return static_cast<OpId>(I);
  return static_cast<OpId>(Operations.size());
}

ResourceId
MachineDescription::findResource(const std::string &ResourceName) const {
  for (size_t I = 0; I < ResourceNames.size(); ++I)
    if (ResourceNames[I] == ResourceName)
      return static_cast<ResourceId>(I);
  return static_cast<ResourceId>(ResourceNames.size());
}

bool MachineDescription::isExpanded() const {
  for (const Operation &Op : Operations)
    if (Op.Alternatives.size() != 1)
      return false;
  return true;
}

size_t MachineDescription::totalUsages() const {
  size_t Total = 0;
  for (const Operation &Op : Operations)
    Total += Op.Alternatives.front().usageCount();
  return Total;
}

int MachineDescription::maxTableLength() const {
  int MaxLen = 0;
  for (const Operation &Op : Operations)
    for (const ReservationTable &RT : Op.Alternatives)
      MaxLen = std::max(MaxLen, RT.length());
  return MaxLen;
}

bool MachineDescription::validate(DiagnosticEngine &Diags) const {
  unsigned Before = Diags.errorCount();

  std::set<std::string> SeenResources;
  for (const std::string &R : ResourceNames)
    if (!SeenResources.insert(R).second)
      Diags.error({}, "duplicate resource name '" + R + "'");

  std::set<std::string> SeenOps;
  for (const Operation &Op : Operations) {
    if (!SeenOps.insert(Op.Name).second)
      Diags.error({}, "duplicate operation name '" + Op.Name + "'");
    if (Op.Alternatives.empty())
      Diags.error({}, "operation '" + Op.Name + "' has no alternatives");
    for (const ReservationTable &RT : Op.Alternatives) {
      for (const ResourceUsage &U : RT.usages()) {
        if (U.Resource >= ResourceNames.size())
          Diags.error({}, "operation '" + Op.Name +
                              "' uses out-of-range resource id " +
                              std::to_string(U.Resource));
        if (U.Cycle < 0)
          Diags.error({}, "operation '" + Op.Name +
                              "' has a negative usage cycle");
      }
    }
  }
  return Diags.errorCount() == Before;
}

ExpandedMachine rmd::expandAlternatives(const MachineDescription &MD) {
  ExpandedMachine EM;
  EM.Flat.setName(MD.name());
  for (ResourceId R = 0; R < MD.numResources(); ++R)
    EM.Flat.addResource(MD.resourceName(R));

  for (size_t G = 0; G < MD.numOperations(); ++G) {
    const Operation &Op = MD.operation(static_cast<OpId>(G));
    EM.Groups.emplace_back();
    for (size_t A = 0; A < Op.Alternatives.size(); ++A) {
      std::string FlatName = Op.Name;
      if (Op.Alternatives.size() > 1)
        FlatName += "@" + std::to_string(A);
      OpId Flat = EM.Flat.addOperation(FlatName, Op.Alternatives[A]);
      EM.Groups.back().push_back(Flat);
      EM.GroupOf.push_back(static_cast<uint32_t>(G));
      EM.AlternativeIndexOf.push_back(static_cast<uint32_t>(A));
    }
  }
  return EM;
}
