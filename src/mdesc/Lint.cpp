//===- mdesc/Lint.cpp -----------------------------------------------------===//

#include "mdesc/Lint.h"

#include <map>
#include <set>
#include <vector>

using namespace rmd;

unsigned rmd::lintMachine(const MachineDescription &MD,
                          DiagnosticEngine &Diags) {
  unsigned Warnings = 0;
  auto Warn = [&](const std::string &Message) {
    Diags.warning({}, Message);
    ++Warnings;
  };

  // Unused resources.
  std::vector<bool> Used(MD.numResources(), false);
  for (const Operation &Op : MD.operations())
    for (const ReservationTable &RT : Op.Alternatives)
      for (const ResourceUsage &U : RT.usages())
        if (U.Resource < Used.size())
          Used[U.Resource] = true;
  for (ResourceId R = 0; R < MD.numResources(); ++R)
    if (!Used[R])
      Warn("resource '" + MD.resourceName(R) + "' is used by no operation");

  std::map<std::vector<ResourceUsage>, std::string> FirstWithTable;
  for (const Operation &Op : MD.operations()) {
    // Empty tables.
    bool AllEmpty = true;
    for (const ReservationTable &RT : Op.Alternatives)
      AllEmpty &= RT.empty();
    if (AllEmpty)
      Warn("operation '" + Op.Name +
           "' uses no resources; it can issue anywhere");

    // Over-long tables.
    for (const ReservationTable &RT : Op.Alternatives)
      if (RT.length() > 64)
        Warn("operation '" + Op.Name + "' spans " +
             std::to_string(RT.length()) +
             " cycles; automaton-based modules are limited to 64");

    // Negative usage cycles. Usage cycles are issue-relative and must be
    // nonnegative: a negative cycle yields a negative word offset in the
    // bitvector reserved table, which wraps size_t indexing into a huge
    // allocation instead of a contention answer.
    for (const ReservationTable &RT : Op.Alternatives) {
      for (const ResourceUsage &U : RT.usages())
        if (U.Cycle < 0) {
          Warn("operation '" + Op.Name + "' reserves " +
               (U.Resource < MD.numResources()
                    ? "'" + MD.resourceName(U.Resource) + "'"
                    : "resource " + std::to_string(U.Resource)) +
               " at negative cycle " + std::to_string(U.Cycle) +
               "; usage cycles are issue-relative and must be nonnegative");
          break;
        }
    }

    // Duplicate alternatives within one operation.
    std::set<std::vector<ResourceUsage>> Seen;
    for (const ReservationTable &RT : Op.Alternatives)
      if (!Seen.insert(RT.usages()).second) {
        Warn("operation '" + Op.Name +
             "' has duplicate alternatives (identical reservation tables)");
        break;
      }

    // Identical single-alternative tables across operations: legitimate
    // (classes merge them) but worth knowing about.
    if (Op.Alternatives.size() == 1 && !Op.Alternatives.front().empty()) {
      auto [It, Inserted] = FirstWithTable.emplace(
          Op.Alternatives.front().usages(), Op.Name);
      if (!Inserted)
        Warn("operations '" + It->second + "' and '" + Op.Name +
             "' have identical reservation tables (one operation class)");
    }
  }
  return Warnings;
}
