//===- mdesc/Render.h - Reservation table pretty printing ------*- C++ -*-===//
///
/// \file
/// Renders reservation tables and machine descriptions in the paper's
/// visual style (Figures 1 and 4): rows are resources, columns are cycles,
/// and an 'X' marks a reserved cycle.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_MDESC_RENDER_H
#define RMD_MDESC_RENDER_H

#include "mdesc/MachineDescription.h"

#include <iosfwd>

namespace rmd {

/// Renders the reservation table \p RT of machine \p MD to \p OS, one row
/// per resource that \p RT uses (or all resources when \p AllRows is true).
void renderTable(std::ostream &OS, const MachineDescription &MD,
                 const ReservationTable &RT, bool AllRows = false);

/// Renders every operation's (first-alternative) reservation table, with the
/// operation name as a heading. This is the Figure 4 rendering.
void renderMachine(std::ostream &OS, const MachineDescription &MD);

/// One-line summary: "<name>: R resources, N operations, U usages".
void renderSummary(std::ostream &OS, const MachineDescription &MD);

} // namespace rmd

#endif // RMD_MDESC_RENDER_H
