//===- mdesc/MachineDescription.h - Reservation-table machines -*- C++ -*-===//
///
/// \file
/// The machine description core: reservation tables and operations, as in
/// Section 3 of Eichenberger & Davidson (PLDI'96). A machine description
/// consists of a set of named resources and a set of operations; each
/// operation carries one or more *alternative* reservation tables (e.g. a
/// load that may use either of two memory ports). A reservation table is a
/// set of usages (resource, cycle): resource `r` is reserved for exclusive
/// use during cycle `c` relative to the operation's issue cycle.
///
/// Alternative resource usages are removed by expandAlternatives(), which
/// replaces each operation with one *alternative operation* per reservation
/// table (the paper's X -> X0, X1 preprocessing) and records the grouping so
/// that query modules can implement check-with-alternatives.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_MDESC_MACHINEDESCRIPTION_H
#define RMD_MDESC_MACHINEDESCRIPTION_H

#include "support/Diagnostics.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace rmd {

/// Index of a resource within a MachineDescription.
using ResourceId = uint32_t;

/// Index of an operation within a MachineDescription.
using OpId = uint32_t;

/// One reservation-table entry: resource \p Resource is reserved for
/// exclusive use during cycle \p Cycle relative to the issue cycle.
struct ResourceUsage {
  ResourceId Resource = 0;
  int Cycle = 0;

  friend bool operator==(const ResourceUsage &A, const ResourceUsage &B) {
    return A.Resource == B.Resource && A.Cycle == B.Cycle;
  }
  friend bool operator<(const ResourceUsage &A, const ResourceUsage &B) {
    if (A.Resource != B.Resource)
      return A.Resource < B.Resource;
    return A.Cycle < B.Cycle;
  }
};

/// A reservation table: the set of resource usages of one operation (or of
/// one alternative of an operation). Stored sparsely as a sorted,
/// duplicate-free vector of usages.
class ReservationTable {
public:
  ReservationTable() = default;

  /// Builds a table from an arbitrary usage list (sorted, deduplicated).
  /// Unlike addUsage(), negative cycles are accepted so that descriptions
  /// assembled from untrusted data stay representable; validate() reports
  /// them as errors and lintMachine() warns about them.
  explicit ReservationTable(std::vector<ResourceUsage> TheUsages);

  /// Adds a usage of \p Resource at \p Cycle. Duplicate insertions are
  /// ignored. \p Cycle must be nonnegative.
  void addUsage(ResourceId Resource, int Cycle);

  /// Adds usages of \p Resource for every cycle in [\p First, \p Last].
  void addUsageRange(ResourceId Resource, int First, int Last);

  const std::vector<ResourceUsage> &usages() const { return Usages; }
  bool empty() const { return Usages.empty(); }
  size_t usageCount() const { return Usages.size(); }

  /// Number of cycles spanned: one past the largest used cycle (0 if empty).
  int length() const;

  /// Returns true if \p Resource is reserved at \p Cycle.
  bool uses(ResourceId Resource, int Cycle) const;

  /// Returns the usage set of \p Resource: the sorted cycles in which this
  /// table reserves it (the paper's X_i).
  std::vector<int> usageSet(ResourceId Resource) const;

  /// Returns the largest resource id mentioned plus one (0 if empty).
  ResourceId resourceBound() const;

  /// Returns a copy with every usage cycle translated by \p Delta. The
  /// resulting cycles must remain nonnegative.
  ReservationTable shifted(int Delta) const;

  /// Returns a copy mirrored in time about this table's span: cycle c maps
  /// to length()-1-c. Used to build reverse-automaton machine descriptions.
  ReservationTable reversed() const;

  friend bool operator==(const ReservationTable &A,
                         const ReservationTable &B) {
    return A.Usages == B.Usages;
  }

private:
  std::vector<ResourceUsage> Usages;
};

/// An operation of the target machine with one or more alternative
/// reservation tables. Most operations have exactly one alternative.
struct Operation {
  std::string Name;
  std::vector<ReservationTable> Alternatives;

  /// Convenience accessor for single-alternative operations.
  const ReservationTable &table() const {
    assert(Alternatives.size() == 1 &&
           "table() requires a single-alternative operation");
    return Alternatives.front();
  }

  friend bool operator==(const Operation &A, const Operation &B) {
    return A.Name == B.Name && A.Alternatives == B.Alternatives;
  }
};

/// A complete machine description: named resources plus operations. This is
/// the input to the forbidden-latency computation and the reduction, and the
/// output format of the reduction (synthesized resources are ordinary
/// resources of a new MachineDescription).
class MachineDescription {
public:
  MachineDescription() = default;
  explicit MachineDescription(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  /// Registers a resource and returns its id.
  ResourceId addResource(std::string ResourceName);

  /// Registers an operation with the given alternatives and returns its id.
  /// At least one alternative is required; alternatives may be empty tables
  /// (an operation that uses no resources).
  OpId addOperation(std::string OpName,
                    std::vector<ReservationTable> Alternatives);

  /// Registers a single-alternative operation.
  OpId addOperation(std::string OpName, ReservationTable Table);

  size_t numResources() const { return ResourceNames.size(); }
  size_t numOperations() const { return Operations.size(); }

  const std::string &resourceName(ResourceId R) const {
    assert(R < ResourceNames.size() && "resource id out of range");
    return ResourceNames[R];
  }
  const std::vector<std::string> &resourceNames() const {
    return ResourceNames;
  }

  const Operation &operation(OpId Op) const {
    assert(Op < Operations.size() && "operation id out of range");
    return Operations[Op];
  }
  const std::vector<Operation> &operations() const { return Operations; }

  /// Finds an operation by name; returns numOperations() if absent.
  OpId findOperation(const std::string &OpName) const;

  /// Finds a resource by name; returns numResources() if absent.
  ResourceId findResource(const std::string &ResourceName) const;

  /// True if every operation has exactly one alternative.
  bool isExpanded() const;

  /// Sum of usage counts over all operations (first alternative only when
  /// not expanded).
  size_t totalUsages() const;

  /// Largest reservation table length over all alternatives of all ops.
  int maxTableLength() const;

  /// Checks structural invariants (resource ids in range, nonnegative
  /// cycles, at least one alternative per operation, unique names),
  /// reporting problems to \p Diags. Returns true if no errors were found.
  bool validate(DiagnosticEngine &Diags) const;

  /// Structural equality: same name, resources, operations and tables.
  friend bool operator==(const MachineDescription &A,
                         const MachineDescription &B) {
    return A.Name == B.Name && A.ResourceNames == B.ResourceNames &&
           A.Operations == B.Operations;
  }

private:
  std::string Name;
  std::vector<std::string> ResourceNames;
  std::vector<Operation> Operations;
};

/// The result of removing alternative resource usages from a machine
/// description: a flat machine in which every operation has exactly one
/// reservation table, plus the grouping of alternative operations.
struct ExpandedMachine {
  /// The flat description. Operation ids are *new*; alternative operations
  /// of original operation `o` are named "<o.Name>" (single alternative) or
  /// "<o.Name>@<k>" (k-th alternative).
  MachineDescription Flat;

  /// Groups[g] lists the flat OpIds that are alternatives of original
  /// operation g, in alternative order.
  std::vector<std::vector<OpId>> Groups;

  /// GroupOf[flatOp] is the original operation (== group index).
  std::vector<uint32_t> GroupOf;

  /// AlternativeIndexOf[flatOp] is the index within its group.
  std::vector<uint32_t> AlternativeIndexOf;
};

/// Replaces each multi-alternative operation of \p MD with one operation per
/// alternative (the paper's preprocessing step in Section 3).
ExpandedMachine expandAlternatives(const MachineDescription &MD);

} // namespace rmd

#endif // RMD_MDESC_MACHINEDESCRIPTION_H
