//===- mdesc/Lint.h - Machine description linting --------------*- C++ -*-===//
///
/// \file
/// Style/consistency checks for machine descriptions beyond structural
/// validation: hazards an author writing against the hardware is likely to
/// introduce, reported as warnings (nothing here affects correctness --
/// the reducer handles redundancy; these findings are about intent).
///
//===----------------------------------------------------------------------===//

#ifndef RMD_MDESC_LINT_H
#define RMD_MDESC_LINT_H

#include "mdesc/MachineDescription.h"

namespace rmd {

/// Reports to \p Diags:
///   - resources no operation ever uses;
///   - operations with empty reservation tables (schedulable anywhere);
///   - reservation tables longer than 64 cycles (beyond the automaton
///     modules' horizon, and suspiciously long for a pipeline);
///   - operations whose alternatives are exact duplicates of each other;
///   - single-alternative operations spelled as one-alternative lists in
///     the presence of identical tables under different operation names
///     (likely a copy-paste: candidates for one operation class).
/// Returns the number of warnings produced.
unsigned lintMachine(const MachineDescription &MD, DiagnosticEngine &Diags);

} // namespace rmd

#endif // RMD_MDESC_LINT_H
