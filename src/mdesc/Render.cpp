//===- mdesc/Render.cpp ---------------------------------------------------===//

#include "mdesc/Render.h"

#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

using namespace rmd;

void rmd::renderTable(std::ostream &OS, const MachineDescription &MD,
                      const ReservationTable &RT, bool AllRows) {
  int Len = std::max(RT.length(), 1);

  std::vector<ResourceId> Rows;
  if (AllRows) {
    for (ResourceId R = 0; R < MD.numResources(); ++R)
      Rows.push_back(R);
  } else {
    for (const ResourceUsage &U : RT.usages())
      if (Rows.empty() || Rows.back() != U.Resource)
        Rows.push_back(U.Resource);
    std::sort(Rows.begin(), Rows.end());
    Rows.erase(std::unique(Rows.begin(), Rows.end()), Rows.end());
  }

  size_t NameWidth = 5;
  for (ResourceId R : Rows)
    NameWidth = std::max(NameWidth, MD.resourceName(R).size());

  OS << std::string(NameWidth, ' ') << " |";
  for (int C = 0; C < Len; ++C)
    OS << ' ' << (C % 10);
  OS << '\n';
  OS << std::string(NameWidth, '-') << "-+" << std::string(2 * Len, '-')
     << '\n';

  for (ResourceId R : Rows) {
    const std::string &Name = MD.resourceName(R);
    OS << Name << std::string(NameWidth - Name.size(), ' ') << " |";
    for (int C = 0; C < Len; ++C)
      OS << ' ' << (RT.uses(R, C) ? 'X' : '.');
    OS << '\n';
  }
}

void rmd::renderMachine(std::ostream &OS, const MachineDescription &MD) {
  renderSummary(OS, MD);
  for (const Operation &Op : MD.operations()) {
    OS << "\noperation " << Op.Name;
    if (Op.Alternatives.size() > 1)
      OS << " (" << Op.Alternatives.size() << " alternatives)";
    OS << ":\n";
    for (const ReservationTable &RT : Op.Alternatives)
      renderTable(OS, MD, RT);
  }
}

void rmd::renderSummary(std::ostream &OS, const MachineDescription &MD) {
  size_t Usages = 0;
  for (const Operation &Op : MD.operations())
    for (const ReservationTable &RT : Op.Alternatives)
      Usages += RT.usageCount();
  OS << MD.name() << ": " << MD.numResources() << " resources, "
     << MD.numOperations() << " operations, " << Usages << " usages\n";
}
