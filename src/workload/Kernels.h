//===- workload/Kernels.h - Livermore-style loop kernels -------*- C++ -*-===//
///
/// \file
/// Hand-modelled inner-loop kernels in the style of the Livermore Fortran
/// Kernels / Perfect Club / SPEC-89 loops of the paper's benchmark: DAXPY
/// shapes, reductions, first-order recurrences, stencils, equations of
/// state. Together with the random generator they form the corpus standing
/// in for the paper's 1327 modulo-scheduled loops.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_WORKLOAD_KERNELS_H
#define RMD_WORKLOAD_KERNELS_H

#include "workload/RoleGraph.h"

namespace rmd {

/// The kernel suite, in a fixed order (names embedded).
std::vector<RoleGraph> livermoreKernels();

/// Replicates \p RG \p Copies times inside one loop body (unroll-and-jam of
/// independent iterations): node/edge structure is duplicated per copy;
/// loop-carried edges stay within their copy. The single Branch node (if
/// any) is not duplicated.
RoleGraph replicate(const RoleGraph &RG, unsigned Copies);

} // namespace rmd

#endif // RMD_WORKLOAD_KERNELS_H
