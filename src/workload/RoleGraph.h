//===- workload/RoleGraph.h - Machine-agnostic loop bodies -----*- C++ -*-===//
///
/// \file
/// Machine-agnostic dependence graphs. Nodes carry operation *roles*
/// (load, FP add, ...) instead of machine op ids, so the same kernel can be
/// bound to any MachineModel; edge delays are resolved from the bound
/// producer's latency. This is how the reproduction stands in for the
/// paper's compiler IR (Fortran loops after load-store elimination,
/// back-substitution and IF-conversion): what the scheduler sees is a
/// dependence graph with machine latencies, which bind() produces.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_WORKLOAD_ROLEGRAPH_H
#define RMD_WORKLOAD_ROLEGRAPH_H

#include "machines/MachineModel.h"
#include "sched/DepGraph.h"

#include <string>
#include <vector>

namespace rmd {

/// An edge of a role graph. The bound delay is the producer's machine
/// latency (for data dependences) plus ExtraDelay, or just ExtraDelay for
/// non-data dependences (anti/output/control).
struct RoleEdge {
  uint32_t From = 0;
  uint32_t To = 0;
  int Distance = 0;
  int ExtraDelay = 0;
  bool UseProducerLatency = true;
};

/// A loop body over operation roles.
struct RoleGraph {
  std::string Name;
  std::vector<OpRole> Nodes;
  std::vector<RoleEdge> Edges;

  uint32_t addNode(OpRole Role) {
    Nodes.push_back(Role);
    return static_cast<uint32_t>(Nodes.size() - 1);
  }

  /// Adds a data dependence: To issues >= latency(From) cycles later.
  void dataDep(uint32_t From, uint32_t To, int Distance = 0) {
    Edges.push_back(RoleEdge{From, To, Distance, 0, true});
  }

  /// Adds a non-data dependence with a fixed delay (e.g. anti dependences
  /// with delay 0 or 1).
  void orderDep(uint32_t From, uint32_t To, int Delay, int Distance = 0) {
    Edges.push_back(RoleEdge{From, To, Distance, Delay, false});
  }
};

/// Resolves \p Role to an operation of \p Model, falling back to a coarser
/// role when the machine lacks a specialized one (e.g. AddrCalc -> IntAlu).
OpId resolveRole(const MachineModel &Model, OpRole Role);

/// Binds \p RG to \p Model: picks a concrete operation per node and
/// resolves edge delays from producer latencies.
DepGraph bind(const RoleGraph &RG, const MachineModel &Model);

} // namespace rmd

#endif // RMD_WORKLOAD_ROLEGRAPH_H
