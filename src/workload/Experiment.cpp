//===- workload/Experiment.cpp --------------------------------------------===//

#include "workload/Experiment.h"

#include "query/BitvectorQuery.h"
#include "query/DiscreteQuery.h"

using namespace rmd;

std::function<std::unique_ptr<ContentionQueryModule>(QueryConfig)>
rmd::makeModuleFactory(const RepresentationSpec &Spec) {
  const MachineDescription *MD = Spec.FlatMD;
  if (Spec.Kind == RepresentationSpec::Discrete)
    return [MD](QueryConfig Config) -> std::unique_ptr<ContentionQueryModule> {
      return std::make_unique<DiscreteQueryModule>(*MD, Config);
    };
  unsigned WordBits = Spec.WordBits;
  unsigned ForcedK = Spec.CyclesPerWord;
  bool Union = Spec.UnionAlternativeCheck;
  return [MD, WordBits, ForcedK, Union](
             QueryConfig Config) -> std::unique_ptr<ContentionQueryModule> {
    Config.WordBits = WordBits;
    Config.CyclesPerWordOverride = ForcedK;
    Config.UnionAlternativeCheck = Union;
    return std::make_unique<BitvectorQueryModule>(*MD, Config);
  };
}

SchedulerExperimentResult
rmd::runSchedulerExperiment(const MachineModel &Model,
                            const std::vector<std::vector<OpId>> &Groups,
                            const RepresentationSpec &Spec,
                            const std::vector<DepGraph> &Corpus,
                            const ModuloScheduleOptions &Options) {
  assert(Spec.FlatMD && "representation needs a machine description");

  QueryEnvironment Env;
  Env.FlatMD = Spec.FlatMD;
  Env.Groups = &Groups;
  Env.MakeModule = makeModuleFactory(Spec);

  SchedulerExperimentResult Result;
  Result.Label = Spec.Label;
  Result.CheckHistogram.assign(128, 0);

  for (const DepGraph &G : Corpus) {
    ModuloScheduleResult SR = moduloSchedule(G, Model.MD, Env, Options);
    ++Result.Loops;
    if (!SR.Success) {
      ++Result.Failed;
      continue;
    }

    double N = static_cast<double>(G.numNodes());
    Result.OpsPerLoop.add(N);
    Result.II.add(SR.II);
    Result.IIOverMII.add(static_cast<double>(SR.II) / SR.Stats.MII);
    for (uint64_t Decisions : SR.Stats.DecisionsPerAttempt)
      Result.DecisionsPerOp.add(static_cast<double>(Decisions) / N);

    Result.TotalAttempts += SR.Stats.DecisionsPerAttempt.size();
    uint64_t Budget =
        static_cast<uint64_t>(Options.BudgetRatio) * G.numNodes();
    for (uint64_t Decisions : SR.Stats.DecisionsPerAttempt)
      if (Decisions >= Budget)
        ++Result.AttemptsBudgetExceeded;

    // "No scheduling decision was ever reversed": exactly N decisions in a
    // single attempt.
    if (SR.Stats.DecisionsPerAttempt.size() == 1 &&
        SR.Stats.totalDecisions() == G.numNodes())
      ++Result.LoopsWithNoReversal;

    Result.Counters.accumulate(SR.Counters);
    Result.ReversalsByResource += SR.Stats.EvictedByResource;
    Result.ReversalsByDependence += SR.Stats.EvictedByDependence;
    Result.AssignFreeCallsWithEviction +=
        SR.Stats.AssignFreeCallsWithEviction;

    for (uint32_t Checks : SR.Stats.ChecksPerDecision) {
      size_t Bucket = std::min<size_t>(Checks, Result.CheckHistogram.size() - 1);
      ++Result.CheckHistogram[Bucket];
    }
  }
  return Result;
}
