//===- workload/Corpus.cpp ------------------------------------------------===//

#include "workload/Corpus.h"

using namespace rmd;

std::vector<DepGraph> rmd::buildCorpus(const MachineModel &Model,
                                       const CorpusParams &Params) {
  RNG R(Params.Seed);
  std::vector<RoleGraph> Kernels = livermoreKernels();

  std::vector<DepGraph> Corpus;
  Corpus.reserve(Params.LoopCount);
  for (size_t I = 0; I < Params.LoopCount; ++I) {
    if (R.nextChance(Params.KernelPercent, 100)) {
      const RoleGraph &K = Kernels[R.nextBelow(Kernels.size())];
      // Size variants: mostly the plain kernel, sometimes unrolled 2-8x.
      unsigned Copies = 1;
      if (R.nextChance(1, 3))
        Copies = 2 + static_cast<unsigned>(R.nextBelow(7));
      Corpus.push_back(
          bind(Copies == 1 ? K : replicate(K, Copies), Model));
    } else {
      Corpus.push_back(bind(generateLoop(R, Params.Generator), Model));
    }
  }
  return Corpus;
}
