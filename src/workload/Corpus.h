//===- workload/Corpus.h - The 1327-loop benchmark corpus ------*- C++ -*-===//
///
/// \file
/// Builds the loop corpus standing in for the paper's benchmark of 1327
/// loops from the Perfect Club, SPEC-89 and the Livermore Fortran Kernels:
/// the hand-modelled kernels (with replicated/unrolled size variants) mixed
/// with seeded random loops. Fully deterministic from the seed.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_WORKLOAD_CORPUS_H
#define RMD_WORKLOAD_CORPUS_H

#include "workload/Kernels.h"
#include "workload/LoopGenerator.h"

namespace rmd {

/// Parameters of corpus construction.
struct CorpusParams {
  size_t LoopCount = 1327;
  uint64_t Seed = 0x1327;
  /// Percent of loops drawn from the kernel suite (possibly replicated);
  /// the rest come from the random generator.
  unsigned KernelPercent = 40;
  LoopGeneratorParams Generator;
};

/// Builds the corpus bound to \p Model.
std::vector<DepGraph> buildCorpus(const MachineModel &Model,
                                  const CorpusParams &Params = {});

} // namespace rmd

#endif // RMD_WORKLOAD_CORPUS_H
