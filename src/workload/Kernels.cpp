//===- workload/Kernels.cpp -----------------------------------------------===//

#include "workload/Kernels.h"

using namespace rmd;

namespace {

/// LFK1 (hydro fragment): x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
RoleGraph hydro() {
  RoleGraph G;
  G.Name = "hydro";
  uint32_t Ay = G.addNode(OpRole::AddrCalc);
  uint32_t Ly = G.addNode(OpRole::Load);
  uint32_t Lz1 = G.addNode(OpRole::Load);
  uint32_t Lz2 = G.addNode(OpRole::Load);
  uint32_t M1 = G.addNode(OpRole::FloatMul); // r*z[k+10]
  uint32_t M2 = G.addNode(OpRole::FloatMul); // t*z[k+11]
  uint32_t A1 = G.addNode(OpRole::FloatAdd);
  uint32_t M3 = G.addNode(OpRole::FloatMul); // y[k]*...
  uint32_t A2 = G.addNode(OpRole::FloatAdd); // q + ...
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Ay, Ly);
  G.dataDep(Lz1, M1);
  G.dataDep(Lz2, M2);
  G.dataDep(M1, A1);
  G.dataDep(M2, A1);
  G.dataDep(Ly, M3);
  G.dataDep(A1, M3);
  G.dataDep(M3, A2);
  G.dataDep(A2, St);
  G.orderDep(St, Br, 0);
  return G;
}

/// LFK3 (inner product): q += z[k]*x[k] -- a multiply feeding a reduction
/// recurrence.
RoleGraph innerProduct() {
  RoleGraph G;
  G.Name = "inner_product";
  uint32_t Lz = G.addNode(OpRole::Load);
  uint32_t Lx = G.addNode(OpRole::Load);
  uint32_t M = G.addNode(OpRole::FloatMul);
  uint32_t A = G.addNode(OpRole::FloatAdd);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Lz, M);
  G.dataDep(Lx, M);
  G.dataDep(M, A);
  G.dataDep(A, A, 1); // reduction: q of the previous iteration
  G.orderDep(A, Br, 0);
  return G;
}

/// LFK5 (tri-diagonal elimination): x[i] = z[i]*(y[i] - x[i-1]).
RoleGraph tridiag() {
  RoleGraph G;
  G.Name = "tridiag";
  uint32_t Lz = G.addNode(OpRole::Load);
  uint32_t Ly = G.addNode(OpRole::Load);
  uint32_t Sub = G.addNode(OpRole::FloatAdd);
  uint32_t M = G.addNode(OpRole::FloatMul);
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Ly, Sub);
  G.dataDep(M, Sub, 1); // x[i-1] from the previous iteration
  G.dataDep(Lz, M);
  G.dataDep(Sub, M);
  G.dataDep(M, St);
  G.orderDep(St, Br, 0);
  return G;
}

/// LFK7 (equation of state fragment): a long expression tree of adds and
/// multiplies over several loads.
RoleGraph eos() {
  RoleGraph G;
  G.Name = "state_eq";
  uint32_t Lu = G.addNode(OpRole::Load);
  uint32_t Lz = G.addNode(OpRole::Load);
  uint32_t Ly = G.addNode(OpRole::Load);
  uint32_t Lu1 = G.addNode(OpRole::Load);
  uint32_t Lu2 = G.addNode(OpRole::Load);
  uint32_t Lu3 = G.addNode(OpRole::Load);
  uint32_t M1 = G.addNode(OpRole::FloatMul);
  uint32_t M2 = G.addNode(OpRole::FloatMul);
  uint32_t A1 = G.addNode(OpRole::FloatAdd);
  uint32_t M3 = G.addNode(OpRole::FloatMul);
  uint32_t A2 = G.addNode(OpRole::FloatAdd);
  uint32_t M4 = G.addNode(OpRole::FloatMul);
  uint32_t A3 = G.addNode(OpRole::FloatAdd);
  uint32_t M5 = G.addNode(OpRole::FloatMul);
  uint32_t A4 = G.addNode(OpRole::FloatAdd);
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Lu1, M1);
  G.dataDep(Lz, M1);
  G.dataDep(Lu2, M2);
  G.dataDep(Ly, M2);
  G.dataDep(M1, A1);
  G.dataDep(M2, A1);
  G.dataDep(A1, M3);
  G.dataDep(Lu, M3);
  G.dataDep(M3, A2);
  G.dataDep(Lu3, A2);
  G.dataDep(A2, M4);
  G.dataDep(M4, A3);
  G.dataDep(Lu, A3);
  G.dataDep(A3, M5);
  G.dataDep(M5, A4);
  G.dataDep(A4, St);
  G.orderDep(St, Br, 0);
  return G;
}

/// LFK11 (first sum): x[k] = x[k-1] + y[k] -- the tightest FP recurrence.
RoleGraph firstSum() {
  RoleGraph G;
  G.Name = "first_sum";
  uint32_t Ly = G.addNode(OpRole::Load);
  uint32_t A = G.addNode(OpRole::FloatAdd);
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Ly, A);
  G.dataDep(A, A, 1);
  G.dataDep(A, St);
  G.orderDep(St, Br, 0);
  return G;
}

/// LFK12 (first difference): x[k] = y[k+1] - y[k] -- fully parallel.
RoleGraph firstDiff() {
  RoleGraph G;
  G.Name = "first_diff";
  uint32_t L1 = G.addNode(OpRole::Load);
  uint32_t L2 = G.addNode(OpRole::Load);
  uint32_t Sub = G.addNode(OpRole::FloatAdd);
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(L1, Sub);
  G.dataDep(L2, Sub);
  G.dataDep(Sub, St);
  G.orderDep(St, Br, 0);
  return G;
}

/// DAXPY: y[i] += a*x[i], the SPEC/Linpack workhorse.
RoleGraph daxpy() {
  RoleGraph G;
  G.Name = "daxpy";
  uint32_t Lx = G.addNode(OpRole::Load);
  uint32_t Ly = G.addNode(OpRole::Load);
  uint32_t M = G.addNode(OpRole::FloatMul);
  uint32_t A = G.addNode(OpRole::FloatAdd);
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Lx, M);
  G.dataDep(M, A);
  G.dataDep(Ly, A);
  G.dataDep(A, St);
  // The store of iteration i must precede the load of iteration i+1 when
  // x and y may alias (output kept conservative, distance 1, delay 1).
  G.orderDep(St, Ly, 1, 1);
  G.orderDep(St, Br, 0);
  return G;
}

/// A 5-point stencil row update: integer address arithmetic plus FP.
RoleGraph stencil5() {
  RoleGraph G;
  G.Name = "stencil5";
  uint32_t Ai = G.addNode(OpRole::AddrCalc);
  uint32_t L0 = G.addNode(OpRole::Load);
  uint32_t L1 = G.addNode(OpRole::Load);
  uint32_t L2 = G.addNode(OpRole::Load);
  uint32_t L3 = G.addNode(OpRole::Load);
  uint32_t L4 = G.addNode(OpRole::Load);
  uint32_t A1 = G.addNode(OpRole::FloatAdd);
  uint32_t A2 = G.addNode(OpRole::FloatAdd);
  uint32_t A3 = G.addNode(OpRole::FloatAdd);
  uint32_t A4 = G.addNode(OpRole::FloatAdd);
  uint32_t M = G.addNode(OpRole::FloatMul);
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Ai, L0);
  G.dataDep(Ai, L4);
  G.dataDep(L0, A1);
  G.dataDep(L1, A1);
  G.dataDep(L2, A2);
  G.dataDep(L3, A2);
  G.dataDep(A1, A3);
  G.dataDep(A2, A3);
  G.dataDep(A3, A4);
  G.dataDep(L4, A4);
  G.dataDep(A4, M);
  G.dataDep(M, St);
  G.orderDep(St, Br, 0);
  return G;
}

/// A divide-heavy normalization loop: w[i] = x[i] / sqrt-ish denominator.
RoleGraph normalize() {
  RoleGraph G;
  G.Name = "normalize";
  uint32_t Lx = G.addNode(OpRole::Load);
  uint32_t Ld = G.addNode(OpRole::Load);
  uint32_t M = G.addNode(OpRole::FloatMul);
  uint32_t A = G.addNode(OpRole::FloatAdd);
  uint32_t D = G.addNode(OpRole::FloatDiv);
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Ld, M);
  G.dataDep(M, A);
  G.dataDep(A, D);
  G.dataDep(Lx, D);
  G.dataDep(D, St);
  G.orderDep(St, Br, 0);
  return G;
}

/// Integer bookkeeping loop: histogram-style update with address chains.
RoleGraph histogram() {
  RoleGraph G;
  G.Name = "histogram";
  uint32_t Li = G.addNode(OpRole::Load);
  uint32_t Cv = G.addNode(OpRole::Convert);
  uint32_t Ad = G.addNode(OpRole::AddrCalc);
  uint32_t Lb = G.addNode(OpRole::Load);
  uint32_t In = G.addNode(OpRole::IntAlu);
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Li, Cv);
  G.dataDep(Cv, Ad);
  G.dataDep(Ad, Lb);
  G.dataDep(Lb, In);
  G.dataDep(In, St);
  // Potential same-bucket update: load of i+1 after store of i.
  G.orderDep(St, Lb, 1, 1);
  G.orderDep(St, Br, 0);
  return G;
}

/// Predicated select loop (IF-converted): compare feeding two moves.
RoleGraph selectLoop() {
  RoleGraph G;
  G.Name = "select";
  uint32_t La = G.addNode(OpRole::Load);
  uint32_t Lb = G.addNode(OpRole::Load);
  uint32_t C = G.addNode(OpRole::Compare);
  uint32_t Mv1 = G.addNode(OpRole::Move);
  uint32_t Mv2 = G.addNode(OpRole::Move);
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(La, C);
  G.dataDep(Lb, C);
  G.dataDep(C, Mv1);
  G.dataDep(C, Mv2);
  G.dataDep(Mv1, St);
  G.dataDep(Mv2, St);
  G.orderDep(St, Br, 0);
  return G;
}

/// LFK2-style incomplete Cholesky fragment: two coupled FP chains.
RoleGraph iccg() {
  RoleGraph G;
  G.Name = "iccg";
  uint32_t Lv = G.addNode(OpRole::Load);
  uint32_t Lx1 = G.addNode(OpRole::Load);
  uint32_t Lx2 = G.addNode(OpRole::Load);
  uint32_t M1 = G.addNode(OpRole::FloatMul);
  uint32_t S1 = G.addNode(OpRole::FloatAdd);
  uint32_t M2 = G.addNode(OpRole::FloatMul);
  uint32_t S2 = G.addNode(OpRole::FloatAdd);
  uint32_t St1 = G.addNode(OpRole::Store);
  uint32_t St2 = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Lv, M1);
  G.dataDep(Lx1, M1);
  G.dataDep(M1, S1);
  G.dataDep(Lx2, S1);
  G.dataDep(Lv, M2);
  G.dataDep(S1, M2);
  G.dataDep(M2, S2);
  G.dataDep(S2, St1);
  G.dataDep(S1, St2);
  G.orderDep(St1, Br, 0);
  G.orderDep(St2, Br, 0);
  return G;
}

/// Banded linear equations (LFK4 flavour): dot-product with stride and a
/// trailing update recurrence.
RoleGraph banded() {
  RoleGraph G;
  G.Name = "banded";
  uint32_t L1 = G.addNode(OpRole::Load);
  uint32_t L2 = G.addNode(OpRole::Load);
  uint32_t M = G.addNode(OpRole::FloatMul);
  uint32_t A = G.addNode(OpRole::FloatAdd);
  uint32_t L3 = G.addNode(OpRole::Load);
  uint32_t M2 = G.addNode(OpRole::FloatMul);
  uint32_t Sub = G.addNode(OpRole::FloatAdd);
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(L1, M);
  G.dataDep(L2, M);
  G.dataDep(M, A);
  G.dataDep(A, A, 1);
  G.dataDep(A, M2);
  G.dataDep(L3, M2);
  G.dataDep(M2, Sub);
  G.dataDep(Sub, St);
  G.orderDep(St, Br, 0);
  return G;
}

/// 2-D particle-in-cell fragment: address indirection and mixed int/FP.
RoleGraph pic2d() {
  RoleGraph G;
  G.Name = "pic2d";
  uint32_t Lp = G.addNode(OpRole::Load);
  uint32_t Cv = G.addNode(OpRole::Convert);
  uint32_t Ad1 = G.addNode(OpRole::AddrCalc);
  uint32_t Ad2 = G.addNode(OpRole::AddrCalc);
  uint32_t Lg1 = G.addNode(OpRole::Load);
  uint32_t Lg2 = G.addNode(OpRole::Load);
  uint32_t M1 = G.addNode(OpRole::FloatMul);
  uint32_t A1 = G.addNode(OpRole::FloatAdd);
  uint32_t A2 = G.addNode(OpRole::FloatAdd);
  uint32_t St1 = G.addNode(OpRole::Store);
  uint32_t In = G.addNode(OpRole::IntAlu);
  uint32_t St2 = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Lp, Cv);
  G.dataDep(Cv, Ad1);
  G.dataDep(Cv, Ad2);
  G.dataDep(Ad1, Lg1);
  G.dataDep(Ad2, Lg2);
  G.dataDep(Lg1, M1);
  G.dataDep(Lp, M1);
  G.dataDep(M1, A1);
  G.dataDep(Lg2, A1);
  G.dataDep(A1, A2);
  G.dataDep(A2, St1);
  G.dataDep(Lg2, In);
  G.dataDep(In, St2);
  G.orderDep(St1, Br, 0);
  G.orderDep(St2, Br, 0);
  return G;
}

/// LFK8-style ADI integration fragment: wide independent FP expression
/// with many loads, stressing memory-port alternatives.
RoleGraph adi() {
  RoleGraph G;
  G.Name = "adi";
  uint32_t L[6];
  for (int I = 0; I < 6; ++I)
    L[I] = G.addNode(OpRole::Load);
  uint32_t M1 = G.addNode(OpRole::FloatMul);
  uint32_t M2 = G.addNode(OpRole::FloatMul);
  uint32_t M3 = G.addNode(OpRole::FloatMul);
  uint32_t A1 = G.addNode(OpRole::FloatAdd);
  uint32_t A2 = G.addNode(OpRole::FloatAdd);
  uint32_t A3 = G.addNode(OpRole::FloatAdd);
  uint32_t St1 = G.addNode(OpRole::Store);
  uint32_t St2 = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(L[0], M1);
  G.dataDep(L[1], M1);
  G.dataDep(L[2], M2);
  G.dataDep(L[3], M2);
  G.dataDep(M1, A1);
  G.dataDep(M2, A1);
  G.dataDep(L[4], M3);
  G.dataDep(A1, M3);
  G.dataDep(M3, A2);
  G.dataDep(L[5], A2);
  G.dataDep(A1, A3);
  G.dataDep(A2, A3);
  G.dataDep(A2, St1);
  G.dataDep(A3, St2);
  G.orderDep(St1, Br, 0);
  G.orderDep(St2, Br, 0);
  return G;
}

/// LFK9-style integrate predictors: one very wide sum of products off a
/// single loaded value (high ILP, FP-adder bound).
RoleGraph predictors() {
  RoleGraph G;
  G.Name = "predictors";
  uint32_t Lx = G.addNode(OpRole::Load);
  uint32_t Sum = G.addNode(OpRole::FloatAdd);
  G.dataDep(Lx, Sum);
  for (int Term = 0; Term < 6; ++Term) {
    uint32_t Lc = G.addNode(OpRole::Load);
    uint32_t M = G.addNode(OpRole::FloatMul);
    uint32_t A = G.addNode(OpRole::FloatAdd);
    G.dataDep(Lc, M);
    G.dataDep(Lx, M);
    G.dataDep(M, A);
    G.dataDep(Sum, A);
    Sum = A;
  }
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Sum, St);
  G.orderDep(St, Br, 0);
  return G;
}

/// FIR filter tap loop: reduction plus sliding loads.
RoleGraph fir() {
  RoleGraph G;
  G.Name = "fir";
  uint32_t Acc = ~0u;
  for (int Tap = 0; Tap < 4; ++Tap) {
    uint32_t Ls = G.addNode(OpRole::Load);
    uint32_t Lc = G.addNode(OpRole::Load);
    uint32_t M = G.addNode(OpRole::FloatMul);
    uint32_t A = G.addNode(OpRole::FloatAdd);
    G.dataDep(Ls, M);
    G.dataDep(Lc, M);
    G.dataDep(M, A);
    if (Acc != ~0u)
      G.dataDep(Acc, A);
    Acc = A;
  }
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Acc, St);
  G.orderDep(St, Br, 0);
  return G;
}

/// Complex multiply-accumulate: (ar+i*ai) * (br+i*bi) summed, a classic
/// 4-mul / 4-add signal-processing body.
RoleGraph complexMac() {
  RoleGraph G;
  G.Name = "complex_mac";
  uint32_t Lar = G.addNode(OpRole::Load);
  uint32_t Lai = G.addNode(OpRole::Load);
  uint32_t Lbr = G.addNode(OpRole::Load);
  uint32_t Lbi = G.addNode(OpRole::Load);
  uint32_t M1 = G.addNode(OpRole::FloatMul); // ar*br
  uint32_t M2 = G.addNode(OpRole::FloatMul); // ai*bi
  uint32_t M3 = G.addNode(OpRole::FloatMul); // ar*bi
  uint32_t M4 = G.addNode(OpRole::FloatMul); // ai*br
  uint32_t Sr = G.addNode(OpRole::FloatAdd); // real part
  uint32_t Si = G.addNode(OpRole::FloatAdd); // imag part
  uint32_t AccR = G.addNode(OpRole::FloatAdd);
  uint32_t AccI = G.addNode(OpRole::FloatAdd);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Lar, M1);
  G.dataDep(Lbr, M1);
  G.dataDep(Lai, M2);
  G.dataDep(Lbi, M2);
  G.dataDep(Lar, M3);
  G.dataDep(Lbi, M3);
  G.dataDep(Lai, M4);
  G.dataDep(Lbr, M4);
  G.dataDep(M1, Sr);
  G.dataDep(M2, Sr);
  G.dataDep(M3, Si);
  G.dataDep(M4, Si);
  G.dataDep(Sr, AccR);
  G.dataDep(AccR, AccR, 1); // accumulator recurrences
  G.dataDep(Si, AccI);
  G.dataDep(AccI, AccI, 1);
  G.orderDep(AccR, Br, 0);
  G.orderDep(AccI, Br, 0);
  return G;
}

/// Matrix-multiply inner loop: dot-product with address updates on both
/// streams (integer and FP units busy together).
RoleGraph matmulInner() {
  RoleGraph G;
  G.Name = "matmul_inner";
  uint32_t Aa = G.addNode(OpRole::AddrCalc);
  uint32_t Ab = G.addNode(OpRole::AddrCalc);
  uint32_t La = G.addNode(OpRole::Load);
  uint32_t Lb = G.addNode(OpRole::Load);
  uint32_t M = G.addNode(OpRole::FloatMul);
  uint32_t A = G.addNode(OpRole::FloatAdd);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Aa, La);
  G.dataDep(Ab, Lb);
  G.dataDep(Aa, Aa, 1); // induction pointers
  G.dataDep(Ab, Ab, 1);
  G.dataDep(La, M);
  G.dataDep(Lb, M);
  G.dataDep(M, A);
  G.dataDep(A, A, 1); // dot-product reduction
  G.orderDep(A, Br, 0);
  return G;
}

/// Horner polynomial evaluation: the tightest mul-add recurrence
/// (RecMII = mul latency + add latency).
RoleGraph horner() {
  RoleGraph G;
  G.Name = "horner";
  uint32_t Lx = G.addNode(OpRole::Load);
  uint32_t Lc = G.addNode(OpRole::Load);
  uint32_t M = G.addNode(OpRole::FloatMul);
  uint32_t A = G.addNode(OpRole::FloatAdd);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Lx, M);
  G.dataDep(A, M, 1); // p = p*x + c across iterations
  G.dataDep(M, A);
  G.dataDep(Lc, A);
  G.orderDep(A, Br, 0);
  return G;
}

/// Planckian-distribution flavour (LFK15-ish): divide in the steady path.
RoleGraph planckian() {
  RoleGraph G;
  G.Name = "planckian";
  uint32_t Lu = G.addNode(OpRole::Load);
  uint32_t Lv = G.addNode(OpRole::Load);
  uint32_t Cv = G.addNode(OpRole::Convert);
  uint32_t M = G.addNode(OpRole::FloatMul);
  uint32_t A = G.addNode(OpRole::FloatAdd);
  uint32_t D = G.addNode(OpRole::FloatDiv);
  uint32_t M2 = G.addNode(OpRole::FloatMul);
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Lu, Cv);
  G.dataDep(Cv, M);
  G.dataDep(Lv, M);
  G.dataDep(M, A);
  G.dataDep(A, D);
  G.dataDep(Lv, D);
  G.dataDep(D, M2);
  G.dataDep(M2, St);
  G.orderDep(St, Br, 0);
  return G;
}

/// Strided gather-scatter copy with integer index arithmetic.
RoleGraph gatherScatter() {
  RoleGraph G;
  G.Name = "gather_scatter";
  uint32_t Li = G.addNode(OpRole::Load); // index vector
  uint32_t Ad1 = G.addNode(OpRole::AddrCalc);
  uint32_t Lv = G.addNode(OpRole::Load); // gathered value
  uint32_t In = G.addNode(OpRole::IntAlu);
  uint32_t Ad2 = G.addNode(OpRole::AddrCalc);
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Li, Ad1);
  G.dataDep(Ad1, Lv);
  G.dataDep(Li, In);
  G.dataDep(In, Ad2);
  G.dataDep(Lv, St);
  G.dataDep(Ad2, St);
  // Conservative carried store->load aliasing.
  G.orderDep(St, Lv, 1, 1);
  G.orderDep(St, Br, 0);
  return G;
}

/// A long multiply ladder exercising the partially pipelined multiplier.
RoleGraph polyEval() {
  RoleGraph G;
  G.Name = "poly_eval";
  uint32_t Lx = G.addNode(OpRole::Load);
  uint32_t Prev = Lx;
  for (int Term = 0; Term < 5; ++Term) {
    uint32_t M = G.addNode(OpRole::FloatMul);
    uint32_t A = G.addNode(OpRole::FloatAdd);
    G.dataDep(Prev, M);
    G.dataDep(Lx, M);
    G.dataDep(M, A);
    Prev = A;
  }
  uint32_t St = G.addNode(OpRole::Store);
  uint32_t Br = G.addNode(OpRole::Branch);
  G.dataDep(Prev, St);
  G.orderDep(St, Br, 0);
  return G;
}

} // namespace

std::vector<RoleGraph> rmd::livermoreKernels() {
  return {hydro(),       innerProduct(), tridiag(),   eos(),
          firstSum(),    firstDiff(),    daxpy(),     stencil5(),
          normalize(),   histogram(),    selectLoop(), iccg(),
          banded(),      pic2d(),        polyEval(),  adi(),
          predictors(),  fir(),          complexMac(), matmulInner(),
          horner(),      planckian(),    gatherScatter()};
}

RoleGraph rmd::replicate(const RoleGraph &RG, unsigned Copies) {
  assert(Copies >= 1 && "need at least one copy");
  RoleGraph Out;
  Out.Name = RG.Name + "x" + std::to_string(Copies);

  // The branch (loop control) is shared across copies.
  int SharedBranch = -1;

  std::vector<std::vector<uint32_t>> NodeMap(
      Copies, std::vector<uint32_t>(RG.Nodes.size(), 0));
  for (unsigned C = 0; C < Copies; ++C)
    for (uint32_t N = 0; N < RG.Nodes.size(); ++N) {
      if (RG.Nodes[N] == OpRole::Branch) {
        if (SharedBranch < 0)
          SharedBranch = static_cast<int>(Out.addNode(OpRole::Branch));
        NodeMap[C][N] = static_cast<uint32_t>(SharedBranch);
        continue;
      }
      NodeMap[C][N] = Out.addNode(RG.Nodes[N]);
    }

  for (unsigned C = 0; C < Copies; ++C)
    for (const RoleEdge &E : RG.Edges) {
      RoleEdge NE = E;
      NE.From = NodeMap[C][E.From];
      NE.To = NodeMap[C][E.To];
      // Duplicate edges onto the shared branch only once.
      if (RG.Nodes[E.To] == OpRole::Branch && C > 0)
        continue;
      Out.Edges.push_back(NE);
    }
  return Out;
}
