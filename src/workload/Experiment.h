//===- workload/Experiment.h - Scheduler experiment driver -----*- C++ -*-===//
///
/// \file
/// Runs the Iterative Modulo Scheduler over a loop corpus against one
/// query-module configuration and aggregates the quantities of Tables 5
/// and 6: schedule characteristics (ops, II, II/MII, decisions/op) and
/// per-function work units and call frequencies.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_WORKLOAD_EXPERIMENT_H
#define RMD_WORKLOAD_EXPERIMENT_H

#include "sched/IterativeModuloScheduler.h"
#include "support/OnlineStats.h"
#include "workload/Corpus.h"

#include <string>

namespace rmd {

/// One query-module configuration under test.
struct RepresentationSpec {
  enum KindType { Discrete, Bitvector } Kind = Discrete;
  unsigned WordBits = 64;
  /// Bitvector only: force k cycles per word (0 = maximal packing).
  unsigned CyclesPerWord = 0;
  /// Bitvector only: enable the union-mask check-with-alternatives fast
  /// path (changes call counts, not answers).
  bool UnionAlternativeCheck = false;
  /// The machine description the module is built over (original or
  /// reduced); must be expanded and FLM-equivalent to the machine the
  /// corpus was built for.
  const MachineDescription *FlatMD = nullptr;
  std::string Label;
};

/// Aggregated results of one corpus x representation run.
struct SchedulerExperimentResult {
  std::string Label;
  uint64_t Loops = 0;
  uint64_t Failed = 0;

  // Table 5 rows.
  OnlineStats OpsPerLoop;
  OnlineStats II;
  OnlineStats IIOverMII;
  /// Decisions / N, one sample per II attempt (the paper's averaging).
  OnlineStats DecisionsPerOp;
  /// Fraction of loops with no reversed decision = fraction of loops whose
  /// successful attempt used exactly N decisions and took one attempt.
  uint64_t LoopsWithNoReversal = 0;
  uint64_t AttemptsBudgetExceeded = 0;
  uint64_t TotalAttempts = 0;

  // Table 6 inputs.
  WorkCounters Counters;
  uint64_t AssignFreeCallsWithEviction = 0;
  uint64_t ReversalsByResource = 0;
  uint64_t ReversalsByDependence = 0;
  /// Histogram of check queries per scheduling decision (index = count,
  /// saturating at the last bucket).
  std::vector<uint64_t> CheckHistogram;

  double checksPerDecision() const {
    uint64_t Decisions = 0, Checks = 0;
    for (size_t I = 0; I < CheckHistogram.size(); ++I) {
      Decisions += CheckHistogram[I];
      Checks += CheckHistogram[I] * I;
    }
    return Decisions ? static_cast<double>(Checks) / Decisions : 0;
  }
};

/// Runs the IMS over \p Corpus with the query module described by \p Spec.
/// \p Model supplies the original machine (for ResMII) and \p Groups the
/// alternative mapping matching Spec.FlatMD's operation ids.
SchedulerExperimentResult
runSchedulerExperiment(const MachineModel &Model,
                       const std::vector<std::vector<OpId>> &Groups,
                       const RepresentationSpec &Spec,
                       const std::vector<DepGraph> &Corpus,
                       const ModuloScheduleOptions &Options = {});

/// Builds the module factory for \p Spec (exposed for tests and examples).
std::function<std::unique_ptr<ContentionQueryModule>(QueryConfig)>
makeModuleFactory(const RepresentationSpec &Spec);

} // namespace rmd

#endif // RMD_WORKLOAD_EXPERIMENT_H
