//===- workload/LoopGenerator.cpp -----------------------------------------===//

#include "workload/LoopGenerator.h"

#include <algorithm>
#include <cmath>

using namespace rmd;

/// Samples a loop size with a right-skewed distribution: most loops are
/// small, a long tail reaches MaxOps (matching Table 5's 2.00 min / 17.54
/// mean / 161 max shape).
static unsigned sampleSize(RNG &R, const LoopGeneratorParams &P) {
  // Exponential-ish sampling: -mean * ln(u), clipped.
  double U = R.nextDouble();
  double Raw = -(P.MeanOps - 2.0) * std::log(1.0 - U) + 2.0;
  double Clipped = std::clamp(Raw, static_cast<double>(P.MinOps),
                              static_cast<double>(P.MaxOps));
  return static_cast<unsigned>(Clipped);
}

RoleGraph rmd::generateLoop(RNG &R, const LoopGeneratorParams &P) {
  RoleGraph G;
  G.Name = "rand";
  unsigned N = sampleSize(R, P);
  bool WithDivide = R.nextChance(P.DividePercent, 100);

  // Role mix: loads feed FP/int work; ~1/5 of nodes store; one branch.
  // Weights roughly match compiled scientific inner loops.
  std::vector<double> RoleWeights = {
      /*IntAlu*/ 10, /*AddrCalc*/ 8, /*Load*/ 22, /*Store*/ 10,
      /*FloatAdd*/ 22, /*FloatMul*/ 18, /*FloatDiv*/ WithDivide ? 4.0 : 0.0,
      /*Convert*/ 3, /*Compare*/ 2, /*Move*/ 1, /*Branch*/ 0};

  // Reserve the last node for the loop branch.
  unsigned Body = N > 1 ? N - 1 : 1;
  for (unsigned I = 0; I < Body; ++I)
    G.addNode(static_cast<OpRole>(R.nextWeighted(RoleWeights)));

  // Dataflow DAG: each non-root picks 1-2 predecessors among earlier
  // nodes, biased toward recent ones (deep, narrow expression trees).
  for (uint32_t V = 1; V < Body; ++V) {
    unsigned NumPreds = 1 + (R.nextChance(2, 5) ? 1 : 0);
    for (unsigned K = 0; K < NumPreds; ++K) {
      uint32_t Window = std::min<uint32_t>(V, 8);
      uint32_t From = V - 1 - static_cast<uint32_t>(R.nextBelow(Window));
      if (From != V)
        G.dataDep(From, V);
    }
  }

  // Optional FP recurrence: a self-arc on some FP add (a reduction), the
  // dominant recurrence pattern after back-substitution.
  if (R.nextChance(P.RecurrencePercent, 100)) {
    for (uint32_t V = 0; V < Body; ++V)
      if (G.Nodes[V] == OpRole::FloatAdd) {
        int Distance = 1 + static_cast<int>(R.nextBelow(2));
        G.dataDep(V, V, Distance);
        break;
      }
  }

  // Optional loop-carried memory dependence: a store of iteration i
  // ordering a load of iteration i+d.
  if (R.nextChance(P.MemoryCarryPercent, 100)) {
    int StoreNode = -1, LoadNode = -1;
    for (uint32_t V = 0; V < Body; ++V) {
      if (G.Nodes[V] == OpRole::Store && StoreNode < 0)
        StoreNode = static_cast<int>(V);
      if (G.Nodes[V] == OpRole::Load && LoadNode < 0)
        LoadNode = static_cast<int>(V);
    }
    if (StoreNode >= 0 && LoadNode >= 0)
      G.orderDep(static_cast<uint32_t>(StoreNode),
                 static_cast<uint32_t>(LoadNode), 1,
                 1 + static_cast<int>(R.nextBelow(2)));
  }

  // Loop-control branch, ordered after one late body node.
  uint32_t Br = G.addNode(OpRole::Branch);
  if (Body >= 1)
    G.orderDep(Body - 1, Br, 0);
  return G;
}
