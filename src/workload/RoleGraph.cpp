//===- workload/RoleGraph.cpp ---------------------------------------------===//

#include "workload/RoleGraph.h"

#include "support/FatalError.h"

using namespace rmd;

OpId rmd::resolveRole(const MachineModel &Model, OpRole Role) {
  // Fallback chain for machines without a dedicated operation for a role;
  // IntAlu, Load, Store and Branch are terminal (every model provides
  // them).
  static constexpr OpRole Fallback[] = {
      /*IntAlu*/ OpRole::IntAlu,     /*AddrCalc*/ OpRole::IntAlu,
      /*Load*/ OpRole::Load,         /*Store*/ OpRole::Store,
      /*FloatAdd*/ OpRole::IntAlu,   /*FloatMul*/ OpRole::IntAlu,
      /*FloatDiv*/ OpRole::FloatMul, /*Convert*/ OpRole::FloatAdd,
      /*Compare*/ OpRole::IntAlu,    /*Move*/ OpRole::IntAlu,
      /*Branch*/ OpRole::Branch,
  };

  OpRole Wanted = Role;
  for (int Step = 0; Step < 4; ++Step) {
    for (OpId Op = 0; Op < Model.Role.size(); ++Op)
      if (Model.Role[Op] == Wanted)
        return Op;
    OpRole Next = Fallback[static_cast<size_t>(Wanted)];
    if (Next == Wanted)
      break;
    Wanted = Next;
  }
  fatalError("machine model provides no operation for a workload role");
}

DepGraph rmd::bind(const RoleGraph &RG, const MachineModel &Model) {
  DepGraph G(RG.Name);
  for (OpRole Role : RG.Nodes)
    G.addNode(resolveRole(Model, Role));
  for (const RoleEdge &E : RG.Edges) {
    int Delay = E.ExtraDelay;
    if (E.UseProducerLatency)
      Delay += Model.Latency[G.opOf(E.From)];
    G.addEdge(E.From, E.To, Delay, E.Distance);
  }
  return G;
}
