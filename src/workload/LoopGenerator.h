//===- workload/LoopGenerator.h - Random loop synthesis --------*- C++ -*-===//
///
/// \file
/// Seeded random loop-body generator, calibrated to the population
/// statistics of the paper's 1327-loop benchmark (Table 5: 2..161
/// operations per iteration, mean ~17.5; most loops schedule at MII; a
/// minority carry recurrences). Loops are innermost, single-exit,
/// IF-converted bodies: an arbitrary dataflow DAG plus optional
/// loop-carried data/memory dependences and one loop-control branch.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_WORKLOAD_LOOPGENERATOR_H
#define RMD_WORKLOAD_LOOPGENERATOR_H

#include "support/RNG.h"
#include "workload/RoleGraph.h"

namespace rmd {

/// Knobs of the random loop generator.
struct LoopGeneratorParams {
  unsigned MinOps = 2;
  unsigned MaxOps = 161;
  /// Mean of the (clipped, skewed) size distribution.
  double MeanOps = 17.5;
  /// Probability (percent) that a loop carries an FP reduction/recurrence.
  unsigned RecurrencePercent = 35;
  /// Probability (percent) of a loop-carried memory dependence.
  unsigned MemoryCarryPercent = 20;
  /// Probability (percent) that a loop contains a divide.
  unsigned DividePercent = 12;
};

/// Generates one random loop body with \p R.
RoleGraph generateLoop(RNG &R, const LoopGeneratorParams &Params = {});

} // namespace rmd

#endif // RMD_WORKLOAD_LOOPGENERATOR_H
