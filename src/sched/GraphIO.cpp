//===- sched/GraphIO.cpp --------------------------------------------------===//

#include "sched/GraphIO.h"

#include "mdl/Lexer.h"

#include <map>

using namespace rmd;

namespace {

class GraphParser {
public:
  GraphParser(std::string_view Input, const MachineModel &Model,
              DiagnosticEngine &Diags)
      : Lex(Input, Diags), Model(Model), Diags(Diags) {}

  std::optional<DepGraph> parse() {
    if (!expectKeyword("loop"))
      return std::nullopt;
    Token Name = Lex.take();
    if (!Name.is(TokenKind::Identifier)) {
      Diags.error(Name.Loc, "expected loop name");
      return std::nullopt;
    }
    G = DepGraph(Name.Text);

    if (!expect(TokenKind::LBrace, "'{'"))
      return std::nullopt;
    while (!Lex.peek().is(TokenKind::RBrace)) {
      if (Lex.peek().is(TokenKind::EndOfFile)) {
        Diags.error(Lex.location(), "unexpected end of file in loop body");
        return std::nullopt;
      }
      bool Ok = Lex.peek().isKeyword("edge") ? parseEdge() : parseNode();
      if (!Ok)
        return std::nullopt;
    }
    Lex.take(); // '}'
    if (!Lex.peek().is(TokenKind::EndOfFile)) {
      Diags.error(Lex.location(), "trailing input after loop body");
      return std::nullopt;
    }
    if (G.numNodes() == 0) {
      Diags.error({}, "loop has no operations");
      return std::nullopt;
    }
    return std::move(G);
  }

private:
  bool expect(TokenKind Kind, const char *What) {
    Token T = Lex.take();
    if (T.is(Kind))
      return true;
    Diags.error(T.Loc, std::string("expected ") + What);
    return false;
  }

  bool expectKeyword(const char *KW) {
    Token T = Lex.take();
    if (T.isKeyword(KW))
      return true;
    Diags.error(T.Loc, std::string("expected '") + KW + "'");
    return false;
  }

  bool parseNode() {
    Token Name = Lex.take();
    if (!Name.is(TokenKind::Identifier)) {
      Diags.error(Name.Loc, "expected node name or 'edge'");
      return false;
    }
    if (Nodes.count(Name.Text)) {
      Diags.error(Name.Loc, "duplicate node '" + Name.Text + "'");
      return false;
    }
    if (!expect(TokenKind::Colon, "':'"))
      return false;
    Token OpName = Lex.take();
    if (!OpName.is(TokenKind::Identifier)) {
      Diags.error(OpName.Loc, "expected operation name");
      return false;
    }
    OpId Op = Model.MD.findOperation(OpName.Text);
    if (Op == Model.MD.numOperations()) {
      Diags.error(OpName.Loc, "machine '" + Model.MD.name() +
                                  "' has no operation '" + OpName.Text +
                                  "'");
      return false;
    }
    Nodes[Name.Text] = G.addNode(Op, Name.Text);
    return expect(TokenKind::Semicolon, "';'");
  }

  bool parseEdge() {
    Lex.take(); // 'edge'
    NodeId From, To;
    if (!parseNodeRef(From))
      return false;
    if (!expect(TokenKind::Arrow, "'->'"))
      return false;
    if (!parseNodeRef(To))
      return false;

    int Delay = Model.Latency[G.opOf(From)];
    int Distance = 0;
    while (!Lex.peek().is(TokenKind::Semicolon)) {
      if (Lex.peek().isKeyword("delay")) {
        Lex.take();
        if (!parseInt(Delay))
          return false;
      } else if (Lex.peek().isKeyword("distance")) {
        Lex.take();
        if (!parseInt(Distance))
          return false;
        if (Distance < 0) {
          Diags.error(Lex.location(), "negative dependence distance");
          return false;
        }
      } else {
        Diags.error(Lex.location(), "expected 'delay', 'distance' or ';'");
        return false;
      }
    }
    Lex.take(); // ';'
    G.addEdge(From, To, Delay, Distance);
    return true;
  }

  bool parseNodeRef(NodeId &Out) {
    Token Name = Lex.take();
    if (!Name.is(TokenKind::Identifier)) {
      Diags.error(Name.Loc, "expected node name");
      return false;
    }
    auto It = Nodes.find(Name.Text);
    if (It == Nodes.end()) {
      Diags.error(Name.Loc, "unknown node '" + Name.Text +
                                "' (nodes must be declared before edges "
                                "that use them)");
      return false;
    }
    Out = It->second;
    return true;
  }

  bool parseInt(int &Out) {
    Token T = Lex.take();
    if (!T.is(TokenKind::Integer)) {
      Diags.error(T.Loc, "expected integer");
      return false;
    }
    Out = static_cast<int>(T.Value);
    return true;
  }

  Lexer Lex;
  const MachineModel &Model;
  DiagnosticEngine &Diags;
  DepGraph G;
  std::map<std::string, NodeId> Nodes;
};

} // namespace

std::optional<DepGraph> rmd::parseLoopGraph(std::string_view Input,
                                            const MachineModel &Model,
                                            DiagnosticEngine &Diags) {
  GraphParser P(Input, Model, Diags);
  std::optional<DepGraph> Result = P.parse();
  if (Diags.hasErrors())
    return std::nullopt;
  return Result;
}

std::string rmd::writeLoopGraph(const DepGraph &G,
                                const MachineModel &Model) {
  std::string Out = "loop " + (G.name().empty() ? "anon" : G.name()) +
                    " {\n";
  for (NodeId N = 0; N < G.numNodes(); ++N)
    Out += "  " + G.nodeName(N) + ": " +
           Model.MD.operation(G.opOf(N)).Name + ";\n";
  for (const DepEdge &E : G.edges()) {
    Out += "  edge " + G.nodeName(E.From) + " -> " + G.nodeName(E.To) +
           " delay " + std::to_string(E.Delay);
    if (E.Distance != 0)
      Out += " distance " + std::to_string(E.Distance);
    Out += ";\n";
  }
  Out += "}\n";
  return Out;
}
