//===- sched/OperationDrivenScheduler.h - Critical-path-first --*- C++ -*-===//
///
/// \file
/// An operation-driven basic-block scheduler in the style the paper's
/// introduction cites for the Cydra 5 compiler: operations are considered
/// in *priority* order (critical path first), not in cycle order, and each
/// is placed at the best cycle inside its dependence window -- which may
/// be earlier than cycles already filled. This is exactly the unrestricted
/// placement pattern that reservation-table query modules support natively
/// and cycle-ordered approaches cannot express.
///
/// Placement backtracks: when an operation's window [Estart, Lstart] has
/// no free slot, it is force-placed via assign&free, evicting whichever
/// lower-priority operations held the resources; evicted operations are
/// re-queued (each at most MaxEvictions times, after which the forced op
/// takes the first conflict-free cycle past its window instead).
///
/// Also supports basic-block boundary conditions: predecessor residue is
/// seeded as dangling reservations, and the result reports this block's
/// own dangling operations so a caller can chain blocks
/// (scheduleBlockSequence).
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SCHED_OPERATIONDRIVENSCHEDULER_H
#define RMD_SCHED_OPERATIONDRIVENSCHEDULER_H

#include "query/QueryModule.h"
#include "sched/DepGraph.h"
#include "sched/ListScheduler.h" // DanglingOp
#include "support/Deadline.h"
#include "support/Status.h"

#include <functional>
#include <memory>

namespace rmd {

struct QueryTrace;

/// Tuning knobs.
struct OperationDrivenOptions {
  /// How many times one operation may be evicted before its next placement
  /// refuses to evict others.
  unsigned MaxEvictions = 4;

  /// Wall-clock budget, polled between scheduling decisions; on expiry
  /// the scheduler returns best-so-far with TimedOut set in Error.
  Deadline TheDeadline = Deadline::never();

  /// Cooperative cancellation, polled at the same points.
  const CancellationToken *Cancel = nullptr;
};

/// Result of operation-driven scheduling.
struct OperationDrivenResult {
  bool Success = false;
  /// Non-ok when the run was interrupted (TimedOut / Cancelled); the
  /// budget backstop leaves Error ok with Success == false.
  Status Error;
  std::vector<int> Time;
  std::vector<int> Alternative; ///< -1 = unplaced in a partial result
  int Length = 0;               ///< one past the last issue cycle

  /// Operations whose reservations extend past Length: the residue a
  /// successor block must respect (flat op + issue cycle relative to the
  /// *successor's* entry, i.e. negative).
  std::vector<DanglingOp> Dangling;

  /// Scheduling decisions performed (placements, including re-placements).
  uint64_t Decisions = 0;
};

/// Schedules the acyclic \p G on \p Module, critical-path-first with
/// bounded eviction. \p Groups maps original ops to flat alternatives.
/// \p Dangling seeds predecessor residue (requires a module window
/// admitting their negative cycles).
///
/// When \p Trace is non-null, every query-module call (seeding, probing,
/// forced placements, undo traffic) is recorded for standalone replay
/// (verify/QueryTrace.h); the caller sets the trace's Config to the
/// module's addressing.
OperationDrivenResult
operationDrivenSchedule(const DepGraph &G,
                        const std::vector<std::vector<OpId>> &Groups,
                        const MachineDescription &FlatMD,
                        ContentionQueryModule &Module,
                        const std::vector<DanglingOp> &Dangling = {},
                        const OperationDrivenOptions &Options = {},
                        QueryTrace *Trace = nullptr);

/// Schedules a straight-line sequence of blocks, propagating each block's
/// dangling resource requirements into the next (Section 1's boundary
/// conditions). \p MakeModule builds a fresh linear-mode module per block;
/// its window must admit cycles down to -maxTableLength. Returns one
/// result per block; Success is false if any block fails.
std::vector<OperationDrivenResult> scheduleBlockSequence(
    const std::vector<const DepGraph *> &Blocks,
    const std::vector<std::vector<OpId>> &Groups,
    const MachineDescription &FlatMD,
    const std::function<std::unique_ptr<ContentionQueryModule>()> &MakeModule,
    const OperationDrivenOptions &Options = {});

} // namespace rmd

#endif // RMD_SCHED_OPERATIONDRIVENSCHEDULER_H
