//===- sched/Expansion.cpp ------------------------------------------------===//

#include "sched/Expansion.h"

#include "query/DiscreteQuery.h"

#include <algorithm>
#include <cassert>

using namespace rmd;

std::vector<ExpandedIssue>
rmd::expandPipelinedSchedule(const std::vector<int> &Time, int II,
                             int Iterations) {
  assert(II > 0 && Iterations >= 1 && "bad expansion parameters");
  std::vector<ExpandedIssue> Issues;
  Issues.reserve(Time.size() * static_cast<size_t>(Iterations));
  for (int Iter = 0; Iter < Iterations; ++Iter)
    for (NodeId N = 0; N < Time.size(); ++N)
      Issues.push_back(
          ExpandedIssue{N, Iter, Time[N] + Iter * II});
  std::sort(Issues.begin(), Issues.end(),
            [](const ExpandedIssue &A, const ExpandedIssue &B) {
              if (A.Cycle != B.Cycle)
                return A.Cycle < B.Cycle;
              if (A.Iteration != B.Iteration)
                return A.Iteration < B.Iteration;
              return A.Node < B.Node;
            });
  return Issues;
}

bool rmd::verifyExpandedSchedule(const DepGraph &G,
                                 const MachineDescription &FlatMD,
                                 const std::vector<OpId> &ChosenOps,
                                 const std::vector<int> &Time, int II,
                                 int Iterations) {
  std::vector<ExpandedIssue> Issues =
      expandPipelinedSchedule(Time, II, Iterations);

  // Resource side: place every copy in a plain linear reserved table.
  DiscreteQueryModule Linear(FlatMD, QueryConfig::linear());
  InstanceId Next = 0;
  for (const ExpandedIssue &I : Issues) {
    if (!Linear.check(ChosenOps[I.Node], I.Cycle))
      return false;
    Linear.assign(ChosenOps[I.Node], I.Cycle, Next++);
  }

  // Dependence side: every edge, between every pair of iteration copies
  // it connects. Consumers of iteration i depend on producers of
  // iteration i - Distance (skipping copies before iteration 0: those
  // values come from loop-invariant preheader code).
  for (const DepEdge &E : G.edges())
    for (int Iter = 0; Iter < Iterations; ++Iter) {
      int ProducerIter = Iter - E.Distance;
      if (ProducerIter < 0)
        continue;
      int ProducerCycle = Time[E.From] + ProducerIter * II;
      int ConsumerCycle = Time[E.To] + Iter * II;
      if (ConsumerCycle < ProducerCycle + E.Delay)
        return false;
    }
  return true;
}
