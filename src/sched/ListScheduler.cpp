//===- sched/ListScheduler.cpp --------------------------------------------===//

#include "sched/ListScheduler.h"

#include "verify/QueryTrace.h"

#include <algorithm>
#include <optional>

using namespace rmd;

ListScheduleResult
rmd::listSchedule(const DepGraph &G,
                  const std::vector<std::vector<OpId>> &Groups,
                  ContentionQueryModule &Module,
                  const std::vector<DanglingOp> &Dangling,
                  QueryTrace *Trace) {
  assert(G.isAcyclic() && "list scheduling requires an acyclic graph");

  // Opt-in recording: route every query through a tracer. Counters mirror
  // the inner module's, so accounting is unchanged by tracing.
  std::optional<TracingQueryModule> Tracer;
  if (Trace)
    Tracer.emplace(Module, *Trace);
  ContentionQueryModule &Q =
      Trace ? static_cast<ContentionQueryModule &>(*Tracer) : Module;

  ListScheduleResult Result;
  Result.Time.assign(G.numNodes(), -1);
  Result.Alternative.assign(G.numNodes(), -1);

  // Seed dangling reservations from predecessor blocks. Their instance ids
  // live below -1 so they can never collide with node instances.
  InstanceId DanglingId = -2;
  for (const DanglingOp &D : Dangling)
    Q.assign(D.FlatOp, D.Cycle, DanglingId--);

  // Critical-path heights over delays (resource-free).
  std::vector<int> Height(G.numNodes(), 0);
  std::vector<NodeId> Topo = G.topologicalOrder();
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It)
    for (uint32_t EIdx : G.succEdges(*It)) {
      const DepEdge &E = G.edges()[EIdx];
      Height[*It] = std::max(Height[*It], Height[E.To] + E.Delay);
    }

  // Greedy list scheduling in (height, id) priority order among ready
  // nodes.
  std::vector<bool> Scheduled(G.numNodes(), false);
  for (size_t Step = 0; Step < G.numNodes(); ++Step) {
    // Pick the ready node (all preds scheduled) with maximal height.
    NodeId Best = static_cast<NodeId>(G.numNodes());
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      if (Scheduled[N])
        continue;
      bool Ready = true;
      for (uint32_t EIdx : G.predEdges(N))
        Ready &= Scheduled[G.edges()[EIdx].From];
      if (!Ready)
        continue;
      if (Best == G.numNodes() || Height[N] > Height[Best])
        Best = N;
    }
    assert(Best < G.numNodes() && "acyclic graph must always have a ready "
                                  "node");

    int Estart = 0;
    for (uint32_t EIdx : G.predEdges(Best)) {
      const DepEdge &E = G.edges()[EIdx];
      Estart = std::max(Estart, Result.Time[E.From] + E.Delay);
    }

    const std::vector<OpId> &Alternatives = Groups[G.opOf(Best)];
    int Cycle = Estart;
    int Alt = -1;
    // An empty machine would loop forever; bound the scan generously.
    int Horizon = Estart + 4096;
    for (; Cycle <= Horizon; ++Cycle) {
      Alt = Q.checkWithAlternatives(Alternatives, Cycle);
      if (Alt >= 0)
        break;
    }
    if (Alt < 0)
      return Result; // Success stays false

    Q.assign(Alternatives[Alt], Cycle, static_cast<InstanceId>(Best));
    Result.Time[Best] = Cycle;
    Result.Alternative[Best] = Alt;
    Result.Length = std::max(Result.Length, Cycle + 1);
    Scheduled[Best] = true;
  }

  Result.Success = true;
  return Result;
}
