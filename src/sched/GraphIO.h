//===- sched/GraphIO.h - Loop dependence graphs as text --------*- C++ -*-===//
///
/// \file
/// A small text format for loop bodies, so the schedulers can be driven on
/// user-written loops from the command line (the imsched tool). Nodes name
/// operations of a machine description; edges carry (delay, distance).
/// Omitting an edge's delay uses the producer's `latency` annotation from
/// the bound MachineModel.
///
/// \code
///   loop tridiag {
///     ld_z: load;
///     ld_y: load;
///     sub:  fadd.s;
///     mul:  fmul.s;
///     st:   store;
///     br:   brtop;
///     edge ld_y -> sub;
///     edge mul  -> sub distance 1;   # x[i-1] from the previous iteration
///     edge ld_z -> mul;
///     edge sub  -> mul;
///     edge mul  -> st;
///     edge st   -> br delay 0;
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SCHED_GRAPHIO_H
#define RMD_SCHED_GRAPHIO_H

#include "machines/MachineModel.h"
#include "sched/DepGraph.h"

#include <optional>
#include <string>
#include <string_view>

namespace rmd {

/// Parses a loop graph over \p Model's *original* operation names. Edge
/// delays default to the producer's latency; `delay N` overrides and
/// `distance D` marks loop-carried dependences. Node order follows the
/// file. Errors go to \p Diags.
std::optional<DepGraph> parseLoopGraph(std::string_view Input,
                                       const MachineModel &Model,
                                       DiagnosticEngine &Diags);

/// Renders \p G back into the text format (delays always explicit).
std::string writeLoopGraph(const DepGraph &G, const MachineModel &Model);

} // namespace rmd

#endif // RMD_SCHED_GRAPHIO_H
