//===- sched/IterativeModuloScheduler.h - Rau's IMS ------------*- C++ -*-===//
///
/// \file
/// The Iterative Modulo Scheduler (Rau, MICRO-27 '94), the paper's driver
/// for the contention query module experiments (Section 8). Key properties
/// reproduced here:
///
///   - operations are scheduled in height-priority order, *not* in cycle
///     order (an unrestricted scheduling model);
///   - a limited number of scheduling decisions may be reversed: a forced
///     placement evicts resource-conflicting operations via assign&free,
///     and operations whose dependences become violated are unscheduled;
///   - the budget is BudgetRatio * N scheduling decisions per II attempt;
///     on exhaustion the scheduler retries with II + 1.
///
/// The scheduler is parameterized over the query module (representation and
/// machine description), so the same scheduling trace can be replayed
/// against original/reduced and discrete/bitvector modules, which is
/// exactly how Tables 5 and 6 are produced.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SCHED_ITERATIVEMODULOSCHEDULER_H
#define RMD_SCHED_ITERATIVEMODULOSCHEDULER_H

#include "query/QueryModule.h"
#include "sched/DepGraph.h"
#include "support/Deadline.h"
#include "support/Degradation.h"
#include "support/Status.h"

#include <functional>
#include <memory>

namespace rmd {

struct QueryTraceLog;

/// Everything the scheduler needs to talk to a contention query module:
/// the expanded (single-alternative) description the module is built over,
/// the alternative grouping, and the module factory. The flat description
/// may be the original machine or any equivalent reduction; schedules are
/// identical either way (and tests assert so).
struct QueryEnvironment {
  const MachineDescription *FlatMD = nullptr;
  const std::vector<std::vector<OpId>> *Groups = nullptr;
  std::function<std::unique_ptr<ContentionQueryModule>(QueryConfig)>
      MakeModule;
};

/// Priority function selecting the next operation to place. Rau found
/// height-based priority (critical path first) best; the alternatives
/// exist for the scheduler_priority_ablation benchmark.
enum class SchedulePriority {
  /// Longest path to the end of the iteration (Rau's HeightR). Default.
  Height,
  /// Longest path from the start of the iteration (top-down).
  Depth,
  /// Node order as given (a naive baseline).
  SourceOrder,
};

/// Tuning knobs of the IMS.
struct ModuloScheduleOptions {
  /// Scheduling-decision budget per attempt, as a multiple of N (the
  /// paper uses 6N, and 2N for the sensitivity experiment).
  int BudgetRatio = 6;

  /// Hard II ceiling; 0 selects MII + 128.
  int MaxII = 0;

  /// Operation-selection priority.
  SchedulePriority Priority = SchedulePriority::Height;

  /// When non-null, every query-module call of every II attempt is
  /// recorded: one trace segment per attempt, configured modulo(II) and
  /// labelled with the flat machine's name, replayable standalone against
  /// any module built over an equivalent description
  /// (verify/QueryTrace.h).
  QueryTraceLog *TraceLog = nullptr;

  /// Wall-clock budget: polled between scheduling decisions and II
  /// attempts; on expiry the scheduler returns best-so-far with a
  /// TimedOut outcome instead of grinding II escalation.
  Deadline TheDeadline = Deadline::never();

  /// Cooperative cancellation (e.g. a serving thread abandoning a
  /// request); polled at the same points as the deadline.
  const CancellationToken *Cancel = nullptr;
};

/// Statistics of one scheduling run (Table 5 / Table 6 inputs).
struct ModuloScheduleStats {
  int ResMII = 0;
  int RecMII = 0;
  int MII = 0;
  int II = 0;

  /// Scheduling decisions (operation placements) per II attempt, in
  /// attempt order; failed attempts included.
  std::vector<uint64_t> DecisionsPerAttempt;

  /// Operations unscheduled because a forced placement took their
  /// resources (via assign&free).
  uint64_t EvictedByResource = 0;

  /// Operations unscheduled because a placement violated their dependence
  /// constraints.
  uint64_t EvictedByDependence = 0;

  /// Number of check queries issued per scheduling decision (the paper's
  /// distribution: 4.74 average, 49.5% single-query, ...).
  std::vector<uint32_t> ChecksPerDecision;

  /// True if any assign&free call evicted at least one operation.
  bool UsedAssignFreeEviction = false;

  /// Number of assign&free calls that evicted at least one operation (the
  /// paper reports this as a fraction of calls: 13.0%).
  uint64_t AssignFreeCallsWithEviction = 0;

  uint64_t totalDecisions() const {
    uint64_t Total = 0;
    for (uint64_t D : DecisionsPerAttempt)
      Total += D;
    return Total;
  }

  /// Degradation events of this run (timeouts, infeasible-recurrence
  /// rejections); also tallied in globalDegradation().
  DegradationCounters Degradation;
};

/// Why a scheduling run ended.
enum class ScheduleOutcome {
  /// A complete schedule was found (Success == true).
  Scheduled,
  /// No II up to the ceiling admitted a schedule within budget.
  CeilingReached,
  /// The dependence graph has a zero-distance positive-delay cycle; see
  /// Error for the named cycle.
  InfeasibleRecurrence,
  /// The deadline expired; Time/Alternative hold the best-so-far partial
  /// placement of the interrupted attempt.
  TimedOut,
  /// The cancellation token was triggered; partial placement as TimedOut.
  Cancelled,
};

/// The outcome of moduloSchedule().
struct ModuloScheduleResult {
  bool Success = false;
  ScheduleOutcome Outcome = ScheduleOutcome::CeilingReached;
  /// Non-ok when Outcome is a structured failure (InfeasibleRecurrence,
  /// TimedOut, Cancelled).
  Status Error;
  int II = 0;
  /// Issue cycle per node (valid on success; on TimedOut/Cancelled the
  /// partial placement of the interrupted attempt, where entries with
  /// Alternative[n] < 0 were unplaced).
  std::vector<int> Time;
  /// Chosen alternative per node (valid on success; -1 = unplaced in a
  /// partial result).
  std::vector<int> Alternative;
  ModuloScheduleStats Stats;
  /// Query-module work accumulated over every attempt.
  WorkCounters Counters;
};

/// Modulo-schedules \p G against \p Env. \p MD is the *original* machine
/// (with alternatives), used for the ResMII bound. Returns Success == false
/// only if no II up to the ceiling admits a schedule within budget, the
/// recurrences are infeasible, or the deadline/cancellation interrupted the
/// run (see Outcome); never aborts on input-triggered conditions.
ModuloScheduleResult moduloSchedule(const DepGraph &G,
                                    const MachineDescription &MD,
                                    const QueryEnvironment &Env,
                                    const ModuloScheduleOptions &Options = {});

} // namespace rmd

#endif // RMD_SCHED_ITERATIVEMODULOSCHEDULER_H
