//===- sched/DepGraph.cpp -------------------------------------------------===//

#include "sched/DepGraph.h"

#include <algorithm>

using namespace rmd;

NodeId DepGraph::addNode(OpId Op, std::string NodeName) {
  if (NodeName.empty())
    NodeName = "n" + std::to_string(Ops.size());
  Ops.push_back(Op);
  Names.push_back(std::move(NodeName));
  Succ.emplace_back();
  Pred.emplace_back();
  return static_cast<NodeId>(Ops.size() - 1);
}

void DepGraph::addEdge(NodeId From, NodeId To, int Delay, int Distance) {
  assert(From < Ops.size() && To < Ops.size() && "edge endpoint out of range");
  assert(Distance >= 0 && "negative dependence distance");
  uint32_t Index = static_cast<uint32_t>(Edges.size());
  Edges.push_back(DepEdge{From, To, Delay, Distance});
  Succ[From].push_back(Index);
  Pred[To].push_back(Index);
}

bool DepGraph::isAcyclic() const {
  for (const DepEdge &E : Edges)
    if (E.Distance != 0)
      return false;
  return topologicalOrder().size() == numNodes();
}

std::vector<NodeId> DepGraph::topologicalOrder() const {
  std::vector<uint32_t> InDegree(numNodes(), 0);
  for (const DepEdge &E : Edges)
    if (E.Distance == 0)
      ++InDegree[E.To];

  std::vector<NodeId> Order;
  Order.reserve(numNodes());
  std::vector<NodeId> Ready;
  for (NodeId N = 0; N < numNodes(); ++N)
    if (InDegree[N] == 0)
      Ready.push_back(N);
  // Pop the smallest id first for determinism.
  while (!Ready.empty()) {
    auto It = std::min_element(Ready.begin(), Ready.end());
    NodeId N = *It;
    Ready.erase(It);
    Order.push_back(N);
    for (uint32_t EIdx : Succ[N]) {
      const DepEdge &E = Edges[EIdx];
      if (E.Distance == 0 && --InDegree[E.To] == 0)
        Ready.push_back(E.To);
    }
  }
  return Order;
}

bool DepGraph::scheduleRespectsDependences(const std::vector<int> &Time,
                                           int II) const {
  assert(Time.size() == numNodes() && "time vector size mismatch");
  for (const DepEdge &E : Edges)
    if (Time[E.To] < Time[E.From] + E.Delay - II * E.Distance)
      return false;
  return true;
}
