//===- sched/Expansion.h - Unrolling modulo schedules ----------*- C++ -*-===//
///
/// \file
/// Expands a modulo schedule into the flat schedule of n overlapped
/// iterations (prologue + steady-state kernel + epilogue) and verifies the
/// expansion against a *linear* reserved table: every iteration copy is
/// placed individually and must be contention-free, and every dependence
/// (including loop-carried ones) must hold between the copies.
///
/// This ties the Modulo Reservation Table abstraction back to what the
/// hardware actually executes -- the strongest end-to-end check that the
/// modulo addressing, the scheduler, and the descriptions agree.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SCHED_EXPANSION_H
#define RMD_SCHED_EXPANSION_H

#include "query/QueryModule.h"
#include "sched/DepGraph.h"

#include <vector>

namespace rmd {

/// One operation instance of the expanded schedule.
struct ExpandedIssue {
  NodeId Node = 0;
  int Iteration = 0;
  int Cycle = 0; ///< absolute cycle: Time[Node] + Iteration * II
};

/// Expands (\p Time, \p II) over \p Iterations iterations, sorted by cycle
/// (ties by iteration then node).
std::vector<ExpandedIssue> expandPipelinedSchedule(
    const std::vector<int> &Time, int II, int Iterations);

/// Verifies the expansion of (\p G, \p ChosenOps, \p Time, \p II) over
/// \p Iterations iterations on a fresh linear reserved table over
/// \p FlatMD: all placements contention-free and all dependences satisfied
/// across iteration copies. Returns true on success.
bool verifyExpandedSchedule(const DepGraph &G,
                            const MachineDescription &FlatMD,
                            const std::vector<OpId> &ChosenOps,
                            const std::vector<int> &Time, int II,
                            int Iterations);

} // namespace rmd

#endif // RMD_SCHED_EXPANSION_H
