//===- sched/ScheduleRender.h - Schedule pretty-printing -------*- C++ -*-===//
///
/// \file
/// Human-readable renderings of schedules: the flat issue listing, and the
/// kernel view of a modulo schedule -- one row per MRT slot, showing which
/// operations (of which overlapped iterations) issue there. The same view
/// the Cydra/IMPACT papers print when discussing software-pipelined
/// kernels.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SCHED_SCHEDULERENDER_H
#define RMD_SCHED_SCHEDULERENDER_H

#include "mdesc/MachineDescription.h"
#include "sched/DepGraph.h"

#include <iosfwd>
#include <vector>

namespace rmd {

/// Prints "t=<cycle>  <node-name> (<op-name>)" lines in issue order.
/// \p OpNames resolves each node's chosen flat operation.
void renderIssueOrder(std::ostream &OS, const DepGraph &G,
                      const MachineDescription &FlatMD,
                      const std::vector<OpId> &ChosenOps,
                      const std::vector<int> &Time);

/// Prints the kernel of a modulo schedule: for each MRT slot s in [0, II),
/// every operation issued at a cycle congruent to s, annotated with its
/// stage (floor(t / II)) -- the software-pipeline overlap depth.
void renderKernel(std::ostream &OS, const DepGraph &G,
                  const MachineDescription &FlatMD,
                  const std::vector<OpId> &ChosenOps,
                  const std::vector<int> &Time, int II);

/// Resolves each node's chosen flat operation from the groups mapping and
/// per-node alternative indices.
std::vector<OpId>
chosenFlatOps(const DepGraph &G,
              const std::vector<std::vector<OpId>> &Groups,
              const std::vector<int> &Alternative);

/// Pipeline shape of a modulo schedule.
struct KernelInfo {
  int II = 0;
  /// Number of kernel stages = ceil(span / II): how many iterations
  /// overlap in steady state.
  int Stages = 0;
  /// Cycles of ramp-up before the first full kernel iteration completes
  /// ((Stages - 1) * II).
  int PrologueCycles = 0;
  /// Kernel slots with at least one operation.
  int OccupiedSlots = 0;
  /// Largest number of operations issued in one kernel slot.
  int MaxSlotWidth = 0;
};

/// Analyzes the modulo schedule (\p Time, \p II).
KernelInfo analyzeKernel(const std::vector<int> &Time, int II);

} // namespace rmd

#endif // RMD_SCHED_SCHEDULERENDER_H
