//===- sched/OperationDrivenScheduler.cpp ---------------------------------===//

#include "sched/OperationDrivenScheduler.h"

#include "support/Degradation.h"
#include "support/FaultInjection.h"
#include "support/Stats.h"
#include "verify/QueryTrace.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <unordered_map>

using namespace rmd;

namespace {

/// Critical-path heights over delays (resource-free), for the priority.
std::vector<long long> criticalHeights(const DepGraph &G) {
  std::vector<long long> Height(G.numNodes(), 0);
  std::vector<NodeId> Topo = G.topologicalOrder();
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It)
    for (uint32_t EIdx : G.succEdges(*It)) {
      const DepEdge &E = G.edges()[EIdx];
      Height[*It] = std::max(Height[*It], Height[E.To] + E.Delay);
    }
  return Height;
}

} // namespace

OperationDrivenResult rmd::operationDrivenSchedule(
    const DepGraph &G, const std::vector<std::vector<OpId>> &Groups,
    const MachineDescription &FlatMD, ContentionQueryModule &Module,
    const std::vector<DanglingOp> &Dangling,
    const OperationDrivenOptions &Options, QueryTrace *Trace) {
  assert(G.isAcyclic() && "operation-driven scheduling is for basic blocks");

  // Opt-in recording: route every query through a tracer. Counters mirror
  // the inner module's, so accounting is unchanged by tracing.
  std::optional<TracingQueryModule> Tracer;
  if (Trace)
    Tracer.emplace(Module, *Trace);
  ContentionQueryModule &Q =
      Trace ? static_cast<ContentionQueryModule &>(*Tracer) : Module;

  OperationDrivenResult Result;
  size_t N = G.numNodes();
  Result.Time.assign(N, 0);
  Result.Alternative.assign(N, -1);

  // Published on every exit (success, timeout, budget) by the scope guard.
  uint64_t Backtracks = 0;
  struct StatsPublisher {
    OperationDrivenResult &R;
    uint64_t &Backtracks;
    ~StatsPublisher() {
      static StatCounter Runs("sched.block.runs");
      static StatCounter Decisions("sched.block.decisions");
      static StatCounter BacktrackStat("sched.block.backtracks");
      static StatCounter Scheduled("sched.block.scheduled");
      Runs.add();
      Decisions.add(R.Decisions);
      BacktrackStat.add(Backtracks);
      if (R.Success)
        Scheduled.add();
    }
  } Publisher{Result, Backtracks};

  // Seed predecessor residue below instance id -1; remember each so a
  // forced placement that trampled one can restore it (the predecessor
  // block is immutable).
  std::unordered_map<InstanceId, DanglingOp> DanglingInfo;
  InstanceId DanglingId = -2;
  for (const DanglingOp &D : Dangling) {
    Q.assign(D.FlatOp, D.Cycle, DanglingId);
    DanglingInfo.emplace(DanglingId, D);
    --DanglingId;
  }

  std::vector<long long> Height = criticalHeights(G);
  std::vector<bool> Scheduled(N, false);
  std::vector<unsigned> Evictions(N, 0);
  size_t NumScheduled = 0;

  // Termination backstop: operation-driven backtracking can in principle
  // thrash; a generous global budget turns livelock into honest failure.
  uint64_t Budget = 64ull * N + 64;

  while (NumScheduled < N) {
    // Wall-clock / cancellation poll per decision; best-so-far on expiry
    // (unscheduled nodes keep Alternative == -1 below).
    bool WantCancel = Options.Cancel && Options.Cancel->cancelled();
    if (WantCancel || Options.TheDeadline.expired() ||
        FaultInjection::fire(faultpoints::SchedDeadline)) {
      for (NodeId U = 0; U < N; ++U)
        if (!Scheduled[U])
          Result.Alternative[U] = -1;
      Result.Error =
          WantCancel ? Status(ErrorCode::Cancelled,
                              "block scheduling cancelled")
                     : Status(ErrorCode::TimedOut,
                              "block scheduling deadline expired");
      globalDegradation().noteSchedulerTimeout();
      return Result; // Success stays false
    }

    if (Result.Decisions >= Budget)
      return Result; // Success stays false

    // Highest critical-path height among unscheduled ops (ties: lower id).
    NodeId V = static_cast<NodeId>(N);
    for (NodeId U = 0; U < N; ++U)
      if (!Scheduled[U] && (V == N || Height[U] > Height[V]))
        V = U;
    assert(V < N && "no candidate despite unscheduled operations");

    // Dependence window against *scheduled* neighbours: note that
    // operations are NOT placed in cycle order -- V may land before
    // already-scheduled operations.
    int Estart = 0;
    for (uint32_t EIdx : G.predEdges(V)) {
      const DepEdge &E = G.edges()[EIdx];
      if (Scheduled[E.From])
        Estart = std::max(Estart, Result.Time[E.From] + E.Delay);
    }
    int Lstart = Estart + 64; // bounded in-window search
    for (uint32_t EIdx : G.succEdges(V)) {
      const DepEdge &E = G.edges()[EIdx];
      if (Scheduled[E.To])
        Lstart = std::min(Lstart, Result.Time[E.To] - E.Delay);
    }

    const std::vector<OpId> &Alts = Groups[G.opOf(V)];
    int Slot = -1;
    int Alt = -1;
    for (int T = Estart; T <= Lstart && Slot < 0; ++T) {
      int Found = Q.checkWithAlternatives(Alts, T);
      if (Found >= 0) {
        Slot = T;
        Alt = Found;
      }
    }

    if (Slot >= 0) {
      Q.assign(Alts[Alt], Slot, static_cast<InstanceId>(V));
    } else if (Evictions[V] < Options.MaxEvictions) {
      // Forced placement at Estart: evict whoever holds the resources.
      // Predecessor residue is immutable: if a forced slot tramples a
      // dangling reservation, restore it and push the slot forward.
      Slot = Estart;
      Alt = 0;
      for (;;) {
        std::vector<InstanceId> Evicted;
        Q.assignAndFree(Alts[Alt], Slot, static_cast<InstanceId>(V),
                        Evicted);
        bool HitDangling = false;
        for (InstanceId Victim : Evicted) {
          if (Victim < -1) {
            HitDangling = true;
            continue;
          }
          assert(Victim >= 0 && static_cast<size_t>(Victim) < N &&
                 "evicted an unknown instance");
          Scheduled[Victim] = false;
          --NumScheduled;
          ++Evictions[Victim];
          ++Backtracks;
        }
        if (!HitDangling)
          break;
        // Undo: release this placement, restore trampled residue, retry
        // one cycle later.
        Q.free(Alts[Alt], Slot, static_cast<InstanceId>(V));
        for (InstanceId Victim : Evicted)
          if (Victim < -1) {
            const DanglingOp &D = DanglingInfo.at(Victim);
            Q.assign(D.FlatOp, D.Cycle, Victim);
          }
        ++Slot;
      }
    } else {
      // Eviction budget spent: take the first conflict-free cycle at or
      // past the window (always exists in a linear schedule).
      Alt = -1;
      for (int T = std::max(Estart, Lstart + 1); Alt < 0; ++T) {
        Alt = Q.checkWithAlternatives(Alts, T);
        if (Alt >= 0)
          Slot = T;
      }
      Q.assign(Alts[Alt], Slot, static_cast<InstanceId>(V));
    }

    Result.Time[V] = Slot;
    Result.Alternative[V] = Alt;
    Scheduled[V] = true;
    ++NumScheduled;
    ++Result.Decisions;

    // Unschedule neighbours whose dependence constraints the placement
    // violates; they re-enter the worklist.
    auto unschedule = [&](NodeId W) {
      Q.free(Groups[G.opOf(W)][Result.Alternative[W]], Result.Time[W],
             static_cast<InstanceId>(W));
      Scheduled[W] = false;
      --NumScheduled;
      ++Evictions[W];
      ++Backtracks;
    };
    for (uint32_t EIdx : G.succEdges(V)) {
      const DepEdge &E = G.edges()[EIdx];
      if (Scheduled[E.To] && Result.Time[E.To] < Slot + E.Delay)
        unschedule(E.To);
    }
    for (uint32_t EIdx : G.predEdges(V)) {
      const DepEdge &E = G.edges()[EIdx];
      if (Scheduled[E.From] && Slot < Result.Time[E.From] + E.Delay)
        unschedule(E.From);
    }
  }

  // Schedule length and the residue dangling into a successor block.
  for (NodeId V = 0; V < N; ++V)
    Result.Length = std::max(Result.Length, Result.Time[V] + 1);
  for (NodeId V = 0; V < N; ++V) {
    OpId Flat = Groups[G.opOf(V)][Result.Alternative[V]];
    int Len = FlatMD.operation(Flat).table().length();
    if (Result.Time[V] + Len > Result.Length)
      Result.Dangling.push_back(
          DanglingOp{Flat, Result.Time[V] - Result.Length});
  }

  assert(G.scheduleRespectsDependences(Result.Time, 0) &&
         "operation-driven scheduler violated a dependence");
  Result.Success = true;
  return Result;
}

std::vector<OperationDrivenResult> rmd::scheduleBlockSequence(
    const std::vector<const DepGraph *> &Blocks,
    const std::vector<std::vector<OpId>> &Groups,
    const MachineDescription &FlatMD,
    const std::function<std::unique_ptr<ContentionQueryModule>()> &MakeModule,
    const OperationDrivenOptions &Options) {
  std::vector<OperationDrivenResult> Results;
  std::vector<DanglingOp> Residue;
  for (const DepGraph *Block : Blocks) {
    std::unique_ptr<ContentionQueryModule> Module = MakeModule();
    Results.push_back(operationDrivenSchedule(*Block, Groups, FlatMD,
                                              *Module, Residue, Options));
    if (!Results.back().Success)
      return Results;
    Residue = Results.back().Dangling;
  }
  return Results;
}
