//===- sched/ListScheduler.h - Acyclic list scheduling ---------*- C++ -*-===//
///
/// \file
/// A deterministic list scheduler for acyclic (basic block) dependence
/// graphs. Used to validate end-to-end that scheduling against a reduced
/// machine description produces exactly the schedules of the original
/// description (the paper verified this over 1327 loops), and to
/// demonstrate boundary conditions: the reserved table may be pre-seeded
/// with resource requirements dangling from predecessor blocks.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SCHED_LISTSCHEDULER_H
#define RMD_SCHED_LISTSCHEDULER_H

#include "mdesc/MachineDescription.h"
#include "query/QueryModule.h"
#include "sched/DepGraph.h"

#include <vector>

namespace rmd {

struct QueryTrace;

/// The outcome of list scheduling.
struct ListScheduleResult {
  bool Success = false;
  /// Issue cycle per node.
  std::vector<int> Time;
  /// Chosen alternative index per node.
  std::vector<int> Alternative;
  /// Schedule length: one past the last issue cycle (not counting latency).
  int Length = 0;
};

/// An operation issued before cycle 0 whose resource requirements dangle
/// into this block (boundary conditions, Section 1). \p Cycle is negative
/// or zero; the flat (expanded) operation id selects the exact alternative.
struct DanglingOp {
  OpId FlatOp = 0;
  int Cycle = 0;
};

/// Schedules the acyclic graph \p G in priority order (critical-path
/// height, ties by node id) on \p Module, choosing among each node's
/// alternatives with check-with-alternatives. \p Groups maps original op
/// ids to flat alternative ids (ExpandedMachine::Groups). \p Dangling
/// reservations are assigned before scheduling starts; the module's
/// QueryConfig::MinCycle must admit their cycles.
///
/// When \p Trace is non-null, every query-module call this run makes
/// (including the dangling-reservation seeding) is appended to it; the
/// caller sets the trace's Config to the module's addressing so the stream
/// can be replayed standalone (verify/QueryTrace.h).
ListScheduleResult
listSchedule(const DepGraph &G, const std::vector<std::vector<OpId>> &Groups,
             ContentionQueryModule &Module,
             const std::vector<DanglingOp> &Dangling = {},
             QueryTrace *Trace = nullptr);

} // namespace rmd

#endif // RMD_SCHED_LISTSCHEDULER_H
