//===- sched/ScheduleRender.cpp -------------------------------------------===//

#include "sched/ScheduleRender.h"

#include <algorithm>
#include <cassert>
#include <ostream>

using namespace rmd;

std::vector<OpId>
rmd::chosenFlatOps(const DepGraph &G,
                   const std::vector<std::vector<OpId>> &Groups,
                   const std::vector<int> &Alternative) {
  assert(Alternative.size() == G.numNodes() && "alternative size mismatch");
  std::vector<OpId> Ops;
  Ops.reserve(G.numNodes());
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    assert(Alternative[N] >= 0 && "node has no chosen alternative");
    Ops.push_back(Groups[G.opOf(N)][static_cast<size_t>(Alternative[N])]);
  }
  return Ops;
}

void rmd::renderIssueOrder(std::ostream &OS, const DepGraph &G,
                           const MachineDescription &FlatMD,
                           const std::vector<OpId> &ChosenOps,
                           const std::vector<int> &Time) {
  std::vector<NodeId> Order(G.numNodes());
  for (NodeId N = 0; N < G.numNodes(); ++N)
    Order[N] = N;
  std::stable_sort(Order.begin(), Order.end(), [&](NodeId A, NodeId B) {
    return Time[A] < Time[B];
  });
  for (NodeId N : Order)
    OS << "  t=" << Time[N] << "  " << G.nodeName(N) << " ("
       << FlatMD.operation(ChosenOps[N]).Name << ")\n";
}

KernelInfo rmd::analyzeKernel(const std::vector<int> &Time, int II) {
  assert(II > 0 && "kernel analysis needs a positive II");
  KernelInfo Info;
  Info.II = II;
  if (Time.empty())
    return Info;

  int MaxTime = 0;
  std::vector<int> SlotWidth(static_cast<size_t>(II), 0);
  for (int T : Time) {
    assert(T >= 0 && "modulo schedules are nonnegative");
    MaxTime = std::max(MaxTime, T);
    ++SlotWidth[static_cast<size_t>(T % II)];
  }
  Info.Stages = MaxTime / II + 1;
  Info.PrologueCycles = (Info.Stages - 1) * II;
  for (int W : SlotWidth) {
    Info.OccupiedSlots += W > 0;
    Info.MaxSlotWidth = std::max(Info.MaxSlotWidth, W);
  }
  return Info;
}

void rmd::renderKernel(std::ostream &OS, const DepGraph &G,
                       const MachineDescription &FlatMD,
                       const std::vector<OpId> &ChosenOps,
                       const std::vector<int> &Time, int II) {
  assert(II > 0 && "kernel rendering needs a positive II");
  for (int Slot = 0; Slot < II; ++Slot) {
    OS << "  slot " << Slot << ":";
    bool Any = false;
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      if (Time[N] % II != Slot)
        continue;
      OS << (Any ? ", " : " ") << FlatMD.operation(ChosenOps[N]).Name
         << "[stage " << Time[N] / II << "]";
      Any = true;
    }
    if (!Any)
      OS << " (empty)";
    OS << "\n";
  }
}
