//===- sched/IterativeModuloScheduler.cpp ---------------------------------===//

#include "sched/IterativeModuloScheduler.h"

#include "query/DiscreteQuery.h" // hasModuloSelfConflict
#include "sched/MII.h"
#include "support/FaultInjection.h"
#include "support/Stats.h"
#include "verify/QueryTrace.h"

#include <algorithm>
#include <cassert>
#include <optional>

using namespace rmd;

namespace {

/// Per-attempt scheduling state.
struct AttemptState {
  std::vector<bool> Scheduled;
  std::vector<bool> EverScheduled;
  std::vector<int> Time;
  std::vector<int> Alternative;
  std::vector<int> PrevTime;
  std::vector<uint32_t> ForcedCount;
};

/// Height-based priority at a given II: HeightR(v) = max over edges v->s of
/// HeightR(s) + Delay - II*Distance, computed by relaxation (converges for
/// II >= RecMII, where no positive cycle exists).
std::vector<long long> computeHeights(const DepGraph &G, int II) {
  std::vector<long long> Height(G.numNodes(), 0);
  for (size_t Pass = 0; Pass <= G.numNodes() + 1; ++Pass) {
    bool Changed = false;
    for (const DepEdge &E : G.edges()) {
      long long Candidate =
          Height[E.To] + E.Delay - static_cast<long long>(II) * E.Distance;
      if (Candidate > Height[E.From]) {
        Height[E.From] = Candidate;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
  return Height;
}

/// The selected priority values; larger schedules earlier.
std::vector<long long> computePriorities(const DepGraph &G, int II,
                                         SchedulePriority Kind) {
  switch (Kind) {
  case SchedulePriority::Height:
    return computeHeights(G, II);
  case SchedulePriority::Depth: {
    // Longest path from the iteration start (forward relaxation).
    std::vector<long long> Depth(G.numNodes(), 0);
    for (size_t Pass = 0; Pass <= G.numNodes() + 1; ++Pass) {
      bool Changed = false;
      for (const DepEdge &E : G.edges()) {
        long long Candidate =
            Depth[E.From] + E.Delay - static_cast<long long>(II) * E.Distance;
        if (Candidate > Depth[E.To]) {
          Depth[E.To] = Candidate;
          Changed = true;
        }
      }
      if (!Changed)
        break;
    }
    return Depth;
  }
  case SchedulePriority::SourceOrder: {
    std::vector<long long> Priority(G.numNodes());
    for (NodeId N = 0; N < G.numNodes(); ++N)
      Priority[N] = static_cast<long long>(G.numNodes() - N);
    return Priority;
  }
  }
  return std::vector<long long>(G.numNodes(), 0);
}

/// How one II attempt ended.
enum class AttemptEnd {
  /// Complete schedule found within budget.
  Complete,
  /// Decision budget exhausted (or no II-feasible alternative); the caller
  /// escalates to II + 1.
  BudgetExhausted,
  /// Deadline expired or cancellation requested mid-attempt; the caller
  /// returns best-so-far instead of escalating.
  Interrupted,
};

} // namespace

/// One II attempt. On Interrupted, S holds the partial placement with
/// S.Alternative[v] == -1 for every node not scheduled at the interrupt.
static AttemptEnd
attemptSchedule(const DepGraph &G, const QueryEnvironment &Env, int II,
                uint64_t Budget, const ModuloScheduleOptions &Options,
                AttemptState &S, ModuloScheduleStats &Stats,
                uint64_t &DecisionsThisAttempt, WorkCounters &Accum,
                ScheduleOutcome &Interrupt) {
  SchedulePriority Kind = Options.Priority;
  QueryTraceLog *TraceLog = Options.TraceLog;
  const auto &Groups = *Env.Groups;
  const MachineDescription &Flat = *Env.FlatMD;
  size_t N = G.numNodes();

  // Alternatives that collide with their own modulo copies at this II can
  // never be placed; if some node has no feasible alternative, the attempt
  // fails immediately (the scheduler must raise the II).
  std::vector<std::vector<uint8_t>> AltFeasible(N);
  for (NodeId V = 0; V < N; ++V) {
    bool Any = false;
    const std::vector<OpId> &Alts = Groups[G.opOf(V)];
    AltFeasible[V].resize(Alts.size());
    for (size_t A = 0; A < Alts.size(); ++A) {
      bool Ok =
          !hasModuloSelfConflict(Flat.operation(Alts[A]).table(), II);
      AltFeasible[V][A] = Ok;
      Any |= Ok;
    }
    if (!Any)
      return AttemptEnd::BudgetExhausted;
  }

  std::unique_ptr<ContentionQueryModule> Module =
      Env.MakeModule(QueryConfig::modulo(II));

  // Opt-in recording: one trace segment per II attempt, routed through a
  // pass-through tracer. Counters stay on the inner module, so accounting
  // (ChecksPerDecision, the accumulated totals) is unchanged by tracing.
  std::optional<TracingQueryModule> Tracer;
  if (TraceLog)
    Tracer.emplace(*Module, TraceLog->beginSegment(Flat.name(),
                                                   QueryConfig::modulo(II)));
  ContentionQueryModule &Q =
      TraceLog ? static_cast<ContentionQueryModule &>(*Tracer) : *Module;

  std::vector<long long> Height = computePriorities(G, II, Kind);

  S.Scheduled.assign(N, false);
  S.EverScheduled.assign(N, false);
  S.Time.assign(N, 0);
  S.Alternative.assign(N, -1);
  S.PrevTime.assign(N, 0);
  S.ForcedCount.assign(N, 0);

  DecisionsThisAttempt = 0;
  size_t NumScheduled = 0;

  while (NumScheduled < N) {
    // Wall-clock / cancellation poll, once per scheduling decision: cheap
    // (one steady_clock read at most) relative to the window scan each
    // decision performs.
    bool WantCancel = Options.Cancel && Options.Cancel->cancelled();
    bool WantStop = WantCancel || Options.TheDeadline.expired() ||
                    FaultInjection::fire(faultpoints::SchedDeadline);
    if (WantStop) {
      for (NodeId U = 0; U < N; ++U)
        if (!S.Scheduled[U])
          S.Alternative[U] = -1;
      Accum.accumulate(Module->counters());
      Interrupt = WantCancel ? ScheduleOutcome::Cancelled
                             : ScheduleOutcome::TimedOut;
      return AttemptEnd::Interrupted;
    }

    if (DecisionsThisAttempt >= Budget) {
      Accum.accumulate(Module->counters());
      return AttemptEnd::BudgetExhausted;
    }

    // Highest-priority unscheduled operation (ties: lowest id).
    NodeId V = static_cast<NodeId>(N);
    for (NodeId U = 0; U < N; ++U)
      if (!S.Scheduled[U] && (V == N || Height[U] > Height[V]))
        V = U;
    assert(V < N && "no unscheduled node despite NumScheduled < N");

    // Earliest start from currently scheduled predecessors.
    int Estart = 0;
    for (uint32_t EIdx : G.predEdges(V)) {
      const DepEdge &E = G.edges()[EIdx];
      if (E.From != V && S.Scheduled[E.From])
        Estart = std::max(Estart,
                          S.Time[E.From] + E.Delay - II * E.Distance);
    }

    const std::vector<OpId> &Alts = Groups[G.opOf(V)];
    uint64_t ChecksBefore = Module->counters().CheckCalls;

    // Scan one II window for a contention-free slot.
    int Slot = -1;
    int Alt = -1;
    for (int T = Estart; T < Estart + II && Slot < 0; ++T) {
      int Found = Q.checkWithAlternatives(Alts, T);
      if (Found >= 0) {
        Slot = T;
        Alt = Found;
      }
    }

    if (Slot >= 0) {
      // The IMS schedules through assign&free even for conflict-free slots
      // (Section 8: the benchmark issues no plain assign calls); eviction
      // cannot happen here since check() just succeeded.
      std::vector<InstanceId> Evicted;
      Q.assignAndFree(Alts[Alt], Slot, static_cast<InstanceId>(V), Evicted);
      assert(Evicted.empty() && "eviction on a checked-free slot");
    } else {
      // Forced placement (Rau): at Estart, or just past the previous
      // placement when re-scheduling at the same spot.
      Slot = (!S.EverScheduled[V] || Estart > S.PrevTime[V])
                 ? Estart
                 : S.PrevTime[V] + 1;
      // Rotate through the II-feasible alternatives. Each draw advances the
      // rotation by one position, so Alts.size() draws cover every
      // alternative exactly once — the up-front AltFeasible scan guarantees
      // a feasible one is among them. If that invariant ever breaks, raise
      // the II through the normal escalation path rather than silently
      // placing an infeasible alternative (the old assert-only guard
      // vanished in NDEBUG builds).
      unsigned Tried = 0;
      do {
        Alt = static_cast<int>(S.ForcedCount[V]++ % Alts.size());
        ++Tried;
      } while (!AltFeasible[V][Alt] && Tried < Alts.size());
      if (!AltFeasible[V][Alt]) {
        Accum.accumulate(Module->counters());
        return AttemptEnd::BudgetExhausted;
      }

      std::vector<InstanceId> Evicted;
      Q.assignAndFree(Alts[Alt], Slot, static_cast<InstanceId>(V), Evicted);
      if (!Evicted.empty())
        ++Stats.AssignFreeCallsWithEviction;
      for (InstanceId Victim : Evicted) {
        assert(Victim >= 0 && static_cast<size_t>(Victim) < N &&
               S.Scheduled[Victim] && "evicted an unknown instance");
        S.Scheduled[Victim] = false;
        --NumScheduled;
        ++Stats.EvictedByResource;
        Stats.UsedAssignFreeEviction = true;
      }
    }

    S.Time[V] = Slot;
    S.Alternative[V] = Alt;
    S.PrevTime[V] = Slot;
    S.EverScheduled[V] = true;
    S.Scheduled[V] = true;
    ++NumScheduled;
    ++DecisionsThisAttempt;
    Stats.ChecksPerDecision.push_back(static_cast<uint32_t>(
        Module->counters().CheckCalls - ChecksBefore));

    // Unschedule operations whose dependences the new placement violates.
    auto unschedule = [&](NodeId W) {
      Q.free(Groups[G.opOf(W)][S.Alternative[W]], S.Time[W],
             static_cast<InstanceId>(W));
      S.Scheduled[W] = false;
      --NumScheduled;
      ++Stats.EvictedByDependence;
    };
    for (uint32_t EIdx : G.succEdges(V)) {
      const DepEdge &E = G.edges()[EIdx];
      if (E.To != V && S.Scheduled[E.To] &&
          S.Time[E.To] < Slot + E.Delay - II * E.Distance)
        unschedule(E.To);
    }
    for (uint32_t EIdx : G.predEdges(V)) {
      const DepEdge &E = G.edges()[EIdx];
      if (E.From != V && S.Scheduled[E.From] &&
          Slot < S.Time[E.From] + E.Delay - II * E.Distance)
        unschedule(E.From);
    }
  }

  Accum.accumulate(Module->counters());
  return AttemptEnd::Complete;
}

ModuloScheduleResult
rmd::moduloSchedule(const DepGraph &G, const MachineDescription &MD,
                    const QueryEnvironment &Env,
                    const ModuloScheduleOptions &Options) {
  assert(Env.FlatMD && Env.Groups && Env.MakeModule &&
         "incomplete query environment");
  assert(G.numNodes() > 0 && "cannot schedule an empty graph");

  ModuloScheduleResult Result;

  // Published on every exit path (success, infeasible recurrence, timeout,
  // ceiling) by the scope guard below, so stats snapshots account for every
  // run. All values derive from the deterministic scheduling loop.
  struct StatsPublisher {
    ModuloScheduleResult &R;
    ~StatsPublisher() {
      static StatCounter Runs("sched.ims.runs");
      static StatCounter Attempts("sched.ims.attempts");
      static StatCounter Decisions("sched.ims.decisions");
      static StatCounter EvictedRes("sched.ims.evicted_resource");
      static StatCounter EvictedDep("sched.ims.evicted_dependence");
      static StatCounter Scheduled("sched.ims.scheduled");
      static StatCounter IITotal("sched.ims.ii_total");
      static StatCounter MIITotal("sched.ims.mii_total");
      static StatCounter IIExcess("sched.ims.ii_excess");
      static StatHistogram Checks("sched.ims.checks_per_decision");
      Runs.add();
      Attempts.add(R.Stats.DecisionsPerAttempt.size());
      uint64_t TotalDecisions = 0;
      for (uint64_t D : R.Stats.DecisionsPerAttempt)
        TotalDecisions += D;
      Decisions.add(TotalDecisions);
      EvictedRes.add(R.Stats.EvictedByResource);
      EvictedDep.add(R.Stats.EvictedByDependence);
      for (uint32_t C : R.Stats.ChecksPerDecision)
        Checks.record(C);
      if (R.Success) {
        Scheduled.add();
        IITotal.add(static_cast<uint64_t>(R.Stats.II));
        MIITotal.add(static_cast<uint64_t>(R.Stats.MII));
        IIExcess.add(static_cast<uint64_t>(R.Stats.II - R.Stats.MII));
      }
    }
  } Publisher{Result};

  Result.Stats.ResMII = computeResMII(MD, G);
  Expected<int> RecMII = computeRecMIIChecked(G);
  if (!RecMII) {
    Result.Outcome = ScheduleOutcome::InfeasibleRecurrence;
    Result.Error = RecMII.status();
    Result.Stats.Degradation.InfeasibleRecurrences += 1;
    globalDegradation().noteInfeasibleRecurrence();
    return Result;
  }
  Result.Stats.RecMII = RecMII.value();
  Result.Stats.MII = std::max(Result.Stats.ResMII, Result.Stats.RecMII);

  int MaxII = Options.MaxII > 0 ? Options.MaxII : Result.Stats.MII + 128;
  uint64_t Budget =
      static_cast<uint64_t>(Options.BudgetRatio) * G.numNodes();

  AttemptState S;
  for (int II = Result.Stats.MII; II <= MaxII; ++II) {
    uint64_t Decisions = 0;
    ScheduleOutcome Interrupt = ScheduleOutcome::TimedOut;
    AttemptEnd End =
        attemptSchedule(G, Env, II, Budget, Options, S, Result.Stats,
                        Decisions, Result.Counters, Interrupt);
    Result.Stats.DecisionsPerAttempt.push_back(Decisions);
    if (End == AttemptEnd::Complete) {
      Result.Success = true;
      Result.Outcome = ScheduleOutcome::Scheduled;
      Result.II = II;
      Result.Stats.II = II;
      Result.Time = S.Time;
      Result.Alternative = S.Alternative;
      assert(G.scheduleRespectsDependences(Result.Time, II) &&
             "IMS produced a dependence-violating schedule");
      return Result;
    }
    if (End == AttemptEnd::Interrupted) {
      // Best-so-far: the partial placement of the interrupted attempt
      // (unplaced nodes carry Alternative == -1).
      Result.Outcome = Interrupt;
      Result.Error =
          Interrupt == ScheduleOutcome::Cancelled
              ? Status(ErrorCode::Cancelled,
                       "scheduling cancelled at II=" + std::to_string(II))
              : Status(ErrorCode::TimedOut,
                       "scheduling deadline expired at II=" +
                           std::to_string(II));
      Result.II = II;
      Result.Stats.II = II;
      Result.Time = S.Time;
      Result.Alternative = S.Alternative;
      Result.Stats.Degradation.SchedulerTimeouts += 1;
      globalDegradation().noteSchedulerTimeout();
      return Result;
    }
  }
  Result.Outcome = ScheduleOutcome::CeilingReached;
  return Result;
}
