//===- sched/DepGraph.h - Dependence graphs with loop carry ----*- C++ -*-===//
///
/// \file
/// Dependence graphs for the scheduling experiments. Nodes are operation
/// instances of one loop iteration (or one basic block); each node names an
/// *original* (pre-expansion) operation of a machine, so a node with
/// alternatives can be placed on any of them. Edges carry (Delay, Distance):
/// the consumer must issue at least Delay cycles after the producer of
/// Distance iterations earlier (Distance 0 = same iteration; acyclic graphs
/// have all distances 0).
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SCHED_DEPGRAPH_H
#define RMD_SCHED_DEPGRAPH_H

#include "mdesc/MachineDescription.h"

#include <string>
#include <vector>

namespace rmd {

/// Node index within a DepGraph.
using NodeId = uint32_t;

/// A dependence: To must issue >= Delay cycles after From, Distance
/// iterations apart.
struct DepEdge {
  NodeId From = 0;
  NodeId To = 0;
  int Delay = 0;
  int Distance = 0;
};

/// A loop-iteration (or basic-block) dependence graph.
class DepGraph {
public:
  DepGraph() = default;
  explicit DepGraph(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// Adds a node executing original-machine operation \p Op.
  NodeId addNode(OpId Op, std::string NodeName = "");

  /// Adds a dependence edge. \p Distance must be nonnegative; Delay may be
  /// any integer (nonpositive delays model anti/output dependences).
  void addEdge(NodeId From, NodeId To, int Delay, int Distance = 0);

  size_t numNodes() const { return Ops.size(); }
  size_t numEdges() const { return Edges.size(); }

  OpId opOf(NodeId N) const {
    assert(N < Ops.size() && "node out of range");
    return Ops[N];
  }
  const std::string &nodeName(NodeId N) const {
    assert(N < Names.size() && "node out of range");
    return Names[N];
  }

  const std::vector<DepEdge> &edges() const { return Edges; }

  /// Outgoing / incoming edge indices per node.
  const std::vector<uint32_t> &succEdges(NodeId N) const {
    assert(N < Succ.size() && "node out of range");
    return Succ[N];
  }
  const std::vector<uint32_t> &predEdges(NodeId N) const {
    assert(N < Pred.size() && "node out of range");
    return Pred[N];
  }

  /// True if every edge distance is 0 and the graph is a DAG.
  bool isAcyclic() const;

  /// A topological order (valid only for acyclic graphs).
  std::vector<NodeId> topologicalOrder() const;

  /// True if the assignment \p Time (with initiation interval \p II, use
  /// II = 0 for non-periodic schedules) satisfies every dependence.
  bool scheduleRespectsDependences(const std::vector<int> &Time,
                                   int II) const;

private:
  std::string Name;
  std::vector<OpId> Ops;
  std::vector<std::string> Names;
  std::vector<DepEdge> Edges;
  std::vector<std::vector<uint32_t>> Succ;
  std::vector<std::vector<uint32_t>> Pred;
};

} // namespace rmd

#endif // RMD_SCHED_DEPGRAPH_H
