//===- sched/MII.cpp ------------------------------------------------------===//

#include "sched/MII.h"

#include "support/FatalError.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

using namespace rmd;

int rmd::computeResMII(const MachineDescription &MD, const DepGraph &G) {
  // Fractional per-resource load: an operation with A alternatives
  // contributes 1/A of each alternative's usages.
  std::vector<double> Load(MD.numResources(), 0.0);
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Operation &Op = MD.operation(G.opOf(N));
    double Share = 1.0 / static_cast<double>(Op.Alternatives.size());
    for (const ReservationTable &RT : Op.Alternatives)
      for (const ResourceUsage &U : RT.usages())
        Load[U.Resource] += Share;
  }
  double MaxLoad = 0;
  for (double L : Load)
    MaxLoad = std::max(MaxLoad, L);
  return std::max(1, static_cast<int>(std::ceil(MaxLoad - 1e-9)));
}

/// True if some dependence cycle of \p G has positive total weight under
/// (Delay - II * Distance): i.e. II is infeasible for the recurrences.
static bool hasPositiveCycle(const DepGraph &G, int II) {
  // Bellman-Ford longest-path relaxation from all nodes simultaneously
  // (distance 0 start); a relaxation succeeding on pass N implies a
  // positive cycle.
  size_t N = G.numNodes();
  std::vector<long long> Dist(N, 0);
  for (size_t Pass = 0; Pass <= N; ++Pass) {
    bool Changed = false;
    for (const DepEdge &E : G.edges()) {
      long long W = E.Delay - static_cast<long long>(II) * E.Distance;
      if (Dist[E.From] + W > Dist[E.To]) {
        Dist[E.To] = Dist[E.From] + W;
        Changed = true;
      }
    }
    if (!Changed)
      return false;
  }
  return true;
}

/// Renders node \p N for a diagnostic: its name when the graph has one,
/// "#<id>" otherwise.
static std::string nodeLabel(const DepGraph &G, NodeId N) {
  const std::string &Name = G.nodeName(N);
  return Name.empty() ? "#" + std::to_string(N) : Name;
}

/// Extracts one positive cycle of \p G under weight (Delay - II*Distance),
/// assuming hasPositiveCycle(G, II). Renders it as
/// "a -> b -> a (total delay D, distance 0)".
static std::string describePositiveCycle(const DepGraph &G, int II) {
  size_t N = G.numNodes();
  std::vector<long long> Dist(N, 0);
  std::vector<int32_t> Parent(N, -1);
  // N full passes leave every node that keeps relaxing with a Parent chain
  // that must contain a positive cycle.
  NodeId Touched = N;
  for (size_t Pass = 0; Pass <= N; ++Pass)
    for (uint32_t EIdx = 0; EIdx < G.numEdges(); ++EIdx) {
      const DepEdge &E = G.edges()[EIdx];
      long long W = E.Delay - static_cast<long long>(II) * E.Distance;
      if (Dist[E.From] + W > Dist[E.To]) {
        Dist[E.To] = Dist[E.From] + W;
        Parent[E.To] = static_cast<int32_t>(EIdx);
        Touched = E.To;
      }
    }
  if (Touched == N)
    return "(cycle extraction failed)"; // unreachable given the caller

  // Walk N parent steps to land inside the cycle, then collect it.
  NodeId X = Touched;
  for (size_t I = 0; I < N; ++I)
    X = G.edges()[static_cast<uint32_t>(Parent[X])].From;
  std::vector<uint32_t> CycleEdges;
  NodeId V = X;
  do {
    uint32_t EIdx = static_cast<uint32_t>(Parent[V]);
    CycleEdges.push_back(EIdx);
    V = G.edges()[EIdx].From;
  } while (V != X);
  std::reverse(CycleEdges.begin(), CycleEdges.end());

  long long DelaySum = 0, DistanceSum = 0;
  std::string Path = nodeLabel(G, X);
  for (uint32_t EIdx : CycleEdges) {
    const DepEdge &E = G.edges()[EIdx];
    DelaySum += E.Delay;
    DistanceSum += E.Distance;
    Path += " -> " + nodeLabel(G, E.To);
  }
  return Path + " (total delay " + std::to_string(DelaySum) + ", distance " +
         std::to_string(DistanceSum) + ")";
}

Expected<int> rmd::computeRecMIIChecked(const DepGraph &G) {
  bool HasCarried = false;
  int MaxDelaySum = 1;
  for (const DepEdge &E : G.edges()) {
    HasCarried |= E.Distance > 0;
    MaxDelaySum += std::max(0, E.Delay);
  }
  if (!HasCarried) {
    // No carried dependence: RecMII is 1 — unless the "loop body" has a
    // zero-distance cycle, which no II fixes (a positive zero-distance
    // cycle has positive weight at every II; probe at II = 1).
    if (hasPositiveCycle(G, 1))
      return Status(ErrorCode::InfeasibleRecurrence,
                    "zero-distance positive-delay cycle: " +
                        describePositiveCycle(G, 1) +
                        "; no initiation interval is feasible");
    return 1;
  }

  // Feasibility is monotone in II; binary search the smallest feasible II.
  // A graph with a positive-delay cycle at distance 0 has no feasible II at
  // all (it is not a valid loop body): at II = MaxDelaySum every
  // distance-carrying cycle is already far negative, so a surviving
  // positive cycle is zero-distance.
  int Lo = 1, Hi = MaxDelaySum;
  if (hasPositiveCycle(G, Hi))
    return Status(ErrorCode::InfeasibleRecurrence,
                  "zero-distance positive-delay cycle: " +
                      describePositiveCycle(G, Hi) +
                      "; no initiation interval is feasible");
  while (Lo < Hi) {
    int Mid = Lo + (Hi - Lo) / 2;
    if (hasPositiveCycle(G, Mid))
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo;
}

int rmd::computeRecMII(const DepGraph &G) {
  Expected<int> RecMII = computeRecMIIChecked(G);
  if (!RecMII)
    fatalError(RecMII.status().render().c_str());
  return RecMII.value();
}

int rmd::computeMII(const MachineDescription &MD, const DepGraph &G) {
  return std::max(computeResMII(MD, G), computeRecMII(G));
}
