//===- sched/MII.cpp ------------------------------------------------------===//

#include "sched/MII.h"

#include "support/FatalError.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

using namespace rmd;

int rmd::computeResMII(const MachineDescription &MD, const DepGraph &G) {
  // Fractional per-resource load: an operation with A alternatives
  // contributes 1/A of each alternative's usages.
  std::vector<double> Load(MD.numResources(), 0.0);
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Operation &Op = MD.operation(G.opOf(N));
    double Share = 1.0 / static_cast<double>(Op.Alternatives.size());
    for (const ReservationTable &RT : Op.Alternatives)
      for (const ResourceUsage &U : RT.usages())
        Load[U.Resource] += Share;
  }
  double MaxLoad = 0;
  for (double L : Load)
    MaxLoad = std::max(MaxLoad, L);
  return std::max(1, static_cast<int>(std::ceil(MaxLoad - 1e-9)));
}

/// True if some dependence cycle of \p G has positive total weight under
/// (Delay - II * Distance): i.e. II is infeasible for the recurrences.
static bool hasPositiveCycle(const DepGraph &G, int II) {
  // Bellman-Ford longest-path relaxation from all nodes simultaneously
  // (distance 0 start); a relaxation succeeding on pass N implies a
  // positive cycle.
  size_t N = G.numNodes();
  std::vector<long long> Dist(N, 0);
  for (size_t Pass = 0; Pass <= N; ++Pass) {
    bool Changed = false;
    for (const DepEdge &E : G.edges()) {
      long long W = E.Delay - static_cast<long long>(II) * E.Distance;
      if (Dist[E.From] + W > Dist[E.To]) {
        Dist[E.To] = Dist[E.From] + W;
        Changed = true;
      }
    }
    if (!Changed)
      return false;
  }
  return true;
}

int rmd::computeRecMII(const DepGraph &G) {
  bool HasCarried = false;
  int MaxDelaySum = 1;
  for (const DepEdge &E : G.edges()) {
    HasCarried |= E.Distance > 0;
    MaxDelaySum += std::max(0, E.Delay);
  }
  if (!HasCarried)
    return 1;

  // Feasibility is monotone in II; binary search the smallest feasible II.
  // A graph with a positive-delay cycle at distance 0 has no feasible II at
  // all (it is not a valid loop body).
  int Lo = 1, Hi = MaxDelaySum;
  if (hasPositiveCycle(G, Hi))
    fatalError("dependence graph has a zero-distance positive-delay cycle; "
               "no initiation interval is feasible");
  while (Lo < Hi) {
    int Mid = Lo + (Hi - Lo) / 2;
    if (hasPositiveCycle(G, Mid))
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo;
}

int rmd::computeMII(const MachineDescription &MD, const DepGraph &G) {
  return std::max(computeResMII(MD, G), computeRecMII(G));
}
