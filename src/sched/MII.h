//===- sched/MII.h - Minimum initiation interval bounds --------*- C++ -*-===//
///
/// \file
/// The two classical lower bounds on the initiation interval of a modulo
/// schedule (Rau '94): the resource-constrained bound ResMII and the
/// recurrence-constrained bound RecMII. MII = max(ResMII, RecMII); Table
/// 5's II/MII column measures schedule quality against this bound.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_SCHED_MII_H
#define RMD_SCHED_MII_H

#include "mdesc/MachineDescription.h"
#include "sched/DepGraph.h"
#include "support/Status.h"

namespace rmd {

/// Resource-constrained minimum II: each unit-capacity resource used a
/// total of U cycles per iteration needs II >= U. Operations with
/// alternatives spread their load evenly over the alternatives (a standard
/// fractional lower bound; exact binding is the scheduler's job).
int computeResMII(const MachineDescription &MD, const DepGraph &G);

/// Recurrence-constrained minimum II: the smallest II such that no
/// dependence cycle has positive total (Delay - II * Distance). Returns 1
/// for acyclic graphs.
///
/// A graph with a zero-distance positive-delay cycle is not a valid loop
/// body — no II is feasible — and is rejected with an
/// InfeasibleRecurrence status *naming the offending cycle* (node names
/// when the graph has them, #ids otherwise), so a scheduler front end can
/// print a diagnostic the user can act on.
Expected<int> computeRecMIIChecked(const DepGraph &G);

/// computeRecMIIChecked() for callers that know the graph is a valid loop
/// body (aborts on an infeasible recurrence).
int computeRecMII(const DepGraph &G);

/// max(ResMII, RecMII), and at least 1.
int computeMII(const MachineDescription &MD, const DepGraph &G);

} // namespace rmd

#endif // RMD_SCHED_MII_H
