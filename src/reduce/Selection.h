//===- reduce/Selection.h - Greedy cover of forbidden latencies -*- C++ -*-===//
///
/// \file
/// Step 3 of the reduction (Section 5): from the pruned generating set,
/// select a subset of resources and of their usages that covers every
/// forbidden latency of the target machine, minimizing an objective chosen
/// for the intended internal representation:
///
///   - res-uses: total number of selected resource usages (discrete
///     representation; queries cost one unit per usage);
///   - k-cycle-word uses: number of nonempty groups of k consecutive cycles
///     in the reduced reservation tables (bitvector representation with k
///     cycle-bitvectors packed per machine word), secondarily *maximizing*
///     usages inside already-nonempty words for faster early-out.
///
/// The heuristic follows the paper: repeatedly pick an uncovered forbidden
/// latency with the fewest generating usage pairs, then the usage pair that
/// covers the most not-yet-covered latencies (ties: larger sum of newly
/// covered latencies). In word mode, a pair creating fewer new nonempty
/// words is preferred first, and after every selection all free usages
/// (usages of selected resources falling into already-nonempty words of
/// their operation's table) are selected too.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_REDUCE_SELECTION_H
#define RMD_REDUCE_SELECTION_H

#include "reduce/SynthesizedResource.h"

#include <vector>

namespace rmd {

/// Objective function for the selection heuristic.
struct SelectionObjective {
  enum Kind {
    /// Minimize total selected usages (discrete representation).
    ResUses,
    /// Minimize nonempty k-cycle word groups (bitvector representation).
    WordUses,
  };

  Kind ObjectiveKind = ResUses;

  /// Number of cycle-bitvectors packed per machine word (WordUses only).
  unsigned CyclesPerWord = 1;

  static SelectionObjective resUses() { return SelectionObjective{ResUses, 1}; }
  static SelectionObjective wordUses(unsigned CyclesPerWord) {
    return SelectionObjective{WordUses, CyclesPerWord};
  }
};

/// The outcome of the greedy cover: per pruned resource, which usages were
/// selected (empty vector = resource unused).
struct SelectionResult {
  /// SelectedUsages[r] lists the selected usages of pruned resource r.
  std::vector<std::vector<SynthUsage>> SelectedUsages;

  /// Number of resources with at least one selected usage.
  size_t numSelectedResources() const;

  /// Total selected usages.
  size_t numSelectedUsages() const;
};

/// Runs the greedy cover over \p Pruned for \p FLM with \p Objective.
/// Every canonical forbidden latency of \p FLM is guaranteed covered
/// (asserted); Theorem 1 guarantees the pruned generating set can cover
/// them all.
SelectionResult selectCover(const ForbiddenLatencyMatrix &FLM,
                            const std::vector<SynthesizedResource> &Pruned,
                            const SelectionObjective &Objective);

} // namespace rmd

#endif // RMD_REDUCE_SELECTION_H
