//===- reduce/SynthesizedResource.cpp -------------------------------------===//

#include "reduce/SynthesizedResource.h"

#include <algorithm>

using namespace rmd;

SynthesizedResource::SynthesizedResource(std::vector<SynthUsage> TheUsages)
    : Usages(std::move(TheUsages)) {
  normalize();
}

void SynthesizedResource::normalize() {
  std::sort(Usages.begin(), Usages.end());
  Usages.erase(std::unique(Usages.begin(), Usages.end()), Usages.end());
  if (Usages.empty())
    return;
  int MinCycle = Usages.front().Cycle;
  if (MinCycle != 0)
    for (SynthUsage &U : Usages)
      U.Cycle -= MinCycle;
}

bool SynthesizedResource::contains(const SynthUsage &U) const {
  return std::binary_search(Usages.begin(), Usages.end(), U);
}

void SynthesizedResource::insert(const SynthUsage &U) {
  if (contains(U))
    return;
  Usages.push_back(U);
  normalize();
}

std::vector<ForbiddenLatency> SynthesizedResource::generatedLatencies() const {
  std::vector<ForbiddenLatency> Result;
  Result.reserve(Usages.size() * (Usages.size() + 1) / 2);
  for (size_t I = 0; I < Usages.size(); ++I) {
    // A single usage already forbids the 0 self-latency of its operation.
    Result.push_back(canonicalize(Usages[I].Op, Usages[I].Op, 0));
    for (size_t J = I + 1; J < Usages.size(); ++J)
      Result.push_back(generatedLatency(Usages[I], Usages[J]));
  }
  std::sort(Result.begin(), Result.end());
  Result.erase(std::unique(Result.begin(), Result.end()), Result.end());
  return Result;
}

std::string SynthesizedResource::str(const MachineDescription &MD) const {
  std::string Out = "{";
  for (size_t I = 0; I < Usages.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += MD.operation(Usages[I].Op).Name;
    Out += "@";
    Out += std::to_string(Usages[I].Cycle);
  }
  Out += "}";
  return Out;
}
