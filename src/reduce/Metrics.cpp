//===- reduce/Metrics.cpp -------------------------------------------------===//

#include "reduce/Metrics.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace rmd;

unsigned rmd::cyclesPerWord(size_t NumResources, unsigned WordBits) {
  assert(NumResources <= WordBits &&
         "bitvector representation requires resources <= word bits");
  if (NumResources == 0)
    return WordBits;
  return std::max(1u, WordBits / static_cast<unsigned>(NumResources));
}

double rmd::averageResUsesPerOperation(const MachineDescription &MD) {
  if (MD.numOperations() == 0)
    return 0;
  size_t Total = 0;
  for (const Operation &Op : MD.operations())
    Total += Op.Alternatives.front().usageCount();
  return static_cast<double>(Total) / static_cast<double>(MD.numOperations());
}

unsigned rmd::wordUsages(const ReservationTable &RT, unsigned CyclesPerWord,
                         unsigned Alignment) {
  assert(CyclesPerWord >= 1 && "cycles per word must be positive");
  assert(Alignment < CyclesPerWord && "alignment out of range");
  std::set<unsigned> Words;
  for (const ResourceUsage &U : RT.usages())
    Words.insert((static_cast<unsigned>(U.Cycle) + Alignment) / CyclesPerWord);
  return static_cast<unsigned>(Words.size());
}

double rmd::averageWordUsesPerOperation(const MachineDescription &MD,
                                        unsigned CyclesPerWord) {
  if (MD.numOperations() == 0)
    return 0;
  double Total = 0;
  for (const Operation &Op : MD.operations()) {
    double PerOp = 0;
    for (unsigned A = 0; A < CyclesPerWord; ++A)
      PerOp += wordUsages(Op.Alternatives.front(), CyclesPerWord, A);
    Total += PerOp / CyclesPerWord;
  }
  return Total / static_cast<double>(MD.numOperations());
}

size_t rmd::stateBitsPerCycle(const MachineDescription &MD) {
  return MD.numResources();
}
