//===- reduce/Reduction.cpp -----------------------------------------------===//

#include "reduce/Reduction.h"

#include "reduce/Metrics.h"
#include "support/FatalError.h"
#include "support/FaultInjection.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/TraceSpan.h"

#include <algorithm>
#include <exception>
#include <limits>

using namespace rmd;

MachineDescription
rmd::buildReducedDescription(const MachineDescription &MD,
                             const std::vector<SynthesizedResource> &Pruned,
                             const SelectionResult &Selection,
                             const std::string &NameSuffix) {
  assert(Selection.SelectedUsages.size() == Pruned.size() &&
         "selection does not match pruned set");

  MachineDescription Reduced(MD.name() + NameSuffix);

  // Collect one reservation row per resource with selections; translate
  // each row so its earliest selected usage is at cycle 0.
  std::vector<std::vector<ResourceUsage>> PerOp(MD.numOperations());
  unsigned NumRows = 0;
  for (size_t R = 0; R < Pruned.size(); ++R) {
    const auto &Usages = Selection.SelectedUsages[R];
    if (Usages.empty())
      continue;
    int MinCycle = std::numeric_limits<int>::max();
    for (const SynthUsage &U : Usages)
      MinCycle = std::min(MinCycle, U.Cycle);
    ResourceId Row = Reduced.addResource("q" + std::to_string(NumRows));
    ++NumRows;
    for (const SynthUsage &U : Usages)
      PerOp[U.Op].push_back(ResourceUsage{Row, U.Cycle - MinCycle});
  }

  for (OpId Op = 0; Op < MD.numOperations(); ++Op)
    Reduced.addOperation(MD.operation(Op).Name,
                         ReservationTable(std::move(PerOp[Op])));
  return Reduced;
}

bool rmd::verifyEquivalence(const MachineDescription &A,
                            const MachineDescription &B) {
  if (A.numOperations() != B.numOperations())
    return false;
  return ForbiddenLatencyMatrix::compute(A) ==
         ForbiddenLatencyMatrix::compute(B);
}

/// The pipeline body of reduceMachineChecked(), free to throw (thread-pool
/// rethrows propagate out of the parallel phases).
static Expected<ReductionResult>
reduceMachineImpl(const MachineDescription &MD,
                  const ReductionOptions &Options) {
  assert(MD.isExpanded() &&
         "reduceMachine requires an expanded machine; call "
         "expandAlternatives() first");

  TraceSpan ReduceSpan("reduce");
  static StatCounter GenSizeStat("reduce.generating_set_size");
  static StatCounter PrunedSizeStat("reduce.pruned_set_size");
  static StatCounter CoveredStat("reduce.covered_latencies");

  // One pool for every parallel phase; a single-thread pool runs inline.
  ThreadPool Pool(ThreadPool::resolveThreadCount(Options.Threads));
  ThreadPool *PoolPtr = Pool.concurrency() > 1 ? &Pool : nullptr;

  ForbiddenLatencyMatrix FLM = [&] {
    TraceSpan Span("flm");
    return ForbiddenLatencyMatrix::compute(MD, PoolPtr);
  }();

  ReductionResult Result;
  std::vector<SynthesizedResource> Generating = [&] {
    TraceSpan Span("fold");
    return buildGeneratingSet(FLM, Options.Trace, PoolPtr);
  }();
  Result.GeneratingSetSize = Generating.size();
  GenSizeStat.add(Result.GeneratingSetSize);

  std::vector<SynthesizedResource> Pruned = [&] {
    TraceSpan Span("prune");
    return pruneGeneratingSet(std::move(Generating), PoolPtr);
  }();
  Result.PrunedSetSize = Pruned.size();
  PrunedSizeStat.add(Result.PrunedSetSize);

  SelectionResult Selection = [&] {
    TraceSpan Span("select");
    return selectCover(FLM, Pruned, Options.Objective);
  }();
  Result.CoveredLatencies = FLM.canonicalCount();
  CoveredStat.add(Result.CoveredLatencies);

  std::string Suffix = Options.Objective.ObjectiveKind ==
                               SelectionObjective::ResUses
                           ? ".res-uses"
                           : (".word" +
                              std::to_string(Options.Objective.CyclesPerWord));
  Result.Reduced = buildReducedDescription(MD, Pruned, Selection, Suffix);

  if (Options.Objective.ObjectiveKind == SelectionObjective::WordUses) {
    // The greedy word cover is a heuristic; occasionally the plain res-uses
    // cover packs words better. Keep whichever measures better on the word
    // objective (ties go to the word cover, which maximizes usages inside
    // selected words for faster early-out).
    SelectionResult ResSelection =
        selectCover(FLM, Pruned, SelectionObjective::resUses());
    MachineDescription ResReduced =
        buildReducedDescription(MD, Pruned, ResSelection, Suffix);
    unsigned K = Options.Objective.CyclesPerWord;
    if (averageWordUsesPerOperation(ResReduced, K) <
        averageWordUsesPerOperation(Result.Reduced, K))
      Result.Reduced = std::move(ResReduced);
  }

  // Re-check against the *already computed* original matrix (sharing the
  // pool), rather than verifyEquivalence()'s two fresh sequential computes.
  if (Options.Verify) {
    TraceSpan Span("verify");
    static StatCounter PreservedStat("reduce.flm_preserved");
    static StatCounter ViolationStat("reduce.flm_violations");
    bool Mismatch =
        !(FLM == ForbiddenLatencyMatrix::compute(Result.Reduced, PoolPtr));
    if (FaultInjection::fire(faultpoints::ReduceVerify))
      Mismatch = true;
    if (Mismatch) {
      ViolationStat.add();
      return Status(ErrorCode::VerificationFailed,
                    "reduction of '" + MD.name() +
                        "' failed to preserve the forbidden latency matrix");
    }
    PreservedStat.add();
  }
  return Result;
}

Expected<ReductionResult>
rmd::reduceMachineChecked(const MachineDescription &MD,
                          const ReductionOptions &Options) {
  // Worker exceptions are captured by the pool and rethrown at the join
  // point inside the pipeline; convert them (and any other pipeline throw)
  // into a Status so callers can degrade to the original description.
  try {
    return reduceMachineImpl(MD, Options);
  } catch (const std::exception &E) {
    return Status(ErrorCode::WorkerFailed,
                  std::string("reduction pipeline task failed: ") + E.what());
  }
}

ReductionResult rmd::reduceMachine(const MachineDescription &MD,
                                   const ReductionOptions &Options) {
  Expected<ReductionResult> Result = reduceMachineChecked(MD, Options);
  if (!Result)
    fatalError(Result.status().render().c_str());
  return Result.take();
}
