//===- reduce/ReductionCache.h - On-disk memoized reductions ---*- C++ -*-===//
///
/// \file
/// A content-addressed on-disk cache of reduction results. The key is a
/// hash of the *canonical MDL serialization* of the input machine plus the
/// selection objective, so any two descriptions that serialize identically
/// share an entry regardless of how they were built (parsed from a file,
/// constructed programmatically, or expanded from alternatives), and any
/// semantic change to the machine — a renamed operation, a shifted usage —
/// changes the key.
///
/// Entries are MDL files with a stats header in `#` comments, parsed back
/// with the ordinary parser. The cache is strictly best-effort: a missing,
/// truncated, corrupt, or version-skewed entry is a miss (the reduction is
/// recomputed, the bad entry evicted, and the slot rewritten), never an
/// error; each such recovery bumps globalDegradation().CacheRecoveries.
/// Stores write to a temporary file, fsync it, and rename, so a crashed
/// writer leaves no partial entry under a valid name and a committed entry
/// survives power loss; orphaned `.tmp.<pid>` files left by crashed
/// writers are swept when the cache is opened.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_REDUCE_REDUCTIONCACHE_H
#define RMD_REDUCE_REDUCTIONCACHE_H

#include "reduce/Reduction.h"

#include <optional>
#include <string>

namespace rmd {

class ReductionCache {
public:
  /// Opens (creating if needed) the cache rooted at \p Directory. An
  /// uncreatable directory disables the cache (every lookup misses, every
  /// store is dropped) rather than failing.
  explicit ReductionCache(std::string Directory);

  /// The cache honoring the RMD_REDUCTION_CACHE environment variable, or
  /// std::nullopt when the variable is unset or empty. The conventional way
  /// for tools and benches to opt in without growing flags everywhere.
  static std::optional<ReductionCache> fromEnvironment();

  /// The content-addressed key of reducing \p MD under \p Objective.
  /// Stable across processes and runs; embeds a format version.
  static std::string key(const MachineDescription &MD,
                         const SelectionObjective &Objective);

  /// Loads the entry for \p Key. Returns std::nullopt on miss or on any
  /// malformed entry (and quietly removes the latter).
  std::optional<ReductionResult> load(const std::string &Key) const;

  /// Stores \p Result under \p Key (best-effort; failures are ignored).
  void store(const std::string &Key, const ReductionResult &Result) const;

  /// Removes the entry for \p Key if present (best-effort). Benches use
  /// this to force cache-cold measurements.
  void evict(const std::string &Key) const;

  /// Cached front-end to reduceMachine(): on a hit, returns the stored
  /// result without reducing; on a miss, reduces and stores. \p Hit, when
  /// non-null, reports which happened. Options.Trace suppresses caching
  /// entirely (a hit would skip the traced fold the caller asked to see).
  ReductionResult reduce(const MachineDescription &MD,
                         const ReductionOptions &Options = {},
                         bool *Hit = nullptr) const;

  /// reduce() with reduction failures reported as a Status instead of an
  /// abort: a miss whose recomputation fails returns the error (nothing is
  /// stored). Cache trouble never surfaces here — corrupt entries are
  /// misses, failed stores are dropped.
  Expected<ReductionResult> reduceChecked(const MachineDescription &MD,
                                          const ReductionOptions &Options = {},
                                          bool *Hit = nullptr) const;

  const std::string &directory() const { return Directory; }
  bool enabled() const { return Enabled; }

private:
  std::string entryPath(const std::string &Key) const;

  std::string Directory;
  bool Enabled = false;
};

/// reduceMachine() through the RMD_REDUCTION_CACHE environment cache when
/// that variable is set, plain reduceMachine() otherwise. Call sites that
/// just want "the reduced machine, memoized if the user opted in" use this
/// instead of growing their own cache plumbing.
ReductionResult reduceMachineCached(const MachineDescription &MD,
                                    const ReductionOptions &Options = {});

/// The product of reduceMachineOrFallback(): a description that is always
/// safe to schedule against.
struct SafeReduction {
  /// On the happy path, the verified reduction. When Degraded, a
  /// pass-through "reduction" whose Reduced is a copy of the input
  /// machine — by Theorem 1 the scheduling constraints are identical, only
  /// the per-query work is higher.
  ReductionResult Result;

  /// True when the fallback rung was taken.
  bool Degraded = false;

  /// Why it was taken (ok() when not Degraded).
  Status Why;
};

/// The first rung of the graceful-degradation ladder: reduce \p MD
/// (through \p Cache when non-null, else through the RMD_REDUCTION_CACHE
/// environment cache), and on *any* reduction failure — verification
/// mismatch, worker exception, injected fault — fall back to the original
/// description instead of failing. Each fallback bumps
/// globalDegradation().ReduceFallbacks so the degradation is observable in
/// scheduler/CLI stats. \p Hit, when non-null, reports whether the result
/// came from the cache.
SafeReduction
reduceMachineOrFallback(const MachineDescription &MD,
                        const ReductionOptions &Options = {},
                        const ReductionCache *Cache = nullptr,
                        bool *Hit = nullptr);

} // namespace rmd

#endif // RMD_REDUCE_REDUCTIONCACHE_H
