//===- reduce/Reduction.h - End-to-end machine reduction -------*- C++ -*-===//
///
/// \file
/// The top-level entry point of the reproduction's core contribution:
/// reduceMachine() turns a machine description into an equivalent one with
/// fewer synthesized resources and usages, exactly preserving the forbidden
/// latency matrix (and therefore every scheduling constraint). This is the
/// paper's automated, error-free replacement for hand-reduced descriptions;
/// verifyEquivalence() provides the "error-free" guarantee by construction
/// *and* by independent re-checking.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_REDUCE_REDUCTION_H
#define RMD_REDUCE_REDUCTION_H

#include "reduce/GeneratingSet.h"
#include "reduce/Selection.h"
#include "support/Status.h"

#include <string>

namespace rmd {

/// Options controlling a reduction.
struct ReductionOptions {
  /// The selection objective (see SelectionObjective).
  SelectionObjective Objective = SelectionObjective::resUses();

  /// Re-verify (debug builds always verify) that the reduced description's
  /// forbidden latency matrix equals the original's.
  bool Verify = true;

  /// Optional Algorithm 1 tracing (Figure 3).
  const GeneratingSetTrace *Trace = nullptr;

  /// Worker threads for the parallel phases (FLM rows, compatibility
  /// scans, prune verdicts). 1 = sequential; 0 = hardware concurrency.
  /// Every value produces bit-identical output (see the thread-sweep
  /// tests); this only trades wall-clock time.
  unsigned Threads = 1;
};

/// The product of reduceMachine().
struct ReductionResult {
  /// The reduced machine description: synthesized resources q0..qn, one
  /// operation per input operation (same ids, same names).
  MachineDescription Reduced;

  /// Size of the generating set before pruning.
  size_t GeneratingSetSize = 0;

  /// Size after pruning covered/submaximal resources.
  size_t PrunedSetSize = 0;

  /// Canonical forbidden latency constraints covered.
  size_t CoveredLatencies = 0;
};

/// Reduces the expanded machine \p MD (every operation single-alternative)
/// under \p Options. The result has the same operations (ids and names) over
/// synthesized resources and generates the identical forbidden latency
/// matrix.
///
/// Recoverable failures come back as a Status instead of aborting:
///   - VerificationFailed when Options.Verify finds a forbidden-latency
///     mismatch (or the reduce.verify fault point fires);
///   - WorkerFailed when a thread-pool task threw (the exception is
///     captured by the pool, rethrown at the join, and converted here).
/// Callers that can degrade should fall back to scheduling against \p MD
/// itself — by Theorem 1 an unreduced description imposes exactly the same
/// constraints (see reduceMachineOrFallback).
Expected<ReductionResult>
reduceMachineChecked(const MachineDescription &MD,
                     const ReductionOptions &Options = {});

/// reduceMachineChecked() for callers with no recovery path: aborts via
/// fatalError() on failure. Kept for tests and benches where a failed
/// reduction means the experiment itself is broken.
ReductionResult reduceMachine(const MachineDescription &MD,
                              const ReductionOptions &Options = {});

/// True if \p A and \p B (both expanded, with matching operation counts)
/// have equal forbidden latency matrices, i.e. admit exactly the same
/// contention-free schedules.
bool verifyEquivalence(const MachineDescription &A,
                       const MachineDescription &B);

/// Builds a MachineDescription from selected synthesized resources: one
/// resource per nonempty selection (named "q0", "q1", ...), operations
/// copied from \p MD's names. Each selected row is translated so its
/// earliest selected usage sits at cycle 0 (translation does not affect
/// generated latencies and shortens tables).
MachineDescription
buildReducedDescription(const MachineDescription &MD,
                        const std::vector<SynthesizedResource> &Pruned,
                        const SelectionResult &Selection,
                        const std::string &NameSuffix);

} // namespace rmd

#endif // RMD_REDUCE_REDUCTION_H
