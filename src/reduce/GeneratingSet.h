//===- reduce/GeneratingSet.h - Algorithm 1 of the paper -------*- C++ -*-===//
///
/// \file
/// Algorithm 1 (Section 4): building the generating set of maximal
/// resources. Every nonnegative forbidden latency f in F(X,Y) defines an
/// *elementary pair* {(X,0), (Y,f)}. Pairs are folded into the growing set
/// of synthesized resources:
///
///   Rule 1: pair fully compatible with resource q -> add its usages to q.
///   Rule 2: pair partially compatible -> add a new resource made of the
///           pair plus the compatible usages of q (discard if that is just
///           the pair itself).
///   Rule 3: after processing all resources, add the pair itself as a new
///           resource unless its two usages already co-reside somewhere.
///   Rule 4: for each operation whose only forbidden latency is the 0
///           self-latency, add a single-usage resource.
///
/// Theorem 1 guarantees the result forbids exactly the target machine's
/// latencies and contains every maximal resource (possibly plus some
/// submaximal ones, removed later by pruneGeneratingSet()).
///
//===----------------------------------------------------------------------===//

#ifndef RMD_REDUCE_GENERATINGSET_H
#define RMD_REDUCE_GENERATINGSET_H

#include "reduce/SynthesizedResource.h"

#include <functional>
#include <vector>

namespace rmd {

class ThreadPool;

/// An elementary pair: the two usages {(X, 0), (Y, F)} associated with the
/// nonnegative forbidden latency F in F(X, Y) — Y issues F cycles after X...
/// precisely, co-locating them forbids exactly latency F in F(X, Y).
struct ElementaryPair {
  SynthUsage First;  ///< (X, 0)
  SynthUsage Second; ///< (Y, F)

  ForbiddenLatency latency() const {
    return generatedLatency(First, Second);
  }
};

/// Which rule fired, for tracing (Figure 3 of the paper).
enum class GeneratingRule { Rule1, Rule2, Rule2Discard, Rule3, Rule4 };

/// Optional observer invoked as Algorithm 1 runs; used by the
/// generating-set trace example to reproduce Figure 3.
struct GeneratingSetTrace {
  /// Called when processing of \p Pair begins.
  std::function<void(const ElementaryPair &Pair)> OnPair;
  /// Called when \p Rule fires while processing a pair; \p ResourceIndex is
  /// the affected resource (the updated one for Rule 1, the new one for
  /// Rules 2/3/4, the unchanged base for Rule2Discard).
  std::function<void(GeneratingRule Rule, size_t ResourceIndex)> OnRule;
};

/// Enumerates the elementary pairs of \p FLM in deterministic order (row
/// operation, then column operation, then ascending latency), excluding
/// negative latencies (mirrors) and 0 self-latencies (Rule 4 handles them).
std::vector<ElementaryPair>
enumerateElementaryPairs(const ForbiddenLatencyMatrix &FLM);

/// Runs Algorithm 1 on \p FLM, returning the generating set of maximal
/// resources (possibly including submaximal extras).
///
/// With \p Pool, the per-pair compatibility scan over the accumulated
/// resources runs in parallel blocks; Rules 1–4 are then applied
/// sequentially in resource-index order from the precomputed compatibility
/// verdicts. The verdicts are read-only functions of the forbidden
/// latencies and of resource state *before* the pair is folded — exactly
/// what the sequential fold reads — so the result is bit-identical to the
/// sequential fold at every thread count.
std::vector<SynthesizedResource>
buildGeneratingSet(const ForbiddenLatencyMatrix &FLM,
                   const GeneratingSetTrace *Trace = nullptr,
                   ThreadPool *Pool = nullptr);

/// First phase of the selection heuristic (Section 5): successively removes
/// every resource whose generated latency set is covered by some remaining
/// resource. Eliminates submaximal resources, duplicate maximals, and
/// mirror images.
///
/// Removal is computed with the order-free characterization of the
/// sequential sweep — resource I is removed iff some J generates a strict
/// superset, or generates the same set and has the larger index — so
/// per-resource verdicts are independent and parallelize over \p Pool
/// without changing the result.
std::vector<SynthesizedResource>
pruneGeneratingSet(std::vector<SynthesizedResource> Set,
                   ThreadPool *Pool = nullptr);

} // namespace rmd

#endif // RMD_REDUCE_GENERATINGSET_H
