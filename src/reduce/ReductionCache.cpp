//===- reduce/ReductionCache.cpp ------------------------------------------===//

#include "reduce/ReductionCache.h"

#include "mdl/Parser.h"
#include "mdl/Writer.h"
#include "support/Degradation.h"
#include "support/Diagnostics.h"
#include "support/FatalError.h"
#include "support/FaultInjection.h"
#include "support/Stats.h"

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

using namespace rmd;

static const char *CacheMagic = "# rmd-reduction-cache v1";

/// Removes `<entry>.tmp<pid>` files whose writer is no longer alive — the
/// leavings of a writer that crashed between open and rename. Live writers
/// (their pid still exists) are left alone; their rename will land or their
/// own crash will be swept on the next open.
static void sweepOrphanedTempFiles(const std::string &Directory) {
  std::error_code EC;
  std::filesystem::directory_iterator It(Directory, EC), End;
  for (; !EC && It != End; It.increment(EC)) {
    const std::filesystem::path &Path = It->path();
    std::string Name = Path.filename().string();
    size_t Tag = Name.rfind(".tmp");
    if (Tag == std::string::npos)
      continue;
    std::string PidText = Name.substr(Tag + 4);
    if (PidText.empty() ||
        PidText.find_first_not_of("0123456789") != std::string::npos)
      continue;
    pid_t Pid = static_cast<pid_t>(std::strtoul(PidText.c_str(), nullptr, 10));
    bool WriterAlive =
        Pid == ::getpid() || ::kill(Pid, 0) == 0 || errno != ESRCH;
    if (!WriterAlive) {
      std::error_code RemoveEC;
      std::filesystem::remove(Path, RemoveEC);
    }
  }
}

ReductionCache::ReductionCache(std::string TheDirectory)
    : Directory(std::move(TheDirectory)) {
  std::error_code EC;
  std::filesystem::create_directories(Directory, EC);
  Enabled = !EC && std::filesystem::is_directory(Directory, EC);
  if (Enabled)
    sweepOrphanedTempFiles(Directory);
}

std::optional<ReductionCache> ReductionCache::fromEnvironment() {
  const char *Dir = std::getenv("RMD_REDUCTION_CACHE");
  if (!Dir || !*Dir)
    return std::nullopt;
  return ReductionCache(Dir);
}

std::string ReductionCache::key(const MachineDescription &MD,
                                const SelectionObjective &Objective) {
  // FNV-1a over a version tag, the objective, and the canonical MDL text.
  // NUL separators keep adjacent fields from aliasing.
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](std::string_view Bytes) {
    for (char C : Bytes) {
      H ^= static_cast<uint8_t>(C);
      H *= 0x00000100000001b3ull;
    }
    H ^= 0;
    H *= 0x00000100000001b3ull;
  };
  Mix("rmd-reduction-cache-v1");
  Mix(Objective.ObjectiveKind == SelectionObjective::ResUses ? "res-uses"
                                                             : "word-uses");
  Mix(std::to_string(Objective.CyclesPerWord));
  Mix(writeMdl(MD));

  static const char Hex[] = "0123456789abcdef";
  std::string Key(16, '0');
  for (int I = 15; I >= 0; --I, H >>= 4)
    Key[static_cast<size_t>(I)] = Hex[H & 0xf];
  return Key;
}

std::string ReductionCache::entryPath(const std::string &Key) const {
  return Directory + "/" + Key + ".mdl";
}

std::optional<ReductionResult>
ReductionCache::load(const std::string &Key) const {
  if (!Enabled)
    return std::nullopt;
  std::string Path = entryPath(Key);
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Text = Buffer.str();

  // The header rides in '#' comment lines the MDL parser skips, so the
  // whole file parses as MDL; the header is validated by hand first. Any
  // malformed entry — truncation, corruption, version or key skew — is
  // treated as a miss and evicted so the slot heals on the next store.
  auto Reject = [&]() -> std::optional<ReductionResult> {
    std::error_code EC;
    std::filesystem::remove(Path, EC);
    static StatCounter RecoveryStat("cache.recoveries");
    RecoveryStat.add();
    globalDegradation().noteCacheRecovery();
    return std::nullopt;
  };

  if (FaultInjection::fire(faultpoints::CacheRead))
    return Reject();

  std::istringstream Lines(Text);
  std::string Line;
  if (!std::getline(Lines, Line) || Line != CacheMagic)
    return Reject();
  if (!std::getline(Lines, Line) || Line != "# key " + Key)
    return Reject();
  ReductionResult Result;
  if (!std::getline(Lines, Line))
    return Reject();
  {
    std::istringstream Stats(Line);
    std::string Hash, Word;
    if (!(Stats >> Hash >> Word >> Result.GeneratingSetSize >>
          Result.PrunedSetSize >> Result.CoveredLatencies) ||
        Hash != "#" || Word != "stats")
      return Reject();
  }

  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Text, Diags);
  if (!MD || Diags.hasErrors())
    return Reject();
  Result.Reduced = std::move(*MD);
  return Result;
}

void ReductionCache::store(const std::string &Key,
                           const ReductionResult &Result) const {
  if (!Enabled)
    return;
  std::string Path = entryPath(Key);
  // Write-then-fsync-then-rename so concurrent readers either see the old
  // entry or the complete new one, never a torn write — and a committed
  // entry is durable before its name becomes visible.
  std::string Tmp =
      Path + ".tmp" + std::to_string(static_cast<unsigned>(::getpid()));
  bool WriteFailed = FaultInjection::fire(faultpoints::CacheWrite);
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return;
    Out << CacheMagic << "\n";
    Out << "# key " << Key << "\n";
    Out << "# stats " << Result.GeneratingSetSize << " "
        << Result.PrunedSetSize << " " << Result.CoveredLatencies << "\n";
    Out << writeMdl(Result.Reduced);
    if (!Out || WriteFailed) {
      Out.close();
      std::error_code EC;
      std::filesystem::remove(Tmp, EC);
      return;
    }
  }
  int Fd = ::open(Tmp.c_str(), O_WRONLY);
  if (Fd < 0 || ::fsync(Fd) != 0) {
    if (Fd >= 0)
      ::close(Fd);
    std::error_code EC;
    std::filesystem::remove(Tmp, EC);
    return;
  }
  ::close(Fd);
  std::error_code EC;
  std::filesystem::rename(Tmp, Path, EC);
  if (EC)
    std::filesystem::remove(Tmp, EC);
}

void ReductionCache::evict(const std::string &Key) const {
  if (!Enabled)
    return;
  std::error_code EC;
  std::filesystem::remove(entryPath(Key), EC);
}

Expected<ReductionResult>
ReductionCache::reduceChecked(const MachineDescription &MD,
                              const ReductionOptions &Options,
                              bool *Hit) const {
  if (Hit)
    *Hit = false;
  if (Options.Trace) // a cache hit would silently skip the traced fold
    return reduceMachineChecked(MD, Options);
  static StatCounter HitStat("cache.hits");
  static StatCounter MissStat("cache.misses");
  static StatCounter StoreStat("cache.stores");
  std::string Key = key(MD, Options.Objective);
  if (std::optional<ReductionResult> Cached = load(Key)) {
    if (Hit)
      *Hit = true;
    HitStat.add();
    return std::move(*Cached);
  }
  MissStat.add();
  Expected<ReductionResult> Result = reduceMachineChecked(MD, Options);
  if (Result) {
    store(Key, Result.value());
    StoreStat.add();
  }
  return Result;
}

ReductionResult ReductionCache::reduce(const MachineDescription &MD,
                                       const ReductionOptions &Options,
                                       bool *Hit) const {
  Expected<ReductionResult> Result = reduceChecked(MD, Options, Hit);
  if (!Result)
    fatalError(Result.status().render().c_str());
  return Result.take();
}

ReductionResult rmd::reduceMachineCached(const MachineDescription &MD,
                                         const ReductionOptions &Options) {
  if (std::optional<ReductionCache> Cache = ReductionCache::fromEnvironment())
    return Cache->reduce(MD, Options);
  return reduceMachine(MD, Options);
}

SafeReduction rmd::reduceMachineOrFallback(const MachineDescription &MD,
                                           const ReductionOptions &Options,
                                           const ReductionCache *Cache,
                                           bool *Hit) {
  if (Hit)
    *Hit = false;
  std::optional<ReductionCache> EnvCache;
  if (!Cache) {
    EnvCache = ReductionCache::fromEnvironment();
    if (EnvCache)
      Cache = &*EnvCache;
  }
  Expected<ReductionResult> Reduced =
      Cache ? Cache->reduceChecked(MD, Options, Hit)
            : reduceMachineChecked(MD, Options);

  SafeReduction Safe;
  if (Reduced) {
    Safe.Result = Reduced.take();
    return Safe;
  }
  // Theorem 1 fallback: the original description imposes exactly the same
  // forbidden latencies, so scheduling against it is always correct — just
  // more per-query work. Mark the pass-through so callers can surface it.
  Safe.Degraded = true;
  Safe.Why = Reduced.status();
  Safe.Result.Reduced = MD;
  Safe.Result.GeneratingSetSize = 0;
  Safe.Result.PrunedSetSize = 0;
  Safe.Result.CoveredLatencies = 0;
  globalDegradation().noteReduceFallback();
  return Safe;
}
