//===- reduce/ReductionCache.cpp ------------------------------------------===//

#include "reduce/ReductionCache.h"

#include "mdl/Parser.h"
#include "mdl/Writer.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

using namespace rmd;

static const char *CacheMagic = "# rmd-reduction-cache v1";

ReductionCache::ReductionCache(std::string TheDirectory)
    : Directory(std::move(TheDirectory)) {
  std::error_code EC;
  std::filesystem::create_directories(Directory, EC);
  Enabled = !EC && std::filesystem::is_directory(Directory, EC);
}

std::optional<ReductionCache> ReductionCache::fromEnvironment() {
  const char *Dir = std::getenv("RMD_REDUCTION_CACHE");
  if (!Dir || !*Dir)
    return std::nullopt;
  return ReductionCache(Dir);
}

std::string ReductionCache::key(const MachineDescription &MD,
                                const SelectionObjective &Objective) {
  // FNV-1a over a version tag, the objective, and the canonical MDL text.
  // NUL separators keep adjacent fields from aliasing.
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](std::string_view Bytes) {
    for (char C : Bytes) {
      H ^= static_cast<uint8_t>(C);
      H *= 0x00000100000001b3ull;
    }
    H ^= 0;
    H *= 0x00000100000001b3ull;
  };
  Mix("rmd-reduction-cache-v1");
  Mix(Objective.ObjectiveKind == SelectionObjective::ResUses ? "res-uses"
                                                             : "word-uses");
  Mix(std::to_string(Objective.CyclesPerWord));
  Mix(writeMdl(MD));

  static const char Hex[] = "0123456789abcdef";
  std::string Key(16, '0');
  for (int I = 15; I >= 0; --I, H >>= 4)
    Key[static_cast<size_t>(I)] = Hex[H & 0xf];
  return Key;
}

std::string ReductionCache::entryPath(const std::string &Key) const {
  return Directory + "/" + Key + ".mdl";
}

std::optional<ReductionResult>
ReductionCache::load(const std::string &Key) const {
  if (!Enabled)
    return std::nullopt;
  std::string Path = entryPath(Key);
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Text = Buffer.str();

  // The header rides in '#' comment lines the MDL parser skips, so the
  // whole file parses as MDL; the header is validated by hand first. Any
  // malformed entry — truncation, corruption, version or key skew — is
  // treated as a miss and evicted so the slot heals on the next store.
  auto Reject = [&]() -> std::optional<ReductionResult> {
    std::error_code EC;
    std::filesystem::remove(Path, EC);
    return std::nullopt;
  };

  std::istringstream Lines(Text);
  std::string Line;
  if (!std::getline(Lines, Line) || Line != CacheMagic)
    return Reject();
  if (!std::getline(Lines, Line) || Line != "# key " + Key)
    return Reject();
  ReductionResult Result;
  if (!std::getline(Lines, Line))
    return Reject();
  {
    std::istringstream Stats(Line);
    std::string Hash, Word;
    if (!(Stats >> Hash >> Word >> Result.GeneratingSetSize >>
          Result.PrunedSetSize >> Result.CoveredLatencies) ||
        Hash != "#" || Word != "stats")
      return Reject();
  }

  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Text, Diags);
  if (!MD || Diags.hasErrors())
    return Reject();
  Result.Reduced = std::move(*MD);
  return Result;
}

void ReductionCache::store(const std::string &Key,
                           const ReductionResult &Result) const {
  if (!Enabled)
    return;
  std::string Path = entryPath(Key);
  // Write-then-rename so concurrent readers either see the old entry or
  // the complete new one, never a torn write.
  std::string Tmp =
      Path + ".tmp" + std::to_string(static_cast<unsigned>(::getpid()));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return;
    Out << CacheMagic << "\n";
    Out << "# key " << Key << "\n";
    Out << "# stats " << Result.GeneratingSetSize << " "
        << Result.PrunedSetSize << " " << Result.CoveredLatencies << "\n";
    Out << writeMdl(Result.Reduced);
    if (!Out) {
      Out.close();
      std::error_code EC;
      std::filesystem::remove(Tmp, EC);
      return;
    }
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Path, EC);
  if (EC)
    std::filesystem::remove(Tmp, EC);
}

void ReductionCache::evict(const std::string &Key) const {
  if (!Enabled)
    return;
  std::error_code EC;
  std::filesystem::remove(entryPath(Key), EC);
}

ReductionResult ReductionCache::reduce(const MachineDescription &MD,
                                       const ReductionOptions &Options,
                                       bool *Hit) const {
  if (Hit)
    *Hit = false;
  if (Options.Trace) // a cache hit would silently skip the traced fold
    return reduceMachine(MD, Options);
  std::string Key = key(MD, Options.Objective);
  if (std::optional<ReductionResult> Cached = load(Key)) {
    if (Hit)
      *Hit = true;
    return std::move(*Cached);
  }
  ReductionResult Result = reduceMachine(MD, Options);
  store(Key, Result);
  return Result;
}

ReductionResult rmd::reduceMachineCached(const MachineDescription &MD,
                                         const ReductionOptions &Options) {
  if (std::optional<ReductionCache> Cache = ReductionCache::fromEnvironment())
    return Cache->reduce(MD, Options);
  return reduceMachine(MD, Options);
}
