//===- reduce/Selection.cpp -----------------------------------------------===//

#include "reduce/Selection.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace rmd;

size_t SelectionResult::numSelectedResources() const {
  size_t Count = 0;
  for (const auto &Usages : SelectedUsages)
    if (!Usages.empty())
      ++Count;
  return Count;
}

size_t SelectionResult::numSelectedUsages() const {
  size_t Count = 0;
  for (const auto &Usages : SelectedUsages)
    Count += Usages.size();
  return Count;
}

namespace {

/// A usage pair within one pruned resource. I == J encodes a single usage
/// (it alone covers the 0 self-latency of its operation).
struct UsagePair {
  uint32_t Resource;
  uint32_t I;
  uint32_t J;
};

/// Greedy cover state shared by the helper routines.
class CoverState {
public:
  CoverState(const ForbiddenLatencyMatrix &FLM,
             const std::vector<SynthesizedResource> &Pruned,
             const SelectionObjective &Objective)
      : Pruned(Pruned), Objective(Objective),
        Canonical(FLM.canonicalLatencies()), Covered(Canonical.size(), false),
        NumUncovered(Canonical.size()) {
    Selected.resize(Pruned.size());
    for (size_t R = 0; R < Pruned.size(); ++R)
      Selected[R].assign(Pruned[R].size(), false);

    // Index every usage pair of every pruned resource under the canonical
    // latency it generates.
    PairLists.resize(Canonical.size());
    for (size_t R = 0; R < Pruned.size(); ++R) {
      const auto &Usages = Pruned[R].usages();
      for (uint32_t I = 0; I < Usages.size(); ++I) {
        addPair(canonicalize(Usages[I].Op, Usages[I].Op, 0),
                UsagePair{static_cast<uint32_t>(R), I, I});
        for (uint32_t J = I + 1; J < Usages.size(); ++J)
          addPair(generatedLatency(Usages[I], Usages[J]),
                  UsagePair{static_cast<uint32_t>(R), I, J});
      }
    }
  }

  void run() {
    while (NumUncovered > 0) {
      size_t Target = pickTargetLatency();
      const UsagePair Best = pickBestPair(Target);
      applyPair(Best);
      if (Objective.ObjectiveKind == SelectionObjective::WordUses)
        closeFreeUsages();
    }
  }

  SelectionResult takeResult() {
    SelectionResult Result;
    Result.SelectedUsages.resize(Pruned.size());
    for (size_t R = 0; R < Pruned.size(); ++R)
      for (size_t U = 0; U < Pruned[R].size(); ++U)
        if (Selected[R][U])
          Result.SelectedUsages[R].push_back(Pruned[R].usages()[U]);
    return Result;
  }

private:
  size_t canonicalIndex(const ForbiddenLatency &L) const {
    auto It = std::lower_bound(Canonical.begin(), Canonical.end(), L);
    assert(It != Canonical.end() && *It == L &&
           "resource generates a latency not in the matrix");
    return static_cast<size_t>(It - Canonical.begin());
  }

  void addPair(const ForbiddenLatency &L, UsagePair P) {
    PairLists[canonicalIndex(L)].push_back(P);
  }

  unsigned wordOf(int Cycle) const {
    return static_cast<unsigned>(Cycle) / Objective.CyclesPerWord;
  }

  /// Latencies the pair would newly generate together with the usages
  /// already selected in its resource; deduplicated canonical indices.
  std::vector<size_t> newlyCovered(const UsagePair &P) const {
    const auto &Usages = Pruned[P.Resource].usages();
    std::vector<size_t> Indices;
    auto Consider = [&](const ForbiddenLatency &L) {
      size_t Index = canonicalIndex(L);
      if (!Covered[Index])
        Indices.push_back(Index);
    };
    auto ConsiderUsage = [&](uint32_t U) {
      Consider(canonicalize(Usages[U].Op, Usages[U].Op, 0));
      for (size_t S = 0; S < Usages.size(); ++S) {
        if (S == U || !Selected[P.Resource][S])
          continue;
        Consider(generatedLatency(Usages[U], Usages[S]));
      }
    };
    ConsiderUsage(P.I);
    if (P.J != P.I) {
      ConsiderUsage(P.J);
      Consider(generatedLatency(Usages[P.I], Usages[P.J]));
    }
    std::sort(Indices.begin(), Indices.end());
    Indices.erase(std::unique(Indices.begin(), Indices.end()), Indices.end());
    return Indices;
  }

  /// Number of words of per-operation reservation tables that selecting the
  /// pair would newly make nonempty (WordUses objective).
  unsigned newWords(const UsagePair &P) const {
    const auto &Usages = Pruned[P.Resource].usages();
    unsigned Count = 0;
    std::pair<OpId, unsigned> FirstKey{0, 0};
    bool HaveFirst = false;
    for (uint32_t U : {P.I, P.J}) {
      if (Selected[P.Resource][U])
        continue;
      std::pair<OpId, unsigned> Key{Usages[U].Op, wordOf(Usages[U].Cycle)};
      if (WordCount.count(Key))
        continue;
      if (HaveFirst && Key == FirstKey)
        continue;
      ++Count;
      FirstKey = Key;
      HaveFirst = true;
      if (P.I == P.J)
        break;
    }
    return Count;
  }

  size_t pickTargetLatency() const {
    size_t Best = Canonical.size();
    for (size_t T = 0; T < Canonical.size(); ++T) {
      if (Covered[T])
        continue;
      if (Best == Canonical.size() ||
          PairLists[T].size() < PairLists[Best].size())
        Best = T;
    }
    assert(Best < Canonical.size() && "no uncovered latency");
    return Best;
  }

  UsagePair pickBestPair(size_t Target) const {
    const auto &List = PairLists[Target];
    assert(!List.empty() && "uncovered latency with no generating pair; the "
                            "pruned set no longer covers the matrix");
    const UsagePair *Best = nullptr;
    unsigned BestWords = 0;
    size_t BestCovered = 0;
    long long BestSum = 0;
    for (const UsagePair &P : List) {
      unsigned Words = Objective.ObjectiveKind == SelectionObjective::WordUses
                           ? newWords(P)
                           : 0;
      std::vector<size_t> NewIndices = newlyCovered(P);
      long long Sum = 0;
      for (size_t Index : NewIndices)
        Sum += Canonical[Index].Latency;

      bool Better = false;
      if (!Best) {
        Better = true;
      } else if (Words != BestWords) {
        Better = Words < BestWords;
      } else if (NewIndices.size() != BestCovered) {
        Better = NewIndices.size() > BestCovered;
      } else if (Sum != BestSum) {
        Better = Sum > BestSum;
      }
      if (Better) {
        Best = &P;
        BestWords = Words;
        BestCovered = NewIndices.size();
        BestSum = Sum;
      }
    }
    return *Best;
  }

  void selectUsage(uint32_t Resource, uint32_t U) {
    if (Selected[Resource][U])
      return;
    const auto &Usages = Pruned[Resource].usages();
    // Mark latencies generated with previously selected usages (and the 0
    // self-latency) as covered.
    markCovered(canonicalize(Usages[U].Op, Usages[U].Op, 0));
    for (size_t S = 0; S < Usages.size(); ++S)
      if (S != U && Selected[Resource][S])
        markCovered(generatedLatency(Usages[U], Usages[S]));
    Selected[Resource][U] = true;
    ++WordCount[{Usages[U].Op, wordOf(Usages[U].Cycle)}];
  }

  void markCovered(const ForbiddenLatency &L) {
    size_t Index = canonicalIndex(L);
    if (!Covered[Index]) {
      Covered[Index] = true;
      --NumUncovered;
    }
  }

  void applyPair(const UsagePair &P) {
    // Selecting J after I records the pair's own latency: selectUsage scans
    // previously selected usages of the resource, which now include I.
    selectUsage(P.Resource, P.I);
    selectUsage(P.Resource, P.J);
  }

  /// WordUses closure: any unselected usage of a resource that already has
  /// selections, whose operation-table word is already nonempty, is free
  /// (it adds no tested word); select it to speed early-out detection.
  void closeFreeUsages() {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t R = 0; R < Pruned.size(); ++R) {
        bool AnySelected =
            std::find(Selected[R].begin(), Selected[R].end(), true) !=
            Selected[R].end();
        if (!AnySelected)
          continue;
        const auto &Usages = Pruned[R].usages();
        for (uint32_t U = 0; U < Usages.size(); ++U) {
          if (Selected[R][U])
            continue;
          auto Key =
              std::make_pair(Usages[U].Op, wordOf(Usages[U].Cycle));
          auto It = WordCount.find(Key);
          if (It == WordCount.end() || It->second == 0)
            continue;
          selectUsage(static_cast<uint32_t>(R), U);
          Changed = true;
        }
      }
    }
  }

  const std::vector<SynthesizedResource> &Pruned;
  SelectionObjective Objective;
  std::vector<ForbiddenLatency> Canonical;
  std::vector<std::vector<UsagePair>> PairLists;
  std::vector<bool> Covered;
  size_t NumUncovered;
  std::vector<std::vector<bool>> Selected;
  std::map<std::pair<OpId, unsigned>, unsigned> WordCount;
};

} // namespace

SelectionResult
rmd::selectCover(const ForbiddenLatencyMatrix &FLM,
                 const std::vector<SynthesizedResource> &Pruned,
                 const SelectionObjective &Objective) {
  assert(Objective.CyclesPerWord >= 1 && "cycles per word must be positive");
  CoverState State(FLM, Pruned, Objective);
  State.run();
  return State.takeResult();
}
