//===- reduce/ExactCover.h - Optimal usage-cover baseline ------*- C++ -*-===//
///
/// \file
/// An exact (branch-and-bound) solver for the minimum-res-uses cover
/// problem of Section 5. The paper remarks that "integer programming can
/// solve these minimum cover problems" but uses a fast heuristic; this
/// solver provides the optimality baseline the heuristic is measured
/// against (see the selection_ablation benchmark). Practical only for
/// small machines -- which is the point: the greedy heuristic gets within
/// a few usages of optimal at a fraction of the cost.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_REDUCE_EXACTCOVER_H
#define RMD_REDUCE_EXACTCOVER_H

#include "reduce/Selection.h"

#include <optional>

namespace rmd {

/// Result of the exact search.
struct ExactCoverResult {
  SelectionResult Selection;
  /// Branch-and-bound nodes expanded.
  uint64_t NodesExpanded = 0;
};

/// Finds a minimum-total-usage selection covering every canonical
/// forbidden latency of \p FLM from the pruned generating set \p Pruned.
/// Gives up (returns std::nullopt) after \p NodeBudget search nodes.
std::optional<ExactCoverResult>
selectCoverOptimal(const ForbiddenLatencyMatrix &FLM,
                   const std::vector<SynthesizedResource> &Pruned,
                   uint64_t NodeBudget = 2'000'000);

} // namespace rmd

#endif // RMD_REDUCE_EXACTCOVER_H
