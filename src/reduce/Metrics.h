//===- reduce/Metrics.h - Paper metrics for machine descriptions -*- C++ -*-===//
///
/// \file
/// The three metrics the paper reports for every machine description
/// (Tables 1-4): number of resources, average resource usages per
/// operation, and average word usages per operation. Word usage is the
/// number of nonempty groups of k consecutive cycles in an operation's
/// reservation table, averaged over all operations and over all k possible
/// alignments between the reserved table and the reservation table.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_REDUCE_METRICS_H
#define RMD_REDUCE_METRICS_H

#include "mdesc/MachineDescription.h"

namespace rmd {

/// How many cycle-bitvectors fit in a \p WordBits-bit word for a machine
/// with \p NumResources resources (at least 1; the paper's "1 cycle of 56
/// bits per word" case). \p NumResources must not exceed \p WordBits.
unsigned cyclesPerWord(size_t NumResources, unsigned WordBits);

/// Average usage count per operation (first alternative) of \p MD.
double averageResUsesPerOperation(const MachineDescription &MD);

/// Word usages of one reservation table at one alignment: the number of
/// distinct values floor((c + Alignment) / CyclesPerWord) over used cycles.
unsigned wordUsages(const ReservationTable &RT, unsigned CyclesPerWord,
                    unsigned Alignment);

/// Average word usages per operation of \p MD, averaged over operations and
/// over alignments 0..CyclesPerWord-1.
double averageWordUsesPerOperation(const MachineDescription &MD,
                                   unsigned CyclesPerWord);

/// Bits of reserved-table state per schedule cycle (= number of resources);
/// the paper's memory-footprint comparison (Section 6).
size_t stateBitsPerCycle(const MachineDescription &MD);

} // namespace rmd

#endif // RMD_REDUCE_METRICS_H
