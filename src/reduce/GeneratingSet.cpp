//===- reduce/GeneratingSet.cpp -------------------------------------------===//

#include "reduce/GeneratingSet.h"

#include <algorithm>
#include <set>

using namespace rmd;

std::vector<ElementaryPair>
rmd::enumerateElementaryPairs(const ForbiddenLatencyMatrix &FLM) {
  std::vector<ElementaryPair> Pairs;
  size_t NumOps = FLM.numOperations();
  // The paper's order (Figure 3): scan F(X, Y) row by row. A latency
  // f >= 0 in F(X, Y) yields the pair {(X, 0), (Y, f)}: X using a resource
  // at relative cycle 0 and Y at relative cycle f collide exactly when X
  // issues f cycles after Y. Mirrored (negative) latencies are skipped:
  // they are redundant with the positive entry of the transposed cell. A
  // zero latency between distinct operations appears in both F(X, Y) and
  // F(Y, X); keep only the X < Y instance. Zero self-latencies are handled
  // by Rule 4.
  for (OpId X = 0; X < NumOps; ++X)
    for (OpId Y = 0; Y < NumOps; ++Y)
      for (int F : FLM.get(X, Y)) {
        if (F < 0)
          continue;
        if (F == 0 && (X == Y || X > Y))
          continue;
        Pairs.push_back(
            ElementaryPair{SynthUsage{X, 0}, SynthUsage{Y, F}});
      }
  return Pairs;
}

namespace {

/// O(1) forbidden-latency membership: a dense (op, op, latency) cube.
/// Latency sets are bounded by the longest reservation table, so the cube
/// stays small (NumOps^2 * (2*MaxLat+1) bytes).
class DenseForbidden {
public:
  explicit DenseForbidden(const ForbiddenLatencyMatrix &FLM)
      : NumOps(FLM.numOperations()), MaxLat(FLM.maxAbsoluteLatency()),
        Width(2 * static_cast<size_t>(MaxLat) + 1),
        Table(NumOps * NumOps * Width, 0) {
    for (OpId X = 0; X < NumOps; ++X)
      for (OpId Y = 0; Y < NumOps; ++Y)
        for (int F : FLM.get(X, Y))
          Table[index(X, Y, F)] = 1;
  }

  bool forbidden(OpId X, OpId Y, int F) const {
    if (F < -MaxLat || F > MaxLat)
      return false;
    return Table[index(X, Y, F)] != 0;
  }

  /// Compatibility of usages (paper Section 4): co-locating A and B on one
  /// resource must forbid an already-forbidden latency.
  bool compatible(const SynthUsage &A, const SynthUsage &B) const {
    return forbidden(A.Op, B.Op, B.Cycle - A.Cycle);
  }

private:
  size_t index(OpId X, OpId Y, int F) const {
    return (static_cast<size_t>(X) * NumOps + Y) * Width +
           static_cast<size_t>(F + MaxLat);
  }

  size_t NumOps;
  int MaxLat;
  size_t Width;
  std::vector<uint8_t> Table;
};

/// 64-bit membership signature of a usage set, for fast subset prefilters:
/// U subset of V implies sig(U) & ~sig(V) == 0.
uint64_t usageSignature(const std::vector<SynthUsage> &Usages) {
  uint64_t Sig = 0;
  for (const SynthUsage &U : Usages) {
    uint64_t H = (static_cast<uint64_t>(U.Op) * 0x9e3779b97f4a7c15ull) ^
                 (static_cast<uint64_t>(static_cast<uint32_t>(U.Cycle)) *
                  0xbf58476d1ce4e5b9ull);
    Sig |= 1ull << (H >> 58);
  }
  return Sig;
}

} // namespace

std::vector<SynthesizedResource>
rmd::buildGeneratingSet(const ForbiddenLatencyMatrix &FLM,
                        const GeneratingSetTrace *Trace) {
  DenseForbidden Dense(FLM);

  std::vector<SynthesizedResource> Set;
  std::vector<uint64_t> Sig; // usage-set signature per resource
  // Usage sets already present, to suppress exact duplicates.
  std::set<std::vector<SynthUsage>> Seen;

  /// True if \p Usages (sorted) is a subset of some current resource.
  /// Discarding subsets is safe: Theorem 1's reconstruction argument only
  /// needs *some* resource containing the accumulated usages, and a
  /// superset keeps accumulating whatever the subset would have.
  auto subsumed = [&](const std::vector<SynthUsage> &Usages,
                      uint64_t Signature) {
    for (size_t I = 0; I < Set.size(); ++I) {
      if ((Signature & ~Sig[I]) != 0)
        continue;
      if (std::includes(Set[I].usages().begin(), Set[I].usages().end(),
                        Usages.begin(), Usages.end()))
        return true;
    }
    return false;
  };

  auto addResource = [&](SynthesizedResource R) -> int {
    uint64_t Signature = usageSignature(R.usages());
    if (subsumed(R.usages(), Signature))
      return -1;
    if (!Seen.insert(R.usages()).second)
      return -1;
    Set.push_back(std::move(R));
    Sig.push_back(Signature);
    return static_cast<int>(Set.size() - 1);
  };

  std::vector<OpId> PairedOps(FLM.numOperations(), 0);

  for (const ElementaryPair &P : enumerateElementaryPairs(FLM)) {
    if (Trace && Trace->OnPair)
      Trace->OnPair(P);
    PairedOps[P.First.Op] = 1;
    PairedOps[P.Second.Op] = 1;

    bool PairTogether = false;
    // Only resources that existed when this pair's processing started are
    // considered; resources spawned by Rule 2 for this pair already contain
    // it.
    size_t End = Set.size();
    for (size_t I = 0; I < End; ++I) {
      SynthesizedResource &Q = Set[I];
      std::vector<SynthUsage> Compatible;
      bool Fully = true;
      for (const SynthUsage &U : Q.usages()) {
        if (Dense.compatible(U, P.First) && Dense.compatible(U, P.Second))
          Compatible.push_back(U);
        else
          Fully = false;
      }

      if (Fully) {
        // Rule 1: fully compatible; merge the pair into Q.
        Seen.erase(Q.usages());
        Q.insert(P.First);
        Q.insert(P.Second);
        Seen.insert(Q.usages());
        Sig[I] = usageSignature(Q.usages());
        PairTogether = true;
        if (Trace && Trace->OnRule)
          Trace->OnRule(GeneratingRule::Rule1, I);
        continue;
      }

      // Rule 2: partially compatible; spawn pair + compatible subset of Q,
      // unless that subset is empty (new resource would be the bare pair).
      if (Compatible.empty()) {
        if (Trace && Trace->OnRule)
          Trace->OnRule(GeneratingRule::Rule2Discard, I);
        continue;
      }
      Compatible.push_back(P.First);
      Compatible.push_back(P.Second);
      int NewIndex = addResource(SynthesizedResource(std::move(Compatible)));
      PairTogether = true; // together in the new or in a subsuming resource
      if (NewIndex >= 0 && Trace && Trace->OnRule)
        Trace->OnRule(GeneratingRule::Rule2, static_cast<size_t>(NewIndex));
    }

    if (PairTogether)
      continue;

    // Rule 3: the pair's usages co-reside nowhere; add the pair itself.
    int NewIndex = addResource(SynthesizedResource({P.First, P.Second}));
    if (NewIndex >= 0 && Trace && Trace->OnRule)
      Trace->OnRule(GeneratingRule::Rule3, static_cast<size_t>(NewIndex));
  }

  // Rule 4: operations whose only forbidden latency is the 0 self-latency
  // appear in no elementary pair; they still need one single-usage resource.
  for (OpId Op = 0; Op < FLM.numOperations(); ++Op) {
    if (PairedOps[Op] || !FLM.isForbidden(Op, Op, 0))
      continue;
    int NewIndex = addResource(SynthesizedResource({SynthUsage{Op, 0}}));
    if (NewIndex >= 0 && Trace && Trace->OnRule)
      Trace->OnRule(GeneratingRule::Rule4, static_cast<size_t>(NewIndex));
  }

  return Set;
}

std::vector<SynthesizedResource>
rmd::pruneGeneratingSet(std::vector<SynthesizedResource> Set) {
  // Precompute generated latency sets; process small resources first so a
  // submaximal resource is removed in favour of a larger one covering it.
  std::vector<std::vector<ForbiddenLatency>> Generated;
  Generated.reserve(Set.size());
  for (const SynthesizedResource &R : Set)
    Generated.push_back(R.generatedLatencies());

  std::vector<size_t> Order(Set.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Generated[A].size() < Generated[B].size();
  });

  std::vector<bool> Removed(Set.size(), false);
  for (size_t I : Order) {
    for (size_t J = 0; J < Set.size(); ++J) {
      if (J == I || Removed[J])
        continue;
      if (Generated[J].size() >= Generated[I].size() &&
          std::includes(Generated[J].begin(), Generated[J].end(),
                        Generated[I].begin(), Generated[I].end())) {
        Removed[I] = true;
        break;
      }
    }
  }

  std::vector<SynthesizedResource> Pruned;
  for (size_t I = 0; I < Set.size(); ++I)
    if (!Removed[I])
      Pruned.push_back(std::move(Set[I]));
  return Pruned;
}
