//===- reduce/GeneratingSet.cpp -------------------------------------------===//

#include "reduce/GeneratingSet.h"

#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <unordered_map>

using namespace rmd;

std::vector<ElementaryPair>
rmd::enumerateElementaryPairs(const ForbiddenLatencyMatrix &FLM) {
  std::vector<ElementaryPair> Pairs;
  size_t NumOps = FLM.numOperations();
  // The paper's order (Figure 3): scan F(X, Y) row by row. A latency
  // f >= 0 in F(X, Y) yields the pair {(X, 0), (Y, f)}: X using a resource
  // at relative cycle 0 and Y at relative cycle f collide exactly when X
  // issues f cycles after Y. Mirrored (negative) latencies are skipped:
  // they are redundant with the positive entry of the transposed cell. A
  // zero latency between distinct operations appears in both F(X, Y) and
  // F(Y, X); keep only the X < Y instance. Zero self-latencies are handled
  // by Rule 4.
  for (OpId X = 0; X < NumOps; ++X)
    for (OpId Y = 0; Y < NumOps; ++Y)
      for (int F : FLM.get(X, Y)) {
        if (F < 0)
          continue;
        if (F == 0 && (X == Y || X > Y))
          continue;
        Pairs.push_back(
            ElementaryPair{SynthUsage{X, 0}, SynthUsage{Y, F}});
      }
  return Pairs;
}

namespace {

/// O(1) forbidden-latency membership: a dense (op, op, latency) cube.
/// Latency sets are bounded by the longest reservation table, so the cube
/// stays small (NumOps^2 * (2*MaxLat+1) bytes).
class DenseForbidden {
public:
  explicit DenseForbidden(const ForbiddenLatencyMatrix &FLM)
      : NumOps(FLM.numOperations()), MaxLat(FLM.maxAbsoluteLatency()),
        Width(2 * static_cast<size_t>(MaxLat) + 1),
        Table(NumOps * NumOps * Width, 0) {
    for (OpId X = 0; X < NumOps; ++X)
      for (OpId Y = 0; Y < NumOps; ++Y)
        for (int F : FLM.get(X, Y))
          Table[index(X, Y, F)] = 1;
  }

  bool forbidden(OpId X, OpId Y, int F) const {
    if (F < -MaxLat || F > MaxLat)
      return false;
    return Table[index(X, Y, F)] != 0;
  }

  /// Compatibility of usages (paper Section 4): co-locating A and B on one
  /// resource must forbid an already-forbidden latency.
  bool compatible(const SynthUsage &A, const SynthUsage &B) const {
    return forbidden(A.Op, B.Op, B.Cycle - A.Cycle);
  }

private:
  size_t index(OpId X, OpId Y, int F) const {
    return (static_cast<size_t>(X) * NumOps + Y) * Width +
           static_cast<size_t>(F + MaxLat);
  }

  size_t NumOps;
  int MaxLat;
  size_t Width;
  std::vector<uint8_t> Table;
};

/// 64-bit membership signature of one usage, for Bloom-style subset
/// prefilters: U subset of V implies sig(U) & ~sig(V) == 0.
uint64_t usageBit(const SynthUsage &U) {
  uint64_t H = (static_cast<uint64_t>(U.Op) * 0x9e3779b97f4a7c15ull) ^
               (static_cast<uint64_t>(static_cast<uint32_t>(U.Cycle)) *
                0xbf58476d1ce4e5b9ull);
  return 1ull << (H >> 58);
}

uint64_t usageSignature(const std::vector<SynthUsage> &Usages) {
  uint64_t Sig = 0;
  for (const SynthUsage &U : Usages)
    Sig |= usageBit(U);
  return Sig;
}

/// Exact-match key of one usage for the inverted posting index.
uint64_t usageKey(const SynthUsage &U) {
  return (static_cast<uint64_t>(U.Op) << 32) |
         static_cast<uint32_t>(U.Cycle);
}

/// The mutable fold state: the resource set plus the two acceleration
/// structures that keep addResource() cheap — a Bloom signature per
/// resource and an inverted index from usage to the resources containing
/// it. Resources only ever grow (Rule 1 adds usages, nothing removes
/// them), so posting lists never go stale.
struct FoldState {
  std::vector<SynthesizedResource> Set;
  std::vector<uint64_t> Sig; // usage-set signature per resource
  std::unordered_map<uint64_t, std::vector<uint32_t>> Postings;

  void indexUsage(const SynthUsage &U, uint32_t Resource) {
    Postings[usageKey(U)].push_back(Resource);
  }

  /// True if \p Usages (sorted) is a subset of some current resource.
  /// Discarding subsets is safe: Theorem 1's reconstruction argument only
  /// needs *some* resource containing the accumulated usages, and a
  /// superset keeps accumulating whatever the subset would have. Exact
  /// duplicates are subsets too, so this one test also deduplicates.
  ///
  /// Instead of scanning the whole set, only resources containing the
  /// candidate's rarest usage are candidates (a superset must contain
  /// every usage); the Bloom signature filters the survivors before the
  /// O(n) verification.
  bool subsumed(const std::vector<SynthUsage> &Usages,
                uint64_t Signature) const {
    const std::vector<uint32_t> *Shortest = nullptr;
    for (const SynthUsage &U : Usages) {
      auto It = Postings.find(usageKey(U));
      if (It == Postings.end())
        return false; // nothing contains this usage at all
      if (!Shortest || It->second.size() < Shortest->size())
        Shortest = &It->second;
    }
    for (uint32_t I : *Shortest) {
      if ((Signature & ~Sig[I]) != 0)
        continue;
      if (std::includes(Set[I].usages().begin(), Set[I].usages().end(),
                        Usages.begin(), Usages.end()))
        return true;
    }
    return false;
  }

  /// Adds \p R unless it is subsumed; returns the new index or -1.
  int addResource(SynthesizedResource R) {
    uint64_t Signature = usageSignature(R.usages());
    if (subsumed(R.usages(), Signature))
      return -1;
    uint32_t Index = static_cast<uint32_t>(Set.size());
    for (const SynthUsage &U : R.usages())
      indexUsage(U, Index);
    Set.push_back(std::move(R));
    Sig.push_back(Signature);
    return static_cast<int>(Index);
  }

  /// Rule 1: merges \p U into resource \p I, keeping signature and
  /// postings current. Pair usages have nonnegative cycles and every
  /// resource is anchored at cycle 0, so the merge never re-translates
  /// existing usages and their posting entries stay valid.
  void mergeUsage(uint32_t I, const SynthUsage &U) {
    if (Set[I].contains(U))
      return;
    Set[I].insert(U);
    Sig[I] |= usageBit(U);
    indexUsage(U, I);
  }
};

/// Per-resource verdict of one elementary pair's compatibility scan.
/// Computed read-only against the pre-fold resource state, so a block of
/// verdicts can be filled by concurrent threads.
struct PairVerdict {
  bool Fully = false;
  std::vector<SynthUsage> Compatible;
};

} // namespace

std::vector<SynthesizedResource>
rmd::buildGeneratingSet(const ForbiddenLatencyMatrix &FLM,
                        const GeneratingSetTrace *Trace, ThreadPool *Pool) {
  DenseForbidden Dense(FLM);
  FoldState State;

  // Rule applications are counted only in the sequential apply phase, so
  // the totals are identical at every thread count (the scan phase is
  // read-only and the apply order is fixed).
  static StatCounter PairStat("reduce.pairs");
  static StatCounter Rule1Stat("reduce.rule1");
  static StatCounter Rule2Stat("reduce.rule2");
  static StatCounter Rule2DiscardStat("reduce.rule2_discard");
  static StatCounter Rule3Stat("reduce.rule3");
  static StatCounter Rule4Stat("reduce.rule4");

  std::vector<OpId> PairedOps(FLM.numOperations(), 0);
  std::vector<PairVerdict> Verdicts;

  for (const ElementaryPair &P : enumerateElementaryPairs(FLM)) {
    PairStat.add();
    if (Trace && Trace->OnPair)
      Trace->OnPair(P);
    PairedOps[P.First.Op] = 1;
    PairedOps[P.Second.Op] = 1;

    // Scan phase (parallel): compatibility of the pair against every
    // resource that existed when this pair's processing started. Verdicts
    // depend only on the forbidden latencies and each resource's current
    // usages — Rules 1/2 below never change another resource's verdict —
    // so this phase reads exactly what the sequential fold would read.
    size_t End = State.Set.size();
    if (Verdicts.size() < End)
      Verdicts.resize(End);
    auto Scan = [&](size_t Begin, size_t BlockEnd) {
      for (size_t I = Begin; I < BlockEnd; ++I) {
        PairVerdict &V = Verdicts[I];
        V.Fully = true;
        V.Compatible.clear();
        for (const SynthUsage &U : State.Set[I].usages()) {
          if (Dense.compatible(U, P.First) && Dense.compatible(U, P.Second))
            V.Compatible.push_back(U);
          else
            V.Fully = false;
        }
      }
    };
    if (Pool && End >= 64)
      Pool->parallelFor(0, End, Scan, /*MinPerBlock=*/16);
    else
      Scan(0, End);

    // Apply phase (sequential, resource-index order — the same order the
    // sequential fold uses, so the folded set is bit-identical).
    bool PairTogether = false;
    for (size_t I = 0; I < End; ++I) {
      PairVerdict &V = Verdicts[I];

      if (V.Fully) {
        // Rule 1: fully compatible; merge the pair into the resource.
        State.mergeUsage(static_cast<uint32_t>(I), P.First);
        State.mergeUsage(static_cast<uint32_t>(I), P.Second);
        PairTogether = true;
        Rule1Stat.add();
        if (Trace && Trace->OnRule)
          Trace->OnRule(GeneratingRule::Rule1, I);
        continue;
      }

      // Rule 2: partially compatible; spawn pair + compatible subset,
      // unless that subset is empty (new resource would be the bare pair).
      if (V.Compatible.empty()) {
        Rule2DiscardStat.add();
        if (Trace && Trace->OnRule)
          Trace->OnRule(GeneratingRule::Rule2Discard, I);
        continue;
      }
      std::vector<SynthUsage> Candidate = std::move(V.Compatible);
      Candidate.push_back(P.First);
      Candidate.push_back(P.Second);
      int NewIndex =
          State.addResource(SynthesizedResource(std::move(Candidate)));
      PairTogether = true; // together in the new or in a subsuming resource
      if (NewIndex >= 0) {
        Rule2Stat.add();
        if (Trace && Trace->OnRule)
          Trace->OnRule(GeneratingRule::Rule2, static_cast<size_t>(NewIndex));
      }
    }

    if (PairTogether)
      continue;

    // Rule 3: the pair's usages co-reside nowhere; add the pair itself.
    int NewIndex =
        State.addResource(SynthesizedResource({P.First, P.Second}));
    if (NewIndex >= 0) {
      Rule3Stat.add();
      if (Trace && Trace->OnRule)
        Trace->OnRule(GeneratingRule::Rule3, static_cast<size_t>(NewIndex));
    }
  }

  // Rule 4: operations whose only forbidden latency is the 0 self-latency
  // appear in no elementary pair; they still need one single-usage resource.
  for (OpId Op = 0; Op < FLM.numOperations(); ++Op) {
    if (PairedOps[Op] || !FLM.isForbidden(Op, Op, 0))
      continue;
    int NewIndex = State.addResource(SynthesizedResource({SynthUsage{Op, 0}}));
    if (NewIndex >= 0) {
      Rule4Stat.add();
      if (Trace && Trace->OnRule)
        Trace->OnRule(GeneratingRule::Rule4, static_cast<size_t>(NewIndex));
    }
  }

  return std::move(State.Set);
}

namespace {

/// Bloom signature of a generated latency set, for prune prefiltering.
uint64_t latencySignature(const std::vector<ForbiddenLatency> &Latencies) {
  uint64_t Sig = 0;
  for (const ForbiddenLatency &L : Latencies) {
    uint64_t H = (static_cast<uint64_t>(L.After) * 0x9e3779b97f4a7c15ull) ^
                 (static_cast<uint64_t>(L.Before) * 0xbf58476d1ce4e5b9ull) ^
                 (static_cast<uint64_t>(static_cast<uint32_t>(L.Latency)) *
                  0x94d049bb133111ebull);
    Sig |= 1ull << (H >> 58);
  }
  return Sig;
}

} // namespace

std::vector<SynthesizedResource>
rmd::pruneGeneratingSet(std::vector<SynthesizedResource> Set,
                        ThreadPool *Pool) {
  // Precompute generated latency sets (independent per resource).
  std::vector<std::vector<ForbiddenLatency>> Generated(Set.size());
  auto Precompute = [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      Generated[I] = Set[I].generatedLatencies();
  };
  if (Pool)
    Pool->parallelFor(0, Set.size(), Precompute, /*MinPerBlock=*/8);
  else
    Precompute(0, Set.size());

  std::vector<uint64_t> Sig(Set.size());
  for (size_t I = 0; I < Set.size(); ++I)
    Sig[I] = latencySignature(Generated[I]);

  // The historical sweep processed resources smallest-set-first and
  // removed each one covered by a not-yet-removed resource. That is
  // equivalent to this order-free rule (a cover is strictly larger, or
  // equal with a later position, and the largest element of any cover
  // chain always survives): remove I iff some J generates a strict
  // superset, or generates the identical set and has the larger index.
  // Per-resource verdicts are independent, hence the parallelFor.
  std::vector<size_t> BySizeDesc(Set.size());
  for (size_t I = 0; I < BySizeDesc.size(); ++I)
    BySizeDesc[I] = I;
  std::stable_sort(BySizeDesc.begin(), BySizeDesc.end(),
                   [&](size_t A, size_t B) {
                     return Generated[A].size() > Generated[B].size();
                   });

  std::vector<uint8_t> Removed(Set.size(), 0);
  auto Judge = [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I) {
      for (size_t J : BySizeDesc) {
        if (Generated[J].size() < Generated[I].size())
          break; // only larger-or-equal sets can cover; list is sorted
        if (J == I || (Sig[I] & ~Sig[J]) != 0)
          continue;
        if (Generated[J].size() == Generated[I].size()) {
          if (J > I && Generated[J] == Generated[I]) {
            Removed[I] = 1;
            break;
          }
          continue;
        }
        if (std::includes(Generated[J].begin(), Generated[J].end(),
                          Generated[I].begin(), Generated[I].end())) {
          Removed[I] = 1;
          break;
        }
      }
    }
  };
  if (Pool)
    Pool->parallelFor(0, Set.size(), Judge, /*MinPerBlock=*/8);
  else
    Judge(0, Set.size());

  // Kept/dropped are tallied at the sequential final filter (verdicts are
  // thread-count-invariant, so these counts are too).
  static StatCounter KeptStat("prune.kept");
  static StatCounter DroppedStat("prune.dropped");
  std::vector<SynthesizedResource> Pruned;
  for (size_t I = 0; I < Set.size(); ++I)
    if (!Removed[I])
      Pruned.push_back(std::move(Set[I]));
  KeptStat.add(Pruned.size());
  DroppedStat.add(Set.size() - Pruned.size());
  return Pruned;
}
