//===- query/SimdOps.h - Vectorized word-mask primitives -------*- C++ -*-===//
///
/// \file
/// The three word-granular primitives of the bitvector hot path —
/// first-conflict scan (AND), reserve (OR), release (AND-NOT) — over
/// contiguous spans of 64-bit words, with 128/256-bit vector kernels behind
/// a tiny compile-time + runtime dispatch and a portable scalar fallback.
///
/// Dispatch tiers:
///   - Scalar: portable C++, the reference semantics; every other tier must
///     produce bit-identical results (tests/SimdQueryTest sweeps this).
///   - Sse2:   128-bit GCC/Clang vector extensions; baseline on x86-64, so
///     it needs no runtime probe there.
///   - Avx2:   256-bit kernels compiled with a per-function target
///     attribute (no global -mavx2), selected only when
///     __builtin_cpu_supports("avx2") says the host has it.
///
/// The active tier resolves once, from min(compile-time support, host CPU,
/// RMD_SIMD override). `RMD_SIMD=off|scalar|sse2|avx2` forces a tier from
/// the environment (sanitizer CI pins `off`: vector intrinsics and
/// ASan/UBSan interact poorly); building with -DRMD_FORCE_SCALAR removes
/// the vector kernels entirely. Spans of one or two words — the common
/// pattern length on small machines — are handled inline before any
/// dispatch, so the vector machinery only ever sees the multi-word case it
/// helps.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_QUERY_SIMDOPS_H
#define RMD_QUERY_SIMDOPS_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace rmd {
namespace simd {

/// Kernel tiers, ordered by preference.
enum class Tier : int { Scalar = 0, Sse2 = 1, Avx2 = 2 };

/// Stable lowercase tier name ("scalar", "sse2", "avx2").
const char *tierName(Tier T);

/// The tier every dispatched call uses; resolved once on first use.
Tier activeTier();

/// Forces the active tier (clamped to what the build and host support) and
/// returns the previous one. For tests that sweep scalar-vs-vector
/// equivalence in one process; not thread-safe against concurrent queries.
Tier forceTier(Tier T);

//===----------------------------------------------------------------------===//
// Out-of-line dispatched kernels (SimdOps.cpp). Call the inline wrappers
// below instead; they peel the short spans that dominate real patterns.
//===----------------------------------------------------------------------===//

ptrdiff_t firstConflictDispatch(const uint64_t *Words, const uint64_t *Masks,
                                size_t N);
void orIntoDispatch(uint64_t *Words, const uint64_t *Masks, size_t N);
uint64_t orIntoCheckDispatch(uint64_t *Words, const uint64_t *Masks, size_t N);
void andNotIntoDispatch(uint64_t *Words, const uint64_t *Masks, size_t N);

#ifndef RMD_FORCE_SCALAR
/// 128-bit lane for the inline short-span peels. GCC/Clang synthesize these
/// vector-extension ops at the baseline ISA (SSE2 on x86-64, NEON on
/// aarch64, plain word pairs elsewhere), so no target attribute or runtime
/// probe is needed. The unaligned accesses go through __builtin_memcpy,
/// which the compilers fold to movdqu-class loads.
typedef uint64_t ShortV2 __attribute__((vector_size(16), may_alias));

inline ShortV2 loadV2(const uint64_t *P) {
  ShortV2 V;
  __builtin_memcpy(&V, P, sizeof(V));
  return V;
}
inline void storeV2(uint64_t *P, ShortV2 V) { __builtin_memcpy(P, &V, sizeof(V)); }
#endif

/// Inline peel width: spans up to this many words are handled by the
/// wrappers below without reaching the dispatched kernels. Covers every
/// per-op pattern of the bundled machine corpus except fig1's widest.
constexpr size_t ShortSpanWords =
#ifndef RMD_FORCE_SCALAR
    8;
#else
    4;
#endif

/// Index of the first word with (Words[i] & Masks[i]) != 0, or -1 if the
/// whole span is conflict-free. The index contract is what lets the caller
/// reproduce abort-on-first-conflict work accounting exactly.
///
/// Short spans use *overlapping pair covers*: 128-bit lanes at [0, 1] and
/// [N-2, N-1] cover any 2 <= N <= 4 (the lanes overlap when N < 4), and two
/// more at [2, 3] and [N-4, N-3] extend the cover to N <= 8. Detection is
/// branch-free within a tier — one data-dependent branch for the whole span
/// instead of one per word — and the exact index is recovered only on the
/// conflict path, which has to walk PrefixPool anyway.
inline ptrdiff_t firstConflict(const uint64_t *Words, const uint64_t *Masks,
                               size_t N) {
  if (N == 0)
    return -1;
  if (N == 1) // single-word patterns dominate on small machines
    return (Words[0] & Masks[0]) ? 0 : -1;
  if (N == 2) { // two-word spans are next; a 128-bit lane only breaks even
    uint64_t Hot = (Words[0] & Masks[0]) | (Words[1] & Masks[1]);
    if (!Hot)
      return -1;
    return (Words[0] & Masks[0]) ? 0 : 1;
  }
#ifndef RMD_FORCE_SCALAR
  if (N <= 8) {
    size_t B = N - 2;
    ShortV2 Hot = (loadV2(Words) & loadV2(Masks)) |
                  (loadV2(Words + B) & loadV2(Masks + B));
    if (N > 4) {
      size_t C = N - 4;
      Hot |= (loadV2(Words + 2) & loadV2(Masks + 2)) |
             (loadV2(Words + C) & loadV2(Masks + C));
    }
    if (!(Hot[0] | Hot[1]))
      return -1;
    ptrdiff_t I = 0;
    while (!(Words[I] & Masks[I]))
      ++I;
    return I;
  }
#else
  if (N <= 4) {
    size_t Last = N - 1;
    uint64_t Hot = (Words[0] & Masks[0]) | (Words[Last] & Masks[Last]);
    if (N > 2)
      Hot |= (Words[1] & Masks[1]) | (Words[N - 2] & Masks[N - 2]);
    if (!Hot)
      return -1;
    ptrdiff_t I = 0;
    while (!(Words[I] & Masks[I]))
      ++I;
    return I;
  }
#endif
  return firstConflictDispatch(Words, Masks, N);
}

/// Words[i] |= Masks[i] over the span (reserve). OR is idempotent, so the
/// overlapping-pair cover (see firstConflict) may touch a word twice.
inline void orInto(uint64_t *Words, const uint64_t *Masks, size_t N) {
  if (N == 0)
    return;
  if (N == 1) {
    Words[0] |= Masks[0];
    return;
  }
  if (N == 2) {
    Words[0] |= Masks[0];
    Words[1] |= Masks[1];
    return;
  }
#ifndef RMD_FORCE_SCALAR
  if (N <= 8) {
    size_t B = N - 2;
    storeV2(Words, loadV2(Words) | loadV2(Masks));
    storeV2(Words + B, loadV2(Words + B) | loadV2(Masks + B));
    if (N > 4) {
      size_t C = N - 4;
      storeV2(Words + 2, loadV2(Words + 2) | loadV2(Masks + 2));
      storeV2(Words + C, loadV2(Words + C) | loadV2(Masks + C));
    }
    return;
  }
#else
  if (N <= 4) {
    size_t Last = N - 1;
    Words[0] |= Masks[0];
    Words[Last] |= Masks[Last];
    if (N > 2) {
      Words[1] |= Masks[1];
      Words[N - 2] |= Masks[N - 2];
    }
    return;
  }
#endif
  orIntoDispatch(Words, Masks, N);
}

/// Words[i] |= Masks[i] over the span, returning the OR-reduction of the
/// *pre-update* overlaps (Words[i] & Masks[i]). Zero means the reservation
/// was contention-free — the same answer a separate firstConflict scan
/// would give, fused into the store loop so assign() can assert its
/// precondition without re-reading the span. All overlap loads happen
/// before any store, so the overlapping-pair cover cannot mistake its own
/// reservation for a clash.
inline uint64_t orIntoCheck(uint64_t *Words, const uint64_t *Masks, size_t N) {
  if (N == 0)
    return 0;
  if (N == 1) {
    uint64_t Clash = Words[0] & Masks[0];
    Words[0] |= Masks[0];
    return Clash;
  }
  if (N == 2) {
    uint64_t Clash = (Words[0] & Masks[0]) | (Words[1] & Masks[1]);
    Words[0] |= Masks[0];
    Words[1] |= Masks[1];
    return Clash;
  }
#ifndef RMD_FORCE_SCALAR
  if (N <= 8) {
    size_t B = N - 2;
    ShortV2 W0 = loadV2(Words), M0 = loadV2(Masks);
    ShortV2 WB = loadV2(Words + B), MB = loadV2(Masks + B);
    ShortV2 Clash = (W0 & M0) | (WB & MB);
    if (N > 4) {
      size_t C = N - 4;
      ShortV2 W2 = loadV2(Words + 2), M2 = loadV2(Masks + 2);
      ShortV2 WC = loadV2(Words + C), MC = loadV2(Masks + C);
      Clash |= (W2 & M2) | (WC & MC);
      storeV2(Words + 2, W2 | M2);
      storeV2(Words + C, WC | MC);
    }
    // Overlapping stores are benign: every store writes Words[i] | Masks[i]
    // from pre-store loads, so a twice-covered word gets the same value.
    storeV2(Words, W0 | M0);
    storeV2(Words + B, WB | MB);
    return Clash[0] | Clash[1];
  }
#else
  if (N <= 4) {
    size_t Last = N - 1;
    uint64_t Clash = (Words[0] & Masks[0]) | (Words[Last] & Masks[Last]);
    if (N > 2)
      Clash |= (Words[1] & Masks[1]) | (Words[N - 2] & Masks[N - 2]);
    Words[0] |= Masks[0];
    Words[Last] |= Masks[Last];
    if (N > 2) {
      Words[1] |= Masks[1];
      Words[N - 2] |= Masks[N - 2];
    }
    return Clash;
  }
#endif
  return orIntoCheckDispatch(Words, Masks, N);
}

/// Words[i] &= ~Masks[i] over the span (release). AND-NOT is idempotent;
/// same overlapping-pair cover as orInto.
inline void andNotInto(uint64_t *Words, const uint64_t *Masks, size_t N) {
  if (N == 0)
    return;
  if (N == 1) {
    Words[0] &= ~Masks[0];
    return;
  }
  if (N == 2) {
    Words[0] &= ~Masks[0];
    Words[1] &= ~Masks[1];
    return;
  }
#ifndef RMD_FORCE_SCALAR
  if (N <= 8) {
    size_t B = N - 2;
    storeV2(Words, loadV2(Words) & ~loadV2(Masks));
    storeV2(Words + B, loadV2(Words + B) & ~loadV2(Masks + B));
    if (N > 4) {
      size_t C = N - 4;
      storeV2(Words + 2, loadV2(Words + 2) & ~loadV2(Masks + 2));
      storeV2(Words + C, loadV2(Words + C) & ~loadV2(Masks + C));
    }
    return;
  }
#else
  if (N <= 4) {
    size_t Last = N - 1;
    Words[0] &= ~Masks[0];
    Words[Last] &= ~Masks[Last];
    if (N > 2) {
      Words[1] &= ~Masks[1];
      Words[N - 2] &= ~Masks[N - 2];
    }
    return;
  }
#endif
  andNotIntoDispatch(Words, Masks, N);
}

//===----------------------------------------------------------------------===//
// Fixed-stride row kernels (uniform pattern arena)
//===----------------------------------------------------------------------===//
//
// The query module pads every pattern of a machine to one fixed row width
// (2, 4 or 8 words, zero-filled past the real span) so the hot ops can run
// a single fixed-width kernel with no span-length branch: mixed-length
// traffic was costing a near-certain mispredict per call on machines whose
// op mix straddles the one-word/multi-word boundary. \p S is a per-module
// constant, so the switch below predicts perfectly; zero-padded words
// conflict with nothing and OR/AND-NOT of zero is the identity.

/// OR-reduction of Words[i] & Masks[i] over a fixed-width row.
inline uint64_t rowHot(const uint64_t *Words, const uint64_t *Masks,
                       size_t S) {
#ifndef RMD_FORCE_SCALAR
  switch (S) {
  case 2: {
    ShortV2 H = loadV2(Words) & loadV2(Masks);
    return H[0] | H[1];
  }
  case 4: {
    ShortV2 H = (loadV2(Words) & loadV2(Masks)) |
                (loadV2(Words + 2) & loadV2(Masks + 2));
    return H[0] | H[1];
  }
  default: {
    ShortV2 H = (loadV2(Words) & loadV2(Masks)) |
                (loadV2(Words + 2) & loadV2(Masks + 2)) |
                (loadV2(Words + 4) & loadV2(Masks + 4)) |
                (loadV2(Words + 6) & loadV2(Masks + 6));
    return H[0] | H[1];
  }
  }
#else
  uint64_t Hot = 0;
  for (size_t I = 0; I < S; ++I)
    Hot |= Words[I] & Masks[I];
  return Hot;
#endif
}

/// Words[i] |= Masks[i] over a fixed-width row, returning the OR-reduction
/// of the pre-update overlaps (see orIntoCheck).
inline uint64_t rowOrCheck(uint64_t *Words, const uint64_t *Masks, size_t S) {
#ifndef RMD_FORCE_SCALAR
  switch (S) {
  case 2: {
    ShortV2 W0 = loadV2(Words), M0 = loadV2(Masks);
    storeV2(Words, W0 | M0);
    ShortV2 H = W0 & M0;
    return H[0] | H[1];
  }
  case 4: {
    ShortV2 W0 = loadV2(Words), M0 = loadV2(Masks);
    ShortV2 W2 = loadV2(Words + 2), M2 = loadV2(Masks + 2);
    storeV2(Words, W0 | M0);
    storeV2(Words + 2, W2 | M2);
    ShortV2 H = (W0 & M0) | (W2 & M2);
    return H[0] | H[1];
  }
  default: {
    ShortV2 W0 = loadV2(Words), M0 = loadV2(Masks);
    ShortV2 W2 = loadV2(Words + 2), M2 = loadV2(Masks + 2);
    ShortV2 W4 = loadV2(Words + 4), M4 = loadV2(Masks + 4);
    ShortV2 W6 = loadV2(Words + 6), M6 = loadV2(Masks + 6);
    storeV2(Words, W0 | M0);
    storeV2(Words + 2, W2 | M2);
    storeV2(Words + 4, W4 | M4);
    storeV2(Words + 6, W6 | M6);
    ShortV2 H = (W0 & M0) | (W2 & M2) | (W4 & M4) | (W6 & M6);
    return H[0] | H[1];
  }
  }
#else
  uint64_t Hot = 0;
  for (size_t I = 0; I < S; ++I) {
    Hot |= Words[I] & Masks[I];
    Words[I] |= Masks[I];
  }
  return Hot;
#endif
}

/// Words[i] &= ~Masks[i] over a fixed-width row.
inline void rowAndNot(uint64_t *Words, const uint64_t *Masks, size_t S) {
#ifndef RMD_FORCE_SCALAR
  switch (S) {
  case 2:
    storeV2(Words, loadV2(Words) & ~loadV2(Masks));
    break;
  case 4:
    storeV2(Words, loadV2(Words) & ~loadV2(Masks));
    storeV2(Words + 2, loadV2(Words + 2) & ~loadV2(Masks + 2));
    break;
  default:
    storeV2(Words, loadV2(Words) & ~loadV2(Masks));
    storeV2(Words + 2, loadV2(Words + 2) & ~loadV2(Masks + 2));
    storeV2(Words + 4, loadV2(Words + 4) & ~loadV2(Masks + 4));
    storeV2(Words + 6, loadV2(Words + 6) & ~loadV2(Masks + 6));
    break;
  }
#else
  for (size_t I = 0; I < S; ++I)
    Words[I] &= ~Masks[I];
#endif
}

//===----------------------------------------------------------------------===//
// Cache-line-aligned word storage
//===----------------------------------------------------------------------===//

/// Minimal aligned allocator: WordVector spans start on a cache line, so a
/// 256-bit load never splits a line and neighbouring spans don't false-share
/// the reserved table's tail.
template <typename T, size_t Alignment> struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment> &) noexcept {}

  T *allocate(size_t N) {
    return static_cast<T *>(
        ::operator new(N * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T *P, size_t) noexcept {
    ::operator delete(P, std::align_val_t(Alignment));
  }

  template <typename U> struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator &,
                         const AlignedAllocator &) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator &,
                         const AlignedAllocator &) noexcept {
    return false;
  }
};

/// 64-byte-aligned vector of reserved-table / pattern-arena words.
using WordVector = std::vector<uint64_t, AlignedAllocator<uint64_t, 64>>;

} // namespace simd
} // namespace rmd

#endif // RMD_QUERY_SIMDOPS_H
