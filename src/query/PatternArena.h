//===- query/PatternArena.h - Immutable shared pattern arena ---*- C++ -*-===//
///
/// \file
/// The packed bitvector pattern arena of query/BitvectorQuery.h, split out
/// as a standalone immutable artifact so it can be built once per
/// (machine description, addressing configuration) and shared read-only
/// across any number of BitvectorQueryModule instances — the contention
/// server's sessions in particular, but also any client that builds many
/// modules over one description (replay harnesses, thread sweeps).
///
/// The arena is strictly const after construction: every field a query hot
/// loop reads (pattern refs, mask words, prefix counts, the uniform-row
/// mirror, the modulo self-conflict table) lives here, and nothing in here
/// is ever written after buildBitvectorPatternArena() returns. Mutable
/// per-module state — the reserved table, instance bookkeeping, and the
/// union-pattern cache of checkWithAlternatives — stays in the module.
/// Sharing is therefore safe across threads with no synchronization at
/// all, a claim the server test suite checks under ThreadSanitizer rather
/// than asserting in this comment alone.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_QUERY_PATTERNARENA_H
#define RMD_QUERY_PATTERNARENA_H

#include "mdesc/MachineDescription.h"
#include "query/QueryModule.h"
#include "query/SimdOps.h"

#include <memory>
#include <vector>

namespace rmd {

/// One (op, phase) pattern: a dense span of DenseLen mask words in the
/// arena at MaskBegin, covering reserved-table words [FirstWord,
/// FirstWord + DenseLen) relative to the issue cycle's word in linear
/// mode (absolute in modulo mode). Nonempty counts the words with a
/// non-zero mask — the paper's work units for a full scan.
struct BitvectorPatternRef {
  /// For DenseLen == 1 — the dominant span class on small machines — the
  /// single mask word is duplicated here, saving the dependent
  /// pool-base -> mask load pair that would otherwise sit at the bottom of
  /// every query's address chain.
  uint64_t InlineMask = 0;
  uint32_t MaskBegin = 0;
  int32_t FirstWord = 0;
  uint16_t DenseLen = 0;
  uint16_t Nonempty = 0;
};

/// The immutable packed pattern arena; see the file comment. MaskPool and
/// PrefixPool are parallel: PrefixPool[i] is the number of nonempty masks
/// in the span prefix ending at (and including) i.
struct BitvectorPatternArena {
  /// The addressing parameters the arena was built for. Two configs may
  /// share an arena iff these match (MinCycle and the union-check flag are
  /// per-module concerns and deliberately absent).
  QueryConfig::ModeKind Mode = QueryConfig::Linear;
  int ModuloII = 0;
  unsigned WordBits = 64;
  unsigned CyclesPerWordOverride = 0;

  /// Shape of the description the arena was built from (a cheap structural
  /// compatibility check; the builder's caller guarantees it uses the same
  /// description object or a bit-identical copy).
  size_t NumResources = 0;
  size_t NumOperations = 0;

  /// Cycle-bitvectors packed per word (the paper's k) and derived helpers.
  unsigned K = 1;
  unsigned NumPhases = 1;
  /// Reciprocal for the cycle->word split: ceil(2^38 / K); exact for any
  /// dividend below 2^32 (see BitvectorQuery.h).
  uint64_t KReciprocal = 0;
  static constexpr unsigned KReciprocalShift = 38;

  /// Per-(op, phase) spans: Patterns[op * NumPhases + phase].
  std::vector<BitvectorPatternRef> Patterns;
  simd::WordVector MaskPool;
  std::vector<uint16_t> PrefixPool;

  /// Uniform-row mirror (linear mode, machines whose spans fit a row; see
  /// BitvectorQuery.h for the full rationale). A row is UniformWords mask
  /// words, zero-padded past DenseLen, one cache line per row.
  static constexpr size_t UniformWords = 8;
  static constexpr size_t UniformNarrow = 4;
  bool UniformRows = false;
  simd::WordVector UniformPool; // Patterns.size() * UniformWords

  /// Modulo mode only: SelfConflict[op] != 0 when op's table collides with
  /// itself under this II (such an op can never be placed).
  std::vector<uint8_t> SelfConflict;

  const BitvectorPatternRef &pattern(OpId Op, unsigned Phase) const {
    return Patterns[static_cast<size_t>(Op) * NumPhases + Phase];
  }

  /// Bytes of the arena (masks, prefix counts, span table, uniform rows).
  size_t bytes() const {
    return (MaskPool.size() + UniformPool.size()) * sizeof(uint64_t) +
           PrefixPool.size() * sizeof(uint16_t) +
           Patterns.size() * sizeof(BitvectorPatternRef) +
           SelfConflict.size();
  }

  /// True when a module over \p MD with \p Config may use this arena.
  bool compatibleWith(const MachineDescription &MD,
                      const QueryConfig &Config) const {
    return Mode == Config.Mode &&
           (Mode != QueryConfig::Modulo || ModuloII == Config.ModuloII) &&
           WordBits == Config.WordBits &&
           CyclesPerWordOverride == Config.CyclesPerWordOverride &&
           NumResources == MD.numResources() &&
           NumOperations == MD.numOperations();
  }
};

/// Builds the arena for \p MD (expanded, numResources() <= Config.WordBits)
/// under \p Config. The result is immutable and freely shareable across
/// threads and modules; BitvectorQueryModule's arena-taking constructor is
/// the consumer.
std::shared_ptr<const BitvectorPatternArena>
buildBitvectorPatternArena(const MachineDescription &MD, QueryConfig Config);

/// Appends \p Scratch's span [MinWord, MaxWord] to \p MaskPool/\p PrefixPool
/// and returns its ref; resets the touched Scratch words to zero. Shared by
/// the arena builder and the module's union-pattern cache (which appends to
/// its own, module-local pools).
BitvectorPatternRef emitBitvectorPattern(std::vector<uint64_t> &Scratch,
                                         int MinWord, int MaxWord,
                                         simd::WordVector &MaskPool,
                                         std::vector<uint16_t> &PrefixPool);

} // namespace rmd

#endif // RMD_QUERY_PATTERNARENA_H
