//===- query/PatternArena.cpp ---------------------------------------------===//

#include "query/PatternArena.h"

#include "query/DiscreteQuery.h" // hasModuloSelfConflict
#include "reduce/Metrics.h"      // cyclesPerWord
#include "support/FatalError.h"

#include <algorithm>
#include <cassert>
#include <climits>

using namespace rmd;

BitvectorPatternRef rmd::emitBitvectorPattern(std::vector<uint64_t> &Scratch,
                                              int MinWord, int MaxWord,
                                              simd::WordVector &MaskPool,
                                              std::vector<uint16_t> &PrefixPool) {
  BitvectorPatternRef Ref;
  if (MaxWord < MinWord)
    return Ref; // no usages: an empty span
  Ref.MaskBegin = static_cast<uint32_t>(MaskPool.size());
  Ref.FirstWord = MinWord;
  Ref.DenseLen = static_cast<uint16_t>(MaxWord - MinWord + 1);
  uint16_t Nonempty = 0;
  for (int W = MinWord; W <= MaxWord; ++W) {
    uint64_t Mask = Scratch[static_cast<size_t>(W)];
    Scratch[static_cast<size_t>(W)] = 0;
    if (Mask)
      ++Nonempty;
    MaskPool.push_back(Mask);
    PrefixPool.push_back(Nonempty);
  }
  Ref.Nonempty = Nonempty;
  if (Ref.DenseLen == 1)
    Ref.InlineMask = MaskPool[Ref.MaskBegin];
  return Ref;
}

namespace {

/// Accumulates one reservation table into \p Scratch (word-indexed masks)
/// for issue alignment \p Phase; extends [MinWord, MaxWord]. The modulo
/// wrap is applied here, at build time.
void bucketUsages(const BitvectorPatternArena &A, const ReservationTable &RT,
                  unsigned Phase, std::vector<uint64_t> &Scratch, int &MinWord,
                  int &MaxWord) {
  for (const ResourceUsage &U : RT.usages()) {
    // A negative usage cycle would produce a negative span word here, and
    // WordBase + FirstWord on a size_t base later wraps to a huge index
    // that the module's ensureWords() tries to allocate. Reject loudly;
    // lintMachine() diagnoses such descriptions up front.
    if (U.Cycle < 0)
      fatalError("reservation table has a negative usage cycle; "
                 "run lintMachine()/validate() on this description");
    int Word;
    unsigned Lane;
    if (A.Mode == QueryConfig::Modulo) {
      // Phase is the issue slot within the MRT; the modulo wrap is folded
      // into the pattern here, at build time, so the query loops scan a
      // straight span with no per-word wrap handling.
      int Slot = (static_cast<int>(Phase) + U.Cycle) % A.ModuloII;
      Word = Slot / static_cast<int>(A.K);
      Lane = static_cast<unsigned>(Slot) % A.K;
    } else {
      // Phase is the issue cycle's position within its word.
      int Shifted = static_cast<int>(Phase) + U.Cycle;
      Word = Shifted / static_cast<int>(A.K);
      Lane = static_cast<unsigned>(Shifted) % A.K;
    }
    if (static_cast<size_t>(Word) >= Scratch.size())
      Scratch.resize(static_cast<size_t>(Word) + 1, 0);
    Scratch[static_cast<size_t>(Word)] |=
        1ull << (Lane * static_cast<unsigned>(A.NumResources) + U.Resource);
    MinWord = std::min(MinWord, Word);
    MaxWord = std::max(MaxWord, Word);
  }
}

} // namespace

std::shared_ptr<const BitvectorPatternArena>
rmd::buildBitvectorPatternArena(const MachineDescription &MD,
                                QueryConfig Config) {
  assert(MD.isExpanded() && "pattern arena requires an expanded machine");
  assert(MD.numResources() <= Config.WordBits &&
         "bitvector representation requires numResources <= WordBits; "
         "reduce the machine description first");

  auto Arena = std::make_shared<BitvectorPatternArena>();
  BitvectorPatternArena &A = *Arena;
  A.Mode = Config.Mode;
  A.ModuloII = Config.ModuloII;
  A.WordBits = Config.WordBits;
  A.CyclesPerWordOverride = Config.CyclesPerWordOverride;
  A.NumResources = MD.numResources();
  A.NumOperations = MD.numOperations();

  A.K = cyclesPerWord(A.NumResources, Config.WordBits);
  if (Config.CyclesPerWordOverride > 0) {
    assert(Config.CyclesPerWordOverride <= A.K &&
           "cycles-per-word override exceeds what the word width holds");
    A.K = Config.CyclesPerWordOverride;
  }

  if (Config.Mode == QueryConfig::Modulo) {
    assert(Config.ModuloII > 0 && "modulo mode requires a positive II");
    A.NumPhases = static_cast<unsigned>(Config.ModuloII);
    A.SelfConflict.assign(MD.numOperations(), 0);
    for (OpId Op = 0; Op < MD.numOperations(); ++Op)
      A.SelfConflict[Op] =
          hasModuloSelfConflict(MD.operation(Op).table(), Config.ModuloII);
  } else {
    A.NumPhases = A.K;
  }
  A.KReciprocal =
      ((uint64_t(1) << BitvectorPatternArena::KReciprocalShift) + A.K - 1) /
      A.K;

  A.Patterns.assign(static_cast<size_t>(MD.numOperations()) * A.NumPhases,
                    BitvectorPatternRef{});
  // One bucketed pass per (op, phase): usages accumulate into a
  // word-indexed scratch array (no find_if over an output list), then the
  // touched span is appended to the arena in word order.
  std::vector<uint64_t> Scratch;
  for (OpId Op = 0; Op < MD.numOperations(); ++Op) {
    const ReservationTable &RT = MD.operation(Op).table();
    for (unsigned Phase = 0; Phase < A.NumPhases; ++Phase) {
      int MinWord = INT_MAX, MaxWord = INT_MIN;
      bucketUsages(A, RT, Phase, Scratch, MinWord, MaxWord);
      A.Patterns[static_cast<size_t>(Op) * A.NumPhases + Phase] =
          emitBitvectorPattern(Scratch, MinWord, MaxWord, A.MaskPool,
                               A.PrefixPool);
    }
  }

  // Uniform-row mirror (see BitvectorQuery.h's member comment): linear mode
  // only — modulo spans use absolute, wrapped word indices that the
  // fixed-width kernels cannot pad safely. Machines whose spans never
  // exceed two words skip the mirror entirely: their length branch is
  // near-perfectly predicted already, and the row kernel's lane-extract
  // overhead measured as a net loss there. Machines with spans wider than a
  // row (fig1's widest) skip it too — a zero-padded row would under-report
  // those spans.
  A.UniformRows = false;
  if (Config.Mode == QueryConfig::Linear) {
    size_t MaxLen = 0;
    for (const BitvectorPatternRef &P : A.Patterns)
      MaxLen = std::max<size_t>(MaxLen, P.DenseLen);
    if (MaxLen >= 3 && MaxLen <= BitvectorPatternArena::UniformWords) {
      A.UniformRows = true;
      A.UniformPool.assign(
          A.Patterns.size() * BitvectorPatternArena::UniformWords, 0);
      for (size_t I = 0; I < A.Patterns.size(); ++I)
        for (size_t J = 0; J < A.Patterns[I].DenseLen; ++J)
          A.UniformPool[I * BitvectorPatternArena::UniformWords + J] =
              A.MaskPool[A.Patterns[I].MaskBegin + J];
    }
  }

  return Arena;
}
