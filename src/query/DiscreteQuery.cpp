//===- query/DiscreteQuery.cpp --------------------------------------------===//

#include "query/DiscreteQuery.h"

#include "support/FatalError.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>

using namespace rmd;

DiscreteQueryModule::DiscreteQueryModule(const MachineDescription &TheMD,
                                         QueryConfig TheConfig)
    : MD(TheMD), Config(TheConfig), NumResources(TheMD.numResources()) {
  assert(MD.isExpanded() && "query module requires an expanded machine");
  if (Config.Mode == QueryConfig::Modulo) {
    assert(Config.ModuloII > 0 && "modulo mode requires a positive II");
    ensureCycles(static_cast<size_t>(Config.ModuloII));
    SelfConflict.assign(MD.numOperations(), 0);
    for (OpId Op = 0; Op < MD.numOperations(); ++Op)
      SelfConflict[Op] = hasModuloSelfConflict(
          MD.operation(Op).table(), Config.ModuloII);
  }
}

bool rmd::hasModuloSelfConflict(const ReservationTable &RT, int II) {
  const auto &Usages = RT.usages();
  for (size_t I = 0; I < Usages.size(); ++I)
    for (size_t J = I + 1; J < Usages.size(); ++J)
      if (Usages[I].Resource == Usages[J].Resource &&
          (Usages[J].Cycle - Usages[I].Cycle) % II == 0)
        return true;
  return false;
}

void DiscreteQueryModule::ensureCycles(size_t CycleCount) {
  if (CycleCount <= NumSlots)
    return;
  // Grow geometrically to amortize linear-mode extension.
  size_t NewSlots = NumSlots == 0 ? CycleCount : NumSlots;
  while (NewSlots < CycleCount)
    NewSlots *= 2;
  Reserved.resize(NewSlots * NumResources, 0);
  Owner.resize(NewSlots * NumResources, -1);
  NumSlots = NewSlots;
}

size_t DiscreteQueryModule::slotIndex(int Cycle, int UsageCycle) {
  int Abs = Cycle + UsageCycle;
  if (Config.Mode == QueryConfig::Modulo) {
    int Slot = Abs % Config.ModuloII;
    if (Slot < 0)
      Slot += Config.ModuloII;
    return static_cast<size_t>(Slot);
  }
  assert(Abs >= Config.MinCycle && "cycle below the linear window");
  size_t Slot = static_cast<size_t>(Abs - Config.MinCycle);
  ensureCycles(Slot + 1);
  return Slot;
}

bool DiscreteQueryModule::check(OpId Op, int Cycle) {
  ++Counters.CheckCalls;
  if (Config.Mode == QueryConfig::Modulo && SelfConflict[Op]) {
    // The operation collides with its own copies from other iterations at
    // this II; no placement can ever succeed.
    ++Counters.CheckUnits;
    return false;
  }
  const ReservationTable &RT = MD.operation(Op).table();
  for (const ResourceUsage &U : RT.usages()) {
    ++Counters.CheckUnits;
    size_t Index = slotIndex(Cycle, U.Cycle) * NumResources + U.Resource;
    if (Reserved[Index])
      return false; // abort on first contention
  }
  return true;
}

void DiscreteQueryModule::assign(OpId Op, int Cycle, InstanceId Instance) {
  ++Counters.AssignCalls;
  assert((Config.Mode != QueryConfig::Modulo || !SelfConflict[Op]) &&
         "assigning an operation that self-conflicts at this II");
  const ReservationTable &RT = MD.operation(Op).table();
  for (const ResourceUsage &U : RT.usages()) {
    ++Counters.AssignUnits;
    size_t Index = slotIndex(Cycle, U.Cycle) * NumResources + U.Resource;
    assert(!Reserved[Index] && "assign over a reserved entry; use "
                               "assignAndFree for forced placement");
    Reserved[Index] = 1;
    Owner[Index] = Instance;
  }
  [[maybe_unused]] bool Inserted =
      Instances.emplace(Instance, InstanceInfo{Op, Cycle}).second;
  assert(Inserted && "instance id already scheduled");
}

void DiscreteQueryModule::free(OpId Op, int Cycle, InstanceId Instance) {
  ++Counters.FreeCalls;
  const ReservationTable &RT = MD.operation(Op).table();
  for (const ResourceUsage &U : RT.usages()) {
    ++Counters.FreeUnits;
    size_t Index = slotIndex(Cycle, U.Cycle) * NumResources + U.Resource;
    assert(Reserved[Index] && Owner[Index] == Instance &&
           "freeing an entry not owned by this instance");
    Reserved[Index] = 0;
    Owner[Index] = -1;
  }
  [[maybe_unused]] size_t Erased = Instances.erase(Instance);
  assert(Erased == 1 && "freeing an unscheduled instance");
}

void DiscreteQueryModule::evict(InstanceId Instance) {
  auto It = Instances.find(Instance);
  assert(It != Instances.end() && "evicting an unknown instance");
  const ReservationTable &RT = MD.operation(It->second.Op).table();
  for (const ResourceUsage &U : RT.usages()) {
    ++Counters.AssignFreeUnits;
    size_t Index =
        slotIndex(It->second.Cycle, U.Cycle) * NumResources + U.Resource;
    Reserved[Index] = 0;
    Owner[Index] = -1;
  }
  Instances.erase(It);
}

void DiscreteQueryModule::assignAndFree(OpId Op, int Cycle,
                                        InstanceId Instance,
                                        std::vector<InstanceId> &Evicted) {
  ++Counters.AssignFreeCalls;
  if (Config.Mode == QueryConfig::Modulo && SelfConflict[Op])
    fatalError("assignAndFree on an operation that self-conflicts at this "
               "II; the scheduler must raise the II instead");
  const ReservationTable &RT = MD.operation(Op).table();
  for (const ResourceUsage &U : RT.usages()) {
    ++Counters.AssignFreeUnits;
    size_t Index = slotIndex(Cycle, U.Cycle) * NumResources + U.Resource;
    if (Reserved[Index]) {
      InstanceId Victim = Owner[Index];
      if (Victim == Instance)
        fatalError("operation conflicts with itself within one placement");
      Evicted.push_back(Victim);
      evict(Victim); // clears this entry as well
    }
    Reserved[Index] = 1;
    Owner[Index] = Instance;
  }
  [[maybe_unused]] bool Inserted =
      Instances.emplace(Instance, InstanceInfo{Op, Cycle}).second;
  assert(Inserted && "instance id already scheduled");
}

void DiscreteQueryModule::reset() {
  std::fill(Reserved.begin(), Reserved.end(), 0);
  std::fill(Owner.begin(), Owner.end(), -1);
  Instances.clear();
  retireCounters();
}

size_t DiscreteQueryModule::reservedTableBytes() const {
  return Reserved.size() * sizeof(uint8_t) + Owner.size() * sizeof(InstanceId);
}

DiscreteQueryModule::Snapshot DiscreteQueryModule::snapshot() const {
  Snapshot S;
  S.Reserved = Reserved;
  S.Owner = Owner;
  S.NumSlots = NumSlots;
  for (const auto &[Instance, Info] : Instances)
    S.Instances.emplace(Instance, std::make_pair(Info.Op, Info.Cycle));
  S.Counters = Counters;
  return S;
}

void DiscreteQueryModule::restore(const Snapshot &S) {
  Reserved = S.Reserved;
  Owner = S.Owner;
  NumSlots = S.NumSlots;
  Instances.clear();
  for (const auto &[Instance, Info] : S.Instances)
    Instances.emplace(Instance, InstanceInfo{Info.first, Info.second});
  // Rewind accounting with the state: a restored module reports exactly
  // the work of the branch that was kept (see Snapshot's doc comment).
  Counters = S.Counters;
}

void DiscreteQueryModule::renderOccupancy(std::ostream &OS, int FirstCycle,
                                          int LastCycle) const {
  assert(FirstCycle <= LastCycle && "empty occupancy window");
  size_t NameWidth = 0;
  for (ResourceId R = 0; R < NumResources; ++R)
    NameWidth = std::max(NameWidth, MD.resourceName(R).size());

  OS << std::string(NameWidth, ' ') << " |";
  for (int C = FirstCycle; C <= LastCycle; ++C)
    OS << ' ' << std::setw(3) << C;
  OS << '\n';

  for (ResourceId R = 0; R < NumResources; ++R) {
    const std::string &Name = MD.resourceName(R);
    OS << Name << std::string(NameWidth - Name.size(), ' ') << " |";
    for (int C = FirstCycle; C <= LastCycle; ++C) {
      int Slot;
      if (Config.Mode == QueryConfig::Modulo) {
        Slot = C % Config.ModuloII;
        if (Slot < 0)
          Slot += Config.ModuloII;
      } else {
        Slot = C - Config.MinCycle;
      }
      size_t Index = static_cast<size_t>(Slot) * NumResources + R;
      if (Slot < 0 || static_cast<size_t>(Slot) >= NumSlots ||
          !Reserved[Index])
        OS << "   .";
      else
        OS << ' ' << std::setw(3) << Owner[Index];
    }
    OS << '\n';
  }
}
