//===- query/BitvectorQuery.h - Packed bitvector reserved table -*- C++ -*-===//
///
/// \file
/// The bitvector representation of Section 5/7: the reserved flags of each
/// schedule cycle form a bitvector of NumResources bits, and k = WordBits /
/// NumResources consecutive cycle-bitvectors are packed into one machine
/// word. A contention check ANDs each nonempty word of the (pre-shifted)
/// reservation table against the reserved table: contentions for k
/// consecutive cycles are detected by one word operation, so one *work
/// unit* is one word handled.
///
/// assign&free uses the paper's optimistic strategy: while no conflict has
/// been seen, no per-resource owner fields are maintained and all functions
/// run word-at-a-time (optimistic mode). The first conflicting placement
/// pays a transition that rebuilds owner fields by scanning the scheduled
/// instances; thereafter (update mode) assign&free iterates over resource
/// usages to keep the fields current, as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_QUERY_BITVECTORQUERY_H
#define RMD_QUERY_BITVECTORQUERY_H

#include "query/QueryModule.h"

#include <unordered_map>

namespace rmd {

/// Bitvector-representation contention query module.
class BitvectorQueryModule : public ContentionQueryModule {
public:
  /// \p MD must be expanded with numResources() <= Config.WordBits. The
  /// module keeps a reference to \p MD; it must outlive the module.
  BitvectorQueryModule(const MachineDescription &MD, QueryConfig Config);

  bool check(OpId Op, int Cycle) override;
  void assign(OpId Op, int Cycle, InstanceId Instance) override;
  void free(OpId Op, int Cycle, InstanceId Instance) override;
  void assignAndFree(OpId Op, int Cycle, InstanceId Instance,
                     std::vector<InstanceId> &Evicted) override;
  void reset() override;

  /// Union-mask fast path for alternatives: if the OR of all alternatives'
  /// reservation words is contention-free, every alternative fits and the
  /// first one is returned after testing only the union's words; otherwise
  /// falls back to per-alternative checks. Semantically identical to the
  /// base implementation.
  ///
  /// Accounting: a successful union pass is exactly one check call whose
  /// units are the union words scanned. On conflict only the fallback's
  /// per-alternative calls are billed (never 1+N calls for one query); the
  /// speculative union words still count as CheckUnits.
  int checkWithAlternatives(const std::vector<OpId> &Alternatives,
                            int Cycle) override;

  /// Cycle-bitvectors packed per word (the paper's k).
  unsigned cyclesPerWordUsed() const { return K; }

  /// True once the optimistic-to-update transition has happened.
  bool inUpdateMode() const { return UpdateMode; }

  /// Bytes of reserved-table words currently allocated (memory metric;
  /// excludes owner fields, which exist only after a transition).
  size_t reservedTableBytes() const { return Words.size() * sizeof(uint64_t); }

private:
  /// One nonempty word of a pre-shifted reservation table: the word offset
  /// (relative to the issue cycle's word in linear mode, absolute in modulo
  /// mode) and the resource-usage mask within it.
  struct WordMask {
    int WordOffset;
    uint64_t Mask;
  };

  /// The pattern (word list) of \p Op when issued with cycle alignment
  /// \p Phase (linear: issue cycle mod k; modulo: issue slot).
  const std::vector<WordMask> &pattern(OpId Op, unsigned Phase) const {
    return Patterns[Op * NumPhases + Phase];
  }

  void buildPatterns();
  void ensureWords(size_t WordCount);

  /// Splits a schedule cycle into (word base, phase).
  void locate(int Cycle, size_t &WordBase, unsigned &Phase) const;

  /// Cell-granular helpers for update mode. A cell is one (cycle slot,
  /// resource) entry; AbsCycle is issue cycle + usage cycle.
  size_t cycleSlot(int AbsCycle) const;
  size_t cellIndex(size_t Slot, ResourceId R) const {
    return Slot * NumResources + R;
  }
  void setBit(size_t Slot, ResourceId R);
  void clearBit(size_t Slot, ResourceId R);
  bool testBit(size_t Slot, ResourceId R) const;

  /// Rebuilds the owner fields from the scheduled-instance list (the
  /// optimistic-to-update transition); cost charged to TransitionUnits and
  /// AssignFreeUnits.
  void transitionToUpdateMode();

  /// Releases every reservation of \p Instance cell-by-cell (eviction).
  void evict(InstanceId Instance);

  const MachineDescription &MD;
  QueryConfig Config;
  size_t NumResources;
  unsigned K;
  unsigned NumPhases;

  std::vector<std::vector<WordMask>> Patterns;
  std::vector<uint64_t> Words;

  bool UpdateMode = false;
  std::vector<InstanceId> Owner; // cellIndex -> instance (update mode only)

  struct InstanceInfo {
    OpId Op;
    int Cycle;
  };
  std::unordered_map<InstanceId, InstanceInfo> Instances;

  std::vector<uint8_t> SelfConflict; // modulo mode only

  /// FNV-1a over an alternative group's op list. Groups are short (a
  /// handful of ids), so hashing one is a few multiplies — far cheaper
  /// than the O(log n) lexicographic vector comparisons an ordered map
  /// spends per lookup on the scheduler's hot union path.
  struct OpListHash {
    size_t operator()(const std::vector<OpId> &Ops) const {
      uint64_t H = 0xcbf29ce484222325ull;
      for (OpId Op : Ops) {
        H ^= Op;
        H *= 0x00000100000001b3ull;
      }
      return static_cast<size_t>(H);
    }
  };

  /// Cached union patterns per alternative group (keyed by the group's op
  /// list), one word list per phase.
  std::unordered_map<std::vector<OpId>, std::vector<std::vector<WordMask>>,
                     OpListHash>
      UnionPatterns;

  const std::vector<std::vector<WordMask>> &
  unionPatternsFor(const std::vector<OpId> &Alternatives);
};

} // namespace rmd

#endif // RMD_QUERY_BITVECTORQUERY_H
