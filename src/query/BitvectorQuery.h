//===- query/BitvectorQuery.h - Packed bitvector reserved table -*- C++ -*-===//
///
/// \file
/// The bitvector representation of Section 5/7: the reserved flags of each
/// schedule cycle form a bitvector of NumResources bits, and k = WordBits /
/// NumResources consecutive cycle-bitvectors are packed into one machine
/// word. A contention check ANDs each nonempty word of the (pre-shifted)
/// reservation table against the reserved table: contentions for k
/// consecutive cycles are detected by one word operation, so one *work
/// unit* is one word handled.
///
/// Data layout: every (op, phase) pattern lives in an immutable,
/// cache-aligned arena (query/PatternArena.h) as a *dense span* — DenseLen
/// consecutive mask words covering schedule words [FirstWord, FirstWord +
/// DenseLen), interior words with no usage holding a zero mask. The hot
/// loops are therefore straight-line masked-AND reductions over two
/// contiguous arrays (reserved-table words and arena masks), vectorized via
/// query/SimdOps.h. Work accounting is unchanged from the word-at-a-time
/// formulation: a parallel prefix-count array recovers "nonempty words
/// scanned up to the first conflict" exactly, and zero-mask filler words
/// are never billed. The arena is built once per (machine, addressing
/// config) and may be shared read-only by any number of modules — the
/// contention server hands every session over the same machine one arena.
/// Union patterns (check-with-alternatives fast path) are cached in
/// module-local pools so a shared arena is never written. Modulo
/// wrap-around is folded into the patterns at build time, so no per-word
/// wrap handling survives in the query loops.
///
/// assign&free uses the paper's optimistic strategy: while no conflict has
/// been seen, no per-resource owner fields are maintained and all functions
/// run word-at-a-time (optimistic mode). The first conflicting placement
/// pays a transition that rebuilds owner fields by scanning the scheduled
/// instances; thereafter (update mode) assign&free iterates over resource
/// usages to keep the fields current, as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_QUERY_BITVECTORQUERY_H
#define RMD_QUERY_BITVECTORQUERY_H

#include "query/InstanceTable.h"
#include "query/PatternArena.h"
#include "query/QueryModule.h"
#include "query/SimdOps.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_map>

namespace rmd {

/// Bitvector-representation contention query module. Final so direct calls
/// through a concrete object (the bench harnesses, ShadowQueryModule's
/// inner pair) devirtualize.
class BitvectorQueryModule final : public ContentionQueryModule {
public:
  /// \p MD must be expanded with numResources() <= Config.WordBits. The
  /// module keeps a reference to \p MD; it must outlive the module. Builds
  /// a private pattern arena.
  BitvectorQueryModule(const MachineDescription &MD, QueryConfig Config);

  /// As above, but adopting \p SharedArena instead of building one —
  /// \p SharedArena must satisfy compatibleWith(MD, Config). The arena is
  /// only ever read, so one arena may back any number of concurrently
  /// queried modules (one per server session, for instance).
  BitvectorQueryModule(const MachineDescription &MD, QueryConfig Config,
                       std::shared_ptr<const BitvectorPatternArena> SharedArena);

  // check/assign/free are defined inline below the class (with
  // always_inline: GCC otherwise leaves the bodies out of line even at
  // devirtualized call sites). The bench harnesses and the scheduler's
  // inner loop call them on a concrete module millions of times; inlining
  // lets those loops keep the module's pools and config in registers
  // instead of re-loading ~10 members through `this` per query. Virtual
  // dispatch through a base pointer still works: the vtable references the
  // out-of-line copy.
  bool check(OpId Op, int Cycle) override;
  void assign(OpId Op, int Cycle, InstanceId Instance) override;
  void free(OpId Op, int Cycle, InstanceId Instance) override;
  void assignAndFree(OpId Op, int Cycle, InstanceId Instance,
                     std::vector<InstanceId> &Evicted) override;
  void reset() override;

  /// Union-mask fast path for alternatives: if the OR of all alternatives'
  /// reservation words is contention-free, every alternative fits and the
  /// first one is returned after testing only the union's words; otherwise
  /// falls back to per-alternative checks. Semantically identical to the
  /// base implementation.
  ///
  /// Accounting: a successful union pass is exactly one check call whose
  /// units are the union words scanned. On conflict only the fallback's
  /// per-alternative calls are billed (never 1+N calls for one query); the
  /// speculative union words still count as CheckUnits.
  int checkWithAlternatives(const std::vector<OpId> &Alternatives,
                            int Cycle) override;

  /// Cycle-bitvectors packed per word (the paper's k).
  unsigned cyclesPerWordUsed() const { return K; }

  /// True once the optimistic-to-update transition has happened.
  bool inUpdateMode() const { return UpdateMode; }

  /// Bytes of reserved-table words currently allocated (memory metric;
  /// excludes owner fields, which exist only after a transition).
  size_t reservedTableBytes() const { return Words.size() * sizeof(uint64_t); }

  /// Bytes of the packed pattern arena (masks, prefix counts, and span
  /// table — the per-op arena, shared or not, plus this module's cached
  /// union patterns).
  size_t patternArenaBytes() const {
    return Arena->bytes() + UnionMasks.size() * sizeof(uint64_t) +
           UnionPrefix.size() * sizeof(uint16_t) +
           UnionRefs.size() * sizeof(PatternRef);
  }

  /// The immutable per-op pattern arena backing this module. Modules built
  /// through the two-argument constructor own a private arena; the server
  /// hands many modules one shared arena through the three-argument form.
  const std::shared_ptr<const BitvectorPatternArena> &arena() const {
    return Arena;
  }

private:
  using PatternRef = BitvectorPatternRef;
  static constexpr size_t UniformWords = BitvectorPatternArena::UniformWords;
  static constexpr size_t UniformNarrow = BitvectorPatternArena::UniformNarrow;

  const PatternRef &pattern(OpId Op, unsigned Phase) const {
    return Patterns[static_cast<size_t>(Op) * NumPhases + Phase];
  }

  void ensureWords(size_t WordCount) {
    if (WordCount > Words.size())
      growWords(WordCount);
  }
  void growWords(size_t WordCount);

  /// Splits a schedule cycle into (word base, phase).
  void locate(int Cycle, size_t &WordBase, unsigned &Phase) const {
    if (Config.Mode == QueryConfig::Modulo) {
      int Slot = Cycle % Config.ModuloII;
      if (Slot < 0)
        Slot += Config.ModuloII;
      WordBase = 0; // modulo patterns use absolute word indices
      Phase = static_cast<unsigned>(Slot);
      return;
    }
    assert(Cycle >= Config.MinCycle && "cycle below the linear window");
    size_t Rel = static_cast<size_t>(Cycle - Config.MinCycle);
    WordBase = divK(Rel);
    Phase = static_cast<unsigned>(Rel - WordBase * K);
  }

  /// Scans \p P's in-range dense words against the reserved table,
  /// billing \p Units exactly as the abort-on-first-conflict word loop
  /// did (out-of-range and zero-mask words conflict with nothing; scanned
  /// nonempty words are billed whether or not they conflict). Returns true
  /// on contention. \p PoolMasks/\p PoolPrefix are the pools \p P indexes
  /// into: the shared arena's for per-op patterns, the module-local union
  /// pools for union patterns.
  bool scanConflict(const PatternRef &P, size_t WordBase, uint64_t &Units,
                    const uint64_t *PoolMasks, const uint16_t *PoolPrefix) {
    // Words past the allocated table are empty and cannot conflict, but the
    // word-at-a-time loop still billed them; splitting the range keeps the
    // scan straight-line and the accounting identical.
    size_t Base = WordBase + static_cast<size_t>(P.FirstWord);
    if (P.DenseLen == 1) {
      // Single-word spans are branchless: the one word is nonempty by
      // construction, so the bill is one unit whether it conflicts or not
      // (PoolPrefix[MaskBegin] == Nonempty == 1), and the mask comes from
      // the ref itself instead of the arena.
      Units += 1;
      return Base < Words.size() && (Words[Base] & P.InlineMask) != 0;
    }
    size_t InRange = 0;
    if (P.DenseLen && Base < Words.size())
      InRange = std::min<size_t>(P.DenseLen, Words.size() - Base);
    if (InRange) {
      // restrict: the reserved table and the immutable arena never alias,
      // and nothing else (counters, refs) is reached through these two
      // pointers — so the compiler may keep counters in registers across
      // the word ops.
      const uint64_t *__restrict W = Words.data() + Base;
      const uint64_t *__restrict M = PoolMasks + P.MaskBegin;
      ptrdiff_t Conflict = simd::firstConflict(W, M, InRange);
      if (Conflict >= 0) {
        // Bill the nonempty words scanned up to and including the conflict
        // (zero-mask filler words never conflict and are never billed).
        Units += PoolPrefix[P.MaskBegin + static_cast<size_t>(Conflict)];
        return true;
      }
    }
    Units += P.Nonempty;
    return false;
  }

  /// Owner-field and instance-table maintenance for assign/free after the
  /// transition (update mode only — cold relative to the optimistic word
  /// loops).
  void updateOwnersOnAssign(OpId Op, int Cycle, InstanceId Instance);
  void updateOwnersOnFree(OpId Op, int Cycle, InstanceId Instance);

  /// Applies the pending instance log to the table (validating each entry)
  /// and clears it. Cold: runs at the update transition and when the log
  /// outgrows the live set.
  void flushLog();

  /// Cell-granular helpers for update mode. A cell is one (cycle slot,
  /// resource) entry; AbsCycle is issue cycle + usage cycle.
  size_t cycleSlot(int AbsCycle) const;
  size_t cellIndex(size_t Slot, ResourceId R) const {
    return Slot * NumResources + R;
  }
  void setBit(size_t Slot, ResourceId R);
  void clearBit(size_t Slot, ResourceId R);
  bool testBit(size_t Slot, ResourceId R) const;

  /// Rebuilds the owner fields from the scheduled-instance list (the
  /// optimistic-to-update transition); cost charged to TransitionUnits and
  /// AssignFreeUnits.
  void transitionToUpdateMode();

  /// Releases every reservation of \p Instance cell-by-cell (eviction).
  void evict(InstanceId Instance);

  const MachineDescription &MD;
  QueryConfig Config;
  size_t NumResources;

  /// The immutable per-op pattern arena (possibly shared with other
  /// modules; strictly read-only either way). The members below it mirror
  /// the arena fields the hot loops touch: raw pointers and POD copies keep
  /// every query one indirection from the data instead of two (module ->
  /// arena -> pool), which is what the pre-arena layout compiled to.
  std::shared_ptr<const BitvectorPatternArena> Arena;
  const PatternRef *Patterns = nullptr; // Op * NumPhases + Phase
  const uint64_t *Masks = nullptr;      // arena MaskPool
  const uint16_t *Prefix = nullptr;     // arena PrefixPool
  const uint64_t *Uniform = nullptr;    // arena UniformPool (row mirror)
  const uint8_t *SelfConflict = nullptr; // modulo mode only
  bool UniformRows = false;
  unsigned K = 1;
  unsigned NumPhases = 1;

  /// Reciprocal for the cycle→word split: ceil(2^38 / K). locate() and the
  /// cell helpers run on every query, and a runtime integer division by K
  /// costs ~20 cycles on its own — a multiply-shift is exact for any
  /// dividend below 2^32 (K <= 64, so the error term n*r/(K*2^38) with
  /// r < K stays under 1/K for all n < 2^38/64), and the hot paths never
  /// exceed 2^24 cycles anyway.
  uint64_t KReciprocal = 0;
  static constexpr unsigned KReciprocalShift =
      BitvectorPatternArena::KReciprocalShift;

  size_t divK(size_t N) const {
    if (N < (size_t(1) << 24))
      return (N * KReciprocal) >> KReciprocalShift;
    return N / K; // cold: cycle windows this deep never hit a bench
  }

  /// The reserved table: a flat span of packed words (linear mode grows it
  /// on demand; modulo mode sizes it to the II up front), cache-aligned so
  /// vector loads never split a line.
  simd::WordVector Words;

  bool UpdateMode = false;
  std::vector<InstanceId> Owner; // cellIndex -> instance (update mode only)

  /// Scheduled-instance bookkeeping. The hot optimistic paths only ever
  /// *record* assigns and frees — nothing reads the live set until the
  /// update transition — so they append to a log (two stores) instead of
  /// paying a hash insert/erase per call. The log replays into the table
  /// on flush, where the paired asserts validate the same invariants the
  /// eager updates did (an id is scheduled at most once and freed only
  /// while live). Frees are tagged in the op field's high bit (OpId is
  /// unsigned and op counts stay far below 2^31).
  struct LogEntry {
    InstanceId Id;
    OpId Op;
    int32_t Cycle;
  };
  static constexpr OpId LogFreeBit = OpId(1) << 31;
  std::vector<LogEntry> Log;
  size_t LiveCount = 0;
  InstanceTable Instances;

  /// Flush scratch (kept allocated between flushes). Schedulers hand out
  /// near-sequential instance ids, so a flush usually covers a dense id
  /// range: a direct-indexed state pass then cancels each assign/free pair
  /// with two array touches instead of a hash insert plus a backward-shift
  /// erase, and only net changes reach the table. FlushLast is valid only
  /// where the corresponding FlushState live bit was set this flush.
  std::vector<uint8_t> FlushState;
  std::vector<uint32_t> FlushLast;

  /// FNV-1a over an alternative group's op list. Groups are short (a
  /// handful of ids), so hashing one is a few multiplies — far cheaper
  /// than the O(log n) lexicographic vector comparisons an ordered map
  /// spends per lookup on the scheduler's hot union path.
  struct OpListHash {
    size_t operator()(const std::vector<OpId> &Ops) const {
      uint64_t H = 0xcbf29ce484222325ull;
      for (OpId Op : Ops) {
        H ^= Op;
        H *= 0x00000100000001b3ull;
      }
      return static_cast<size_t>(H);
    }
  };

  /// Cached union patterns per alternative group: the map yields an index
  /// into UnionRefs, which holds NumPhases consecutive spans. Union masks
  /// live in module-local pools (UnionMasks/UnionPrefix), never in the
  /// per-op arena — the arena may be shared across threads and is
  /// immutable by contract.
  std::unordered_map<std::vector<OpId>, uint32_t, OpListHash> UnionIndex;
  std::vector<PatternRef> UnionRefs;
  simd::WordVector UnionMasks;
  std::vector<uint16_t> UnionPrefix;

  /// The group's per-phase union spans (NumPhases entries), built and
  /// cached in the module-local union pools on first use.
  const PatternRef *unionPatternsFor(const std::vector<OpId> &Alternatives);
};

__attribute__((always_inline)) inline bool
BitvectorQueryModule::check(OpId Op, int Cycle) {
  ++Counters.CheckCalls;
  if (Config.Mode == QueryConfig::Modulo && SelfConflict[Op]) {
    // A self-conflicting table can never be placed at this II; detecting
    // that is one unit of work, not zero (Table 6 counts the query).
    ++Counters.CheckUnits;
    return false;
  }
  size_t WordBase;
  unsigned Phase;
  locate(Cycle, WordBase, Phase);
  size_t Idx = static_cast<size_t>(Op) * NumPhases + Phase;
  const PatternRef &P = Patterns[Idx];
  size_t Base = WordBase + static_cast<size_t>(P.FirstWord);
  if (UniformRows && Base + UniformWords <= Words.size()) {
    // Fixed-width row: when rows are on, every span fits one (the builder
    // checked MaxLen), so there is no span-length class to predict — only
    // a cheap half-row/full-row width pick. A row is in play only when it
    // sits fully inside the table, so no clamping either; beyond-the-end
    // probes fall through to the general scan.
    const uint64_t *__restrict W = Words.data() + Base;
    const uint64_t *__restrict M = Uniform + Idx * UniformWords;
    uint64_t Hot = P.DenseLen <= UniformNarrow
                       ? simd::rowHot(W, M, UniformNarrow)
                       : simd::rowHot(W, M, UniformWords);
    if (!Hot) {
      Counters.CheckUnits += P.Nonempty;
      return true;
    }
    // Conflict: recover the first conflicting word for the
    // abort-on-first-conflict bill. Padded words are zero and can't be it.
    size_t I = 0;
    while (!(W[I] & M[I]))
      ++I;
    Counters.CheckUnits += Prefix[P.MaskBegin + I];
    return false;
  }
  return !scanConflict(P, WordBase, Counters.CheckUnits, Masks, Prefix);
}

__attribute__((always_inline)) inline void
BitvectorQueryModule::assign(OpId Op, int Cycle, InstanceId Instance) {
  ++Counters.AssignCalls;
  assert((Config.Mode != QueryConfig::Modulo || !SelfConflict[Op]) &&
         "assigning an operation that self-conflicts at this II");
  size_t WordBase;
  unsigned Phase;
  locate(Cycle, WordBase, Phase);
  size_t Idx = static_cast<size_t>(Op) * NumPhases + Phase;
  const PatternRef &P = Patterns[Idx];
  size_t Base = WordBase + static_cast<size_t>(P.FirstWord);
  if (UniformRows) {
    // Fixed-width row (see check); growing to the padded width keeps the
    // whole row addressable for the later check/free fast paths. The
    // precondition check (caller must have seen check() succeed) rides the
    // reserve kernel itself: rowOrCheck accumulates the pre-update overlaps
    // while storing, so the assert costs no second scan.
    ensureWords(Base + UniformWords);
    uint64_t *__restrict W = Words.data() + Base;
    const uint64_t *__restrict M = Uniform + Idx * UniformWords;
    [[maybe_unused]] uint64_t Clash =
        P.DenseLen <= UniformNarrow
            ? simd::rowOrCheck(W, M, UniformNarrow)
            : simd::rowOrCheck(W, M, UniformWords);
    assert(!Clash && "assign over reserved resources; use assignAndFree");
  } else if (P.DenseLen == 1) {
    // Single-word fast path: the mask rides in the ref (see PatternRef).
    ensureWords(Base + 1);
    uint64_t *__restrict W = Words.data() + Base;
    [[maybe_unused]] uint64_t Clash = *W & P.InlineMask;
    *W |= P.InlineMask;
    assert(!Clash && "assign over reserved resources; use assignAndFree");
  } else {
    ensureWords(Base + P.DenseLen);
    // As above, but over the packed variable-length span. restrict: see
    // scanConflict.
    uint64_t *__restrict W = Words.data() + Base;
    const uint64_t *__restrict M = Masks + P.MaskBegin;
    [[maybe_unused]] uint64_t Clash = simd::orIntoCheck(W, M, P.DenseLen);
    assert(!Clash && "assign over reserved resources; use assignAndFree");
  }
  Counters.AssignUnits += P.Nonempty;
  if (!UpdateMode) {
    Log.push_back({Instance, Op, Cycle});
    ++LiveCount;
  } else {
    // Owner fields are maintained only after a transition (update mode);
    // keeping them current is bookkeeping, not counted work.
    updateOwnersOnAssign(Op, Cycle, Instance);
  }
}

__attribute__((always_inline)) inline void
BitvectorQueryModule::free(OpId Op, int Cycle, InstanceId Instance) {
  ++Counters.FreeCalls;
  size_t WordBase;
  unsigned Phase;
  locate(Cycle, WordBase, Phase);
  size_t Idx = static_cast<size_t>(Op) * NumPhases + Phase;
  const PatternRef &P = Patterns[Idx];
  size_t Base = WordBase + static_cast<size_t>(P.FirstWord);
  if (UniformRows && Base + UniformWords <= Words.size()) {
    // Fixed-width row (see check); the matching assign grew the table to
    // the padded width, so a live reservation's row is always in bounds.
    uint64_t *__restrict W = Words.data() + Base;
    const uint64_t *__restrict M = Uniform + Idx * UniformWords;
    if (P.DenseLen <= UniformNarrow)
      simd::rowAndNot(W, M, UniformNarrow);
    else
      simd::rowAndNot(W, M, UniformWords);
  } else if (P.DenseLen == 1) {
    if (Base < Words.size())
      Words[Base] &= ~P.InlineMask;
  } else {
    size_t InRange = 0;
    if (P.DenseLen && Base < Words.size())
      InRange = std::min<size_t>(P.DenseLen, Words.size() - Base);
    if (InRange) {
      uint64_t *__restrict W = Words.data() + Base;
      const uint64_t *__restrict M = Masks + P.MaskBegin;
      simd::andNotInto(W, M, InRange);
    }
  }
  Counters.FreeUnits += P.Nonempty;
  if (!UpdateMode) {
    assert(LiveCount != 0 && "freeing with no live instances");
    Log.push_back({Instance, Op | LogFreeBit, Cycle});
    --LiveCount;
    // Frees leave dead pairs in the log; fold them into the table once they
    // dominate, so log memory stays bounded by the live set (plus a floor
    // high enough that short scheduling sessions never flush mid-flight —
    // a flush inside a hot loop costs more than the 1 MiB floor it saves).
    if (Log.size() >= 65536 && Log.size() > 4 * LiveCount)
      flushLog();
  } else {
    updateOwnersOnFree(Op, Cycle, Instance);
  }
}

} // namespace rmd

#endif // RMD_QUERY_BITVECTORQUERY_H
