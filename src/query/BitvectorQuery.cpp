//===- query/BitvectorQuery.cpp -------------------------------------------===//

#include "query/BitvectorQuery.h"

#include "query/DiscreteQuery.h" // hasModuloSelfConflict
#include "reduce/Metrics.h"      // cyclesPerWord
#include "support/FatalError.h"

#include <algorithm>
#include <cassert>

using namespace rmd;

BitvectorQueryModule::BitvectorQueryModule(const MachineDescription &TheMD,
                                           QueryConfig TheConfig)
    : MD(TheMD), Config(TheConfig), NumResources(TheMD.numResources()) {
  assert(MD.isExpanded() && "query module requires an expanded machine");
  assert(NumResources <= Config.WordBits &&
         "bitvector representation requires numResources <= WordBits; "
         "reduce the machine description first");
  K = cyclesPerWord(NumResources, Config.WordBits);
  if (Config.CyclesPerWordOverride > 0) {
    assert(Config.CyclesPerWordOverride <= K &&
           "cycles-per-word override exceeds what the word width holds");
    K = Config.CyclesPerWordOverride;
  }

  if (Config.Mode == QueryConfig::Modulo) {
    assert(Config.ModuloII > 0 && "modulo mode requires a positive II");
    NumPhases = static_cast<unsigned>(Config.ModuloII);
    ensureWords((static_cast<size_t>(Config.ModuloII) + K - 1) / K);
    SelfConflict.assign(MD.numOperations(), 0);
    for (OpId Op = 0; Op < MD.numOperations(); ++Op)
      SelfConflict[Op] =
          hasModuloSelfConflict(MD.operation(Op).table(), Config.ModuloII);
  } else {
    NumPhases = K;
  }
  buildPatterns();
}

void BitvectorQueryModule::buildPatterns() {
  Patterns.assign(MD.numOperations() * NumPhases, {});
  for (OpId Op = 0; Op < MD.numOperations(); ++Op) {
    const ReservationTable &RT = MD.operation(Op).table();
    for (unsigned Phase = 0; Phase < NumPhases; ++Phase) {
      // Accumulate masks per word; offsets stay sorted because usages are
      // visited in per-word order after the bucketing below.
      std::vector<WordMask> &Out = Patterns[Op * NumPhases + Phase];
      for (const ResourceUsage &U : RT.usages()) {
        // A negative usage cycle would produce a negative WordOffset here,
        // and WordBase + WordOffset on a size_t base later wraps to a huge
        // index that ensureWords() tries to allocate. Reject loudly;
        // lintMachine() diagnoses such descriptions up front.
        if (U.Cycle < 0)
          fatalError("reservation table has a negative usage cycle; "
                     "run lintMachine()/validate() on this description");
        int Word;
        unsigned Lane;
        if (Config.Mode == QueryConfig::Modulo) {
          // Phase is the issue slot within the MRT.
          int Slot = (static_cast<int>(Phase) + U.Cycle) % Config.ModuloII;
          Word = Slot / static_cast<int>(K);
          Lane = static_cast<unsigned>(Slot) % K;
        } else {
          // Phase is the issue cycle's position within its word.
          int Shifted = static_cast<int>(Phase) + U.Cycle;
          Word = Shifted / static_cast<int>(K);
          Lane = static_cast<unsigned>(Shifted) % K;
        }
        uint64_t Bit = 1ull
                       << (Lane * static_cast<unsigned>(NumResources) +
                           U.Resource);
        auto It = std::find_if(Out.begin(), Out.end(), [&](const WordMask &W) {
          return W.WordOffset == Word;
        });
        if (It == Out.end())
          Out.push_back(WordMask{Word, Bit});
        else
          It->Mask |= Bit;
      }
      std::sort(Out.begin(), Out.end(),
                [](const WordMask &A, const WordMask &B) {
                  return A.WordOffset < B.WordOffset;
                });
    }
  }
}

void BitvectorQueryModule::ensureWords(size_t WordCount) {
  if (WordCount <= Words.size())
    return;
  size_t NewSize = Words.empty() ? WordCount : Words.size();
  while (NewSize < WordCount)
    NewSize *= 2;
  Words.resize(NewSize, 0);
  if (UpdateMode)
    Owner.resize(NewSize * K * NumResources, -1);
}

void BitvectorQueryModule::locate(int Cycle, size_t &WordBase,
                                  unsigned &Phase) const {
  if (Config.Mode == QueryConfig::Modulo) {
    int Slot = Cycle % Config.ModuloII;
    if (Slot < 0)
      Slot += Config.ModuloII;
    WordBase = 0; // modulo patterns use absolute word indices
    Phase = static_cast<unsigned>(Slot);
    return;
  }
  assert(Cycle >= Config.MinCycle && "cycle below the linear window");
  size_t Rel = static_cast<size_t>(Cycle - Config.MinCycle);
  WordBase = Rel / K;
  Phase = static_cast<unsigned>(Rel % K);
}

size_t BitvectorQueryModule::cycleSlot(int AbsCycle) const {
  if (Config.Mode == QueryConfig::Modulo) {
    int Slot = AbsCycle % Config.ModuloII;
    if (Slot < 0)
      Slot += Config.ModuloII;
    return static_cast<size_t>(Slot);
  }
  assert(AbsCycle >= Config.MinCycle && "cycle below the linear window");
  return static_cast<size_t>(AbsCycle - Config.MinCycle);
}

void BitvectorQueryModule::setBit(size_t Slot, ResourceId R) {
  size_t Word = Slot / K;
  unsigned Lane = static_cast<unsigned>(Slot % K);
  ensureWords(Word + 1);
  Words[Word] |= 1ull << (Lane * NumResources + R);
}

void BitvectorQueryModule::clearBit(size_t Slot, ResourceId R) {
  size_t Word = Slot / K;
  unsigned Lane = static_cast<unsigned>(Slot % K);
  if (Word >= Words.size())
    return;
  Words[Word] &= ~(1ull << (Lane * NumResources + R));
}

bool BitvectorQueryModule::testBit(size_t Slot, ResourceId R) const {
  size_t Word = Slot / K;
  if (Word >= Words.size())
    return false;
  unsigned Lane = static_cast<unsigned>(Slot % K);
  return (Words[Word] >> (Lane * NumResources + R)) & 1;
}

bool BitvectorQueryModule::check(OpId Op, int Cycle) {
  ++Counters.CheckCalls;
  if (Config.Mode == QueryConfig::Modulo && SelfConflict[Op]) {
    ++Counters.CheckUnits;
    return false;
  }
  size_t WordBase;
  unsigned Phase;
  locate(Cycle, WordBase, Phase);
  for (const WordMask &W : pattern(Op, Phase)) {
    ++Counters.CheckUnits;
    size_t Index = WordBase + static_cast<size_t>(W.WordOffset);
    if (Index < Words.size() && (Words[Index] & W.Mask))
      return false; // abort on first conflicting word
  }
  return true;
}

void BitvectorQueryModule::assign(OpId Op, int Cycle, InstanceId Instance) {
  ++Counters.AssignCalls;
  assert((Config.Mode != QueryConfig::Modulo || !SelfConflict[Op]) &&
         "assigning an operation that self-conflicts at this II");
  size_t WordBase;
  unsigned Phase;
  locate(Cycle, WordBase, Phase);
  for (const WordMask &W : pattern(Op, Phase)) {
    ++Counters.AssignUnits;
    size_t Index = WordBase + static_cast<size_t>(W.WordOffset);
    ensureWords(Index + 1);
    assert((Words[Index] & W.Mask) == 0 &&
           "assign over reserved resources; use assignAndFree");
    Words[Index] |= W.Mask;
  }
  // Owner fields are maintained only after a transition (update mode);
  // keeping them current here is bookkeeping, not counted work.
  if (UpdateMode) {
    for (const ResourceUsage &U : MD.operation(Op).table().usages()) {
      size_t Slot = cycleSlot(Cycle + U.Cycle);
      Owner[cellIndex(Slot, U.Resource)] = Instance;
    }
  }
  [[maybe_unused]] bool Inserted =
      Instances.emplace(Instance, InstanceInfo{Op, Cycle}).second;
  assert(Inserted && "instance id already scheduled");
}

void BitvectorQueryModule::free(OpId Op, int Cycle, InstanceId Instance) {
  ++Counters.FreeCalls;
  size_t WordBase;
  unsigned Phase;
  locate(Cycle, WordBase, Phase);
  for (const WordMask &W : pattern(Op, Phase)) {
    ++Counters.FreeUnits;
    size_t Index = WordBase + static_cast<size_t>(W.WordOffset);
    if (Index < Words.size())
      Words[Index] &= ~W.Mask;
  }
  if (UpdateMode) {
    for (const ResourceUsage &U : MD.operation(Op).table().usages()) {
      size_t Slot = cycleSlot(Cycle + U.Cycle);
      Owner[cellIndex(Slot, U.Resource)] = -1;
    }
  }
  [[maybe_unused]] size_t Erased = Instances.erase(Instance);
  assert(Erased == 1 && "freeing an unscheduled instance");
}

void BitvectorQueryModule::transitionToUpdateMode() {
  UpdateMode = true;
  Owner.assign(Words.size() * K * NumResources, -1);
  // Scan the entire list of scheduled operations to reconstruct the owner
  // fields (the paper's transition overhead).
  for (const auto &[Instance, Info] : Instances) {
    for (const ResourceUsage &U : MD.operation(Info.Op).table().usages()) {
      ++Counters.TransitionUnits;
      ++Counters.AssignFreeUnits;
      size_t Slot = cycleSlot(Info.Cycle + U.Cycle);
      Owner[cellIndex(Slot, U.Resource)] = Instance;
    }
  }
}

void BitvectorQueryModule::evict(InstanceId Instance) {
  auto It = Instances.find(Instance);
  assert(It != Instances.end() && "evicting an unknown instance");
  for (const ResourceUsage &U : MD.operation(It->second.Op).table().usages()) {
    ++Counters.AssignFreeUnits;
    size_t Slot = cycleSlot(It->second.Cycle + U.Cycle);
    clearBit(Slot, U.Resource);
    Owner[cellIndex(Slot, U.Resource)] = -1;
  }
  Instances.erase(It);
}

void BitvectorQueryModule::assignAndFree(OpId Op, int Cycle,
                                         InstanceId Instance,
                                         std::vector<InstanceId> &Evicted) {
  ++Counters.AssignFreeCalls;
  if (Config.Mode == QueryConfig::Modulo && SelfConflict[Op])
    fatalError("assignAndFree on an operation that self-conflicts at this "
               "II; the scheduler must raise the II instead");

  if (!UpdateMode) {
    // Optimistic mode: test word-at-a-time; if clean, reserve by ORing the
    // same words (one combined and+or per word is one unit of work).
    size_t WordBase;
    unsigned Phase;
    locate(Cycle, WordBase, Phase);
    bool Conflict = false;
    for (const WordMask &W : pattern(Op, Phase)) {
      ++Counters.AssignFreeUnits;
      size_t Index = WordBase + static_cast<size_t>(W.WordOffset);
      if (Index < Words.size() && (Words[Index] & W.Mask)) {
        Conflict = true;
        break;
      }
    }
    if (!Conflict) {
      for (const WordMask &W : pattern(Op, Phase)) {
        size_t Index = WordBase + static_cast<size_t>(W.WordOffset);
        ensureWords(Index + 1);
        Words[Index] |= W.Mask;
      }
      [[maybe_unused]] bool Inserted =
          Instances.emplace(Instance, InstanceInfo{Op, Cycle}).second;
      assert(Inserted && "instance id already scheduled");
      return;
    }
    transitionToUpdateMode();
  }

  // Update mode: iterate resource usages, evicting conflicting owners and
  // keeping owner fields current.
  for (const ResourceUsage &U : MD.operation(Op).table().usages()) {
    ++Counters.AssignFreeUnits;
    size_t Slot = cycleSlot(Cycle + U.Cycle);
    // ensureWords via setBit below also grows Owner; grow before testing.
    if (testBit(Slot, U.Resource)) {
      InstanceId Victim = Owner[cellIndex(Slot, U.Resource)];
      if (Victim == Instance || Victim < 0)
        fatalError("inconsistent owner fields in update mode");
      Evicted.push_back(Victim);
      evict(Victim);
    }
    setBit(Slot, U.Resource);
    if (cellIndex(Slot, U.Resource) >= Owner.size())
      Owner.resize(Words.size() * K * NumResources, -1);
    Owner[cellIndex(Slot, U.Resource)] = Instance;
  }
  [[maybe_unused]] bool Inserted =
      Instances.emplace(Instance, InstanceInfo{Op, Cycle}).second;
  assert(Inserted && "instance id already scheduled");
}

const std::vector<std::vector<BitvectorQueryModule::WordMask>> &
BitvectorQueryModule::unionPatternsFor(
    const std::vector<OpId> &Alternatives) {
  auto It = UnionPatterns.find(Alternatives);
  if (It != UnionPatterns.end())
    return It->second;

  std::vector<std::vector<WordMask>> PerPhase(NumPhases);
  for (unsigned Phase = 0; Phase < NumPhases; ++Phase) {
    std::vector<WordMask> &Out = PerPhase[Phase];
    for (OpId Op : Alternatives)
      for (const WordMask &W : pattern(Op, Phase)) {
        auto Pos =
            std::find_if(Out.begin(), Out.end(), [&](const WordMask &M) {
              return M.WordOffset == W.WordOffset;
            });
        if (Pos == Out.end())
          Out.push_back(W);
        else
          Pos->Mask |= W.Mask;
      }
    std::sort(Out.begin(), Out.end(),
              [](const WordMask &A, const WordMask &B) {
                return A.WordOffset < B.WordOffset;
              });
  }
  return UnionPatterns.emplace(Alternatives, std::move(PerPhase))
      .first->second;
}

int BitvectorQueryModule::checkWithAlternatives(
    const std::vector<OpId> &Alternatives, int Cycle) {
  if (!Config.UnionAlternativeCheck || Alternatives.size() < 2)
    return ContentionQueryModule::checkWithAlternatives(Alternatives, Cycle);
  if (Config.Mode == QueryConfig::Modulo) {
    // Self-conflicting alternatives would poison the union; keep the
    // simple path when any alternative is infeasible at this II.
    for (OpId Op : Alternatives)
      if (SelfConflict[Op])
        return ContentionQueryModule::checkWithAlternatives(Alternatives,
                                                            Cycle);
  }

  // Union fast path: one pass over the OR of all alternatives' words. A
  // clean union means every alternative fits; return the first. The union
  // pass is billed as exactly one check call, and only when it succeeds:
  // on conflict the fallback below accounts each per-alternative attempt
  // itself, so billing the union call too would charge 1+N calls for one
  // answered query and skew Table 6. The words scanned are real work
  // either way and always land in CheckUnits.
  size_t WordBase;
  unsigned Phase;
  locate(Cycle, WordBase, Phase);
  bool Conflict = false;
  for (const WordMask &W : unionPatternsFor(Alternatives)[Phase]) {
    ++Counters.CheckUnits;
    size_t Index = WordBase + static_cast<size_t>(W.WordOffset);
    if (Index < Words.size() && (Words[Index] & W.Mask)) {
      Conflict = true;
      break;
    }
  }
  if (!Conflict) {
    ++Counters.CheckCalls;
    return 0;
  }

  // Some alternative conflicts; fall back to individual checks.
  return ContentionQueryModule::checkWithAlternatives(Alternatives, Cycle);
}

void BitvectorQueryModule::reset() {
  std::fill(Words.begin(), Words.end(), 0);
  Owner.clear();
  UpdateMode = false;
  Instances.clear();
  retireCounters();
}
