//===- query/BitvectorQuery.cpp -------------------------------------------===//

#include "query/BitvectorQuery.h"

#include "support/FatalError.h"

#include <algorithm>
#include <cassert>
#include <climits>

using namespace rmd;

BitvectorQueryModule::BitvectorQueryModule(const MachineDescription &TheMD,
                                           QueryConfig TheConfig)
    : BitvectorQueryModule(TheMD, TheConfig,
                           buildBitvectorPatternArena(TheMD, TheConfig)) {}

BitvectorQueryModule::BitvectorQueryModule(
    const MachineDescription &TheMD, QueryConfig TheConfig,
    std::shared_ptr<const BitvectorPatternArena> SharedArena)
    : MD(TheMD), Config(TheConfig), NumResources(TheMD.numResources()),
      Arena(std::move(SharedArena)) {
  assert(MD.isExpanded() && "query module requires an expanded machine");
  assert(Arena && "null pattern arena");
  assert(Arena->compatibleWith(MD, Config) &&
         "pattern arena built for a different machine or addressing config");
  // Mirror the arena fields the hot loops touch (see the member comment).
  Patterns = Arena->Patterns.data();
  Masks = Arena->MaskPool.data();
  Prefix = Arena->PrefixPool.data();
  Uniform = Arena->UniformPool.data();
  SelfConflict = Arena->SelfConflict.data();
  UniformRows = Arena->UniformRows;
  K = Arena->K;
  NumPhases = Arena->NumPhases;
  KReciprocal = Arena->KReciprocal;
  if (Config.Mode == QueryConfig::Modulo)
    ensureWords((static_cast<size_t>(Config.ModuloII) + K - 1) / K);
}

void BitvectorQueryModule::growWords(size_t WordCount) {
  size_t NewSize = Words.empty() ? WordCount : Words.size();
  while (NewSize < WordCount)
    NewSize *= 2;
  Words.resize(NewSize, 0);
  if (UpdateMode)
    Owner.resize(NewSize * K * NumResources, -1);
}

size_t BitvectorQueryModule::cycleSlot(int AbsCycle) const {
  if (Config.Mode == QueryConfig::Modulo) {
    int Slot = AbsCycle % Config.ModuloII;
    if (Slot < 0)
      Slot += Config.ModuloII;
    return static_cast<size_t>(Slot);
  }
  assert(AbsCycle >= Config.MinCycle && "cycle below the linear window");
  return static_cast<size_t>(AbsCycle - Config.MinCycle);
}

void BitvectorQueryModule::setBit(size_t Slot, ResourceId R) {
  size_t Word = divK(Slot);
  unsigned Lane = static_cast<unsigned>(Slot - Word * K);
  ensureWords(Word + 1);
  Words[Word] |= 1ull << (Lane * NumResources + R);
}

void BitvectorQueryModule::clearBit(size_t Slot, ResourceId R) {
  size_t Word = divK(Slot);
  unsigned Lane = static_cast<unsigned>(Slot - Word * K);
  if (Word >= Words.size())
    return;
  Words[Word] &= ~(1ull << (Lane * NumResources + R));
}

bool BitvectorQueryModule::testBit(size_t Slot, ResourceId R) const {
  size_t Word = divK(Slot);
  if (Word >= Words.size())
    return false;
  unsigned Lane = static_cast<unsigned>(Slot - Word * K);
  return (Words[Word] >> (Lane * NumResources + R)) & 1;
}

void BitvectorQueryModule::updateOwnersOnAssign(OpId Op, int Cycle,
                                                InstanceId Instance) {
  for (const ResourceUsage &U : MD.operation(Op).table().usages()) {
    size_t Slot = cycleSlot(Cycle + U.Cycle);
    Owner[cellIndex(Slot, U.Resource)] = Instance;
  }
  [[maybe_unused]] bool Inserted = Instances.insert(Instance, Op, Cycle);
  assert(Inserted && "instance id already scheduled");
}

void BitvectorQueryModule::updateOwnersOnFree(OpId Op, int Cycle,
                                              InstanceId Instance) {
  for (const ResourceUsage &U : MD.operation(Op).table().usages()) {
    size_t Slot = cycleSlot(Cycle + U.Cycle);
    Owner[cellIndex(Slot, U.Resource)] = -1;
  }
  [[maybe_unused]] bool Erased = Instances.erase(Instance);
  assert(Erased && "freeing an unscheduled instance");
}

void BitvectorQueryModule::flushLog() {
  if (Log.empty())
    return;

  int64_t MinId = Log.front().Id, MaxId = MinId;
  for (const LogEntry &E : Log) {
    MinId = std::min<int64_t>(MinId, E.Id);
    MaxId = std::max<int64_t>(MaxId, E.Id);
  }
  uint64_t Range = static_cast<uint64_t>(MaxId - MinId) + 1;

  if (Range > 4 * Log.size() + 64) {
    // Sparse ids: replay entry by entry through the hash table.
    for (const LogEntry &E : Log) {
      if (!(E.Op & LogFreeBit)) {
        [[maybe_unused]] bool Inserted = Instances.insert(E.Id, E.Op, E.Cycle);
        assert(Inserted && "instance id already scheduled");
      } else {
        [[maybe_unused]] bool Erased = Instances.erase(E.Id);
        assert(Erased && "freeing an unscheduled instance");
      }
    }
    Log.clear();
    return;
  }

  // Dense ids: state bits per id — bit 0 = net-live from this log, bit 1 =
  // net-freed from the table (the id predates this log). Paired assign/free
  // entries cancel here and never touch the hash table.
  if (FlushState.size() < Range) {
    FlushState.assign(Range, 0);
    FlushLast.resize(Range);
  } else {
    std::fill_n(FlushState.begin(), Range, uint8_t(0));
  }
  for (size_t I = 0; I < Log.size(); ++I) {
    size_t S = static_cast<size_t>(Log[I].Id - MinId);
    uint8_t &F = FlushState[S];
    if (Log[I].Op & LogFreeBit) {
      if (F & 1) {
        F &= static_cast<uint8_t>(~1u);
      } else {
        assert(!(F & 2) && "freeing an unscheduled instance");
        F |= 2;
      }
    } else {
      assert(!(F & 1) && "instance id already scheduled");
      F |= 1;
      FlushLast[S] = static_cast<uint32_t>(I);
    }
  }
  for (uint64_t S = 0; S < Range; ++S) {
    uint8_t F = FlushState[S];
    if (!F)
      continue;
    InstanceId Id = static_cast<InstanceId>(MinId + static_cast<int64_t>(S));
    if (F & 2) {
      [[maybe_unused]] bool Erased = Instances.erase(Id);
      assert(Erased && "freeing an unscheduled instance");
    }
    if (F & 1) {
      const LogEntry &E = Log[FlushLast[S]];
      [[maybe_unused]] bool Inserted = Instances.insert(E.Id, E.Op, E.Cycle);
      assert(Inserted && "instance id already scheduled");
    }
  }
  Log.clear();
}

void BitvectorQueryModule::transitionToUpdateMode() {
  flushLog();
  UpdateMode = true;
  Owner.assign(Words.size() * K * NumResources, -1);
  // Scan the entire list of scheduled operations to reconstruct the owner
  // fields (the paper's transition overhead).
  Instances.forEach([&](const InstanceTable::Entry &E) {
    for (const ResourceUsage &U : MD.operation(E.Op).table().usages()) {
      ++Counters.TransitionUnits;
      ++Counters.AssignFreeUnits;
      size_t Slot = cycleSlot(E.Cycle + U.Cycle);
      Owner[cellIndex(Slot, U.Resource)] = E.Id;
    }
  });
}

void BitvectorQueryModule::evict(InstanceId Instance) {
  const InstanceTable::Entry *E = Instances.find(Instance);
  assert(E && "evicting an unknown instance");
  for (const ResourceUsage &U : MD.operation(E->Op).table().usages()) {
    ++Counters.AssignFreeUnits;
    size_t Slot = cycleSlot(E->Cycle + U.Cycle);
    clearBit(Slot, U.Resource);
    Owner[cellIndex(Slot, U.Resource)] = -1;
  }
  Instances.erase(Instance);
}

void BitvectorQueryModule::assignAndFree(OpId Op, int Cycle,
                                         InstanceId Instance,
                                         std::vector<InstanceId> &Evicted) {
  ++Counters.AssignFreeCalls;
  if (Config.Mode == QueryConfig::Modulo && SelfConflict[Op])
    fatalError("assignAndFree on an operation that self-conflicts at this "
               "II; the scheduler must raise the II instead");

  if (!UpdateMode) {
    // Optimistic mode: test word-at-a-time; if clean, reserve by ORing the
    // same words (one combined and+or per word is one unit of work).
    size_t WordBase;
    unsigned Phase;
    locate(Cycle, WordBase, Phase);
    const PatternRef &P = pattern(Op, Phase);
    if (!scanConflict(P, WordBase, Counters.AssignFreeUnits, Masks, Prefix)) {
      size_t Base = WordBase + static_cast<size_t>(P.FirstWord);
      ensureWords(Base + P.DenseLen);
      simd::orInto(Words.data() + Base, Masks + P.MaskBegin, P.DenseLen);
      Log.push_back({Instance, Op, Cycle});
      ++LiveCount;
      return;
    }
    transitionToUpdateMode();
  }

  // Update mode: iterate resource usages, evicting conflicting owners and
  // keeping owner fields current.
  for (const ResourceUsage &U : MD.operation(Op).table().usages()) {
    ++Counters.AssignFreeUnits;
    size_t Slot = cycleSlot(Cycle + U.Cycle);
    // ensureWords via setBit below also grows Owner; grow before testing.
    if (testBit(Slot, U.Resource)) {
      InstanceId Victim = Owner[cellIndex(Slot, U.Resource)];
      if (Victim == Instance || Victim < 0)
        fatalError("inconsistent owner fields in update mode");
      Evicted.push_back(Victim);
      evict(Victim);
    }
    setBit(Slot, U.Resource);
    if (cellIndex(Slot, U.Resource) >= Owner.size())
      Owner.resize(Words.size() * K * NumResources, -1);
    Owner[cellIndex(Slot, U.Resource)] = Instance;
  }
  [[maybe_unused]] bool Inserted = Instances.insert(Instance, Op, Cycle);
  assert(Inserted && "instance id already scheduled");
}

const BitvectorQueryModule::PatternRef *
BitvectorQueryModule::unionPatternsFor(const std::vector<OpId> &Alternatives) {
  auto It = UnionIndex.find(Alternatives);
  if (It != UnionIndex.end())
    return &UnionRefs[It->second];

  // Merge the member spans per phase: OR the dense masks into a
  // word-indexed scratch (the members are dense spans already, so this is
  // pure word arithmetic — the usages are never re-walked), then append
  // the union span to the module-local union pools. Never to the per-op
  // arena: it may be shared with concurrently querying modules.
  uint32_t Base = static_cast<uint32_t>(UnionRefs.size());
  std::vector<uint64_t> Scratch;
  for (unsigned Phase = 0; Phase < NumPhases; ++Phase) {
    int MinWord = INT_MAX, MaxWord = INT_MIN;
    for (OpId Op : Alternatives) {
      const PatternRef &P = pattern(Op, Phase);
      if (!P.DenseLen)
        continue;
      MinWord = std::min(MinWord, P.FirstWord);
      MaxWord = std::max(MaxWord, P.FirstWord + P.DenseLen - 1);
    }
    if (MaxWord >= MinWord) {
      if (Scratch.size() < static_cast<size_t>(MaxWord) + 1)
        Scratch.resize(static_cast<size_t>(MaxWord) + 1, 0);
      for (OpId Op : Alternatives) {
        const PatternRef &P = pattern(Op, Phase);
        for (unsigned I = 0; I < P.DenseLen; ++I)
          Scratch[static_cast<size_t>(P.FirstWord) + I] |=
              Masks[P.MaskBegin + I];
      }
    }
    UnionRefs.push_back(emitBitvectorPattern(Scratch, MinWord, MaxWord,
                                             UnionMasks, UnionPrefix));
  }
  UnionIndex.emplace(Alternatives, Base);
  return &UnionRefs[Base];
}

int BitvectorQueryModule::checkWithAlternatives(
    const std::vector<OpId> &Alternatives, int Cycle) {
  if (!Config.UnionAlternativeCheck || Alternatives.size() < 2)
    return ContentionQueryModule::checkWithAlternatives(Alternatives, Cycle);
  if (Config.Mode == QueryConfig::Modulo) {
    // Self-conflicting alternatives would poison the union; keep the
    // simple path when any alternative is infeasible at this II.
    for (OpId Op : Alternatives)
      if (SelfConflict[Op])
        return ContentionQueryModule::checkWithAlternatives(Alternatives,
                                                            Cycle);
  }

  // Union fast path: one branchless masked-AND scan over the OR of all
  // alternatives' words. A clean union means every alternative fits;
  // return the first. The union pass is billed as exactly one check call,
  // and only when it succeeds: on conflict the fallback below accounts
  // each per-alternative attempt itself, so billing the union call too
  // would charge 1+N calls for one answered query and skew Table 6. The
  // words scanned are real work either way and always land in CheckUnits.
  size_t WordBase;
  unsigned Phase;
  locate(Cycle, WordBase, Phase);
  const PatternRef *Union = unionPatternsFor(Alternatives);
  if (!scanConflict(Union[Phase], WordBase, Counters.CheckUnits,
                    UnionMasks.data(), UnionPrefix.data())) {
    ++Counters.CheckCalls;
    return 0;
  }

  // Some alternative conflicts; fall back to individual checks.
  return ContentionQueryModule::checkWithAlternatives(Alternatives, Cycle);
}

void BitvectorQueryModule::reset() {
  std::fill(Words.begin(), Words.end(), 0);
  Owner.clear();
  UpdateMode = false;
  Log.clear();
  LiveCount = 0;
  Instances.clear();
  retireCounters();
}
