//===- query/QueryModule.h - Contention query module interface -*- C++ -*-===//
///
/// \file
/// The contention query module of Section 7: the scheduler-facing service
/// that answers "can operation X be placed at cycle j of the current
/// partial schedule without resource contention?" and maintains the
/// reserved table as operations are assigned and freed.
///
/// Four basic functions (check / assign / free / assign&free) plus
/// check-with-alternatives, over two internal representations (discrete and
/// bitvector) and two addressing modes (linear, for basic blocks with
/// dangling boundary conditions, and modulo, for software pipelining).
///
/// Work accounting follows the paper exactly: one *work unit* is the
/// handling of a single resource usage (discrete) or a single nonempty word
/// (bitvector); assign&free's optimistic-to-update transition cost is
/// charged to it. Table 6 is produced from these counters.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_QUERY_QUERYMODULE_H
#define RMD_QUERY_QUERYMODULE_H

#include "mdesc/MachineDescription.h"

#include <cstdint>
#include <vector>

namespace rmd {

/// Identifies one scheduled operation instance; assigned by the scheduler,
/// unique among currently scheduled instances.
using InstanceId = int32_t;

/// Per-function work-unit and call counters (Table 6).
struct WorkCounters {
  uint64_t CheckCalls = 0;
  uint64_t CheckUnits = 0;
  uint64_t AssignCalls = 0;
  uint64_t AssignUnits = 0;
  uint64_t FreeCalls = 0;
  uint64_t FreeUnits = 0;
  uint64_t AssignFreeCalls = 0;
  uint64_t AssignFreeUnits = 0;
  /// Units spent rebuilding owner fields on the optimistic-to-update
  /// transition (bitvector assign&free); also included in AssignFreeUnits.
  uint64_t TransitionUnits = 0;

  /// Zeroes every field explicitly. (Self-assignment from a temporary —
  /// `*this = WorkCounters()` — invoked UB-adjacent paths under some
  /// sanitizer builds when the struct was mid-update; member-wise reset is
  /// also immune to a field silently surviving because it was added to the
  /// struct but not the reset. The static_assert below forces this list
  /// and accumulate() to be revisited when a field is added.)
  void reset() {
    CheckCalls = 0;
    CheckUnits = 0;
    AssignCalls = 0;
    AssignUnits = 0;
    FreeCalls = 0;
    FreeUnits = 0;
    AssignFreeCalls = 0;
    AssignFreeUnits = 0;
    TransitionUnits = 0;
  }

  /// Adds \p Other's counts into this (merging counters across query
  /// modules, e.g. over the II attempts of one scheduling run).
  void accumulate(const WorkCounters &Other) {
    CheckCalls += Other.CheckCalls;
    CheckUnits += Other.CheckUnits;
    AssignCalls += Other.AssignCalls;
    AssignUnits += Other.AssignUnits;
    FreeCalls += Other.FreeCalls;
    FreeUnits += Other.FreeUnits;
    AssignFreeCalls += Other.AssignFreeCalls;
    AssignFreeUnits += Other.AssignFreeUnits;
    TransitionUnits += Other.TransitionUnits;
  }

  uint64_t totalUnits() const {
    return CheckUnits + AssignUnits + FreeUnits + AssignFreeUnits;
  }
  uint64_t totalCalls() const {
    return CheckCalls + AssignCalls + FreeCalls + AssignFreeCalls;
  }
};

static_assert(sizeof(WorkCounters) == 9 * sizeof(uint64_t),
              "WorkCounters gained a field: update reset(), accumulate(), "
              "and the query.* stats publication in QueryModule.cpp");

/// Addressing mode and window of a reserved table.
struct QueryConfig {
  enum ModeKind {
    /// Cycles address a growing linear window [MinCycle, +inf). MinCycle
    /// may be negative to accommodate resource requirements dangling from
    /// predecessor basic blocks (boundary conditions, Section 1).
    Linear,
    /// Cycles are taken modulo II (a Modulo Reservation Table, for
    /// software pipelining).
    Modulo,
  };

  ModeKind Mode = Linear;

  /// Initiation interval; required when Mode == Modulo.
  int ModuloII = 0;

  /// Most negative addressable cycle (Linear mode only).
  int MinCycle = 0;

  /// Machine word width for the bitvector representation (32 or 64).
  unsigned WordBits = 64;

  /// Bitvector representation: force exactly this many cycle-bitvectors
  /// per word instead of the maximal floor(WordBits / numResources). Used
  /// to reproduce the paper's k-cycle-word columns; 0 selects the maximum.
  unsigned CyclesPerWordOverride = 0;

  /// Bitvector representation: enable the union-mask fast path in
  /// checkWithAlternatives (one OR-of-all-alternatives pass; falls back to
  /// per-alternative checks on conflict). Off by default so call counts
  /// match the paper's repeated-check formulation; identical answers
  /// either way.
  bool UnionAlternativeCheck = false;

  static QueryConfig linear(int MinCycle = 0) {
    QueryConfig C;
    C.Mode = Linear;
    C.MinCycle = MinCycle;
    return C;
  }
  static QueryConfig modulo(int II) {
    QueryConfig C;
    C.Mode = Modulo;
    C.ModuloII = II;
    return C;
  }
};

/// Abstract contention query module over an expanded machine description.
/// Implementations: DiscreteQueryModule, BitvectorQueryModule.
class ContentionQueryModule {
public:
  virtual ~ContentionQueryModule();

  /// True if \p Op can be scheduled at \p Cycle without contention.
  virtual bool check(OpId Op, int Cycle) = 0;

  /// Reserves the resources of \p Op at \p Cycle for \p Instance. The
  /// placement must be contention-free (checked in debug builds).
  virtual void assign(OpId Op, int Cycle, InstanceId Instance) = 0;

  /// Releases the resources of \p Op scheduled at \p Cycle as \p Instance.
  virtual void free(OpId Op, int Cycle, InstanceId Instance) = 0;

  /// Reserves the resources of \p Op at \p Cycle, first unscheduling any
  /// instances whose reservations conflict; their ids are appended to
  /// \p Evicted (each exactly once) and all their resources are released.
  virtual void assignAndFree(OpId Op, int Cycle, InstanceId Instance,
                             std::vector<InstanceId> &Evicted) = 0;

  /// Clears the reserved table and all bookkeeping.
  virtual void reset() = 0;

  /// Tries each alternative in turn (the paper's check-with-alt); returns
  /// the index of the first contention-free one, or -1. Each attempt is
  /// accounted as a check query. Implementations may override with a
  /// faster strategy (the paper: "other more efficient techniques could
  /// be implemented") as long as the returned alternative is the first
  /// contention-free one.
  virtual int checkWithAlternatives(const std::vector<OpId> &Alternatives,
                                    int Cycle);

  WorkCounters &counters() { return Counters; }
  const WorkCounters &counters() const { return Counters; }

protected:
  WorkCounters Counters;

  /// Work zeroed out of Counters by retireCounters(); the destructor
  /// publishes RetiredWork + Counters so per-run resets don't erase the
  /// module's lifetime accounting.
  WorkCounters RetiredWork;

  /// Implementations call this from reset() (instead of Counters.reset())
  /// so the cleared work still reaches the stats registry at destruction.
  void retireCounters() {
    RetiredWork.accumulate(Counters);
    Counters.reset();
  }

  /// When true (the default), the base destructor publishes the lifetime
  /// work to the stats registry as `query.*` counters. Wrapper modules
  /// that mirror an inner module's counters (TracingQueryModule,
  /// ShadowQueryModule) set this false so the same work is not published
  /// twice.
  bool PublishWorkToStats = true;
};

} // namespace rmd

#endif // RMD_QUERY_QUERYMODULE_H
