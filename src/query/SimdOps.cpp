//===- query/SimdOps.cpp - Vectorized word-mask kernels -------------------===//
//
// Kernel bodies for the three dispatched primitives, one per tier, plus the
// once-only tier resolution. The vector kernels use GCC/Clang generic
// vector extensions; the AVX2 variants carry a per-function target
// attribute so the rest of the build needs no architecture flags, and the
// unaligned loads go through memcpy (the compiler lowers them to movdqu /
// vmovdqu — reserved-table offsets are word-, not vector-, aligned).
//
//===----------------------------------------------------------------------===//

#include "query/SimdOps.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace rmd;
using namespace rmd::simd;

#if !defined(RMD_FORCE_SCALAR) && (defined(__x86_64__) || defined(_M_X64)) &&  \
    (defined(__GNUC__) || defined(__clang__))
#define RMD_SIMD_X86 1
#else
#define RMD_SIMD_X86 0
#endif

namespace {

//===----------------------------------------------------------------------===//
// Scalar tier (the reference semantics)
//===----------------------------------------------------------------------===//

ptrdiff_t firstConflictScalar(const uint64_t *W, const uint64_t *M, size_t N) {
  for (size_t I = 0; I < N; ++I)
    if (W[I] & M[I])
      return static_cast<ptrdiff_t>(I);
  return -1;
}

void orIntoScalar(uint64_t *W, const uint64_t *M, size_t N) {
  for (size_t I = 0; I < N; ++I)
    W[I] |= M[I];
}

uint64_t orIntoCheckScalar(uint64_t *W, const uint64_t *M, size_t N) {
  uint64_t Clash = 0;
  for (size_t I = 0; I < N; ++I) {
    Clash |= W[I] & M[I];
    W[I] |= M[I];
  }
  return Clash;
}

void andNotIntoScalar(uint64_t *W, const uint64_t *M, size_t N) {
  for (size_t I = 0; I < N; ++I)
    W[I] &= ~M[I];
}

#if RMD_SIMD_X86

//===----------------------------------------------------------------------===//
// SSE2 tier (128-bit; baseline on x86-64, no runtime probe needed)
//===----------------------------------------------------------------------===//

using V2 = uint64_t __attribute__((vector_size(16)));

ptrdiff_t firstConflictSse2(const uint64_t *W, const uint64_t *M, size_t N) {
  size_t I = 0;
  for (; I + 2 <= N; I += 2) {
    V2 A, B;
    std::memcpy(&A, W + I, sizeof(V2));
    std::memcpy(&B, M + I, sizeof(V2));
    V2 C = A & B;
    if (C[0] | C[1])
      return static_cast<ptrdiff_t>(C[0] ? I : I + 1);
  }
  if (I < N && (W[I] & M[I]))
    return static_cast<ptrdiff_t>(I);
  return -1;
}

void orIntoSse2(uint64_t *W, const uint64_t *M, size_t N) {
  size_t I = 0;
  for (; I + 2 <= N; I += 2) {
    V2 A, B;
    std::memcpy(&A, W + I, sizeof(V2));
    std::memcpy(&B, M + I, sizeof(V2));
    A |= B;
    std::memcpy(W + I, &A, sizeof(V2));
  }
  if (I < N)
    W[I] |= M[I];
}

uint64_t orIntoCheckSse2(uint64_t *W, const uint64_t *M, size_t N) {
  V2 Clash = {0, 0};
  size_t I = 0;
  for (; I + 2 <= N; I += 2) {
    V2 A, B;
    std::memcpy(&A, W + I, sizeof(V2));
    std::memcpy(&B, M + I, sizeof(V2));
    Clash |= A & B;
    A |= B;
    std::memcpy(W + I, &A, sizeof(V2));
  }
  uint64_t Tail = 0;
  if (I < N) {
    Tail = W[I] & M[I];
    W[I] |= M[I];
  }
  return Clash[0] | Clash[1] | Tail;
}

void andNotIntoSse2(uint64_t *W, const uint64_t *M, size_t N) {
  size_t I = 0;
  for (; I + 2 <= N; I += 2) {
    V2 A, B;
    std::memcpy(&A, W + I, sizeof(V2));
    std::memcpy(&B, M + I, sizeof(V2));
    A &= ~B;
    std::memcpy(W + I, &A, sizeof(V2));
  }
  if (I < N)
    W[I] &= ~M[I];
}

//===----------------------------------------------------------------------===//
// AVX2 tier (256-bit; per-function target attribute + cpuid probe)
//===----------------------------------------------------------------------===//

using V4 = uint64_t __attribute__((vector_size(32)));

__attribute__((target("avx2"))) ptrdiff_t
firstConflictAvx2(const uint64_t *W, const uint64_t *M, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    V4 A, B;
    std::memcpy(&A, W + I, sizeof(V4));
    std::memcpy(&B, M + I, sizeof(V4));
    V4 C = A & B;
    if (C[0] | C[1] | C[2] | C[3]) {
      // Abort-on-first-conflict accounting needs the first hot lane.
      for (size_t L = 0; L < 4; ++L)
        if (C[L])
          return static_cast<ptrdiff_t>(I + L);
    }
  }
  for (; I < N; ++I)
    if (W[I] & M[I])
      return static_cast<ptrdiff_t>(I);
  return -1;
}

__attribute__((target("avx2"))) void orIntoAvx2(uint64_t *W, const uint64_t *M,
                                                size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    V4 A, B;
    std::memcpy(&A, W + I, sizeof(V4));
    std::memcpy(&B, M + I, sizeof(V4));
    A |= B;
    std::memcpy(W + I, &A, sizeof(V4));
  }
  for (; I < N; ++I)
    W[I] |= M[I];
}

__attribute__((target("avx2"))) uint64_t
orIntoCheckAvx2(uint64_t *W, const uint64_t *M, size_t N) {
  V4 Clash = {0, 0, 0, 0};
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    V4 A, B;
    std::memcpy(&A, W + I, sizeof(V4));
    std::memcpy(&B, M + I, sizeof(V4));
    Clash |= A & B;
    A |= B;
    std::memcpy(W + I, &A, sizeof(V4));
  }
  uint64_t Tail = 0;
  for (; I < N; ++I) {
    Tail |= W[I] & M[I];
    W[I] |= M[I];
  }
  return Clash[0] | Clash[1] | Clash[2] | Clash[3] | Tail;
}

__attribute__((target("avx2"))) void
andNotIntoAvx2(uint64_t *W, const uint64_t *M, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    V4 A, B;
    std::memcpy(&A, W + I, sizeof(V4));
    std::memcpy(&B, M + I, sizeof(V4));
    A &= ~B;
    std::memcpy(W + I, &A, sizeof(V4));
  }
  for (; I < N; ++I)
    W[I] &= ~M[I];
}

#endif // RMD_SIMD_X86

//===----------------------------------------------------------------------===//
// Tier resolution
//===----------------------------------------------------------------------===//

/// Best tier this build and host can execute.
Tier hostTier() {
#if RMD_SIMD_X86
  return __builtin_cpu_supports("avx2") ? Tier::Avx2 : Tier::Sse2;
#else
  return Tier::Scalar;
#endif
}

/// Applies the RMD_SIMD override, clamped to the host tier.
Tier resolveTier() {
  Tier Host = hostTier();
  const char *Env = std::getenv("RMD_SIMD");
  if (!Env || !*Env)
    return Host;
  std::string S(Env);
  for (char &C : S)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (S == "off" || S == "scalar" || S == "0" || S == "none")
    return Tier::Scalar;
  if (S == "sse2")
    return Host < Tier::Sse2 ? Host : Tier::Sse2;
  if (S == "avx2")
    return Host < Tier::Avx2 ? Host : Tier::Avx2;
  return Host; // "auto" and unknown values select the best available
}

Tier &activeTierStorage() {
  static Tier T = resolveTier();
  return T;
}

} // namespace

const char *rmd::simd::tierName(Tier T) {
  switch (T) {
  case Tier::Scalar:
    return "scalar";
  case Tier::Sse2:
    return "sse2";
  case Tier::Avx2:
    return "avx2";
  }
  return "scalar";
}

Tier rmd::simd::activeTier() { return activeTierStorage(); }

Tier rmd::simd::forceTier(Tier T) {
  Tier Host = hostTier();
  Tier Clamped = T < Host ? T : Host;
  Tier Prev = activeTierStorage();
  activeTierStorage() = Clamped;
  return Prev;
}

ptrdiff_t rmd::simd::firstConflictDispatch(const uint64_t *Words,
                                           const uint64_t *Masks, size_t N) {
#if RMD_SIMD_X86
  switch (activeTierStorage()) {
  case Tier::Avx2:
    return firstConflictAvx2(Words, Masks, N);
  case Tier::Sse2:
    return firstConflictSse2(Words, Masks, N);
  case Tier::Scalar:
    break;
  }
#endif
  return firstConflictScalar(Words, Masks, N);
}

void rmd::simd::orIntoDispatch(uint64_t *Words, const uint64_t *Masks,
                               size_t N) {
#if RMD_SIMD_X86
  switch (activeTierStorage()) {
  case Tier::Avx2:
    return orIntoAvx2(Words, Masks, N);
  case Tier::Sse2:
    return orIntoSse2(Words, Masks, N);
  case Tier::Scalar:
    break;
  }
#endif
  orIntoScalar(Words, Masks, N);
}

uint64_t rmd::simd::orIntoCheckDispatch(uint64_t *Words, const uint64_t *Masks,
                                        size_t N) {
#if RMD_SIMD_X86
  switch (activeTierStorage()) {
  case Tier::Avx2:
    return orIntoCheckAvx2(Words, Masks, N);
  case Tier::Sse2:
    return orIntoCheckSse2(Words, Masks, N);
  case Tier::Scalar:
    break;
  }
#endif
  return orIntoCheckScalar(Words, Masks, N);
}

void rmd::simd::andNotIntoDispatch(uint64_t *Words, const uint64_t *Masks,
                                   size_t N) {
#if RMD_SIMD_X86
  switch (activeTierStorage()) {
  case Tier::Avx2:
    return andNotIntoAvx2(Words, Masks, N);
  case Tier::Sse2:
    return andNotIntoSse2(Words, Masks, N);
  case Tier::Scalar:
    break;
  }
#endif
  andNotIntoScalar(Words, Masks, N);
}
