//===- query/QueryModule.cpp ----------------------------------------------===//

#include "query/QueryModule.h"

using namespace rmd;

ContentionQueryModule::~ContentionQueryModule() = default;

int ContentionQueryModule::checkWithAlternatives(
    const std::vector<OpId> &Alternatives, int Cycle) {
  for (size_t I = 0; I < Alternatives.size(); ++I)
    if (check(Alternatives[I], Cycle))
      return static_cast<int>(I);
  return -1;
}
