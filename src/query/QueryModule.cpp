//===- query/QueryModule.cpp ----------------------------------------------===//

#include "query/QueryModule.h"

#include "support/Stats.h"

using namespace rmd;

ContentionQueryModule::~ContentionQueryModule() {
  if (!PublishWorkToStats)
    return;
  // Publish the module's lifetime work into the registry so every
  // --stats-json snapshot carries the paper's Table 6 accounting. Done at
  // destruction (not per call) to keep the query hot path free of even a
  // relaxed atomic add.
  static StatCounter CheckCalls("query.check_calls");
  static StatCounter CheckUnits("query.check_units");
  static StatCounter AssignCalls("query.assign_calls");
  static StatCounter AssignUnits("query.assign_units");
  static StatCounter FreeCalls("query.free_calls");
  static StatCounter FreeUnits("query.free_units");
  static StatCounter AssignFreeCalls("query.assignfree_calls");
  static StatCounter AssignFreeUnits("query.assignfree_units");
  static StatCounter TransitionUnits("query.transition_units");
  WorkCounters Lifetime = RetiredWork;
  Lifetime.accumulate(Counters);
  auto Publish = [](const StatCounter &C, uint64_t V) {
    if (V)
      C.add(V);
  };
  Publish(CheckCalls, Lifetime.CheckCalls);
  Publish(CheckUnits, Lifetime.CheckUnits);
  Publish(AssignCalls, Lifetime.AssignCalls);
  Publish(AssignUnits, Lifetime.AssignUnits);
  Publish(FreeCalls, Lifetime.FreeCalls);
  Publish(FreeUnits, Lifetime.FreeUnits);
  Publish(AssignFreeCalls, Lifetime.AssignFreeCalls);
  Publish(AssignFreeUnits, Lifetime.AssignFreeUnits);
  Publish(TransitionUnits, Lifetime.TransitionUnits);
}

int ContentionQueryModule::checkWithAlternatives(
    const std::vector<OpId> &Alternatives, int Cycle) {
  for (size_t I = 0; I < Alternatives.size(); ++I)
    if (check(Alternatives[I], Cycle))
      return static_cast<int>(I);
  return -1;
}
