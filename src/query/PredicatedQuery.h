//===- query/PredicatedQuery.h - Predicate-aware reserved table -*- C++ -*-===//
///
/// \file
/// The discrete representation extended with a predicate field per
/// reserved entry, as the paper's Section 5 describes for the Enhanced
/// Modulo Scheduling scheme (Warter et al., MICRO-25): in IF-converted
/// code, two operations guarded by *disjoint* predicates can never execute
/// in the same iteration, so they may share resources cycle-for-cycle.
///
/// Predicates use a simple complementary-pair model sufficient for
/// IF-conversion: predicate 0 is "always"; +k and -k are a complementary
/// pair from the k-th compare. Two reservations may coexist in one cell
/// iff their predicates are complementary (p == -q, p != 0). This is
/// exactly the "additional field" cost the paper charges to the discrete
/// representation: every function iterates over resource usages, and each
/// cell may hold up to two owners.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_QUERY_PREDICATEDQUERY_H
#define RMD_QUERY_PREDICATEDQUERY_H

#include "query/QueryModule.h"

#include <unordered_map>

namespace rmd {

/// Predicate handle: 0 = always executes; +k / -k are complementary.
using PredicateId = int32_t;

/// True if operations guarded by \p A and \p B can never both execute in
/// one iteration.
inline bool predicatesDisjoint(PredicateId A, PredicateId B) {
  return A != 0 && A == -B;
}

/// Discrete reserved table with per-entry predicate fields. Not a
/// ContentionQueryModule subclass: its query surface carries the predicate
/// of the operation being placed.
class PredicatedQueryModule {
public:
  /// \p MD must be expanded. Keeps a reference; \p MD must outlive this.
  PredicatedQueryModule(const MachineDescription &MD, QueryConfig Config);

  /// True if \p Op guarded by \p Pred fits at \p Cycle: every cell it
  /// needs is empty or held only by reservations with disjoint predicates.
  bool check(OpId Op, int Cycle, PredicateId Pred);

  /// Reserves \p Op's resources under \p Pred (must be contention-free).
  void assign(OpId Op, int Cycle, PredicateId Pred, InstanceId Instance);

  /// Releases \p Instance's reservations.
  void free(OpId Op, int Cycle, InstanceId Instance);

  void reset();

  WorkCounters &counters() { return Counters; }

private:
  size_t slotIndex(int Cycle, int UsageCycle);
  void ensureCycles(size_t CycleCount);

  struct Entry {
    PredicateId Pred;
    InstanceId Instance;
  };

  const MachineDescription &MD;
  QueryConfig Config;
  size_t NumResources;

  /// Cells[slot * NumResources + r]: reservations sharing the cell (at
  /// most 2, complementary).
  std::vector<std::vector<Entry>> Cells;
  size_t NumSlots = 0;

  struct InstanceInfo {
    OpId Op;
    int Cycle;
  };
  std::unordered_map<InstanceId, InstanceInfo> Instances;

  WorkCounters Counters;
};

} // namespace rmd

#endif // RMD_QUERY_PREDICATEDQUERY_H
