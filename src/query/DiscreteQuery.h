//===- query/DiscreteQuery.h - Discrete reserved table ---------*- C++ -*-===//
///
/// \file
/// The discrete representation of Section 5/7: the reserved table has one
/// entry per (resource, cycle), holding a reserved flag and the identity of
/// the operation instance that consumes the resource (as in Rau's Iterative
/// Modulo Scheduler). Every basic function iterates over the resource
/// usages of the queried operation's reservation table; one usage handled
/// is one work unit.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_QUERY_DISCRETEQUERY_H
#define RMD_QUERY_DISCRETEQUERY_H

#include "query/QueryModule.h"

#include <iosfwd>
#include <unordered_map>

namespace rmd {

/// True if \p RT collides with itself under a modulo reservation table of
/// initiation interval \p II: two usages of one resource land in the same
/// slot. Such an operation cannot be modulo-scheduled at that II.
bool hasModuloSelfConflict(const ReservationTable &RT, int II);

/// Discrete-representation contention query module.
class DiscreteQueryModule : public ContentionQueryModule {
public:
  /// \p MD must be expanded. The module keeps a reference to \p MD; it must
  /// outlive the module.
  DiscreteQueryModule(const MachineDescription &MD, QueryConfig Config);

  bool check(OpId Op, int Cycle) override;
  void assign(OpId Op, int Cycle, InstanceId Instance) override;
  void free(OpId Op, int Cycle, InstanceId Instance) override;
  void assignAndFree(OpId Op, int Cycle, InstanceId Instance,
                     std::vector<InstanceId> &Evicted) override;
  void reset() override;

  /// Bytes of reserved-table storage currently allocated (memory metric).
  size_t reservedTableBytes() const;

  /// Renders the occupancy of cycles [\p FirstCycle, \p LastCycle]: one
  /// row per resource, owner instance ids in the cells ('.' = free). The
  /// scheduler-debugging view of the reserved table.
  void renderOccupancy(std::ostream &OS, int FirstCycle,
                       int LastCycle) const;

  /// An opaque copy of the module's entire schedule state. Schedulers that
  /// explore alternatives (e.g. trying several II offsets before
  /// committing) snapshot, mutate, and restore. Work counters are part of
  /// the snapshot: restore() rewinds them to the snapshot point, so a
  /// discarded search branch leaves no trace in Table 6 accounting — the
  /// caller that wants to bill abandoned work can accumulate() the
  /// pre-restore counters explicitly.
  struct Snapshot {
    std::vector<uint8_t> Reserved;
    std::vector<InstanceId> Owner;
    size_t NumSlots = 0;
    std::unordered_map<InstanceId, std::pair<OpId, int>> Instances;
    WorkCounters Counters;
  };

  Snapshot snapshot() const;
  void restore(const Snapshot &S);

private:
  /// Maps a schedule cycle and usage offset to a reserved-table slot index,
  /// growing the table in Linear mode as needed.
  size_t slotIndex(int Cycle, int UsageCycle);

  /// Releases every reservation of \p Instance (eviction path); counts one
  /// unit per usage into AssignFreeUnits.
  void evict(InstanceId Instance);

  void ensureCycles(size_t CycleCount);

  const MachineDescription &MD;
  QueryConfig Config;
  size_t NumResources;

  /// Reserved flags and owners, row-major by cycle slot:
  /// index = slot * NumResources + resource.
  std::vector<uint8_t> Reserved;
  std::vector<InstanceId> Owner;
  size_t NumSlots = 0;

  struct InstanceInfo {
    OpId Op;
    int Cycle;
  };
  std::unordered_map<InstanceId, InstanceInfo> Instances;

  /// Modulo mode: SelfConflict[op] is true when two usages of op map to the
  /// same (resource, slot) under this II; such an op can never be placed.
  std::vector<uint8_t> SelfConflict;
};

} // namespace rmd

#endif // RMD_QUERY_DISCRETEQUERY_H
