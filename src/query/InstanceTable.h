//===- query/InstanceTable.h - Flat scheduled-instance map -----*- C++ -*-===//
///
/// \file
/// An open-addressing map from InstanceId to (operation, issue cycle) for
/// the bitvector module's scheduled-instance bookkeeping. The standard
/// node-based unordered_map paid one allocation per assign and one free per
/// free — malloc traffic on the scheduler's hottest path. This table is a
/// single flat array: linear probing, backward-shift deletion (no
/// tombstones), power-of-two capacity, and a multiplicative hash, so
/// steady-state assign/free traffic allocates nothing.
///
/// Iteration order is slot order, which is deterministic for a given call
/// sequence — the owner-field rebuild that iterates this table stays
/// reproducible run to run.
///
//===----------------------------------------------------------------------===//

#ifndef RMD_QUERY_INSTANCETABLE_H
#define RMD_QUERY_INSTANCETABLE_H

#include "query/QueryModule.h"

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

namespace rmd {

/// Maps live InstanceIds to their (op, issue cycle). Ids may be negative
/// (dangling boundary reservations use ids below -1); only the sentinel
/// INT32_MIN is reserved.
class InstanceTable {
public:
  struct Entry {
    InstanceId Id = Empty;
    OpId Op = 0;
    int32_t Cycle = 0;
  };

  InstanceTable() { Slots.resize(InitialCapacity); }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// Inserts \p Id; returns false (and changes nothing) if already present.
  bool insert(InstanceId Id, OpId Op, int32_t Cycle) {
    assert(Id != Empty && "INT32_MIN is the empty-slot sentinel");
    if ((Count + 1) * 4 > Slots.size() * 3)
      grow();
    size_t I = slotFor(Id);
    while (Slots[I].Id != Empty) {
      if (Slots[I].Id == Id)
        return false;
      I = (I + 1) & (Slots.size() - 1);
    }
    Slots[I] = Entry{Id, Op, Cycle};
    ++Count;
    return true;
  }

  /// The live entry of \p Id, or nullptr.
  const Entry *find(InstanceId Id) const {
    size_t I = slotFor(Id);
    while (Slots[I].Id != Empty) {
      if (Slots[I].Id == Id)
        return &Slots[I];
      I = (I + 1) & (Slots.size() - 1);
    }
    return nullptr;
  }

  /// Removes \p Id; returns false if it was not present. Backward-shift
  /// deletion keeps probe chains tombstone-free.
  bool erase(InstanceId Id) {
    size_t I = slotFor(Id);
    while (Slots[I].Id != Id) {
      if (Slots[I].Id == Empty)
        return false;
      I = (I + 1) & (Slots.size() - 1);
    }
    size_t Mask = Slots.size() - 1;
    size_t Hole = I;
    size_t J = (I + 1) & Mask;
    while (Slots[J].Id != Empty) {
      size_t Home = slotFor(Slots[J].Id);
      // Shift J into the hole unless J's probe chain starts after the hole
      // (circular interval test).
      if (((J - Home) & Mask) >= ((J - Hole) & Mask)) {
        Slots[Hole] = Slots[J];
        Hole = J;
      }
      J = (J + 1) & Mask;
    }
    Slots[Hole].Id = Empty;
    --Count;
    return true;
  }

  /// Visits every live entry in slot order.
  template <typename Fn> void forEach(Fn &&F) const {
    for (const Entry &E : Slots)
      if (E.Id != Empty)
        F(E);
  }

  /// Empties the table, keeping the capacity (reset() is on the hot
  /// bench/scheduler restart path).
  void clear() {
    if (Count == 0)
      return;
    for (Entry &E : Slots)
      E.Id = Empty;
    Count = 0;
  }

private:
  static constexpr InstanceId Empty = std::numeric_limits<InstanceId>::min();
  static constexpr size_t InitialCapacity = 64;

  size_t slotFor(InstanceId Id) const {
    uint64_t H = static_cast<uint64_t>(static_cast<uint32_t>(Id));
    H *= 0x9e3779b97f4a7c15ull;
    return static_cast<size_t>(H >> 32) & (Slots.size() - 1);
  }

  void grow() {
    std::vector<Entry> Old = std::move(Slots);
    Slots.assign(Old.size() * 2, Entry{});
    for (const Entry &E : Old)
      if (E.Id != Empty) {
        size_t I = slotFor(E.Id);
        while (Slots[I].Id != Empty)
          I = (I + 1) & (Slots.size() - 1);
        Slots[I] = E;
      }
  }

  std::vector<Entry> Slots;
  size_t Count = 0;
};

} // namespace rmd

#endif // RMD_QUERY_INSTANCETABLE_H
