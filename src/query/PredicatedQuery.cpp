//===- query/PredicatedQuery.cpp ------------------------------------------===//

#include "query/PredicatedQuery.h"

#include <cassert>

using namespace rmd;

PredicatedQueryModule::PredicatedQueryModule(const MachineDescription &TheMD,
                                             QueryConfig TheConfig)
    : MD(TheMD), Config(TheConfig), NumResources(TheMD.numResources()) {
  assert(MD.isExpanded() && "query module requires an expanded machine");
  if (Config.Mode == QueryConfig::Modulo) {
    assert(Config.ModuloII > 0 && "modulo mode requires a positive II");
    ensureCycles(static_cast<size_t>(Config.ModuloII));
  }
}

void PredicatedQueryModule::ensureCycles(size_t CycleCount) {
  if (CycleCount <= NumSlots)
    return;
  size_t NewSlots = NumSlots == 0 ? CycleCount : NumSlots;
  while (NewSlots < CycleCount)
    NewSlots *= 2;
  Cells.resize(NewSlots * NumResources);
  NumSlots = NewSlots;
}

size_t PredicatedQueryModule::slotIndex(int Cycle, int UsageCycle) {
  int Abs = Cycle + UsageCycle;
  if (Config.Mode == QueryConfig::Modulo) {
    int Slot = Abs % Config.ModuloII;
    if (Slot < 0)
      Slot += Config.ModuloII;
    return static_cast<size_t>(Slot);
  }
  assert(Abs >= Config.MinCycle && "cycle below the linear window");
  size_t Slot = static_cast<size_t>(Abs - Config.MinCycle);
  ensureCycles(Slot + 1);
  return Slot;
}

bool PredicatedQueryModule::check(OpId Op, int Cycle, PredicateId Pred) {
  ++Counters.CheckCalls;
  for (const ResourceUsage &U : MD.operation(Op).table().usages()) {
    ++Counters.CheckUnits;
    size_t Index = slotIndex(Cycle, U.Cycle) * NumResources + U.Resource;
    for (const Entry &E : Cells[Index])
      if (!predicatesDisjoint(E.Pred, Pred))
        return false;
  }
  return true;
}

void PredicatedQueryModule::assign(OpId Op, int Cycle, PredicateId Pred,
                                   InstanceId Instance) {
  ++Counters.AssignCalls;
  for (const ResourceUsage &U : MD.operation(Op).table().usages()) {
    ++Counters.AssignUnits;
    size_t Index = slotIndex(Cycle, U.Cycle) * NumResources + U.Resource;
    for ([[maybe_unused]] const Entry &E : Cells[Index])
      assert(predicatesDisjoint(E.Pred, Pred) &&
             "assign over a non-disjoint reservation");
    Cells[Index].push_back(Entry{Pred, Instance});
  }
  [[maybe_unused]] bool Inserted =
      Instances.emplace(Instance, InstanceInfo{Op, Cycle}).second;
  assert(Inserted && "instance id already scheduled");
}

void PredicatedQueryModule::free(OpId Op, int Cycle, InstanceId Instance) {
  ++Counters.FreeCalls;
  for (const ResourceUsage &U : MD.operation(Op).table().usages()) {
    ++Counters.FreeUnits;
    size_t Index = slotIndex(Cycle, U.Cycle) * NumResources + U.Resource;
    auto &Cell = Cells[Index];
    bool Found = false;
    for (size_t I = 0; I < Cell.size(); ++I)
      if (Cell[I].Instance == Instance) {
        Cell.erase(Cell.begin() + static_cast<long>(I));
        Found = true;
        break;
      }
    assert(Found && "freeing an entry this instance does not hold");
    (void)Found;
  }
  [[maybe_unused]] size_t Erased = Instances.erase(Instance);
  assert(Erased == 1 && "freeing an unscheduled instance");
}

void PredicatedQueryModule::reset() {
  for (auto &Cell : Cells)
    Cell.clear();
  Instances.clear();
  Counters.reset();
}
