file(REMOVE_RECURSE
  "CMakeFiles/rmd_automaton.dir/AutomatonQuery.cpp.o"
  "CMakeFiles/rmd_automaton.dir/AutomatonQuery.cpp.o.d"
  "CMakeFiles/rmd_automaton.dir/PipelineAutomaton.cpp.o"
  "CMakeFiles/rmd_automaton.dir/PipelineAutomaton.cpp.o.d"
  "librmd_automaton.a"
  "librmd_automaton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmd_automaton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
