file(REMOVE_RECURSE
  "librmd_automaton.a"
)
