# Empty compiler generated dependencies file for rmd_automaton.
# This may be replaced when dependencies are built.
