file(REMOVE_RECURSE
  "CMakeFiles/rmd_workload.dir/Corpus.cpp.o"
  "CMakeFiles/rmd_workload.dir/Corpus.cpp.o.d"
  "CMakeFiles/rmd_workload.dir/Experiment.cpp.o"
  "CMakeFiles/rmd_workload.dir/Experiment.cpp.o.d"
  "CMakeFiles/rmd_workload.dir/Kernels.cpp.o"
  "CMakeFiles/rmd_workload.dir/Kernels.cpp.o.d"
  "CMakeFiles/rmd_workload.dir/LoopGenerator.cpp.o"
  "CMakeFiles/rmd_workload.dir/LoopGenerator.cpp.o.d"
  "CMakeFiles/rmd_workload.dir/RoleGraph.cpp.o"
  "CMakeFiles/rmd_workload.dir/RoleGraph.cpp.o.d"
  "librmd_workload.a"
  "librmd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
