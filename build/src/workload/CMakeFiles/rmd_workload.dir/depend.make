# Empty dependencies file for rmd_workload.
# This may be replaced when dependencies are built.
