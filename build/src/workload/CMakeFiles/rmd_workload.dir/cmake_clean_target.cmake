file(REMOVE_RECURSE
  "librmd_workload.a"
)
