file(REMOVE_RECURSE
  "librmd_sched.a"
)
