# Empty compiler generated dependencies file for rmd_sched.
# This may be replaced when dependencies are built.
