file(REMOVE_RECURSE
  "CMakeFiles/rmd_sched.dir/DepGraph.cpp.o"
  "CMakeFiles/rmd_sched.dir/DepGraph.cpp.o.d"
  "CMakeFiles/rmd_sched.dir/Expansion.cpp.o"
  "CMakeFiles/rmd_sched.dir/Expansion.cpp.o.d"
  "CMakeFiles/rmd_sched.dir/GraphIO.cpp.o"
  "CMakeFiles/rmd_sched.dir/GraphIO.cpp.o.d"
  "CMakeFiles/rmd_sched.dir/IterativeModuloScheduler.cpp.o"
  "CMakeFiles/rmd_sched.dir/IterativeModuloScheduler.cpp.o.d"
  "CMakeFiles/rmd_sched.dir/ListScheduler.cpp.o"
  "CMakeFiles/rmd_sched.dir/ListScheduler.cpp.o.d"
  "CMakeFiles/rmd_sched.dir/MII.cpp.o"
  "CMakeFiles/rmd_sched.dir/MII.cpp.o.d"
  "CMakeFiles/rmd_sched.dir/OperationDrivenScheduler.cpp.o"
  "CMakeFiles/rmd_sched.dir/OperationDrivenScheduler.cpp.o.d"
  "CMakeFiles/rmd_sched.dir/ScheduleRender.cpp.o"
  "CMakeFiles/rmd_sched.dir/ScheduleRender.cpp.o.d"
  "librmd_sched.a"
  "librmd_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmd_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
