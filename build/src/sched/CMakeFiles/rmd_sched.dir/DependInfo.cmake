
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/DepGraph.cpp" "src/sched/CMakeFiles/rmd_sched.dir/DepGraph.cpp.o" "gcc" "src/sched/CMakeFiles/rmd_sched.dir/DepGraph.cpp.o.d"
  "/root/repo/src/sched/Expansion.cpp" "src/sched/CMakeFiles/rmd_sched.dir/Expansion.cpp.o" "gcc" "src/sched/CMakeFiles/rmd_sched.dir/Expansion.cpp.o.d"
  "/root/repo/src/sched/GraphIO.cpp" "src/sched/CMakeFiles/rmd_sched.dir/GraphIO.cpp.o" "gcc" "src/sched/CMakeFiles/rmd_sched.dir/GraphIO.cpp.o.d"
  "/root/repo/src/sched/IterativeModuloScheduler.cpp" "src/sched/CMakeFiles/rmd_sched.dir/IterativeModuloScheduler.cpp.o" "gcc" "src/sched/CMakeFiles/rmd_sched.dir/IterativeModuloScheduler.cpp.o.d"
  "/root/repo/src/sched/ListScheduler.cpp" "src/sched/CMakeFiles/rmd_sched.dir/ListScheduler.cpp.o" "gcc" "src/sched/CMakeFiles/rmd_sched.dir/ListScheduler.cpp.o.d"
  "/root/repo/src/sched/MII.cpp" "src/sched/CMakeFiles/rmd_sched.dir/MII.cpp.o" "gcc" "src/sched/CMakeFiles/rmd_sched.dir/MII.cpp.o.d"
  "/root/repo/src/sched/OperationDrivenScheduler.cpp" "src/sched/CMakeFiles/rmd_sched.dir/OperationDrivenScheduler.cpp.o" "gcc" "src/sched/CMakeFiles/rmd_sched.dir/OperationDrivenScheduler.cpp.o.d"
  "/root/repo/src/sched/ScheduleRender.cpp" "src/sched/CMakeFiles/rmd_sched.dir/ScheduleRender.cpp.o" "gcc" "src/sched/CMakeFiles/rmd_sched.dir/ScheduleRender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/rmd_query.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/rmd_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/machines/CMakeFiles/rmd_machines.dir/DependInfo.cmake"
  "/root/repo/build/src/mdl/CMakeFiles/rmd_mdl.dir/DependInfo.cmake"
  "/root/repo/build/src/reduce/CMakeFiles/rmd_reduce.dir/DependInfo.cmake"
  "/root/repo/build/src/flm/CMakeFiles/rmd_flm.dir/DependInfo.cmake"
  "/root/repo/build/src/mdesc/CMakeFiles/rmd_mdesc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
