
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/QueryTrace.cpp" "src/verify/CMakeFiles/rmd_verify.dir/QueryTrace.cpp.o" "gcc" "src/verify/CMakeFiles/rmd_verify.dir/QueryTrace.cpp.o.d"
  "/root/repo/src/verify/ShadowQueryModule.cpp" "src/verify/CMakeFiles/rmd_verify.dir/ShadowQueryModule.cpp.o" "gcc" "src/verify/CMakeFiles/rmd_verify.dir/ShadowQueryModule.cpp.o.d"
  "/root/repo/src/verify/TraceFuzzer.cpp" "src/verify/CMakeFiles/rmd_verify.dir/TraceFuzzer.cpp.o" "gcc" "src/verify/CMakeFiles/rmd_verify.dir/TraceFuzzer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/rmd_query.dir/DependInfo.cmake"
  "/root/repo/build/src/reduce/CMakeFiles/rmd_reduce.dir/DependInfo.cmake"
  "/root/repo/build/src/flm/CMakeFiles/rmd_flm.dir/DependInfo.cmake"
  "/root/repo/build/src/mdesc/CMakeFiles/rmd_mdesc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
