# Empty dependencies file for rmd_verify.
# This may be replaced when dependencies are built.
