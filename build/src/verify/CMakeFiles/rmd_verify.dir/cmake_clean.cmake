file(REMOVE_RECURSE
  "CMakeFiles/rmd_verify.dir/QueryTrace.cpp.o"
  "CMakeFiles/rmd_verify.dir/QueryTrace.cpp.o.d"
  "CMakeFiles/rmd_verify.dir/ShadowQueryModule.cpp.o"
  "CMakeFiles/rmd_verify.dir/ShadowQueryModule.cpp.o.d"
  "CMakeFiles/rmd_verify.dir/TraceFuzzer.cpp.o"
  "CMakeFiles/rmd_verify.dir/TraceFuzzer.cpp.o.d"
  "librmd_verify.a"
  "librmd_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmd_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
