file(REMOVE_RECURSE
  "librmd_verify.a"
)
