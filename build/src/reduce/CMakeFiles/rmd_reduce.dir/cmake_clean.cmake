file(REMOVE_RECURSE
  "CMakeFiles/rmd_reduce.dir/ExactCover.cpp.o"
  "CMakeFiles/rmd_reduce.dir/ExactCover.cpp.o.d"
  "CMakeFiles/rmd_reduce.dir/Explain.cpp.o"
  "CMakeFiles/rmd_reduce.dir/Explain.cpp.o.d"
  "CMakeFiles/rmd_reduce.dir/GeneratingSet.cpp.o"
  "CMakeFiles/rmd_reduce.dir/GeneratingSet.cpp.o.d"
  "CMakeFiles/rmd_reduce.dir/Metrics.cpp.o"
  "CMakeFiles/rmd_reduce.dir/Metrics.cpp.o.d"
  "CMakeFiles/rmd_reduce.dir/Reduction.cpp.o"
  "CMakeFiles/rmd_reduce.dir/Reduction.cpp.o.d"
  "CMakeFiles/rmd_reduce.dir/Selection.cpp.o"
  "CMakeFiles/rmd_reduce.dir/Selection.cpp.o.d"
  "CMakeFiles/rmd_reduce.dir/SynthesizedResource.cpp.o"
  "CMakeFiles/rmd_reduce.dir/SynthesizedResource.cpp.o.d"
  "librmd_reduce.a"
  "librmd_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmd_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
