
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reduce/ExactCover.cpp" "src/reduce/CMakeFiles/rmd_reduce.dir/ExactCover.cpp.o" "gcc" "src/reduce/CMakeFiles/rmd_reduce.dir/ExactCover.cpp.o.d"
  "/root/repo/src/reduce/Explain.cpp" "src/reduce/CMakeFiles/rmd_reduce.dir/Explain.cpp.o" "gcc" "src/reduce/CMakeFiles/rmd_reduce.dir/Explain.cpp.o.d"
  "/root/repo/src/reduce/GeneratingSet.cpp" "src/reduce/CMakeFiles/rmd_reduce.dir/GeneratingSet.cpp.o" "gcc" "src/reduce/CMakeFiles/rmd_reduce.dir/GeneratingSet.cpp.o.d"
  "/root/repo/src/reduce/Metrics.cpp" "src/reduce/CMakeFiles/rmd_reduce.dir/Metrics.cpp.o" "gcc" "src/reduce/CMakeFiles/rmd_reduce.dir/Metrics.cpp.o.d"
  "/root/repo/src/reduce/Reduction.cpp" "src/reduce/CMakeFiles/rmd_reduce.dir/Reduction.cpp.o" "gcc" "src/reduce/CMakeFiles/rmd_reduce.dir/Reduction.cpp.o.d"
  "/root/repo/src/reduce/Selection.cpp" "src/reduce/CMakeFiles/rmd_reduce.dir/Selection.cpp.o" "gcc" "src/reduce/CMakeFiles/rmd_reduce.dir/Selection.cpp.o.d"
  "/root/repo/src/reduce/SynthesizedResource.cpp" "src/reduce/CMakeFiles/rmd_reduce.dir/SynthesizedResource.cpp.o" "gcc" "src/reduce/CMakeFiles/rmd_reduce.dir/SynthesizedResource.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flm/CMakeFiles/rmd_flm.dir/DependInfo.cmake"
  "/root/repo/build/src/mdesc/CMakeFiles/rmd_mdesc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
