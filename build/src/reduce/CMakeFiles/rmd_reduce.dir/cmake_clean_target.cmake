file(REMOVE_RECURSE
  "librmd_reduce.a"
)
