# Empty compiler generated dependencies file for rmd_reduce.
# This may be replaced when dependencies are built.
