# Empty compiler generated dependencies file for rmd_flm.
# This may be replaced when dependencies are built.
