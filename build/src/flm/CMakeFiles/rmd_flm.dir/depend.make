# Empty dependencies file for rmd_flm.
# This may be replaced when dependencies are built.
