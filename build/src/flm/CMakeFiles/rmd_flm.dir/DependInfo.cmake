
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flm/ForbiddenLatencyMatrix.cpp" "src/flm/CMakeFiles/rmd_flm.dir/ForbiddenLatencyMatrix.cpp.o" "gcc" "src/flm/CMakeFiles/rmd_flm.dir/ForbiddenLatencyMatrix.cpp.o.d"
  "/root/repo/src/flm/LatencySet.cpp" "src/flm/CMakeFiles/rmd_flm.dir/LatencySet.cpp.o" "gcc" "src/flm/CMakeFiles/rmd_flm.dir/LatencySet.cpp.o.d"
  "/root/repo/src/flm/MatrixDiff.cpp" "src/flm/CMakeFiles/rmd_flm.dir/MatrixDiff.cpp.o" "gcc" "src/flm/CMakeFiles/rmd_flm.dir/MatrixDiff.cpp.o.d"
  "/root/repo/src/flm/OperationClasses.cpp" "src/flm/CMakeFiles/rmd_flm.dir/OperationClasses.cpp.o" "gcc" "src/flm/CMakeFiles/rmd_flm.dir/OperationClasses.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mdesc/CMakeFiles/rmd_mdesc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
