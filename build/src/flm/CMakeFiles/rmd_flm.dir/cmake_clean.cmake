file(REMOVE_RECURSE
  "CMakeFiles/rmd_flm.dir/ForbiddenLatencyMatrix.cpp.o"
  "CMakeFiles/rmd_flm.dir/ForbiddenLatencyMatrix.cpp.o.d"
  "CMakeFiles/rmd_flm.dir/LatencySet.cpp.o"
  "CMakeFiles/rmd_flm.dir/LatencySet.cpp.o.d"
  "CMakeFiles/rmd_flm.dir/MatrixDiff.cpp.o"
  "CMakeFiles/rmd_flm.dir/MatrixDiff.cpp.o.d"
  "CMakeFiles/rmd_flm.dir/OperationClasses.cpp.o"
  "CMakeFiles/rmd_flm.dir/OperationClasses.cpp.o.d"
  "librmd_flm.a"
  "librmd_flm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmd_flm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
