file(REMOVE_RECURSE
  "librmd_flm.a"
)
