file(REMOVE_RECURSE
  "CMakeFiles/rmd_mdl.dir/CppGen.cpp.o"
  "CMakeFiles/rmd_mdl.dir/CppGen.cpp.o.d"
  "CMakeFiles/rmd_mdl.dir/Lexer.cpp.o"
  "CMakeFiles/rmd_mdl.dir/Lexer.cpp.o.d"
  "CMakeFiles/rmd_mdl.dir/Parser.cpp.o"
  "CMakeFiles/rmd_mdl.dir/Parser.cpp.o.d"
  "CMakeFiles/rmd_mdl.dir/Writer.cpp.o"
  "CMakeFiles/rmd_mdl.dir/Writer.cpp.o.d"
  "librmd_mdl.a"
  "librmd_mdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmd_mdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
