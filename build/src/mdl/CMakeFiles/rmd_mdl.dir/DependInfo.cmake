
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mdl/CppGen.cpp" "src/mdl/CMakeFiles/rmd_mdl.dir/CppGen.cpp.o" "gcc" "src/mdl/CMakeFiles/rmd_mdl.dir/CppGen.cpp.o.d"
  "/root/repo/src/mdl/Lexer.cpp" "src/mdl/CMakeFiles/rmd_mdl.dir/Lexer.cpp.o" "gcc" "src/mdl/CMakeFiles/rmd_mdl.dir/Lexer.cpp.o.d"
  "/root/repo/src/mdl/Parser.cpp" "src/mdl/CMakeFiles/rmd_mdl.dir/Parser.cpp.o" "gcc" "src/mdl/CMakeFiles/rmd_mdl.dir/Parser.cpp.o.d"
  "/root/repo/src/mdl/Writer.cpp" "src/mdl/CMakeFiles/rmd_mdl.dir/Writer.cpp.o" "gcc" "src/mdl/CMakeFiles/rmd_mdl.dir/Writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mdesc/CMakeFiles/rmd_mdesc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
