# Empty compiler generated dependencies file for rmd_mdl.
# This may be replaced when dependencies are built.
