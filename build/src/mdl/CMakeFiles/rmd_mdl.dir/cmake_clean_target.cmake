file(REMOVE_RECURSE
  "librmd_mdl.a"
)
