
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machines/Alpha21064.cpp" "src/machines/CMakeFiles/rmd_machines.dir/Alpha21064.cpp.o" "gcc" "src/machines/CMakeFiles/rmd_machines.dir/Alpha21064.cpp.o.d"
  "/root/repo/src/machines/Cydra5.cpp" "src/machines/CMakeFiles/rmd_machines.dir/Cydra5.cpp.o" "gcc" "src/machines/CMakeFiles/rmd_machines.dir/Cydra5.cpp.o.d"
  "/root/repo/src/machines/Fig1Machine.cpp" "src/machines/CMakeFiles/rmd_machines.dir/Fig1Machine.cpp.o" "gcc" "src/machines/CMakeFiles/rmd_machines.dir/Fig1Machine.cpp.o.d"
  "/root/repo/src/machines/M88100.cpp" "src/machines/CMakeFiles/rmd_machines.dir/M88100.cpp.o" "gcc" "src/machines/CMakeFiles/rmd_machines.dir/M88100.cpp.o.d"
  "/root/repo/src/machines/MdlModel.cpp" "src/machines/CMakeFiles/rmd_machines.dir/MdlModel.cpp.o" "gcc" "src/machines/CMakeFiles/rmd_machines.dir/MdlModel.cpp.o.d"
  "/root/repo/src/machines/MipsR3000.cpp" "src/machines/CMakeFiles/rmd_machines.dir/MipsR3000.cpp.o" "gcc" "src/machines/CMakeFiles/rmd_machines.dir/MipsR3000.cpp.o.d"
  "/root/repo/src/machines/PlayDoh.cpp" "src/machines/CMakeFiles/rmd_machines.dir/PlayDoh.cpp.o" "gcc" "src/machines/CMakeFiles/rmd_machines.dir/PlayDoh.cpp.o.d"
  "/root/repo/src/machines/ScaledVliw.cpp" "src/machines/CMakeFiles/rmd_machines.dir/ScaledVliw.cpp.o" "gcc" "src/machines/CMakeFiles/rmd_machines.dir/ScaledVliw.cpp.o.d"
  "/root/repo/src/machines/ToyVliw.cpp" "src/machines/CMakeFiles/rmd_machines.dir/ToyVliw.cpp.o" "gcc" "src/machines/CMakeFiles/rmd_machines.dir/ToyVliw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mdesc/CMakeFiles/rmd_mdesc.dir/DependInfo.cmake"
  "/root/repo/build/src/mdl/CMakeFiles/rmd_mdl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
