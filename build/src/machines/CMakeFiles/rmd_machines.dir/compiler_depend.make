# Empty compiler generated dependencies file for rmd_machines.
# This may be replaced when dependencies are built.
