file(REMOVE_RECURSE
  "CMakeFiles/rmd_machines.dir/Alpha21064.cpp.o"
  "CMakeFiles/rmd_machines.dir/Alpha21064.cpp.o.d"
  "CMakeFiles/rmd_machines.dir/Cydra5.cpp.o"
  "CMakeFiles/rmd_machines.dir/Cydra5.cpp.o.d"
  "CMakeFiles/rmd_machines.dir/Fig1Machine.cpp.o"
  "CMakeFiles/rmd_machines.dir/Fig1Machine.cpp.o.d"
  "CMakeFiles/rmd_machines.dir/M88100.cpp.o"
  "CMakeFiles/rmd_machines.dir/M88100.cpp.o.d"
  "CMakeFiles/rmd_machines.dir/MdlModel.cpp.o"
  "CMakeFiles/rmd_machines.dir/MdlModel.cpp.o.d"
  "CMakeFiles/rmd_machines.dir/MipsR3000.cpp.o"
  "CMakeFiles/rmd_machines.dir/MipsR3000.cpp.o.d"
  "CMakeFiles/rmd_machines.dir/PlayDoh.cpp.o"
  "CMakeFiles/rmd_machines.dir/PlayDoh.cpp.o.d"
  "CMakeFiles/rmd_machines.dir/ScaledVliw.cpp.o"
  "CMakeFiles/rmd_machines.dir/ScaledVliw.cpp.o.d"
  "CMakeFiles/rmd_machines.dir/ToyVliw.cpp.o"
  "CMakeFiles/rmd_machines.dir/ToyVliw.cpp.o.d"
  "librmd_machines.a"
  "librmd_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmd_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
