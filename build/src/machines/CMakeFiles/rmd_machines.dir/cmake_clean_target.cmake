file(REMOVE_RECURSE
  "librmd_machines.a"
)
