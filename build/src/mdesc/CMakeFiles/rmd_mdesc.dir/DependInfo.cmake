
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mdesc/Lint.cpp" "src/mdesc/CMakeFiles/rmd_mdesc.dir/Lint.cpp.o" "gcc" "src/mdesc/CMakeFiles/rmd_mdesc.dir/Lint.cpp.o.d"
  "/root/repo/src/mdesc/MachineDescription.cpp" "src/mdesc/CMakeFiles/rmd_mdesc.dir/MachineDescription.cpp.o" "gcc" "src/mdesc/CMakeFiles/rmd_mdesc.dir/MachineDescription.cpp.o.d"
  "/root/repo/src/mdesc/Render.cpp" "src/mdesc/CMakeFiles/rmd_mdesc.dir/Render.cpp.o" "gcc" "src/mdesc/CMakeFiles/rmd_mdesc.dir/Render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
