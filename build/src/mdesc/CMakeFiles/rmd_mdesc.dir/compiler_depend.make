# Empty compiler generated dependencies file for rmd_mdesc.
# This may be replaced when dependencies are built.
