file(REMOVE_RECURSE
  "CMakeFiles/rmd_mdesc.dir/Lint.cpp.o"
  "CMakeFiles/rmd_mdesc.dir/Lint.cpp.o.d"
  "CMakeFiles/rmd_mdesc.dir/MachineDescription.cpp.o"
  "CMakeFiles/rmd_mdesc.dir/MachineDescription.cpp.o.d"
  "CMakeFiles/rmd_mdesc.dir/Render.cpp.o"
  "CMakeFiles/rmd_mdesc.dir/Render.cpp.o.d"
  "librmd_mdesc.a"
  "librmd_mdesc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmd_mdesc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
