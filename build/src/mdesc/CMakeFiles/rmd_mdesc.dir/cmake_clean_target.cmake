file(REMOVE_RECURSE
  "librmd_mdesc.a"
)
