file(REMOVE_RECURSE
  "CMakeFiles/rmd_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/rmd_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/rmd_support.dir/TextTable.cpp.o"
  "CMakeFiles/rmd_support.dir/TextTable.cpp.o.d"
  "librmd_support.a"
  "librmd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
