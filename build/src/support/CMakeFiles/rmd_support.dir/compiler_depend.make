# Empty compiler generated dependencies file for rmd_support.
# This may be replaced when dependencies are built.
