file(REMOVE_RECURSE
  "librmd_support.a"
)
