file(REMOVE_RECURSE
  "CMakeFiles/rmd_query.dir/BitvectorQuery.cpp.o"
  "CMakeFiles/rmd_query.dir/BitvectorQuery.cpp.o.d"
  "CMakeFiles/rmd_query.dir/DiscreteQuery.cpp.o"
  "CMakeFiles/rmd_query.dir/DiscreteQuery.cpp.o.d"
  "CMakeFiles/rmd_query.dir/PredicatedQuery.cpp.o"
  "CMakeFiles/rmd_query.dir/PredicatedQuery.cpp.o.d"
  "CMakeFiles/rmd_query.dir/QueryModule.cpp.o"
  "CMakeFiles/rmd_query.dir/QueryModule.cpp.o.d"
  "librmd_query.a"
  "librmd_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmd_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
