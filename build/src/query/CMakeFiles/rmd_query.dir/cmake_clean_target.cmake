file(REMOVE_RECURSE
  "librmd_query.a"
)
