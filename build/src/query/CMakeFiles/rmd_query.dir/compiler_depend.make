# Empty compiler generated dependencies file for rmd_query.
# This may be replaced when dependencies are built.
