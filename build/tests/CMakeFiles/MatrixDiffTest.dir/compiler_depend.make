# Empty compiler generated dependencies file for MatrixDiffTest.
# This may be replaced when dependencies are built.
