file(REMOVE_RECURSE
  "CMakeFiles/MatrixDiffTest.dir/MatrixDiffTest.cpp.o"
  "CMakeFiles/MatrixDiffTest.dir/MatrixDiffTest.cpp.o.d"
  "MatrixDiffTest"
  "MatrixDiffTest.pdb"
  "MatrixDiffTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MatrixDiffTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
