file(REMOVE_RECURSE
  "CMakeFiles/ModuloPropertyTest.dir/ModuloPropertyTest.cpp.o"
  "CMakeFiles/ModuloPropertyTest.dir/ModuloPropertyTest.cpp.o.d"
  "ModuloPropertyTest"
  "ModuloPropertyTest.pdb"
  "ModuloPropertyTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ModuloPropertyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
