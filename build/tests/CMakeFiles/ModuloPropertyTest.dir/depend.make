# Empty dependencies file for ModuloPropertyTest.
# This may be replaced when dependencies are built.
