# Empty compiler generated dependencies file for MdlFuzzTest.
# This may be replaced when dependencies are built.
