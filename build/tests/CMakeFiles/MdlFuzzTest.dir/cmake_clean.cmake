file(REMOVE_RECURSE
  "CMakeFiles/MdlFuzzTest.dir/MdlFuzzTest.cpp.o"
  "CMakeFiles/MdlFuzzTest.dir/MdlFuzzTest.cpp.o.d"
  "MdlFuzzTest"
  "MdlFuzzTest.pdb"
  "MdlFuzzTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MdlFuzzTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
