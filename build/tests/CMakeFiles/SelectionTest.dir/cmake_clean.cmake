file(REMOVE_RECURSE
  "CMakeFiles/SelectionTest.dir/SelectionTest.cpp.o"
  "CMakeFiles/SelectionTest.dir/SelectionTest.cpp.o.d"
  "SelectionTest"
  "SelectionTest.pdb"
  "SelectionTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SelectionTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
