# Empty compiler generated dependencies file for SelectionTest.
# This may be replaced when dependencies are built.
