# Empty dependencies file for PredicatedQueryTest.
# This may be replaced when dependencies are built.
