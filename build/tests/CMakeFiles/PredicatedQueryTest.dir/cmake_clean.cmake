file(REMOVE_RECURSE
  "CMakeFiles/PredicatedQueryTest.dir/PredicatedQueryTest.cpp.o"
  "CMakeFiles/PredicatedQueryTest.dir/PredicatedQueryTest.cpp.o.d"
  "PredicatedQueryTest"
  "PredicatedQueryTest.pdb"
  "PredicatedQueryTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PredicatedQueryTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
