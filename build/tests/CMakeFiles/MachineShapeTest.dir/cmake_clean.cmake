file(REMOVE_RECURSE
  "CMakeFiles/MachineShapeTest.dir/MachineShapeTest.cpp.o"
  "CMakeFiles/MachineShapeTest.dir/MachineShapeTest.cpp.o.d"
  "MachineShapeTest"
  "MachineShapeTest.pdb"
  "MachineShapeTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MachineShapeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
