# Empty dependencies file for MachineShapeTest.
# This may be replaced when dependencies are built.
