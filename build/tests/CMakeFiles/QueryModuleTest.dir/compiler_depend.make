# Empty compiler generated dependencies file for QueryModuleTest.
# This may be replaced when dependencies are built.
