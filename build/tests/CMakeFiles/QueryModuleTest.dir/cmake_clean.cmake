file(REMOVE_RECURSE
  "CMakeFiles/QueryModuleTest.dir/QueryModuleTest.cpp.o"
  "CMakeFiles/QueryModuleTest.dir/QueryModuleTest.cpp.o.d"
  "QueryModuleTest"
  "QueryModuleTest.pdb"
  "QueryModuleTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/QueryModuleTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
