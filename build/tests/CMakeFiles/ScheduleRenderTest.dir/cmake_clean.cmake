file(REMOVE_RECURSE
  "CMakeFiles/ScheduleRenderTest.dir/ScheduleRenderTest.cpp.o"
  "CMakeFiles/ScheduleRenderTest.dir/ScheduleRenderTest.cpp.o.d"
  "ScheduleRenderTest"
  "ScheduleRenderTest.pdb"
  "ScheduleRenderTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ScheduleRenderTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
