
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ScheduleRenderTest.cpp" "tests/CMakeFiles/ScheduleRenderTest.dir/ScheduleRenderTest.cpp.o" "gcc" "tests/CMakeFiles/ScheduleRenderTest.dir/ScheduleRenderTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/rmd_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rmd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/rmd_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/rmd_query.dir/DependInfo.cmake"
  "/root/repo/build/src/reduce/CMakeFiles/rmd_reduce.dir/DependInfo.cmake"
  "/root/repo/build/src/flm/CMakeFiles/rmd_flm.dir/DependInfo.cmake"
  "/root/repo/build/src/machines/CMakeFiles/rmd_machines.dir/DependInfo.cmake"
  "/root/repo/build/src/mdl/CMakeFiles/rmd_mdl.dir/DependInfo.cmake"
  "/root/repo/build/src/mdesc/CMakeFiles/rmd_mdesc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
