# Empty compiler generated dependencies file for ScheduleRenderTest.
# This may be replaced when dependencies are built.
