file(REMOVE_RECURSE
  "AutomatonQueryTest"
  "AutomatonQueryTest.pdb"
  "AutomatonQueryTest[1]_tests.cmake"
  "CMakeFiles/AutomatonQueryTest.dir/AutomatonQueryTest.cpp.o"
  "CMakeFiles/AutomatonQueryTest.dir/AutomatonQueryTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AutomatonQueryTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
