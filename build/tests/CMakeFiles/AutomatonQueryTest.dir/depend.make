# Empty dependencies file for AutomatonQueryTest.
# This may be replaced when dependencies are built.
