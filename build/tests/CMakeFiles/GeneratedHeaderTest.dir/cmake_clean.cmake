file(REMOVE_RECURSE
  "CMakeFiles/GeneratedHeaderTest.dir/GeneratedHeaderTest.cpp.o"
  "CMakeFiles/GeneratedHeaderTest.dir/GeneratedHeaderTest.cpp.o.d"
  "GeneratedHeaderTest"
  "GeneratedHeaderTest.pdb"
  "GeneratedHeaderTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/GeneratedHeaderTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
