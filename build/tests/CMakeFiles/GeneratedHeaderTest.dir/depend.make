# Empty dependencies file for GeneratedHeaderTest.
# This may be replaced when dependencies are built.
