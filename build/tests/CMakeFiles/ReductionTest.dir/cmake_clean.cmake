file(REMOVE_RECURSE
  "CMakeFiles/ReductionTest.dir/ReductionTest.cpp.o"
  "CMakeFiles/ReductionTest.dir/ReductionTest.cpp.o.d"
  "ReductionTest"
  "ReductionTest.pdb"
  "ReductionTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ReductionTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
