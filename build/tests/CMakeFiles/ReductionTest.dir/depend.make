# Empty dependencies file for ReductionTest.
# This may be replaced when dependencies are built.
