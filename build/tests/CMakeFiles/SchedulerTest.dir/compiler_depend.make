# Empty compiler generated dependencies file for SchedulerTest.
# This may be replaced when dependencies are built.
