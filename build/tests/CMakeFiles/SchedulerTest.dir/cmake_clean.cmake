file(REMOVE_RECURSE
  "CMakeFiles/SchedulerTest.dir/SchedulerTest.cpp.o"
  "CMakeFiles/SchedulerTest.dir/SchedulerTest.cpp.o.d"
  "SchedulerTest"
  "SchedulerTest.pdb"
  "SchedulerTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SchedulerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
