file(REMOVE_RECURSE
  "CMakeFiles/ExpansionTest.dir/ExpansionTest.cpp.o"
  "CMakeFiles/ExpansionTest.dir/ExpansionTest.cpp.o.d"
  "ExpansionTest"
  "ExpansionTest.pdb"
  "ExpansionTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ExpansionTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
