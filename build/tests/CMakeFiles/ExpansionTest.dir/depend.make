# Empty dependencies file for ExpansionTest.
# This may be replaced when dependencies are built.
