file(REMOVE_RECURSE
  "CMakeFiles/ExactCoverTest.dir/ExactCoverTest.cpp.o"
  "CMakeFiles/ExactCoverTest.dir/ExactCoverTest.cpp.o.d"
  "ExactCoverTest"
  "ExactCoverTest.pdb"
  "ExactCoverTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ExactCoverTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
