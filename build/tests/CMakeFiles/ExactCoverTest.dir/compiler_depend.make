# Empty compiler generated dependencies file for ExactCoverTest.
# This may be replaced when dependencies are built.
