# Empty dependencies file for OperationDrivenTest.
# This may be replaced when dependencies are built.
