file(REMOVE_RECURSE
  "CMakeFiles/OperationDrivenTest.dir/OperationDrivenTest.cpp.o"
  "CMakeFiles/OperationDrivenTest.dir/OperationDrivenTest.cpp.o.d"
  "OperationDrivenTest"
  "OperationDrivenTest.pdb"
  "OperationDrivenTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/OperationDrivenTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
