# Empty dependencies file for LintTest.
# This may be replaced when dependencies are built.
