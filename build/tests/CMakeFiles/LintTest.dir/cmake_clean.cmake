file(REMOVE_RECURSE
  "CMakeFiles/LintTest.dir/LintTest.cpp.o"
  "CMakeFiles/LintTest.dir/LintTest.cpp.o.d"
  "LintTest"
  "LintTest.pdb"
  "LintTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LintTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
