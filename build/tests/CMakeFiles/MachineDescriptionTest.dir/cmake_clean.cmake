file(REMOVE_RECURSE
  "CMakeFiles/MachineDescriptionTest.dir/MachineDescriptionTest.cpp.o"
  "CMakeFiles/MachineDescriptionTest.dir/MachineDescriptionTest.cpp.o.d"
  "MachineDescriptionTest"
  "MachineDescriptionTest.pdb"
  "MachineDescriptionTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MachineDescriptionTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
