# Empty dependencies file for MachineDescriptionTest.
# This may be replaced when dependencies are built.
