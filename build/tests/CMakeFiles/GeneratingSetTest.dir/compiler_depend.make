# Empty compiler generated dependencies file for GeneratingSetTest.
# This may be replaced when dependencies are built.
