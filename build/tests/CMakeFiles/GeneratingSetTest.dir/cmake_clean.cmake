file(REMOVE_RECURSE
  "CMakeFiles/GeneratingSetTest.dir/GeneratingSetTest.cpp.o"
  "CMakeFiles/GeneratingSetTest.dir/GeneratingSetTest.cpp.o.d"
  "GeneratingSetTest"
  "GeneratingSetTest.pdb"
  "GeneratingSetTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/GeneratingSetTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
