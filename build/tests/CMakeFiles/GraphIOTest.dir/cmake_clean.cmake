file(REMOVE_RECURSE
  "CMakeFiles/GraphIOTest.dir/GraphIOTest.cpp.o"
  "CMakeFiles/GraphIOTest.dir/GraphIOTest.cpp.o.d"
  "GraphIOTest"
  "GraphIOTest.pdb"
  "GraphIOTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/GraphIOTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
