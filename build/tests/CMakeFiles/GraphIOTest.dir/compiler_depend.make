# Empty compiler generated dependencies file for GraphIOTest.
# This may be replaced when dependencies are built.
