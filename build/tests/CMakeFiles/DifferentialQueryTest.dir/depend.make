# Empty dependencies file for DifferentialQueryTest.
# This may be replaced when dependencies are built.
