file(REMOVE_RECURSE
  "CMakeFiles/DifferentialQueryTest.dir/DifferentialQueryTest.cpp.o"
  "CMakeFiles/DifferentialQueryTest.dir/DifferentialQueryTest.cpp.o.d"
  "DifferentialQueryTest"
  "DifferentialQueryTest.pdb"
  "DifferentialQueryTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DifferentialQueryTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
