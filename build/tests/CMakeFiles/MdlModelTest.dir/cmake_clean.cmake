file(REMOVE_RECURSE
  "CMakeFiles/MdlModelTest.dir/MdlModelTest.cpp.o"
  "CMakeFiles/MdlModelTest.dir/MdlModelTest.cpp.o.d"
  "MdlModelTest"
  "MdlModelTest.pdb"
  "MdlModelTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MdlModelTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
