# Empty dependencies file for MdlModelTest.
# This may be replaced when dependencies are built.
