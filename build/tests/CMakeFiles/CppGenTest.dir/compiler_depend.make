# Empty compiler generated dependencies file for CppGenTest.
# This may be replaced when dependencies are built.
