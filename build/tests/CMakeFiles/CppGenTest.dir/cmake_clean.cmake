file(REMOVE_RECURSE
  "CMakeFiles/CppGenTest.dir/CppGenTest.cpp.o"
  "CMakeFiles/CppGenTest.dir/CppGenTest.cpp.o.d"
  "CppGenTest"
  "CppGenTest.pdb"
  "CppGenTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CppGenTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
