file(REMOVE_RECURSE
  "CMakeFiles/ExperimentConsistencyTest.dir/ExperimentConsistencyTest.cpp.o"
  "CMakeFiles/ExperimentConsistencyTest.dir/ExperimentConsistencyTest.cpp.o.d"
  "ExperimentConsistencyTest"
  "ExperimentConsistencyTest.pdb"
  "ExperimentConsistencyTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ExperimentConsistencyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
