# Empty compiler generated dependencies file for ExperimentConsistencyTest.
# This may be replaced when dependencies are built.
