# Empty dependencies file for ExperimentConsistencyTest.
# This may be replaced when dependencies are built.
