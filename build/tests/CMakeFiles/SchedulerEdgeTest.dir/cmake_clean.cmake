file(REMOVE_RECURSE
  "CMakeFiles/SchedulerEdgeTest.dir/SchedulerEdgeTest.cpp.o"
  "CMakeFiles/SchedulerEdgeTest.dir/SchedulerEdgeTest.cpp.o.d"
  "SchedulerEdgeTest"
  "SchedulerEdgeTest.pdb"
  "SchedulerEdgeTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SchedulerEdgeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
