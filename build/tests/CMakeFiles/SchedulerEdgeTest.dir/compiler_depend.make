# Empty compiler generated dependencies file for SchedulerEdgeTest.
# This may be replaced when dependencies are built.
