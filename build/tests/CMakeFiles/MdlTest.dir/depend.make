# Empty dependencies file for MdlTest.
# This may be replaced when dependencies are built.
