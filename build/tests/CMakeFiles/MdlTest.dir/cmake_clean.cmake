file(REMOVE_RECURSE
  "CMakeFiles/MdlTest.dir/MdlTest.cpp.o"
  "CMakeFiles/MdlTest.dir/MdlTest.cpp.o.d"
  "MdlTest"
  "MdlTest.pdb"
  "MdlTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MdlTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
