file(REMOVE_RECURSE
  "CMakeFiles/ForbiddenLatencyTest.dir/ForbiddenLatencyTest.cpp.o"
  "CMakeFiles/ForbiddenLatencyTest.dir/ForbiddenLatencyTest.cpp.o.d"
  "ForbiddenLatencyTest"
  "ForbiddenLatencyTest.pdb"
  "ForbiddenLatencyTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ForbiddenLatencyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
