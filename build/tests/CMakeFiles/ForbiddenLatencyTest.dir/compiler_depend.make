# Empty compiler generated dependencies file for ForbiddenLatencyTest.
# This may be replaced when dependencies are built.
