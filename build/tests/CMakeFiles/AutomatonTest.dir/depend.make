# Empty dependencies file for AutomatonTest.
# This may be replaced when dependencies are built.
