file(REMOVE_RECURSE
  "AutomatonTest"
  "AutomatonTest.pdb"
  "AutomatonTest[1]_tests.cmake"
  "CMakeFiles/AutomatonTest.dir/AutomatonTest.cpp.o"
  "CMakeFiles/AutomatonTest.dir/AutomatonTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AutomatonTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
