file(REMOVE_RECURSE
  "CMakeFiles/table2_fig4.dir/table2_fig4.cpp.o"
  "CMakeFiles/table2_fig4.dir/table2_fig4.cpp.o.d"
  "table2_fig4"
  "table2_fig4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_fig4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
