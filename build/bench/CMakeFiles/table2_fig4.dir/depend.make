# Empty dependencies file for table2_fig4.
# This may be replaced when dependencies are built.
