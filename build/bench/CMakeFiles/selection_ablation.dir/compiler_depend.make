# Empty compiler generated dependencies file for selection_ablation.
# This may be replaced when dependencies are built.
