file(REMOVE_RECURSE
  "CMakeFiles/selection_ablation.dir/selection_ablation.cpp.o"
  "CMakeFiles/selection_ablation.dir/selection_ablation.cpp.o.d"
  "selection_ablation"
  "selection_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
