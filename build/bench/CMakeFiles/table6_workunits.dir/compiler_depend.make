# Empty compiler generated dependencies file for table6_workunits.
# This may be replaced when dependencies are built.
