file(REMOVE_RECURSE
  "CMakeFiles/table6_workunits.dir/table6_workunits.cpp.o"
  "CMakeFiles/table6_workunits.dir/table6_workunits.cpp.o.d"
  "table6_workunits"
  "table6_workunits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_workunits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
