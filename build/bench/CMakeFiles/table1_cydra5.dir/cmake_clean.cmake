file(REMOVE_RECURSE
  "CMakeFiles/table1_cydra5.dir/table1_cydra5.cpp.o"
  "CMakeFiles/table1_cydra5.dir/table1_cydra5.cpp.o.d"
  "table1_cydra5"
  "table1_cydra5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cydra5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
