# Empty compiler generated dependencies file for table1_cydra5.
# This may be replaced when dependencies are built.
