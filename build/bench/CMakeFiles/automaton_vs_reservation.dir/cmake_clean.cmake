file(REMOVE_RECURSE
  "CMakeFiles/automaton_vs_reservation.dir/automaton_vs_reservation.cpp.o"
  "CMakeFiles/automaton_vs_reservation.dir/automaton_vs_reservation.cpp.o.d"
  "automaton_vs_reservation"
  "automaton_vs_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automaton_vs_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
