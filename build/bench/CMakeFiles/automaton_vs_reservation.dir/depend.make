# Empty dependencies file for automaton_vs_reservation.
# This may be replaced when dependencies are built.
