file(REMOVE_RECURSE
  "CMakeFiles/rmd_benchsupport.dir/BenchSupport.cpp.o"
  "CMakeFiles/rmd_benchsupport.dir/BenchSupport.cpp.o.d"
  "librmd_benchsupport.a"
  "librmd_benchsupport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmd_benchsupport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
