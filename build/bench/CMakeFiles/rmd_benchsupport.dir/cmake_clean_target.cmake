file(REMOVE_RECURSE
  "librmd_benchsupport.a"
)
