# Empty compiler generated dependencies file for rmd_benchsupport.
# This may be replaced when dependencies are built.
