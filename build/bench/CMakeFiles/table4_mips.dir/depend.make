# Empty dependencies file for table4_mips.
# This may be replaced when dependencies are built.
