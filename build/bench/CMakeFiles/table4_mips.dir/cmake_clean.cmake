file(REMOVE_RECURSE
  "CMakeFiles/table4_mips.dir/table4_mips.cpp.o"
  "CMakeFiles/table4_mips.dir/table4_mips.cpp.o.d"
  "table4_mips"
  "table4_mips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_mips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
