file(REMOVE_RECURSE
  "CMakeFiles/query_throughput.dir/query_throughput.cpp.o"
  "CMakeFiles/query_throughput.dir/query_throughput.cpp.o.d"
  "query_throughput"
  "query_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
