# Empty compiler generated dependencies file for query_throughput.
# This may be replaced when dependencies are built.
