# Empty compiler generated dependencies file for reduction_time.
# This may be replaced when dependencies are built.
