file(REMOVE_RECURSE
  "CMakeFiles/reduction_time.dir/reduction_time.cpp.o"
  "CMakeFiles/reduction_time.dir/reduction_time.cpp.o.d"
  "reduction_time"
  "reduction_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
