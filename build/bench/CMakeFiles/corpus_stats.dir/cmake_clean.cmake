file(REMOVE_RECURSE
  "CMakeFiles/corpus_stats.dir/corpus_stats.cpp.o"
  "CMakeFiles/corpus_stats.dir/corpus_stats.cpp.o.d"
  "corpus_stats"
  "corpus_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
