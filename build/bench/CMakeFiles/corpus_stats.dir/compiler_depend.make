# Empty compiler generated dependencies file for corpus_stats.
# This may be replaced when dependencies are built.
