# Empty compiler generated dependencies file for priority_ablation.
# This may be replaced when dependencies are built.
