# Empty dependencies file for priority_ablation.
# This may be replaced when dependencies are built.
