file(REMOVE_RECURSE
  "CMakeFiles/priority_ablation.dir/priority_ablation.cpp.o"
  "CMakeFiles/priority_ablation.dir/priority_ablation.cpp.o.d"
  "priority_ablation"
  "priority_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
