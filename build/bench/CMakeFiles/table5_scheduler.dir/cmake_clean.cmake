file(REMOVE_RECURSE
  "CMakeFiles/table5_scheduler.dir/table5_scheduler.cpp.o"
  "CMakeFiles/table5_scheduler.dir/table5_scheduler.cpp.o.d"
  "table5_scheduler"
  "table5_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
