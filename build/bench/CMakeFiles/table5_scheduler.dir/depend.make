# Empty dependencies file for table5_scheduler.
# This may be replaced when dependencies are built.
