file(REMOVE_RECURSE
  "CMakeFiles/table3_alpha.dir/table3_alpha.cpp.o"
  "CMakeFiles/table3_alpha.dir/table3_alpha.cpp.o.d"
  "table3_alpha"
  "table3_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
