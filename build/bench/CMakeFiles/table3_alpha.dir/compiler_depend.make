# Empty compiler generated dependencies file for table3_alpha.
# This may be replaced when dependencies are built.
