# Empty dependencies file for block_boundaries.
# This may be replaced when dependencies are built.
