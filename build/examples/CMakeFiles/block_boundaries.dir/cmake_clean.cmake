file(REMOVE_RECURSE
  "CMakeFiles/block_boundaries.dir/block_boundaries.cpp.o"
  "CMakeFiles/block_boundaries.dir/block_boundaries.cpp.o.d"
  "block_boundaries"
  "block_boundaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_boundaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
