# Empty compiler generated dependencies file for mdldiff.
# This may be replaced when dependencies are built.
