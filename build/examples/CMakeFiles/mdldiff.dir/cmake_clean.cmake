file(REMOVE_RECURSE
  "CMakeFiles/mdldiff.dir/mdldiff.cpp.o"
  "CMakeFiles/mdldiff.dir/mdldiff.cpp.o.d"
  "mdldiff"
  "mdldiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdldiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
