file(REMOVE_RECURSE
  "CMakeFiles/predicated_sharing.dir/predicated_sharing.cpp.o"
  "CMakeFiles/predicated_sharing.dir/predicated_sharing.cpp.o.d"
  "predicated_sharing"
  "predicated_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicated_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
