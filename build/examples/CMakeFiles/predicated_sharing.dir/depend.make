# Empty dependencies file for predicated_sharing.
# This may be replaced when dependencies are built.
