# Empty dependencies file for mdlreduce.
# This may be replaced when dependencies are built.
