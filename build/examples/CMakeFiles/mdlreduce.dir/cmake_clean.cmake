file(REMOVE_RECURSE
  "CMakeFiles/mdlreduce.dir/mdlreduce.cpp.o"
  "CMakeFiles/mdlreduce.dir/mdlreduce.cpp.o.d"
  "mdlreduce"
  "mdlreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdlreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
