file(REMOVE_RECURSE
  "CMakeFiles/imsched.dir/imsched.cpp.o"
  "CMakeFiles/imsched.dir/imsched.cpp.o.d"
  "imsched"
  "imsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
