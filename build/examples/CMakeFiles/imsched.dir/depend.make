# Empty dependencies file for imsched.
# This may be replaced when dependencies are built.
