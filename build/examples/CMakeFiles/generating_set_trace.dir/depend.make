# Empty dependencies file for generating_set_trace.
# This may be replaced when dependencies are built.
