file(REMOVE_RECURSE
  "CMakeFiles/generating_set_trace.dir/generating_set_trace.cpp.o"
  "CMakeFiles/generating_set_trace.dir/generating_set_trace.cpp.o.d"
  "generating_set_trace"
  "generating_set_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generating_set_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
