# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for generating_set_trace.
