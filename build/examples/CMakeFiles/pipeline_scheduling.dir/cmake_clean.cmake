file(REMOVE_RECURSE
  "CMakeFiles/pipeline_scheduling.dir/pipeline_scheduling.cpp.o"
  "CMakeFiles/pipeline_scheduling.dir/pipeline_scheduling.cpp.o.d"
  "pipeline_scheduling"
  "pipeline_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
