# Empty compiler generated dependencies file for pipeline_scheduling.
# This may be replaced when dependencies are built.
