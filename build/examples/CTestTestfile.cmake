# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_generating_set_trace "/root/repo/build/examples/generating_set_trace")
set_tests_properties(example_generating_set_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mdlreduce "/root/repo/build/examples/mdlreduce" "--stats" "--classes" "/root/repo/machines/cydra5.mdl")
set_tests_properties(example_mdlreduce PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mdlreduce_cpp "/root/repo/build/examples/mdlreduce" "--emit=c++" "--namespace=fig1_tables")
set_tests_properties(example_mdlreduce_cpp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline_scheduling "/root/repo/build/examples/pipeline_scheduling")
set_tests_properties(example_pipeline_scheduling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_block_boundaries "/root/repo/build/examples/block_boundaries")
set_tests_properties(example_block_boundaries PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_predicated_sharing "/root/repo/build/examples/predicated_sharing")
set_tests_properties(example_predicated_sharing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mdldiff "/root/repo/build/examples/mdldiff" "/root/repo/machines/fig1.mdl" "/root/repo/machines/fig1.mdl")
set_tests_properties(example_mdldiff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_imsched "/root/repo/build/examples/imsched" "--machine=cydra5")
set_tests_properties(example_imsched PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
