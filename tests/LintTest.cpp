//===- tests/LintTest.cpp - Machine description linter tests --------------===//

#include "machines/MachineModel.h"
#include "mdesc/Lint.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

bool hasWarning(const DiagnosticEngine &Diags, const std::string &Needle) {
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(Lint, FlagsUnusedResourceAndEmptyOperation) {
  MachineDescription MD("m");
  MD.addResource("ghost");
  ResourceId R = MD.addResource("real");
  MD.addOperation("nop", ReservationTable());
  ReservationTable T;
  T.addUsage(R, 0);
  MD.addOperation("x", T);

  DiagnosticEngine Diags;
  unsigned Warnings = lintMachine(MD, Diags);
  EXPECT_GE(Warnings, 2u);
  EXPECT_TRUE(hasWarning(Diags, "'ghost' is used by no operation"));
  EXPECT_TRUE(hasWarning(Diags, "'nop' uses no resources"));
  EXPECT_FALSE(Diags.hasErrors()); // lint produces warnings only
}

TEST(Lint, FlagsOverlongTableAndDuplicateAlternatives) {
  MachineDescription MD("m");
  ResourceId R = MD.addResource("r");
  ReservationTable Long;
  Long.addUsage(R, 0);
  Long.addUsage(R, 70);
  MD.addOperation("marathon", Long);

  ReservationTable Alt;
  Alt.addUsage(R, 1);
  MD.addOperation("twins", {Alt, Alt});

  DiagnosticEngine Diags;
  lintMachine(MD, Diags);
  EXPECT_TRUE(hasWarning(Diags, "spans 71 cycles"));
  EXPECT_TRUE(hasWarning(Diags, "duplicate alternatives"));
}

TEST(Lint, FlagsIdenticalTablesAcrossOperations) {
  MachineDescription MD("m");
  ResourceId R = MD.addResource("r");
  ReservationTable T;
  T.addUsage(R, 0);
  MD.addOperation("a", T);
  MD.addOperation("b", T);
  DiagnosticEngine Diags;
  lintMachine(MD, Diags);
  EXPECT_TRUE(hasWarning(Diags, "identical reservation tables"));
}

TEST(Lint, BuiltinMachinesAreMostlyClean) {
  // Builtins may legitimately contain identical-table pairs (operation
  // classes) but no unused resources, no empty tables, no over-long
  // tables, no duplicate alternatives.
  for (const MachineModel &M :
       {makeCydra5(), makeAlpha21064(), makeMipsR3000(), makeToyVliw(),
        makePlayDoh(), makeM88100()}) {
    DiagnosticEngine Diags;
    lintMachine(M.MD, Diags);
    EXPECT_FALSE(hasWarning(Diags, "used by no operation")) << M.MD.name();
    EXPECT_FALSE(hasWarning(Diags, "uses no resources")) << M.MD.name();
    EXPECT_FALSE(hasWarning(Diags, "spans")) << M.MD.name();
    EXPECT_FALSE(hasWarning(Diags, "duplicate alternatives"))
        << M.MD.name();
  }
}
