//===- tests/LintTest.cpp - Machine description linter tests --------------===//

#include "machines/MachineModel.h"
#include "mdesc/Lint.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

bool hasWarning(const DiagnosticEngine &Diags, const std::string &Needle) {
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(Lint, FlagsUnusedResourceAndEmptyOperation) {
  MachineDescription MD("m");
  MD.addResource("ghost");
  ResourceId R = MD.addResource("real");
  MD.addOperation("nop", ReservationTable());
  ReservationTable T;
  T.addUsage(R, 0);
  MD.addOperation("x", T);

  DiagnosticEngine Diags;
  unsigned Warnings = lintMachine(MD, Diags);
  EXPECT_GE(Warnings, 2u);
  EXPECT_TRUE(hasWarning(Diags, "'ghost' is used by no operation"));
  EXPECT_TRUE(hasWarning(Diags, "'nop' uses no resources"));
  EXPECT_FALSE(Diags.hasErrors()); // lint produces warnings only
}

TEST(Lint, FlagsOverlongTableAndDuplicateAlternatives) {
  MachineDescription MD("m");
  ResourceId R = MD.addResource("r");
  ReservationTable Long;
  Long.addUsage(R, 0);
  Long.addUsage(R, 70);
  MD.addOperation("marathon", Long);

  ReservationTable Alt;
  Alt.addUsage(R, 1);
  MD.addOperation("twins", {Alt, Alt});

  DiagnosticEngine Diags;
  lintMachine(MD, Diags);
  EXPECT_TRUE(hasWarning(Diags, "spans 71 cycles"));
  EXPECT_TRUE(hasWarning(Diags, "duplicate alternatives"));
}

TEST(Lint, FlagsNegativeUsageCycles) {
  // Usage cycles are issue-relative; a negative cycle would wrap the
  // size_t table-length math in the bitvector module's pattern builder.
  // The vector constructor deliberately accepts it (descriptions built
  // from untrusted data stay representable for diagnosis) and lint flags
  // it.
  MachineDescription MD("m");
  ResourceId R = MD.addResource("r");
  ReservationTable Bad(std::vector<ResourceUsage>{{R, -2}, {R, 1}});
  MD.addOperation("early", Bad);

  DiagnosticEngine Diags;
  unsigned Warnings = lintMachine(MD, Diags);
  EXPECT_GE(Warnings, 1u);
  EXPECT_TRUE(hasWarning(Diags, "negative cycle -2"));
  EXPECT_TRUE(hasWarning(Diags, "'r'"));
  EXPECT_FALSE(Diags.hasErrors());

  // One warning per offending alternative, not per offending usage.
  MachineDescription MD2("m2");
  ResourceId R2 = MD2.addResource("r");
  ReservationTable Bad2(
      std::vector<ResourceUsage>{{R2, -3}, {R2, -1}, {R2, 0}});
  MD2.addOperation("worse", Bad2);
  DiagnosticEngine Diags2;
  lintMachine(MD2, Diags2);
  unsigned NegativeWarnings = 0;
  for (const Diagnostic &D : Diags2.diagnostics())
    if (D.Message.find("negative cycle") != std::string::npos)
      ++NegativeWarnings;
  EXPECT_EQ(NegativeWarnings, 1u);
}

TEST(Lint, FlagsIdenticalTablesAcrossOperations) {
  MachineDescription MD("m");
  ResourceId R = MD.addResource("r");
  ReservationTable T;
  T.addUsage(R, 0);
  MD.addOperation("a", T);
  MD.addOperation("b", T);
  DiagnosticEngine Diags;
  lintMachine(MD, Diags);
  EXPECT_TRUE(hasWarning(Diags, "identical reservation tables"));
}

TEST(Lint, BuiltinMachinesAreMostlyClean) {
  // Builtins may legitimately contain identical-table pairs (operation
  // classes) but no unused resources, no empty tables, no over-long
  // tables, no duplicate alternatives.
  for (const MachineModel &M :
       {makeCydra5(), makeAlpha21064(), makeMipsR3000(), makeToyVliw(),
        makePlayDoh(), makeM88100()}) {
    DiagnosticEngine Diags;
    lintMachine(M.MD, Diags);
    EXPECT_FALSE(hasWarning(Diags, "used by no operation")) << M.MD.name();
    EXPECT_FALSE(hasWarning(Diags, "uses no resources")) << M.MD.name();
    EXPECT_FALSE(hasWarning(Diags, "spans")) << M.MD.name();
    EXPECT_FALSE(hasWarning(Diags, "duplicate alternatives"))
        << M.MD.name();
  }
}
