//===- tests/UnionAlternativeTest.cpp - union fast path equivalence -------===//
//
// BitvectorQueryModule::checkWithAlternatives promises "semantically
// identical" answers with the union-mask fast path on or off. This sweep
// pins that: two modules differing only in UnionAlternativeCheck are driven
// with the same seeded traffic — alternative queries, assigns of the chosen
// alternative, interleaved frees — and must return identical alternative
// indices at every step and identical reserved tables afterwards, in linear
// mode and in modulo mode at small IIs where alternative groups contain
// self-conflicting ops.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"
#include "query/BitvectorQuery.h"
#include "query/DiscreteQuery.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace rmd;

namespace {

struct Placement {
  OpId Op;
  int Cycle;
  InstanceId Instance;
};

MachineDescription machineFor(int Idx) {
  switch (Idx) {
  case 0:
    return makeToyVliw().MD;
  case 1:
    return makeMipsR3000().MD;
  default:
    return makeCydra5().MD;
  }
}

/// Drives the union-on and union-off modules in lockstep and checks that
/// every answer and the final reserved table agree.
void sweep(const MachineDescription &Flat,
           const std::vector<std::vector<OpId>> &Groups, QueryConfig Config,
           uint64_t Seed, int CycleRange) {
  QueryConfig On = Config;
  On.UnionAlternativeCheck = true;
  QueryConfig Off = Config;
  Off.UnionAlternativeCheck = false;

  BitvectorQueryModule QOn(Flat, On);
  BitvectorQueryModule QOff(Flat, Off);

  RNG R(Seed);
  std::vector<Placement> Live;
  InstanceId Next = 0;

  for (int Step = 0; Step < 4000; ++Step) {
    const std::vector<OpId> &Alts =
        Groups[R.nextBelow(Groups.size())];
    int Cycle = static_cast<int>(R.nextBelow(
        static_cast<uint64_t>(CycleRange)));

    int FoundOn = QOn.checkWithAlternatives(Alts, Cycle);
    int FoundOff = QOff.checkWithAlternatives(Alts, Cycle);
    ASSERT_EQ(FoundOn, FoundOff)
        << "union on/off disagree at step " << Step << " cycle " << Cycle;

    if (FoundOn >= 0 && Live.size() < 48) {
      OpId Chosen = Alts[static_cast<size_t>(FoundOn)];
      QOn.assign(Chosen, Cycle, Next);
      QOff.assign(Chosen, Cycle, Next);
      Live.push_back({Chosen, Cycle, Next});
      ++Next;
    }

    // Free a random live placement every few steps so the table contents
    // keep churning rather than saturating.
    if (!Live.empty() && R.nextBelow(4) == 0) {
      size_t Victim = R.nextBelow(Live.size());
      Placement P = Live[Victim];
      Live.erase(Live.begin() + static_cast<long>(Victim));
      QOn.free(P.Op, P.Cycle, P.Instance);
      QOff.free(P.Op, P.Cycle, P.Instance);
    }
  }

  // The schedules (reserved tables) must be identical afterwards: every
  // single-op probe answers the same.
  for (OpId Op = 0; Op < static_cast<OpId>(Flat.numOperations()); ++Op)
    for (int Cycle = 0; Cycle < CycleRange; ++Cycle)
      ASSERT_EQ(QOn.check(Op, Cycle), QOff.check(Op, Cycle))
          << "tables diverge at op " << Op << " cycle " << Cycle;
}

} // namespace

class UnionAlternative : public ::testing::TestWithParam<int> {};

TEST_P(UnionAlternative, LinearEquivalence) {
  ExpandedMachine EM = expandAlternatives(machineFor(GetParam()));
  sweep(EM.Flat, EM.Groups, QueryConfig::linear(),
        1000 + static_cast<uint64_t>(GetParam()), 96);
}

TEST_P(UnionAlternative, ModuloEquivalenceSmallIIs) {
  ExpandedMachine EM = expandAlternatives(machineFor(GetParam()));
  for (int II : {1, 2, 3, 5, 8}) {
    // Small IIs force self-conflicting alternatives into the groups; the
    // union path must skip them exactly as the per-alternative loop does.
    size_t SelfConflicting = 0;
    for (OpId Op = 0; Op < static_cast<OpId>(EM.Flat.numOperations()); ++Op)
      if (hasModuloSelfConflict(EM.Flat.operation(Op).table(), II))
        ++SelfConflicting;
    if (II <= 2) {
      ASSERT_GT(SelfConflicting, 0u)
          << "machine " << GetParam() << " II " << II
          << ": expected self-conflicting ops in the sweep";
    }
    sweep(EM.Flat, EM.Groups, QueryConfig::modulo(II),
          2000 + static_cast<uint64_t>(GetParam()) * 13 +
              static_cast<uint64_t>(II),
          II);
  }
}

TEST_P(UnionAlternative, AllSelfConflictingGroupReturnsMinusOne) {
  ExpandedMachine EM = expandAlternatives(machineFor(GetParam()));
  // At II = 1 any op that uses a resource in more than one cycle
  // self-conflicts; find a group where every alternative does.
  QueryConfig On = QueryConfig::modulo(1);
  On.UnionAlternativeCheck = true;
  QueryConfig Off = QueryConfig::modulo(1);
  BitvectorQueryModule QOn(EM.Flat, On);
  BitvectorQueryModule QOff(EM.Flat, Off);
  bool FoundGroup = false;
  for (const std::vector<OpId> &Alts : EM.Groups) {
    bool AllSelf = true;
    for (OpId Op : Alts)
      AllSelf &= hasModuloSelfConflict(EM.Flat.operation(Op).table(), 1);
    if (!AllSelf)
      continue;
    FoundGroup = true;
    EXPECT_EQ(QOn.checkWithAlternatives(Alts, 0), -1);
    EXPECT_EQ(QOff.checkWithAlternatives(Alts, 0), -1);
  }
  if (!FoundGroup)
    GTEST_SKIP() << "no fully self-conflicting group at II=1";
}

INSTANTIATE_TEST_SUITE_P(Machines, UnionAlternative,
                         ::testing::Values(0, 1, 2));
