//===- tests/ForbiddenLatencyTest.cpp - flm/ unit tests -------------------===//

#include "flm/ForbiddenLatencyMatrix.h"
#include "flm/LatencySet.h"
#include "flm/OperationClasses.h"
#include "machines/MachineModel.h"

#include <gtest/gtest.h>

using namespace rmd;

TEST(LatencySet, InsertContains) {
  LatencySet S;
  EXPECT_TRUE(S.empty());
  S.insert(3);
  S.insert(-1);
  S.insert(3);
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S.contains(3));
  EXPECT_TRUE(S.contains(-1));
  EXPECT_FALSE(S.contains(0));
  EXPECT_EQ(S.values(), (std::vector<int>{-1, 3}));
}

TEST(LatencySet, UnionNegateSubset) {
  LatencySet A({1, 2});
  LatencySet B({2, 5});
  A.unionWith(B);
  EXPECT_EQ(A.values(), (std::vector<int>{1, 2, 5}));
  EXPECT_EQ(A.negated().values(), (std::vector<int>{-5, -2, -1}));
  EXPECT_TRUE(B.isSubsetOf(A));
  EXPECT_FALSE(A.isSubsetOf(B));
  EXPECT_EQ(A.nonnegativeCount(), 3u);
  EXPECT_EQ(LatencySet({-2, -1, 0, 4}).nonnegativeCount(), 2u);
}

TEST(ForbiddenLatencyMatrix, Figure1ExactSets) {
  MachineDescription MD = makeFig1Machine();
  ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(MD);
  OpId A = MD.findOperation("A");
  OpId B = MD.findOperation("B");

  // Figure 1b: F(A,A)={0}, F(A,B)={-1}, F(B,A)={1}, F(B,B)={-3..3}.
  EXPECT_EQ(FLM.get(A, A).values(), (std::vector<int>{0}));
  EXPECT_EQ(FLM.get(A, B).values(), (std::vector<int>{-1}));
  EXPECT_EQ(FLM.get(B, A).values(), (std::vector<int>{1}));
  EXPECT_EQ(FLM.get(B, B).values(),
            (std::vector<int>{-3, -2, -1, 0, 1, 2, 3}));

  EXPECT_TRUE(FLM.isAntisymmetric());
  EXPECT_EQ(FLM.maxAbsoluteLatency(), 3);
  // Canonical constraints: (A,A,0), (B,A,1), (B,B,0), (B,B,1..3).
  EXPECT_EQ(FLM.canonicalCount(), 6u);
  EXPECT_EQ(FLM.totalEntries(), 10u);
}

TEST(ForbiddenLatencyMatrix, SelfZeroAlwaysForbidden) {
  for (const MachineModel &M :
       {makeCydra5(), makeAlpha21064(), makeMipsR3000(), makeToyVliw(),
        makePlayDoh()}) {
    MachineDescription Flat = expandAlternatives(M.MD).Flat;
    ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(Flat);
    EXPECT_TRUE(FLM.isAntisymmetric()) << M.MD.name();
    for (OpId Op = 0; Op < Flat.numOperations(); ++Op) {
      if (Flat.operation(Op).table().empty())
        continue;
      EXPECT_TRUE(FLM.isForbidden(Op, Op, 0))
          << M.MD.name() << " op " << Flat.operation(Op).Name;
    }
  }
}

TEST(ForbiddenLatencyMatrix, MatchesManualOverlapCheck) {
  // Exhaustively cross-check Equation (1) against a direct simulation of
  // overlapping reservation tables for the toy VLIW.
  MachineDescription Flat = expandAlternatives(makeToyVliw().MD).Flat;
  ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(Flat);
  int MaxLen = Flat.maxTableLength();
  for (OpId X = 0; X < Flat.numOperations(); ++X)
    for (OpId Y = 0; Y < Flat.numOperations(); ++Y)
      for (int F = -MaxLen; F <= MaxLen; ++F) {
        // X issues at time F, Y at time 0. Conflict iff a shared resource
        // is used by both at the same absolute cycle.
        bool Conflict = false;
        for (const ResourceUsage &Ux : Flat.operation(X).table().usages())
          for (const ResourceUsage &Uy : Flat.operation(Y).table().usages())
            if (Ux.Resource == Uy.Resource && F + Ux.Cycle == Uy.Cycle)
              Conflict = true;
        EXPECT_EQ(FLM.isForbidden(X, Y, F), Conflict)
            << "X=" << X << " Y=" << Y << " F=" << F;
      }
}

TEST(ForbiddenLatencyMatrix, CanonicalLatenciesRoundTrip) {
  MachineDescription Flat = expandAlternatives(makeMipsR3000().MD).Flat;
  ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(Flat);
  std::vector<ForbiddenLatency> Canonical = FLM.canonicalLatencies();
  EXPECT_EQ(Canonical.size(), FLM.canonicalCount());
  // Every canonical constraint is forbidden, in both orientations.
  for (const ForbiddenLatency &L : Canonical) {
    EXPECT_TRUE(FLM.isForbidden(L.After, L.Before, L.Latency));
    EXPECT_TRUE(FLM.isForbidden(L.Before, L.After, -L.Latency));
  }
}

TEST(ForbiddenLatencyMatrix, InsertKeepsAntisymmetry) {
  ForbiddenLatencyMatrix FLM(3);
  FLM.insert(0, 1, 4);
  FLM.insert(2, 2, 0);
  EXPECT_TRUE(FLM.isForbidden(0, 1, 4));
  EXPECT_TRUE(FLM.isForbidden(1, 0, -4));
  EXPECT_TRUE(FLM.isAntisymmetric());
}

TEST(OperationClasses, Figure1TwoClasses) {
  MachineDescription MD = makeFig1Machine();
  ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(MD);
  OperationClasses Classes = partitionOperationClasses(FLM);
  EXPECT_EQ(Classes.numClasses(), 2u);
}

TEST(OperationClasses, IdenticalOperationsMerge) {
  // Two operations with identical tables must land in one class; a third
  // with a different table must not.
  MachineDescription MD("dup");
  ResourceId R = MD.addResource("r");
  ResourceId S = MD.addResource("s");
  ReservationTable T1;
  T1.addUsage(R, 0);
  ReservationTable T2;
  T2.addUsage(R, 0);
  ReservationTable T3;
  T3.addUsage(S, 0);
  MD.addOperation("x", T1);
  MD.addOperation("y", T2);
  MD.addOperation("z", T3);

  ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(MD);
  OperationClasses Classes = partitionOperationClasses(FLM);
  EXPECT_EQ(Classes.numClasses(), 2u);
  EXPECT_EQ(Classes.ClassOf[0], Classes.ClassOf[1]);
  EXPECT_NE(Classes.ClassOf[0], Classes.ClassOf[2]);
  EXPECT_EQ(Classes.Members[Classes.ClassOf[0]].size(), 2u);
  EXPECT_EQ(Classes.Representative[Classes.ClassOf[0]], 0u);
}

TEST(OperationClasses, ClassMachinePreservesMatrixShape) {
  // The quotient machine's matrix must equal the restriction of the
  // original matrix to representatives.
  MachineDescription Flat = expandAlternatives(makeCydra5().MD).Flat;
  ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(Flat);
  OperationClasses Classes = partitionOperationClasses(FLM);
  MachineDescription Quotient = buildClassMachine(Flat, Classes);
  EXPECT_EQ(Quotient.numOperations(), Classes.numClasses());

  ForbiddenLatencyMatrix QFLM = ForbiddenLatencyMatrix::compute(Quotient);
  for (size_t C1 = 0; C1 < Classes.numClasses(); ++C1)
    for (size_t C2 = 0; C2 < Classes.numClasses(); ++C2)
      EXPECT_EQ(QFLM.get(static_cast<OpId>(C1), static_cast<OpId>(C2)),
                FLM.get(Classes.Representative[C1],
                        Classes.Representative[C2]));
}

TEST(OperationClasses, EveryMemberMatchesRepresentative) {
  MachineDescription Flat = expandAlternatives(makeAlpha21064().MD).Flat;
  ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(Flat);
  OperationClasses Classes = partitionOperationClasses(FLM);
  for (size_t C = 0; C < Classes.numClasses(); ++C)
    for (OpId Member : Classes.Members[C])
      for (OpId Z = 0; Z < Flat.numOperations(); ++Z) {
        EXPECT_EQ(FLM.get(Member, Z), FLM.get(Classes.Representative[C], Z));
        EXPECT_EQ(FLM.get(Z, Member), FLM.get(Z, Classes.Representative[C]));
      }
}
