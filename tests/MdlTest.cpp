//===- tests/MdlTest.cpp - Machine description language tests -------------===//

#include "machines/MachineModel.h"
#include "mdl/Parser.h"
#include "mdl/Writer.h"
#include "reduce/Reduction.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

MachineDescription parseOrDie(const std::string &Text) {
  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Text, Diags);
  if (!MD.has_value()) {
    std::ostringstream OS;
    Diags.print(OS);
    ADD_FAILURE() << "parse failed:\n" << OS.str();
    return MachineDescription("<failed>");
  }
  return *MD;
}

void expectParseError(const std::string &Text, const std::string &Needle) {
  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Text, Diags);
  EXPECT_FALSE(MD.has_value()) << "parse unexpectedly succeeded";
  EXPECT_TRUE(Diags.hasErrors());
  bool Found = false;
  for (const Diagnostic &D : Diags.diagnostics())
    Found |= D.Message.find(Needle) != std::string::npos;
  EXPECT_TRUE(Found) << "no diagnostic mentioning '" << Needle << "'";
}

} // namespace

TEST(Mdl, ParsesFigure1Machine) {
  MachineDescription MD = parseOrDie(R"(
    # the paper's Figure 1 machine
    machine fig1 {
      resources r0, r1, r2, r3, r4;
      operation A { r0 at 0; r1 at 1; r2 at 2; }
      operation B {
        r1 at 0; r2 at 1;
        r3 at 2 .. 5;
        r4 at 6 .. 7;
      }
    }
  )");
  EXPECT_EQ(MD, makeFig1Machine());
}

TEST(Mdl, ParsesAlternatives) {
  MachineDescription MD = parseOrDie(R"(
    machine m {
      resources p0, p1;
      operation ld {
        alternative { p0 at 0; }
        alternative { p1 at 0 .. 1; }
      }
    }
  )");
  ASSERT_EQ(MD.numOperations(), 1u);
  ASSERT_EQ(MD.operation(0).Alternatives.size(), 2u);
  EXPECT_EQ(MD.operation(0).Alternatives[1].usageCount(), 2u);
}

TEST(Mdl, ParsesEmptyOperation) {
  MachineDescription MD = parseOrDie("machine m { operation nop { } }");
  ASSERT_EQ(MD.numOperations(), 1u);
  EXPECT_TRUE(MD.operation(0).table().empty());
}

TEST(Mdl, CommentsAndWhitespace) {
  MachineDescription MD = parseOrDie(
      "machine m { // c++ style\n resources r;\n # hash style\n"
      " operation x { r at 0; } }");
  EXPECT_EQ(MD.numOperations(), 1u);
}

TEST(Mdl, ErrorUnknownResource) {
  expectParseError("machine m { operation x { bogus at 0; } }",
                   "unknown resource");
}

TEST(Mdl, ErrorDuplicateResource) {
  expectParseError("machine m { resources r, r; }", "duplicate resource");
}

TEST(Mdl, ErrorEmptyRange) {
  expectParseError(
      "machine m { resources r; operation x { r at 5 .. 3; } }",
      "empty cycle range");
}

TEST(Mdl, ErrorMissingSemicolon) {
  expectParseError("machine m { resources r; operation x { r at 0 } }",
                   "expected ';'");
}

TEST(Mdl, ErrorGarbage) {
  expectParseError("machine m { resources r; operation x { r at 0; } } junk",
                   "trailing input");
}

TEST(Mdl, ErrorLocationsAreAccurate) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(
      parseMdl("machine m {\n  resources r;\n  operation x { q at 0; }\n}",
               Diags)
          .has_value());
  ASSERT_FALSE(Diags.diagnostics().empty());
  EXPECT_EQ(Diags.diagnostics()[0].Loc.Line, 3u);
}

TEST(Mdl, RoundTripsBuiltinMachines) {
  for (const MachineDescription &MD :
       {makeFig1Machine(), makeCydra5().MD, makeAlpha21064().MD,
        makeMipsR3000().MD, makeToyVliw().MD, makePlayDoh().MD}) {
    std::string Text = writeMdl(MD);
    DiagnosticEngine Diags;
    std::optional<MachineDescription> Back = parseMdl(Text, Diags);
    ASSERT_TRUE(Back.has_value()) << MD.name();
    EXPECT_EQ(*Back, MD) << MD.name();
  }
}

TEST(Mdl, RoundTripsReducedDescriptions) {
  MachineDescription Flat = expandAlternatives(makeMipsR3000().MD).Flat;
  MachineDescription Reduced = reduceMachine(Flat).Reduced;
  DiagnosticEngine Diags;
  std::optional<MachineDescription> Back = parseMdl(writeMdl(Reduced), Diags);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, Reduced);
  EXPECT_TRUE(verifyEquivalence(Flat, *Back));
}

TEST(Mdl, WriterMergesRanges) {
  MachineDescription MD("m");
  ResourceId R = MD.addResource("r");
  ReservationTable T;
  T.addUsageRange(R, 2, 6);
  T.addUsage(R, 9);
  MD.addOperation("x", T);
  std::string Text = writeMdl(MD);
  EXPECT_NE(Text.find("r at 2 .. 6;"), std::string::npos);
  EXPECT_NE(Text.find("r at 9;"), std::string::npos);
}
