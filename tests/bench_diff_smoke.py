#!/usr/bin/env python3
"""Smoke test for scripts/bench_diff.py (run via ctest).

Covers the CI-gate holes the script guards against: a machine missing from
the current document, a zero-baseline regression, and a missing metric key
must all fail the gate (exit 1) without a traceback, while identical and
improved documents pass (exit 0).
"""

import copy
import json
import subprocess
import sys
import tempfile
import os

BENCH_DIFF = sys.argv[1]


def entry(machine, reduce_ms=1.0, disc=50.0, bitv=100.0):
    return {
        "machine": machine,
        "reduce_ms": reduce_ms,
        "query_mqps_discrete": disc,
        "query_mqps_bitvector": bitv,
    }


def server_entry(machine, p50=100.0, p99=500.0, mqps=8.0):
    return {
        "machine": machine,
        "server_p50_us": p50,
        "server_p99_us": p99,
        "server_mqps": mqps,
    }


def doc(machines):
    return {"schema": "rmd-bench-v1", "machines": machines}


def run(base, cur):
    with tempfile.TemporaryDirectory() as tmp:
        bp = os.path.join(tmp, "base.json")
        cp = os.path.join(tmp, "cur.json")
        with open(bp, "w", encoding="utf-8") as f:
            json.dump(base, f)
        with open(cp, "w", encoding="utf-8") as f:
            json.dump(cur, f)
        return subprocess.run(
            [sys.executable, BENCH_DIFF, bp, cp],
            capture_output=True, text=True)


def check(name, result, want_exit, want_mark=None):
    ok = result.returncode == want_exit
    if "Traceback" in result.stderr:
        ok = False
    if want_mark is not None and want_mark not in result.stdout:
        ok = False
    status = "ok" if ok else "FAIL"
    print(f"{status}: {name} (exit {result.returncode}, want {want_exit})")
    if not ok:
        print(result.stdout)
        print(result.stderr)
    return ok


def main():
    base = doc([entry("fig1"), entry("cydra5", reduce_ms=10.0)])
    ok = True

    # Identical documents pass.
    ok &= check("identical", run(base, copy.deepcopy(base)), 0)

    # Improvements pass.
    better = copy.deepcopy(base)
    better["machines"][0]["query_mqps_bitvector"] = 300.0
    ok &= check("improvement", run(base, better), 0)

    # A machine dropped from the current document fails the gate.
    dropped = doc([entry("fig1")])
    ok &= check("machine missing from current", run(base, dropped), 1,
                "missing from current")

    # A machine new in the current document does not fail the gate.
    grown = copy.deepcopy(base)
    grown["machines"].append(entry("m88100"))
    ok &= check("machine new in current", run(base, grown), 0,
                "not in baseline")

    # Zero baseline must not mask a regression on lower-is-better metrics.
    zero_base = doc([entry("fig1", reduce_ms=0.0)])
    zero_cur = doc([entry("fig1", reduce_ms=5.0)])
    ok &= check("zero-baseline regression", run(zero_base, zero_cur), 1,
                "REGRESSED")

    # Zero baseline and zero current is flat.
    zero_flat = doc([entry("fig1", reduce_ms=0.0)])
    ok &= check("zero-baseline flat", run(zero_flat, copy.deepcopy(zero_flat)),
                0)

    # A missing metric key is a gate failure, not a KeyError.
    nokey = copy.deepcopy(base)
    del nokey["machines"][0]["query_mqps_bitvector"]
    ok &= check("missing metric key", run(base, nokey), 1, "missing from")

    # A plain regression past tolerance still fails.
    slower = copy.deepcopy(base)
    slower["machines"][1]["query_mqps_bitvector"] = 10.0
    ok &= check("ordinary regression", run(base, slower), 1, "REGRESSED")

    # Server documents: a metric absent from BOTH sides is skipped, so a
    # pure server_throughput document diffs cleanly against itself even
    # though it carries none of the query metrics.
    sbase = doc([server_entry("fig1"), server_entry("cydra5")])
    ok &= check("server-only identical", run(sbase, copy.deepcopy(sbase)), 0)

    # Latency is lower-is-better: a p99 blow-up fails the gate.
    sworse = copy.deepcopy(sbase)
    sworse["machines"][0]["server_p99_us"] = 2000.0
    ok &= check("server p99 regression", run(sbase, sworse), 1, "REGRESSED")

    # Throughput is higher-is-better: an aggregate Mq/s collapse fails.
    sslow = copy.deepcopy(sbase)
    sslow["machines"][1]["server_mqps"] = 1.0
    ok &= check("server mqps regression", run(sbase, sslow), 1, "REGRESSED")

    # Lower latency is an improvement, not a regression.
    sfast = copy.deepcopy(sbase)
    sfast["machines"][0]["server_p50_us"] = 10.0
    sfast["machines"][0]["server_p99_us"] = 50.0
    ok &= check("server latency improvement", run(sbase, sfast), 0)

    # Dropping a server metric from the current document alone still fails.
    snokey = copy.deepcopy(sbase)
    del snokey["machines"][0]["server_mqps"]
    ok &= check("server metric key dropped", run(sbase, snokey), 1,
                "missing from current")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
