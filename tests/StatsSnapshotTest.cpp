//===- tests/StatsSnapshotTest.cpp - Golden stats-JSON schema tests -------===//
//
// Pins the observability contract of docs/observability.md: the snapshot
// JSON is versioned ("rmd-stats-v1"), carries a stable key set for a fixed
// workload, and — with wall-clock fields excluded — is byte-identical no
// matter how many threads the reduction pipeline used. The pipeline is
// bit-exact at every thread count (ParallelReductionTest), and this suite
// extends that guarantee to its instrumentation.
//
//===----------------------------------------------------------------------===//

#include "machines/MdlModel.h"
#include "reduce/Reduction.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace rmd;

#ifndef RMD_SOURCE_DIR
#define RMD_SOURCE_DIR "."
#endif

namespace {

MachineDescription loadToyVliwFlat() {
  std::string Path = std::string(RMD_SOURCE_DIR) + "/machines/toyvliw.mdl";
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "missing " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  DiagnosticEngine Diags;
  std::optional<MachineModel> Model = parseMdlModel(SS.str(), Diags);
  EXPECT_TRUE(Model.has_value() && !Diags.hasErrors()) << Path;
  return expandAlternatives(Model->MD).Flat;
}

/// One full checked reduction at \p Threads against a freshly reset
/// registry; returns the deterministic (timings-excluded) JSON document.
std::string snapshotJsonAtThreads(const MachineDescription &Flat,
                                  unsigned Threads) {
  StatsRegistry::instance().reset();
  ReductionOptions Options;
  Options.Threads = Threads;
  Expected<ReductionResult> Result = reduceMachineChecked(Flat, Options);
  EXPECT_TRUE(static_cast<bool>(Result));

  StatsSnapshot Snap = StatsRegistry::instance().snapshot();
  StatsSnapshot::JsonOptions JsonOptions;
  JsonOptions.Tool = "StatsSnapshotTest";
  JsonOptions.IncludeTimings = false;
  std::ostringstream OS;
  Snap.writeJson(OS, JsonOptions);
  return OS.str();
}

} // namespace

TEST(StatsSnapshot, SchemaVersionAndKeySet) {
  MachineDescription Flat = loadToyVliwFlat();
  std::string Json = snapshotJsonAtThreads(Flat, 1);

  EXPECT_NE(Json.find("\"schema\": \"rmd-stats-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"tool\": \"StatsSnapshotTest\""), std::string::npos);

  // The metric catalog of docs/observability.md: every phase of the
  // checked pipeline must have reported.
  for (const char *Key :
       {"flm.builds", "flm.rows", "reduce.pairs", "reduce.rule1",
        "reduce.rule2", "reduce.rule2_discard", "reduce.rule3",
        "reduce.rule4", "reduce.generating_set_size",
        "reduce.pruned_set_size", "reduce.covered_latencies", "prune.kept",
        "prune.dropped", "reduce.flm_preserved", "reduce.flm_violations"})
    EXPECT_NE(Json.find(std::string("\"") + Key + "\""), std::string::npos)
        << "missing counter " << Key << " in:\n"
        << Json;
  for (const char *Timer :
       {"\"reduce\"", "\"reduce/flm\"", "\"reduce/fold\"", "\"reduce/prune\"",
        "\"reduce/select\"", "\"reduce/verify\""})
    EXPECT_NE(Json.find(Timer), std::string::npos)
        << "missing timer " << Timer << " in:\n"
        << Json;

  // Verify ran exactly once and passed.
  EXPECT_NE(Json.find("\"reduce.flm_preserved\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"reduce.flm_violations\": 0"), std::string::npos);

  // Timings are excluded: no wall-clock field may leak into the
  // deterministic document.
  EXPECT_EQ(Json.find("total_ns"), std::string::npos);
}

TEST(StatsSnapshot, ByteIdenticalAcrossThreadCounts) {
  MachineDescription Flat = loadToyVliwFlat();
  std::string At1 = snapshotJsonAtThreads(Flat, 1);
  std::string At2 = snapshotJsonAtThreads(Flat, 2);
  std::string At8 = snapshotJsonAtThreads(Flat, 8);
  EXPECT_EQ(At1, At2);
  EXPECT_EQ(At1, At8);
}

TEST(StatsSnapshot, ResetClearsValuesKeepsNames) {
  MachineDescription Flat = loadToyVliwFlat();
  (void)snapshotJsonAtThreads(Flat, 1);
  StatsRegistry::instance().reset();
  StatsSnapshot Snap = StatsRegistry::instance().snapshot();
  auto It = Snap.Counters.find("reduce.pairs");
  ASSERT_NE(It, Snap.Counters.end()); // name survives the reset
  EXPECT_EQ(It->second, 0u);          // value does not
}

TEST(StatsSnapshot, HistogramBucketsAndBounds) {
  StatsRegistry::instance().reset();
  StatHistogram H("test.snapshot_histogram");
  H.record(0);
  H.record(1);
  H.record(5);
  H.record(1000);
  StatsSnapshot Snap = StatsRegistry::instance().snapshot();
  auto It = Snap.Histograms.find("test.snapshot_histogram");
  ASSERT_NE(It, Snap.Histograms.end());
  EXPECT_EQ(It->second.Count, 4u);
  EXPECT_EQ(It->second.Sum, 1006u);
  EXPECT_EQ(It->second.Min, 0u);
  EXPECT_EQ(It->second.Max, 1000u);
  EXPECT_EQ(It->second.Buckets[0], 1u);  // the zero
  EXPECT_EQ(It->second.Buckets[1], 1u);  // 1
  EXPECT_EQ(It->second.Buckets[3], 1u);  // 5 (bit_width 3)
  EXPECT_EQ(It->second.Buckets[10], 1u); // 1000 (bit_width 10)
}
