//===- tests/SupportTest.cpp - support/ unit tests ------------------------===//

#include "support/Diagnostics.h"
#include "support/OnlineStats.h"
#include "support/RNG.h"
#include "support/TextTable.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace rmd;

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning({1, 2}, "watch out");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({3, 4}, "bad thing");
  Diags.note({}, "context");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  ASSERT_EQ(Diags.diagnostics().size(), 3u);
  EXPECT_EQ(Diags.diagnostics()[1].Message, "bad thing");
}

TEST(Diagnostics, PrintFormat) {
  DiagnosticEngine Diags;
  Diags.error({7, 3}, "unexpected token");
  Diags.note({}, "while parsing machine");
  std::ostringstream OS;
  Diags.print(OS, "m.mdl");
  EXPECT_EQ(OS.str(), "m.mdl:7:3: error: unexpected token\n"
                      "m.mdl: note: while parsing machine\n");
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine Diags;
  Diags.error({1, 1}, "x");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(RNG, Deterministic) {
  RNG A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_EQ(A.next(), B.next());
  RNG A2(42);
  EXPECT_NE(A2.next(), C.next());
}

TEST(RNG, BoundsRespected) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.nextBelow(10);
    EXPECT_LT(V, 10u);
    int64_t W = R.nextInRange(-5, 5);
    EXPECT_GE(W, -5);
    EXPECT_LE(W, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNG, BoundsReachable) {
  RNG R(11);
  bool SawZero = false, SawMax = false;
  for (int I = 0; I < 2000; ++I) {
    uint64_t V = R.nextBelow(4);
    SawZero |= V == 0;
    SawMax |= V == 3;
  }
  EXPECT_TRUE(SawZero);
  EXPECT_TRUE(SawMax);
}

TEST(RNG, WeightedPick) {
  RNG R(13);
  std::vector<double> Weights = {0.0, 1.0, 3.0};
  int Counts[3] = {0, 0, 0};
  for (int I = 0; I < 4000; ++I)
    ++Counts[R.nextWeighted(Weights)];
  EXPECT_EQ(Counts[0], 0);
  EXPECT_GT(Counts[2], Counts[1]);
}

TEST(OnlineStats, Basic) {
  OnlineStats S;
  S.add(3);
  S.add(1);
  S.add(1);
  S.add(5);
  EXPECT_EQ(S.count(), 4u);
  EXPECT_DOUBLE_EQ(S.min(), 1);
  EXPECT_DOUBLE_EQ(S.max(), 5);
  EXPECT_DOUBLE_EQ(S.mean(), 2.5);
  EXPECT_DOUBLE_EQ(S.fractionAtMin(), 0.5);
}

TEST(OnlineStats, MinTrackedAfterNewMin) {
  OnlineStats S;
  S.add(2);
  S.add(2);
  S.add(1);
  EXPECT_DOUBLE_EQ(S.fractionAtMin(), 1.0 / 3.0);
}

TEST(TextTable, AlignsColumns) {
  TextTable T;
  T.row();
  T.cell("name");
  T.cell("value");
  T.row();
  T.cell("x");
  T.cellInt(12345);
  T.row();
  T.cell("longer");
  T.cell(1.5, 2);
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("12345"), std::string::npos);
  EXPECT_NE(Out.find("1.50"), std::string::npos);
  // Header rule present.
  EXPECT_NE(Out.find("---"), std::string::npos);
}

TEST(TextTable, FormatFixed) {
  EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(formatFixed(2.0, 0), "2");
}
