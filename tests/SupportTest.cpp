//===- tests/SupportTest.cpp - support/ unit tests ------------------------===//

#include "support/Diagnostics.h"
#include "support/OnlineStats.h"
#include "support/RNG.h"
#include "support/TextTable.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

using namespace rmd;

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning({1, 2}, "watch out");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({3, 4}, "bad thing");
  Diags.note({}, "context");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  ASSERT_EQ(Diags.diagnostics().size(), 3u);
  EXPECT_EQ(Diags.diagnostics()[1].Message, "bad thing");
}

TEST(Diagnostics, PrintFormat) {
  DiagnosticEngine Diags;
  Diags.error({7, 3}, "unexpected token");
  Diags.note({}, "while parsing machine");
  std::ostringstream OS;
  Diags.print(OS, "m.mdl");
  EXPECT_EQ(OS.str(), "m.mdl:7:3: error: unexpected token\n"
                      "m.mdl: note: while parsing machine\n");
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine Diags;
  Diags.error({1, 1}, "x");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(RNG, Deterministic) {
  RNG A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_EQ(A.next(), B.next());
  RNG A2(42);
  EXPECT_NE(A2.next(), C.next());
}

TEST(RNG, BoundsRespected) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.nextBelow(10);
    EXPECT_LT(V, 10u);
    int64_t W = R.nextInRange(-5, 5);
    EXPECT_GE(W, -5);
    EXPECT_LE(W, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNG, BoundsReachable) {
  RNG R(11);
  bool SawZero = false, SawMax = false;
  for (int I = 0; I < 2000; ++I) {
    uint64_t V = R.nextBelow(4);
    SawZero |= V == 0;
    SawMax |= V == 3;
  }
  EXPECT_TRUE(SawZero);
  EXPECT_TRUE(SawMax);
}

TEST(RNG, WeightedPick) {
  RNG R(13);
  std::vector<double> Weights = {0.0, 1.0, 3.0};
  int Counts[3] = {0, 0, 0};
  for (int I = 0; I < 4000; ++I)
    ++Counts[R.nextWeighted(Weights)];
  EXPECT_EQ(Counts[0], 0);
  EXPECT_GT(Counts[2], Counts[1]);
}

TEST(OnlineStats, Basic) {
  OnlineStats S;
  S.add(3);
  S.add(1);
  S.add(1);
  S.add(5);
  EXPECT_EQ(S.count(), 4u);
  EXPECT_DOUBLE_EQ(S.min(), 1);
  EXPECT_DOUBLE_EQ(S.max(), 5);
  EXPECT_DOUBLE_EQ(S.mean(), 2.5);
  EXPECT_DOUBLE_EQ(S.fractionAtMin(), 0.5);
}

TEST(OnlineStats, MinTrackedAfterNewMin) {
  OnlineStats S;
  S.add(2);
  S.add(2);
  S.add(1);
  EXPECT_DOUBLE_EQ(S.fractionAtMin(), 1.0 / 3.0);
}

TEST(TextTable, AlignsColumns) {
  TextTable T;
  T.row();
  T.cell("name");
  T.cell("value");
  T.row();
  T.cell("x");
  T.cellInt(12345);
  T.row();
  T.cell("longer");
  T.cell(1.5, 2);
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("12345"), std::string::npos);
  EXPECT_NE(Out.find("1.50"), std::string::npos);
  // Header rule present.
  EXPECT_NE(Out.find("---"), std::string::npos);
}

TEST(TextTable, FormatFixed) {
  EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(formatFixed(2.0, 0), "2");
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  for (unsigned Threads : {1u, 2u, 3u, 8u}) {
    ThreadPool Pool(Threads);
    EXPECT_EQ(Pool.concurrency(), Threads);
    for (size_t N : {0u, 1u, 5u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> Hits(N);
      Pool.parallelFor(0, N, [&](size_t Begin, size_t End) {
        ASSERT_LE(Begin, End);
        for (size_t I = Begin; I < End; ++I)
          Hits[I].fetch_add(1, std::memory_order_relaxed);
      });
      for (size_t I = 0; I < N; ++I)
        EXPECT_EQ(Hits[I].load(), 1) << "N=" << N << " I=" << I;
    }
  }
}

TEST(ThreadPool, BlockPartitionIsThreadCountInvariant) {
  // Writing f(I) into per-index slots must give the same vector at every
  // thread count (the determinism contract the reduction pipeline needs).
  auto Run = [](unsigned Threads) {
    ThreadPool Pool(Threads);
    std::vector<uint64_t> Out(513);
    Pool.parallelFor(0, Out.size(), [&](size_t Begin, size_t End) {
      for (size_t I = Begin; I < End; ++I)
        Out[I] = I * 2654435761u;
    });
    return Out;
  };
  std::vector<uint64_t> One = Run(1);
  EXPECT_EQ(Run(2), One);
  EXPECT_EQ(Run(8), One);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool Pool(4);
  std::atomic<uint64_t> Sum{0};
  for (int Round = 0; Round < 200; ++Round)
    Pool.parallelFor(0, 37, [&](size_t Begin, size_t End) {
      Sum.fetch_add(End - Begin, std::memory_order_relaxed);
    });
  EXPECT_EQ(Sum.load(), 200u * 37u);
}

TEST(ThreadPool, MinPerBlockLimitsSplit) {
  ThreadPool Pool(8);
  std::atomic<int> Calls{0};
  Pool.parallelFor(
      0, 10,
      [&](size_t, size_t) { Calls.fetch_add(1, std::memory_order_relaxed); },
      /*MinPerBlock=*/10);
  EXPECT_EQ(Calls.load(), 1);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::resolveThreadCount(3), 3u);
  EXPECT_GE(ThreadPool::resolveThreadCount(0), 1u);
}
