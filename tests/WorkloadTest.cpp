//===- tests/WorkloadTest.cpp - Kernels, generator, corpus, experiment ----===//

#include "workload/Experiment.h"

#include "reduce/Reduction.h"
#include "sched/MII.h"

#include <gtest/gtest.h>

#include <set>

using namespace rmd;

TEST(RoleGraphBinding, ResolvesRolesWithFallback) {
  MachineModel Toy = makeToyVliw();
  // Toy VLIW has no FloatAdd: FloatAdd falls back to IntAlu ("alu").
  EXPECT_EQ(Toy.MD.operation(resolveRole(Toy, OpRole::FloatAdd)).Name,
            "alu");
  EXPECT_EQ(Toy.MD.operation(resolveRole(Toy, OpRole::FloatMul)).Name,
            "mul");
  // FloatDiv -> FloatMul on the toy.
  EXPECT_EQ(Toy.MD.operation(resolveRole(Toy, OpRole::FloatDiv)).Name,
            "mul");
  MachineModel Cydra = makeCydra5();
  EXPECT_EQ(Cydra.MD.operation(resolveRole(Cydra, OpRole::FloatDiv)).Name,
            "fdiv.s");
}

TEST(RoleGraphBinding, DelaysComeFromProducerLatency) {
  MachineModel Cydra = makeCydra5();
  RoleGraph RG;
  RG.Name = "t";
  uint32_t L = RG.addNode(OpRole::Load);
  uint32_t A = RG.addNode(OpRole::FloatAdd);
  RG.dataDep(L, A);
  RG.orderDep(L, A, 1, 2);

  DepGraph G = bind(RG, Cydra);
  ASSERT_EQ(G.numEdges(), 2u);
  EXPECT_EQ(G.edges()[0].Delay, Cydra.Latency[G.opOf(L)]);
  EXPECT_EQ(G.edges()[1].Delay, 1);
  EXPECT_EQ(G.edges()[1].Distance, 2);
}

TEST(Kernels, AllBindToAllMachines) {
  for (const MachineModel &M :
       {makeCydra5(), makeAlpha21064(), makeMipsR3000(), makeToyVliw(),
        makePlayDoh()}) {
    for (const RoleGraph &K : livermoreKernels()) {
      DepGraph G = bind(K, M);
      EXPECT_EQ(G.numNodes(), K.Nodes.size());
      EXPECT_EQ(G.numEdges(), K.Edges.size());
      EXPECT_GE(G.numNodes(), 4u) << K.Name;
    }
  }
}

TEST(Kernels, RecurrenceKernelsHaveCarriedEdges) {
  std::set<std::string> WithRecurrence = {
      "inner_product", "tridiag", "first_sum",    "banded",
      "complex_mac",   "horner",  "matmul_inner"};
  for (const RoleGraph &K : livermoreKernels()) {
    bool Carried = false;
    for (const RoleEdge &E : K.Edges)
      Carried |= E.Distance > 0 && E.UseProducerLatency;
    EXPECT_EQ(Carried, WithRecurrence.count(K.Name) == 1) << K.Name;
  }
}

TEST(Kernels, ReplicateScalesBodyAndSharesBranch) {
  RoleGraph K = livermoreKernels()[6]; // daxpy: 5 body nodes + branch
  RoleGraph R3 = replicate(K, 3);
  EXPECT_EQ(R3.Nodes.size(), 3 * (K.Nodes.size() - 1) + 1);
  unsigned Branches = 0;
  for (OpRole Role : R3.Nodes)
    Branches += Role == OpRole::Branch;
  EXPECT_EQ(Branches, 1u);

  // Each copy keeps its loop-carried edges.
  unsigned Carried = 0, CarriedOrig = 0;
  for (const RoleEdge &E : R3.Edges)
    Carried += E.Distance > 0;
  for (const RoleEdge &E : K.Edges)
    CarriedOrig += E.Distance > 0;
  EXPECT_EQ(Carried, 3 * CarriedOrig);
}

TEST(LoopGenerator, SizesWithinBoundsAndDeterministic) {
  LoopGeneratorParams P;
  RNG R1(5), R2(5);
  double Sum = 0;
  unsigned Max = 0, Min = 1000;
  for (int I = 0; I < 400; ++I) {
    RoleGraph A = generateLoop(R1, P);
    RoleGraph B = generateLoop(R2, P);
    EXPECT_EQ(A.Nodes.size(), B.Nodes.size());
    EXPECT_EQ(A.Edges.size(), B.Edges.size());
    EXPECT_GE(A.Nodes.size(), P.MinOps);
    EXPECT_LE(A.Nodes.size(), P.MaxOps + 1); // +1: appended branch
    Sum += static_cast<double>(A.Nodes.size());
    Max = std::max<unsigned>(Max, A.Nodes.size());
    Min = std::min<unsigned>(Min, A.Nodes.size());
  }
  double Mean = Sum / 400;
  EXPECT_GT(Mean, 8.0);
  EXPECT_LT(Mean, 30.0);
  EXPECT_LE(Min, 4u);   // small loops occur
  EXPECT_GT(Max, 60u);  // the long tail is exercised
}

TEST(LoopGenerator, GraphsAreValidLoopBodies) {
  MachineModel Mips = makeMipsR3000();
  RNG R(17);
  for (int I = 0; I < 200; ++I) {
    DepGraph G = bind(generateLoop(R), Mips);
    // All zero-distance edges must go forward (acyclic body).
    for (const DepEdge &E : G.edges()) {
      if (E.Distance == 0) {
        EXPECT_LT(E.From, E.To);
      }
    }
    // RecMII must be finite/sane (no zero-distance cycles).
    EXPECT_GE(computeRecMII(G), 1);
  }
}

TEST(Corpus, DeterministicAndSized) {
  MachineModel Toy = makeToyVliw();
  CorpusParams P;
  P.LoopCount = 60;
  std::vector<DepGraph> A = buildCorpus(Toy, P);
  std::vector<DepGraph> B = buildCorpus(Toy, P);
  ASSERT_EQ(A.size(), 60u);
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].numNodes(), B[I].numNodes());
    EXPECT_EQ(A[I].name(), B[I].name());
  }
  // Contains both kernel-derived and random loops.
  bool SawKernel = false, SawRandom = false;
  for (const DepGraph &G : A) {
    SawRandom |= G.name() == "rand";
    SawKernel |= G.name() != "rand";
  }
  EXPECT_TRUE(SawKernel);
  EXPECT_TRUE(SawRandom);
}

TEST(Experiment, SmokeRunOnMips) {
  MachineModel Mips = makeMipsR3000();
  ExpandedMachine EM = expandAlternatives(Mips.MD);

  CorpusParams P;
  P.LoopCount = 40;
  std::vector<DepGraph> Corpus = buildCorpus(Mips, P);

  RepresentationSpec Spec;
  Spec.Kind = RepresentationSpec::Discrete;
  Spec.FlatMD = &EM.Flat;
  Spec.Label = "original/discrete";

  SchedulerExperimentResult R =
      runSchedulerExperiment(Mips, EM.Groups, Spec, Corpus);
  EXPECT_EQ(R.Loops, 40u);
  EXPECT_EQ(R.Failed, 0u);
  EXPECT_GE(R.OpsPerLoop.min(), 2.0);
  EXPECT_GE(R.II.min(), 1.0);
  EXPECT_GE(R.IIOverMII.min(), 1.0);
  EXPECT_GE(R.DecisionsPerOp.min(), 1.0);
  EXPECT_GT(R.checksPerDecision(), 0.9);
  EXPECT_GT(R.Counters.CheckCalls, 0u);
  EXPECT_GT(R.Counters.AssignFreeCalls, 0u);
}

TEST(Experiment, WorkUnitsShrinkWithReduction) {
  // The headline of Table 6 in miniature: same corpus, same scheduler,
  // reduced description does fewer work units per call than the original.
  MachineModel Cydra = makeCydra5();
  ExpandedMachine EM = expandAlternatives(Cydra.MD);
  MachineDescription Reduced = reduceMachine(EM.Flat).Reduced;

  CorpusParams P;
  P.LoopCount = 30;
  std::vector<DepGraph> Corpus = buildCorpus(Cydra, P);

  RepresentationSpec Orig;
  Orig.FlatMD = &EM.Flat;
  Orig.Label = "orig";
  RepresentationSpec Red;
  Red.FlatMD = &Reduced;
  Red.Label = "red";

  SchedulerExperimentResult RO =
      runSchedulerExperiment(Cydra, EM.Groups, Orig, Corpus);
  SchedulerExperimentResult RR =
      runSchedulerExperiment(Cydra, EM.Groups, Red, Corpus);

  EXPECT_EQ(RO.Failed, 0u);
  EXPECT_EQ(RR.Failed, 0u);
  // Identical scheduling traces: same call counts...
  EXPECT_EQ(RO.Counters.totalCalls(), RR.Counters.totalCalls());
  // ...but fewer units for the reduced description.
  EXPECT_LT(RR.Counters.totalUnits(), RO.Counters.totalUnits());
}
