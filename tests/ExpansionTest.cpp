//===- tests/ExpansionTest.cpp - Pipeline expansion validation ------------===//
//
// The strongest modulo-semantics check in the suite: every kernel's
// modulo schedule, expanded over several overlapped iterations, must be
// contention-free on a *plain linear* reserved table and satisfy every
// dependence between iteration copies.
//
//===----------------------------------------------------------------------===//

#include "query/DiscreteQuery.h"
#include "sched/Expansion.h"
#include "sched/IterativeModuloScheduler.h"
#include "sched/ScheduleRender.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

QueryEnvironment discreteEnv(const MachineDescription &Flat,
                             const std::vector<std::vector<OpId>> &Groups) {
  QueryEnvironment Env;
  Env.FlatMD = &Flat;
  Env.Groups = &Groups;
  Env.MakeModule = [&Flat](QueryConfig C) {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(Flat, C));
  };
  return Env;
}

} // namespace

TEST(Expansion, IssueOrderingAndCycles) {
  std::vector<ExpandedIssue> Issues =
      expandPipelinedSchedule({0, 3}, /*II=*/2, /*Iterations=*/3);
  ASSERT_EQ(Issues.size(), 6u);
  // Cycles: node0 at 0,2,4; node1 at 3,5,7; sorted by cycle.
  EXPECT_EQ(Issues[0].Cycle, 0);
  EXPECT_EQ(Issues[0].Node, 0u);
  EXPECT_EQ(Issues[1].Cycle, 2);
  EXPECT_EQ(Issues[2].Cycle, 3);
  EXPECT_EQ(Issues[2].Node, 1u);
  EXPECT_EQ(Issues.back().Cycle, 7);
  EXPECT_EQ(Issues.back().Iteration, 2);
}

TEST(Expansion, AllKernelsExpandCleanly) {
  for (const MachineModel &M :
       {makeCydra5(), makeMipsR3000(), makeAlpha21064(), makePlayDoh()}) {
    ExpandedMachine EM = expandAlternatives(M.MD);
    for (const RoleGraph &K : livermoreKernels()) {
      DepGraph G = bind(K, M);
      ModuloScheduleResult R =
          moduloSchedule(G, M.MD, discreteEnv(EM.Flat, EM.Groups));
      ASSERT_TRUE(R.Success) << M.MD.name() << " " << K.Name;
      std::vector<OpId> Chosen =
          chosenFlatOps(G, EM.Groups, R.Alternative);
      EXPECT_TRUE(verifyExpandedSchedule(G, EM.Flat, Chosen, R.Time, R.II,
                                         /*Iterations=*/6))
          << M.MD.name() << " " << K.Name << " at II=" << R.II;
    }
  }
}

TEST(Expansion, DetectsATightenedII) {
  // The same placement at a smaller II must fail expansion: copies of the
  // partially pipelined multiply collide.
  MachineModel Cydra = makeCydra5();
  ExpandedMachine EM = expandAlternatives(Cydra.MD);
  DepGraph G = bind(livermoreKernels()[1], Cydra); // inner_product
  ModuloScheduleResult R =
      moduloSchedule(G, Cydra.MD, discreteEnv(EM.Flat, EM.Groups));
  ASSERT_TRUE(R.Success);
  std::vector<OpId> Chosen = chosenFlatOps(G, EM.Groups, R.Alternative);
  ASSERT_TRUE(
      verifyExpandedSchedule(G, EM.Flat, Chosen, R.Time, R.II, 6));
  EXPECT_FALSE(
      verifyExpandedSchedule(G, EM.Flat, Chosen, R.Time, /*II=*/1, 6));
}
