//===- tests/ReductionTest.cpp - End-to-end reduction tests ---------------===//
//
// Includes the randomized property tests mirroring the paper's guarantee:
// for arbitrary machines, reduction exactly preserves the forbidden latency
// matrix under every objective.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"
#include "reduce/Metrics.h"
#include "reduce/Reduction.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <chrono>

using namespace rmd;

namespace {

/// Generates a random machine description: OpCount operations over
/// ResCount resources, each op using a random subset of resources at
/// random cycles, with occasional multi-cycle occupancy runs.
MachineDescription makeRandomMachine(RNG &R, unsigned OpCount,
                                     unsigned ResCount, unsigned MaxCycle) {
  MachineDescription MD("random");
  for (unsigned I = 0; I < ResCount; ++I)
    MD.addResource("r" + std::to_string(I));
  for (unsigned O = 0; O < OpCount; ++O) {
    ReservationTable T;
    unsigned NumUsages = 1 + static_cast<unsigned>(R.nextBelow(5));
    for (unsigned U = 0; U < NumUsages; ++U) {
      ResourceId Res = static_cast<ResourceId>(R.nextBelow(ResCount));
      int Cycle = static_cast<int>(R.nextBelow(MaxCycle + 1));
      if (R.nextChance(1, 4)) {
        int RunEnd = Cycle + static_cast<int>(R.nextBelow(4));
        T.addUsageRange(Res, Cycle, RunEnd);
      } else {
        T.addUsage(Res, Cycle);
      }
    }
    MD.addOperation("op" + std::to_string(O), std::move(T));
  }
  return MD;
}

} // namespace

TEST(Reduction, Figure1EndToEnd) {
  MachineDescription MD = makeFig1Machine();
  ReductionResult Result = reduceMachine(MD);
  // 5 original resources -> 2 synthesized; 11 usages -> 5.
  EXPECT_EQ(Result.Reduced.numResources(), 2u);
  EXPECT_EQ(Result.Reduced.totalUsages(), 5u);
  EXPECT_EQ(Result.PrunedSetSize, 2u);
  EXPECT_EQ(Result.CoveredLatencies, 6u);
  EXPECT_TRUE(verifyEquivalence(MD, Result.Reduced));
}

TEST(Reduction, BuiltinMachinesAllObjectives) {
  for (const MachineModel &M :
       {makeCydra5(), makeAlpha21064(), makeMipsR3000(), makeToyVliw(),
        makePlayDoh(), makeM88100()}) {
    MachineDescription Flat = expandAlternatives(M.MD).Flat;
    ReductionResult ResUses = reduceMachine(Flat);
    EXPECT_TRUE(verifyEquivalence(Flat, ResUses.Reduced)) << M.MD.name();
    EXPECT_LE(ResUses.Reduced.numResources(), Flat.numResources())
        << M.MD.name();
    EXPECT_LE(ResUses.Reduced.totalUsages(), Flat.totalUsages())
        << M.MD.name();

    for (unsigned K : {1u, 2u, 4u}) {
      ReductionOptions Options;
      Options.Objective = SelectionObjective::wordUses(K);
      ReductionResult Word = reduceMachine(Flat, Options);
      EXPECT_TRUE(verifyEquivalence(Flat, Word.Reduced))
          << M.MD.name() << " k=" << K;
    }
  }
}

TEST(Reduction, ReducedIsFixpointOnResources) {
  // Reducing an already-reduced description must not increase resources or
  // usages.
  MachineDescription Flat = expandAlternatives(makeCydra5().MD).Flat;
  ReductionResult First = reduceMachine(Flat);
  ReductionResult Second = reduceMachine(First.Reduced);
  EXPECT_LE(Second.Reduced.numResources(), First.Reduced.numResources());
  EXPECT_LE(Second.Reduced.totalUsages(), First.Reduced.totalUsages());
  EXPECT_TRUE(verifyEquivalence(Flat, Second.Reduced));
}

TEST(Reduction, VerifyEquivalenceDetectsDifferences) {
  MachineDescription A = makeFig1Machine();
  // Remove one usage of B: changes F(B,B).
  MachineDescription B("fig1-broken");
  for (ResourceId R = 0; R < A.numResources(); ++R)
    B.addResource(A.resourceName(R));
  B.addOperation("A", A.operation(0).table());
  ReservationTable TB;
  TB.addUsage(1, 0);
  TB.addUsage(2, 1);
  TB.addUsageRange(3, 2, 4); // paper's B holds r3 through cycle 5
  TB.addUsageRange(4, 6, 7);
  B.addOperation("B", TB);
  EXPECT_FALSE(verifyEquivalence(A, B));
  EXPECT_TRUE(verifyEquivalence(A, A));
}

TEST(Reduction, OperationNamesAndOrderPreserved) {
  MachineDescription Flat = expandAlternatives(makeAlpha21064().MD).Flat;
  ReductionResult Result = reduceMachine(Flat);
  ASSERT_EQ(Result.Reduced.numOperations(), Flat.numOperations());
  for (OpId Op = 0; Op < Flat.numOperations(); ++Op)
    EXPECT_EQ(Result.Reduced.operation(Op).Name, Flat.operation(Op).Name);
}

TEST(Reduction, EmptyTablesSurvive) {
  MachineDescription MD("with-nop");
  ResourceId R = MD.addResource("r");
  MD.addOperation("nop", ReservationTable());
  ReservationTable T;
  T.addUsage(R, 0);
  MD.addOperation("real", T);
  ReductionResult Result = reduceMachine(MD);
  EXPECT_TRUE(Result.Reduced.operation(0).table().empty());
  EXPECT_TRUE(verifyEquivalence(MD, Result.Reduced));
}

TEST(Reduction, LargeRandomMachineStaysFast) {
  // Performance guard for the generating-set subsumption optimization: a
  // dense 48-op machine must reduce in seconds, not minutes (the naive
  // Rule-2 cascade was quadratic-exponential before subsumption).
  RNG R(0xFA57);
  MachineDescription MD = makeRandomMachine(R, 48, 20, 12);
  auto Start = std::chrono::steady_clock::now();
  ReductionResult Result = reduceMachine(MD);
  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  EXPECT_TRUE(verifyEquivalence(MD, Result.Reduced));
  // Sanitizer builds (the asan-ubsan preset) run an order of magnitude
  // slower; the guard is about algorithmic regressions, not
  // instrumentation overhead.
#if defined(__SANITIZE_ADDRESS__) // GCC
  const double Budget = 300.0;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  const double Budget = 300.0;
#else
  const double Budget = 30.0;
#endif
#else
  const double Budget = 30.0;
#endif
  EXPECT_LT(Seconds, Budget) << "generating-set construction regressed";
}

// Property test: the paper's exactness guarantee on random machines, every
// objective. This is the reproduction's strongest correctness evidence.
class ReductionProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReductionProperty, RandomMachinesPreserveMatrix) {
  RNG R(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  unsigned OpCount = 2 + static_cast<unsigned>(R.nextBelow(6));
  unsigned ResCount = 2 + static_cast<unsigned>(R.nextBelow(7));
  unsigned MaxCycle = 1 + static_cast<unsigned>(R.nextBelow(7));
  MachineDescription MD = makeRandomMachine(R, OpCount, ResCount, MaxCycle);

  ReductionOptions Options;
  Options.Verify = false; // the test does its own verification
  for (SelectionObjective Obj :
       {SelectionObjective::resUses(), SelectionObjective::wordUses(2),
        SelectionObjective::wordUses(4)}) {
    Options.Objective = Obj;
    ReductionResult Result = reduceMachine(MD, Options);
    EXPECT_TRUE(verifyEquivalence(MD, Result.Reduced))
        << "seed=" << GetParam() << " ops=" << OpCount
        << " res=" << ResCount;
    // Loose sanity bound: the greedy cover must not blow up the
    // description (it practically always shrinks it).
    EXPECT_LE(Result.Reduced.totalUsages(), MD.totalUsages() * 5)
        << "reduction exploded usage count";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMachines, ReductionProperty,
                         ::testing::Range(0, 60));
