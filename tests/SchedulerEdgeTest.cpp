//===- tests/SchedulerEdgeTest.cpp - Scheduler edge cases & failures ------===//

#include "machines/MachineModel.h"
#include "query/DiscreteQuery.h"
#include "sched/IterativeModuloScheduler.h"
#include "sched/ListScheduler.h"
#include "sched/MII.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

QueryEnvironment discreteEnv(const MachineDescription &Flat,
                             const std::vector<std::vector<OpId>> &Groups) {
  QueryEnvironment Env;
  Env.FlatMD = &Flat;
  Env.Groups = &Groups;
  Env.MakeModule = [&Flat](QueryConfig C) {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(Flat, C));
  };
  return Env;
}

} // namespace

TEST(ModuloSchedulerEdge, SingleOperationLoop) {
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  DepGraph G("one");
  G.addNode(Toy.MD.findOperation("alu"));

  ModuloScheduleResult R =
      moduloSchedule(G, Toy.MD, discreteEnv(EM.Flat, EM.Groups));
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.II, 1);
  EXPECT_EQ(R.Time[0], 0);
  EXPECT_EQ(R.Stats.totalDecisions(), 1u);
}

TEST(ModuloSchedulerEdge, SelfRecurrenceDictatesII) {
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  DepGraph G("selfrec");
  NodeId Mul = G.addNode(Toy.MD.findOperation("mul"));
  G.addEdge(Mul, Mul, Toy.Latency[G.opOf(Mul)], 1); // latency 4, distance 1

  ModuloScheduleResult R =
      moduloSchedule(G, Toy.MD, discreteEnv(EM.Flat, EM.Groups));
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.Stats.RecMII, 4);
  EXPECT_EQ(R.II, 4);
}

TEST(ModuloSchedulerEdge, SelfConflictForcesHigherII) {
  // The toy multiplier is busy 3 consecutive cycles: at II < 3 the op
  // collides with its own copies, so the scheduler must settle at II >= 3
  // even though ResMII of a single mul is 3 anyway; with two muls the
  // bound doubles.
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  DepGraph G("twomul");
  G.addNode(Toy.MD.findOperation("mul"));
  G.addNode(Toy.MD.findOperation("mul"));

  ModuloScheduleResult R =
      moduloSchedule(G, Toy.MD, discreteEnv(EM.Flat, EM.Groups));
  ASSERT_TRUE(R.Success);
  EXPECT_GE(R.II, 6);
}

TEST(ModuloSchedulerEdge, MaxIICeilingFails) {
  // An impossible ceiling: II may not exceed 2, but the two muls need 6.
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  DepGraph G("toohard");
  G.addNode(Toy.MD.findOperation("mul"));
  G.addNode(Toy.MD.findOperation("mul"));

  ModuloScheduleOptions Options;
  Options.MaxII = 2;
  ModuloScheduleResult R =
      moduloSchedule(G, Toy.MD, discreteEnv(EM.Flat, EM.Groups), Options);
  EXPECT_FALSE(R.Success);
  // MII (6) already exceeds the ceiling: no attempt is even made.
  EXPECT_TRUE(R.Stats.DecisionsPerAttempt.empty());
  EXPECT_EQ(R.Stats.MII, 6);
}

TEST(ModuloSchedulerEdge, PlayDohAlternativesAllUsed) {
  // Four-way alternatives: a loop with four independent integer adds at
  // II=2 must spread over both integer units and both write ports.
  MachineModel PD = makePlayDoh();
  ExpandedMachine EM = expandAlternatives(PD.MD);
  DepGraph G("fouradds");
  OpId IAdd = PD.MD.findOperation("iadd");
  for (int I = 0; I < 4; ++I)
    G.addNode(IAdd);

  ModuloScheduleResult R =
      moduloSchedule(G, PD.MD, discreteEnv(EM.Flat, EM.Groups));
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.II, 2); // 4 adds, 2 write ports
  std::set<int> AltsUsed(R.Alternative.begin(), R.Alternative.end());
  EXPECT_GE(AltsUsed.size(), 2u);
}

TEST(ModuloSchedulerEdge, DeterministicAcrossRuns) {
  MachineModel Cydra = makeCydra5();
  ExpandedMachine EM = expandAlternatives(Cydra.MD);
  DepGraph G = bind(livermoreKernels()[0], Cydra);
  ModuloScheduleResult A =
      moduloSchedule(G, Cydra.MD, discreteEnv(EM.Flat, EM.Groups));
  ModuloScheduleResult B =
      moduloSchedule(G, Cydra.MD, discreteEnv(EM.Flat, EM.Groups));
  ASSERT_TRUE(A.Success);
  EXPECT_EQ(A.II, B.II);
  EXPECT_EQ(A.Time, B.Time);
  EXPECT_EQ(A.Alternative, B.Alternative);
}

TEST(ListSchedulerEdge, IndependentOpsPackToWidth) {
  // Two independent ALU ops on the 2-slot toy VLIW issue the same cycle
  // (different slots); a third waits for the shared writeback bus.
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  DepGraph G("indep");
  OpId Alu = Toy.MD.findOperation("alu");
  G.addNode(Alu);
  G.addNode(Alu);
  G.addNode(Alu);

  DiscreteQueryModule Q(EM.Flat, QueryConfig::linear());
  ListScheduleResult R = listSchedule(G, EM.Groups, Q);
  ASSERT_TRUE(R.Success);
  // Two ops at cycle 0 is impossible: both write WbBus at cycle 1. So
  // the schedule serializes on the bus: cycles 0, 1, 2.
  std::vector<int> Times = R.Time;
  std::sort(Times.begin(), Times.end());
  EXPECT_EQ(Times, (std::vector<int>{0, 1, 2}));
}

TEST(ListSchedulerEdge, EmptyTableOpsStack) {
  // Operations with no resource usages can all share cycle 0.
  MachineDescription MD("nops");
  MD.addResource("r");
  MD.addOperation("nop", ReservationTable());
  ExpandedMachine EM = expandAlternatives(MD);

  DepGraph G("threenops");
  for (int I = 0; I < 3; ++I)
    G.addNode(0);
  DiscreteQueryModule Q(EM.Flat, QueryConfig::linear());
  ListScheduleResult R = listSchedule(G, EM.Groups, Q);
  ASSERT_TRUE(R.Success);
  for (NodeId N = 0; N < 3; ++N)
    EXPECT_EQ(R.Time[N], 0);
}

TEST(ModuloSchedulerEdge, PriorityVariantsProduceValidSchedules) {
  MachineModel Cydra = makeCydra5();
  ExpandedMachine EM = expandAlternatives(Cydra.MD);
  for (SchedulePriority Priority :
       {SchedulePriority::Height, SchedulePriority::Depth,
        SchedulePriority::SourceOrder}) {
    for (size_t K : {0u, 2u, 6u, 20u}) { // a spread of kernels
      DepGraph G = bind(livermoreKernels()[K], Cydra);
      ModuloScheduleOptions Options;
      Options.Priority = Priority;
      ModuloScheduleResult R = moduloSchedule(
          G, Cydra.MD, discreteEnv(EM.Flat, EM.Groups), Options);
      ASSERT_TRUE(R.Success)
          << "priority " << static_cast<int>(Priority) << " kernel " << K;
      EXPECT_TRUE(G.scheduleRespectsDependences(R.Time, R.II));
    }
  }
}

TEST(WorkCountersEdge, AccumulateAndTotals) {
  WorkCounters A, B;
  A.CheckCalls = 2;
  A.CheckUnits = 5;
  A.AssignFreeUnits = 7;
  B.CheckCalls = 1;
  B.FreeUnits = 3;
  B.TransitionUnits = 2;
  A.accumulate(B);
  EXPECT_EQ(A.CheckCalls, 3u);
  EXPECT_EQ(A.CheckUnits, 5u);
  EXPECT_EQ(A.FreeUnits, 3u);
  EXPECT_EQ(A.TransitionUnits, 2u);
  EXPECT_EQ(A.totalUnits(), 5u + 3u + 7u);
  A.reset();
  EXPECT_EQ(A.totalCalls(), 0u);
}

TEST(QueryDeath, AssignFreeOnModuloSelfConflictAborts) {
  MachineDescription MD = makeFig1Machine();
  OpId B = MD.findOperation("B");
  DiscreteQueryModule Q(MD, QueryConfig::modulo(2)); // B self-conflicts
  std::vector<InstanceId> Evicted;
  EXPECT_DEATH(Q.assignAndFree(B, 0, 1, Evicted), "self-conflicts");
}

TEST(MIIEdge, ZeroDistancePositiveCycleAborts) {
  DepGraph G("bad");
  NodeId A = G.addNode(0);
  NodeId B = G.addNode(0);
  // A zero-distance cycle (invalid loop body) alongside a genuine carried
  // edge: no II can satisfy it, which computeRecMII must refuse loudly.
  G.addEdge(A, B, 1, 0);
  G.addEdge(B, A, 1, 0);
  G.addEdge(A, A, 1, 1);
  EXPECT_DEATH(computeRecMII(G), "no initiation interval");
}

TEST(MIIEdge, PureZeroDistanceGraphIsAcyclicBound) {
  // Without carried edges RecMII is trivially 1 (basic-block semantics).
  DepGraph G("dag");
  NodeId A = G.addNode(0);
  NodeId B = G.addNode(0);
  G.addEdge(A, B, 4, 0);
  EXPECT_EQ(computeRecMII(G), 1);
}
