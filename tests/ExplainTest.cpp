//===- tests/ExplainTest.cpp - Reduction provenance tests -----------------===//

#include "machines/MachineModel.h"
#include "reduce/Explain.h"
#include "reduce/Reduction.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace rmd;

TEST(Explain, ResourceLatenciesMatchSynthesizedView) {
  MachineDescription MD = makeFig1Machine();
  // Resource r3 is used by B at cycles 2..5: its row forbids exactly
  // F(B,B) over distances 0..3 (canonical).
  std::vector<ForbiddenLatency> L = resourceLatencies(MD, 3);
  OpId B = MD.findOperation("B");
  ASSERT_EQ(L.size(), 4u);
  for (int F = 0; F <= 3; ++F)
    EXPECT_TRUE(std::find(L.begin(), L.end(),
                          (ForbiddenLatency{B, B, F})) != L.end());
  // An unused resource has no row.
  MachineDescription Solo("solo");
  Solo.addResource("never");
  Solo.addOperation("x", ReservationTable());
  EXPECT_TRUE(resourceLatencies(Solo, 0).empty());
}

TEST(Explain, Fig1Report) {
  MachineDescription MD = makeFig1Machine();
  MachineDescription Reduced = reduceMachine(MD).Reduced;
  ReductionReport Report = explainReduction(MD, Reduced);

  ASSERT_EQ(Report.Resources.size(), 2u);
  // Together the synthesized rows enforce all 6 canonical latencies.
  size_t Total = 0;
  for (const ResourceExplanation &E : Report.Resources)
    Total += E.Enforces.size();
  EXPECT_GE(Total, 6u);

  // Each synthesized row subsumes at least one original hardware row
  // (e.g. the B-only row subsumes r3 and r4).
  bool AnySubsumption = false;
  for (const ResourceExplanation &E : Report.Resources)
    AnySubsumption |= !E.Subsumes.empty();
  EXPECT_TRUE(AnySubsumption);
}

TEST(Explain, RedundantRowsDetectedOnCydra) {
  // The enriched Cydra carries deliberately redundant rows (input
  // latches, iteration control); the report must identify some of them.
  MachineDescription Flat = expandAlternatives(makeCydra5().MD).Flat;
  MachineDescription Reduced = reduceMachine(Flat).Reduced;
  ReductionReport Report = explainReduction(Flat, Reduced);

  EXPECT_FALSE(Report.RedundantOriginals.empty());
  auto Has = [&](const std::string &Name) {
    return std::find(Report.RedundantOriginals.begin(),
                     Report.RedundantOriginals.end(),
                     Name) != Report.RedundantOriginals.end();
  };
  EXPECT_TRUE(Has("FMulIterCtl")); // duplicates FMulIter cycle for cycle
  EXPECT_TRUE(Has("MemIn0"));      // duplicates SlotMem0
}

TEST(Explain, PrintedReportMentionsKeyFacts) {
  MachineDescription MD = makeFig1Machine();
  MachineDescription Reduced = reduceMachine(MD).Reduced;
  std::ostringstream OS;
  printReductionReport(OS, explainReduction(MD, Reduced), Reduced);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("2 synthesized resources"), std::string::npos);
  EXPECT_NE(Out.find("q0"), std::string::npos);
  EXPECT_NE(Out.find("subsumes"), std::string::npos);
}
