//===- tests/ExactCoverTest.cpp - Exact cover solver tests ----------------===//

#include "machines/MachineModel.h"
#include "reduce/ExactCover.h"
#include "reduce/GeneratingSet.h"
#include "reduce/Reduction.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

struct Prepared {
  MachineDescription Flat;
  ForbiddenLatencyMatrix FLM{0};
  std::vector<SynthesizedResource> Pruned;
};

Prepared prepare(const MachineDescription &MD) {
  Prepared P{expandAlternatives(MD).Flat, ForbiddenLatencyMatrix(0), {}};
  P.FLM = ForbiddenLatencyMatrix::compute(P.Flat);
  P.Pruned = pruneGeneratingSet(buildGeneratingSet(P.FLM));
  return P;
}

MachineDescription randomMachine(RNG &R) {
  MachineDescription MD("random");
  unsigned Resources = 3 + static_cast<unsigned>(R.nextBelow(4));
  unsigned Ops = 2 + static_cast<unsigned>(R.nextBelow(3));
  for (unsigned I = 0; I < Resources; ++I)
    MD.addResource("r" + std::to_string(I));
  for (unsigned O = 0; O < Ops; ++O) {
    ReservationTable T;
    unsigned Usages = 1 + static_cast<unsigned>(R.nextBelow(3));
    for (unsigned U = 0; U < Usages; ++U)
      T.addUsage(static_cast<ResourceId>(R.nextBelow(Resources)),
                 static_cast<int>(R.nextBelow(5)));
    MD.addOperation("op" + std::to_string(O), std::move(T));
  }
  return MD;
}

} // namespace

TEST(ExactCover, Figure1OptimumIsFive) {
  Prepared P = prepare(makeFig1Machine());
  auto Exact = selectCoverOptimal(P.FLM, P.Pruned);
  ASSERT_TRUE(Exact.has_value());
  // Figure 1d: 5 usages (1 for A, 4 for B) are necessary and sufficient.
  EXPECT_EQ(Exact->Selection.numSelectedUsages(), 5u);

  // The greedy heuristic matches the optimum here.
  SelectionResult Greedy =
      selectCover(P.FLM, P.Pruned, SelectionObjective::resUses());
  EXPECT_EQ(Greedy.numSelectedUsages(),
            Exact->Selection.numSelectedUsages());
}

TEST(ExactCover, ProducesEquivalentDescriptions) {
  Prepared P = prepare(makeToyVliw().MD);
  auto Exact = selectCoverOptimal(P.FLM, P.Pruned);
  ASSERT_TRUE(Exact.has_value());
  MachineDescription Reduced =
      buildReducedDescription(P.Flat, P.Pruned, Exact->Selection, ".opt");
  EXPECT_TRUE(verifyEquivalence(P.Flat, Reduced));
}

TEST(ExactCover, NeverWorseThanGreedy) {
  RNG R(777);
  int Compared = 0;
  for (int Trial = 0; Trial < 40; ++Trial) {
    Prepared P = prepare(randomMachine(R));
    auto Exact = selectCoverOptimal(P.FLM, P.Pruned, 200000);
    if (!Exact)
      continue;
    ++Compared;
    SelectionResult Greedy =
        selectCover(P.FLM, P.Pruned, SelectionObjective::resUses());
    EXPECT_LE(Exact->Selection.numSelectedUsages(),
              Greedy.numSelectedUsages())
        << "trial " << Trial;

    MachineDescription Reduced = buildReducedDescription(
        P.Flat, P.Pruned, Exact->Selection, ".opt");
    EXPECT_TRUE(verifyEquivalence(P.Flat, Reduced)) << "trial " << Trial;
  }
  EXPECT_GT(Compared, 20);
}

TEST(ExactCover, BudgetExhaustionReported) {
  Prepared P = prepare(makeCydra5().MD);
  // Two nodes are never enough for a real machine.
  EXPECT_FALSE(selectCoverOptimal(P.FLM, P.Pruned, 2).has_value());
}

TEST(ExactCover, EmptyMachine) {
  MachineDescription MD("empty");
  MD.addResource("r");
  Prepared P = prepare(MD);
  auto Exact = selectCoverOptimal(P.FLM, P.Pruned);
  ASSERT_TRUE(Exact.has_value());
  EXPECT_EQ(Exact->Selection.numSelectedUsages(), 0u);
}
