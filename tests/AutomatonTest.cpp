//===- tests/AutomatonTest.cpp - FSA baseline tests -----------------------===//

#include "automaton/PipelineAutomaton.h"
#include "flm/ForbiddenLatencyMatrix.h"
#include "machines/MachineModel.h"
#include "reduce/Reduction.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

/// Runs \p A over a multi-issue schedule: IssuesPerCycle[t] lists the ops
/// issued in cycle t. Returns true if every issue is accepted.
bool acceptsSchedule(const PipelineAutomaton &A,
                     const std::vector<std::vector<OpId>> &IssuesPerCycle) {
  PipelineAutomaton::StateId S = A.initialState();
  for (const std::vector<OpId> &Cycle : IssuesPerCycle) {
    for (OpId Op : Cycle) {
      std::optional<PipelineAutomaton::StateId> Next = A.issue(S, Op);
      if (!Next)
        return false;
      S = *Next;
    }
    S = A.advance(S);
  }
  return true;
}

/// Oracle: the schedule is contention-free iff no pair of issues hits a
/// forbidden latency.
bool oracleAccepts(const ForbiddenLatencyMatrix &FLM,
                   const std::vector<std::vector<OpId>> &IssuesPerCycle) {
  std::vector<std::pair<OpId, int>> Issues;
  for (size_t T = 0; T < IssuesPerCycle.size(); ++T)
    for (OpId Op : IssuesPerCycle[T])
      Issues.push_back({Op, static_cast<int>(T)});
  for (size_t I = 0; I < Issues.size(); ++I)
    for (size_t J = 0; J < Issues.size(); ++J) {
      if (I == J)
        continue;
      if (FLM.isForbidden(Issues[I].first, Issues[J].first,
                          Issues[I].second - Issues[J].second))
        return false;
    }
  return true;
}

std::vector<std::vector<OpId>> randomSchedule(RNG &R,
                                              const MachineDescription &MD,
                                              int Cycles, int MaxPerCycle) {
  std::vector<std::vector<OpId>> S(Cycles);
  for (auto &Cycle : S) {
    unsigned N = static_cast<unsigned>(R.nextBelow(MaxPerCycle + 1));
    for (unsigned I = 0; I < N; ++I)
      Cycle.push_back(static_cast<OpId>(R.nextBelow(MD.numOperations())));
  }
  return S;
}

} // namespace

TEST(PipelineAutomaton, Fig1BasicTransitions) {
  MachineDescription MD = makeFig1Machine();
  auto A = PipelineAutomaton::build(MD);
  ASSERT_TRUE(A.has_value());
  OpId OpA = MD.findOperation("A");
  OpId OpB = MD.findOperation("B");

  auto S0 = A->initialState();
  // Two As in the same cycle conflict (0 in F(A,A)).
  auto S1 = A->issue(S0, OpA);
  ASSERT_TRUE(S1.has_value());
  EXPECT_FALSE(A->issue(*S1, OpA).has_value());
  // B one cycle after A conflicts (1 in F(B,A)).
  auto S2 = A->advance(*S1);
  EXPECT_FALSE(A->issue(S2, OpB).has_value());
  // Two cycles after A is fine.
  auto S3 = A->advance(S2);
  EXPECT_TRUE(A->issue(S3, OpB).has_value());
}

TEST(PipelineAutomaton, AgreesWithForbiddenLatencyOracle) {
  for (const MachineDescription &MD :
       {makeFig1Machine(), expandAlternatives(makeToyVliw().MD).Flat}) {
    auto A = PipelineAutomaton::build(MD);
    ASSERT_TRUE(A.has_value()) << MD.name();
    ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(MD);

    RNG R(2026);
    int Agreements = 0;
    for (int Trial = 0; Trial < 400; ++Trial) {
      auto S = randomSchedule(R, MD, 10, 2);
      // The automaton rejects at the *first* offending issue; the oracle
      // is order-insensitive. Acceptance must nonetheless coincide.
      bool Got = acceptsSchedule(*A, S);
      bool Want = oracleAccepts(FLM, S);
      ASSERT_EQ(Got, Want) << MD.name() << " trial " << Trial;
      Agreements += Got == Want;
    }
    EXPECT_EQ(Agreements, 400);
  }
}

TEST(PipelineAutomaton, ReverseAcceptsMirroredSchedules) {
  MachineDescription MD = expandAlternatives(makeToyVliw().MD).Flat;
  auto Fwd = PipelineAutomaton::build(MD);
  auto Rev = PipelineAutomaton::buildReverse(MD);
  ASSERT_TRUE(Fwd.has_value());
  ASSERT_TRUE(Rev.has_value());

  // Reversing a schedule maps occupancy at cycle t to cycle H-1-t. With
  // per-op mirrored tables, an op issued forward at c is issued in the
  // mirrored schedule at H-1-c-(len-1). The reverse automaton must accept
  // exactly the mirrors of the schedules the forward automaton accepts.
  RNG R(7);
  for (int Trial = 0; Trial < 600; ++Trial) {
    auto S = randomSchedule(R, MD, 8, 2);
    int T = static_cast<int>(S.size());
    int Horizon = T + MD.maxTableLength();
    std::vector<std::vector<OpId>> Mirror(Horizon);
    for (int Cycle = 0; Cycle < T; ++Cycle)
      for (OpId Op : S[Cycle]) {
        int Len = MD.operation(Op).table().length();
        int MirrorCycle = Horizon - 1 - Cycle - (Len - 1);
        ASSERT_GE(MirrorCycle, 0); // Horizon is padded by maxTableLength
        Mirror[MirrorCycle].push_back(Op);
      }
    EXPECT_EQ(acceptsSchedule(*Fwd, S), acceptsSchedule(*Rev, Mirror))
        << "trial " << Trial;
  }
}

TEST(PipelineAutomaton, StateCountsReasonable) {
  // Automaton approaches start from minimized descriptions; the language
  // depends only on the forbidden latency matrix, so build from the
  // reduction (the raw hardware-level description exceeds any sane cap --
  // exactly the state-explosion problem of Section 2).
  MachineDescription Flat = expandAlternatives(makeMipsR3000().MD).Flat;
  MachineDescription Mips = reduceMachine(Flat).Reduced;
  auto A = PipelineAutomaton::build(Mips, 1u << 22);
  ASSERT_TRUE(A.has_value());
  // Single-issue machine with long divides: clearly more than a handful of
  // states, and the table dwarfs a reduced reservation table.
  EXPECT_GT(A->numStates(), 100u);
  EXPECT_GT(A->tableBytes(), 10000u);
  EXPECT_LE(A->numCycleAdvancingStates(), A->numStates());
  EXPECT_GT(A->numIssueTransitions(), 0u);
}

TEST(PipelineAutomaton, CapAborts) {
  MachineDescription Mips = expandAlternatives(makeMipsR3000().MD).Flat;
  EXPECT_FALSE(PipelineAutomaton::build(Mips, 4).has_value());
}

TEST(PipelineAutomaton, RawHardwareDescriptionExplodes) {
  // The hardware-level MIPS description (with its redundant pipeline-stage
  // rows) overflows a 2^18-state cap that the reduced description fits
  // comfortably -- the motivation for reducing before building automata.
  MachineDescription Flat = expandAlternatives(makeMipsR3000().MD).Flat;
  EXPECT_FALSE(PipelineAutomaton::build(Flat, 1u << 18).has_value());
}

TEST(PipelineAutomaton, RejectsHorizonOver64) {
  MachineDescription MD("long");
  ResourceId R = MD.addResource("r");
  ReservationTable T;
  T.addUsage(R, 0);
  T.addUsage(R, 70);
  MD.addOperation("x", T);
  EXPECT_FALSE(PipelineAutomaton::build(MD).has_value());
}
