//===- tests/MdlModelTest.cpp - Annotated MDL model tests -----------------===//

#include "machines/MdlModel.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace rmd;

#ifndef RMD_SOURCE_DIR
#define RMD_SOURCE_DIR "."
#endif

TEST(MdlModel, RoleNamesRoundTrip) {
  for (OpRole Role :
       {OpRole::IntAlu, OpRole::AddrCalc, OpRole::Load, OpRole::Store,
        OpRole::FloatAdd, OpRole::FloatMul, OpRole::FloatDiv,
        OpRole::Convert, OpRole::Compare, OpRole::Move, OpRole::Branch}) {
    std::optional<OpRole> Back = roleFromName(roleName(Role));
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, Role);
  }
  EXPECT_FALSE(roleFromName("warp-drive").has_value());
}

TEST(MdlModel, BuiltinModelsRoundTrip) {
  for (const MachineModel &M :
       {makeCydra5(), makeAlpha21064(), makeMipsR3000(), makeToyVliw(),
        makePlayDoh(), makeM88100()}) {
    std::string Text = writeMdlModel(M);
    DiagnosticEngine Diags;
    std::optional<MachineModel> Back = parseMdlModel(Text, Diags);
    ASSERT_TRUE(Back.has_value()) << M.MD.name();
    EXPECT_FALSE(Diags.hasErrors());
    EXPECT_EQ(Back->MD, M.MD) << M.MD.name();
    EXPECT_EQ(Back->Latency, M.Latency) << M.MD.name();
    EXPECT_EQ(Back->Role, M.Role) << M.MD.name();
  }
}

TEST(MdlModel, AnnotationsParsed) {
  DiagnosticEngine Diags;
  std::optional<MachineModel> Model = parseMdlModel(R"(
    machine m {
      resources r;
      operation ld latency 3 role load { r at 0; }
      operation st role store latency 1 { r at 0; }
    }
  )",
                                                    Diags);
  ASSERT_TRUE(Model.has_value());
  EXPECT_EQ(Model->Latency, (std::vector<int>{3, 1}));
  EXPECT_EQ(Model->Role, (std::vector<OpRole>{OpRole::Load, OpRole::Store}));
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(MdlModel, DefaultsWarn) {
  DiagnosticEngine Diags;
  std::optional<MachineModel> Model = parseMdlModel(
      "machine m { resources r; operation x { r at 0; r at 4; } }", Diags);
  ASSERT_TRUE(Model.has_value());
  // Default latency = table length; default role = int-alu; two warnings.
  EXPECT_EQ(Model->Latency, (std::vector<int>{5}));
  EXPECT_EQ(Model->Role, (std::vector<OpRole>{OpRole::IntAlu}));
  EXPECT_EQ(Diags.diagnostics().size(), 2u);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(MdlModel, UnknownRoleIsAnError) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseMdlModel("machine m { resources r; operation x role "
                             "quux { r at 0; } }",
                             Diags)
                   .has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(MdlModel, CheckedInFilesMatchBuiltins) {
  // The machines/*.mdl files in the repository must stay in sync with the
  // builtin constructors (they are generated from them).
  struct Entry {
    const char *File;
    MachineModel Model;
  };
  std::vector<Entry> Entries;
  Entries.push_back({"machines/cydra5.mdl", makeCydra5()});
  Entries.push_back({"machines/alpha21064.mdl", makeAlpha21064()});
  Entries.push_back({"machines/mips-r3000-r3010.mdl", makeMipsR3000()});
  Entries.push_back({"machines/toyvliw.mdl", makeToyVliw()});
  Entries.push_back({"machines/playdoh.mdl", makePlayDoh()});
  Entries.push_back({"machines/m88100.mdl", makeM88100()});

  for (const Entry &E : Entries) {
    std::string Path = std::string(RMD_SOURCE_DIR) + "/" + E.File;
    std::ifstream In(Path);
    ASSERT_TRUE(In.good()) << "missing " << Path;
    std::ostringstream SS;
    SS << In.rdbuf();

    DiagnosticEngine Diags;
    std::optional<MachineModel> Parsed = parseMdlModel(SS.str(), Diags);
    ASSERT_TRUE(Parsed.has_value()) << Path;
    EXPECT_EQ(Parsed->MD, E.Model.MD) << Path;
    EXPECT_EQ(Parsed->Latency, E.Model.Latency) << Path;
    EXPECT_EQ(Parsed->Role, E.Model.Role) << Path;
  }
}
