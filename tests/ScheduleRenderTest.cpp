//===- tests/ScheduleRenderTest.cpp - Schedule rendering tests ------------===//

#include "machines/MachineModel.h"
#include "query/DiscreteQuery.h"
#include "sched/IterativeModuloScheduler.h"
#include "sched/ScheduleRender.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace rmd;

TEST(ScheduleRender, IssueOrderSortedByTime) {
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  DepGraph G("g");
  G.addNode(Toy.MD.findOperation("load"), "ld");
  G.addNode(Toy.MD.findOperation("alu"), "add");
  std::vector<int> Time = {3, 0};
  std::vector<int> Alternative = {0, 1};

  std::vector<OpId> Chosen = chosenFlatOps(G, EM.Groups, Alternative);
  EXPECT_EQ(EM.Flat.operation(Chosen[1]).Name, "alu@1");

  std::ostringstream OS;
  renderIssueOrder(OS, G, EM.Flat, Chosen, Time);
  std::string Out = OS.str();
  // "add" at t=0 must precede "ld" at t=3.
  EXPECT_LT(Out.find("t=0  add"), Out.find("t=3  ld"));
}

TEST(ScheduleRender, KernelShowsStagesAndEmptySlots) {
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  DepGraph G("g");
  G.addNode(Toy.MD.findOperation("load"));
  G.addNode(Toy.MD.findOperation("alu"));
  std::vector<int> Time = {0, 7}; // II=3: slots 0 and 1, stages 0 and 2
  std::vector<int> Alternative = {0, 0};
  std::vector<OpId> Chosen = chosenFlatOps(G, EM.Groups, Alternative);

  std::ostringstream OS;
  renderKernel(OS, G, EM.Flat, Chosen, Time, 3);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("slot 0: load[stage 0]"), std::string::npos);
  EXPECT_NE(Out.find("slot 1: alu@0[stage 2]"), std::string::npos);
  EXPECT_NE(Out.find("slot 2: (empty)"), std::string::npos);
}

TEST(ScheduleRender, AnalyzeKernelShapes) {
  // Times {0, 7, 8} at II=3: max stage floor(8/3)=2 -> 3 stages, prologue
  // 6 cycles; slots 0,1,2 hold {0}, {7}, {8}: all occupied, width 1.
  KernelInfo Info = analyzeKernel({0, 7, 8}, 3);
  EXPECT_EQ(Info.Stages, 3);
  EXPECT_EQ(Info.PrologueCycles, 6);
  EXPECT_EQ(Info.OccupiedSlots, 3);
  EXPECT_EQ(Info.MaxSlotWidth, 1);

  // Everything in one slot.
  KernelInfo Flat = analyzeKernel({0, 4, 8}, 4);
  EXPECT_EQ(Flat.Stages, 3);
  EXPECT_EQ(Flat.OccupiedSlots, 1);
  EXPECT_EQ(Flat.MaxSlotWidth, 3);

  // Single-stage loop: no prologue.
  KernelInfo Single = analyzeKernel({0, 1}, 4);
  EXPECT_EQ(Single.Stages, 1);
  EXPECT_EQ(Single.PrologueCycles, 0);

  // Empty schedule is well-defined.
  KernelInfo Empty = analyzeKernel({}, 5);
  EXPECT_EQ(Empty.Stages, 0);
}

TEST(ScheduleRender, RealKernelRoundTrip) {
  // Render an actual modulo schedule; every node must appear exactly once
  // across the kernel rows.
  MachineModel Cydra = makeCydra5();
  ExpandedMachine EM = expandAlternatives(Cydra.MD);
  DepGraph G = bind(livermoreKernels()[6], Cydra); // daxpy

  QueryEnvironment Env;
  Env.FlatMD = &EM.Flat;
  Env.Groups = &EM.Groups;
  Env.MakeModule = [&](QueryConfig C) {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(EM.Flat, C));
  };
  ModuloScheduleResult R = moduloSchedule(G, Cydra.MD, Env);
  ASSERT_TRUE(R.Success);

  std::vector<OpId> Chosen = chosenFlatOps(G, EM.Groups, R.Alternative);
  std::ostringstream OS;
  renderKernel(OS, G, EM.Flat, Chosen, R.Time, R.II);
  std::string Out = OS.str();

  size_t Mentions = 0;
  for (size_t Pos = Out.find("[stage "); Pos != std::string::npos;
       Pos = Out.find("[stage ", Pos + 1))
    ++Mentions;
  EXPECT_EQ(Mentions, G.numNodes());
}
