//===- tests/FaultInjectionTest.cpp - Fault sweep & degradation ladder ----===//
//
// The robustness contract of the recoverable-error layer: with any
// registered fault point armed — alone or in pairs — the pipeline either
// recovers (producing a schedule *identical* to the fault-free one) or
// fails with a clean structured error. Nothing aborts; that is asserted by
// these tests running to completion in-process.
//
// The identity half leans on the paper's Theorem 1: every reduce/cache
// fault degrades to scheduling against the original description, whose
// forbidden-latency matrix is exactly the reduced one's, so the scheduler
// makes bit-identical decisions.
//
//===----------------------------------------------------------------------===//

#include "automaton/AutomatonQuery.h"
#include "mdl/Parser.h"
#include "query/DiscreteQuery.h"
#include "reduce/ReductionCache.h"
#include "sched/IterativeModuloScheduler.h"
#include "sched/MII.h"
#include "sched/OperationDrivenScheduler.h"
#include "server/Client.h"
#include "server/Server.h"
#include "support/Deadline.h"
#include "support/Degradation.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <stdexcept>
#include <unistd.h>

using namespace rmd;

namespace {

/// The paper's Figure 1 machine, via the parser so the mdl.parse fault
/// point sits on the harness path.
const char *Fig1Mdl = R"(machine fig1 {
  resources r0, r1, r2, r3, r4;
  operation A { r0 at 0; r1 at 1; r2 at 2; }
  operation B { r1 at 0; r2 at 1; r3 at 2 .. 5; r4 at 6 .. 7; }
}
)";

/// Everything one end-to-end run can end as. Abort-free by construction:
/// the harness returns one of these for every armed fault combination.
struct PipelineOutcome {
  bool ParseFailed = false;   ///< parseMdl reported an error (clean)
  bool Degraded = false;      ///< reduce fell back to the original
  ModuloScheduleResult R;     ///< scheduling result (when parse succeeded)
  /// The in-process server round-trip: ok, or the structured error the
  /// client saw. Never an abort, never a hang (the client arms a recv
  /// timeout so a dispatcher wedged by threadpool.task degrades to
  /// TimedOut).
  Status ServerStatus;
  bool ServerLeakedSessions = false; ///< sessions outlived their teardown
};

std::string uniqueFaultSocket() {
  static std::atomic<int> Counter{0};
  return "@rmd-fault-" + std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1));
}

/// One client round-trip against a fresh in-process server: load fig1,
/// open a session, run a small batch, close. Puts server.accept,
/// server.enqueue, and server.session_alloc on the sweep path; every
/// armed-fault outcome must be a structured Status, and no session may
/// survive the teardown.
void runServerRoundTrip(PipelineOutcome &Out) {
  using namespace rmd::server;
  using namespace rmd::wire;

  ServerOptions Options;
  Options.SocketPath = uniqueFaultSocket();
  Options.Workers = 1;
  Options.QueueCapacity = 4;
  Expected<std::unique_ptr<RmdServer>> Server =
      RmdServer::start(std::move(Options));
  if (!Server) {
    Out.ServerStatus = Server.status();
    return;
  }

  Out.ServerStatus = [&]() -> Status {
    Expected<std::unique_ptr<RmdClient>> Client =
        RmdClient::connect(Server.value()->socketPath(),
                           /*RecvTimeoutMs=*/2000);
    if (!Client)
      return Client.status();
    RmdClient &C = *Client.value();
    Expected<LoadMachineReply> M = C.loadMachine("fig1");
    if (!M)
      return M.status();
    OpenSessionRequest OpenReq;
    OpenReq.MachineId = M.value().MachineId;
    Expected<OpenSessionReply> Open = C.openSession(OpenReq);
    if (!Open)
      return Open.status();
    BatchRequest Batch;
    Batch.SessionId = Open.value().SessionId;
    Batch.Events.push_back({Verb::Check, 0, 0, 0});
    Batch.Events.push_back({Verb::CheckAssign, 0, 0, 1});
    Batch.Events.push_back({Verb::Reset, 0, 0, 0});
    Expected<BatchReply> R = C.runBatch(Batch);
    if (!R)
      return R.status();
    return C.closeSession(Open.value().SessionId);
  }();

  Server.value()->stop();
  Out.ServerLeakedSessions = Server.value()->sessionCount() != 0;
}

/// Parse -> expand -> reduce (through a cache in \p CacheDir, verified,
/// two threads) -> modulo-schedule a 3-node loop. Also touches the
/// automaton rung so automaton.cap is on the path.
PipelineOutcome runPipeline(const std::string &CacheDir) {
  PipelineOutcome Out;

  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Fig1Mdl, Diags);
  if (!MD) {
    Out.ParseFailed = true;
    return Out;
  }

  ExpandedMachine EM = expandAlternatives(*MD);
  ReductionOptions Options;
  Options.Threads = 2;
  ReductionCache Cache(CacheDir);
  SafeReduction Safe = reduceMachineOrFallback(EM.Flat, Options, &Cache);
  Out.Degraded = Safe.Degraded;
  const MachineDescription &Reduced = Safe.Result.Reduced;

  // Automaton rung: build (or fall back) and answer one query, asserting
  // the fallback answers it exactly like a discrete module would.
  std::unique_ptr<ContentionQueryModule> Auto =
      makeAutomatonOrFallback(Reduced, /*Horizon=*/32);
  DiscreteQueryModule Ref(Reduced, QueryConfig::linear(0));
  EXPECT_EQ(Auto->check(0, 0), Ref.check(0, 0));

  // A small loop with a carried recurrence: A -> B -> A(next iteration).
  DepGraph G("loop");
  NodeId N0 = G.addNode(0, "a0");
  NodeId N1 = G.addNode(1, "b0");
  NodeId N2 = G.addNode(0, "a1");
  G.addEdge(N0, N1, 1);
  G.addEdge(N1, N2, 1);
  G.addEdge(N2, N0, 1, /*Distance=*/1);

  QueryEnvironment Env;
  Env.FlatMD = &Reduced;
  Env.Groups = &EM.Groups;
  Env.MakeModule = [&Reduced](QueryConfig C) {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(Reduced, C));
  };
  Out.R = moduloSchedule(G, *MD, Env, {});

  runServerRoundTrip(Out);
  return Out;
}

/// Asserts \p Got is a recovery (schedule identical to \p Baseline) or a
/// clean structured error — never anything in between.
void expectRecoveryOrCleanError(const PipelineOutcome &Got,
                                const PipelineOutcome &Baseline,
                                const std::string &Spec) {
  // The server rungs: whatever the fault did to the round-trip, the
  // client saw either success or a structured error (a Status with a
  // nonzero code — never a hang past its timeout, and the harness
  // completing at all rules out an abort), and teardown closed every
  // session.
  EXPECT_FALSE(Got.ServerLeakedSessions) << Spec;
  if (!Got.ServerStatus.isOk())
    EXPECT_FALSE(Got.ServerStatus.message().empty())
        << Spec << ": structured errors carry a message";

  if (Got.ParseFailed)
    return; // the mdl.parse rung: a clean diagnostic, nothing scheduled
  if (Got.R.Outcome == ScheduleOutcome::TimedOut ||
      Got.R.Outcome == ScheduleOutcome::Cancelled) {
    // The sched.deadline rung: a structured error plus a sane partial
    // placement (unplaced nodes marked, placed nodes within bounds).
    EXPECT_FALSE(Got.R.Error.isOk()) << Spec;
    ASSERT_EQ(Got.R.Alternative.size(), Baseline.R.Alternative.size());
    for (int A : Got.R.Alternative)
      EXPECT_GE(A, -1) << Spec;
    return;
  }
  // Every other rung recovers completely: same schedule, decision for
  // decision, as the fault-free run (Theorem 1 for the reduce/cache rungs).
  ASSERT_TRUE(Got.R.Success) << Spec << ": " << Got.R.Error.render();
  EXPECT_EQ(Got.R.II, Baseline.R.II) << Spec;
  EXPECT_EQ(Got.R.Time, Baseline.R.Time) << Spec;
  EXPECT_EQ(Got.R.Alternative, Baseline.R.Alternative) << Spec;
}

class FaultInjectionTest : public ::testing::Test {
protected:
  void SetUp() override {
    FaultInjection::instance().reset();
    Dir = ::testing::TempDir() + "/rmd-fault-test-" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(Dir);
  }
  void TearDown() override {
    FaultInjection::instance().reset();
    std::filesystem::remove_all(Dir);
  }
  std::string Dir;
};

} // namespace

//===----------------------------------------------------------------------===//
// Spec grammar
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, EmptySpecDisarms) {
  FaultInjection &FI = FaultInjection::instance();
  ASSERT_TRUE(FI.configure("cache.read").isOk());
  EXPECT_TRUE(FI.armed());
  ASSERT_TRUE(FI.configure("").isOk());
  EXPECT_FALSE(FI.armed());
  EXPECT_FALSE(FaultInjection::fire(faultpoints::CacheRead));
}

TEST_F(FaultInjectionTest, UnknownPointRejected) {
  Status S = FaultInjection::instance().configure("no.such.point");
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), ErrorCode::ParseError);
  EXPECT_NE(S.message().find("no.such.point"), std::string::npos);
  EXPECT_FALSE(FaultInjection::instance().armed());
}

TEST_F(FaultInjectionTest, MalformedEntriesRejected) {
  FaultInjection &FI = FaultInjection::instance();
  EXPECT_EQ(FI.configure("cache.read:0").code(), ErrorCode::ParseError);
  EXPECT_EQ(FI.configure("cache.read:x").code(), ErrorCode::ParseError);
  EXPECT_EQ(FI.configure("cache.read%101").code(), ErrorCode::ParseError);
  EXPECT_EQ(FI.configure("seed=abc").code(), ErrorCode::ParseError);
  EXPECT_FALSE(FI.armed());
}

TEST_F(FaultInjectionTest, NthHitFiresExactlyOnce) {
  FaultInjection &FI = FaultInjection::instance();
  ASSERT_TRUE(FI.configure("reduce.verify:2").isOk());
  EXPECT_FALSE(FaultInjection::fire(faultpoints::ReduceVerify));
  EXPECT_TRUE(FaultInjection::fire(faultpoints::ReduceVerify));
  EXPECT_FALSE(FaultInjection::fire(faultpoints::ReduceVerify));
  EXPECT_EQ(FI.hits(faultpoints::ReduceVerify), 3u);
  EXPECT_EQ(FI.fired(faultpoints::ReduceVerify), 1u);
}

TEST_F(FaultInjectionTest, FromNthHitFiresOnward) {
  FaultInjection &FI = FaultInjection::instance();
  ASSERT_TRUE(FI.configure("cache.write:2+").isOk());
  EXPECT_FALSE(FaultInjection::fire(faultpoints::CacheWrite));
  EXPECT_TRUE(FaultInjection::fire(faultpoints::CacheWrite));
  EXPECT_TRUE(FaultInjection::fire(faultpoints::CacheWrite));
  EXPECT_EQ(FI.fired(faultpoints::CacheWrite), 2u);
}

TEST_F(FaultInjectionTest, StarArmsEveryPoint) {
  FaultInjection &FI = FaultInjection::instance();
  ASSERT_TRUE(FI.configure("*").isOk());
  for (const char *Point : FaultInjection::registeredPoints())
    EXPECT_TRUE(FaultInjection::fire(Point)) << Point;
}

TEST_F(FaultInjectionTest, PercentIsDeterministicInSeed) {
  FaultInjection &FI = FaultInjection::instance();
  auto Run = [&FI](const char *Spec) {
    FI.reset();
    EXPECT_TRUE(FI.configure(Spec).isOk());
    std::vector<bool> Pattern;
    for (int I = 0; I < 64; ++I)
      Pattern.push_back(FaultInjection::fire(faultpoints::CacheRead));
    return Pattern;
  };
  std::vector<bool> A = Run("seed=7,cache.read%40");
  std::vector<bool> B = Run("seed=7,cache.read%40");
  std::vector<bool> C = Run("seed=8,cache.read%40");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C); // one in 2^64-ish to collide; a fixed seed keeps it stable

  // ~40% over 64 hits, loosely: the mix is good, not exact.
  size_t Fired = 0;
  for (bool F : A)
    Fired += F;
  EXPECT_GT(Fired, 10u);
  EXPECT_LT(Fired, 54u);
}

TEST_F(FaultInjectionTest, DisarmedFireCountsNothing) {
  FaultInjection &FI = FaultInjection::instance();
  EXPECT_FALSE(FaultInjection::fire(faultpoints::MdlParse));
  EXPECT_EQ(FI.hits(faultpoints::MdlParse), 0u);
}

//===----------------------------------------------------------------------===//
// Per-point sweep and pairwise combinations
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, EveryPointAloneRecoversOrFailsCleanly) {
  PipelineOutcome Baseline = runPipeline(Dir + "/base");
  ASSERT_TRUE(Baseline.R.Success);
  ASSERT_FALSE(Baseline.Degraded);
  ASSERT_TRUE(Baseline.ServerStatus.isOk()) << Baseline.ServerStatus.render();

  for (const char *Point : FaultInjection::registeredPoints()) {
    std::string PointDir = Dir + "/" + Point;
    FaultInjection &FI = FaultInjection::instance();
    FI.reset();
    ASSERT_TRUE(FI.configure(Point).isOk());
    // Twice on the same fresh cache: the first run exercises the miss /
    // store path under fault, the second the hit / load path (when the
    // first one managed to populate an entry at all).
    expectRecoveryOrCleanError(runPipeline(PointDir), Baseline, Point);
    expectRecoveryOrCleanError(runPipeline(PointDir), Baseline, Point);
    EXPECT_GT(FI.hits(Point), 0u) << Point << " never reached";
    FI.reset();
  }
}

TEST_F(FaultInjectionTest, PairwiseCombinationsNeverAbort) {
  PipelineOutcome Baseline = runPipeline(Dir + "/base");
  ASSERT_TRUE(Baseline.R.Success);

  const std::vector<const char *> &Points =
      FaultInjection::registeredPoints();
  for (size_t I = 0; I < Points.size(); ++I)
    for (size_t J = I + 1; J < Points.size(); ++J) {
      std::string Spec = std::string(Points[I]) + "," + Points[J];
      FaultInjection &FI = FaultInjection::instance();
      FI.reset();
      ASSERT_TRUE(FI.configure(Spec).isOk());
      PipelineOutcome Got = runPipeline(Dir + "/" + std::to_string(I) +
                                        "-" + std::to_string(J));
      expectRecoveryOrCleanError(Got, Baseline, Spec);
      FI.reset();
    }
}

//===----------------------------------------------------------------------===//
// Degradation identity: faulted schedules == unreduced-description schedules
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, ReduceFaultScheduleIdenticalToUnreduced) {
  // The degraded pipeline schedules against the original description; do
  // that directly (no reduction at all) and require the very same result.
  ASSERT_TRUE(
      FaultInjection::instance().configure(faultpoints::ReduceVerify).isOk());
  PipelineOutcome Degraded = runPipeline(Dir + "/deg");
  FaultInjection::instance().reset();
  EXPECT_TRUE(Degraded.Degraded);
  ASSERT_TRUE(Degraded.R.Success);

  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Fig1Mdl, Diags);
  ASSERT_TRUE(MD.has_value());
  ExpandedMachine EM = expandAlternatives(*MD);

  DepGraph G("loop");
  NodeId N0 = G.addNode(0, "a0");
  NodeId N1 = G.addNode(1, "b0");
  NodeId N2 = G.addNode(0, "a1");
  G.addEdge(N0, N1, 1);
  G.addEdge(N1, N2, 1);
  G.addEdge(N2, N0, 1, /*Distance=*/1);

  QueryEnvironment Env;
  Env.FlatMD = &EM.Flat;
  Env.Groups = &EM.Groups;
  Env.MakeModule = [&EM](QueryConfig C) {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(EM.Flat, C));
  };
  ModuloScheduleResult Unreduced = moduloSchedule(G, *MD, Env, {});
  ASSERT_TRUE(Unreduced.Success);

  EXPECT_EQ(Degraded.R.II, Unreduced.II);
  EXPECT_EQ(Degraded.R.Time, Unreduced.Time);
  EXPECT_EQ(Degraded.R.Alternative, Unreduced.Alternative);
}

TEST_F(FaultInjectionTest, CacheFaultScheduleIdenticalToFaultFree) {
  PipelineOutcome Baseline = runPipeline(Dir); // also warms the cache
  ASSERT_TRUE(Baseline.R.Success);

  // Every cache read rejects the (warm, valid) entry: recompute + reschedule
  // must reproduce the schedule exactly, and each rejection is counted.
  DegradationCounters Before = globalDegradation().snapshot();
  ASSERT_TRUE(
      FaultInjection::instance().configure(faultpoints::CacheRead).isOk());
  PipelineOutcome Got = runPipeline(Dir);
  FaultInjection::instance().reset();

  EXPECT_FALSE(Got.Degraded); // recovered, not degraded: recompute succeeded
  ASSERT_TRUE(Got.R.Success);
  EXPECT_EQ(Got.R.II, Baseline.R.II);
  EXPECT_EQ(Got.R.Time, Baseline.R.Time);
  EXPECT_EQ(Got.R.Alternative, Baseline.R.Alternative);
  EXPECT_GT(globalDegradation().snapshot().CacheRecoveries,
            Before.CacheRecoveries);
}

//===----------------------------------------------------------------------===//
// The individual rungs
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, ThreadPoolCapturesAndRethrows) {
  ThreadPool Pool(4);
  EXPECT_THROW(
      Pool.parallelFor(0, 1000,
                       [](size_t Begin, size_t) {
                         if (Begin == 0)
                           throw std::runtime_error("boom");
                       }),
      std::runtime_error);

  // The pool survives: the next call runs every index exactly once.
  std::vector<int> Seen(1000, 0);
  Pool.parallelFor(0, Seen.size(), [&Seen](size_t B, size_t E) {
    for (size_t I = B; I < E; ++I)
      ++Seen[I];
  });
  for (int S : Seen)
    ASSERT_EQ(S, 1);
}

TEST_F(FaultInjectionTest, WorkerFaultBecomesStructuredError) {
  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Fig1Mdl, Diags);
  ASSERT_TRUE(MD.has_value());
  MachineDescription Flat = expandAlternatives(*MD).Flat;

  ASSERT_TRUE(FaultInjection::instance()
                  .configure(faultpoints::ThreadPoolTask)
                  .isOk());
  ReductionOptions Options;
  Options.Threads = 2;
  Expected<ReductionResult> R = reduceMachineChecked(Flat, Options);
  FaultInjection::instance().reset();
  ASSERT_FALSE(R.hasValue());
  EXPECT_EQ(R.status().code(), ErrorCode::WorkerFailed);
  EXPECT_NE(R.status().message().find("threadpool.task"), std::string::npos);
}

TEST_F(FaultInjectionTest, AutomatonCapFallsBackToBitvector) {
  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Fig1Mdl, Diags);
  ASSERT_TRUE(MD.has_value());
  MachineDescription Flat = expandAlternatives(*MD).Flat;

  ASSERT_TRUE(FaultInjection::instance()
                  .configure(faultpoints::AutomatonCap)
                  .isOk());
  Status Why;
  std::unique_ptr<ContentionQueryModule> Q =
      makeAutomatonOrFallback(Flat, 32, (1u << 22), &Why);
  FaultInjection::instance().reset();
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Why.code(), ErrorCode::StateCapExceeded);

  // The fallback answers queries exactly like a reference discrete module.
  DiscreteQueryModule Ref(Flat, QueryConfig::linear(0));
  for (OpId Op = 0; Op < Flat.numOperations(); ++Op)
    for (int Cycle = 0; Cycle < 8; ++Cycle)
      EXPECT_EQ(Q->check(Op, Cycle), Ref.check(Op, Cycle))
          << "op " << Op << " cycle " << Cycle;
}

TEST_F(FaultInjectionTest, ExpiredDeadlineReturnsBestSoFar) {
  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Fig1Mdl, Diags);
  ASSERT_TRUE(MD.has_value());
  ExpandedMachine EM = expandAlternatives(*MD);

  DepGraph G("loop");
  NodeId N0 = G.addNode(0);
  NodeId N1 = G.addNode(1);
  G.addEdge(N0, N1, 1);

  QueryEnvironment Env;
  Env.FlatMD = &EM.Flat;
  Env.Groups = &EM.Groups;
  Env.MakeModule = [&EM](QueryConfig C) {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(EM.Flat, C));
  };

  ModuloScheduleOptions Options;
  Options.TheDeadline = Deadline::afterMillis(-1); // already expired
  ModuloScheduleResult R = moduloSchedule(G, *MD, Env, Options);
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.Outcome, ScheduleOutcome::TimedOut);
  EXPECT_EQ(R.Error.code(), ErrorCode::TimedOut);
  ASSERT_EQ(R.Alternative.size(), G.numNodes());
  for (int A : R.Alternative)
    EXPECT_EQ(A, -1); // expired before the first decision
  EXPECT_EQ(R.Stats.Degradation.SchedulerTimeouts, 1u);
}

TEST_F(FaultInjectionTest, CancellationTokenStopsScheduling) {
  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Fig1Mdl, Diags);
  ASSERT_TRUE(MD.has_value());
  ExpandedMachine EM = expandAlternatives(*MD);

  DepGraph G("loop");
  G.addNode(0);

  QueryEnvironment Env;
  Env.FlatMD = &EM.Flat;
  Env.Groups = &EM.Groups;
  Env.MakeModule = [&EM](QueryConfig C) {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(EM.Flat, C));
  };

  CancellationToken Token;
  Token.cancel();
  ModuloScheduleOptions Options;
  Options.Cancel = &Token;
  ModuloScheduleResult R = moduloSchedule(G, *MD, Env, Options);
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.Outcome, ScheduleOutcome::Cancelled);
  EXPECT_EQ(R.Error.code(), ErrorCode::Cancelled);
}

TEST_F(FaultInjectionTest, OperationDrivenDeadlineReturnsBestSoFar) {
  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Fig1Mdl, Diags);
  ASSERT_TRUE(MD.has_value());
  ExpandedMachine EM = expandAlternatives(*MD);

  DepGraph G("block");
  NodeId N0 = G.addNode(0);
  NodeId N1 = G.addNode(1);
  G.addEdge(N0, N1, 1);

  DiscreteQueryModule Module(EM.Flat, QueryConfig::linear(0));
  OperationDrivenOptions Options;
  Options.TheDeadline = Deadline::afterMillis(-1);
  OperationDrivenResult R = operationDrivenSchedule(
      G, EM.Groups, EM.Flat, Module, {}, Options);
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.Error.code(), ErrorCode::TimedOut);
  for (int A : R.Alternative)
    EXPECT_EQ(A, -1);
}

TEST_F(FaultInjectionTest, InfeasibleRecurrenceNamesTheCycle) {
  DepGraph G("bad");
  NodeId A = G.addNode(0, "ld");
  NodeId B = G.addNode(0, "add");
  G.addEdge(A, B, 2);
  G.addEdge(B, A, 3); // zero-distance cycle with positive delay

  Expected<int> RecMII = computeRecMIIChecked(G);
  ASSERT_FALSE(RecMII.hasValue());
  EXPECT_EQ(RecMII.status().code(), ErrorCode::InfeasibleRecurrence);
  const std::string &Message = RecMII.status().message();
  EXPECT_NE(Message.find("ld"), std::string::npos) << Message;
  EXPECT_NE(Message.find("add"), std::string::npos) << Message;
  EXPECT_NE(Message.find("no initiation interval is feasible"),
            std::string::npos)
      << Message;
}

TEST_F(FaultInjectionTest, SchedulerRejectsInfeasibleRecurrence) {
  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Fig1Mdl, Diags);
  ASSERT_TRUE(MD.has_value());
  ExpandedMachine EM = expandAlternatives(*MD);

  DepGraph G("bad");
  NodeId A = G.addNode(0);
  NodeId B = G.addNode(1);
  G.addEdge(A, B, 2);
  G.addEdge(B, A, 3);

  QueryEnvironment Env;
  Env.FlatMD = &EM.Flat;
  Env.Groups = &EM.Groups;
  Env.MakeModule = [&EM](QueryConfig C) {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(EM.Flat, C));
  };
  ModuloScheduleResult R = moduloSchedule(G, *MD, Env, {});
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.Outcome, ScheduleOutcome::InfeasibleRecurrence);
  EXPECT_EQ(R.Error.code(), ErrorCode::InfeasibleRecurrence);
  EXPECT_EQ(R.Stats.Degradation.InfeasibleRecurrences, 1u);
}

//===----------------------------------------------------------------------===//
// The server rungs, individually
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, ServerAcceptFaultDropsConnectionCleanly) {
  using namespace rmd::server;
  ServerOptions Options;
  Options.SocketPath = uniqueFaultSocket();
  Options.Workers = 1;
  Expected<std::unique_ptr<RmdServer>> Server =
      RmdServer::start(std::move(Options));
  ASSERT_TRUE(bool(Server)) << Server.status().render();

  ASSERT_TRUE(FaultInjection::instance()
                  .configure(faultpoints::ServerAccept)
                  .isOk());
  // The kernel completes the connect; the server drops the socket before a
  // reader ever starts. The client's first request surfaces a structured
  // error, not a hang.
  Expected<std::unique_ptr<RmdClient>> C =
      RmdClient::connect(Server.value()->socketPath(), 2000);
  ASSERT_TRUE(bool(C));
  Status S = C.value()->ping();
  EXPECT_FALSE(S.isOk());
  EXPECT_GT(FaultInjection::instance().fired(faultpoints::ServerAccept), 0u);
  FaultInjection::instance().reset();

  // Disarmed, the very same server serves the next connection normally.
  Expected<std::unique_ptr<RmdClient>> C2 =
      RmdClient::connect(Server.value()->socketPath(), 2000);
  ASSERT_TRUE(bool(C2));
  EXPECT_TRUE(C2.value()->ping().isOk());
}

TEST_F(FaultInjectionTest, ServerEnqueueFaultAnswersOverloadedOnce) {
  using namespace rmd::server;
  ServerOptions Options;
  Options.SocketPath = uniqueFaultSocket();
  Options.Workers = 1;
  Expected<std::unique_ptr<RmdServer>> Server =
      RmdServer::start(std::move(Options));
  ASSERT_TRUE(bool(Server)) << Server.status().render();

  Expected<std::unique_ptr<RmdClient>> C =
      RmdClient::connect(Server.value()->socketPath(), 2000);
  ASSERT_TRUE(bool(C));
  ASSERT_TRUE(C.value()->ping().isOk()); // reader up and serving

  // Exactly the first enqueue behaves as queue-full: that request gets a
  // structured Overloaded reply, the next one goes through untouched.
  ASSERT_TRUE(FaultInjection::instance()
                  .configure(std::string(faultpoints::ServerEnqueue) + ":1")
                  .isOk());
  Status S = C.value()->ping();
  FaultInjection::instance().reset();
  EXPECT_EQ(S.code(), ErrorCode::Overloaded) << S.render();
  EXPECT_EQ(Server.value()->overloadRejections(), 1u);
  EXPECT_TRUE(C.value()->ping().isOk());
}

TEST_F(FaultInjectionTest, ServerSessionAllocFaultLeaksNothing) {
  using namespace rmd::server;
  using namespace rmd::wire;
  ServerOptions Options;
  Options.SocketPath = uniqueFaultSocket();
  Options.Workers = 1;
  Expected<std::unique_ptr<RmdServer>> Server =
      RmdServer::start(std::move(Options));
  ASSERT_TRUE(bool(Server)) << Server.status().render();

  Expected<std::unique_ptr<RmdClient>> C =
      RmdClient::connect(Server.value()->socketPath(), 2000);
  ASSERT_TRUE(bool(C));
  Expected<LoadMachineReply> M = C.value()->loadMachine("fig1");
  ASSERT_TRUE(bool(M));

  ASSERT_TRUE(FaultInjection::instance()
                  .configure(faultpoints::ServerSessionAlloc)
                  .isOk());
  OpenSessionRequest Req;
  Req.MachineId = M.value().MachineId;
  Expected<OpenSessionReply> Open = C.value()->openSession(Req);
  FaultInjection::instance().reset();
  ASSERT_FALSE(bool(Open));
  EXPECT_EQ(Open.status().code(), ErrorCode::FaultInjected);
  EXPECT_EQ(Server.value()->sessionCount(), 0u); // nothing half-registered

  // And the path works once disarmed.
  Expected<OpenSessionReply> Open2 = C.value()->openSession(Req);
  ASSERT_TRUE(bool(Open2)) << Open2.status().render();
  EXPECT_EQ(Server.value()->sessionCount(), 1u);
}

//===----------------------------------------------------------------------===//
// Degradation-counter coverage: each rung bumps exactly its own counter
//===----------------------------------------------------------------------===//

namespace {

/// Name/member table over DegradationCounters so each rung test can assert
/// "my counter moved by one, every other counter did not move at all" —
/// a rung that accidentally double-counts or bleeds into a sibling rung
/// fails by name.
struct RungField {
  const char *Name;
  uint64_t DegradationCounters::*Member;
};

constexpr RungField AllRungs[] = {
    {"reduce-fallbacks", &DegradationCounters::ReduceFallbacks},
    {"cache-recoveries", &DegradationCounters::CacheRecoveries},
    {"automaton-fallbacks", &DegradationCounters::AutomatonFallbacks},
    {"worker-rethrows", &DegradationCounters::WorkerRethrows},
    {"scheduler-timeouts", &DegradationCounters::SchedulerTimeouts},
    {"infeasible-recurrences", &DegradationCounters::InfeasibleRecurrences},
};

void expectExactlyOneRung(const DegradationCounters &Before,
                          const DegradationCounters &After,
                          uint64_t DegradationCounters::*Taken) {
  for (const RungField &F : AllRungs) {
    uint64_t Delta = After.*(F.Member) - Before.*(F.Member);
    EXPECT_EQ(Delta, F.Member == Taken ? 1u : 0u) << F.Name;
  }
}

MachineDescription fig1Flat() {
  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Fig1Mdl, Diags);
  EXPECT_TRUE(MD.has_value());
  return expandAlternatives(*MD).Flat;
}

} // namespace

TEST_F(FaultInjectionTest, ReduceFallbackRungCountsExactlyOnce) {
  MachineDescription Flat = fig1Flat();
  ASSERT_TRUE(
      FaultInjection::instance().configure(faultpoints::ReduceVerify).isOk());
  DegradationCounters Before = globalDegradation().snapshot();
  SafeReduction Safe = reduceMachineOrFallback(Flat);
  FaultInjection::instance().reset();
  EXPECT_TRUE(Safe.Degraded);
  expectExactlyOneRung(Before, globalDegradation().snapshot(),
                       &DegradationCounters::ReduceFallbacks);
}

TEST_F(FaultInjectionTest, CacheRecoveryRungCountsExactlyOnce) {
  MachineDescription Flat = fig1Flat();
  ReductionCache Cache(Dir);
  ASSERT_TRUE(Cache.reduceChecked(Flat).hasValue()); // warm the entry

  // One rejected read, then a successful recompute + store: exactly one
  // cache recovery, and no reduce fallback (the recompute succeeded).
  ASSERT_TRUE(
      FaultInjection::instance().configure(faultpoints::CacheRead).isOk());
  DegradationCounters Before = globalDegradation().snapshot();
  bool Hit = true;
  Expected<ReductionResult> R = Cache.reduceChecked(Flat, {}, &Hit);
  FaultInjection::instance().reset();
  ASSERT_TRUE(R.hasValue());
  EXPECT_FALSE(Hit);
  expectExactlyOneRung(Before, globalDegradation().snapshot(),
                       &DegradationCounters::CacheRecoveries);
}

TEST_F(FaultInjectionTest, AutomatonFallbackRungCountsExactlyOnce) {
  MachineDescription Flat = fig1Flat();
  ASSERT_TRUE(
      FaultInjection::instance().configure(faultpoints::AutomatonCap).isOk());
  DegradationCounters Before = globalDegradation().snapshot();
  Status Why;
  std::unique_ptr<ContentionQueryModule> Q =
      makeAutomatonOrFallback(Flat, 32, (1u << 22), &Why);
  FaultInjection::instance().reset();
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Why.code(), ErrorCode::StateCapExceeded);
  expectExactlyOneRung(Before, globalDegradation().snapshot(),
                       &DegradationCounters::AutomatonFallbacks);
}

TEST_F(FaultInjectionTest, WorkerRethrowRungCountsExactlyOnce) {
  // One throwing block per parallelFor: the pool rethrows the captured
  // exception once at join, so the rung counts once per failed job, not
  // once per worker.
  ThreadPool Pool(4);
  DegradationCounters Before = globalDegradation().snapshot();
  EXPECT_THROW(
      Pool.parallelFor(0, 1000,
                       [](size_t Begin, size_t) {
                         if (Begin == 0)
                           throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  expectExactlyOneRung(Before, globalDegradation().snapshot(),
                       &DegradationCounters::WorkerRethrows);
}

TEST_F(FaultInjectionTest, SchedulerTimeoutRungCountsExactlyOnce) {
  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Fig1Mdl, Diags);
  ASSERT_TRUE(MD.has_value());
  ExpandedMachine EM = expandAlternatives(*MD);

  DepGraph G("loop");
  NodeId N0 = G.addNode(0);
  NodeId N1 = G.addNode(1);
  G.addEdge(N0, N1, 1);

  QueryEnvironment Env;
  Env.FlatMD = &EM.Flat;
  Env.Groups = &EM.Groups;
  Env.MakeModule = [&EM](QueryConfig C) {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(EM.Flat, C));
  };
  ModuloScheduleOptions Options;
  Options.TheDeadline = Deadline::afterMillis(-1);

  DegradationCounters Before = globalDegradation().snapshot();
  ModuloScheduleResult R = moduloSchedule(G, *MD, Env, Options);
  EXPECT_EQ(R.Outcome, ScheduleOutcome::TimedOut);
  expectExactlyOneRung(Before, globalDegradation().snapshot(),
                       &DegradationCounters::SchedulerTimeouts);
}

TEST_F(FaultInjectionTest, InfeasibleRecurrenceRungCountsExactlyOnce) {
  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Fig1Mdl, Diags);
  ASSERT_TRUE(MD.has_value());
  ExpandedMachine EM = expandAlternatives(*MD);

  DepGraph G("bad");
  NodeId A = G.addNode(0);
  NodeId B = G.addNode(1);
  G.addEdge(A, B, 2);
  G.addEdge(B, A, 3); // zero-distance cycle with positive delay

  QueryEnvironment Env;
  Env.FlatMD = &EM.Flat;
  Env.Groups = &EM.Groups;
  Env.MakeModule = [&EM](QueryConfig C) {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(EM.Flat, C));
  };

  DegradationCounters Before = globalDegradation().snapshot();
  ModuloScheduleResult R = moduloSchedule(G, *MD, Env, {});
  EXPECT_EQ(R.Outcome, ScheduleOutcome::InfeasibleRecurrence);
  expectExactlyOneRung(Before, globalDegradation().snapshot(),
                       &DegradationCounters::InfeasibleRecurrences);
}
